# Tier-1 verification gate. The experiment layer fans out across goroutines
# (internal/parallel), so the race detector is part of the gate, not an
# optional extra; bench-short smoke-runs every benchmark once so a broken
# bench path cannot land.
.PHONY: tier1 build vet fmt static test race chaos netfault gossip gossip-short ckpt ckpt-short ckpt-delta-short bench bench-short benchdiff quickbench scale-short

tier1: build vet fmt static race scale-short gossip-short ckpt-short ckpt-delta-short bench-short

# Fuzz campaign duration for the timed targets (gossip, ckpt); override
# with e.g. `make ckpt FUZZTIME=2m`.
FUZZTIME ?= 30s

build:
	go build ./...

vet:
	go vet ./...

fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# staticcheck when available; a bare toolchain passes the gate without it.
static:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping"; fi

test:
	go test ./...

race:
	go test -race ./...

# Short deterministic chaos campaign under the race detector: compound
# faults (dual hangs, hang-during-recovery, flapping/lossy cables, dead
# switch ports, failing reloads) with the exactly-once delivery audit.
chaos:
	go test -race -short -v -run 'Campaign' ./internal/chaos/

# Network-fault failover suite: dead trunks and partitions on the
# dual-switch fabric, GM vs FTGM vs FTGM+netwatch.
netfault:
	go test -race -v -run 'NetFault|NetworkFault|NetWatch|Remap' ./gm/ ./internal/core/ ./internal/mapper/ ./internal/chaos/ ./internal/experiments/

# Gossip control-plane campaign: the membership/link-state plane suite
# under the race detector (agents, gm wiring, mapper-death chaos and the
# control-plane comparison), then a timed fuzz campaign over the wire
# codec. The corpus itself runs in tier-1 as a plain test (gossip-short).
gossip:
	go test -race -v -run 'Gossip|ControlPlane|MapperDeath|Wire' \
		./internal/gossip/ ./gm/ ./internal/chaos/ ./internal/experiments/
	go test -fuzz FuzzDecodeGossip -fuzztime $(FUZZTIME) ./internal/gossip/

# Gossip smoke gate (tier1): the plane's unit suite and the fuzz corpus
# as plain tests under the race detector (no open-ended fuzzing in CI).
gossip-short:
	go test -race -run 'Gossip|Wire|Fuzz' ./internal/gossip/

# Host-fault campaign: endpoint checkpoint/restart under the race detector
# (drain/kill/restore unit suite, host-death and mapper-rebirth chaos
# campaigns, the experiment comparison, whole-sim snapshot/resume), then a
# timed fuzz campaign over the checkpoint wire codec.
ckpt:
	go test -race -v -run 'HostFault|HostDeath|MapperRebirth|Checkpoint|SnapshotResume|Periodic|Delta|ReplayChain' \
		./internal/ckpt/ ./internal/sim/ ./gm/ ./internal/chaos/ ./internal/experiments/
	go test -fuzz FuzzDecodeCheckpoint -fuzztime $(FUZZTIME) ./internal/ckpt/

# Checkpoint smoke gate (tier1): the wire codec's unit suite and fuzz
# corpus as plain tests plus the endpoint drain/kill/restore suite and the
# engine-level snapshot/resume contract, all under the race detector.
ckpt-short:
	go test -race -run 'Checkpoint|Fuzz' ./internal/ckpt/
	go test -race -run 'HostFault|HostDeath|SnapshotResume' ./gm/ ./internal/sim/

# Incremental-checkpoint smoke gate (tier1): the delta codec (round-trip,
# chain replay, reject cases, zero-alloc build), the periodic pipeline
# (bounded drain, chain replay bit-identity, restore-from-chain) and the
# periodic-ckpt chaos class (kill mid-chain, replay, exactly-once audit,
# shard/speculation invariance), all under the race detector.
ckpt-delta-short:
	go test -race -run 'Delta|ReplayChain|ApplyMerges|Fuzz' ./internal/ckpt/
	go test -race -run 'Periodic' ./gm/ ./internal/chaos/

# Sharded-engine smoke gate (tier1): the 64-node Clos storm trial on the
# sharded conservative-time engine under the race detector — conservative
# and speculative (-shards 4 with the monitor ring) variants — plus the
# bit-for-bit shard-invariance trials (chaos, netfault, and the 256-node
# speculation trial with forced rollbacks) and the speculation unit suite.
# The second line is the speculating-fabric chaos cell: hang + link flap +
# host death with node and switch domains running ahead, audited
# exactly-once and bit-identical to the conservative books at 1/4/8 shards.
scale-short:
	go test -race -run 'TestScaleShort|TestShardInvariance|TestSpec|TestRNGState|TestZeroLookahead' \
		./internal/sim/ ./internal/experiments/ ./gm/
	go test -race -short -run 'TestCampaignSpeculationInvariance' ./internal/chaos/

# Full harness benchmark: regenerates the Figure 7/8, netfault,
# control-plane, host-fault, large-cluster scaling and multi-core matrix
# metrics with per-section wall-clock/allocation accounting and regression
# comparison against the committed baseline. Rewrites BENCH_10.json.
bench:
	go run ./cmd/gmbench -mode bw,lat,netfault,controlplane,hostfault,scale,scale_mc \
		-benchjson BENCH_10.json -baseline BENCH_9.json

# Bench smoke gate (tier1): every go-test benchmark runs once.
bench-short:
	go test -bench=. -benchtime=1x -run=^$$ .

# Regression gate: compare two -benchjson files, fail on >10% ns/op or
# allocs/op regression in any shared section.
# Usage: make benchdiff OLD=BENCH_4.json NEW=/tmp/new.json
benchdiff:
	go run ./cmd/gmbench -mode benchdiff $(OLD) $(NEW)

# Engine-level microbenchmarks with allocation counts.
quickbench:
	go test -bench=BenchmarkEngine -benchmem -run=^$$ ./internal/sim/
