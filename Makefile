# Tier-1 verification gate. The experiment layer fans out across goroutines
# (internal/parallel), so the race detector is part of the gate, not an
# optional extra.
.PHONY: tier1 build vet test race bench quickbench

tier1: build vet race

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

# Full benchmark sweep (regenerates every table/figure as metrics).
bench:
	go test -bench=. -benchtime=1x -run=^$$ .

# Engine-level microbenchmarks with allocation counts.
quickbench:
	go test -bench=BenchmarkEngine -benchmem -run=^$$ ./internal/sim/
