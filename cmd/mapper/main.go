// Command mapper demonstrates the GM mapping protocol: it builds a
// configurable topology, runs the scout-based mapper, prints the assigned
// identities and route tables, optionally cuts a link and remaps (the
// self-reconfiguration the paper describes in §2).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/gm"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mapper:", err)
		os.Exit(1)
	}
}

func run() error {
	nodes := flag.Int("nodes", 6, "number of nodes (max 12 on two switches)")
	twoSwitches := flag.Bool("two-switches", true, "spread nodes across two trunked switches")
	failNode := flag.Int("fail", -1, "node index whose cable to cut before remapping")
	flag.Parse()
	if *nodes < 2 || *nodes > 12 {
		return fmt.Errorf("-nodes must be 2..12")
	}

	cl := gm.NewCluster(gm.DefaultConfig(gm.ModeFTGM))
	sw1 := cl.AddSwitch("sw1")
	var sw2 *gm.Switch
	if *twoSwitches {
		sw2 = cl.AddSwitch("sw2")
		if err := cl.ConnectSwitches(sw1, sw2, 7, 7); err != nil {
			return err
		}
	}
	var all []*gm.Node
	for i := 0; i < *nodes; i++ {
		n := cl.AddNode(fmt.Sprintf("node%d", i))
		sw, port := sw1, i
		if *twoSwitches && i >= *nodes/2 {
			sw, port = sw2, i-*nodes/2
		}
		if err := cl.Connect(n, sw, port); err != nil {
			return err
		}
		all = append(all, n)
	}

	res, err := cl.Boot()
	if err != nil {
		return err
	}
	fmt.Printf("mapping completed in %v: %d interfaces, %d scouts\n",
		res.Elapsed, len(res.IDs), res.ScoutsSent)
	printRoutes(res.Routes)

	if *failNode >= 0 && *failNode < len(all) {
		fmt.Printf("\ncutting the cable of node %d and remapping...\n", *failNode)
		all[*failNode].SetLinkUp(false)
		res2, err := cl.Remap()
		if err != nil {
			return err
		}
		fmt.Printf("remap completed in %v: %d interfaces remain\n", res2.Elapsed, len(res2.IDs))
		printRoutes(res2.Routes)
	}
	return nil
}

func printRoutes(routes map[gm.NodeID]map[gm.NodeID][]byte) {
	var ids []int
	for id := range routes {
		ids = append(ids, int(id))
	}
	sort.Ints(ids)
	for _, src := range ids {
		tbl := routes[gm.NodeID(src)]
		var dsts []int
		for d := range tbl {
			dsts = append(dsts, int(d))
		}
		sort.Ints(dsts)
		fmt.Printf("  node %d routes:", src)
		for _, d := range dsts {
			fmt.Printf("  ->%d %v", d, deltas(tbl[gm.NodeID(d)]))
		}
		fmt.Println()
	}
}

// deltas renders route bytes as signed hop deltas.
func deltas(route []byte) []int8 {
	out := make([]int8, len(route))
	for i, b := range route {
		out[i] = int8(b)
	}
	return out
}
