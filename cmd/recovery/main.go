// Command recovery reproduces the recovery-time evaluation:
//
//	recovery                  Table 3 (recovery-time components, mean of -runs)
//	recovery -timeline        also print the Figure 9 phase timeline
//	recovery -scenarios       run the Figure 4/5 motivating failure scenarios
//	recovery -ablate          run the watchdog-interval and commit-point ablations
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/gm"
	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "recovery:", err)
		os.Exit(1)
	}
}

func run() error {
	runs := flag.Int("runs", 5, "hang/recovery cycles to average")
	timeline := flag.Bool("timeline", true, "print the Figure 9 timeline")
	scenarios := flag.Bool("scenarios", false, "run the Figure 4/5 scenarios")
	ablate := flag.Bool("ablate", false, "run the design ablations")
	ports := flag.Bool("ports", false, "measure recovery time vs open ports")
	availability := flag.Bool("availability", false, "run the mission-availability comparison")
	checkpoint := flag.Bool("checkpoint", false, "run the periodic-checkpointing baseline comparison")
	flag.Parse()

	res, err := experiments.Table3(*runs)
	if err != nil {
		return err
	}
	fmt.Println(res.Render())
	if *timeline {
		fmt.Println(res.RenderTimeline())
	}

	if *scenarios {
		for _, f := range []func(gm.Mode) (experiments.ScenarioResult, error){
			experiments.Figure4Scenario, experiments.Figure5Scenario,
		} {
			for _, mode := range []gm.Mode{gm.ModeGM, gm.ModeFTGM} {
				sc, err := f(mode)
				if err != nil {
					return err
				}
				fmt.Println(sc.Render())
			}
		}
		f6, err := experiments.Figure6Scenario()
		if err != nil {
			return err
		}
		fmt.Println(f6.Render())
	}

	if *ports {
		points, err := experiments.RecoveryVsPorts([]int{1, 2, 4, 8})
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderRecoveryVsPorts(points))
	}

	if *availability {
		results, err := experiments.AvailabilityComparison(experiments.DefaultAvailabilityConfig())
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderAvailability(results))
	}

	if *checkpoint {
		points, err := experiments.CheckpointBaseline(
			[]gm.Duration{100 * gm.Millisecond, 50 * gm.Millisecond, 10 * gm.Millisecond},
			experiments.DefaultCheckpointConfig())
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderCheckpoint(points))
	}

	if *ablate {
		ack, err := experiments.AblationDelayedACK(4096, 60)
		if err != nil {
			return err
		}
		fmt.Println(ack.Render())
		seq, err := experiments.AblationSeqStreams()
		if err != nil {
			return err
		}
		fmt.Println(seq.Render())
		sc, err := experiments.AblationShadowCopy()
		if err != nil {
			return err
		}
		fmt.Println(sc.Render())
		wd, err := experiments.AblationWatchdog([]int{400, 600, 800, 1000, 1500, 2000, 4000})
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderWatchdog(wd))
	}
	return nil
}
