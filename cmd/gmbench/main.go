// Command gmbench regenerates the paper's performance evaluation on the
// simulated Myrinet/GM stack:
//
//	gmbench -mode bw        Figure 7  (bidirectional bandwidth vs length)
//	gmbench -mode lat       Figure 8  (half round-trip latency vs length)
//	gmbench -mode table2    Table 2   (metric summary, GM vs FTGM)
//	gmbench -mode table1    Table 1   (fault-injection campaign)
//	gmbench -mode netfault  network-fault failover (dead trunks/partitions)
//	gmbench -mode hostfault host-death campaign: endpoints checkpointed,
//	                        killed mid-burst and restored (or reborn after
//	                        expulsion) under central and gossip planes
//	gmbench -mode scale     large-cluster scaling: serial vs sharded engine
//	gmbench -mode scale_mc  multi-core matrix: shards x {conservative,
//	                        speculative} plus a dispatch-threshold sweep
//	gmbench -mode all       everything
//
// -mode also accepts a comma-separated list (e.g. -mode bw,lat,netfault).
// The -quick flag shrinks the sweeps for a fast smoke run. The -json flag
// writes the headline metrics (MB/s asymptote, short-message half-RTT,
// campaign percentages, wall-clock) to a machine-readable file so successive
// PRs have a bench trajectory to compare against.
//
// Harness-performance instrumentation:
//
//	-cpuprofile f   write a pprof CPU profile of the run
//	-memprofile f   write a pprof heap profile at exit
//	-benchjson f    write per-section wall-clock/allocation metrics
//	                (ns/op, allocs/op, simulated MB per wall-second)
//	-baseline f     embed a prior -benchjson file (or a legacy -json file
//	                from a bandwidth-only run) in the -benchjson output and
//	                report the Figure 7 wall-clock speedup against it
//
// and a regression gate for CI:
//
//	gmbench -mode benchdiff old.json new.json
//
// which exits nonzero when any section shared by the two -benchjson files
// regressed by more than 10% in ns/op or allocs/op, or — when the new file
// carries the scale_mc matrix — when arming speculation costs the serial
// (-shards 1) path more than 10% over its conservative twin.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/parallel"
	"repro/internal/sim"
)

// report is the -json output shape. Fields are omitted when their mode did
// not run.
type report struct {
	WallClockSec float64 `json:"wall_clock_sec"`
	Workers      int     `json:"workers"`

	// Figure 7: bandwidth at the largest swept size (the asymptote).
	GMBandwidthMBs   float64 `json:"gm_bandwidth_mbs,omitempty"`
	FTGMBandwidthMBs float64 `json:"ftgm_bandwidth_mbs,omitempty"`

	// Figure 8: half round trip at the smallest swept size.
	GMHalfRTTUs   float64 `json:"gm_half_rtt_us,omitempty"`
	FTGMHalfRTTUs float64 `json:"ftgm_half_rtt_us,omitempty"`

	// Table 2 summary rows.
	Table2 *table2JSON `json:"table2,omitempty"`

	// Table 1 campaign outcome percentages, keyed by category name.
	CampaignRuns    int                `json:"campaign_runs,omitempty"`
	CampaignPercent map[string]float64 `json:"campaign_percent,omitempty"`

	// Network-fault comparison, keyed by scheme (GM, FTGM, FTGM+netwatch).
	NetFault map[string]netFaultJSON `json:"netfault,omitempty"`

	// Control-plane comparison under mapper death, keyed by scheme
	// (FTGM, FTGM+central, FTGM+gossip).
	ControlPlane map[string]controlPlaneJSON `json:"controlplane,omitempty"`

	// Host-death checkpoint/restart comparison, keyed by scheme
	// (restore+central, restore+gossip, rebirth+gossip).
	HostFault map[string]hostFaultJSON `json:"hostfault,omitempty"`

	// Large-cluster scaling sweep: serial vs sharded engine per point.
	Scale []experiments.ScalePoint `json:"scale,omitempty"`
	// Multi-core matrix cells (scale_mc mode).
	ScaleMatrix []experiments.MatrixPoint `json:"scale_matrix,omitempty"`
	// ScaleSpeedupMax is the best serial/sharded wall-clock ratio observed
	// across the sweep (on a single-core host this reflects only the
	// per-domain-heap effect, not parallel execution).
	ScaleSpeedupMax float64 `json:"scale_speedup_max,omitempty"`
}

type netFaultJSON struct {
	Sent          uint64  `json:"sent"`
	Delivered     uint64  `json:"delivered"`
	Lost          uint64  `json:"lost"`
	Failed        uint64  `json:"failed"`
	DeliveryRate  float64 `json:"delivery_rate"`
	ExactlyOnce   bool    `json:"exactly_once"`
	Suspicions    uint64  `json:"suspicions"`
	Incidents     uint64  `json:"incidents"`
	Remaps        uint64  `json:"remaps"`
	RemapFailures uint64  `json:"remap_failures"`
	Probes        uint64  `json:"probes"`
	Unreachable   uint64  `json:"unreachable"`
	Readmissions  uint64  `json:"readmissions"`
}

type controlPlaneJSON struct {
	Sent         uint64  `json:"sent"`
	Delivered    uint64  `json:"delivered"`
	Lost         uint64  `json:"lost"`
	Failed       uint64  `json:"failed"`
	Excused      uint64  `json:"excused"`
	DeliveryRate float64 `json:"delivery_rate"`
	Verdict      string  `json:"verdict"`
	Remaps       uint64  `json:"remaps"`
	Unreachable  uint64  `json:"unreachable"`
	DeadDeclared uint64  `json:"dead_declared"`
	Readmissions uint64  `json:"readmissions"`
	LiveExpelled uint64  `json:"live_expelled"`
	RouteGaps    uint64  `json:"route_gaps"`
}

type hostFaultJSON struct {
	Sent            uint64  `json:"sent"`
	Delivered       uint64  `json:"delivered"`
	Excused         uint64  `json:"excused"`
	DeliveryRate    float64 `json:"delivery_rate"`
	Verdict         string  `json:"verdict"`
	Checkpoints     uint64  `json:"checkpoints"`
	CheckpointBytes uint64  `json:"checkpoint_bytes"`
	Restores        uint64  `json:"restores"`
	Rejoins         uint64  `json:"rejoins"`
	DeadDeclared    uint64  `json:"dead_declared"`
	Readmissions    uint64  `json:"readmissions"`
	LiveExpelled    uint64  `json:"live_expelled"`
	RouteGaps       uint64  `json:"route_gaps"`

	// Incremental-checkpoint telemetry (the periodic+central scheme):
	// base+delta frames shipped, bounded-drain accounting and the worst
	// per-checkpoint drain pause observed across the campaign.
	PeriodicFrames  uint64 `json:"periodic_frames,omitempty"`
	PeriodicBytes   uint64 `json:"periodic_bytes,omitempty"`
	PeriodicSkips   uint64 `json:"periodic_skips,omitempty"`
	MaxDrainPauseNs int64  `json:"max_drain_pause_ns,omitempty"`
	ChainMismatches uint64 `json:"chain_mismatches,omitempty"`
}

type table2JSON struct {
	GM   table2RowJSON `json:"gm"`
	FTGM table2RowJSON `json:"ftgm"`
}

type table2RowJSON struct {
	BandwidthMBs  float64 `json:"bandwidth_mbs"`
	LatencyUs     float64 `json:"latency_us"`
	HostSendUs    float64 `json:"host_send_us"`
	HostRecvUs    float64 `json:"host_recv_us"`
	LanaiPerMsgUs float64 `json:"lanai_per_msg_us"`
}

// benchSection is one measured section of a -benchjson report. Ops are
// simulated messages (or ping-pong rounds); ns/op and allocs/op are the
// harness's real cost to simulate each, which is what the zero-copy work
// optimizes. MBPerWallSec is simulated payload bytes moved per wall-clock
// second — a harness-throughput figure, not the simulated link bandwidth.
type benchSection struct {
	WallNs       int64   `json:"wall_ns"`
	Ops          int64   `json:"ops"`
	NsPerOp      float64 `json:"ns_per_op"`
	AllocsPerOp  float64 `json:"allocs_per_op"`
	BytesPerOp   float64 `json:"bytes_per_op"`
	MBPerWallSec float64 `json:"mb_per_wall_sec,omitempty"`

	// Execution-shape metadata, so a section's numbers can be judged in
	// context (a 1-shard cell and an 8-shard cell are different machines).
	Shards      int  `json:"shards,omitempty"`
	Speculative bool `json:"speculative,omitempty"`
	Threshold   int  `json:"threshold,omitempty"`

	// Speculation telemetry for scale_mc cells: how many spans committed
	// vs rolled back, and the adaptive-horizon spread (DESIGN.md §16) at
	// the end of the run. A HorizonMeanNs well below the configured
	// horizon is the controller visibly throttling speculation — the
	// context for judging the s1 spec-vs-cons overhead gate.
	SpecCommits   uint64 `json:"spec_commits,omitempty"`
	SpecRollbacks uint64 `json:"spec_rollbacks,omitempty"`
	HorizonLoNs   int64  `json:"horizon_lo_ns,omitempty"`
	HorizonHiNs   int64  `json:"horizon_hi_ns,omitempty"`
	HorizonMeanNs int64  `json:"horizon_mean_ns,omitempty"`
}

// benchReport is the -benchjson output shape.
type benchReport struct {
	GoVersion  string                  `json:"go_version"`
	GoMaxProcs int                     `json:"gomaxprocs"`
	NumCPU     int                     `json:"num_cpu"`
	Workers    int                     `json:"workers"`
	Sections   map[string]benchSection `json:"sections"`

	// Baseline comparison, present when -baseline was given.
	Baseline     map[string]benchSection `json:"baseline,omitempty"`
	BaselineFrom string                  `json:"baseline_from,omitempty"`
	// BaselineNumCPU is the CPU count recorded in the baseline file (0 for
	// a legacy baseline that predates the field). benchdiff uses it to
	// downgrade wall-clock gates to warnings when the machines differ.
	BaselineNumCPU int `json:"baseline_num_cpu,omitempty"`
	// Fig7Speedup is baseline fig7_bw wall clock over this run's, the
	// headline harness-performance ratio.
	Fig7Speedup float64 `json:"fig7_speedup_vs_baseline,omitempty"`
}

// measure runs fn and reports its wall clock and heap allocation deltas per
// op. fn returns (ops, payload bytes simulated).
func measure(fn func() (int64, uint64, error)) (benchSection, error) {
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	ops, bytes, err := fn()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)
	if err != nil {
		return benchSection{}, err
	}
	s := benchSection{WallNs: wall.Nanoseconds(), Ops: ops}
	if ops > 0 {
		s.NsPerOp = float64(s.WallNs) / float64(ops)
		s.AllocsPerOp = float64(after.Mallocs-before.Mallocs) / float64(ops)
		s.BytesPerOp = float64(after.TotalAlloc-before.TotalAlloc) / float64(ops)
	}
	if bytes > 0 && wall > 0 {
		s.MBPerWallSec = float64(bytes) / 1e6 / wall.Seconds()
	}
	return s, nil
}

// loadBaseline reads a prior -benchjson file, returning its sections and
// the CPU count it was measured on (0 when the file predates the field). A
// legacy -json file from a bandwidth-only run (wall_clock_sec +
// gm_bandwidth_mbs, no sections) is accepted and synthesized into a lone
// fig7_bw section, so a pre-refactor gmbench binary can still produce the
// baseline.
func loadBaseline(path string) (map[string]benchSection, int, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	var f struct {
		Sections       map[string]benchSection `json:"sections"`
		NumCPU         int                     `json:"num_cpu"`
		WallClockSec   float64                 `json:"wall_clock_sec"`
		GMBandwidthMBs float64                 `json:"gm_bandwidth_mbs"`
	}
	if err := json.Unmarshal(buf, &f); err != nil {
		return nil, 0, fmt.Errorf("baseline %s: %w", path, err)
	}
	if f.Sections != nil {
		return f.Sections, f.NumCPU, nil
	}
	if f.WallClockSec > 0 && f.GMBandwidthMBs > 0 {
		return map[string]benchSection{
			"fig7_bw": {WallNs: int64(f.WallClockSec * 1e9)},
		}, f.NumCPU, nil
	}
	return nil, 0, fmt.Errorf("baseline %s: neither a -benchjson file nor a legacy bandwidth-only -json file", path)
}

// benchdiff compares two -benchjson files and reports sections whose ns/op
// or allocs/op regressed beyond the threshold. It returns the number of
// regressions found. Cross-file wall-clock diffs never gate, only warn:
// ns/op against a baseline from another box — or the same box under
// different load; matrix cells swing 2-3x between idle and busy runs on a
// shared host — measures the machines, not the code, and the CPU count is
// too weak a fingerprint to tell those apart. The hard gates are the
// machine-independent metrics: allocation counts, and the s1 spec-vs-cons
// ratio taken from two cells of the same run.
func benchdiff(oldPath, newPath string, threshold float64) (int, error) {
	oldS, oldCPU, err := loadBaseline(oldPath)
	if err != nil {
		return 0, err
	}
	newS, newCPU, err := loadBaseline(newPath)
	if err != nil {
		return 0, err
	}
	if oldCPU > 0 && newCPU > 0 && oldCPU != newCPU {
		fmt.Printf("note: baseline measured on %d CPUs, this run on %d\n", oldCPU, newCPU)
	}
	regressions := 0
	check := func(section, metric string, oldV, newV float64, wallClock bool) {
		if oldV <= 0 {
			return
		}
		ratio := newV/oldV - 1
		status := "ok"
		if ratio > threshold {
			if wallClock {
				status = "WARN (wall clock vs baseline; not a gate)"
			} else {
				status = "REGRESSION"
				regressions++
			}
		}
		fmt.Printf("%-20s %-12s %14.1f -> %14.1f  %+7.1f%%  %s\n",
			section, metric, oldV, newV, ratio*100, status)
	}
	for name, o := range oldS {
		n, ok := newS[name]
		if !ok {
			fmt.Printf("%-20s missing from %s (skipped)\n", name, newPath)
			continue
		}
		if o.NsPerOp > 0 && n.NsPerOp > 0 {
			check(name, "ns/op", o.NsPerOp, n.NsPerOp, true)
			check(name, "allocs/op", o.AllocsPerOp, n.AllocsPerOp, false)
		} else {
			// Legacy baseline: only wall clock is comparable.
			check(name, "wall_ns", float64(o.WallNs), float64(n.WallNs), true)
		}
	}
	// The speculation-overhead gate: when the new run carries the scale_mc
	// matrix, arming speculation must not cost the serial (-shards 1) path
	// more than the threshold over its conservative twin — the undo
	// journals are pay-per-touch and the adaptive horizon throttles
	// domains whose spans keep losing, so the knob stays nearly free on
	// one core.
	// Both sections come from the new run — same machine — so this stays a
	// hard gate even when the baseline's CPU count differs.
	if cons, ok := newS["scale_mc_s1_cons"]; ok {
		if spec, ok := newS["scale_mc_s1_spec"]; ok && cons.NsPerOp > 0 && spec.NsPerOp > 0 {
			check("s1 spec-vs-cons", "ns/op", cons.NsPerOp, spec.NsPerOp, false)
		}
	}
	return regressions, nil
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gmbench:", err)
		os.Exit(1)
	}
}

func run() error {
	mode := flag.String("mode", "all", "comma-separated: bw | lat | table2 | table1 | netfault | controlplane | hostfault | scale | scale_mc | all; or benchdiff OLD NEW")
	shards := flag.Int("shards", 4, "scale: executor count for the sharded runs")
	msgs := flag.Int("msgs", 200, "messages per bandwidth point (paper: 1000)")
	rounds := flag.Int("rounds", 100, "ping-pong rounds per latency point")
	runs := flag.Int("runs", 1000, "fault-injection trials for table1")
	seed := flag.Uint64("seed", 2003, "campaign seed for table1")
	quick := flag.Bool("quick", false, "small sweeps for a fast run")
	jsonPath := flag.String("json", "", "write headline metrics as JSON to this file")
	benchJSON := flag.String("benchjson", "", "write per-section harness bench metrics as JSON to this file")
	baseline := flag.String("baseline", "", "prior -benchjson (or legacy bw-only -json) file to embed and compare against")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile to this file")
	threshold := flag.Float64("threshold", 0.10, "benchdiff: fractional regression that fails the gate")
	ckptEvery := flag.Int("ckpt-every", 0, "hostfault: write the resumable campaign artifact every N completed trials (0 = off)")
	ckptFile := flag.String("ckpt-file", "hostfault_campaign.ckpt.json", "hostfault: resumable campaign artifact path")
	resumeFrom := flag.String("resume-from", "", "hostfault: resume the campaign from a prior artifact file")
	flag.Parse()

	if *mode == "benchdiff" {
		if flag.NArg() != 2 {
			return fmt.Errorf("benchdiff needs two files: gmbench -mode benchdiff OLD.json NEW.json")
		}
		regressions, err := benchdiff(flag.Arg(0), flag.Arg(1), *threshold)
		if err != nil {
			return err
		}
		if regressions > 0 {
			return fmt.Errorf("%d bench regression(s) beyond %.0f%%", regressions, *threshold*100)
		}
		fmt.Println("benchdiff: no regressions")
		return nil
	}

	if *quick {
		*msgs = 40
		*rounds = 20
		*runs = 200
	}

	modes := make(map[string]bool)
	for _, m := range strings.Split(*mode, ",") {
		modes[strings.TrimSpace(m)] = true
	}
	doBW := modes["bw"] || modes["all"]
	doLat := modes["lat"] || modes["all"]
	doT2 := modes["table2"] || modes["all"]
	doT1 := modes["table1"] || modes["all"]
	doNF := modes["netfault"] || modes["all"]
	doCP := modes["controlplane"] || modes["all"]
	doHF := modes["hostfault"] || modes["all"]
	doScale := modes["scale"] || modes["all"]
	doMC := modes["scale_mc"] || modes["all"]
	if !doBW && !doLat && !doT2 && !doT1 && !doNF && !doCP && !doHF && !doScale && !doMC {
		return fmt.Errorf("unknown -mode %q", *mode)
	}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}

	started := time.Now()
	rep := report{Workers: parallel.Workers()}
	sections := make(map[string]benchSection)

	if doBW {
		sizes := experiments.Figure7Sizes()
		if *quick {
			sizes = []int{64, 1024, 4096, 4097, 16384, 65536, 262144}
		}
		sec, err := measure(func() (int64, uint64, error) {
			res, err := experiments.Figure7(sizes, *msgs)
			if err != nil {
				return 0, 0, err
			}
			fmt.Println(res.Render())
			rep.GMBandwidthMBs = res.GM.Points[len(res.GM.Points)-1].Y
			rep.FTGMBandwidthMBs = res.FTGM.Points[len(res.FTGM.Points)-1].Y
			// Two modes, two directions, msgs messages per size point.
			var bytes uint64
			for _, s := range sizes {
				bytes += uint64(s) * uint64(*msgs) * 4
			}
			return int64(len(sizes)) * int64(*msgs) * 4, bytes, nil
		})
		if err != nil {
			return err
		}
		sections["fig7_bw"] = sec
	}
	if doLat {
		sizes := experiments.Figure8Sizes()
		if *quick {
			sizes = []int{1, 16, 100, 1024, 16384}
		}
		sec, err := measure(func() (int64, uint64, error) {
			res, err := experiments.Figure8(sizes, *rounds)
			if err != nil {
				return 0, 0, err
			}
			fmt.Println(res.Render())
			rep.GMHalfRTTUs = res.GM.Points[0].Y
			rep.FTGMHalfRTTUs = res.FTGM.Points[0].Y
			return int64(len(sizes)) * int64(*rounds) * 2, 0, nil
		})
		if err != nil {
			return err
		}
		sections["fig8_lat"] = sec
	}
	if doT2 {
		res, err := experiments.Table2()
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		rep.Table2 = &table2JSON{
			GM:   table2RowJSON(res.GM),
			FTGM: table2RowJSON(res.FTGM),
		}
	}
	if doT1 {
		res, err := experiments.Table1(*runs, *seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		rep.CampaignRuns = res.Campaign.Runs
		rep.CampaignPercent = make(map[string]float64)
		for _, o := range fault.Outcomes() {
			rep.CampaignPercent[o.String()] = res.Campaign.Percent(o)
		}
	}

	if doNF {
		cfg := chaos.CampaignConfig{
			Trials: 4,
			Trial: chaos.TrialConfig{
				Nodes:     4,
				Traffic:   sim.Second,
				SendEvery: 2 * sim.Millisecond,
				Events:    2,
				MaxSettle: 15 * sim.Second,
			},
		}
		if *quick {
			cfg.Trials = 1
			cfg.Trial.SendEvery = 4 * sim.Millisecond
		}
		sec, err := measure(func() (int64, uint64, error) {
			res, err := experiments.NetworkFaultComparison(*seed, cfg)
			if err != nil {
				return 0, 0, err
			}
			fmt.Println(experiments.RenderNetFault(res))
			rep.NetFault = make(map[string]netFaultJSON)
			var ops int64
			for _, r := range res {
				ops += int64(r.Campaign.Total.Sent)
				rep.NetFault[r.Label] = netFaultJSON{
					Sent:          r.Campaign.Total.Sent,
					Delivered:     r.Campaign.Total.Unique,
					Lost:          r.Campaign.Total.Lost,
					Failed:        r.Campaign.Total.Failed,
					DeliveryRate:  r.DeliveryRate(),
					ExactlyOnce:   r.Campaign.AllExactlyOnce,
					Suspicions:    r.Counters.Suspicions,
					Incidents:     r.Counters.Incidents,
					Remaps:        r.Counters.Remaps,
					RemapFailures: r.Counters.RemapFailures,
					Probes:        r.Counters.Probes,
					Unreachable:   r.Counters.Unreachable,
					Readmissions:  r.Counters.Readmissions,
				}
			}
			return ops, 0, nil
		})
		if err != nil {
			return err
		}
		sections["netfault_campaign"] = sec
	}

	if doCP {
		cfg := chaos.CampaignConfig{
			Trials: 4,
			Trial: chaos.TrialConfig{
				Nodes:     4,
				Traffic:   sim.Second,
				SendEvery: 2 * sim.Millisecond,
				Events:    1,
				MaxSettle: 15 * sim.Second,
			},
		}
		if *quick {
			cfg.Trials = 1
			cfg.Trial.SendEvery = 4 * sim.Millisecond
		}
		sec, err := measure(func() (int64, uint64, error) {
			res, err := experiments.ControlPlaneComparison(*seed, cfg)
			if err != nil {
				return 0, 0, err
			}
			fmt.Println(experiments.RenderControlPlane(res))
			rep.ControlPlane = make(map[string]controlPlaneJSON)
			var ops int64
			for _, r := range res {
				ops += int64(r.Campaign.Total.Sent)
				rep.ControlPlane[r.Label] = controlPlaneJSON{
					Sent:         r.Campaign.Total.Sent,
					Delivered:    r.Campaign.Total.Unique,
					Lost:         r.Campaign.Total.Lost,
					Failed:       r.Campaign.Total.Failed,
					Excused:      r.Campaign.Total.Excused,
					DeliveryRate: r.DeliveryRate(),
					Verdict:      r.Verdict(),
					Remaps:       r.Counters.Remaps,
					Unreachable:  r.Counters.Unreachable,
					DeadDeclared: r.Counters.DeadDeclared,
					Readmissions: r.Counters.Readmissions,
					LiveExpelled: r.Counters.LiveExpelled,
					RouteGaps:    r.Counters.RouteGaps,
				}
			}
			return ops, 0, nil
		})
		if err != nil {
			return err
		}
		sections["controlplane_campaign"] = sec
	}

	if doHF {
		cfg := chaos.CampaignConfig{
			Trials: 2,
			Trial: chaos.TrialConfig{
				Nodes:     4,
				Traffic:   sim.Second,
				SendEvery: 4 * sim.Millisecond,
				Events:    2,
				MaxSettle: 30 * sim.Second,
			},
		}
		// Pin the audited message size so the throughput accounting below
		// can count delivered payload bytes the way fig7_bw does.
		cfg.Trial.MsgBytes = chaos.DefaultTrialConfig().MsgBytes
		if *quick {
			cfg.Trials = 1
		}
		sec, err := measure(func() (int64, uint64, error) {
			var res []experiments.HostFaultResult
			var err error
			if *ckptEvery > 0 || *resumeFrom != "" {
				res, err = runHostFaultResumable(*seed, cfg, *ckptEvery, *ckptFile, *resumeFrom)
			} else {
				res, err = experiments.HostFaultComparison(*seed, cfg)
			}
			if err != nil {
				return 0, 0, err
			}
			fmt.Println(experiments.RenderHostFault(res))
			rep.HostFault = make(map[string]hostFaultJSON)
			var ops int64
			var bytes uint64
			for _, r := range res {
				ops += int64(r.Campaign.Total.Sent)
				// Delivered payload bytes, like fig7_bw: unique deliveries
				// times the audited message size (checkpoint bytes are
				// recovery metadata, not moved payload).
				bytes += r.Campaign.Total.Unique * uint64(cfg.Trial.MsgBytes)
				rep.HostFault[r.Label] = hostFaultJSON{
					Sent:            r.Campaign.Total.Sent,
					Delivered:       r.Campaign.Total.Unique,
					Excused:         r.Campaign.Total.Excused,
					DeliveryRate:    r.DeliveryRate(),
					Verdict:         r.Verdict(),
					Checkpoints:     r.Counters.Checkpoints,
					CheckpointBytes: r.Counters.CheckpointBytes,
					Restores:        r.Counters.Restores,
					Rejoins:         r.Counters.Rejoins,
					DeadDeclared:    r.Counters.DeadDeclared,
					Readmissions:    r.Counters.Readmissions,
					LiveExpelled:    r.Counters.LiveExpelled,
					RouteGaps:       r.Counters.RouteGaps,
					PeriodicFrames:  r.Counters.PeriodicFrames,
					PeriodicBytes:   r.Counters.PeriodicBytes,
					PeriodicSkips:   r.Counters.PeriodicSkips,
					MaxDrainPauseNs: int64(r.Counters.MaxDrainPause),
					ChainMismatches: r.Counters.ChainMismatches,
				}
			}
			return ops, bytes, nil
		})
		if err != nil {
			return err
		}
		sections["hostfault_campaign"] = sec
	}

	if doScale {
		sizes := []int{16, 64, 128, 256}
		stormAt := 128
		if *quick {
			sizes = []int{16, 64}
			stormAt = 64
		}
		sec, err := measure(func() (int64, uint64, error) {
			pts, err := experiments.ScaleSweep(sizes, *shards, stormAt)
			if err != nil {
				return 0, 0, err
			}
			fmt.Println(experiments.RenderScale(pts))
			rep.Scale = pts
			var ops int64
			var bytes uint64
			for _, p := range pts {
				ops += p.Serial.Delivered + p.Sharded.Delivered
				bytes += uint64(p.Serial.Delivered+p.Sharded.Delivered) * 512
				if s := p.Speedup(); s > rep.ScaleSpeedupMax {
					rep.ScaleSpeedupMax = s
				}
			}
			return ops, bytes, nil
		})
		if err != nil {
			return err
		}
		sec.Shards = *shards
		sections["scale"] = sec
	}

	if doMC {
		nodes := 256
		shardCounts := []int{1, 2, 4, 8}
		thresholds := []int{1, 3, 6}
		dur := 2 * sim.Millisecond
		if *quick {
			nodes = 64
			shardCounts = []int{1, 4}
			thresholds = []int{3}
			dur = sim.Millisecond
		}
		pts, err := experiments.ScaleMatrix(nodes, shardCounts, thresholds, dur)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderScaleMatrix(nodes, pts))
		rep.ScaleMatrix = pts
		// Each cell is its own machine configuration, so each gets its own
		// section (the matrix already measures per-cell wall clock).
		for _, p := range pts {
			r := p.Result
			s := benchSection{
				WallNs:        r.WallNs,
				Ops:           r.Delivered,
				Shards:        r.Shards,
				Speculative:   r.Speculative,
				Threshold:     r.Threshold,
				SpecCommits:   r.SpecCommits,
				SpecRollbacks: r.SpecRollbacks,
				HorizonLoNs:   int64(r.HorizonLo),
				HorizonHiNs:   int64(r.HorizonHi),
				HorizonMeanNs: int64(r.HorizonMean),
			}
			if r.Delivered > 0 {
				s.NsPerOp = float64(r.WallNs) / float64(r.Delivered)
			}
			sections["scale_mc_"+p.Label] = s
		}
	}

	rep.WallClockSec = time.Since(started).Seconds()
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%.1fs wall clock, %d workers)\n",
			*jsonPath, rep.WallClockSec, rep.Workers)
	}
	if *benchJSON != "" {
		brep := benchReport{
			GoVersion:  runtime.Version(),
			GoMaxProcs: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			Workers:    parallel.Workers(),
			Sections:   sections,
		}
		if *baseline != "" {
			base, baseCPU, err := loadBaseline(*baseline)
			if err != nil {
				return err
			}
			brep.Baseline = base
			brep.BaselineFrom = *baseline
			brep.BaselineNumCPU = baseCPU
			if b, ok := base["fig7_bw"]; ok {
				if cur, ok := sections["fig7_bw"]; ok && cur.WallNs > 0 {
					brep.Fig7Speedup = float64(b.WallNs) / float64(cur.WallNs)
				}
			}
		}
		buf, err := json.MarshalIndent(brep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*benchJSON, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s", *benchJSON)
		if brep.Fig7Speedup > 0 {
			fmt.Printf(" (fig7 %.2fx vs %s)", brep.Fig7Speedup, *baseline)
		}
		fmt.Println()
	}

	if *memProfile != "" {
		f, err := os.Create(*memProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}
