// Command gmbench regenerates the paper's performance evaluation on the
// simulated Myrinet/GM stack:
//
//	gmbench -mode bw      Figure 7  (bidirectional bandwidth vs length)
//	gmbench -mode lat     Figure 8  (half round-trip latency vs length)
//	gmbench -mode table2  Table 2   (metric summary, GM vs FTGM)
//	gmbench -mode all     everything
//
// The -quick flag shrinks the sweeps for a fast smoke run.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gmbench:", err)
		os.Exit(1)
	}
}

func run() error {
	mode := flag.String("mode", "all", "bw | lat | table2 | all")
	msgs := flag.Int("msgs", 200, "messages per bandwidth point (paper: 1000)")
	rounds := flag.Int("rounds", 100, "ping-pong rounds per latency point")
	quick := flag.Bool("quick", false, "small sweeps for a fast run")
	flag.Parse()

	if *quick {
		*msgs = 40
		*rounds = 20
	}

	doBW := *mode == "bw" || *mode == "all"
	doLat := *mode == "lat" || *mode == "all"
	doT2 := *mode == "table2" || *mode == "all"
	if !doBW && !doLat && !doT2 {
		return fmt.Errorf("unknown -mode %q", *mode)
	}

	if doBW {
		sizes := experiments.Figure7Sizes()
		if *quick {
			sizes = []int{64, 1024, 4096, 4097, 16384, 65536, 262144}
		}
		res, err := experiments.Figure7(sizes, *msgs)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if doLat {
		sizes := experiments.Figure8Sizes()
		if *quick {
			sizes = []int{1, 16, 100, 1024, 16384}
		}
		res, err := experiments.Figure8(sizes, *rounds)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	if doT2 {
		res, err := experiments.Table2()
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
	}
	return nil
}
