// Command gmbench regenerates the paper's performance evaluation on the
// simulated Myrinet/GM stack:
//
//	gmbench -mode bw        Figure 7  (bidirectional bandwidth vs length)
//	gmbench -mode lat       Figure 8  (half round-trip latency vs length)
//	gmbench -mode table2    Table 2   (metric summary, GM vs FTGM)
//	gmbench -mode table1    Table 1   (fault-injection campaign)
//	gmbench -mode netfault  network-fault failover (dead trunks/partitions)
//	gmbench -mode all       everything
//
// The -quick flag shrinks the sweeps for a fast smoke run. The -json flag
// writes the headline metrics (MB/s asymptote, short-message half-RTT,
// campaign percentages, wall-clock) to a machine-readable file so successive
// PRs have a bench trajectory to compare against.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/chaos"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/parallel"
	"repro/internal/sim"
)

// report is the -json output shape. Fields are omitted when their mode did
// not run.
type report struct {
	WallClockSec float64 `json:"wall_clock_sec"`
	Workers      int     `json:"workers"`

	// Figure 7: bandwidth at the largest swept size (the asymptote).
	GMBandwidthMBs   float64 `json:"gm_bandwidth_mbs,omitempty"`
	FTGMBandwidthMBs float64 `json:"ftgm_bandwidth_mbs,omitempty"`

	// Figure 8: half round trip at the smallest swept size.
	GMHalfRTTUs   float64 `json:"gm_half_rtt_us,omitempty"`
	FTGMHalfRTTUs float64 `json:"ftgm_half_rtt_us,omitempty"`

	// Table 2 summary rows.
	Table2 *table2JSON `json:"table2,omitempty"`

	// Table 1 campaign outcome percentages, keyed by category name.
	CampaignRuns    int                `json:"campaign_runs,omitempty"`
	CampaignPercent map[string]float64 `json:"campaign_percent,omitempty"`

	// Network-fault comparison, keyed by scheme (GM, FTGM, FTGM+netwatch).
	NetFault map[string]netFaultJSON `json:"netfault,omitempty"`
}

type netFaultJSON struct {
	Sent          uint64  `json:"sent"`
	Delivered     uint64  `json:"delivered"`
	Lost          uint64  `json:"lost"`
	Failed        uint64  `json:"failed"`
	DeliveryRate  float64 `json:"delivery_rate"`
	ExactlyOnce   bool    `json:"exactly_once"`
	Suspicions    uint64  `json:"suspicions"`
	Incidents     uint64  `json:"incidents"`
	Remaps        uint64  `json:"remaps"`
	RemapFailures uint64  `json:"remap_failures"`
	Probes        uint64  `json:"probes"`
	Unreachable   uint64  `json:"unreachable"`
	Readmissions  uint64  `json:"readmissions"`
}

type table2JSON struct {
	GM   table2RowJSON `json:"gm"`
	FTGM table2RowJSON `json:"ftgm"`
}

type table2RowJSON struct {
	BandwidthMBs  float64 `json:"bandwidth_mbs"`
	LatencyUs     float64 `json:"latency_us"`
	HostSendUs    float64 `json:"host_send_us"`
	HostRecvUs    float64 `json:"host_recv_us"`
	LanaiPerMsgUs float64 `json:"lanai_per_msg_us"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gmbench:", err)
		os.Exit(1)
	}
}

func run() error {
	mode := flag.String("mode", "all", "bw | lat | table2 | table1 | netfault | all")
	msgs := flag.Int("msgs", 200, "messages per bandwidth point (paper: 1000)")
	rounds := flag.Int("rounds", 100, "ping-pong rounds per latency point")
	runs := flag.Int("runs", 1000, "fault-injection trials for table1")
	seed := flag.Uint64("seed", 2003, "campaign seed for table1")
	quick := flag.Bool("quick", false, "small sweeps for a fast run")
	jsonPath := flag.String("json", "", "write headline metrics as JSON to this file")
	flag.Parse()

	if *quick {
		*msgs = 40
		*rounds = 20
		*runs = 200
	}

	doBW := *mode == "bw" || *mode == "all"
	doLat := *mode == "lat" || *mode == "all"
	doT2 := *mode == "table2" || *mode == "all"
	doT1 := *mode == "table1" || *mode == "all"
	doNF := *mode == "netfault" || *mode == "all"
	if !doBW && !doLat && !doT2 && !doT1 && !doNF {
		return fmt.Errorf("unknown -mode %q", *mode)
	}

	started := time.Now()
	rep := report{Workers: parallel.Workers()}

	if doBW {
		sizes := experiments.Figure7Sizes()
		if *quick {
			sizes = []int{64, 1024, 4096, 4097, 16384, 65536, 262144}
		}
		res, err := experiments.Figure7(sizes, *msgs)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		rep.GMBandwidthMBs = res.GM.Points[len(res.GM.Points)-1].Y
		rep.FTGMBandwidthMBs = res.FTGM.Points[len(res.FTGM.Points)-1].Y
	}
	if doLat {
		sizes := experiments.Figure8Sizes()
		if *quick {
			sizes = []int{1, 16, 100, 1024, 16384}
		}
		res, err := experiments.Figure8(sizes, *rounds)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		rep.GMHalfRTTUs = res.GM.Points[0].Y
		rep.FTGMHalfRTTUs = res.FTGM.Points[0].Y
	}
	if doT2 {
		res, err := experiments.Table2()
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		rep.Table2 = &table2JSON{
			GM:   table2RowJSON(res.GM),
			FTGM: table2RowJSON(res.FTGM),
		}
	}
	if doT1 {
		res, err := experiments.Table1(*runs, *seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		rep.CampaignRuns = res.Campaign.Runs
		rep.CampaignPercent = make(map[string]float64)
		for _, o := range fault.Outcomes() {
			rep.CampaignPercent[o.String()] = res.Campaign.Percent(o)
		}
	}

	if doNF {
		cfg := chaos.CampaignConfig{
			Trials: 4,
			Trial: chaos.TrialConfig{
				Nodes:     4,
				Traffic:   sim.Second,
				SendEvery: 2 * sim.Millisecond,
				Events:    2,
				MaxSettle: 15 * sim.Second,
			},
		}
		if *quick {
			cfg.Trials = 1
			cfg.Trial.SendEvery = 4 * sim.Millisecond
		}
		res, err := experiments.NetworkFaultComparison(*seed, cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderNetFault(res))
		rep.NetFault = make(map[string]netFaultJSON)
		for _, r := range res {
			rep.NetFault[r.Label] = netFaultJSON{
				Sent:          r.Campaign.Total.Sent,
				Delivered:     r.Campaign.Total.Unique,
				Lost:          r.Campaign.Total.Lost,
				Failed:        r.Campaign.Total.Failed,
				DeliveryRate:  r.DeliveryRate(),
				ExactlyOnce:   r.Campaign.AllExactlyOnce,
				Suspicions:    r.Counters.Suspicions,
				Incidents:     r.Counters.Incidents,
				Remaps:        r.Counters.Remaps,
				RemapFailures: r.Counters.RemapFailures,
				Probes:        r.Counters.Probes,
				Unreachable:   r.Counters.Unreachable,
				Readmissions:  r.Counters.Readmissions,
			}
		}
	}

	rep.WallClockSec = time.Since(started).Seconds()
	if *jsonPath != "" {
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(*jsonPath, append(buf, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%.1fs wall clock, %d workers)\n",
			*jsonPath, rep.WallClockSec, rep.Workers)
	}
	return nil
}
