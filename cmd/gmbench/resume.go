package main

import (
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/chaos"
	"repro/internal/experiments"
)

// Campaign distribution (-ckpt-every / -resume-from): the hostfault campaign
// is a pile of independent trials, each a pure function of (seed, trial
// index) by the engine's determinism contract — the same contract sim.Snapshot
// cursors attest within one simulation. That makes the campaign itself
// resumable across processes and machines: run trials one at a time, write
// the accumulated results plus a cursor to a JSON artifact every N trials,
// and a later gmbench invocation — anywhere, any worker or shard count —
// validates the artifact's seed and config fingerprint, skips the completed
// prefix, and finishes the rest. The folded result is bit-identical to a
// single uninterrupted run.

// artifactVersion guards the artifact layout; a mismatch means the writing
// and resuming binaries disagree about the trial accounting and the resumed
// campaign could not be folded faithfully.
const artifactVersion = 1

type campaignArtifact struct {
	Version int    `json:"version"`
	Seed    uint64 `json:"seed"`
	// Config fingerprints the full campaign configuration. Trials are pure
	// functions of (seed, index, config); resuming under a different config
	// would silently splice two different campaigns, so a mismatch refuses.
	Config  string           `json:"config"`
	Schemes []schemeArtifact `json:"schemes"`
}

type schemeArtifact struct {
	Label  string `json:"label"`
	Trials int    `json:"trials"` // planned trial count for the scheme
	// Done holds the completed trials in index order; its length is the
	// resume cursor.
	Done []chaos.TrialResult `json:"done"`
}

func configFingerprint(schemes []experiments.HostFaultScheme) string {
	return fmt.Sprintf("%+v", schemes)
}

// writeArtifact persists the artifact atomically: a torn write must never
// masquerade as a valid resume point.
func writeArtifact(path string, art *campaignArtifact) error {
	buf, err := json.MarshalIndent(art, "", " ")
	if err != nil {
		return err
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, path)
}

func loadArtifact(path string) (*campaignArtifact, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	art := &campaignArtifact{}
	if err := json.Unmarshal(buf, art); err != nil {
		return nil, fmt.Errorf("artifact %s: %w", path, err)
	}
	if art.Version != artifactVersion {
		return nil, fmt.Errorf("artifact %s: version %d, this binary writes %d", path, art.Version, artifactVersion)
	}
	return art, nil
}

// runHostFaultResumable runs the hostfault comparison trial by trial,
// checkpointing the campaign artifact every `every` completed trials (always
// once at the end when a path is set). With resumeFrom it validates the
// prior artifact against this run's seed and config and continues from its
// cursor.
func runHostFaultResumable(seed uint64, cfg chaos.CampaignConfig, every int, path, resumeFrom string) ([]experiments.HostFaultResult, error) {
	schemes := experiments.HostFaultSchemes(cfg)
	print := configFingerprint(schemes)

	art := &campaignArtifact{Version: artifactVersion, Seed: seed, Config: print}
	for _, s := range schemes {
		trials := s.Cfg.Trials
		if trials <= 0 {
			trials = 1
		}
		art.Schemes = append(art.Schemes, schemeArtifact{Label: s.Label, Trials: trials})
	}
	if resumeFrom != "" {
		prior, err := loadArtifact(resumeFrom)
		if err != nil {
			return nil, err
		}
		if prior.Seed != seed {
			return nil, fmt.Errorf("artifact %s: seed %d, this run uses %d", resumeFrom, prior.Seed, seed)
		}
		if prior.Config != print {
			return nil, fmt.Errorf("artifact %s: campaign config differs from this run; refusing to splice", resumeFrom)
		}
		if len(prior.Schemes) != len(art.Schemes) {
			return nil, fmt.Errorf("artifact %s: %d schemes, this run plans %d", resumeFrom, len(prior.Schemes), len(art.Schemes))
		}
		for i := range art.Schemes {
			p := prior.Schemes[i] // same config ⇒ same scheme list
			if len(p.Done) > art.Schemes[i].Trials {
				return nil, fmt.Errorf("artifact %s: scheme %s has %d done of %d planned", resumeFrom, p.Label, len(p.Done), art.Schemes[i].Trials)
			}
			art.Schemes[i].Done = p.Done
			fmt.Printf("resume: %s at trial %d/%d\n", p.Label, len(p.Done), art.Schemes[i].Trials)
		}
		if path == "" {
			path = resumeFrom
		}
	}

	completed := 0
	checkpoint := func(force bool) error {
		if path == "" || (!force && (every <= 0 || completed%every != 0)) {
			return nil
		}
		return writeArtifact(path, art)
	}
	for si, s := range schemes {
		sa := &art.Schemes[si]
		for i := len(sa.Done); i < sa.Trials; i++ {
			tr, err := chaos.RunTrial(seed, i, s.Cfg.Mode, s.Cfg.Trial)
			if err != nil {
				return nil, err
			}
			sa.Done = append(sa.Done, tr)
			completed++
			if err := checkpoint(false); err != nil {
				return nil, err
			}
		}
	}
	if err := checkpoint(true); err != nil {
		return nil, err
	}

	results := make([]experiments.HostFaultResult, 0, len(schemes))
	for si, s := range schemes {
		campaign := chaos.AssembleCampaign(seed, s.Cfg.Mode, art.Schemes[si].Done)
		results = append(results, experiments.FoldHostFault(s.Label, campaign))
	}
	return results, nil
}
