// Command faultcampaign reproduces the paper's fault-injection study:
//
//	faultcampaign                     Table 1 (1000 random bit flips)
//	faultcampaign -runs 5000          a larger sample
//	faultcampaign -exhaustive         flip every bit of send_chunk once
//	faultcampaign -ftgm               repeat with FTGM and replay the hangs
//	                                  against a live cluster (§5.2)
//	faultcampaign -chaos              chaos campaign: compound faults (dual
//	                                  hangs, hang-during-recovery, flapping
//	                                  and lossy cables, dead switch ports,
//	                                  failing reloads) with an end-to-end
//	                                  exactly-once delivery audit, GM vs FTGM
//
// The -json flag writes the headline numbers to a machine-readable file,
// matching gmbench's bench-trajectory convention.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/chaos"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/parallel"
)

// report is the -json output shape. Fields are omitted when their mode did
// not run.
type report struct {
	WallClockSec float64 `json:"wall_clock_sec"`
	Workers      int     `json:"workers"`
	Seed         uint64  `json:"seed"`

	// Table 1 campaign outcome percentages, keyed by category name.
	CampaignRuns    int                `json:"campaign_runs,omitempty"`
	CampaignPercent map[string]float64 `json:"campaign_percent,omitempty"`

	// Chaos campaign audit totals per scheme.
	Chaos map[string]*chaosJSON `json:"chaos,omitempty"`
}

type chaosJSON struct {
	Trials         int    `json:"trials"`
	CleanTrials    int    `json:"clean_trials"`
	Sent           uint64 `json:"sent"`
	Delivered      uint64 `json:"delivered"`
	Duplicates     uint64 `json:"duplicates"`
	OutOfOrder     uint64 `json:"out_of_order"`
	Lost           uint64 `json:"lost"`
	Corrupt        uint64 `json:"corrupt"`
	AllExactlyOnce bool   `json:"all_exactly_once"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "faultcampaign:", err)
		os.Exit(1)
	}
}

func run() error {
	runs := flag.Int("runs", 1000, "number of injections (paper: 1000)")
	seed := flag.Uint64("seed", 2003, "campaign RNG seed")
	exhaustive := flag.Bool("exhaustive", false, "flip every bit of the section once")
	ftgm := flag.Bool("ftgm", false, "replay hang outcomes against a live FTGM cluster (§5.2)")
	sample := flag.Int("sample", 20, "hangs to replay with -ftgm (0 = all)")
	sections := flag.Bool("sections", false, "compare send_chunk vs recv_chunk injection")
	chaosMode := flag.Bool("chaos", false, "compound-fault chaos campaign with delivery audit, GM vs FTGM")
	trials := flag.Int("trials", 4, "chaos trials per scheme")
	jsonPath := flag.String("json", "", "write headline metrics as JSON to this file")
	flag.Parse()

	started := time.Now()
	rep := report{Workers: parallel.Workers(), Seed: *seed}

	if *chaosMode {
		cfg := chaos.DefaultCampaignConfig()
		cfg.Trials = *trials
		results, err := experiments.ChaosComparison(*seed, cfg)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderChaos(results))
		rep.Chaos = make(map[string]*chaosJSON)
		for _, r := range results {
			rep.Chaos[r.Mode] = &chaosJSON{
				Trials:         len(r.Trials),
				CleanTrials:    r.CleanTrials,
				Sent:           r.Total.Sent,
				Delivered:      r.Total.Delivered,
				Duplicates:     r.Total.Duplicates,
				OutOfOrder:     r.Total.OutOfOrder,
				Lost:           r.Total.Lost,
				Corrupt:        r.Total.Corrupt,
				AllExactlyOnce: r.AllExactlyOnce,
			}
		}
		return writeJSON(*jsonPath, &rep, started)
	}

	if *sections {
		send, recv, err := experiments.Table1Sections(*runs, *seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderSections(send, recv))
		return writeJSON(*jsonPath, &rep, started)
	}

	var res experiments.Table1Result
	var err error
	if *exhaustive {
		res, err = experiments.Table1Exhaustive(*seed)
	} else {
		res, err = experiments.Table1(*runs, *seed)
	}
	if err != nil {
		return err
	}
	fmt.Println(res.Render())
	rep.CampaignRuns = res.Campaign.Runs
	rep.CampaignPercent = campaignPercent(res)

	if *ftgm {
		fmt.Println("Replaying hang outcomes against a live FTGM pair (watchdog detection +")
		fmt.Println("transparent recovery + exactly-once delivery audit)...")
		fmt.Println()
		eff, err := experiments.Effectiveness(*runs, *sample, *seed)
		if err != nil {
			return err
		}
		fmt.Println(eff.Render())
		fmt.Println("Note: the paper reports 5/286 hangs its prototype could not recover and")
		fmt.Println("left them under investigation; this deterministic reproduction recovers")
		fmt.Println("every replayed hang, so that residue does not appear here.")
	}
	return writeJSON(*jsonPath, &rep, started)
}

func campaignPercent(res experiments.Table1Result) map[string]float64 {
	out := make(map[string]float64)
	for _, o := range fault.Outcomes() {
		out[o.String()] = res.Campaign.Percent(o)
	}
	return out
}

func writeJSON(path string, rep *report, started time.Time) error {
	if path == "" {
		return nil
	}
	rep.WallClockSec = time.Since(started).Seconds()
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s (%.1fs wall clock, %d workers)\n",
		path, rep.WallClockSec, rep.Workers)
	return nil
}
