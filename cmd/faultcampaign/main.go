// Command faultcampaign reproduces the paper's fault-injection study:
//
//	faultcampaign                     Table 1 (1000 random bit flips)
//	faultcampaign -runs 5000          a larger sample
//	faultcampaign -exhaustive         flip every bit of send_chunk once
//	faultcampaign -ftgm               repeat with FTGM and replay the hangs
//	                                  against a live cluster (§5.2)
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "faultcampaign:", err)
		os.Exit(1)
	}
}

func run() error {
	runs := flag.Int("runs", 1000, "number of injections (paper: 1000)")
	seed := flag.Uint64("seed", 2003, "campaign RNG seed")
	exhaustive := flag.Bool("exhaustive", false, "flip every bit of the section once")
	ftgm := flag.Bool("ftgm", false, "replay hang outcomes against a live FTGM cluster (§5.2)")
	sample := flag.Int("sample", 20, "hangs to replay with -ftgm (0 = all)")
	sections := flag.Bool("sections", false, "compare send_chunk vs recv_chunk injection")
	flag.Parse()

	if *sections {
		send, recv, err := experiments.Table1Sections(*runs, *seed)
		if err != nil {
			return err
		}
		fmt.Println(experiments.RenderSections(send, recv))
		return nil
	}

	var res experiments.Table1Result
	var err error
	if *exhaustive {
		res, err = experiments.Table1Exhaustive(*seed)
	} else {
		res, err = experiments.Table1(*runs, *seed)
	}
	if err != nil {
		return err
	}
	fmt.Println(res.Render())

	if *ftgm {
		fmt.Println("Replaying hang outcomes against a live FTGM pair (watchdog detection +")
		fmt.Println("transparent recovery + exactly-once delivery audit)...")
		fmt.Println()
		eff, err := experiments.Effectiveness(*runs, *sample, *seed)
		if err != nil {
			return err
		}
		fmt.Println(eff.Render())
		fmt.Println("Note: the paper reports 5/286 hangs its prototype could not recover and")
		fmt.Println("left them under investigation; this deterministic reproduction recovers")
		fmt.Println("every replayed hang, so that residue does not appear here.")
	}
	return nil
}
