// Command mcpasm inspects the fault-injection firmware: it assembles the
// campaign's MCP fragment, prints a disassembly listing, and can replay a
// single bit-flip trial showing exactly which instruction was corrupted
// into what and how the execution ended.
//
//	mcpasm                     disassemble the whole program
//	mcpasm -section recv_chunk disassemble one section
//	mcpasm -trial 1234         replay the flip at bit 1234 of the section
//	mcpasm -hunt hang          find and explain the first flip with that outcome
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/fault"
	"repro/internal/isa"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mcpasm:", err)
		os.Exit(1)
	}
}

func run() error {
	section := flag.String("section", "send_chunk", "send_chunk | recv_chunk")
	trial := flag.Int("trial", -1, "replay the flip at this bit offset of the section")
	hunt := flag.String("hunt", "", "find the first flip whose outcome contains this string")
	seed := flag.Uint64("seed", 2003, "campaign seed")
	flag.Parse()

	sec := fault.SectionSend
	if *section == "recv_chunk" {
		sec = fault.SectionRecv
	} else if *section != "send_chunk" {
		return fmt.Errorf("unknown -section %q", *section)
	}

	prog, err := fault.Program()
	if err != nil {
		return err
	}
	campaign, err := fault.NewSectionCampaign(sec, *seed)
	if err != nil {
		return err
	}
	lo, hi, err := prog.SymbolRange(symbolsOf(sec))
	if err != nil {
		return err
	}

	switch {
	case *trial >= 0:
		return explainTrial(campaign, prog, lo, *trial)
	case *hunt != "":
		for bit := 0; bit < campaign.SectionBits(); bit++ {
			tr := campaign.RunTrial(bit)
			if strings.Contains(strings.ToLower(tr.Outcome.String()), strings.ToLower(*hunt)) {
				return explainTrial(campaign, prog, lo, bit)
			}
		}
		return fmt.Errorf("no flip in %s produces an outcome matching %q", sec, *hunt)
	default:
		img := make([]byte, int(prog.Origin)+len(prog.Image))
		copy(img[prog.Origin:], prog.Image)
		fmt.Printf("; MCP fragment, %d bytes; section %s = [%#x, %#x) (%d bits)\n\n",
			len(prog.Image), sec, lo, hi, campaign.SectionBits())
		fmt.Print(isa.Listing(img, prog.Origin, prog.Origin+uint32(len(prog.Image)), prog.Symbols))
	}
	return nil
}

func symbolsOf(sec fault.Section) (string, string) {
	if sec == fault.SectionRecv {
		return "recv_chunk", "recv_chunk_end"
	}
	return "send_chunk", "send_chunk_end"
}

func explainTrial(c *fault.Campaign, prog *isa.Program, lo uint32, bit int) error {
	if bit >= c.SectionBits() {
		return fmt.Errorf("bit %d out of section range (%d bits)", bit, c.SectionBits())
	}
	addr := lo + uint32(bit/8)
	wordAddr := addr &^ 3
	// Original and corrupted instruction words.
	img := make([]byte, int(prog.Origin)+len(prog.Image))
	copy(img[prog.Origin:], prog.Image)
	orig := wordAt(img, wordAddr)
	img[addr] ^= 1 << (bit % 8)
	bad := wordAt(img, wordAddr)

	tr := c.RunTrial(bit)
	fmt.Printf("flip bit %d: byte %#x, bit %d of the instruction word at %#x\n\n",
		bit, addr, (int(addr-wordAddr)*8)+bit%8, wordAddr)
	fmt.Printf("  before: %08x  %s\n", uint32(orig), isa.Disassemble(orig))
	fmt.Printf("  after:  %08x  %s\n\n", uint32(bad), isa.Disassemble(bad))
	fmt.Printf("  execution stopped: %v\n", tr.Stop)
	fmt.Printf("  classified as:     %v\n", tr.Outcome)
	return nil
}

func wordAt(mem []byte, addr uint32) isa.Word {
	return isa.Word(uint32(mem[addr]) | uint32(mem[addr+1])<<8 |
		uint32(mem[addr+2])<<16 | uint32(mem[addr+3])<<24)
}
