package parallel

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
)

func TestMapOrderPreserved(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 0} {
		got, err := Map(100, workers, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 100 {
			t.Fatalf("workers=%d: %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	got, err := Map(0, 4, func(i int) (int, error) { return 0, errors.New("never called") })
	if err != nil || got != nil {
		t.Fatalf("Map(0) = %v, %v", got, err)
	}
}

func TestMapLowestIndexError(t *testing.T) {
	// Indices 3 and 7 fail; the reported error must be index 3's when both
	// ran, and never a nil error.
	boom3 := errors.New("boom 3")
	_, err := Map(10, 1, func(i int) (int, error) {
		if i == 3 || i == 7 {
			return 0, fmt.Errorf("boom %d", i)
		}
		return i, nil
	})
	if err == nil || err.Error() != boom3.Error() {
		t.Fatalf("serial error = %v, want %v", err, boom3)
	}
	_, err = Map(10, 4, func(i int) (int, error) {
		if i == 3 {
			return 0, boom3
		}
		return i, nil
	})
	if !errors.Is(err, boom3) {
		t.Fatalf("parallel error = %v, want %v", err, boom3)
	}
}

func TestMapErrorStopsWork(t *testing.T) {
	var calls atomic.Int64
	_, err := Map(1_000_000, 2, func(i int) (int, error) {
		calls.Add(1)
		return 0, errors.New("immediate")
	})
	if err == nil {
		t.Fatal("no error")
	}
	if n := calls.Load(); n > 1000 {
		t.Fatalf("ran %d tasks after first error", n)
	}
}

func TestMapWorkerState(t *testing.T) {
	// Each worker gets exactly one state; every call sees its own worker's
	// state; all items are covered exactly once.
	var states atomic.Int64
	covered := make([]atomic.Int64, 64)
	_, err := MapWorker(64, 4,
		func(w int) (int, error) { states.Add(1); return w, nil },
		func(s, i int) (struct{}, error) {
			if s < 0 || s >= 4 {
				return struct{}{}, fmt.Errorf("bad state %d", s)
			}
			covered[i].Add(1)
			return struct{}{}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if n := states.Load(); n < 1 || n > 4 {
		t.Fatalf("built %d states, want 1..4", n)
	}
	for i := range covered {
		if covered[i].Load() != 1 {
			t.Fatalf("item %d ran %d times", i, covered[i].Load())
		}
	}
}

func TestMapWorkerInitError(t *testing.T) {
	boom := errors.New("init boom")
	_, err := MapWorker(10, 4,
		func(w int) (int, error) {
			if w == 0 {
				return 0, boom
			}
			return w, nil
		},
		func(s, i int) (int, error) { return i, nil })
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want %v", err, boom)
	}
}

func TestWorkersPositive(t *testing.T) {
	if Workers() < 1 {
		t.Fatalf("Workers() = %d", Workers())
	}
}
