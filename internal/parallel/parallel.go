// Package parallel provides the deterministic fan-out primitive the
// experiment layer runs on. Every campaign and benchmark in this repo is a
// set of independent trials, each against its own isolated simulation; Map
// spreads those trials across GOMAXPROCS workers while keeping the result
// slice in trial order, so a parallel run is indistinguishable from the
// serial one. Randomized campaigns pair this with sim.DeriveRNG's
// seed-splitting so each trial's random stream is a pure function of
// (seed, trial index) rather than of worker scheduling: results are
// bit-for-bit identical at any worker count.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers reports the default fan-out width: GOMAXPROCS.
func Workers() int { return runtime.GOMAXPROCS(0) }

// Map evaluates fn(0..n-1) across min(workers, n) goroutines and returns the
// results in index order. workers <= 0 selects Workers(). If any call fails,
// Map stops handing out further work and returns the error with the lowest
// index among the calls that ran (never an arbitrary "first observed" error,
// which would depend on scheduling).
func Map[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	return MapWorker(n, workers,
		func(int) (struct{}, error) { return struct{}{}, nil },
		func(_ struct{}, i int) (T, error) { return fn(i) })
}

// MapWorker is Map with per-worker state: newState runs once on each worker
// goroutine before it takes work, and the state it returns is threaded
// through every fn call that worker executes. Campaigns use this to give
// each worker one pre-built simulation rig that is reset between trials
// instead of reallocated per trial.
//
// The state must not affect fn's result — determinism requires fn(s, i) to
// depend only on i, with s serving purely as reusable scratch capacity.
func MapWorker[S, T any](n, workers int, newState func(w int) (S, error), fn func(s S, i int) (T, error)) ([]T, error) {
	if n <= 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = Workers()
	}
	if workers > n {
		workers = n
	}

	out := make([]T, n)
	errs := make([]error, n)
	var next atomic.Int64
	var failed atomic.Bool
	var initMu sync.Mutex
	var initErr error

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s, err := newState(w)
			if err != nil {
				initMu.Lock()
				if initErr == nil {
					initErr = err
				}
				initMu.Unlock()
				failed.Store(true)
				return
			}
			for !failed.Load() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				v, err := fn(s, i)
				if err != nil {
					errs[i] = err
					failed.Store(true)
					return
				}
				out[i] = v
			}
		}(w)
	}
	wg.Wait()

	if initErr != nil {
		return nil, initErr
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
