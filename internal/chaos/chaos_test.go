package chaos

import (
	"reflect"
	"testing"

	"repro/gm"
	"repro/internal/sim"
)

const testSeed = 20030623 // DSN 2003, San Francisco

func testCampaignConfig(mode gm.Mode) CampaignConfig {
	cfg := DefaultCampaignConfig()
	cfg.Mode = mode
	cfg.Trials = 2
	// Lighter traffic than the default campaign keeps the test quick; the
	// injection plan (all seven fault classes per trial) is unchanged.
	cfg.Trial.SendEvery = 4 * sim.Millisecond
	if testing.Short() {
		cfg.Trials = 1
	}
	return cfg
}

// The acceptance campaign: hang-during-recovery, dual hangs, link flaps,
// degraded links, port death and reload failures, with FTGM delivering
// every message exactly once, in order.
func TestFTGMCampaignExactlyOnceInOrder(t *testing.T) {
	res, err := Run(testSeed, testCampaignConfig(gm.ModeFTGM))
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Sent == 0 {
		t.Fatal("campaign sent nothing")
	}
	if !res.AllExactlyOnce {
		for _, tr := range res.Trials {
			t.Logf("trial %d: %v dirty=%v (events: %v)", tr.Trial, tr.Audit, tr.Audit.Dirty, tr.Events)
		}
		t.Fatalf("FTGM audit dirty: %v", res.Total)
	}
	// The plan must actually have exercised every fault class.
	kinds := make(map[EventKind]bool)
	var rec TrialResult
	for _, tr := range res.Trials {
		for _, ev := range tr.Events {
			kinds[ev.Kind] = true
		}
		rec.Recoveries += tr.Recoveries
		rec.RecoveryRestarts += tr.RecoveryRestarts
		rec.ReloadRetries += tr.ReloadRetries
		rec.FaultDrops += tr.FaultDrops
		rec.Corruptions += tr.Corruptions
		rec.Retransmits += tr.Retransmits
		rec.RecoveryFailures += tr.RecoveryFailures
	}
	for _, k := range AllKinds() {
		if !kinds[k] {
			t.Errorf("fault class %v never injected", k)
		}
	}
	if rec.Recoveries == 0 {
		t.Error("no FTD recoveries despite injected hangs")
	}
	if rec.RecoveryRestarts == 0 {
		t.Error("hang-during-recovery never restarted the FTD sequence")
	}
	if rec.ReloadRetries == 0 {
		t.Error("reload-failure events never exercised the retry path")
	}
	if rec.FaultDrops == 0 && rec.Corruptions == 0 {
		t.Error("link degrade windows injected no damage")
	}
	if rec.Retransmits == 0 {
		t.Error("no Go-Back-N repair despite injected losses")
	}
	if rec.RecoveryFailures != 0 {
		t.Errorf("unexpected terminal recovery failures: %d", rec.RecoveryFailures)
	}
}

// The same fault sequences against stock GM (with the §3 naive-restart
// watchdog) must demonstrably break delivery: duplicates, losses, or
// reordering.
func TestGMCampaignBreaksDelivery(t *testing.T) {
	cfg := testCampaignConfig(gm.ModeGM)
	cfg.Trial.MaxSettle = 30 * sim.Second
	res, err := Run(testSeed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Sent == 0 {
		t.Fatal("campaign sent nothing")
	}
	if res.AllExactlyOnce {
		t.Fatalf("stock GM survived the chaos campaign unscathed: %v", res.Total)
	}
	if res.Total.Duplicates+res.Total.Lost+res.Total.OutOfOrder+res.Total.Corrupt == 0 {
		t.Errorf("no delivery defects recorded: %v", res.Total)
	}
}

// The seed-split contract: a campaign fanned out over N workers is
// bit-for-bit identical to the serial run.
func TestCampaignWorkerCountInvariance(t *testing.T) {
	cfg := testCampaignConfig(gm.ModeFTGM)
	cfg.Workers = 1
	serial, err := Run(testSeed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	fanned, err := Run(testSeed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, fanned) {
		t.Fatalf("results differ across worker counts:\n 1 worker: %+v\n 4 workers: %+v", serial, fanned)
	}
}

// Audit payloads round-trip, and damage is detected.
func TestAuditPayloadRoundTrip(t *testing.T) {
	k := StreamKey{Src: 3, SrcPort: 2, Dst: 300, DstPort: 7}
	buf := make([]byte, MinMsgBytes)
	encodeAudit(buf, k, 41)
	got, idx, ok := decodeAudit(buf)
	if !ok || got != k || idx != 41 {
		t.Fatalf("round trip = %v %d %v", got, idx, ok)
	}
	buf[13]++ // damage the index
	if _, _, ok := decodeAudit(buf); ok {
		t.Error("checksum missed damage")
	}
	if _, _, ok := decodeAudit(buf[:8]); ok {
		t.Error("short payload decoded")
	}
}

// The auditor's verdict logic: duplicates, reordering, loss and corruption
// each break exactly-once in-order.
func TestAuditorVerdicts(t *testing.T) {
	k := StreamKey{Src: 1, SrcPort: 2, Dst: 2, DstPort: 2}
	deliver := func(a *Auditor, idx uint32) {
		buf := make([]byte, MinMsgBytes)
		encodeAudit(buf, k, idx)
		a.RecordDelivery(k.Dst, k.DstPort, gm.RecvEvent{Data: buf, Src: k.Src, SrcPort: k.SrcPort})
	}
	send := func(a *Auditor, n int) {
		for i := 0; i < n; i++ {
			a.NewMessage(k, MinMsgBytes)
		}
	}

	a := NewAuditor()
	send(a, 3)
	deliver(a, 1)
	deliver(a, 2)
	if a.Complete() {
		t.Error("complete with one message outstanding")
	}
	deliver(a, 3)
	if !a.Complete() {
		t.Error("not complete after full delivery")
	}
	if r := a.Report(); !r.ExactlyOnceInOrder || r.Sent != 3 || r.Unique != 3 {
		t.Errorf("clean run report = %v", r)
	}

	a = NewAuditor()
	send(a, 2)
	deliver(a, 1)
	deliver(a, 1)
	deliver(a, 2)
	if r := a.Report(); r.ExactlyOnceInOrder || r.Duplicates != 1 {
		t.Errorf("duplicate report = %v", r)
	}

	a = NewAuditor()
	send(a, 2)
	deliver(a, 2)
	deliver(a, 1)
	if r := a.Report(); r.ExactlyOnceInOrder || r.OutOfOrder != 1 {
		t.Errorf("reorder report = %v", r)
	}

	a = NewAuditor()
	send(a, 2)
	deliver(a, 1)
	if r := a.Report(); r.ExactlyOnceInOrder || r.Lost != 1 {
		t.Errorf("loss report = %v", r)
	}

	a = NewAuditor()
	send(a, 1)
	buf := make([]byte, MinMsgBytes)
	encodeAudit(buf, k, 1)
	buf[2] ^= 0x40 // break the magic
	a.RecordDelivery(k.Dst, k.DstPort, gm.RecvEvent{Data: buf, Src: k.Src, SrcPort: k.SrcPort})
	if r := a.Report(); r.ExactlyOnceInOrder || r.Corrupt != 1 {
		t.Errorf("corrupt report = %v", r)
	}

	// Unsend rolls a refused send back out of the books.
	a = NewAuditor()
	send(a, 1)
	a.Unsend(k)
	if r := a.Report(); r.Sent != 0 {
		t.Errorf("unsend report = %v", r)
	}

	// A terminally-failed undelivered send is excused from loss; a failed
	// send that arrived anyway simply counts as delivered.
	a = NewAuditor()
	send(a, 2)
	deliver(a, 1)
	fail := make([]byte, MinMsgBytes)
	encodeAudit(fail, k, 2)
	a.RecordSendFailure(fail)
	if !a.Complete() {
		t.Error("not complete with the outstanding send excused")
	}
	if r := a.Report(); !r.ExactlyOnceInOrder || r.Lost != 0 || r.Failed != 1 {
		t.Errorf("excused-failure report = %v", r)
	}
	deliver(a, 2)
	if r := a.Report(); !r.ExactlyOnceInOrder || r.Unique != 2 || r.Duplicates != 0 {
		t.Errorf("failed-but-delivered report = %v", r)
	}
}

func netFaultTrialConfig() TrialConfig {
	cfg := DefaultTrialConfig()
	cfg.DualSwitch = true
	cfg.NetWatch = true
	cfg.Traffic = sim.Second
	cfg.SendEvery = 4 * sim.Millisecond
	cfg.Events = 2
	cfg.Kinds = NetFaultKinds()
	cfg.MaxSettle = 30 * sim.Second
	return cfg
}

// The network-fault acceptance campaign: dead trunks and a full node
// partition on the dual-switch fabric, with the watchdog remapping onto the
// surviving trunk. Everything the library accepted and did not terminally
// fail is delivered exactly once, in order.
func TestNetFaultCampaignFailoverExactlyOnce(t *testing.T) {
	cfg := CampaignConfig{Trials: 2, Mode: gm.ModeFTGM, Trial: netFaultTrialConfig()}
	if testing.Short() {
		cfg.Trials = 1
	}
	res, err := Run(testSeed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Sent == 0 {
		t.Fatal("campaign sent nothing")
	}
	if !res.AllExactlyOnce {
		for _, tr := range res.Trials {
			t.Logf("trial %d: %v dirty=%v (events: %v)", tr.Trial, tr.Audit, tr.Audit.Dirty, tr.Events)
		}
		t.Fatalf("netfault audit dirty: %v", res.Total)
	}
	var sum TrialResult
	for _, tr := range res.Trials {
		sum.NetFaultSuspicions += tr.NetFaultSuspicions
		sum.NetSuspicions += tr.NetSuspicions
		sum.NetRemaps += tr.NetRemaps
		sum.NetUnreachable += tr.NetUnreachable
		sum.UnreachableFails += tr.UnreachableFails
	}
	if sum.NetFaultSuspicions == 0 || sum.NetSuspicions == 0 {
		t.Errorf("no path-fault suspicions raised: %+v", sum)
	}
	if sum.NetRemaps == 0 {
		t.Error("the watchdog never remapped")
	}
	if sum.NetUnreachable == 0 {
		t.Error("the partition never produced an unreachable verdict")
	}
}

// The contrast: the same trunk kill without the watchdog leaves plain FTGM
// retransmitting into the void — the trial never drains and the auditor
// records losses.
func TestNetFaultCampaignStallsWithoutWatchdog(t *testing.T) {
	cfg := CampaignConfig{Trials: 1, Mode: gm.ModeFTGM, Trial: netFaultTrialConfig()}
	cfg.Trial.NetWatch = false
	cfg.Trial.Events = 1
	cfg.Trial.Kinds = []EventKind{KindTrunkDeath}
	cfg.Trial.MaxSettle = 10 * sim.Second
	res, err := Run(testSeed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AllExactlyOnce {
		t.Fatalf("plain FTGM survived a trunk death it cannot route around: %v", res.Total)
	}
	if res.Total.Lost == 0 {
		t.Errorf("no losses recorded on a stalled fabric: %v", res.Total)
	}
	if res.Trials[0].NetFaultSuspicions == 0 {
		t.Error("detection did not fire (it should run even without the daemon)")
	}
	if res.Trials[0].NetRemaps != 0 {
		t.Errorf("remaps without a watchdog: %+v", res.Trials[0])
	}
}

func mapperDeathTrialConfig() TrialConfig {
	cfg := DefaultTrialConfig()
	cfg.Traffic = sim.Second
	cfg.SendEvery = 4 * sim.Millisecond
	cfg.Events = 1
	cfg.Kinds = []EventKind{KindMapperDeath}
	cfg.MaxSettle = 30 * sim.Second
	return cfg
}

// The mapper-death acceptance campaign: node 0 — the boot-time mapper —
// hard-hangs in the middle of an active remap window, taking its chip
// timers (and any centralized repair authority) with it. The gossip plane
// has no distinguished node: the survivors expel exactly the dead member
// by distributed agreement, rebuild full route tables among themselves,
// and every message the library did not terminally fail is delivered
// exactly once, in order.
func TestCampaignMapperDeathGossipSurvives(t *testing.T) {
	tcfg := mapperDeathTrialConfig()
	tcfg.ControlPlane = gm.ControlPlaneGossip
	cfg := CampaignConfig{Trials: 2, Mode: gm.ModeFTGM, Trial: tcfg}
	if testing.Short() {
		cfg.Trials = 1
	}
	res, err := Run(testSeed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Sent == 0 {
		t.Fatal("campaign sent nothing")
	}
	if !res.AllExactlyOnce {
		for _, tr := range res.Trials {
			t.Logf("trial %d: %v dirty=%v (events: %v)", tr.Trial, tr.Audit, tr.Audit.Dirty, tr.Events)
		}
		t.Fatalf("mapper-death audit dirty under gossip: %v", res.Total)
	}
	if res.Total.Excused == 0 {
		t.Error("the dead mapper's unfinished sends were never excused")
	}
	for _, tr := range res.Trials {
		if tr.GossipProbes == 0 {
			t.Errorf("trial %d: gossip plane never probed: %+v", tr.Trial, tr)
		}
		if tr.GossipDeadDeclared == 0 {
			t.Errorf("trial %d: the dead mapper was never declared dead: %+v", tr.Trial, tr)
		}
		if tr.GossipLiveExpelled != 0 {
			t.Errorf("trial %d: distributed agreement expelled %d live nodes", tr.Trial, tr.GossipLiveExpelled)
		}
		if tr.GossipRouteGaps != 0 {
			t.Errorf("trial %d: %d survivor route-table gaps after convergence", tr.Trial, tr.GossipRouteGaps)
		}
		if tr.NetRemaps != 0 || tr.NetUnreachable != 0 {
			t.Errorf("trial %d: central watchdog activity under the gossip plane: %+v", tr.Trial, tr)
		}
	}
}

// The contrast, part one: the centralized watchdog lives on the mapper
// node, so the mapper's death leaves repair in the hands of a corpse. Its
// remap scouts transmit into a dead chip and return a one-node map — node
// 0 alone — which the daemon happily installs, and one grace period later
// every live survivor has been expelled as "unreachable". The survivors'
// pending sends are terminally failed, so the audit is only vacuously
// clean: the cluster has destroyed itself, not recovered.
func TestCampaignMapperDeathCentralCollapses(t *testing.T) {
	tcfg := mapperDeathTrialConfig()
	tcfg.NetWatch = true
	cfg := CampaignConfig{Trials: 1, Mode: gm.ModeFTGM, Trial: tcfg}
	res, err := Run(testSeed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trials[0]
	if tr.GossipProbes != 0 {
		t.Errorf("gossip activity in a central-plane trial: %+v", tr)
	}
	if tr.NetUnreachable < uint64(tcfg.Nodes-1) {
		t.Errorf("central watchdog did not expel the live survivors (NetUnreachable=%d, want >= %d): %+v",
			tr.NetUnreachable, tcfg.Nodes-1, tr)
	}
	if tr.Audit.Failed == 0 {
		t.Errorf("no terminally failed survivor sends despite mass expulsion: %v", tr.Audit)
	}
}

// The contrast, part two: plain FTGM with no repair plane at all simply
// retransmits at the dead mapper forever — the trial never drains and the
// auditor records the survivors' losses.
func TestCampaignMapperDeathStallsWithoutPlane(t *testing.T) {
	tcfg := mapperDeathTrialConfig()
	tcfg.MaxSettle = 10 * sim.Second
	cfg := CampaignConfig{Trials: 1, Mode: gm.ModeFTGM, Trial: tcfg}
	res, err := Run(testSeed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.AllExactlyOnce {
		t.Fatalf("plain FTGM survived the death of a peer it still holds traffic for: %v", res.Total)
	}
	if res.Total.Lost == 0 {
		t.Errorf("no losses recorded on a stalled cluster: %v", res.Total)
	}
	if res.Trials[0].NetRemaps != 0 || res.Trials[0].GossipProbes != 0 {
		t.Errorf("repair-plane activity without a plane: %+v", res.Trials[0])
	}
}

// The mapper-death gossip campaign obeys both determinism contracts: the
// worker-count contract (trials fan out over any worker count bit-for-bit)
// and the shard contract (each trial's cluster produces identical results
// on the classic engine and on the sharded engine at any shard count).
func TestCampaignMapperDeathInvariance(t *testing.T) {
	tcfg := mapperDeathTrialConfig()
	tcfg.ControlPlane = gm.ControlPlaneGossip
	cfg := CampaignConfig{Trials: 2, Mode: gm.ModeFTGM, Trial: tcfg}
	if testing.Short() {
		cfg.Trials = 1
	}
	cfg.Workers = 1
	serial, err := Run(testSeed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	fanned, err := Run(testSeed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, fanned) {
		t.Fatalf("results differ across worker counts:\n 1 worker: %+v\n 4 workers: %+v", serial, fanned)
	}

	cfg.Workers = 0
	cfg.Trial.Shards = 1
	base, err := Run(testSeed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{4, 8} {
		cfg.Trial.Shards = shards
		got, err := Run(testSeed, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Only the config differs; the accounting must not.
		for i := range got.Trials {
			if !reflect.DeepEqual(base.Trials[i], got.Trials[i]) {
				t.Fatalf("trial %d differs between 1 and %d shards:\n 1: %+v\n %d: %+v",
					i, shards, base.Trials[i], shards, got.Trials[i])
			}
		}
	}
}
