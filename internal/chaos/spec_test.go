package chaos

import (
	"reflect"
	"testing"

	"repro/gm"
	"repro/internal/sim"
)

// speculationTrialConfig is the speculating-fabric chaos cell: ACK-hunted
// processor hangs, link flaps and a host death with a standby restore, all
// while the cluster's node and switch domains run speculatively past their
// conservative window bounds (DESIGN.md §16).
func speculationTrialConfig() TrialConfig {
	cfg := DefaultTrialConfig()
	cfg.Traffic = sim.Second
	cfg.SendEvery = 4 * sim.Millisecond
	cfg.Kinds = []EventKind{KindHang, KindLinkFlap, KindHostDeath}
	cfg.Events = 3
	cfg.MaxSettle = 30 * sim.Second
	cfg.Speculate = true
	return cfg
}

// TestCampaignSpeculationInvariance is the speculation acceptance cell: a
// compound-fault campaign (hang + link flap + host death) with the whole
// fabric speculating must deliver exactly-once in-order, provably exercise
// both speculative outcomes (spans committed AND rolled back, with a revive
// riding the speculative schedule), and produce accounting bit-identical to
// the conservative run at 1, 4 and 8 shards — rollbacks may never leak a
// delivery, a duplicate, or a phantom counter into the books.
func TestCampaignSpeculationInvariance(t *testing.T) {
	cfg := CampaignConfig{Trials: 2, Mode: gm.ModeFTGM, Trial: speculationTrialConfig()}
	if testing.Short() {
		cfg.Trials = 1
	}
	// The conservative baseline: identical windowed schedule, no run-ahead.
	cfg.Trial.Speculate = false
	cfg.Trial.Shards = 1
	cons, err := Run(testSeed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !cons.AllExactlyOnce {
		t.Fatalf("conservative baseline audit dirty: %v", cons.Total)
	}
	cfg.Trial.Speculate = true
	for _, shards := range []int{1, 4, 8} {
		cfg.Trial.Shards = shards
		got, err := Run(testSeed, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !got.AllExactlyOnce {
			t.Fatalf("speculating campaign audit dirty at %d shards: %v", shards, got.Total)
		}
		// Both speculative outcomes must occur somewhere in the campaign.
		// Per-trial is too strict: a trial whose fault schedule defeats
		// every probe span legitimately ends with zero commits — the
		// rollback cooloff throttling a hopeless domain is the controller
		// working, not the test losing coverage.
		var commits, rollbacks uint64
		for _, tr := range got.Trials {
			commits += tr.SpecCommits
			rollbacks += tr.SpecRollbacks
		}
		if commits == 0 || rollbacks == 0 {
			t.Fatalf("campaign at %d shards never exercised both speculative outcomes: commits=%d rollbacks=%d",
				shards, commits, rollbacks)
		}
		for i, tr := range got.Trials {
			if tr.Checkpoints == 0 || tr.HostRestores == 0 {
				t.Fatalf("trial %d at %d shards never restored the dead host under speculation: %+v",
					i, shards, tr)
			}
			// Speculation must be invisible: zero its telemetry and the
			// accounting must match the conservative run field for field.
			tr.SpecCommits, tr.SpecRollbacks = 0, 0
			if !reflect.DeepEqual(cons.Trials[i], tr) {
				t.Fatalf("trial %d differs from the conservative run at %d shards:\n cons: %+v\n spec: %+v",
					i, shards, cons.Trials[i], tr)
			}
		}
	}
}
