// Package chaos is a deterministic fault-injection layer for the simulated
// Myrinet/GM cluster: a seed-split scheduler composes hangs, lossy and
// flapping links, dead switch ports, reload failures, and
// hang-during-recovery into a live gm.Cluster while a stream auditor
// records every send and delivery and judges exactly-once, in-order
// delivery at campaign end. The paper's fault model (§4.3) stops at a
// single LANai hang; chaos campaigns exercise the compound faults real
// deployments see, which is exactly where untested recovery paths hide.
//
// Everything is a pure function of the campaign seed: trial i draws from
// sim.DeriveRNG(seed, i), so a campaign fanned out over any number of
// workers is bit-for-bit identical to the serial run.
package chaos

import (
	"fmt"

	"repro/gm"
	"repro/internal/fabric"
	"repro/internal/sim"
)

// EventKind enumerates the injectable fault classes.
type EventKind int

// Fault classes. Each composes with the others: the scheduler can hang a
// node whose link is mid-flap, kill a switch port during a recovery, etc.
const (
	// KindHang hangs one node's network processor (the paper's §4.3 path).
	KindHang EventKind = iota + 1
	// KindDualHang hangs two distinct nodes at the same instant.
	KindDualHang
	// KindHangDuringRecovery hangs a node, waits for its reloaded MCP to
	// start running again, and hangs it again — landing the second fault
	// inside the FTD's table-restore window.
	KindHangDuringRecovery
	// KindLinkFlap cuts a node's cable and raises it after a window.
	KindLinkFlap
	// KindLinkDegrade installs a lossy/corrupting fault profile on a
	// node's cable for a window (CRC-detectable corruption: Go-Back-N's
	// job to absorb).
	KindLinkDegrade
	// KindPortDeath kills the node's crossbar port for a window.
	KindPortDeath
	// KindReloadFailure arranges the next MCP reloads to fail, then hangs
	// the node, exercising the FTD's retry/backoff path.
	KindReloadFailure
	// KindTrunkDeath permanently kills one inter-switch trunk of a
	// dual-switch topology, forcing the network watchdog to remap onto the
	// surviving trunk (requires TrialConfig.DualSwitch). The injector skips
	// the kill if it would sever the last live trunk.
	KindTrunkDeath
	// KindPartition permanently cuts one node's cable (never node 0, which
	// hosts the mapper): with no alternate path the watchdog must expel the
	// node and fail its traffic terminally instead of stalling.
	KindPartition
	// KindMapperDeath is the control-plane killer: a link flap on a victim
	// node opens an active remap window, and mid-window node 0 — the
	// mapping node, whose MCP anchors every central remap — dies for good
	// (watchdog-invisible hard hang, never reloaded). The central plane's
	// repair path dies with it; the gossip plane must keep exactly-once
	// delivery among the survivors and expel exactly the dead node. The
	// injector excuses node 0's unfinished sends with Auditor.ExcuseSource
	// (a dead sender has no delivery contract left).
	KindMapperDeath
	// KindHostDeath kills a whole host (not just its interface) mid-burst:
	// the injector waits for the victim to reach a message boundary,
	// checkpoints its recovery anchor through the ckpt wire codec, and kills
	// it — library state, handlers and daemons all gone. After Window (the
	// standby's spin-up delay) the slot is restored from the checkpoint and
	// the auditor still demands exactly-once in-order delivery: the victim's
	// unacknowledged receives ride the peers' Go-Back-N windows, its own
	// unacknowledged sends are re-posted from the checkpoint. The outage is
	// shorter than any expulsion verdict, so the membership planes must hold
	// their fire.
	KindHostDeath
	// KindMapperRebirth is mapper death with an afterlife: the mapping node
	// is checkpointed, killed mid-remap-window like KindMapperDeath, and
	// revived from the checkpoint after Revive — long past the gossip
	// plane's dead verdict, so the revival is a genuine readmission under
	// live traffic (dead-probe, alive rumor, stream resets on both sides,
	// route reinstallation). Requires the gossip control plane; the central
	// plane cannot readmit its own dead anchor. The victim's in-flight sends
	// are excused: rejoin disowns them by design.
	KindMapperRebirth
	// KindPeriodicDeath is host death under the incremental checkpoint
	// pipeline: the victim runs Node.StartPeriodicCheckpoint for the whole
	// trial, shipping base+delta frames to a (simulated) standby as it goes.
	// The injector waits for the chain to catch up at a drained instant,
	// forces a final delta, kills the host mid-burst, and revives the slot
	// from ckpt.ReplayChain over the shipped frames — verifying along the way
	// that the replayed chain re-encodes bit-identical to the full checkpoint
	// the victim would have cut at the same instant. Exactly-once in-order
	// delivery is audited exactly as for KindHostDeath.
	KindPeriodicDeath
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case KindHang:
		return "hang"
	case KindDualHang:
		return "dual-hang"
	case KindHangDuringRecovery:
		return "hang-during-recovery"
	case KindLinkFlap:
		return "link-flap"
	case KindLinkDegrade:
		return "link-degrade"
	case KindPortDeath:
		return "port-death"
	case KindReloadFailure:
		return "reload-failure"
	case KindTrunkDeath:
		return "trunk-death"
	case KindPartition:
		return "partition"
	case KindMapperDeath:
		return "mapper-death"
	case KindHostDeath:
		return "host-death"
	case KindMapperRebirth:
		return "mapper-rebirth"
	case KindPeriodicDeath:
		return "periodic-ckpt"
	default:
		return fmt.Sprintf("kind?%d", int(k))
	}
}

// AllKinds returns every fault class injectable on a single-switch
// topology, in injection-plan order. KindTrunkDeath and KindPartition need
// TrialConfig.DualSwitch and are opted into explicitly.
func AllKinds() []EventKind {
	return []EventKind{
		KindHang, KindDualHang, KindHangDuringRecovery,
		KindLinkFlap, KindLinkDegrade, KindPortDeath, KindReloadFailure,
	}
}

// NetFaultKinds returns the network-fault classes exercised on dual-switch
// topologies.
func NetFaultKinds() []EventKind {
	return []EventKind{KindTrunkDeath, KindPartition}
}

// HostFaultKinds returns the host-death classes. KindHostDeath runs under
// either control plane; KindMapperRebirth needs gm.ControlPlaneGossip (only
// a distributed membership plane can readmit the dead mapping node).
func HostFaultKinds() []EventKind {
	return []EventKind{KindHostDeath, KindMapperRebirth}
}

// PeriodicCkptKinds returns the incremental-checkpoint host-death class.
// Kept out of HostFaultKinds so the established hostfault campaigns (and
// their benchmark baselines) keep their exact workload.
func PeriodicCkptKinds() []EventKind {
	return []EventKind{KindPeriodicDeath}
}

// Event is one planned fault injection.
type Event struct {
	At   sim.Time
	Kind EventKind
	// Node is the primary target (index into the trial's node list, which
	// is also the node's switch port).
	Node int
	// Node2 is the second target of a dual hang.
	Node2 int
	// Window is how long a flap/degrade/port-death lasts.
	Window sim.Duration
	// Profile is the installed link misbehavior for a degrade.
	Profile fabric.FaultProfile
	// Seed drives the degrade profile's own fault decisions.
	Seed uint64
	// Failures is how many MCP reloads fail for a reload-failure event.
	Failures int
	// Revive is the delay from a mapper-rebirth kill to the rejoin — long
	// enough that the gossip plane has declared the victim dead.
	Revive sim.Duration
}

func (e Event) String() string {
	s := fmt.Sprintf("%v %s n%d", e.At, e.Kind, e.Node)
	switch e.Kind {
	case KindDualHang:
		s += fmt.Sprintf("+n%d", e.Node2)
	case KindLinkFlap, KindLinkDegrade, KindPortDeath:
		s += fmt.Sprintf(" for %v", e.Window)
	case KindReloadFailure:
		s += fmt.Sprintf(" x%d", e.Failures)
	case KindTrunkDeath:
		s = fmt.Sprintf("%v %s t%d", e.At, e.Kind, e.Node)
	case KindMapperDeath:
		s += fmt.Sprintf(" (flap n%d for %v)", e.Node2, e.Window)
	case KindHostDeath:
		s += fmt.Sprintf(" standby %v", e.Window)
	case KindMapperRebirth:
		s += fmt.Sprintf(" (flap n%d for %v, revive after %v)", e.Node2, e.Window, e.Revive)
	case KindPeriodicDeath:
		s += fmt.Sprintf(" standby %v", e.Window)
	}
	return s
}

// TrialConfig shapes one chaos trial: an all-to-all traffic pattern on a
// single-switch cluster with Events faults injected into the traffic
// window.
type TrialConfig struct {
	// Nodes is the cluster size (one switch; node i cables into port i).
	Nodes int
	// Port is the GM port each node opens.
	Port gm.PortID
	// Traffic is the send window; injections land inside it.
	Traffic sim.Duration
	// SendEvery is each node's send period (round-robin destinations).
	SendEvery sim.Duration
	// MsgBytes is the audited message size (>= MinMsgBytes).
	MsgBytes int
	// Events is the number of injections; kinds rotate through Kinds, so
	// Events >= len(Kinds) guarantees every class occurs.
	Events int
	// Kinds are the enabled fault classes (nil = AllKinds).
	Kinds []EventKind
	// SettleStep/MaxSettle bound the post-traffic drain loop: the trial
	// runs until the auditor sees every send delivered or MaxSettle of
	// virtual time elapses (a broken scheme never drains).
	SettleStep sim.Duration
	MaxSettle  sim.Duration
	// NaiveDetection is the external-watchdog delay assumed for stock GM
	// (which has no detection of its own): each hang is followed by a
	// NaiveRestart after this long.
	NaiveDetection sim.Duration
	// SendTokens sizes each port's token pool; outages queue sends in the
	// shadow store, so the pool must cover the deepest backlog.
	SendTokens int
	// DualSwitch builds the redundant two-switch topology (gm.BuildDualSwitch)
	// instead of the single crossbar, enabling KindTrunkDeath/KindPartition.
	DualSwitch bool
	// Trunks is the inter-switch trunk count in dual-switch trials (0 = 2).
	Trunks int
	// NetWatch enables the network watchdog daemon (detection always runs;
	// this controls whether anything acts on the suspicion reports).
	NetWatch bool
	// ControlPlane selects the cluster's post-boot repair plane. The zero
	// value (central) keeps earlier campaigns bit-identical; with
	// gm.ControlPlaneGossip the trial runs a membership agent per node and
	// NetWatch is ignored (the planes are mutually exclusive).
	ControlPlane gm.ControlPlane
	// Shards runs the trial's cluster in domain mode with this many
	// executors (0 = the classic single-engine cluster). Results are
	// bit-for-bit identical for every value >= 1.
	Shards int
	// Speculate arms speculative run-ahead on the sharded cluster
	// (gm.Config.Speculate, DESIGN.md §16): node and switch domains may
	// execute past their conservative window bound, with the barrier
	// committing or rolling the span back. The trial's own accounting —
	// the auditor and the revive counters — defers its commits to the
	// control domain so a rolled-back delivery is never counted. Results
	// stay bit-for-bit identical to the conservative run. Ignored when
	// Shards == 0.
	Speculate bool
}

// DefaultTrialConfig is a 4-node cluster under 2 seconds of all-to-all
// traffic with one injection of every fault class.
func DefaultTrialConfig() TrialConfig {
	return TrialConfig{
		Nodes:          4,
		Port:           2,
		Traffic:        2 * sim.Second,
		SendEvery:      sim.Millisecond,
		MsgBytes:       32,
		Events:         len(AllKinds()),
		SettleStep:     250 * sim.Millisecond,
		MaxSettle:      120 * sim.Second,
		NaiveDetection: 300 * sim.Millisecond,
		SendTokens:     16384,
	}
}

// withDefaults normalizes zero fields.
func (c TrialConfig) withDefaults() TrialConfig {
	def := DefaultTrialConfig()
	if c.Nodes < 2 {
		c.Nodes = def.Nodes
	}
	if c.Traffic <= 0 {
		c.Traffic = def.Traffic
	}
	if c.SendEvery <= 0 {
		c.SendEvery = def.SendEvery
	}
	if c.MsgBytes < MinMsgBytes {
		c.MsgBytes = def.MsgBytes
	}
	if c.Events <= 0 {
		c.Events = def.Events
	}
	if len(c.Kinds) == 0 {
		c.Kinds = AllKinds()
	}
	if c.SettleStep <= 0 {
		c.SettleStep = def.SettleStep
	}
	if c.MaxSettle <= 0 {
		c.MaxSettle = def.MaxSettle
	}
	if c.NaiveDetection <= 0 {
		c.NaiveDetection = def.NaiveDetection
	}
	if c.SendTokens <= 0 {
		c.SendTokens = def.SendTokens
	}
	if c.DualSwitch && c.Trunks <= 0 {
		c.Trunks = 2
	}
	return c
}

// PlanEvents draws a deterministic injection plan from rng: kinds rotate
// through cfg.Kinds (so every enabled class occurs when Events >= len),
// each event jittered inside its own slot of the traffic window. The plan
// depends only on the generator state and the config — not on the cluster
// or the mode — so GM and FTGM trials of the same seed face identical
// fault sequences.
func PlanEvents(rng *sim.RNG, cfg TrialConfig, start sim.Time) []Event {
	cfg = cfg.withDefaults()
	warmup := cfg.Traffic / 10
	span := cfg.Traffic - 2*warmup
	slot := span / sim.Duration(cfg.Events)
	events := make([]Event, 0, cfg.Events)
	for i := 0; i < cfg.Events; i++ {
		ev := Event{
			Kind: cfg.Kinds[i%len(cfg.Kinds)],
			At:   start + warmup + slot*sim.Duration(i) + rng.Duration(slot),
			Node: rng.Intn(cfg.Nodes),
		}
		switch ev.Kind {
		case KindDualHang:
			ev.Node2 = (ev.Node + 1 + rng.Intn(cfg.Nodes-1)) % cfg.Nodes
		case KindLinkFlap:
			ev.Window = 5*sim.Millisecond + rng.Duration(40*sim.Millisecond)
		case KindLinkDegrade:
			ev.Window = 50*sim.Millisecond + rng.Duration(200*sim.Millisecond)
			ev.Profile = fabric.FaultProfile{
				DropProb:    0.05 + 0.25*rng.Float64(),
				CorruptProb: 0.05 + 0.15*rng.Float64(),
				// Post-seal damage only: the receiver's CRC check catches
				// and drops it, and Go-Back-N retransmits. Pre-seal
				// (undetectable) corruption is inherently undeliverable-
				// correctly and is exercised by the fabric tests instead.
			}
			ev.Seed = rng.Uint64()
		case KindPortDeath:
			ev.Window = 10*sim.Millisecond + rng.Duration(50*sim.Millisecond)
		case KindReloadFailure:
			ev.Failures = 1 + rng.Intn(2)
		case KindTrunkDeath:
			// Node is a trunk index here; the injector refuses to sever
			// the last live trunk.
			if cfg.Trunks > 0 {
				ev.Node = rng.Intn(cfg.Trunks)
			}
		case KindPartition:
			// Never partition node 0: it hosts the mapper, and a fabric
			// with no mapper cannot remap at all (a different failure mode
			// than the one under test).
			ev.Node = 1 + rng.Intn(cfg.Nodes-1)
		case KindMapperDeath:
			// Node is always the mapping node; Node2 is the flap victim
			// whose outage opens the remap window the death lands in.
			ev.Node = 0
			ev.Node2 = 1 + rng.Intn(cfg.Nodes-1)
			ev.Window = 20*sim.Millisecond + rng.Duration(30*sim.Millisecond)
		case KindHostDeath:
			// Never node 0: killing the mapping node is KindMapperDeath /
			// KindMapperRebirth territory. Window is the standby spin-up
			// delay between the kill and the restore.
			ev.Node = 1 + rng.Intn(cfg.Nodes-1)
			ev.Window = 2*sim.Millisecond + rng.Duration(8*sim.Millisecond)
		case KindPeriodicDeath:
			// Same shape as KindHostDeath: never the mapping node, Window is
			// the standby spin-up delay before the replayed-chain revival.
			ev.Node = 1 + rng.Intn(cfg.Nodes-1)
			ev.Window = 2*sim.Millisecond + rng.Duration(8*sim.Millisecond)
		case KindMapperRebirth:
			// Placed early in the traffic window (not in its rotation slot):
			// the revival lands Revive after the kill and must still find
			// live traffic to be readmitted under.
			ev.At = start + warmup + rng.Duration(warmup)
			ev.Node = 0
			ev.Node2 = 1 + rng.Intn(cfg.Nodes-1)
			ev.Window = 20*sim.Millisecond + rng.Duration(30*sim.Millisecond)
			ev.Revive = 4*sim.Second + rng.Duration(sim.Second)
		}
		events = append(events, ev)
	}
	return events
}
