package chaos

import (
	"reflect"
	"testing"

	"repro/gm"
	"repro/internal/sim"
)

func hostDeathTrialConfig() TrialConfig {
	cfg := DefaultTrialConfig()
	cfg.Traffic = sim.Second
	cfg.SendEvery = 4 * sim.Millisecond
	cfg.Events = 2
	cfg.Kinds = []EventKind{KindHostDeath}
	cfg.MaxSettle = 30 * sim.Second
	return cfg
}

// The host-death acceptance campaign, central plane: a host dies mid-burst
// with traffic in flight in both directions, its recovery anchor having
// been checkpointed through the wire codec at the drain boundary, and a
// standby restores the slot moments later. Delivery must stay exactly-once
// in-order with nothing excused — the victim's unacknowledged receives ride
// the peers' Go-Back-N windows and its own unacknowledged sends are
// re-posted from the checkpoint.
func TestCampaignHostDeathCentralExactlyOnce(t *testing.T) {
	cfg := CampaignConfig{Trials: 2, Mode: gm.ModeFTGM, Trial: hostDeathTrialConfig()}
	if testing.Short() {
		cfg.Trials = 1
	}
	res, err := Run(testSeed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Sent == 0 {
		t.Fatal("campaign sent nothing")
	}
	if !res.AllExactlyOnce {
		for _, tr := range res.Trials {
			t.Logf("trial %d: %v dirty=%v (events: %v)", tr.Trial, tr.Audit, tr.Audit.Dirty, tr.Events)
		}
		t.Fatalf("host-death audit dirty: %v", res.Total)
	}
	if res.Total.Excused != 0 {
		t.Errorf("restore-path trials excused %d sends; a restored host disowns nothing", res.Total.Excused)
	}
	for _, tr := range res.Trials {
		if tr.Checkpoints == 0 || tr.CheckpointBytes == 0 {
			t.Errorf("trial %d: no checkpoint ever serialized: %+v", tr.Trial, tr)
		}
		if tr.HostRestores == 0 {
			t.Errorf("trial %d: no restore completed: %+v", tr.Trial, tr)
		}
		if tr.HostRestores > tr.Checkpoints {
			t.Errorf("trial %d: %d restores from %d checkpoints", tr.Trial, tr.HostRestores, tr.Checkpoints)
		}
		if tr.HostRejoins != 0 {
			t.Errorf("trial %d: rejoin activity in a restore-only plan: %+v", tr.Trial, tr)
		}
	}
}

// The same campaign under the gossip membership plane: the outage (standby
// delay plus MCP reload plus recovery handler) is far shorter than the
// suspicion timeout, so the plane must hold its fire — zero dead verdicts,
// zero expulsions of live nodes, zero route gaps — while delivery stays
// exactly-once.
func TestCampaignHostDeathGossipNoExpulsions(t *testing.T) {
	tcfg := hostDeathTrialConfig()
	tcfg.ControlPlane = gm.ControlPlaneGossip
	cfg := CampaignConfig{Trials: 2, Mode: gm.ModeFTGM, Trial: tcfg}
	if testing.Short() {
		cfg.Trials = 1
	}
	res, err := Run(testSeed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllExactlyOnce {
		for _, tr := range res.Trials {
			t.Logf("trial %d: %v dirty=%v (events: %v)", tr.Trial, tr.Audit, tr.Audit.Dirty, tr.Events)
		}
		t.Fatalf("host-death audit dirty under gossip: %v", res.Total)
	}
	for _, tr := range res.Trials {
		if tr.Checkpoints == 0 || tr.HostRestores == 0 {
			t.Errorf("trial %d: host-death machinery never ran: %+v", tr.Trial, tr)
		}
		if tr.GossipProbes == 0 {
			t.Errorf("trial %d: gossip plane never probed: %+v", tr.Trial, tr)
		}
		if tr.GossipDeadDeclared != 0 {
			t.Errorf("trial %d: %d dead verdicts for an outage under the suspicion timeout", tr.Trial, tr.GossipDeadDeclared)
		}
		if tr.GossipLiveExpelled != 0 || tr.GossipRouteGaps != 0 {
			t.Errorf("trial %d: membership damage after restore: expelled=%d gaps=%d",
				tr.Trial, tr.GossipLiveExpelled, tr.GossipRouteGaps)
		}
	}
}

// Mapper rebirth: the mapping node is checkpointed, killed mid-remap-window
// and revived long after the gossip plane buried it. The revival must be a
// genuine readmission under live traffic — dead verdicts and readmissions
// both observed, stream resets on both sides, and a converged membership
// with zero live expulsions at the end. The victim's in-flight sends are
// excused (rejoin disowns them); everything else is exactly-once in-order.
func TestCampaignMapperRebirthGossipReadmits(t *testing.T) {
	tcfg := DefaultTrialConfig()
	tcfg.Traffic = 12 * sim.Second
	tcfg.SendEvery = 4 * sim.Millisecond
	tcfg.Events = 1
	tcfg.Kinds = []EventKind{KindMapperRebirth}
	tcfg.MaxSettle = 60 * sim.Second
	tcfg.ControlPlane = gm.ControlPlaneGossip
	cfg := CampaignConfig{Trials: 1, Mode: gm.ModeFTGM, Trial: tcfg}
	res, err := Run(testSeed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trials[0]
	if !res.AllExactlyOnce {
		t.Fatalf("mapper-rebirth audit dirty: %v dirty=%v (events: %v)", tr.Audit, tr.Audit.Dirty, tr.Events)
	}
	if tr.Checkpoints == 0 || tr.HostRejoins == 0 {
		t.Fatalf("the mapper was never checkpointed and rejoined: %+v", tr)
	}
	if tr.HostRestores != 0 {
		t.Errorf("restore activity in a rejoin-only plan: %+v", tr)
	}
	if res.Total.Excused == 0 {
		t.Error("the reborn mapper's disowned in-flight sends were never excused")
	}
	if tr.GossipDeadDeclared == 0 {
		t.Errorf("the dead mapper was never declared dead: %+v", tr)
	}
	if tr.GossipReadmissions == 0 {
		t.Errorf("the revived mapper was never readmitted: %+v", tr)
	}
	if tr.GossipLiveExpelled != 0 || tr.GossipRouteGaps != 0 {
		t.Errorf("membership did not converge after rebirth: expelled=%d gaps=%d",
			tr.GossipLiveExpelled, tr.GossipRouteGaps)
	}
}

// Host-death campaigns obey both determinism contracts: worker-count
// fan-out and shard-count execution are bit-for-bit invariant.
func TestCampaignHostDeathInvariance(t *testing.T) {
	tcfg := hostDeathTrialConfig()
	tcfg.ControlPlane = gm.ControlPlaneGossip
	cfg := CampaignConfig{Trials: 2, Mode: gm.ModeFTGM, Trial: tcfg}
	if testing.Short() {
		cfg.Trials = 1
	}
	cfg.Workers = 1
	serial, err := Run(testSeed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 4
	fanned, err := Run(testSeed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial, fanned) {
		t.Fatalf("results differ across worker counts:\n 1 worker: %+v\n 4 workers: %+v", serial, fanned)
	}

	cfg.Workers = 0
	cfg.Trial.Shards = 1
	base, err := Run(testSeed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{4, 8} {
		cfg.Trial.Shards = shards
		got, err := Run(testSeed, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Only the config differs; the accounting must not.
		for i := range got.Trials {
			if !reflect.DeepEqual(base.Trials[i], got.Trials[i]) {
				t.Fatalf("trial %d differs between 1 and %d shards:\n 1: %+v\n %d: %+v",
					i, shards, base.Trials[i], shards, got.Trials[i])
			}
		}
	}
}
