package chaos

import (
	"reflect"
	"testing"

	"repro/gm"
	"repro/internal/sim"
)

func periodicTrialConfig() TrialConfig {
	cfg := DefaultTrialConfig()
	cfg.Traffic = sim.Second
	cfg.SendEvery = 4 * sim.Millisecond
	cfg.Events = 2
	cfg.Kinds = []EventKind{KindPeriodicDeath}
	cfg.MaxSettle = 30 * sim.Second
	return cfg
}

// The periodic-checkpoint acceptance campaign: each victim streams an
// incremental base+delta chain under live traffic, is killed mid-burst at a
// drained-and-caught-up instant, and is revived from the replayed chain
// alone — never from a fresh full checkpoint. Delivery must stay
// exactly-once in-order with nothing excused, every chain must replay
// bit-identical to the full checkpoint taken at the kill instant, and no
// drain pause may ever exceed the configured budget.
func TestCampaignPeriodicDeathExactlyOnce(t *testing.T) {
	cfg := CampaignConfig{Trials: 2, Mode: gm.ModeFTGM, Trial: periodicTrialConfig()}
	if testing.Short() {
		cfg.Trials = 1
	}
	res, err := Run(testSeed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Total.Sent == 0 {
		t.Fatal("campaign sent nothing")
	}
	if !res.AllExactlyOnce {
		for _, tr := range res.Trials {
			t.Logf("trial %d: %v dirty=%v (events: %v)", tr.Trial, tr.Audit, tr.Audit.Dirty, tr.Events)
		}
		t.Fatalf("periodic-death audit dirty: %v", res.Total)
	}
	if res.Total.Excused != 0 {
		t.Errorf("chain-restore trials excused %d sends; a restored host disowns nothing", res.Total.Excused)
	}
	for _, tr := range res.Trials {
		if tr.PeriodicFrames == 0 || tr.PeriodicBytes == 0 {
			t.Errorf("trial %d: no checkpoint frame ever shipped: %+v", tr.Trial, tr)
		}
		if tr.PeriodicChainMismatches != 0 {
			t.Errorf("trial %d: %d chain replays diverged from the full checkpoint", tr.Trial, tr.PeriodicChainMismatches)
		}
		if tr.PeriodicMaxPause > 200*sim.Microsecond {
			t.Errorf("trial %d: drain pause %v exceeded the 200µs budget", tr.Trial, tr.PeriodicMaxPause)
		}
		if tr.HostRestores == 0 {
			t.Errorf("trial %d: no chain restore completed: %+v", tr.Trial, tr)
		}
	}
}

// Periodic-death campaigns obey both determinism contracts: the accounting —
// including every frame count, chain byte, skip and the max drain pause — is
// bit-for-bit invariant across shard counts, and the speculating runs match
// the conservative baseline field for field.
func TestCampaignPeriodicDeathInvariance(t *testing.T) {
	cfg := CampaignConfig{Trials: 2, Mode: gm.ModeFTGM, Trial: periodicTrialConfig()}
	if testing.Short() {
		cfg.Trials = 1
	}
	cfg.Trial.Speculate = false
	cfg.Trial.Shards = 1
	cons, err := Run(testSeed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !cons.AllExactlyOnce {
		t.Fatalf("conservative baseline audit dirty: %v", cons.Total)
	}
	cfg.Trial.Speculate = true
	for _, shards := range []int{1, 4, 8} {
		cfg.Trial.Shards = shards
		got, err := Run(testSeed, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !got.AllExactlyOnce {
			t.Fatalf("speculating campaign audit dirty at %d shards: %v", shards, got.Total)
		}
		for i, tr := range got.Trials {
			if tr.PeriodicFrames == 0 {
				t.Fatalf("trial %d at %d shards shipped no frames under speculation: %+v", i, shards, tr)
			}
			if tr.PeriodicChainMismatches != 0 {
				t.Fatalf("trial %d at %d shards: %d chain replays diverged", i, shards, tr.PeriodicChainMismatches)
			}
			tr.SpecCommits, tr.SpecRollbacks = 0, 0
			if !reflect.DeepEqual(cons.Trials[i], tr) {
				t.Fatalf("trial %d differs from the conservative run at %d shards:\n cons: %+v\n spec: %+v",
					i, shards, cons.Trials[i], tr)
			}
		}
	}
}
