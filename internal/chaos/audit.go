package chaos

import (
	"fmt"
	"sort"

	"repro/gm"
)

// StreamKey names one audited delivery stream: the (connection, port) pair
// of the paper's §4.1 sequence spaces, as seen end to end.
type StreamKey struct {
	Src     gm.NodeID
	SrcPort gm.PortID
	Dst     gm.NodeID
	DstPort gm.PortID
}

func (k StreamKey) String() string {
	return fmt.Sprintf("%d:%d->%d:%d", k.Src, k.SrcPort, k.Dst, k.DstPort)
}

// payloadMagic brands audited messages so a damaged or foreign payload is
// recognized instead of silently miscounted.
const payloadMagic = 0x4654_4743 // "FTGC"

// MinMsgBytes is the smallest message an audited pump may send: the audit
// header (magic, stream tag, per-stream index, checksum) needs 20 bytes.
const MinMsgBytes = 20

func auditChecksum(k StreamKey, idx uint32) uint32 {
	return payloadMagic ^ idx ^
		(uint32(k.Src)<<16 | uint32(k.Dst)) ^
		(uint32(k.SrcPort)<<8 | uint32(k.DstPort)) ^ 0xA5A5A5A5
}

// encodeAudit stamps the audit header into buf (len(buf) >= MinMsgBytes).
func encodeAudit(buf []byte, k StreamKey, idx uint32) {
	put32 := func(off int, v uint32) {
		buf[off] = byte(v)
		buf[off+1] = byte(v >> 8)
		buf[off+2] = byte(v >> 16)
		buf[off+3] = byte(v >> 24)
	}
	put32(0, payloadMagic)
	buf[4] = byte(k.Src)
	buf[5] = byte(k.Src >> 8)
	buf[6] = byte(k.Dst)
	buf[7] = byte(k.Dst >> 8)
	buf[8] = byte(k.SrcPort)
	buf[9] = byte(k.DstPort)
	buf[10] = 0
	buf[11] = 0
	put32(12, idx)
	put32(16, auditChecksum(k, idx))
}

// decodeAudit recovers the stream key and index, reporting ok=false when
// the header is short, unbranded, or fails its checksum.
func decodeAudit(data []byte) (k StreamKey, idx uint32, ok bool) {
	if len(data) < MinMsgBytes {
		return k, 0, false
	}
	get32 := func(off int) uint32 {
		return uint32(data[off]) | uint32(data[off+1])<<8 |
			uint32(data[off+2])<<16 | uint32(data[off+3])<<24
	}
	if get32(0) != payloadMagic {
		return k, 0, false
	}
	k = StreamKey{
		Src:     gm.NodeID(uint16(data[4]) | uint16(data[5])<<8),
		Dst:     gm.NodeID(uint16(data[6]) | uint16(data[7])<<8),
		SrcPort: gm.PortID(data[8]),
		DstPort: gm.PortID(data[9]),
	}
	idx = get32(12)
	if get32(16) != auditChecksum(k, idx) {
		return k, 0, false
	}
	return k, idx, true
}

// streamAudit is one stream's bookkeeping.
type streamAudit struct {
	sent    uint32
	lastIdx uint32
	seen    map[uint32]bool
	failed  map[uint32]bool
	unique  uint64
	dups    uint64
	ooo     uint64
}

// failedUndelivered counts messages whose send failed terminally and which
// never arrived: excused from loss accounting (at-most-once is the contract
// once the library reports failure). A failed-but-delivered message — a
// failover race can deliver what the callback disowned — simply counts as
// delivered.
func (s *streamAudit) failedUndelivered() uint64 {
	n := uint64(0)
	for idx := range s.failed {
		if !s.seen[idx] {
			n++
		}
	}
	return n
}

// AuditReport aggregates delivery accounting over every stream of a trial
// or campaign. A clean FTGM run has Delivered == Sent and every defect
// counter at zero.
type AuditReport struct {
	Streams    int
	Sent       uint64
	Delivered  uint64 // delivery events, duplicates included
	Unique     uint64 // distinct message indices delivered
	Duplicates uint64
	OutOfOrder uint64
	Lost       uint64 // sent but never delivered (and not excused by Failed)
	Failed     uint64 // sends that completed with a terminal error status
	Excused    uint64 // undelivered sends of an ExcuseSource'd (dead) sender
	Corrupt    uint64 // unbranded/damaged payloads or sender identity mismatch
	// ExactlyOnceInOrder is the tentpole assertion: every sent message
	// delivered exactly once, in per-stream order, undamaged.
	ExactlyOnceInOrder bool
	// Dirty lists the defective streams ("src:port->dst:port defect=n"),
	// sorted, for diagnosis.
	Dirty []string
}

func (r AuditReport) String() string {
	return fmt.Sprintf("streams=%d sent=%d delivered=%d dups=%d ooo=%d lost=%d failed=%d excused=%d corrupt=%d exactly-once=%v",
		r.Streams, r.Sent, r.Delivered, r.Duplicates, r.OutOfOrder, r.Lost, r.Failed, r.Excused, r.Corrupt,
		r.ExactlyOnceInOrder)
}

// merge folds another report's counters into r (ExactlyOnceInOrder is
// re-derived by the caller).
func (r *AuditReport) merge(o AuditReport) {
	r.Streams += o.Streams
	r.Sent += o.Sent
	r.Delivered += o.Delivered
	r.Unique += o.Unique
	r.Duplicates += o.Duplicates
	r.OutOfOrder += o.OutOfOrder
	r.Lost += o.Lost
	r.Failed += o.Failed
	r.Excused += o.Excused
	r.Corrupt += o.Corrupt
	r.Dirty = append(r.Dirty, o.Dirty...)
}

// Auditor records every audited send and delivery of one trial and judges
// exactly-once in-order delivery at the end. All methods run inside
// simulation callbacks (single-threaded virtual time).
type Auditor struct {
	streams map[StreamKey]*streamAudit
	corrupt uint64
	// excusedSrcs holds senders declared permanently dead mid-trial: their
	// undelivered sends are excused (counted, not judged) — a dead sender
	// has no delivery contract left, and nothing will ever drain its
	// streams. Duplicates and reordering of what did arrive still count.
	excusedSrcs map[gm.NodeID]bool
}

// NewAuditor returns an empty auditor.
func NewAuditor() *Auditor {
	return &Auditor{
		streams:     make(map[StreamKey]*streamAudit),
		excusedSrcs: make(map[gm.NodeID]bool),
	}
}

// ExcuseSource declares src permanently dead: every undelivered send of its
// streams is excused from loss accounting and the drain loop stops waiting
// for them. Call at the instant of an unrecoverable kill (hard hang with
// the chip timers dead), never for a fault the scheme is expected to heal.
func (a *Auditor) ExcuseSource(src gm.NodeID) { a.excusedSrcs[src] = true }

func (a *Auditor) stream(k StreamKey) *streamAudit {
	s := a.streams[k]
	if s == nil {
		s = &streamAudit{seen: make(map[uint32]bool)}
		a.streams[k] = s
	}
	return s
}

// NewMessage allocates and stamps the next audited message of stream k:
// the send is recorded and the payload returned ready to pass to Send.
// Call Unsend if the send is subsequently refused.
func (a *Auditor) NewMessage(k StreamKey, size int) []byte {
	if size < MinMsgBytes {
		size = MinMsgBytes
	}
	s := a.stream(k)
	s.sent++
	buf := make([]byte, size)
	encodeAudit(buf, k, s.sent)
	return buf
}

// Unsend rolls back the most recent NewMessage of stream k (the send was
// refused and the message never entered the system).
func (a *Auditor) Unsend(k StreamKey) { a.stream(k).sent-- }

// RecordSendFailure accounts a terminal send failure the library reported
// through the message's callback (e.g. SendErrorUnreachable after the
// network watchdog expelled the destination). The message is excused from
// loss accounting unless it was in fact delivered.
func (a *Auditor) RecordSendFailure(data []byte) {
	k, idx, ok := decodeAudit(data)
	if !ok {
		return
	}
	s := a.stream(k)
	if s.failed == nil {
		s.failed = make(map[uint32]bool)
	}
	s.failed[idx] = true
}

// DeliveryRecord is one receive event's decoded audit identity, split off
// from the accounting so the two halves can run at different times: the
// decode must happen inside the receive handler (the buffer is recycled the
// moment the handler returns), but on a speculating trial the accounting
// must wait for the span to commit (campaign.go defers it through the
// journaled control queue, so a rolled-back delivery is never counted).
type DeliveryRecord struct {
	Key StreamKey
	Idx uint32
	// OK is false for a corrupt payload: short, unbranded, checksum
	// failure, or an embedded stream that disagrees with the wire identity.
	OK bool
}

// DecodeDelivery decodes one delivery's audit header against the receiver's
// own identity. Pure — no auditor state is touched, so it is safe inside a
// speculative span.
func DecodeDelivery(self gm.NodeID, selfPort gm.PortID, ev gm.RecvEvent) DeliveryRecord {
	k, idx, ok := decodeAudit(ev.Data)
	if !ok || k.Src != ev.Src || k.SrcPort != ev.SrcPort || k.Dst != self || k.DstPort != selfPort {
		return DeliveryRecord{}
	}
	return DeliveryRecord{Key: k, Idx: idx, OK: true}
}

// RecordDelivery accounts one delivery at the receiver. The receiver
// passes its own identity; a payload whose embedded stream disagrees with
// the wire's source, or whose checksum fails, counts as corrupt.
func (a *Auditor) RecordDelivery(self gm.NodeID, selfPort gm.PortID, ev gm.RecvEvent) {
	a.CommitDelivery(DecodeDelivery(self, selfPort, ev))
}

// CommitDelivery accounts one decoded delivery.
func (a *Auditor) CommitDelivery(rec DeliveryRecord) {
	if !rec.OK {
		a.corrupt++
		return
	}
	k, idx := rec.Key, rec.Idx
	s := a.stream(k)
	s.unique++ // provisional; demoted below for duplicates
	switch {
	case idx > s.sent:
		// An index this stream never issued: damaged in a way the
		// checksum happened to survive, or bookkeeping gone wrong.
		s.unique--
		a.corrupt++
		return
	case s.seen[idx]:
		s.unique--
		s.dups++
	case idx < s.lastIdx:
		s.seen[idx] = true
		s.ooo++
	default:
		s.seen[idx] = true
		s.lastIdx = idx
	}
}

// Complete reports whether every recorded send has been delivered at least
// once or excused by a terminal failure (the settle loop's drain condition).
func (a *Auditor) Complete() bool {
	any := false
	for k, s := range a.streams {
		any = true
		if a.excusedSrcs[k.Src] {
			continue
		}
		if s.unique+s.failedUndelivered() < uint64(s.sent) {
			return false
		}
	}
	return any
}

// Report closes the books: per-stream counters are aggregated and the
// exactly-once in-order verdict rendered.
func (a *Auditor) Report() AuditReport {
	r := AuditReport{Corrupt: a.corrupt}
	for k, s := range a.streams {
		r.Streams++
		r.Sent += uint64(s.sent)
		r.Delivered += s.unique + s.dups
		r.Unique += s.unique
		r.Duplicates += s.dups
		r.OutOfOrder += s.ooo
		r.Failed += uint64(len(s.failed))
		lost := uint64(0)
		if u := uint64(s.sent); s.unique+s.failedUndelivered() < u {
			lost = u - s.unique - s.failedUndelivered()
			if a.excusedSrcs[k.Src] {
				r.Excused += lost
				lost = 0
			} else {
				r.Lost += lost
			}
		}
		if lost > 0 || s.dups > 0 || s.ooo > 0 {
			var missing []uint32
			for idx := uint32(1); idx <= s.sent && len(missing) < 32; idx++ {
				if !s.seen[idx] && !s.failed[idx] {
					missing = append(missing, idx)
				}
			}
			r.Dirty = append(r.Dirty,
				fmt.Sprintf("%v sent=%d lost=%d dups=%d ooo=%d missing=%v", k, s.sent, lost, s.dups, s.ooo, missing))
		}
	}
	sort.Strings(r.Dirty)
	r.ExactlyOnceInOrder = r.Sent > 0 && r.Duplicates == 0 && r.OutOfOrder == 0 &&
		r.Lost == 0 && r.Corrupt == 0
	return r
}
