package chaos

import (
	"bytes"
	"fmt"

	"repro/gm"
	"repro/internal/ckpt"
	"repro/internal/fabric"
	"repro/internal/gossip"
	"repro/internal/parallel"
	"repro/internal/sim"
)

// ACK-hunt parameters: an armed hang polls its target's AcksSent counter
// every ackHuntStep and fires on the first increment (or unconditionally
// after ackHuntWindow of silence), landing the hang in the ACKed-but-not-
// committed window that Figure 5 exploits.
const (
	ackHuntStep   = 500 * sim.Nanosecond
	ackHuntWindow = 10 * sim.Millisecond
)

// Drain-hunt parameters: a host death waits for the victim to reach a
// message boundary (the drain protocol) before checkpointing. If the node
// never drains inside the window the injection folds away — under heavy
// compound faults a boundary may never come, and a skipped kill is a valid
// plan, not an error.
const (
	drainHuntStep   = 50 * sim.Microsecond
	drainHuntWindow = 20 * sim.Millisecond
)

// CampaignConfig shapes a chaos campaign: Trials independent clusters,
// each living through its own injection plan, fanned out over Workers.
type CampaignConfig struct {
	Trials  int
	Workers int // 0 = GOMAXPROCS
	Mode    gm.Mode
	Trial   TrialConfig
}

// DefaultCampaignConfig is a 4-trial FTGM campaign.
func DefaultCampaignConfig() CampaignConfig {
	return CampaignConfig{Trials: 4, Mode: gm.ModeFTGM, Trial: DefaultTrialConfig()}
}

// TrialResult is one trial's full accounting. Results are pure functions
// of (campaign seed, trial index): the determinism tests compare them
// bit-for-bit across worker counts.
type TrialResult struct {
	Trial  int
	Events []Event
	Audit  AuditReport

	// FTD activity summed over all nodes (zero in GM mode).
	Recoveries       uint64
	FalseAlarms      uint64
	ReloadRetries    uint64
	RecoveryRestarts uint64
	RecoveryFailures uint64
	SuppressedFatals uint64
	NaiveRestarts    uint64

	// Fabric damage totals.
	FaultDrops      uint64 // packets eaten by injected link profiles
	Corruptions     uint64 // payload bit flips injected on links
	SwitchDeadDrops uint64 // packets into dead ports / downed links

	Retransmits uint64 // Go-Back-N repair work across all nodes

	// Network-fault activity: detection counters are live in every FTGM
	// trial; the watchdog counters are zero unless TrialConfig.NetWatch.
	NetFaultSuspicions uint64 // MCP path-health reports raised to hosts
	NetFaultReports    uint64 // NET_FAULT_SUSPECTED interrupts drivers forwarded
	UnreachableFails   uint64 // sends terminally failed against expelled peers
	NetSuspicions      uint64 // watchdog: suspicion reports received
	NetIncidents       uint64 // watchdog: debounce windows opened
	NetRemaps          uint64 // watchdog: successful automatic remaps
	NetRemapFailures   uint64 // watchdog: remap attempts that failed
	NetProbes          uint64 // watchdog: readmission probes while peers expelled
	NetUnreachable     uint64 // watchdog: peers expelled as unreachable
	NetReadmissions    uint64 // watchdog: expelled peers readmitted

	// Gossip-plane activity, summed over all agents (zero unless
	// TrialConfig.ControlPlane is gm.ControlPlaneGossip).
	GossipProbes       uint64 // direct pings launched
	GossipSuspicions   uint64 // local probe-failure suspicions raised
	GossipDeadDeclared uint64 // dead verdicts recorded (local + adopted)
	GossipReadmissions uint64 // dead members welcomed back
	// End-of-trial convergence defects, judged over the nodes still
	// running: a live node marked dead by a live node's agent, and a live
	// node missing from a live node's installed route table. A healthy
	// gossip trial ends with both at zero — distributed agreement expelled
	// exactly the dead, and every survivor rebuilt a full route set.
	GossipLiveExpelled uint64
	GossipRouteGaps    uint64

	// Host-death activity (KindHostDeath / KindMapperRebirth trials).
	Checkpoints     uint64 // recovery anchors serialized at a drain boundary
	CheckpointBytes uint64 // total encoded checkpoint size
	HostRestores    uint64 // completed same-epoch restores (KindHostDeath)
	HostRejoins     uint64 // completed post-expulsion rejoins (KindMapperRebirth)

	// Incremental-checkpoint activity (KindPeriodicDeath trials): frames
	// shipped by the victims' periodic checkpointers, the bounded-drain
	// accounting, and the chain-replay verification verdict (a mismatch
	// means ReplayChain over the shipped frames did not re-encode
	// bit-identical to a fresh full checkpoint at the kill instant).
	PeriodicFrames          uint64
	PeriodicBytes           uint64
	PeriodicSkips           uint64
	PeriodicMaxPause        sim.Duration
	PeriodicChainMismatches uint64

	// Speculation activity (zero unless TrialConfig.Speculate): spans the
	// barrier committed and rolled back. Both are pure functions of the
	// window schedule, so they are bit-identical across shard counts.
	SpecCommits   uint64
	SpecRollbacks uint64
}

// CampaignResult aggregates a campaign.
type CampaignResult struct {
	Seed        uint64
	Mode        string
	Trials      []TrialResult
	Total       AuditReport
	CleanTrials int
	// AllExactlyOnce is the campaign verdict: every trial's auditor
	// reported exactly-once in-order delivery.
	AllExactlyOnce bool
}

// Run executes the campaign. Trial i derives its generator from
// sim.DeriveRNG(seed, i), so results are identical at any worker count.
func Run(seed uint64, cfg CampaignConfig) (CampaignResult, error) {
	if cfg.Trials <= 0 {
		cfg.Trials = 1
	}
	trials, err := parallel.Map(cfg.Trials, cfg.Workers, func(i int) (TrialResult, error) {
		return RunTrial(seed, i, cfg.Mode, cfg.Trial)
	})
	if err != nil {
		return CampaignResult{}, err
	}
	return AssembleCampaign(seed, cfg.Mode, trials), nil
}

// AssembleCampaign folds per-trial results into a CampaignResult, exactly as
// Run does. The resumable campaign runner (gmbench -ckpt-every /
// -resume-from) executes trials one at a time — possibly across processes —
// and folds the accumulated artifact here; trial results are pure functions
// of (seed, index), so the fold is identical however the trials were
// distributed.
func AssembleCampaign(seed uint64, mode gm.Mode, trials []TrialResult) CampaignResult {
	res := CampaignResult{Seed: seed, Mode: modeName(mode), Trials: trials, AllExactlyOnce: true}
	for _, tr := range trials {
		res.Total.merge(tr.Audit)
		if tr.Audit.ExactlyOnceInOrder {
			res.CleanTrials++
		} else {
			res.AllExactlyOnce = false
		}
	}
	res.Total.ExactlyOnceInOrder = res.AllExactlyOnce && res.Total.Sent > 0
	return res
}

func modeName(m gm.Mode) string {
	if m == gm.ModeFTGM {
		return "FTGM"
	}
	return "GM"
}

// portCell holds one node's live port handle. The pump reads it from the
// control domain; a host-death revive swaps in the rebuilt handle from the
// victim's own domain. The swap is node-domain state, so on a speculating
// trial it journals itself like any other domain-resident mutation
// (DESIGN.md §16): a rolled-back revive rolls the handle back too, and the
// replayed revive installs the replayed port.
type portCell struct {
	eng    *sim.Engine
	mark   uint64
	p      *gm.Port
	shadow *gm.Port
}

func (c *portCell) SpecSave()    { c.shadow = c.p }
func (c *portCell) SpecRestore() { c.p = c.shadow }

func (c *portCell) set(p *gm.Port) {
	c.eng.SpecTouch(&c.mark, c)
	c.p = p
}

// RunTrial builds one cluster, drives the all-to-all traffic, applies the
// trial's injection plan, drains, and audits.
func RunTrial(seed uint64, index int, mode gm.Mode, tcfg TrialConfig) (TrialResult, error) {
	tcfg = tcfg.withDefaults()
	rng := sim.DeriveRNG(seed, uint64(index))
	res := TrialResult{Trial: index}

	gcfg := gm.DefaultConfig(mode)
	gcfg.Seed = rng.Uint64() | 1
	gcfg.Host.SendTokens = tcfg.SendTokens
	// Deep outages queue thousands of shadow tokens; keep the handler's
	// per-token cost from dominating the recovery (as the availability
	// mission does).
	gcfg.Host.RecoveryPerToken = 0
	gcfg.NetWatch.Enabled = tcfg.NetWatch
	gcfg.ControlPlane = tcfg.ControlPlane
	gcfg.Shards = tcfg.Shards
	gcfg.Speculate = tcfg.Speculate

	cl := gm.NewCluster(gcfg)
	var (
		nodes    []*gm.Node
		switches []*gm.Switch
		trunks   []*fabric.Link
		nodePort func(i int) (*gm.Switch, int)
	)
	if tcfg.DualSwitch {
		d, err := gm.BuildDualSwitch(cl, tcfg.Nodes, tcfg.Trunks)
		if err != nil {
			return res, err
		}
		nodes, trunks = d.Nodes, d.Trunks
		switches = []*gm.Switch{d.S1, d.S2}
		nodePort = func(i int) (*gm.Switch, int) {
			if i%2 == 1 {
				return d.S2, i / 2
			}
			return d.S1, i / 2
		}
	} else {
		nodes = make([]*gm.Node, tcfg.Nodes)
		for i := range nodes {
			nodes[i] = cl.AddNode(fmt.Sprintf("n%d", i))
		}
		sw := cl.AddSwitch("sw")
		for i, n := range nodes {
			if err := cl.Connect(n, sw, i); err != nil {
				return res, err
			}
		}
		switches = []*gm.Switch{sw}
		nodePort = func(i int) (*gm.Switch, int) { return sw, i }
	}
	if _, err := cl.Boot(); err != nil {
		return res, fmt.Errorf("chaos: boot: %w", err)
	}

	aud := NewAuditor()
	// attach wires the audited receive handler onto a port (at open, and
	// again onto every revive-rebuilt handle). The handler runs on the
	// receiver's own domain; with speculation armed it decodes in place —
	// the buffer is recycled the moment the handler returns — and defers
	// the accounting through the journaled control queue, so a delivery
	// executed in a rolled-back span is never counted (the replay re-issues
	// it). Without speculation the historical inline path is kept, bit for
	// bit.
	attach := func(n *gm.Node, p *gm.Port) {
		self, eng := n.ID(), n.Engine()
		p.SetReceiveHandler(func(ev gm.RecvEvent) {
			if tcfg.Speculate {
				rec := DecodeDelivery(self, tcfg.Port, ev)
				eng.Control(func() { aud.CommitDelivery(rec) })
			} else {
				aud.RecordDelivery(self, tcfg.Port, ev)
			}
			_ = p.RecycleReceiveBuffer(ev.Data, gm.PriorityLow)
		})
	}
	ports := make([]*portCell, tcfg.Nodes)
	for i, n := range nodes {
		p, err := n.OpenPort(tcfg.Port)
		if err != nil {
			return res, err
		}
		ports[i] = &portCell{eng: n.Engine(), p: p}
		attach(n, p)
		for j := 0; j < 512; j++ {
			if err := p.ProvideReceiveBuffer(uint32(tcfg.MsgBytes), gm.PriorityLow); err != nil {
				return res, err
			}
		}
	}

	// Traffic: each node sends to the other nodes round-robin, staggered
	// so the pumps don't tick in lockstep.
	start := cl.Now()
	stop := start + tcfg.Traffic
	for i := range nodes {
		// The port is read through the slice on every tick: a host-death
		// restore swaps a rebuilt handle into ports[i], and the pump must
		// follow it (the old handle is permanently closed).
		src, i := nodes[i], i
		turn := 0
		var pump func()
		pump = func() {
			if cl.Now() >= stop {
				return
			}
			dst := nodes[(i+1+turn%(tcfg.Nodes-1))%tcfg.Nodes]
			turn++
			key := StreamKey{Src: src.ID(), SrcPort: tcfg.Port, Dst: dst.ID(), DstPort: tcfg.Port}
			buf := aud.NewMessage(key, tcfg.MsgBytes)
			var cb gm.SendCallback
			if tcfg.DualSwitch || tcfg.NetWatch || tcfg.ControlPlane == gm.ControlPlaneGossip {
				// Network-fault trials can fail sends terminally (expelled
				// peers); the auditor excuses what the library disowned.
				// Single-switch trials keep the historical nil callback so
				// their accounting is bit-identical to earlier campaigns.
				// The callback runs on the sender's domain; a speculating
				// trial defers the accounting past the span (buf is
				// app-owned and immutable, so the decode can wait too).
				eng := src.Engine()
				cb = func(st gm.SendStatus) {
					if st != gm.SendOK {
						if tcfg.Speculate {
							eng.Control(func() { aud.RecordSendFailure(buf) })
						} else {
							aud.RecordSendFailure(buf)
						}
					}
				}
			}
			if err := ports[i].p.Send(dst.ID(), tcfg.Port, gm.PriorityLow, buf, cb); err != nil {
				aud.Unsend(key)
			}
			cl.After(tcfg.SendEvery, pump)
		}
		cl.After(sim.Duration(i+1)*37*sim.Microsecond, pump)
	}

	// doHang injects one processor hang right now; in GM mode an external
	// watchdog notices after NaiveDetection and performs the paper's §3
	// baseline restart (stock GM itself would just stay down forever).
	doHang := func(i int) {
		n := nodes[i]
		if !n.Running() {
			return // already hung or mid-reload; the fault folds in
		}
		n.InjectHang()
		if mode != gm.ModeFTGM {
			cl.After(tcfg.NaiveDetection, func() {
				if !n.Running() {
					n.NaiveRestart(nil)
				}
			})
		}
	}
	// hang arms a processor hang on the node's next transmitted ACK — the
	// adversarial instant of Figure 5: stock GM has ACKed arrival but not
	// yet committed the message to host memory, so the message is lost;
	// FTGM's delayed ACK (§4.1) makes the same timing a mere
	// retransmission. If the node stays quiet the hang fires anyway after
	// a grace window.
	hang := func(i int) {
		n := nodes[i]
		if !n.Running() {
			return
		}
		base := n.MCPStats().AcksSent
		deadline := cl.Now() + ackHuntWindow
		var hunt func()
		hunt = func() {
			if !n.Running() {
				return // another event hung it first; the fault folds in
			}
			if n.MCPStats().AcksSent != base || cl.Now() >= deadline {
				doHang(i)
				return
			}
			cl.After(ackHuntStep, hunt)
		}
		hunt()
	}

	// killAndRevive implements the host-death drain protocol: poll the
	// victim for a message boundary, serialize its recovery anchor through
	// the versioned wire codec (the restore consumes exactly the bytes a
	// standby host would hold), kill it, and schedule the revival — Restore
	// after a standby spin-up delay, or Rejoin once the control plane has
	// buried it.
	killAndRevive := func(i int, delay sim.Duration, rejoin bool) {
		n := nodes[i]
		deadline := cl.Now() + drainHuntWindow
		var hunt func()
		hunt = func() {
			if !n.Running() || n.Dead() {
				return // already hung or dead; the fault folds in
			}
			if !n.Drained() {
				if cl.Now() >= deadline {
					return // no message boundary came; skip this kill
				}
				cl.After(drainHuntStep, hunt)
				return
			}
			ck, err := n.Checkpoint()
			if err != nil {
				return
			}
			enc := ck.Encode()
			dec, err := ckpt.Decode(enc)
			if err != nil {
				return
			}
			res.Checkpoints++
			res.CheckpointBytes += uint64(len(enc))
			if rejoin {
				// Rejoin disowns the checkpointed in-flight sends by design:
				// the peers reset the streams when they expelled the victim.
				aud.ExcuseSource(n.ID())
			}
			n.Kill()
			cl.After(delay, func() {
				reattach := func(pm map[gm.PortID]*gm.Port) {
					p, ok := pm[tcfg.Port]
					if !ok {
						return
					}
					ports[i].set(p)
					attach(n, p)
				}
				// The done callbacks fire on the victim's domain; a
				// speculating trial defers the counter past the span, so
				// a revive completed inside a rolled-back span is counted
				// exactly once — by its replay.
				onDone := func(fn func()) func() {
					if !tcfg.Speculate {
						return fn
					}
					eng := n.Engine()
					return func() { eng.Control(fn) }
				}
				if rejoin {
					_ = n.Rejoin(dec, reattach, onDone(func() { res.HostRejoins++ }))
				} else {
					_ = n.Restore(dec, reattach, onDone(func() { res.HostRestores++ }))
				}
			})
		}
		hunt()
	}

	// Periodic-checkpoint chains: one per KindPeriodicDeath victim. The sink
	// runs on the victim's own domain (conservatively, or at barrier commit
	// under speculation), so trial-local appends follow the auditor idiom —
	// deferred through the journaled control queue when speculating, inline
	// otherwise. Frames for one node commit oldest-first, so chain order is
	// the emission order either way.
	type ckptChain struct {
		base   []byte
		deltas [][]byte
	}
	const (
		periodicInterval = 500 * sim.Microsecond
		periodicBudget   = 200 * sim.Microsecond
	)
	chains := make(map[int]*ckptChain)
	startPeriodic := func(i int) {
		if _, ok := chains[i]; ok {
			return
		}
		ch := &ckptChain{}
		chains[i] = ch
		n := nodes[i]
		eng := n.Engine()
		sink := func(f gm.PeriodicFrame) {
			// Bytes are only valid during the call; the chain owns a copy.
			b := append([]byte(nil), f.Bytes...)
			kind := f.Kind
			rec := func() {
				if kind == gm.FrameBase {
					ch.base = b
					ch.deltas = ch.deltas[:0]
				} else {
					ch.deltas = append(ch.deltas, b)
				}
				res.PeriodicFrames++
				res.PeriodicBytes += uint64(len(b))
			}
			if tcfg.Speculate {
				eng.Control(rec)
			} else {
				rec()
			}
		}
		cl.After(sim.Microsecond, func() {
			if n.Running() && !n.Dead() {
				_ = n.StartPeriodicCheckpoint(periodicInterval, periodicBudget, sink)
			}
		})
	}

	// killFromChain is the incremental-checkpoint variant of killAndRevive:
	// the hunt additionally waits for the shipped chain to catch up with the
	// checkpointer (every emitted frame landed in the trial's copy), forces a
	// final delta at the drain boundary, verifies base+chain replay against a
	// fresh full checkpoint bit for bit, kills the victim, and revives it
	// from the replayed chain — the restore consumes only bytes a standby
	// host could have accumulated frame by frame.
	killFromChain := func(i int, delay sim.Duration) {
		n := nodes[i]
		ch := chains[i]
		if ch == nil {
			return
		}
		deadline := cl.Now() + drainHuntWindow
		var hunt func()
		hunt = func() {
			if !n.Running() || n.Dead() {
				return // already hung or dead; the fault folds in
			}
			st := n.PeriodicCheckpointStats()
			caughtUp := ch.base != nil && uint64(1+len(ch.deltas)) == st.Frames
			if !n.Drained() || !caughtUp {
				if cl.Now() >= deadline {
					return // no drained-and-caught-up instant came; skip
				}
				cl.After(drainHuntStep, hunt)
				return
			}
			// Snapshot the chain before forcing: the forced frame also goes
			// through the sink (possibly deferred under speculation), and the
			// replay list must hold it exactly once.
			replay := make([][]byte, len(ch.deltas))
			copy(replay, ch.deltas)
			frame, emitted, err := n.ForceCheckpointFrame()
			if err != nil {
				return // checkpointer already stopped (earlier kill); fold in
			}
			if emitted {
				replay = append(replay, append([]byte(nil), frame...))
			}
			replayed, err := ckpt.ReplayChain(ch.base, replay)
			if err != nil {
				res.PeriodicChainMismatches++
				return
			}
			fresh, err := n.Checkpoint()
			if err != nil {
				return
			}
			if !bytes.Equal(fresh.Encode(), replayed.Encode()) {
				res.PeriodicChainMismatches++
			}
			n.Kill()
			cl.After(delay, func() {
				reattach := func(pm map[gm.PortID]*gm.Port) {
					p, ok := pm[tcfg.Port]
					if !ok {
						return
					}
					ports[i].set(p)
					attach(n, p)
				}
				onDone := func() { res.HostRestores++ }
				if tcfg.Speculate {
					eng := n.Engine()
					onDone = func() { eng.Control(func() { res.HostRestores++ }) }
				}
				_ = n.Restore(replayed, reattach, onDone)
			})
		}
		hunt()
	}

	plan := PlanEvents(rng, tcfg, start)
	for _, ev := range plan {
		if ev.Kind == KindPeriodicDeath {
			startPeriodic(ev.Node)
		}
	}
	for _, ev := range plan {
		ev := ev
		cl.At(ev.At, func() {
			switch ev.Kind {
			case KindHang:
				hang(ev.Node)
			case KindDualHang:
				hang(ev.Node)
				hang(ev.Node2)
			case KindHangDuringRecovery:
				hang(ev.Node)
				n := nodes[ev.Node]
				// Wait for the armed hang to land, then for the reloaded
				// MCP to start running again: the second hang lands inside
				// the FTD's table-restore window.
				var waitDown, waitUp func()
				waitDown = func() {
					if n.Running() {
						cl.After(sim.Millisecond, waitDown)
						return
					}
					waitUp()
				}
				waitUp = func() {
					if !n.Running() {
						cl.After(sim.Millisecond, waitUp)
						return
					}
					doHang(ev.Node)
				}
				cl.After(sim.Millisecond, waitDown)
			case KindLinkFlap:
				l := nodes[ev.Node].Link()
				l.SetUp(false)
				cl.After(ev.Window, func() { l.SetUp(true) })
			case KindLinkDegrade:
				l := nodes[ev.Node].Link()
				l.SetFaults(ev.Profile, ev.Seed)
				cl.After(ev.Window, func() { l.SetFaults(fabric.FaultProfile{}, 0) })
			case KindPortDeath:
				s, p := nodePort(ev.Node)
				s.SetPortDead(p, true)
				cl.After(ev.Window, func() { s.SetPortDead(p, false) })
			case KindTrunkDeath:
				if ev.Node >= len(trunks) {
					return
				}
				live := 0
				for _, l := range trunks {
					if l.Up() {
						live++
					}
				}
				// Never sever the last live trunk: that is a full partition
				// of half the cluster, not an alternate-route scenario.
				if trunks[ev.Node].Up() && live > 1 {
					trunks[ev.Node].SetUp(false)
				}
			case KindPartition:
				nodes[ev.Node].Link().SetUp(false)
			case KindReloadFailure:
				if mode == gm.ModeFTGM {
					// Only the FTD has a reload-retry path; the naive
					// baseline would simply never come back.
					nodes[ev.Node].Driver().SetMCPLoadFailures(ev.Failures)
				}
				hang(ev.Node)
			case KindMapperDeath:
				// The flap opens an active remap window...
				l := nodes[ev.Node2].Link()
				l.SetUp(false)
				cl.After(ev.Window, func() { l.SetUp(true) })
				// ...and mid-window the mapping node dies for good: a hard
				// hang cancels the chip's timers, so the FTD's watchdog can
				// never fire and nothing ever reloads it. Its unfinished
				// sends are excused — the schemes are judged on what they
				// do for the survivors.
				cl.After(ev.Window/2, func() {
					aud.ExcuseSource(nodes[ev.Node].ID())
					nodes[ev.Node].InjectHardHang()
				})
			case KindHostDeath:
				killAndRevive(ev.Node, ev.Window, false)
			case KindPeriodicDeath:
				killFromChain(ev.Node, ev.Window)
			case KindMapperRebirth:
				// The flap opens an active remap window, exactly like
				// KindMapperDeath...
				l := nodes[ev.Node2].Link()
				l.SetUp(false)
				cl.After(ev.Window, func() { l.SetUp(true) })
				// ...and mid-window the mapping node dies — but this time
				// with a checkpoint taken at the drain boundary, and a
				// revival scheduled for long after the gossip plane's dead
				// verdict. The rejoin must be a genuine readmission under
				// live traffic.
				cl.After(ev.Window/2, func() { killAndRevive(ev.Node, ev.Revive, true) })
			}
		})
	}
	res.Events = plan

	cl.RunUntil(stop)
	// gossipConverged mirrors the end-of-trial view judgment: no live
	// node's agent may still hold a live peer as dead or be missing its
	// route. A rebirth trial can satisfy the auditor while the revived
	// node's own agent is still mid-readmission of the peers it buried
	// during its death; the drain loop keeps running until membership
	// agreement settles too (or the budget runs out — for a genuinely
	// partitioned live node that is the finding, not an error).
	gossipConverged := func() bool {
		agents := cl.GossipAgents()
		if len(agents) == 0 {
			return true
		}
		for i, ag := range agents {
			if !nodes[i].Running() {
				continue
			}
			view := ag.Members()
			routes := nodes[i].Driver().Routes()
			for j, peer := range nodes {
				if j == i || !peer.Running() {
					continue
				}
				if view[peer.ID()] == gossip.StateDead {
					return false
				}
				if _, ok := routes[peer.ID()]; !ok {
					return false
				}
			}
		}
		return true
	}
	// Drain: recoveries and Go-Back-N repair run until the auditor sees
	// every send delivered, or the settle budget runs out (a broken
	// scheme never drains — that is the finding, not an error).
	deadline := stop + tcfg.MaxSettle
	for (!aud.Complete() || !gossipConverged()) && cl.Now() < deadline {
		cl.Run(tcfg.SettleStep)
	}

	res.Audit = aud.Report()
	for _, n := range nodes {
		if f := n.FTD(); f != nil {
			st := f.Stats()
			res.Recoveries += st.Recoveries
			res.FalseAlarms += st.FalseAlarms
			res.ReloadRetries += st.ReloadRetries
			res.RecoveryRestarts += st.RecoveryRestarts
			res.RecoveryFailures += st.Failures
		}
		ds := n.Driver().Stats()
		res.SuppressedFatals += ds.SuppressedFatals
		res.NaiveRestarts += ds.NaiveRestarts
		res.NetFaultReports += ds.NetFaultReports
		ls := n.LinkStats()
		res.FaultDrops += ls.FaultDropped
		res.Corruptions += ls.Corrupted
		ms := n.MCPStats()
		res.Retransmits += ms.Retransmits
		res.NetFaultSuspicions += ms.NetFaultSuspicions
		res.UnreachableFails += ms.UnreachableFails
		if l := n.Link(); l != nil {
			// The switch-to-node direction carries injected damage too.
			ls1 := l.Stats(1)
			res.FaultDrops += ls1.FaultDropped
			res.Corruptions += ls1.Corrupted
		}
	}
	if nw := cl.NetWatch(); nw != nil {
		st := nw.Stats()
		res.NetSuspicions = st.Suspicions
		res.NetIncidents = st.Incidents
		res.NetRemaps = st.Remaps
		res.NetRemapFailures = st.RemapFailures
		res.NetProbes = st.Probes
		res.NetUnreachable = st.Unreachable
		res.NetReadmissions = st.Readmissions
	}
	if agents := cl.GossipAgents(); len(agents) > 0 {
		for i, ag := range agents {
			st := ag.Stats()
			res.GossipProbes += st.ProbesSent
			res.GossipSuspicions += st.Suspicions
			res.GossipDeadDeclared += st.DeadDeclared
			res.GossipReadmissions += st.Readmissions
			if !nodes[i].Running() {
				continue // a dead node's view judges nothing
			}
			view := ag.Members()
			routes := nodes[i].Driver().Routes()
			for j, peer := range nodes {
				if j == i || !peer.Running() {
					continue
				}
				if view[peer.ID()] == gossip.StateDead {
					res.GossipLiveExpelled++
				}
				if _, ok := routes[peer.ID()]; !ok {
					res.GossipRouteGaps++
				}
			}
		}
	}
	for i := range nodes {
		if _, ok := chains[i]; !ok {
			continue
		}
		// Drain-budget accounting survives the kill: Kill deactivates the
		// checkpointer but keeps its stats block for post-mortem harvest.
		st := nodes[i].PeriodicCheckpointStats()
		res.PeriodicSkips += st.Skips
		if st.MaxPause > res.PeriodicMaxPause {
			res.PeriodicMaxPause = st.MaxPause
		}
	}
	for _, s := range switches {
		res.SwitchDeadDrops += s.Stats().DroppedDead
	}
	res.SpecCommits, res.SpecRollbacks, _, _ = cl.Engine().SpecStats()
	// Counters are harvested; quiesce the trial so every pooled packet the
	// cluster still holds — rings, in-service handlers, in-flight deliveries
	// — returns to the arena instead of leaking with the abandoned engine.
	// 50 ms of drain covers the longest cable occupancy by orders of
	// magnitude. Runs after harvesting, so results are unaffected.
	cl.Shutdown(50 * gm.Millisecond)
	return res, nil
}
