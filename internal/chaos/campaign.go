package chaos

import (
	"fmt"

	"repro/gm"
	"repro/internal/fabric"
	"repro/internal/parallel"
	"repro/internal/sim"
)

// ACK-hunt parameters: an armed hang polls its target's AcksSent counter
// every ackHuntStep and fires on the first increment (or unconditionally
// after ackHuntWindow of silence), landing the hang in the ACKed-but-not-
// committed window that Figure 5 exploits.
const (
	ackHuntStep   = 500 * sim.Nanosecond
	ackHuntWindow = 10 * sim.Millisecond
)

// CampaignConfig shapes a chaos campaign: Trials independent clusters,
// each living through its own injection plan, fanned out over Workers.
type CampaignConfig struct {
	Trials  int
	Workers int // 0 = GOMAXPROCS
	Mode    gm.Mode
	Trial   TrialConfig
}

// DefaultCampaignConfig is a 4-trial FTGM campaign.
func DefaultCampaignConfig() CampaignConfig {
	return CampaignConfig{Trials: 4, Mode: gm.ModeFTGM, Trial: DefaultTrialConfig()}
}

// TrialResult is one trial's full accounting. Results are pure functions
// of (campaign seed, trial index): the determinism tests compare them
// bit-for-bit across worker counts.
type TrialResult struct {
	Trial  int
	Events []Event
	Audit  AuditReport

	// FTD activity summed over all nodes (zero in GM mode).
	Recoveries       uint64
	FalseAlarms      uint64
	ReloadRetries    uint64
	RecoveryRestarts uint64
	RecoveryFailures uint64
	SuppressedFatals uint64
	NaiveRestarts    uint64

	// Fabric damage totals.
	FaultDrops      uint64 // packets eaten by injected link profiles
	Corruptions     uint64 // payload bit flips injected on links
	SwitchDeadDrops uint64 // packets into dead ports / downed links

	Retransmits uint64 // Go-Back-N repair work across all nodes
}

// CampaignResult aggregates a campaign.
type CampaignResult struct {
	Seed        uint64
	Mode        string
	Trials      []TrialResult
	Total       AuditReport
	CleanTrials int
	// AllExactlyOnce is the campaign verdict: every trial's auditor
	// reported exactly-once in-order delivery.
	AllExactlyOnce bool
}

// Run executes the campaign. Trial i derives its generator from
// sim.DeriveRNG(seed, i), so results are identical at any worker count.
func Run(seed uint64, cfg CampaignConfig) (CampaignResult, error) {
	if cfg.Trials <= 0 {
		cfg.Trials = 1
	}
	trials, err := parallel.Map(cfg.Trials, cfg.Workers, func(i int) (TrialResult, error) {
		return RunTrial(seed, i, cfg.Mode, cfg.Trial)
	})
	if err != nil {
		return CampaignResult{}, err
	}
	res := CampaignResult{Seed: seed, Mode: modeName(cfg.Mode), Trials: trials, AllExactlyOnce: true}
	for _, tr := range trials {
		res.Total.merge(tr.Audit)
		if tr.Audit.ExactlyOnceInOrder {
			res.CleanTrials++
		} else {
			res.AllExactlyOnce = false
		}
	}
	res.Total.ExactlyOnceInOrder = res.AllExactlyOnce && res.Total.Sent > 0
	return res, nil
}

func modeName(m gm.Mode) string {
	if m == gm.ModeFTGM {
		return "FTGM"
	}
	return "GM"
}

// RunTrial builds one cluster, drives the all-to-all traffic, applies the
// trial's injection plan, drains, and audits.
func RunTrial(seed uint64, index int, mode gm.Mode, tcfg TrialConfig) (TrialResult, error) {
	tcfg = tcfg.withDefaults()
	rng := sim.DeriveRNG(seed, uint64(index))
	res := TrialResult{Trial: index}

	gcfg := gm.DefaultConfig(mode)
	gcfg.Seed = rng.Uint64() | 1
	gcfg.Host.SendTokens = tcfg.SendTokens
	// Deep outages queue thousands of shadow tokens; keep the handler's
	// per-token cost from dominating the recovery (as the availability
	// mission does).
	gcfg.Host.RecoveryPerToken = 0

	cl := gm.NewCluster(gcfg)
	nodes := make([]*gm.Node, tcfg.Nodes)
	for i := range nodes {
		nodes[i] = cl.AddNode(fmt.Sprintf("n%d", i))
	}
	sw := cl.AddSwitch("sw")
	for i, n := range nodes {
		if err := cl.Connect(n, sw, i); err != nil {
			return res, err
		}
	}
	if _, err := cl.Boot(); err != nil {
		return res, fmt.Errorf("chaos: boot: %w", err)
	}

	aud := NewAuditor()
	ports := make([]*gm.Port, tcfg.Nodes)
	for i, n := range nodes {
		p, err := n.OpenPort(tcfg.Port)
		if err != nil {
			return res, err
		}
		ports[i] = p
		self := n.ID()
		p.SetReceiveHandler(func(ev gm.RecvEvent) {
			aud.RecordDelivery(self, tcfg.Port, ev)
			_ = p.ProvideReceiveBuffer(uint32(tcfg.MsgBytes), gm.PriorityLow)
		})
		for j := 0; j < 512; j++ {
			if err := p.ProvideReceiveBuffer(uint32(tcfg.MsgBytes), gm.PriorityLow); err != nil {
				return res, err
			}
		}
	}

	// Traffic: each node sends to the other nodes round-robin, staggered
	// so the pumps don't tick in lockstep.
	start := cl.Now()
	stop := start + tcfg.Traffic
	for i := range nodes {
		src, port := nodes[i], ports[i]
		turn := 0
		var pump func()
		pump = func() {
			if cl.Now() >= stop {
				return
			}
			dst := nodes[(i+1+turn%(tcfg.Nodes-1))%tcfg.Nodes]
			turn++
			key := StreamKey{Src: src.ID(), SrcPort: tcfg.Port, Dst: dst.ID(), DstPort: tcfg.Port}
			buf := aud.NewMessage(key, tcfg.MsgBytes)
			if err := port.Send(dst.ID(), tcfg.Port, gm.PriorityLow, buf, nil); err != nil {
				aud.Unsend(key)
			}
			cl.After(tcfg.SendEvery, pump)
		}
		cl.After(sim.Duration(i+1)*37*sim.Microsecond, pump)
	}

	// doHang injects one processor hang right now; in GM mode an external
	// watchdog notices after NaiveDetection and performs the paper's §3
	// baseline restart (stock GM itself would just stay down forever).
	doHang := func(i int) {
		n := nodes[i]
		if !n.Running() {
			return // already hung or mid-reload; the fault folds in
		}
		n.InjectHang()
		if mode != gm.ModeFTGM {
			cl.After(tcfg.NaiveDetection, func() {
				if !n.Running() {
					n.NaiveRestart(nil)
				}
			})
		}
	}
	// hang arms a processor hang on the node's next transmitted ACK — the
	// adversarial instant of Figure 5: stock GM has ACKed arrival but not
	// yet committed the message to host memory, so the message is lost;
	// FTGM's delayed ACK (§4.1) makes the same timing a mere
	// retransmission. If the node stays quiet the hang fires anyway after
	// a grace window.
	hang := func(i int) {
		n := nodes[i]
		if !n.Running() {
			return
		}
		base := n.MCPStats().AcksSent
		deadline := cl.Now() + ackHuntWindow
		var hunt func()
		hunt = func() {
			if !n.Running() {
				return // another event hung it first; the fault folds in
			}
			if n.MCPStats().AcksSent != base || cl.Now() >= deadline {
				doHang(i)
				return
			}
			cl.After(ackHuntStep, hunt)
		}
		hunt()
	}

	plan := PlanEvents(rng, tcfg, start)
	for _, ev := range plan {
		ev := ev
		cl.At(ev.At, func() {
			switch ev.Kind {
			case KindHang:
				hang(ev.Node)
			case KindDualHang:
				hang(ev.Node)
				hang(ev.Node2)
			case KindHangDuringRecovery:
				hang(ev.Node)
				n := nodes[ev.Node]
				// Wait for the armed hang to land, then for the reloaded
				// MCP to start running again: the second hang lands inside
				// the FTD's table-restore window.
				var waitDown, waitUp func()
				waitDown = func() {
					if n.Running() {
						cl.After(sim.Millisecond, waitDown)
						return
					}
					waitUp()
				}
				waitUp = func() {
					if !n.Running() {
						cl.After(sim.Millisecond, waitUp)
						return
					}
					doHang(ev.Node)
				}
				cl.After(sim.Millisecond, waitDown)
			case KindLinkFlap:
				l := nodes[ev.Node].Link()
				l.SetUp(false)
				cl.After(ev.Window, func() { l.SetUp(true) })
			case KindLinkDegrade:
				l := nodes[ev.Node].Link()
				l.SetFaults(ev.Profile, ev.Seed)
				cl.After(ev.Window, func() { l.SetFaults(fabric.FaultProfile{}, 0) })
			case KindPortDeath:
				sw.SetPortDead(ev.Node, true)
				cl.After(ev.Window, func() { sw.SetPortDead(ev.Node, false) })
			case KindReloadFailure:
				if mode == gm.ModeFTGM {
					// Only the FTD has a reload-retry path; the naive
					// baseline would simply never come back.
					nodes[ev.Node].Driver().SetMCPLoadFailures(ev.Failures)
				}
				hang(ev.Node)
			}
		})
	}
	res.Events = plan

	cl.RunUntil(stop)
	// Drain: recoveries and Go-Back-N repair run until the auditor sees
	// every send delivered, or the settle budget runs out (a broken
	// scheme never drains — that is the finding, not an error).
	deadline := stop + tcfg.MaxSettle
	for !aud.Complete() && cl.Now() < deadline {
		cl.Run(tcfg.SettleStep)
	}

	res.Audit = aud.Report()
	for _, n := range nodes {
		if f := n.FTD(); f != nil {
			st := f.Stats()
			res.Recoveries += st.Recoveries
			res.FalseAlarms += st.FalseAlarms
			res.ReloadRetries += st.ReloadRetries
			res.RecoveryRestarts += st.RecoveryRestarts
			res.RecoveryFailures += st.Failures
		}
		ds := n.Driver().Stats()
		res.SuppressedFatals += ds.SuppressedFatals
		res.NaiveRestarts += ds.NaiveRestarts
		ls := n.LinkStats()
		res.FaultDrops += ls.FaultDropped
		res.Corruptions += ls.Corrupted
		res.Retransmits += n.MCPStats().Retransmits
		if l := n.Link(); l != nil {
			// The switch-to-node direction carries injected damage too.
			ls1 := l.Stats(1)
			res.FaultDrops += ls1.FaultDropped
			res.Corruptions += ls1.Corrupted
		}
	}
	res.SwitchDeadDrops = sw.Stats().DroppedDead
	return res, nil
}
