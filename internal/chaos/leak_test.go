package chaos

import (
	"testing"

	"repro/gm"
	"repro/internal/fabric"
	"repro/internal/sim"
)

// TestCampaignPoolLeak asserts the packet-arena ownership contract across
// whole chaos campaigns: every pooled packet checked out during the trials —
// including those eaten by retransmit drops, corruption discards, chip
// resets, expelled peers, and recovery reloads — is released by the time the
// clusters quiesce. RunTrial ends with Cluster.Shutdown, which kills the
// interfaces and drains in-flight traffic onto them; a nonzero Live delta
// here means some layer dropped a packet without releasing it (or released
// one it no longer owned, which would have panicked instead).
//
// The name matches the `make chaos` run filter, so this executes under the
// race detector alongside the delivery-audit campaigns, race-checking the
// arena's checkout/release paths at the same time.
func TestCampaignPoolLeak(t *testing.T) {
	campaigns := []struct {
		name string
		cfg  CampaignConfig
	}{
		{"ftgm", testCampaignConfig(gm.ModeFTGM)},
		{"gm-naive", func() CampaignConfig {
			cfg := testCampaignConfig(gm.ModeGM)
			cfg.Trial.MaxSettle = 30 * sim.Second
			return cfg
		}()},
		{"netfault", func() CampaignConfig {
			cfg := CampaignConfig{Trials: 1, Mode: gm.ModeFTGM, Trial: netFaultTrialConfig()}
			return cfg
		}()},
	}
	for _, c := range campaigns {
		t.Run(c.name, func(t *testing.T) {
			before := fabric.PoolStats()
			if _, err := Run(testSeed, c.cfg); err != nil {
				t.Fatal(err)
			}
			after := fabric.PoolStats()
			if after.Live != before.Live {
				t.Errorf("campaign leaked %d pooled packets (checkouts %d, releases %d)",
					after.Live-before.Live,
					after.Checkouts-before.Checkouts,
					after.Releases-before.Releases)
			}
			if after.Checkouts == before.Checkouts {
				t.Error("campaign checked out no pooled packets — the leak assertion tested nothing")
			}
		})
	}
}
