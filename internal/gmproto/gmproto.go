// Package gmproto defines the GM wire protocol and host-interface types
// shared by the MCP (the firmware side) and the gm user library (the host
// side): node/port identifiers, packet headers with real byte encodings,
// send/receive tokens, sequence-number streams, and the events the LANai
// posts into a port's receive queue.
//
// Headers are encoded into actual packet bytes (and covered by the fabric
// CRC) so that bit-level corruption experiments damage real protocol state,
// as in the paper's fault-injection study.
package gmproto

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// NodeID identifies a network interface, assigned during mapping.
type NodeID uint16

// PortID identifies a GM port on a node. GM allows 8 ports per node (§4.1).
type PortID uint8

// MaxPorts is the number of ports per node.
const MaxPorts = 8

// Priority is a GM message priority; GM has two non-preemptive levels.
type Priority uint8

// Message priorities.
const (
	PriorityLow  Priority = 1
	PriorityHigh Priority = 2
)

// Valid reports whether p is a defined priority.
func (p Priority) Valid() bool { return p == PriorityLow || p == PriorityHigh }

// MaxPacketPayload is GM's fragmentation limit: large messages are split
// into packets of at most 4 KB so a long message cannot block a channel
// (§5.1).
const MaxPacketPayload = 4096

// PacketType tags the GM-level content of a fabric packet.
type PacketType uint8

// Packet types.
const (
	PTData PacketType = iota + 1
	PTAck
	PTNack
	PTMapScout
	PTMapReply
)

// String names the packet type.
func (t PacketType) String() string {
	switch t {
	case PTData:
		return "DATA"
	case PTAck:
		return "ACK"
	case PTNack:
		return "NACK"
	case PTMapScout:
		return "SCOUT"
	case PTMapReply:
		return "REPLY"
	case PTMapConfig:
		return "CONFIG"
	case PTGossip:
		return "GOSSIP"
	default:
		return fmt.Sprintf("PT?%d", uint8(t))
	}
}

// StreamID names a reliable, ordered sequence-number stream.
//
// In stock GM a stream is a connection: all traffic from one node to
// another shares one MCP-generated sequence space, whatever port it came
// from. In FTGM the host generates sequence numbers per (port, remote node),
// so the receiver tracks one ACK number per (connection, port) pair (§4.1).
// The GM case is represented with Port = ConnectionPort. GM's "two
// non-preemptive priority levels" (§3.1) each carry their own sequence
// space, so the priority is part of the stream identity in both modes.
type StreamID struct {
	Node NodeID // the remote node (the connection)
	Port PortID // the sending port, or ConnectionPort for per-connection mode
	Prio Priority
}

// ConnectionPort is the Port value of per-connection (stock GM) streams.
const ConnectionPort PortID = 0xFF

// String renders the stream for traces.
func (s StreamID) String() string {
	if s.Port == ConnectionPort {
		return fmt.Sprintf("conn(%d,p%d)", s.Node, s.Prio)
	}
	return fmt.Sprintf("stream(%d:%d,p%d)", s.Node, s.Port, s.Prio)
}

// DataHeader is the GM header of a DATA packet. Directed sends (GM's
// zero-copy deposit into pre-registered remote memory) reuse the same
// reliable stream machinery: Directed is set and RemoteOffset names the
// destination within the receiver's registered region RegionID; no receive
// token is consumed and no receive event is posted.
type DataHeader struct {
	Src     NodeID
	Dst     NodeID
	SrcPort PortID
	DstPort PortID
	Prio    Priority
	Seq     uint32 // message sequence number on the sender's stream
	MsgID   uint32 // sender-unique message id, for reassembly
	MsgLen  uint32 // total message length
	Offset  uint32 // offset of this fragment within the message

	Directed     bool
	RegionID     uint32 // receiver's registered-memory region
	RemoteOffset uint32 // destination offset within the region
}

// DataHeaderSize is the encoded size of a DataHeader.
const DataHeaderSize = 1 + 2 + 2 + 1 + 1 + 1 + 4 + 4 + 4 + 4 + 1 + 4 + 4

// ErrShortHeader is returned when a packet is too short to decode.
var ErrShortHeader = errors.New("gmproto: short header")

// ErrBadType is returned when decoding a packet of an unexpected type.
var ErrBadType = errors.New("gmproto: unexpected packet type")

// Encode renders the header followed by the fragment payload into a fresh
// buffer. The data path uses EncodeTo with a pooled packet buffer instead;
// Encode remains for tests and one-off traffic.
func (h *DataHeader) Encode(payload []byte) []byte {
	buf := make([]byte, DataHeaderSize+len(payload))
	h.EncodeTo(buf, payload)
	return buf
}

// EncodeTo renders the header followed by the fragment payload into buf,
// which must be at least DataHeaderSize+len(payload) bytes, and returns the
// number of bytes written. It performs no allocation.
func (h *DataHeader) EncodeTo(buf []byte, payload []byte) int {
	_ = buf[DataHeaderSize+len(payload)-1] // bounds check up front
	buf[0] = byte(PTData)
	binary.LittleEndian.PutUint16(buf[1:], uint16(h.Src))
	binary.LittleEndian.PutUint16(buf[3:], uint16(h.Dst))
	buf[5] = byte(h.SrcPort)
	buf[6] = byte(h.DstPort)
	buf[7] = byte(h.Prio)
	binary.LittleEndian.PutUint32(buf[8:], h.Seq)
	binary.LittleEndian.PutUint32(buf[12:], h.MsgID)
	binary.LittleEndian.PutUint32(buf[16:], h.MsgLen)
	binary.LittleEndian.PutUint32(buf[20:], h.Offset)
	if h.Directed {
		buf[24] = 1
	} else {
		buf[24] = 0 // recycled buffers carry stale bytes; write every field
	}
	binary.LittleEndian.PutUint32(buf[25:], h.RegionID)
	binary.LittleEndian.PutUint32(buf[29:], h.RemoteOffset)
	copy(buf[DataHeaderSize:], payload)
	return DataHeaderSize + len(payload)
}

// DecodeData parses a DATA packet payload into its header and fragment.
func DecodeData(b []byte) (DataHeader, []byte, error) {
	if len(b) < DataHeaderSize {
		return DataHeader{}, nil, ErrShortHeader
	}
	if PacketType(b[0]) != PTData {
		return DataHeader{}, nil, fmt.Errorf("%w: %v", ErrBadType, PacketType(b[0]))
	}
	h := DataHeader{
		Src:          NodeID(binary.LittleEndian.Uint16(b[1:])),
		Dst:          NodeID(binary.LittleEndian.Uint16(b[3:])),
		SrcPort:      PortID(b[5]),
		DstPort:      PortID(b[6]),
		Prio:         Priority(b[7]),
		Seq:          binary.LittleEndian.Uint32(b[8:]),
		MsgID:        binary.LittleEndian.Uint32(b[12:]),
		MsgLen:       binary.LittleEndian.Uint32(b[16:]),
		Offset:       binary.LittleEndian.Uint32(b[20:]),
		Directed:     b[24] == 1,
		RegionID:     binary.LittleEndian.Uint32(b[25:]),
		RemoteOffset: binary.LittleEndian.Uint32(b[29:]),
	}
	if b[24] > 1 {
		return DataHeader{}, nil, fmt.Errorf("%w: directed flag %d", ErrBadType, b[24])
	}
	return h, b[DataHeaderSize:], nil
}

// AckHeader is the GM header of an ACK or NACK packet. ACKs are cumulative
// per stream: AckSeq is the highest in-order message sequence received (and,
// under FTGM's delayed commit point, DMA-completed). A NACK carries the
// sequence number the receiver expects next. SrcPort and Prio identify the
// stream being acknowledged.
type AckHeader struct {
	Src     NodeID   // acknowledging node
	Dst     NodeID   // original sender
	SrcPort PortID   // the stream's sending port (ConnectionPort in GM mode)
	Prio    Priority // the stream's priority level
	AckSeq  uint32   // ACK: highest in-order seq delivered; NACK: expected seq
	Nack    bool
}

// AckHeaderSize is the encoded size of an AckHeader.
const AckHeaderSize = 1 + 2 + 2 + 1 + 1 + 4 + 1

// Encode renders the header into a fresh buffer (tests and one-off
// traffic; the data path uses EncodeTo).
func (h *AckHeader) Encode() []byte {
	buf := make([]byte, AckHeaderSize)
	h.EncodeTo(buf)
	return buf
}

// EncodeTo renders the header into buf, which must be at least
// AckHeaderSize bytes, and returns the number of bytes written. It performs
// no allocation.
func (h *AckHeader) EncodeTo(buf []byte) int {
	_ = buf[AckHeaderSize-1] // bounds check up front
	if h.Nack {
		buf[0] = byte(PTNack)
	} else {
		buf[0] = byte(PTAck)
	}
	binary.LittleEndian.PutUint16(buf[1:], uint16(h.Src))
	binary.LittleEndian.PutUint16(buf[3:], uint16(h.Dst))
	buf[5] = byte(h.SrcPort)
	buf[6] = byte(h.Prio)
	binary.LittleEndian.PutUint32(buf[7:], h.AckSeq)
	if h.Nack {
		buf[11] = 1
	} else {
		buf[11] = 0 // recycled buffers carry stale bytes; write every field
	}
	return AckHeaderSize
}

// DecodeAck parses an ACK/NACK packet payload.
func DecodeAck(b []byte) (AckHeader, error) {
	if len(b) < AckHeaderSize {
		return AckHeader{}, ErrShortHeader
	}
	t := PacketType(b[0])
	if t != PTAck && t != PTNack {
		return AckHeader{}, fmt.Errorf("%w: %v", ErrBadType, t)
	}
	return AckHeader{
		Src:     NodeID(binary.LittleEndian.Uint16(b[1:])),
		Dst:     NodeID(binary.LittleEndian.Uint16(b[3:])),
		SrcPort: PortID(b[5]),
		Prio:    Priority(b[6]),
		AckSeq:  binary.LittleEndian.Uint32(b[7:]),
		Nack:    b[11] == 1,
	}, nil
}

// PeekType reports the packet type of an encoded GM payload.
func PeekType(b []byte) (PacketType, error) {
	if len(b) == 0 {
		return 0, ErrShortHeader
	}
	return PacketType(b[0]), nil
}

// SendToken is the descriptor a process hands to the LANai with gm_send():
// "information about the location, size and priority of the send buffer and
// the intended destination for the message" (§3.1). Under FTGM it also
// carries the host-generated sequence number (§4.1).
type SendToken struct {
	ID       uint64 // host-unique token id (callback correlation)
	Dest     NodeID
	DestPort PortID
	SrcPort  PortID
	Prio     Priority
	Data     []byte // the pinned send buffer contents
	Seq      uint32 // host-generated sequence number (FTGM only)
	HasSeq   bool   // whether Seq is meaningful

	// Directed-send fields (gm_directed_send: deposit into the receiver's
	// registered memory without consuming a receive token).
	Directed     bool
	RegionID     uint32
	RemoteOffset uint32
}

// RecvToken describes a provided receive buffer: "its size and the priority
// of the message that it can accept" (§3.1). Buf is the host buffer itself:
// the MCP deposits message bytes straight into it and delivers EvReceived
// with Data sliced from it, so a message crosses from wire to application
// buffer with a single copy. A nil Buf makes the MCP allocate at delivery
// (legacy path, kept for direct-MCP tests).
type RecvToken struct {
	ID   uint64
	Size uint32
	Prio Priority
	Buf  []byte
}

// SendStatus reports the outcome of a send to its callback.
type SendStatus uint8

// Send statuses.
const (
	SendOK SendStatus = iota + 1
	SendErrorDropped
	SendErrorClosed
	// SendErrorUnreachable is terminal: the network watchdog declared the
	// destination unreachable (no surviving route after remap attempts), so
	// the message will not be retransmitted further.
	SendErrorUnreachable
)

// String names the send status.
func (s SendStatus) String() string {
	switch s {
	case SendOK:
		return "ok"
	case SendErrorDropped:
		return "dropped"
	case SendErrorClosed:
		return "closed"
	case SendErrorUnreachable:
		return "unreachable"
	default:
		return fmt.Sprintf("status?%d", uint8(s))
	}
}

// EventType tags an entry in a port's receive (event) queue.
type EventType uint8

// Event types posted by the MCP into the host receive queue.
const (
	EvReceived EventType = iota + 1
	EvSent
	EvSendError
	EvFaultDetected // posted by the FTD after reloading the MCP (§4.3)
	EvAlarm
	EvNoRecvBuffer
	// EvDirectedDeposit is a library-internal commit record: a directed
	// deposit landed, carrying the sequence number the host ACK table must
	// learn (§4.1). The receiving process is never notified (GM's
	// directed-send semantics) — the gm library consumes the record without
	// dispatching it.
	EvDirectedDeposit
)

// String names the event type.
func (t EventType) String() string {
	switch t {
	case EvReceived:
		return "RECEIVED"
	case EvSent:
		return "SENT"
	case EvSendError:
		return "SEND_ERROR"
	case EvFaultDetected:
		return "FAULT_DETECTED"
	case EvAlarm:
		return "ALARM"
	case EvNoRecvBuffer:
		return "NO_RECV_BUFFER"
	case EvDirectedDeposit:
		return "DIRECTED_DEPOSIT"
	default:
		return fmt.Sprintf("Ev?%d", uint8(t))
	}
}

// Event is an entry in a port's receive queue. Which fields are meaningful
// depends on Type. Under FTGM, EvReceived carries the sequence number of
// the message just ACKed, so the host can maintain its per-stream ACK
// table (§4.1).
type Event struct {
	Type    EventType
	Port    PortID
	Src     NodeID
	SrcPort PortID
	Prio    Priority // priority level of the received message's stream
	Seq     uint32
	TokenID uint64 // send token (EvSent/EvSendError) or recv token (EvReceived)
	Status  SendStatus
	Data    []byte // received message contents (EvReceived)
	// RegionID names the registered region a directed send landed in
	// (EvDirectedDeposit) so the library can dirty-mark exactly that
	// region's checkpoint section.
	RegionID uint32
}
