package gmproto

import (
	"encoding/binary"
	"fmt"
)

// PTMapConfig distributes the mapper's results (identity + route table) to
// an interface.
const PTMapConfig PacketType = 6

// PTGossip carries the gossip control plane's datagrams (internal/gossip):
// probe rounds and piggybacked membership deltas ride the fabric as raw
// source-routed packets, exactly like the mapper's scouts — the membership
// plane must keep probing peers the reliable stream layer already refuses
// to talk to.
const PTGossip PacketType = 7

// ScoutPayload is a mapper probe. It carries the forward route it was
// launched on so the reached interface can compute the reverse route
// (negated deltas in reverse order) and identify which probe it answers.
type ScoutPayload struct {
	Fwd []byte
}

// Encode renders the scout payload.
func (s *ScoutPayload) Encode() []byte {
	buf := make([]byte, 2+len(s.Fwd))
	buf[0] = byte(PTMapScout)
	buf[1] = byte(len(s.Fwd))
	copy(buf[2:], s.Fwd)
	return buf
}

// DecodeScout parses a scout payload.
func DecodeScout(b []byte) (ScoutPayload, error) {
	if len(b) < 2 || PacketType(b[0]) != PTMapScout {
		return ScoutPayload{}, fmt.Errorf("%w: scout", ErrShortHeader)
	}
	n := int(b[1])
	if len(b) < 2+n {
		return ScoutPayload{}, fmt.Errorf("%w: scout path", ErrShortHeader)
	}
	return ScoutPayload{Fwd: append([]byte(nil), b[2:2+n]...)}, nil
}

// ReplyPayload is an interface's answer to a scout: its burned-in unique id
// and the forward route the scout traveled.
type ReplyPayload struct {
	UID uint64
	Fwd []byte
}

// Encode renders the reply payload.
func (r *ReplyPayload) Encode() []byte {
	buf := make([]byte, 10+len(r.Fwd))
	buf[0] = byte(PTMapReply)
	binary.LittleEndian.PutUint64(buf[1:], r.UID)
	buf[9] = byte(len(r.Fwd))
	copy(buf[10:], r.Fwd)
	return buf
}

// DecodeReply parses a reply payload.
func DecodeReply(b []byte) (ReplyPayload, error) {
	if len(b) < 10 || PacketType(b[0]) != PTMapReply {
		return ReplyPayload{}, fmt.Errorf("%w: reply", ErrShortHeader)
	}
	n := int(b[9])
	if len(b) < 10+n {
		return ReplyPayload{}, fmt.Errorf("%w: reply path", ErrShortHeader)
	}
	return ReplyPayload{
		UID: binary.LittleEndian.Uint64(b[1:]),
		Fwd: append([]byte(nil), b[10:10+n]...),
	}, nil
}

// ConfigPayload assigns an interface its NodeID and route table. At the end
// of the mapping protocol "each interface has a map of the network and
// routes to all other interfaces stored in its local memory" (§2).
type ConfigPayload struct {
	ID     NodeID
	Routes map[NodeID][]byte
}

// Encode renders the config payload.
func (c *ConfigPayload) Encode() []byte {
	size := 1 + 2 + 2
	for _, r := range c.Routes {
		size += 2 + 1 + len(r)
	}
	buf := make([]byte, 0, size)
	buf = append(buf, byte(PTMapConfig))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(c.ID))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(c.Routes)))
	for id, r := range c.Routes {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(id))
		buf = append(buf, byte(len(r)))
		buf = append(buf, r...)
	}
	return buf
}

// DecodeConfig parses a config payload.
func DecodeConfig(b []byte) (ConfigPayload, error) {
	if len(b) < 5 || PacketType(b[0]) != PTMapConfig {
		return ConfigPayload{}, fmt.Errorf("%w: config", ErrShortHeader)
	}
	c := ConfigPayload{
		ID:     NodeID(binary.LittleEndian.Uint16(b[1:])),
		Routes: make(map[NodeID][]byte),
	}
	n := int(binary.LittleEndian.Uint16(b[3:]))
	off := 5
	for i := 0; i < n; i++ {
		if len(b) < off+3 {
			return ConfigPayload{}, fmt.Errorf("%w: config entry", ErrShortHeader)
		}
		id := NodeID(binary.LittleEndian.Uint16(b[off:]))
		rlen := int(b[off+2])
		off += 3
		if len(b) < off+rlen {
			return ConfigPayload{}, fmt.Errorf("%w: config route", ErrShortHeader)
		}
		c.Routes[id] = append([]byte(nil), b[off:off+rlen]...)
		off += rlen
	}
	return c, nil
}

// ReverseRoute computes the return route of a delta route: negated deltas
// in reverse order.
func ReverseRoute(fwd []byte) []byte {
	rev := make([]byte, len(fwd))
	for i, d := range fwd {
		rev[len(fwd)-1-i] = byte(-int8(d))
	}
	return rev
}
