package gmproto

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestDataHeaderRoundTrip(t *testing.T) {
	h := DataHeader{
		Src: 3, Dst: 7, SrcPort: 2, DstPort: 5, Prio: PriorityHigh,
		Seq: 0xdeadbeef, MsgID: 42, MsgLen: 100000, Offset: 8192,
	}
	payload := []byte("fragment data")
	enc := h.Encode(payload)
	got, data, err := DecodeData(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got != h {
		t.Errorf("header round trip: got %+v, want %+v", got, h)
	}
	if !bytes.Equal(data, payload) {
		t.Errorf("payload round trip: %q", data)
	}
}

func TestDataHeaderErrors(t *testing.T) {
	if _, _, err := DecodeData(make([]byte, 3)); !errors.Is(err, ErrShortHeader) {
		t.Errorf("short: %v", err)
	}
	ack := (&AckHeader{Src: 1, Dst: 2}).Encode()
	pad := append(ack, make([]byte, DataHeaderSize)...)
	if _, _, err := DecodeData(pad); !errors.Is(err, ErrBadType) {
		t.Errorf("wrong type: %v", err)
	}
}

func TestAckHeaderRoundTrip(t *testing.T) {
	for _, nack := range []bool{false, true} {
		h := AckHeader{Src: 9, Dst: 1, SrcPort: 3, AckSeq: 77, Nack: nack}
		got, err := DecodeAck(h.Encode())
		if err != nil {
			t.Fatal(err)
		}
		if got != h {
			t.Errorf("ack round trip: got %+v, want %+v", got, h)
		}
	}
}

func TestAckHeaderErrors(t *testing.T) {
	if _, err := DecodeAck(nil); !errors.Is(err, ErrShortHeader) {
		t.Errorf("short: %v", err)
	}
	data := (&DataHeader{}).Encode(nil)
	if _, err := DecodeAck(data); !errors.Is(err, ErrBadType) {
		t.Errorf("wrong type: %v", err)
	}
}

func TestPeekType(t *testing.T) {
	d := (&DataHeader{}).Encode(nil)
	if pt, err := PeekType(d); err != nil || pt != PTData {
		t.Errorf("peek data = %v, %v", pt, err)
	}
	a := (&AckHeader{Nack: true}).Encode()
	if pt, err := PeekType(a); err != nil || pt != PTNack {
		t.Errorf("peek nack = %v, %v", pt, err)
	}
	if _, err := PeekType(nil); err == nil {
		t.Error("empty peek succeeded")
	}
}

func TestStreamIDString(t *testing.T) {
	if got := (StreamID{Node: 4, Port: ConnectionPort, Prio: PriorityLow}).String(); got != "conn(4,p1)" {
		t.Errorf("conn stream = %q", got)
	}
	if got := (StreamID{Node: 4, Port: 2, Prio: PriorityHigh}).String(); got != "stream(4:2,p2)" {
		t.Errorf("port stream = %q", got)
	}
}

func TestPriorityValid(t *testing.T) {
	if !PriorityLow.Valid() || !PriorityHigh.Valid() {
		t.Error("defined priorities invalid")
	}
	if Priority(0).Valid() || Priority(3).Valid() {
		t.Error("undefined priorities valid")
	}
}

func TestEnumStrings(t *testing.T) {
	for _, pt := range []PacketType{PTData, PTAck, PTNack, PTMapScout, PTMapReply, PacketType(99)} {
		if pt.String() == "" {
			t.Errorf("empty string for %d", pt)
		}
	}
	for _, ev := range []EventType{EvReceived, EvSent, EvSendError, EvFaultDetected, EvAlarm, EvNoRecvBuffer, EventType(99)} {
		if ev.String() == "" {
			t.Errorf("empty string for %d", ev)
		}
	}
	for _, s := range []SendStatus{SendOK, SendErrorDropped, SendErrorClosed, SendStatus(99)} {
		if s.String() == "" {
			t.Errorf("empty string for %d", s)
		}
	}
}

// Property: DataHeader encoding round-trips for all field values and any
// payload.
func TestPropertyDataRoundTrip(t *testing.T) {
	f := func(src, dst uint16, sp, dp uint8, seq, msgID, msgLen, off uint32, payload []byte) bool {
		h := DataHeader{
			Src: NodeID(src), Dst: NodeID(dst),
			SrcPort: PortID(sp), DstPort: PortID(dp),
			Prio: PriorityLow,
			Seq:  seq, MsgID: msgID, MsgLen: msgLen, Offset: off,
		}
		got, data, err := DecodeData(h.Encode(payload))
		return err == nil && got == h && bytes.Equal(data, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: corrupting any single byte of an encoded DATA header+payload is
// either detected by the decoder or changes the decoded values — corruption
// can never silently decode to the original.
func TestPropertyCorruptionVisible(t *testing.T) {
	f := func(seq uint32, idx uint8, flip uint8, payload []byte) bool {
		h := DataHeader{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Prio: PriorityLow, Seq: seq, MsgLen: uint32(len(payload))}
		enc := h.Encode(payload)
		i := int(idx) % len(enc)
		mask := flip | 1 // guarantee at least one bit flips
		enc[i] ^= mask
		got, data, err := DecodeData(enc)
		if err != nil {
			return true // detected
		}
		return got != h || !bytes.Equal(data, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
