package gmproto

import (
	"bytes"
	"testing"
)

// FuzzDecodeData: arbitrary bytes must either fail to decode or round-trip
// through re-encoding; never panic.
func FuzzDecodeData(f *testing.F) {
	h := DataHeader{Src: 1, Dst: 2, SrcPort: 3, DstPort: 4, Prio: PriorityLow,
		Seq: 7, MsgID: 8, MsgLen: 16, Offset: 0}
	f.Add(h.Encode([]byte("seed payload")))
	f.Add([]byte{})
	f.Add([]byte{byte(PTData)})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, payload, err := DecodeData(data)
		if err != nil {
			return
		}
		re := got.Encode(payload)
		if !bytes.Equal(re, data) {
			t.Fatalf("decode/encode not idempotent:\n in  %x\n out %x", data, re)
		}
	})
}

// FuzzDecodeAck mirrors FuzzDecodeData for control packets.
func FuzzDecodeAck(f *testing.F) {
	f.Add((&AckHeader{Src: 1, Dst: 2, SrcPort: 3, AckSeq: 9}).Encode())
	f.Add((&AckHeader{Nack: true, AckSeq: 1}).Encode())
	f.Add([]byte{byte(PTNack)})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeAck(data)
		if err != nil {
			return
		}
		re := got.Encode()
		// Re-encoding normalizes length; the decoded prefix must match.
		if len(data) < len(re) || !bytes.Equal(re, data[:len(re)]) {
			t.Fatalf("decode/encode prefix mismatch:\n in  %x\n out %x", data, re)
		}
	})
}

// FuzzDecodeConfig: mapper configuration payloads from the wire.
func FuzzDecodeConfig(f *testing.F) {
	c := ConfigPayload{ID: 3, Routes: map[NodeID][]byte{1: {0xFF}, 2: {1, 2}}}
	f.Add(c.Encode())
	f.Add([]byte{byte(PTMapConfig), 0, 0, 9, 9})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := DecodeConfig(data)
		if err != nil {
			return
		}
		// Round trip through encode/decode preserves the table.
		re, err2 := DecodeConfig(got.Encode())
		if err2 != nil {
			t.Fatalf("re-decode failed: %v", err2)
		}
		if re.ID != got.ID || len(re.Routes) != len(got.Routes) {
			t.Fatal("config round trip lost data")
		}
		for id, r := range got.Routes {
			if !bytes.Equal(re.Routes[id], r) {
				t.Fatal("route bytes changed in round trip")
			}
		}
	})
}

// FuzzScoutReply covers the remaining mapper payloads.
func FuzzScoutReply(f *testing.F) {
	f.Add((&ScoutPayload{Fwd: []byte{1, 0xFF}}).Encode())
	f.Add((&ReplyPayload{UID: 77, Fwd: []byte{3}}).Encode())
	f.Fuzz(func(t *testing.T, data []byte) {
		if s, err := DecodeScout(data); err == nil {
			if _, err := DecodeScout(s.Encode()); err != nil {
				t.Fatal("scout re-decode failed")
			}
		}
		if r, err := DecodeReply(data); err == nil {
			if _, err := DecodeReply(r.Encode()); err != nil {
				t.Fatal("reply re-decode failed")
			}
		}
	})
}
