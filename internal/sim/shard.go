package sim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// This file implements within-trial parallelism: an Engine can be split into
// per-component *domains* — each with its own event queue, clock, sequence
// counter and RNG — synchronized with link propagation delays as lookahead.
// Three mechanisms bound how far a domain may run between barriers:
//
//  1. Per-edge lookahead. Boundaries register directed edges
//     (ObserveEdgeLookahead), and each window computes every domain's
//     earliest-affect time: the minimum over chains of queued foreign
//     events of (event time + accumulated edge latency) — the classic
//     lower-bound-on-timestamp fixpoint. A leaf domain three switch hops
//     from the nearest busy sender runs three hops of latency past the
//     global minimum instead of being clipped to it.
//  2. Sole-due run-ahead. When exactly one domain has work, it runs to the
//     earliest foreign head under a self-containment rule (stop at the
//     first cross-domain transfer), collapsing drain tails into one
//     barrier per interaction.
//  3. Speculative run-ahead (spec.go). Domains that registered state hooks
//     may execute past their conservative bound into a journaled span that
//     the next barrier commits or rolls back.
//
// The design keys on one observation: every component in this codebase takes
// its *Engine at construction and schedules exclusively through that pointer.
// A domain therefore IS an Engine — no goroutine-local state, no domain
// handles threaded through APIs. The root engine (domain 0) remains the
// control domain: experiment harnesses, chaos schedulers, the cluster's
// mapper/netwatch plumbing all schedule there, and any window in which a
// control event is due runs *serialized* in global (time, domain, seq) order,
// so control code may freely touch every domain. Windows with no due control
// event run the domains concurrently.
//
// Determinism contract (bit-for-bit, invariant in shard count):
//   - Within a domain, events fire in (when, seq) order — the same strict
//     total order the serial engine uses; seq is domain-local.
//   - Cross-domain transfers move only at window barriers, in domain-index
//     order, FIFO within each boundary; the receiver assigns its own local
//     seqs at that point. Transfer order is thus a pure function of the
//     window schedule, which depends only on queue contents — never on how
//     many OS threads executed a window.
//   - Window bounds, speculation commit/rollback decisions and control
//     promotion times are all pure functions of queue contents and the
//     registered edge graph, so they too are executor-count invariant.
//   - Trace lines are buffered per domain and merged by (time, domain
//     index, emission order) — lines are held back until the global clock
//     floor passes them, so per-domain window skew (and rolled-back
//     speculation) never reorders or leaks a line.
//
// SetShards(1) keeps the exact same windowed schedule but executes every
// window on the coordinator goroutine, domain by domain in index order —
// which is precisely what the concurrent execution is equivalent to.

// Boundary is a cross-domain edge (e.g. one direction of a fabric link) that
// accumulated transfers during a window. The coordinator flushes all dirty
// boundaries at each window barrier, in domain-index order of the producing
// engine, FIFO within the boundary.
type Boundary interface {
	// FlushBoundary moves the boundary's accumulated transfers into the
	// receiving domain (scheduling receiver-side events as needed). Runs on
	// the coordinator goroutine between windows.
	FlushBoundary()
}

// TimedBoundary is a Boundary that can report where its pending transfers
// are headed and when the earliest lands. The barrier uses this to decide
// speculation commits: an in-flight transfer is an arrival source for its
// target domain. Boundaries that do not implement it force every open
// speculative span to roll back whenever they are dirty, so any producer
// feeding a speculation-capable simulation should implement it.
type TimedBoundary interface {
	Boundary
	// BoundaryTarget is the domain the pending transfers will flush into.
	BoundaryTarget() *Engine
	// EarliestPending is the delivery time of the earliest pending
	// transfer (Forever when none, though a dirty boundary has at least
	// one).
	EarliestPending() Time
}

// traceLine is one buffered trace emission awaiting the barrier merge.
type traceLine struct {
	at   Time
	comp string
	msg  string
}

// edge is one directed in-edge of the lookahead graph: transfers from
// domain `from` arrive after at least `lat`.
type edge struct {
	from int
	lat  Duration
}

// coord synchronizes a root (control) engine and its domains.
type coord struct {
	root    *Engine
	engines []*Engine // engines[0] == root
	shards  int       // requested parallel executors; <=1 means serial sweep

	// lookahead is the minimum cross-domain latency over every observation
	// (edges and legacy endpoint-less registrations): the nominal window
	// span and the serialized-window width.
	lookahead Duration
	// legacy is the minimum over endpoint-less ObserveLookahead calls; when
	// nonzero, an unattributed boundary with that latency may connect any
	// two domains, so it clamps every per-edge bound.
	legacy Duration
	// inEdges[i] lists domain i's in-edges, deduplicated by source with the
	// minimum latency; edgeIdx maps (from<<32|to) to the slice position.
	inEdges [][]edge
	edgeIdx map[int64]int
	edges   int

	sink    TraceFunc // installed trace sink (domain mode buffers + merges)
	running bool      // inside coord.run; Control() defers, Tracef buffers
	stopReq atomic.Bool

	// heads caches every domain's next live event time for the window being
	// planned — one contiguous scan instead of re-chasing queue pointers in
	// each of the per-window decision passes.
	heads []Time
	// minIdx / secondMin describe the heads just collected: the index of
	// the earliest head and the earliest head among the OTHER domains
	// (Forever when no other domain has events). When minIdx is the only
	// domain due in a window, it may safely run ahead toward secondMin.
	minIdx    int
	secondMin Time
	// eat holds each domain's per-window earliest-affect time: the
	// conservative bound below which no foreign event chain can land. src
	// and arr are relaxation scratch (per-domain source times and pending
	// boundary arrival times) for speculation resolution.
	eat []Time
	src []Time
	arr []Time

	// dirtyDoms lists domains that noted a dirty boundary this window, so
	// the barrier touches only producers with pending transfers instead of
	// sweeping every domain. Appended under dirtyMu from domain executors,
	// sorted (for deterministic flush order) and drained by the
	// coordinator.
	dirtyMu   sync.Mutex
	dirtyDoms []int
	// anyCtrl notes that some domain deferred control closures this window,
	// so the barrier can skip the promotion pass entirely on quiet windows.
	anyCtrl atomic.Bool

	// arrivalClasses allocates AtArrival ordering classes (sim.go): one per
	// cross-domain arrival source, in construction order.
	arrivalClasses uint32

	// parThreshold is the number of domains with due work below which a
	// window executes inline on the coordinator: dispatching to the worker
	// pool costs ~a microsecond of channel and barrier traffic, which only
	// pays for itself when several domains have events to fire.
	// sparseStreak counts consecutive inline windows; waking a cold pool is
	// charged against it, so alternating sparse/dense phases do not pay a
	// wakeup per window.
	parThreshold int
	sparseStreak int

	// Speculation (spec.go): specHorizon is the armed initial/maximum
	// run-ahead past the conservative bound; horizons holds each domain's
	// adaptive effective horizon (AIMD on observed commit/rollback outcomes,
	// see noteSpecOutcome), read by domain executors during a window and
	// written only by the coordinator at barriers. specSkip/specBackoff are
	// the rollback cooloff (see noteSpecOutcome): skip counts windows the
	// domain still sits out, decremented by its own executor at the moment a
	// span would otherwise open (each index is touched only by its owning
	// domain during a window and only by the coordinator at barriers, the
	// same discipline as horizons). specClip is the deadline clip for
	// spans; specSpanSeq issues globally unique span ids for the
	// first-touch journal dedupe (SpecTouch).
	specHorizon        Duration
	horizons           []Duration
	specSkip           []uint32
	specBackoff        []uint32
	specClip           Time
	anySpec            bool
	specScratch        []*Engine
	specSpanSeq        atomic.Uint64
	specCommits        uint64
	specRollbacks      uint64
	specCommitEvents   uint64
	specRollbackEvents uint64
	specDomCommits     []uint64
	specDomRollbacks   []uint64
}

// defaultParallelThreshold is the dispatch threshold when
// SetParallelThreshold was never called.
const defaultParallelThreshold = 3

func (e *Engine) ensureCoord() *coord {
	if e.co == nil {
		e.co = &coord{root: e, engines: []*Engine{e}, parThreshold: defaultParallelThreshold}
	} else if e.co.root != e {
		panic("sim: domain engines cannot own shards or domains")
	}
	return e.co
}

// NewDomain carves a new event domain out of the engine: an independent
// Engine with its own queue, clock, sequence counter and a deterministically
// forked RNG. The receiver becomes (or already is) the control domain; the
// returned engine should be handed to exactly the components that make up
// the domain (a node and its NIC, or one switch). Must be called before the
// first Run.
func (e *Engine) NewDomain(name string) *Engine {
	c := e.ensureCoord()
	if c.running {
		panic("sim: NewDomain during run")
	}
	d := &Engine{
		now:    e.now,
		rng:    e.rng.Fork(),
		co:     c,
		domIdx: len(c.engines),
		dname:  name,
	}
	c.engines = append(c.engines, d)
	return d
}

// SetShards sets how many OS threads execute concurrent windows: n parallel
// executors (the coordinator plus n-1 pooled workers). SetShards(1) runs
// every window on the coordinator alone — today's exact serial path — and is
// the default. The schedule, results and traces are bit-for-bit identical
// for every n >= 1; only wall-clock time changes.
func (e *Engine) SetShards(n int) {
	c := e.ensureCoord()
	if c.running {
		panic("sim: SetShards during run")
	}
	if n < 1 {
		n = 1
	}
	c.shards = n
}

// Shards reports the configured executor count (1 when unset or legacy).
func (e *Engine) Shards() int {
	if e.co == nil || e.co.shards < 1 {
		return 1
	}
	return e.co.shards
}

// SetParallelThreshold sets how many domains must have due work in a window
// before it is dispatched to the worker pool rather than swept inline on
// the coordinator. Purely a performance knob — the schedule is identical
// for every value. The default is 3.
func (e *Engine) SetParallelThreshold(n int) {
	c := e.ensureCoord()
	if c.running {
		panic("sim: SetParallelThreshold during run")
	}
	if n < 1 {
		n = 1
	}
	c.parThreshold = n
}

// ParallelThreshold reports the configured dispatch threshold.
func (e *Engine) ParallelThreshold() int {
	if e.co == nil || e.co.parThreshold < 1 {
		return defaultParallelThreshold
	}
	return e.co.parThreshold
}

// Domains reports how many domains exist including the control domain
// (1 for a legacy undomained engine).
func (e *Engine) Domains() int {
	if e.co == nil {
		return 1
	}
	return len(e.co.engines)
}

// DomainIndex reports this engine's domain number (0 = control domain; also
// 0 for a legacy undomained engine).
func (e *Engine) DomainIndex() int { return e.domIdx }

// DomainName reports the name given at NewDomain ("" for the control
// domain and legacy engines).
func (e *Engine) DomainName() string { return e.dname }

// domLabel names the engine's domain for diagnostics: the NewDomain name
// with the index appended, or "control" / "legacy" for unnamed roots.
func (e *Engine) domLabel() string {
	if e.dname != "" {
		return fmt.Sprintf("%q (domain %d)", e.dname, e.domIdx)
	}
	if e.co != nil && e.domIdx == 0 {
		return "control (domain 0)"
	}
	if e.co == nil {
		return "legacy engine"
	}
	return fmt.Sprintf("domain %d", e.domIdx)
}

// ObserveLookahead tells the coordinator a cross-domain boundary exists with
// the given minimum latency, without saying which domains it connects. The
// unattributed latency clamps every domain's window bound; boundaries that
// know their endpoints should call ObserveEdgeLookahead instead so only the
// actual neighbors are bounded. No-op on a legacy engine or with d <= 0.
func (e *Engine) ObserveLookahead(d Duration) {
	if e.co == nil || d <= 0 {
		return
	}
	c := e.co
	if c.legacy == 0 || d < c.legacy {
		c.legacy = d
	}
	if c.lookahead == 0 || d < c.lookahead {
		c.lookahead = d
	}
}

// ObserveEdgeLookahead registers a directed edge of the lookahead graph:
// transfers produced by this engine's domain arrive in dst's domain no
// earlier than d after the producing event. Parallel registrations for the
// same ordered pair keep the minimum. Both engines must belong to the same
// coordinator; must be called before the first Run (boundaries are built at
// topology-construction time).
func (e *Engine) ObserveEdgeLookahead(dst *Engine, d Duration) {
	if d <= 0 {
		src, tgt := e.domLabel(), "?"
		if dst != nil {
			tgt = dst.domLabel()
		}
		panic(fmt.Sprintf("sim: ObserveEdgeLookahead(%s -> %s) registered latency %v; "+
			"a directed edge's latency bounds the synchronization window and must be positive "+
			"(check the boundary built between these two domains)", src, tgt, d))
	}
	c := e.co
	if c == nil || dst == nil || dst.co != c {
		panic("sim: ObserveEdgeLookahead across unrelated engines")
	}
	if c.running {
		panic("sim: ObserveEdgeLookahead during run")
	}
	from, to := e.domIdx, dst.domIdx
	if from == to {
		return // intra-domain: not a boundary
	}
	if c.lookahead == 0 || d < c.lookahead {
		c.lookahead = d
	}
	for len(c.inEdges) < len(c.engines) {
		c.inEdges = append(c.inEdges, nil)
	}
	if c.edgeIdx == nil {
		c.edgeIdx = make(map[int64]int)
	}
	key := int64(from)<<32 | int64(to)
	if i, ok := c.edgeIdx[key]; ok {
		if d < c.inEdges[to][i].lat {
			c.inEdges[to][i].lat = d
		}
		return
	}
	c.edgeIdx[key] = len(c.inEdges[to])
	c.inEdges[to] = append(c.inEdges[to], edge{from: from, lat: d})
	c.edges++
}

// NoteBoundary marks a boundary dirty: it accumulated at least one transfer
// during the current window and must be flushed at the barrier. The producer
// must call this from its own domain and should dedupe per window (the
// boundary is flushed once per note).
func (e *Engine) NoteBoundary(b Boundary) {
	e.dirty = append(e.dirty, b)
	if e.co == nil {
		return
	}
	if !e.dirtyNoted {
		e.dirtyNoted = true
		c := e.co
		c.dirtyMu.Lock()
		c.dirtyDoms = append(c.dirtyDoms, e.domIdx)
		c.dirtyMu.Unlock()
	}
}

// Control hands fn to the control domain. Called during a concurrent window
// from a domain event (e.g. a NIC firing a host-level fault callback that
// must inspect cluster-wide state), fn is deferred to the control domain at
// the next window barrier — where it runs serialized and may touch any
// domain. Outside a run, or already on the control domain, fn runs inline.
// Deferral order is deterministic: domain-index order, FIFO within a domain.
func (e *Engine) Control(fn func()) {
	if e.co == nil || !e.co.running || e.domIdx == 0 {
		fn()
		return
	}
	e.ctrlq = append(e.ctrlq, fn)
	e.co.anyCtrl.Store(true)
}

// runWindow fires the engine's events with timestamps strictly below end.
// The clock is left at the last executed event (not advanced to end): only
// event execution moves a domain clock, exactly as in the serial engine.
func (e *Engine) runWindow(end Time) {
	for {
		e.discardCanceledRoot()
		if len(e.queue) == 0 || e.queue[0].when >= end {
			return
		}
		ev := e.heapPop()
		e.now = ev.when
		e.executed++
		ev.fn()
		e.recycle(ev)
	}
}

// runDomainWindow is one domain's share of a concurrent window: the
// conservative portion up to end, then — if the simulation is armed and the
// domain registered state hooks — a speculative span up to the horizon.
func (e *Engine) runDomainWindow(end Time) {
	e.runWindow(end)
	c := e.co
	if c.specHorizon <= 0 || !e.specCapable {
		return
	}
	limit := end + c.horizons[e.domIdx]
	if limit < end || limit > c.specClip { // overflow or deadline clip
		limit = c.specClip
	}
	if limit > end {
		e.speculate(limit)
	}
}

// ensureHorizons sizes the per-domain adaptive-horizon state, seeding new
// domains at the armed maximum (SetSpeculation's value). Existing entries
// keep their adapted value across Run calls, so a long campaign's controller
// state survives RunUntil stepping.
func (c *coord) ensureHorizons() {
	if c.specHorizon <= 0 {
		return
	}
	for len(c.horizons) < len(c.engines) {
		c.horizons = append(c.horizons, c.specHorizon)
	}
	for len(c.specSkip) < len(c.engines) {
		c.specSkip = append(c.specSkip, 0)
		c.specBackoff = append(c.specBackoff, 0)
	}
	for len(c.specDomCommits) < len(c.engines) {
		c.specDomCommits = append(c.specDomCommits, 0)
		c.specDomRollbacks = append(c.specDomRollbacks, 0)
	}
}

// noteSpecOutcome adapts domain i's speculation horizon from a span
// outcome: additive increase on commit (an eighth of the maximum per
// committed span, capped at the maximum), multiplicative decrease on
// rollback (halved, floored at a sixteenth of the maximum) — AIMD, so a
// domain sitting in a rollback storm throttles toward a narrow probe span
// within a handful of barriers while occasional rollbacks barely dent a
// wide horizon.
//
// Horizon adaptation alone bounds how FAR a losing domain runs ahead, not
// how OFTEN: on a saturated fabric even a floor-width span loses most of
// the time, and each one still pays the open/resolve cost plus the
// conservative re-execution of everything it journaled. So a rollback also
// charges an exponential cooloff — the domain sits out specBackoff windows
// (doubling per rollback, capped at specSkipMax) before its next probe
// span, while a commit pays the backoff down by one: a chronic loser's
// occasional lucky commit barely re-arms it, but a domain whose spans keep
// committing holds backoff at zero and speculates every window. Outcomes
// are schedule-deterministic, so the adapted horizons and cooloffs — and
// every window bound derived from them — stay executor-count invariant.
func (c *coord) noteSpecOutcome(i int, committed bool) {
	max := c.specHorizon
	h := c.horizons[i]
	if committed {
		c.specDomCommits[i]++
		h += max/8 + 1
		if h > max {
			h = max
		}
		if c.specBackoff[i] > 0 {
			c.specBackoff[i]--
		}
	} else {
		c.specDomRollbacks[i]++
		h /= 2
		floor := max / 16
		if floor < 1 {
			floor = 1
		}
		if h < floor {
			h = floor
		}
		bo := c.specBackoff[i]*2 + 1
		if bo > specSkipMax {
			bo = specSkipMax
		}
		c.specBackoff[i] = bo
		c.specSkip[i] = bo
	}
	c.horizons[i] = h
}

// specSkipMax caps the rollback cooloff: a domain in a permanent rollback
// storm still probes every ~64 windows, so it rediscovers a quiet phase
// within a bounded number of barriers rather than never.
const specSkipMax = 63

// SpecHorizonStats reports the adaptive controller's current per-domain
// horizons across speculation-capable domains: the minimum, maximum and mean
// effective horizon. All zeros when speculation is unarmed or no domain
// registered hooks.
func (e *Engine) SpecHorizonStats() (lo, hi, mean Duration) {
	if e.co == nil || e.co.specHorizon <= 0 {
		return 0, 0, 0
	}
	c := e.co
	var sum Duration
	n := 0
	for i, d := range c.engines {
		if !d.specCapable || i >= len(c.horizons) {
			continue
		}
		h := c.horizons[i]
		if n == 0 || h < lo {
			lo = h
		}
		if h > hi {
			hi = h
		}
		sum += h
		n++
	}
	if n > 0 {
		mean = sum / Duration(n)
	}
	return lo, hi, mean
}

// run is the domain-mode main loop: per-domain windows bounded by the edge
// lookahead graph, serialized when control events are due, with
// boundary/control/trace flushes and speculation resolution at each
// barrier. deadline == Forever runs until every queue drains (or Stop).
func (c *coord) run(deadline Time) Time {
	if len(c.engines) > 1 && c.lookahead <= 0 {
		panic(fmt.Sprintf("sim: %d event domains but no boundary registered a lookahead; "+
			"windows would degenerate to 1 ns and the run would crawl — register the minimum "+
			"cross-domain latency with ObserveEdgeLookahead (or ObserveLookahead) when the "+
			"boundary is built", len(c.engines)))
	}
	c.running = true
	c.stopReq.Store(false)
	c.specClip = Forever
	if deadline != Forever {
		c.specClip = deadline + 1
	}
	c.ensureHorizons()
	rw := c.startWorkers()
	defer func() {
		c.running = false
		if rw != nil {
			rw.stop()
		}
	}()
	for !c.stopReq.Load() {
		// One pass over the domains plans the whole window: every head
		// timestamp lands in the contiguous heads cache, from which the
		// window start, the serial/concurrent decision and the dispatch
		// threshold all follow without touching the queues again.
		t := c.collectHeads()
		if c.sink != nil {
			// Everything before the global clock floor is final: no domain
			// can ever execute an event before the earliest head.
			c.mergeTraces(t)
		}
		if t == Forever || t > deadline {
			break
		}
		end := t + c.windowSpan()
		if end <= t { // Time overflow guard; never hit with sane clocks.
			end = t + 1
		}
		if deadline != Forever && end > deadline+1 {
			// RunUntil semantics are inclusive of the deadline: clip the
			// final window to execute events with when <= deadline.
			end = deadline + 1
		}
		if c.heads[0] < end {
			c.runSerialWindow(end)
		} else if limit := c.runAheadLimit(end, deadline); limit > end {
			// Exactly one domain is due this window: it may run ahead of
			// the nominal span. Nothing can arrive before the earliest
			// foreign head plus one span, and pending control events (the
			// root head bounds secondMin) stay in its future.
			c.engines[c.minIdx].runAhead(end, limit)
		} else {
			c.computeEAT(t, end, deadline)
			c.runParallelWindow(rw)
		}
		c.flushWindow(end)
	}
	if c.sink != nil {
		c.mergeTraces(Forever)
	}
	if deadline != Forever {
		for _, d := range c.engines {
			if d.now < deadline {
				d.now = deadline
			}
		}
	}
	return c.root.now
}

// windowSpan is the nominal window length: the minimum latency over every
// registered boundary. No cross-domain transfer produced inside a window
// can demand execution before the producer's head plus this span.
func (c *coord) windowSpan() Duration {
	if c.lookahead > 0 {
		return c.lookahead
	}
	return 1
}

// collectHeads refreshes the heads cache with every domain's next live
// event timestamp (Forever when drained) and returns the minimum, also
// recording which domain holds it and the runner-up time.
func (c *coord) collectHeads() Time {
	if cap(c.heads) < len(c.engines) {
		c.heads = make([]Time, len(c.engines))
	}
	c.heads = c.heads[:len(c.engines)]
	t, t2 := Forever, Forever
	c.minIdx = -1
	for i, d := range c.engines {
		d.discardCanceledRoot()
		if len(d.queue) == 0 {
			c.heads[i] = Forever
			continue
		}
		h := d.queue[0].when
		c.heads[i] = h
		if h < t {
			t, t2 = h, t
			c.minIdx = i
		} else if h < t2 {
			t2 = h
		}
	}
	c.secondMin = t2
	return t
}

// computeEAT fills c.eat with each domain's earliest-affect time for the
// window starting at t: the least fixpoint of
//
//	eat[i] = min over in-edges (j, L) of  min(head[j], eat[j]) + L
//
// capped by the control domain's readiness (control closures can touch any
// domain with zero latency), by any unattributed legacy lookahead, and by
// the RunUntil deadline. Every causal chain that could land in domain i
// starts at some queued event (a head) and accumulates at least one edge
// latency per hop, so executing events strictly below eat[i] is safe. The
// relaxation converges in at most diameter+1 passes (edge latencies are
// positive, so revisiting a domain never improves a chain).
func (c *coord) computeEAT(t, end, deadline Time) {
	n := len(c.engines)
	if cap(c.eat) < n {
		c.eat = make([]Time, n)
	}
	c.eat = c.eat[:n]
	if c.edges == 0 {
		// Pure legacy graph: every boundary is unattributed, the nominal
		// span is all we know.
		for i := range c.eat {
			c.eat[i] = end
		}
		return
	}
	legacyCap := Forever
	if c.legacy > 0 {
		legacyCap = t + c.legacy
	}
	dcap := Forever
	if deadline != Forever {
		dcap = deadline + 1
	}
	base := legacyCap
	if dcap < base {
		base = dcap
	}
	for i := range c.eat {
		c.eat[i] = Forever
	}
	for {
		ready0 := c.heads[0]
		if c.eat[0] < ready0 {
			ready0 = c.eat[0]
		}
		cap0 := base
		if ready0 < cap0 {
			cap0 = ready0
		}
		changed := false
		for i := 0; i < n; i++ {
			v := cap0
			if i == 0 {
				v = base // the control domain does not bound itself
			}
			if ie := c.inEdges; i < len(ie) {
				for _, ed := range ie[i] {
					r := c.heads[ed.from]
					if er := c.eat[ed.from]; er < r {
						r = er
					}
					if r >= Forever-ed.lat {
						continue
					}
					if a := r + ed.lat; a < v {
						v = a
					}
				}
			}
			if v < c.eat[i] {
				c.eat[i] = v
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Safety floor: every in-edge latency is >= the global minimum, so the
	// fixpoint can never undercut the nominal window — but a domain with no
	// in-edges at all converged to the caps, which is exactly right.
	for i := range c.eat {
		if c.eat[i] < end {
			c.eat[i] = end
		}
	}
}

// runAheadLimit reports how far the sole due domain may run ahead of the
// nominal window, or end when run-ahead does not apply (several domains due,
// the control domain is the one due, or nothing is gained). The limit is the
// second-earliest head: every foreign event — and so every transfer aimed
// back at the runner — lies at or beyond it, and a pending control event
// (part of that minimum) is never overtaken.
func (c *coord) runAheadLimit(end, deadline Time) Time {
	if c.minIdx <= 0 || c.secondMin < end {
		return end
	}
	limit := c.secondMin
	if deadline != Forever && limit > deadline+1 {
		limit = deadline + 1
	}
	return limit
}

// runAhead executes the always-safe nominal window [·, end), then keeps
// firing events up to limit as long as the domain stays self-contained: the
// first event that produces a cross-domain transfer or defers a control
// closure ends the window, since reactions to it can demand this domain's
// attention one lookahead span later. This collapses sparse phases — one
// domain grinding through timer wheels while the rest of the fabric idles —
// from one barrier per span into one barrier per interaction.
func (e *Engine) runAhead(end, limit Time) {
	e.runWindow(end)
	for !e.co.stopReq.Load() {
		if len(e.dirty) > 0 || len(e.ctrlq) > 0 {
			return
		}
		e.discardCanceledRoot()
		if len(e.queue) == 0 || e.queue[0].when >= limit {
			return
		}
		ev := e.heapPop()
		e.now = ev.when
		e.executed++
		ev.fn()
		e.recycle(ev)
	}
}

// runSerialWindow executes every due event across all domains in global
// (when, domain index, seq) order, advancing every domain clock in step so
// control events observe a coherent Now() everywhere and may schedule on any
// domain without tripping past-time checks. This is the canonical order the
// concurrent windows are provably equivalent to.
func (c *coord) runSerialWindow(end Time) {
	for !c.stopReq.Load() {
		var best *Engine
		for _, d := range c.engines {
			d.discardCanceledRoot()
			if len(d.queue) == 0 || d.queue[0].when >= end {
				continue
			}
			if best == nil || d.queue[0].when < best.queue[0].when {
				best = d
			}
		}
		if best == nil {
			return
		}
		ev := best.heapPop()
		for _, d := range c.engines {
			if d.now < ev.when {
				d.now = ev.when
			}
		}
		best.executed++
		ev.fn()
		best.recycle(ev)
	}
}

// domainDue reports whether domain i (>= 1) has anything to do this window:
// due events below its bound, or speculation eligibility.
func (c *coord) domainDue(i int) bool {
	if c.heads[i] < c.eat[i] {
		return true
	}
	return c.specHorizon > 0 && c.engines[i].specCapable
}

// runParallelWindow executes a window with no due control events: the
// domains are independent until the barrier, so they may run concurrently,
// each to its own earliest-affect bound. With one executor — or too little
// due work to pay for waking the pool — the sweep runs inline in
// domain-index order, the same order the merge semantics guarantee for any
// executor count. Consecutive inline windows raise the wakeup bar, so a
// sparse phase does not pay pool traffic on every window.
func (c *coord) runParallelWindow(rw *runWorkers) {
	if rw != nil {
		active := 0
		for i := 1; i < len(c.engines); i++ {
			if c.heads[i] < c.eat[i] {
				active++
			}
		}
		bar := c.parThreshold
		if c.sparseStreak > 0 {
			extra := c.sparseStreak
			if extra > c.parThreshold {
				extra = c.parThreshold
			}
			bar += extra
		}
		if active >= bar {
			c.sparseStreak = 0
			rw.dispatch()
			return
		}
		c.sparseStreak++
	}
	for i, d := range c.engines[1:] {
		if c.domainDue(i + 1) {
			d.runDomainWindow(c.eat[i+1])
		}
	}
}

// flushWindow is the barrier: resolve speculative spans, move boundary
// transfers into their receiving domains, and promote deferred control
// closures to control-domain events — all in deterministic domain-index
// order. Only domains that noted a dirty boundary are touched.
func (c *coord) flushWindow(end Time) {
	if c.anySpec && c.specHorizon > 0 {
		c.resolveSpeculation()
	}
	if len(c.dirtyDoms) > 0 {
		sort.Ints(c.dirtyDoms)
		for _, di := range c.dirtyDoms {
			d := c.engines[di]
			d.dirtyNoted = false
			for i, b := range d.dirty {
				b.FlushBoundary()
				d.dirty[i] = nil
			}
			d.dirty = d.dirty[:0]
		}
		c.dirtyDoms = c.dirtyDoms[:0]
	}
	if c.anyCtrl.Swap(false) {
		// A run-ahead domain's clock may sit past the nominal window end;
		// the control event must land at or after every domain clock so
		// control code never observes — or schedules into — a domain's past.
		at := end
		for _, d := range c.engines {
			if d.now > at {
				at = d.now
			}
		}
		for _, d := range c.engines {
			if len(d.ctrlq) == 0 {
				continue
			}
			for i, fn := range d.ctrlq {
				c.root.AtLabel(at, "ctrl", fn)
				d.ctrlq[i] = nil
			}
			d.ctrlq = d.ctrlq[:0]
		}
	}
}

// resolveSpeculation decides every open speculative span at the barrier. A
// span may commit only if no event chain — from any queued event, any
// in-flight boundary transfer, or any other span's potential rollback — can
// ever land inside it. That is the same earliest-affect fixpoint the
// windows use, evaluated on pessimistic sources: a speculating domain
// contributes its span-start clock (a lower bound on its behavior whether
// it commits or rolls back), and pending transfers contribute their
// delivery times to their target. Spans whose end exceeds the bound roll
// back and re-execute conservatively; the decision inputs are all
// schedule-deterministic, so the outcome is executor-count invariant.
func (c *coord) resolveSpeculation() {
	specs := c.specScratch[:0]
	for _, d := range c.engines {
		if d.spec != nil {
			specs = append(specs, d)
		}
	}
	c.specScratch = specs
	if len(specs) == 0 {
		return
	}
	n := len(c.engines)
	if cap(c.src) < n {
		c.src = make([]Time, n)
		c.arr = make([]Time, n)
	}
	c.src = c.src[:n]
	c.arr = c.arr[:n]
	for i, d := range c.engines {
		c.arr[i] = Forever
		if d.spec != nil {
			c.src[i] = d.spec.now
			continue
		}
		d.discardCanceledRoot()
		if len(d.queue) == 0 {
			c.src[i] = Forever
		} else {
			c.src[i] = d.queue[0].when
		}
	}
	untimed := false
	for _, di := range c.dirtyDoms {
		for _, b := range c.engines[di].dirty {
			tb, ok := b.(TimedBoundary)
			if !ok {
				untimed = true
				break
			}
			tgt := tb.BoundaryTarget().domIdx
			at := tb.EarliestPending()
			// The pending transfer lands in the target at `at` (capping the
			// target's own bound) and everything the target does in reaction
			// starts there (a source for domains downstream of the target).
			if at < c.arr[tgt] {
				c.arr[tgt] = at
			}
			if at < c.src[tgt] {
				c.src[tgt] = at
			}
		}
	}
	if untimed {
		// A dirty boundary we cannot attribute: assume the worst and
		// replay every span conservatively.
		for _, d := range specs {
			d.rollbackSpec()
			c.noteSpecOutcome(d.domIdx, false)
		}
		return
	}
	c.relaxEAT(c.src)
	for _, d := range specs {
		bound := c.eat[d.domIdx]
		if a := c.arr[d.domIdx]; a < bound {
			bound = a
		}
		if bound >= d.now {
			d.commitSpec()
			c.noteSpecOutcome(d.domIdx, true)
		} else {
			d.rollbackSpec()
			c.noteSpecOutcome(d.domIdx, false)
		}
	}
}

// relaxEAT runs the earliest-affect fixpoint over arbitrary per-domain
// source times (see computeEAT for the windowed variant), filling c.eat.
func (c *coord) relaxEAT(src []Time) {
	n := len(c.engines)
	if cap(c.eat) < n {
		c.eat = make([]Time, n)
	}
	c.eat = c.eat[:n]
	base := Forever
	if c.legacy > 0 {
		m := Forever
		for _, s := range src {
			if s < m {
				m = s
			}
		}
		if m < Forever-c.legacy {
			base = m + c.legacy
		}
	}
	for i := range c.eat {
		c.eat[i] = Forever
	}
	for {
		ready0 := src[0]
		if c.eat[0] < ready0 {
			ready0 = c.eat[0]
		}
		cap0 := base
		if ready0 < cap0 {
			cap0 = ready0
		}
		changed := false
		for i := 0; i < n; i++ {
			v := cap0
			if i == 0 {
				v = base
			}
			if ie := c.inEdges; i < len(ie) {
				for _, ed := range ie[i] {
					r := src[ed.from]
					if er := c.eat[ed.from]; er < r {
						r = er
					}
					if r >= Forever-ed.lat {
						continue
					}
					if a := r + ed.lat; a < v {
						v = a
					}
				}
			}
			if v < c.eat[i] {
				c.eat[i] = v
				changed = true
			}
		}
		if !changed {
			break
		}
	}
}

// mergeTraces drains buffered trace lines strictly below cutoff into the
// sink in (time, domain index, emission order) order — identical to the
// serialized execution order. Lines at or beyond the cutoff (the global
// clock floor) stay buffered: a domain that ran ahead of its peers must not
// emit before a slower peer's earlier line, and a speculative line must not
// reach the sink before its span resolves. Pass Forever for the final drain.
func (c *coord) mergeTraces(cutoff Time) {
	for {
		var best *Engine
		for _, d := range c.engines {
			if d.tracePos >= len(d.traceBuf) {
				continue
			}
			l := &d.traceBuf[d.tracePos]
			if l.at >= cutoff {
				continue // per-domain times are nondecreasing: all held
			}
			if best == nil || l.at < best.traceBuf[best.tracePos].at {
				best = d
			}
		}
		if best == nil {
			break
		}
		l := &best.traceBuf[best.tracePos]
		best.tracePos++
		c.sink(l.at, l.comp, "%s", l.msg)
	}
	for _, d := range c.engines {
		if d.tracePos == len(d.traceBuf) {
			for i := range d.traceBuf {
				d.traceBuf[i] = traceLine{}
			}
			d.traceBuf = d.traceBuf[:0]
			d.tracePos = 0
		} else if d.tracePos > 256 && d.tracePos*2 > len(d.traceBuf) {
			n := copy(d.traceBuf, d.traceBuf[d.tracePos:])
			for i := n; i < len(d.traceBuf); i++ {
				d.traceBuf[i] = traceLine{}
			}
			d.traceBuf = d.traceBuf[:n]
			d.tracePos = 0
		}
	}
}

// --- Worker pool ---

// runWorkers is the per-run executor pool: shards-1 goroutines plus the
// coordinator itself, each sweeping a static domain partition per window.
// Workers live for one Run call — parked on their job channel between
// windows, joined when the run ends — so idle engines hold no goroutines.
type runWorkers struct {
	c        *coord
	n        int             // executors, including the coordinator
	jobs     []chan struct{} // one per pooled worker
	wg       sync.WaitGroup
	lifetime sync.WaitGroup
	panicMu  sync.Mutex
	panicVal any
}

func (c *coord) startWorkers() *runWorkers {
	n := c.shards
	if max := len(c.engines) - 1; n > max {
		n = max
	}
	if n <= 1 {
		return nil
	}
	rw := &runWorkers{c: c, n: n, jobs: make([]chan struct{}, n-1)}
	for w := range rw.jobs {
		rw.jobs[w] = make(chan struct{}, 1)
		rw.lifetime.Add(1)
		go rw.workerLoop(w + 1)
	}
	return rw
}

func (rw *runWorkers) workerLoop(w int) {
	defer rw.lifetime.Done()
	for range rw.jobs[w-1] {
		rw.runPartition(w)
		rw.wg.Done()
	}
}

// runPartition sweeps the domains assigned to executor w (round-robin by
// domain index, a static assignment so a domain's queue is touched by
// exactly one goroutine per window), each to its own per-edge bound.
// Panics are captured and re-raised on the coordinator after the barrier,
// so a failing event cannot deadlock the pool.
func (rw *runWorkers) runPartition(w int) {
	defer func() {
		if r := recover(); r != nil {
			rw.panicMu.Lock()
			if rw.panicVal == nil {
				rw.panicVal = fmt.Sprintf("sim: domain event panic: %v", r)
			}
			rw.panicMu.Unlock()
		}
	}()
	c := rw.c
	doms := c.engines[1:]
	for i := w; i < len(doms); i += rw.n {
		if c.domainDue(i + 1) {
			doms[i].runDomainWindow(c.eat[i+1])
		}
	}
}

// dispatch fans one window out to the pool, participates as executor 0, and
// waits for every partition to finish before returning.
func (rw *runWorkers) dispatch() {
	rw.wg.Add(rw.n - 1)
	for _, ch := range rw.jobs {
		ch <- struct{}{}
	}
	rw.runPartition(0)
	rw.wg.Wait()
	if rw.panicVal != nil {
		v := rw.panicVal
		rw.panicVal = nil
		panic(v)
	}
}

func (rw *runWorkers) stop() {
	for _, ch := range rw.jobs {
		close(ch)
	}
	rw.lifetime.Wait()
}
