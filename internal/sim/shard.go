package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// This file implements within-trial parallelism: an Engine can be split into
// per-component *domains* — each with its own event queue, clock, sequence
// counter and RNG — synchronized conservatively with the fabric's link
// propagation delay as lookahead (Chandy–Misra–Bryant-style windowing,
// without null messages: every cross-domain channel in this model has a
// fixed, positive minimum latency, so a global window is always safe).
//
// The design keys on one observation: every component in this codebase takes
// its *Engine at construction and schedules exclusively through that pointer.
// A domain therefore IS an Engine — no goroutine-local state, no domain
// handles threaded through APIs. The root engine (domain 0) remains the
// control domain: experiment harnesses, chaos schedulers, the cluster's
// mapper/netwatch plumbing all schedule there, and any window in which a
// control event is due runs *serialized* in global (time, domain, seq) order,
// so control code may freely touch every domain. Windows with no due control
// event run the domains concurrently.
//
// Determinism contract (bit-for-bit, invariant in shard count):
//   - Within a domain, events fire in (when, seq) order — the same strict
//     total order the serial engine uses; seq is domain-local.
//   - Cross-domain transfers move only at window barriers, in domain-index
//     order, FIFO within each boundary; the receiver assigns its own local
//     seqs at that point. Transfer order is thus a pure function of the
//     window schedule, which depends only on queue contents — never on how
//     many OS threads executed a window.
//   - Trace lines are buffered per domain and merged at each barrier by
//     (time, domain index, emission order), which equals the serialized
//     execution order.
//
// SetShards(1) keeps the exact same windowed schedule but executes every
// window on the coordinator goroutine, domain by domain in index order —
// which is precisely what the concurrent execution is equivalent to.

// Boundary is a cross-domain edge (e.g. one direction of a fabric link) that
// accumulated transfers during a window. The coordinator flushes all dirty
// boundaries at each window barrier, in domain-index order of the producing
// engine, FIFO within the boundary.
type Boundary interface {
	// FlushBoundary moves the boundary's accumulated transfers into the
	// receiving domain (scheduling receiver-side events as needed). Runs on
	// the coordinator goroutine between windows.
	FlushBoundary()
}

// traceLine is one buffered trace emission awaiting the barrier merge.
type traceLine struct {
	at   Time
	comp string
	msg  string
}

// coord synchronizes a root (control) engine and its domains.
type coord struct {
	root    *Engine
	engines []*Engine // engines[0] == root
	shards  int       // requested parallel executors; <=1 means serial sweep

	// lookahead is the minimum cross-domain latency observed from boundary
	// registration; the conservative window span. Zero (no boundaries yet)
	// degenerates to 1 ns windows.
	lookahead Duration

	sink    TraceFunc // installed trace sink (domain mode buffers + merges)
	running bool      // inside coord.run; Control() defers, Tracef buffers
	stopReq atomic.Bool

	// heads caches every domain's next live event time for the window being
	// planned — one contiguous scan instead of re-chasing queue pointers in
	// each of the per-window decision passes.
	heads []Time
	// minIdx / secondMin describe the heads just collected: the index of
	// the earliest head and the earliest head among the OTHER domains
	// (Forever when no other domain has events). When minIdx is the only
	// domain due in a window, it may safely run ahead toward secondMin.
	minIdx    int
	secondMin Time
	// anyDirty / anyCtrl note that some domain accumulated boundary
	// transfers / control closures this window, so the barrier can skip the
	// corresponding all-domain pass entirely on quiet windows.
	anyDirty atomic.Bool
	anyCtrl  atomic.Bool
}

// minParallelActive is the number of domains with due work below which a
// window is executed inline on the coordinator: dispatching to the worker
// pool costs ~a microsecond of channel and barrier traffic, which only pays
// for itself when several domains have events to fire.
const minParallelActive = 3

func (e *Engine) ensureCoord() *coord {
	if e.co == nil {
		e.co = &coord{root: e, engines: []*Engine{e}}
	} else if e.co.root != e {
		panic("sim: domain engines cannot own shards or domains")
	}
	return e.co
}

// NewDomain carves a new event domain out of the engine: an independent
// Engine with its own queue, clock, sequence counter and a deterministically
// forked RNG. The receiver becomes (or already is) the control domain; the
// returned engine should be handed to exactly the components that make up
// the domain (a node and its NIC, or one switch). Must be called before the
// first Run.
func (e *Engine) NewDomain(name string) *Engine {
	c := e.ensureCoord()
	if c.running {
		panic("sim: NewDomain during run")
	}
	d := &Engine{
		now:    e.now,
		rng:    e.rng.Fork(),
		co:     c,
		domIdx: len(c.engines),
		dname:  name,
	}
	c.engines = append(c.engines, d)
	return d
}

// SetShards sets how many OS threads execute concurrent windows: n parallel
// executors (the coordinator plus n-1 pooled workers). SetShards(1) runs
// every window on the coordinator alone — today's exact serial path — and is
// the default. The schedule, results and traces are bit-for-bit identical
// for every n >= 1; only wall-clock time changes.
func (e *Engine) SetShards(n int) {
	c := e.ensureCoord()
	if c.running {
		panic("sim: SetShards during run")
	}
	if n < 1 {
		n = 1
	}
	c.shards = n
}

// Shards reports the configured executor count (1 when unset or legacy).
func (e *Engine) Shards() int {
	if e.co == nil || e.co.shards < 1 {
		return 1
	}
	return e.co.shards
}

// Domains reports how many domains exist including the control domain
// (1 for a legacy undomained engine).
func (e *Engine) Domains() int {
	if e.co == nil {
		return 1
	}
	return len(e.co.engines)
}

// DomainIndex reports this engine's domain number (0 = control domain; also
// 0 for a legacy undomained engine).
func (e *Engine) DomainIndex() int { return e.domIdx }

// DomainName reports the name given at NewDomain ("" for the control
// domain and legacy engines).
func (e *Engine) DomainName() string { return e.dname }

// ObserveLookahead tells the coordinator a cross-domain boundary exists with
// the given minimum latency; the conservative window span is the minimum
// over all observations. No-op on a legacy engine or with d <= 0.
func (e *Engine) ObserveLookahead(d Duration) {
	if e.co == nil || d <= 0 {
		return
	}
	c := e.co
	if c.lookahead == 0 || d < c.lookahead {
		c.lookahead = d
	}
}

// NoteBoundary marks a boundary dirty: it accumulated at least one transfer
// during the current window and must be flushed at the barrier. The producer
// must call this from its own domain and should dedupe per window (the
// boundary is flushed once per note).
func (e *Engine) NoteBoundary(b Boundary) {
	e.dirty = append(e.dirty, b)
	if e.co != nil {
		e.co.anyDirty.Store(true)
	}
}

// Control hands fn to the control domain. Called during a concurrent window
// from a domain event (e.g. a NIC firing a host-level fault callback that
// must inspect cluster-wide state), fn is deferred to the control domain at
// the next window barrier — where it runs serialized and may touch any
// domain. Outside a run, or already on the control domain, fn runs inline.
// Deferral order is deterministic: domain-index order, FIFO within a domain.
func (e *Engine) Control(fn func()) {
	if e.co == nil || !e.co.running || e.domIdx == 0 {
		fn()
		return
	}
	e.ctrlq = append(e.ctrlq, fn)
	e.co.anyCtrl.Store(true)
}

// runWindow fires the engine's events with timestamps strictly below end.
// The clock is left at the last executed event (not advanced to end): only
// event execution moves a domain clock, exactly as in the serial engine.
func (e *Engine) runWindow(end Time) {
	for {
		e.discardCanceledRoot()
		if len(e.queue) == 0 || e.queue[0].when >= end {
			return
		}
		ev := e.heapPop()
		e.now = ev.when
		e.executed++
		ev.fn()
		e.recycle(ev)
	}
}

// run is the domain-mode main loop: windows of span lookahead, serialized
// when control events are due, concurrent otherwise, with boundary/control/
// trace flushes at each barrier. deadline == Forever runs until every queue
// drains (or Stop).
func (c *coord) run(deadline Time) Time {
	c.running = true
	c.stopReq.Store(false)
	rw := c.startWorkers()
	defer func() {
		c.running = false
		if rw != nil {
			rw.stop()
		}
	}()
	for !c.stopReq.Load() {
		// One pass over the domains plans the whole window: every head
		// timestamp lands in the contiguous heads cache, from which the
		// window start, the serial/concurrent decision and the dispatch
		// threshold all follow without touching the queues again.
		t := c.collectHeads()
		if t == Forever || t > deadline {
			break
		}
		end := t + c.windowSpan()
		if end <= t { // Time overflow guard; never hit with sane clocks.
			end = t + 1
		}
		if deadline != Forever && end > deadline+1 {
			// RunUntil semantics are inclusive of the deadline: clip the
			// final window to execute events with when <= deadline.
			end = deadline + 1
		}
		if c.heads[0] < end {
			c.runSerialWindow(end)
		} else if limit := c.runAheadLimit(end, deadline); limit > end {
			// Exactly one domain is due this window: it may run ahead of
			// the nominal span. Nothing can arrive before the earliest
			// foreign head plus one span, and pending control events (the
			// root head bounds secondMin) stay in its future.
			c.engines[c.minIdx].runAhead(end, limit)
		} else {
			c.runParallelWindow(rw, end)
		}
		c.flushWindow(end)
	}
	if deadline != Forever {
		for _, d := range c.engines {
			if d.now < deadline {
				d.now = deadline
			}
		}
	}
	return c.root.now
}

// windowSpan is the conservative window length: no cross-domain transfer
// produced inside a window can demand execution before the window ends.
func (c *coord) windowSpan() Duration {
	if c.lookahead > 0 {
		return c.lookahead
	}
	return 1
}

// collectHeads refreshes the heads cache with every domain's next live
// event timestamp (Forever when drained) and returns the minimum, also
// recording which domain holds it and the runner-up time.
func (c *coord) collectHeads() Time {
	if cap(c.heads) < len(c.engines) {
		c.heads = make([]Time, len(c.engines))
	}
	c.heads = c.heads[:len(c.engines)]
	t, t2 := Forever, Forever
	c.minIdx = -1
	for i, d := range c.engines {
		d.discardCanceledRoot()
		if len(d.queue) == 0 {
			c.heads[i] = Forever
			continue
		}
		h := d.queue[0].when
		c.heads[i] = h
		if h < t {
			t, t2 = h, t
			c.minIdx = i
		} else if h < t2 {
			t2 = h
		}
	}
	c.secondMin = t2
	return t
}

// runAheadLimit reports how far the sole due domain may run ahead of the
// nominal window, or end when run-ahead does not apply (several domains due,
// the control domain is the one due, or nothing is gained). The limit is the
// second-earliest head: every foreign event — and so every transfer aimed
// back at the runner — lies at or beyond it, and a pending control event
// (part of that minimum) is never overtaken.
func (c *coord) runAheadLimit(end, deadline Time) Time {
	if c.minIdx <= 0 || c.secondMin < end {
		return end
	}
	limit := c.secondMin
	if deadline != Forever && limit > deadline+1 {
		limit = deadline + 1
	}
	return limit
}

// runAhead executes the always-safe nominal window [·, end), then keeps
// firing events up to limit as long as the domain stays self-contained: the
// first event that produces a cross-domain transfer or defers a control
// closure ends the window, since reactions to it can demand this domain's
// attention one lookahead span later. This collapses sparse phases — one
// domain grinding through timer wheels while the rest of the fabric idles —
// from one barrier per span into one barrier per interaction.
func (e *Engine) runAhead(end, limit Time) {
	e.runWindow(end)
	for !e.co.stopReq.Load() {
		if len(e.dirty) > 0 || len(e.ctrlq) > 0 {
			return
		}
		e.discardCanceledRoot()
		if len(e.queue) == 0 || e.queue[0].when >= limit {
			return
		}
		ev := e.heapPop()
		e.now = ev.when
		e.executed++
		ev.fn()
		e.recycle(ev)
	}
}

// runSerialWindow executes every due event across all domains in global
// (when, domain index, seq) order, advancing every domain clock in step so
// control events observe a coherent Now() everywhere and may schedule on any
// domain without tripping past-time checks. This is the canonical order the
// concurrent windows are provably equivalent to.
func (c *coord) runSerialWindow(end Time) {
	for !c.stopReq.Load() {
		var best *Engine
		for _, d := range c.engines {
			d.discardCanceledRoot()
			if len(d.queue) == 0 || d.queue[0].when >= end {
				continue
			}
			if best == nil || d.queue[0].when < best.queue[0].when {
				best = d
			}
		}
		if best == nil {
			return
		}
		ev := best.heapPop()
		for _, d := range c.engines {
			if d.now < ev.when {
				d.now = ev.when
			}
		}
		best.executed++
		ev.fn()
		best.recycle(ev)
	}
}

// runParallelWindow executes [start, end) with no due control events: the
// domains are independent until the barrier, so they may run concurrently.
// With one executor (or too little due work to pay for dispatch) the sweep
// runs inline in domain-index order — the same order the merge semantics
// guarantee for any executor count.
func (c *coord) runParallelWindow(rw *runWorkers, end Time) {
	if rw != nil {
		active := 0
		for _, h := range c.heads[1:] {
			if h < end {
				active++
			}
		}
		if active >= minParallelActive {
			rw.dispatch(end)
			return
		}
	}
	for i, d := range c.engines[1:] {
		if c.heads[i+1] < end {
			d.runWindow(end)
		}
	}
}

// flushWindow is the barrier: move boundary transfers into their receiving
// domains, promote deferred control closures to control-domain events, and
// merge the window's trace lines — all in deterministic domain-index order.
func (c *coord) flushWindow(end Time) {
	if c.anyDirty.Swap(false) {
		for _, d := range c.engines {
			if len(d.dirty) == 0 {
				continue
			}
			for i, b := range d.dirty {
				b.FlushBoundary()
				d.dirty[i] = nil
			}
			d.dirty = d.dirty[:0]
		}
	}
	if c.anyCtrl.Swap(false) {
		// A run-ahead domain's clock may sit past the nominal window end;
		// the control event must land at or after every domain clock so
		// control code never observes — or schedules into — a domain's past.
		at := end
		for _, d := range c.engines {
			if d.now > at {
				at = d.now
			}
		}
		for _, d := range c.engines {
			if len(d.ctrlq) == 0 {
				continue
			}
			for i, fn := range d.ctrlq {
				c.root.AtLabel(at, "ctrl", fn)
				d.ctrlq[i] = nil
			}
			d.ctrlq = d.ctrlq[:0]
		}
	}
	if c.sink != nil {
		c.mergeTraces()
	}
}

// mergeTraces drains every domain's buffered trace lines into the sink in
// (time, domain index, emission order) order — identical to the serialized
// execution order, so traces are byte-for-byte invariant in shard count.
func (c *coord) mergeTraces() {
	for {
		var best *Engine
		for _, d := range c.engines {
			if d.tracePos >= len(d.traceBuf) {
				continue
			}
			if best == nil || d.traceBuf[d.tracePos].at < best.traceBuf[best.tracePos].at {
				best = d
			}
		}
		if best == nil {
			break
		}
		l := &best.traceBuf[best.tracePos]
		best.tracePos++
		c.sink(l.at, l.comp, "%s", l.msg)
	}
	for _, d := range c.engines {
		for i := range d.traceBuf {
			d.traceBuf[i] = traceLine{}
		}
		d.traceBuf = d.traceBuf[:0]
		d.tracePos = 0
	}
}

// --- Worker pool ---

// runWorkers is the per-run executor pool: shards-1 goroutines plus the
// coordinator itself, each sweeping a static domain partition per window.
// Workers live for one Run call — parked on their job channel between
// windows, joined when the run ends — so idle engines hold no goroutines.
type runWorkers struct {
	c        *coord
	n        int         // executors, including the coordinator
	jobs     []chan Time // one per pooled worker
	wg       sync.WaitGroup
	lifetime sync.WaitGroup
	panicMu  sync.Mutex
	panicVal any
}

func (c *coord) startWorkers() *runWorkers {
	n := c.shards
	if max := len(c.engines) - 1; n > max {
		n = max
	}
	if n <= 1 {
		return nil
	}
	rw := &runWorkers{c: c, n: n, jobs: make([]chan Time, n-1)}
	for w := range rw.jobs {
		rw.jobs[w] = make(chan Time, 1)
		rw.lifetime.Add(1)
		go rw.workerLoop(w + 1)
	}
	return rw
}

func (rw *runWorkers) workerLoop(w int) {
	defer rw.lifetime.Done()
	for end := range rw.jobs[w-1] {
		rw.runPartition(w, end)
		rw.wg.Done()
	}
}

// runPartition sweeps the domains assigned to executor w (round-robin by
// domain index, a static assignment so a domain's queue is touched by
// exactly one goroutine per window). Panics are captured and re-raised on
// the coordinator after the barrier, so a failing event cannot deadlock the
// pool.
func (rw *runWorkers) runPartition(w int, end Time) {
	defer func() {
		if r := recover(); r != nil {
			rw.panicMu.Lock()
			if rw.panicVal == nil {
				rw.panicVal = fmt.Sprintf("sim: domain event panic: %v", r)
			}
			rw.panicMu.Unlock()
		}
	}()
	doms := rw.c.engines[1:]
	for i := w; i < len(doms); i += rw.n {
		doms[i].runWindow(end)
	}
}

// dispatch fans one window out to the pool, participates as executor 0, and
// waits for every partition to finish before returning.
func (rw *runWorkers) dispatch(end Time) {
	rw.wg.Add(rw.n - 1)
	for _, ch := range rw.jobs {
		ch <- end
	}
	rw.runPartition(0, end)
	rw.wg.Wait()
	if rw.panicVal != nil {
		v := rw.panicVal
		rw.panicVal = nil
		panic(v)
	}
}

func (rw *runWorkers) stop() {
	for _, ch := range rw.jobs {
		close(ch)
	}
	rw.lifetime.Wait()
}
