package sim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
)

// This file implements whole-simulation snapshot/resume. Event callbacks are
// Go closures and cannot be serialized, so a snapshot does not try to persist
// the heap's code pointers. Instead it records a *cursor with attestation*:
// the exact virtual time the simulation stopped at plus a cryptographic-free
// but collision-resistant-enough digest of every piece of engine state that
// the determinism contract says is a pure function of (configuration, seed,
// schedule) — per-domain clocks, sequence counters, executed counts, RNG
// states, and the full live event heap (timestamps, sequence numbers,
// labels). Resume takes a freshly constructed simulation built from the same
// configuration, replays it to the cursor time (bit-for-bit identical by the
// determinism contract, shard- and speculation-invariant by DESIGN.md §12/13)
// and then verifies the attestation field by field. Any divergence — a
// different seed, a drifted config, a code change that reordered events —
// fails loudly with ErrSnapshotMismatch instead of silently continuing a
// different simulation. See DESIGN.md §15.
//
// Snapshots are only meaningful at quiescence: between Run/RunUntil calls,
// when every window barrier has flushed (no pending boundary transfers, no
// deferred control closures, no open speculative span, no unmerged trace
// lines). Snapshot refuses with ErrNotQuiescent otherwise.

// Snapshot format errors. Decoding never panics on hostile input: a
// truncated, corrupt or foreign byte stream yields one of these.
var (
	// ErrNotQuiescent is returned by Snapshot when the simulation has
	// unresolved barrier state (mid-run, dirty boundaries, deferred control
	// closures, an open speculative span, or unmerged trace lines).
	ErrNotQuiescent = errors.New("sim: snapshot requires a quiescent simulation")
	// ErrSnapshotTruncated is returned when the stream ends mid-record.
	ErrSnapshotTruncated = errors.New("sim: snapshot truncated")
	// ErrSnapshotCorrupt is returned on a bad magic number or checksum.
	ErrSnapshotCorrupt = errors.New("sim: snapshot corrupt")
	// ErrSnapshotVersion is returned on an unknown format version.
	ErrSnapshotVersion = errors.New("sim: unsupported snapshot version")
	// ErrSnapshotMismatch is returned by Resume when the replayed simulation
	// does not attest to the snapshotted state — the configuration, seed or
	// code differs from the run that produced the snapshot.
	ErrSnapshotMismatch = errors.New("sim: resumed simulation diverges from snapshot")
)

// snapshotMagic identifies a sim snapshot stream ("GMSN").
const snapshotMagic uint32 = 0x474d534e

// snapshotVersion is the current format version. Bump on any layout change;
// Resume rejects versions it does not understand rather than guessing.
const snapshotVersion uint16 = 1

// domainCursor is one domain's attested state at the snapshot instant.
type domainCursor struct {
	name     string
	now      Time
	nextSeq  uint64
	executed uint64
	rngState uint64
	live     uint32 // live (non-canceled) queued events
	digest   uint64 // FNV-1a over the sorted live heap (when, seq, label)
}

// snapshotCursor is the decoded form of a snapshot stream.
type snapshotCursor struct {
	rootNow Time
	shards  int
	// Speculation outcome counters: part of the attestation because they are
	// schedule-deterministic (DESIGN.md §13) and cheap to carry.
	specCommits        uint64
	specRollbacks      uint64
	specCommitEvents   uint64
	specRollbackEvents uint64
	domains            []domainCursor
}

// heapDigest folds every live queued event into an order-independent-input,
// order-fixed-output digest: the live events are sorted by the queue's own
// strict total order (when, seq) and hashed FNV-1a style with their labels.
// Canceled-but-undiscarded events are excluded — whether a dead timer has
// been compacted yet is heap-administrivia, not simulation state.
func (e *Engine) heapDigest() (uint64, uint32) {
	type key struct {
		when Time
		seq  uint64
	}
	keys := make([]key, 0, len(e.queue))
	labels := make(map[key]string, len(e.queue))
	for _, ev := range e.queue {
		if ev.canceled {
			continue
		}
		k := key{ev.when, ev.seq}
		keys = append(keys, k)
		labels[k] = ev.label
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].when != keys[j].when {
			return keys[i].when < keys[j].when
		}
		return keys[i].seq < keys[j].seq
	})
	const (
		offset64 = 0xcbf29ce484222325
		prime64  = 0x100000001b3
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	var buf [8]byte
	mix64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		for _, b := range buf {
			mix(b)
		}
	}
	for _, k := range keys {
		mix64(uint64(k.when))
		mix64(k.seq)
		l := labels[k]
		mix64(uint64(len(l)))
		for i := 0; i < len(l); i++ {
			mix(l[i])
		}
	}
	return h, uint32(len(keys))
}

// quiescent reports whether the engine tree is at a barrier-clean stop, or
// the reason it is not.
func (e *Engine) quiescent() error {
	c := e.co
	if c == nil {
		// Legacy single engine: always between events when user code runs.
		return nil
	}
	if c.running {
		return fmt.Errorf("%w: inside a Run window", ErrNotQuiescent)
	}
	for _, d := range c.engines {
		if len(d.dirty) > 0 {
			return fmt.Errorf("%w: domain %d (%s) has unflushed boundary transfers", ErrNotQuiescent, d.domIdx, d.dname)
		}
		if len(d.ctrlq) > 0 {
			return fmt.Errorf("%w: domain %d (%s) has deferred control closures", ErrNotQuiescent, d.domIdx, d.dname)
		}
		if d.spec != nil {
			return fmt.Errorf("%w: domain %d (%s) has an open speculative span", ErrNotQuiescent, d.domIdx, d.dname)
		}
		if d.tracePos != len(d.traceBuf) {
			return fmt.Errorf("%w: domain %d (%s) has unmerged trace lines", ErrNotQuiescent, d.domIdx, d.dname)
		}
	}
	return nil
}

// cursor assembles the attested state of the whole engine tree.
func (e *Engine) cursor() snapshotCursor {
	cur := snapshotCursor{rootNow: e.now, shards: e.Shards()}
	engines := []*Engine{e}
	if e.co != nil {
		engines = e.co.engines
		cur.specCommits = e.co.specCommits
		cur.specRollbacks = e.co.specRollbacks
		cur.specCommitEvents = e.co.specCommitEvents
		cur.specRollbackEvents = e.co.specRollbackEvents
	}
	cur.domains = make([]domainCursor, len(engines))
	for i, d := range engines {
		digest, live := d.heapDigest()
		cur.domains[i] = domainCursor{
			name:     d.dname,
			now:      d.now,
			nextSeq:  d.nextSeq,
			executed: d.executed,
			rngState: d.rng.State(),
			live:     live,
			digest:   digest,
		}
	}
	return cur
}

// Snapshot writes a versioned, checksummed cursor of the simulation's state
// to w. It must be called on the control engine at quiescence — between
// Run/RunUntil calls, after every barrier has flushed — and returns
// ErrNotQuiescent otherwise. The snapshot is deterministic: two runs that
// reached the same virtual time with the same configuration produce
// byte-identical snapshots, for any shard count and with speculation enabled.
func (e *Engine) Snapshot(w io.Writer) error {
	if e.co != nil {
		e.checkControl()
	}
	if err := e.quiescent(); err != nil {
		return err
	}
	cur := e.cursor()
	buf := make([]byte, 0, 64+48*len(cur.domains))
	p := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }
	buf = binary.LittleEndian.AppendUint32(buf, snapshotMagic)
	buf = binary.LittleEndian.AppendUint16(buf, snapshotVersion)
	buf = binary.LittleEndian.AppendUint16(buf, 0) // reserved flags
	p(uint64(cur.rootNow))
	p(cur.specCommits)
	p(cur.specRollbacks)
	p(cur.specCommitEvents)
	p(cur.specRollbackEvents)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(cur.domains)))
	for _, d := range cur.domains {
		if len(d.name) > 0xffff {
			return fmt.Errorf("sim: domain name too long for snapshot: %d bytes", len(d.name))
		}
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(d.name)))
		buf = append(buf, d.name...)
		p(uint64(d.now))
		p(d.nextSeq)
		p(d.executed)
		p(d.rngState)
		buf = binary.LittleEndian.AppendUint32(buf, d.live)
		p(d.digest)
	}
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(buf))
	_, err := w.Write(buf)
	return err
}

// decodeSnapshot parses and validates a snapshot stream. It never panics on
// hostile input: every length is checked before use and the trailing CRC
// must match.
func decodeSnapshot(data []byte) (snapshotCursor, error) {
	var cur snapshotCursor
	// Fixed header through the domain count, plus the trailing CRC.
	const fixed = 4 + 2 + 2 + 8 + 4*8 + 4
	if len(data) < fixed+4 {
		return cur, ErrSnapshotTruncated
	}
	body, crcBytes := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(crcBytes) {
		return cur, fmt.Errorf("%w: checksum mismatch", ErrSnapshotCorrupt)
	}
	if binary.LittleEndian.Uint32(body[0:4]) != snapshotMagic {
		return cur, fmt.Errorf("%w: bad magic", ErrSnapshotCorrupt)
	}
	if v := binary.LittleEndian.Uint16(body[4:6]); v != snapshotVersion {
		return cur, fmt.Errorf("%w: version %d", ErrSnapshotVersion, v)
	}
	off := 8
	u64 := func() uint64 {
		v := binary.LittleEndian.Uint64(body[off:])
		off += 8
		return v
	}
	cur.rootNow = Time(u64())
	cur.specCommits = u64()
	cur.specRollbacks = u64()
	cur.specCommitEvents = u64()
	cur.specRollbackEvents = u64()
	nDomains := binary.LittleEndian.Uint32(body[off:])
	off += 4
	// Each domain record is at least 2 (name len) + 8*4 + 4 + 8 bytes.
	const minDomain = 2 + 8 + 8 + 8 + 8 + 4 + 8
	if uint64(nDomains) > uint64(len(body)-off)/minDomain {
		return cur, fmt.Errorf("%w: domain count %d exceeds stream", ErrSnapshotTruncated, nDomains)
	}
	cur.domains = make([]domainCursor, nDomains)
	for i := range cur.domains {
		if off+2 > len(body) {
			return cur, ErrSnapshotTruncated
		}
		nameLen := int(binary.LittleEndian.Uint16(body[off:]))
		off += 2
		if off+nameLen+minDomain-2 > len(body) {
			return cur, ErrSnapshotTruncated
		}
		cur.domains[i].name = string(body[off : off+nameLen])
		off += nameLen
		cur.domains[i].now = Time(u64())
		cur.domains[i].nextSeq = u64()
		cur.domains[i].executed = u64()
		cur.domains[i].rngState = u64()
		cur.domains[i].live = binary.LittleEndian.Uint32(body[off:])
		off += 4
		cur.domains[i].digest = u64()
	}
	if off != len(body) {
		return cur, fmt.Errorf("%w: %d trailing bytes", ErrSnapshotCorrupt, len(body)-off)
	}
	return cur, nil
}

// Resume restores the simulation to the state captured in a snapshot. The
// receiver must be a freshly constructed simulation built from the identical
// configuration and seed that produced the snapshot, with its clock at or
// before the snapshot time. Resume replays the simulation to the snapshot's
// virtual time — bit-for-bit identical by the engine's determinism contract,
// regardless of the shard count or speculation setting of either run — and
// then verifies every attested field (per-domain clocks, sequence counters,
// executed counts, RNG states, live event heaps). A mismatch means the
// configuration, seed or code differs from the snapshotting run and returns
// ErrSnapshotMismatch; the simulation must not be trusted to continue.
func (e *Engine) Resume(r io.Reader) error {
	data, err := io.ReadAll(r)
	if err != nil {
		return err
	}
	cur, err := decodeSnapshot(data)
	if err != nil {
		return err
	}
	if e.co != nil {
		e.checkControl()
	}
	if e.now > cur.rootNow {
		return fmt.Errorf("%w: engine already at %v, snapshot taken at %v", ErrSnapshotMismatch, e.now, cur.rootNow)
	}
	if got := e.Domains(); got != len(cur.domains) {
		return fmt.Errorf("%w: %d domains, snapshot has %d", ErrSnapshotMismatch, got, len(cur.domains))
	}
	e.RunUntil(cur.rootNow)
	if err := e.quiescent(); err != nil {
		return err
	}
	return e.attest(cur)
}

// attest compares the engine tree's current state against a decoded cursor,
// reporting the first divergent field.
func (e *Engine) attest(cur snapshotCursor) error {
	got := e.cursor()
	if got.rootNow != cur.rootNow {
		return fmt.Errorf("%w: clock %v vs snapshot %v", ErrSnapshotMismatch, got.rootNow, cur.rootNow)
	}
	for i := range cur.domains {
		g, w := got.domains[i], cur.domains[i]
		switch {
		case g.name != w.name:
			return fmt.Errorf("%w: domain %d name %q vs snapshot %q", ErrSnapshotMismatch, i, g.name, w.name)
		case g.now != w.now:
			return fmt.Errorf("%w: domain %d (%s) clock %v vs snapshot %v", ErrSnapshotMismatch, i, g.name, g.now, w.now)
		case g.nextSeq != w.nextSeq:
			return fmt.Errorf("%w: domain %d (%s) seq %d vs snapshot %d", ErrSnapshotMismatch, i, g.name, g.nextSeq, w.nextSeq)
		case g.executed != w.executed:
			return fmt.Errorf("%w: domain %d (%s) executed %d vs snapshot %d", ErrSnapshotMismatch, i, g.name, g.executed, w.executed)
		case g.rngState != w.rngState:
			return fmt.Errorf("%w: domain %d (%s) rng state diverges", ErrSnapshotMismatch, i, g.name)
		case g.live != w.live:
			return fmt.Errorf("%w: domain %d (%s) %d live events vs snapshot %d", ErrSnapshotMismatch, i, g.name, g.live, w.live)
		case g.digest != w.digest:
			return fmt.Errorf("%w: domain %d (%s) event heap diverges", ErrSnapshotMismatch, i, g.name)
		}
	}
	// The speculation counters are schedule-deterministic but NOT
	// shard-count-invariant in the trivial sense: a serial replay of a
	// speculative snapshot commits the same spans. They are part of the
	// attestation only when both runs speculated (horizon armed on both).
	if e.co != nil && e.co.specHorizon > 0 && (cur.specCommits|cur.specRollbacks) != 0 {
		if got.specCommits != cur.specCommits || got.specRollbacks != cur.specRollbacks ||
			got.specCommitEvents != cur.specCommitEvents || got.specRollbackEvents != cur.specRollbackEvents {
			return fmt.Errorf("%w: speculation counters diverge (commits %d/%d rollbacks %d/%d)",
				ErrSnapshotMismatch, got.specCommits, cur.specCommits, got.specRollbacks, cur.specRollbacks)
		}
	}
	return nil
}
