package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeUnits(t *testing.T) {
	if Second != 1000*Millisecond || Millisecond != 1000*Microsecond || Microsecond != 1000*Nanosecond {
		t.Fatal("unit ladder broken")
	}
	if got := (1500 * Nanosecond).Micros(); got != 1.5 {
		t.Errorf("Micros() = %v, want 1.5", got)
	}
	if got := (2500 * Microsecond).Millis(); got != 2.5 {
		t.Errorf("Millis() = %v, want 2.5", got)
	}
	if got := (3 * Second).Seconds(); got != 3.0 {
		t.Errorf("Seconds() = %v, want 3", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500 * Nanosecond, "500ns"},
		{12*Microsecond + 500*Nanosecond, "12.5us"},
		{765 * Millisecond, "765.0ms"},
		{2 * Second, "2000.0ms"},
		{30 * Second, "30.00s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", order)
	}
	if e.Now() != 30 {
		t.Errorf("Now() = %v, want 30", e.Now())
	}
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(100, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestEngineAfterAndNesting(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	e.After(5, func() {
		fired = append(fired, e.Now())
		e.After(7, func() { fired = append(fired, e.Now()) })
	})
	e.Run()
	if len(fired) != 2 || fired[0] != 5 || fired[1] != 12 {
		t.Fatalf("fired = %v, want [5 12]", fired)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine(1)
	fired := false
	ev := e.At(10, func() { fired = true })
	ev.Cancel()
	if !ev.Canceled() {
		t.Error("Canceled() = false after Cancel")
	}
	e.Run()
	if fired {
		t.Error("canceled event fired")
	}
	// Clock should not advance past the only (canceled) event's time in a
	// meaningful way; we only require that Run terminates.
	var nilEv *Event
	nilEv.Cancel() // must not panic
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %d events by t=25, want 2", len(fired))
	}
	if e.Now() != 25 {
		t.Errorf("Now() = %v, want 25", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("fired %d events total, want 4", len(fired))
	}
	if e.Now() != 100 {
		t.Errorf("Now() = %v, want 100", e.Now())
	}
}

func TestEngineRunFor(t *testing.T) {
	e := NewEngine(1)
	e.RunFor(50)
	if e.Now() != 50 {
		t.Errorf("Now() = %v, want 50", e.Now())
	}
	e.RunFor(25)
	if e.Now() != 75 {
		t.Errorf("Now() = %v, want 75", e.Now())
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(1)
	count := 0
	e.At(10, func() { count++; e.Stop() })
	e.At(20, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("count = %d after Stop, want 1", count)
	}
	e.Run() // resume
	if count != 2 {
		t.Fatalf("count = %d after resume, want 2", count)
	}
}

func TestEnginePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, func() {})
	})
	e.Run()
}

func TestEngineNegativeAfterClamped(t *testing.T) {
	e := NewEngine(1)
	e.At(10, func() {
		fired := false
		e.After(-5, func() { fired = true })
		_ = fired
	})
	e.Run() // must not panic
}

func TestEngineExecutedAndPending(t *testing.T) {
	e := NewEngine(1)
	e.At(1, func() {})
	e.At(2, func() {})
	if e.Pending() != 2 {
		t.Errorf("Pending() = %d, want 2", e.Pending())
	}
	e.Run()
	if e.Executed() != 2 {
		t.Errorf("Executed() = %d, want 2", e.Executed())
	}
	if e.Pending() != 0 {
		t.Errorf("Pending() = %d, want 0", e.Pending())
	}
}

func TestEngineTrace(t *testing.T) {
	e := NewEngine(1)
	var lines int
	e.SetTrace(func(at Time, component, format string, args ...any) { lines++ })
	e.Tracef("test", "hello %d", 1)
	e.SetTrace(nil)
	e.Tracef("test", "dropped")
	if lines != 1 {
		t.Errorf("trace lines = %d, want 1", lines)
	}
}

func TestCancelCompactsQueue(t *testing.T) {
	// Regression for the Cancel leak: canceled events used to stay queued
	// (and counted by Pending()) until their timestamp was reached, so
	// timer churn grew the heap unboundedly. Canceling must now shrink the
	// queue once dead events dominate.
	e := NewEngine(1)
	keep := e.At(1_000_000, func() {})
	var timers []*Event
	for i := 0; i < 10000; i++ {
		timers = append(timers, e.At(Time(10+i), func() {}))
	}
	for _, ev := range timers {
		ev.Cancel()
	}
	// Compaction stops below the compactMin threshold, so a few dead events
	// may linger — but nothing near the 10k that used to.
	if p := e.Pending(); p > 2*compactMin {
		t.Fatalf("Pending() = %d after canceling 10k timers, want < %d", p, 2*compactMin)
	}
	if keep.Canceled() {
		t.Fatal("live event marked canceled")
	}
	e.Run()
	if e.Executed() != 1 {
		t.Fatalf("Executed() = %d, want only the live event", e.Executed())
	}
	if e.Now() != 1_000_000 {
		t.Fatalf("Now() = %v, want 1000000", e.Now())
	}
}

func TestCompactionPreservesOrder(t *testing.T) {
	// Interleave live and canceled events so compaction rebuilds the heap
	// mid-stream, and check the firing order is untouched.
	e := NewEngine(1)
	var fired []Time
	var doomed []*Event
	for i := 0; i < 500; i++ {
		at := Time(1000 - i) // reverse order insertion
		e.At(at, func() { fired = append(fired, e.Now()) })
		doomed = append(doomed, e.At(at, func() { t.Error("canceled event fired") }))
	}
	for _, ev := range doomed {
		ev.Cancel()
	}
	e.Run()
	if len(fired) != 500 {
		t.Fatalf("fired %d live events, want 500", len(fired))
	}
	for i := 1; i < len(fired); i++ {
		if fired[i] < fired[i-1] {
			t.Fatalf("out of order after compaction: %v then %v", fired[i-1], fired[i])
		}
	}
}

func TestEventRecycling(t *testing.T) {
	// The free list must recycle fired events without leaking state into
	// later schedules.
	e := NewEngine(1)
	count := 0
	for i := 0; i < 1000; i++ {
		e.After(1, func() { count++ })
		if !e.Step() {
			t.Fatal("Step found no event")
		}
	}
	if count != 1000 {
		t.Fatalf("count = %d", count)
	}
	if len(e.free) == 0 {
		t.Fatal("free list empty after 1000 fired events")
	}
	if len(e.free) > maxFree {
		t.Fatalf("free list grew to %d, cap is %d", len(e.free), maxFree)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds coincided %d/100 times", same)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		if v := r.Intn(13); v < 0 || v >= 13 {
			t.Fatalf("Intn(13) = %d out of range", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / n; mean < 0.49 || mean > 0.51 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(9)
	p := r.Perm(50)
	seen := make(map[int]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation %v", p)
		}
		seen[v] = true
	}
}

func TestRNGFork(t *testing.T) {
	r := NewRNG(11)
	f := r.Fork()
	if f.Uint64() == r.Uint64() {
		t.Error("forked stream tracks parent")
	}
}

// Property: events always fire in non-decreasing time order regardless of
// insertion order.
func TestPropertyEventOrder(t *testing.T) {
	f := func(times []uint16) bool {
		e := NewEngine(1)
		for _, at := range times {
			at := Time(at)
			e.At(at, func() {
				if e.Now() != at {
					t.Errorf("fired at %v, scheduled %v", e.Now(), at)
				}
			})
		}
		last := Time(-1)
		for e.Step() {
			if e.Now() < last {
				return false
			}
			last = e.Now()
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: RunUntil never fires events past the deadline and always leaves
// the clock at exactly the deadline.
func TestPropertyRunUntilDeadline(t *testing.T) {
	f := func(times []uint16, deadline uint16) bool {
		e := NewEngine(1)
		ok := true
		for _, at := range times {
			at := Time(at)
			e.At(at, func() {
				if at > Time(deadline) {
					ok = false
				}
			})
		}
		e.RunUntil(Time(deadline))
		return ok && e.Now() == Time(deadline)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRunUntilCanceledRootNoOvershoot(t *testing.T) {
	// Regression: a canceled event at the heap root must not let RunUntil
	// execute a live event beyond the deadline (observed as virtual clocks
	// snapping to timer-re-arm boundaries).
	e := NewEngine(1)
	ev := e.At(10, func() {})
	ev.Cancel()
	fired := false
	e.At(100, func() { fired = true })
	e.RunUntil(50)
	if fired {
		t.Fatal("event beyond the deadline fired")
	}
	if e.Now() != 50 {
		t.Fatalf("Now() = %v, want 50", e.Now())
	}
	e.RunUntil(150)
	if !fired {
		t.Fatal("event not fired after its time")
	}
}
