//go:build !race

// Zero-allocation guard for the speculation machinery: a speculating
// steady state — spans opening, journaled components touching in
// (SpecTouch + SpecUndo), digests crossing a boundary forcing rollbacks,
// the AIMD horizon adapting — must allocate nothing per message once the
// pooled arenas, event free lists and queue capacities are warm. This is
// the engine-side half of the 0 allocs/msg contract; the packet-path half
// lives in internal/fabric and internal/mcp's zeroalloc guards. Excluded
// under the race detector, whose instrumentation allocates.

package sim

import "testing"

// zaDom is a journaled workload domain: a dense ticker folding a digest
// (SpecTouch'd cell) plus a raw-journaled counter word (SpecUndo), with a
// periodic transfer into the peer's inbox across a boundary. All closures
// are bound once at setup so the steady state schedules only pooled events.
type zaDom struct {
	eng  *Engine
	mark uint64

	counter uint64
	digest  uint64
	word    uint64 // mutated via SpecUndo, not the wholesale snapshot

	out    *zaBoundary
	tickFn func()
	shadow zaSnap
}

type zaSnap struct {
	counter uint64
	digest  uint64
}

func (d *zaDom) SpecSave()    { d.shadow = zaSnap{d.counter, d.digest} }
func (d *zaDom) SpecRestore() { d.counter, d.digest = d.shadow.counter, d.shadow.digest }

// undoWord is the package-level SpecUndo target (a closure here would
// allocate per record).
func undoWord(a, b any, v1, v2 uint64) { *(a.(*uint64)) = v1 }

func (d *zaDom) fold(v uint64) {
	h := d.digest ^ v
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	d.digest = h ^ (h >> 27)
}

func (d *zaDom) tick() {
	d.eng.SpecTouch(&d.mark, d)
	d.eng.SpecUndo(undoWord, &d.word, nil, d.word, 0)
	d.word += 3
	d.counter++
	d.fold(d.counter)
	d.fold(d.eng.RNG().Uint64())
	if d.counter%16 == 0 {
		d.out.send(d.digest, 2*Microsecond)
	}
	d.eng.After(100*Nanosecond, d.tickFn)
}

// zaBoundary delivers digests into the receiver's journaled inbox. The
// drain closure is bound once; each message costs one pooled arrival event
// plus an append into a warm slice.
type zaBoundary struct {
	src, dst *Engine
	tgt      *zaDom
	class    uint32
	q        []toyMsg
	noted    bool

	inbox   []uint64
	head    int
	mark    uint64
	shadow  zaBoxSnap
	drainFn func()
}

type zaBoxSnap struct {
	n    int
	head int
}

func (b *zaBoundary) SpecSave()    { b.shadow = zaBoxSnap{len(b.inbox), b.head} }
func (b *zaBoundary) SpecRestore() { b.inbox = b.inbox[:b.shadow.n]; b.head = b.shadow.head }

func (b *zaBoundary) BoundaryTarget() *Engine { return b.dst }

func (b *zaBoundary) EarliestPending() Time {
	min := Forever
	for _, m := range b.q {
		if m.at < min {
			min = m.at
		}
	}
	return min
}

func (b *zaBoundary) FlushBoundary() {
	b.noted = false
	for _, m := range b.q {
		b.dst.SpecTouch(&b.mark, b)
		b.inbox = append(b.inbox, m.v)
		b.dst.AtArrival(m.at, b.class, "xfer", b.drainFn)
	}
	b.q = b.q[:0]
}

func (b *zaBoundary) send(v uint64, lat Duration) {
	b.q = append(b.q, toyMsg{at: b.src.Now() + lat, v: v})
	if !b.noted {
		b.noted = true
		b.src.NoteBoundary(b)
	}
}

func (b *zaBoundary) drain() {
	b.dst.SpecTouch(&b.mark, b)
	if b.head < len(b.inbox) {
		b.tgt.eng.SpecTouch(&b.tgt.mark, b.tgt)
		b.tgt.fold(b.inbox[b.head] ^ 0xabcdef)
		b.head++
	}
	if b.head == len(b.inbox) {
		b.inbox = b.inbox[:0]
		b.head = 0
	}
}

// TestZeroAllocSpeculation pins the 0 allocs/msg contract with speculation
// armed: after a warmup that sizes every pool and arena, advancing the
// speculating pair through steady-state windows — including spans that
// roll back when a neighbor's transfer lands inside them — allocates
// nothing.
func TestZeroAllocSpeculation(t *testing.T) {
	root := NewEngine(2003)
	root.SetShards(1)
	// Keep every window on the calling goroutine: worker handoff is not
	// the machinery under test and its parking can allocate.
	root.SetParallelThreshold(1 << 20)
	root.SetSpeculation(4 * Microsecond)

	a := &zaDom{eng: root.NewDomain("a")}
	b := &zaDom{eng: root.NewDomain("b")}
	wire := func(src, dst *zaDom) {
		bd := &zaBoundary{src: src.eng, dst: dst.eng, tgt: dst, class: dst.eng.ArrivalClass()}
		bd.drainFn = bd.drain
		src.out = bd
		src.eng.ObserveEdgeLookahead(dst.eng, 2*Microsecond)
	}
	wire(a, b)
	wire(b, a)
	for _, d := range []*zaDom{a, b} {
		d := d
		d.tickFn = d.tick
		// Fully journaled domains: the wholesale hooks have nothing to copy.
		d.eng.EnableSpeculation(func() any { return nil }, func(any) {})
		d.eng.AtLabel(Time(100), "tick", d.tickFn)
	}

	// Warm every pool: event free lists, span arenas, inbox/queue caps.
	next := root.RunUntil(Time(2 * Millisecond))
	warmC, warmR, _, _ := root.SpecStats()
	if warmC == 0 || warmR == 0 {
		t.Fatalf("warmup never exercised both speculative outcomes: commits=%d rollbacks=%d", warmC, warmR)
	}

	const step = Time(20 * Microsecond)
	allocs := testing.AllocsPerRun(100, func() {
		next += step
		root.RunUntil(next)
	})
	if allocs != 0 {
		t.Fatalf("speculating steady state allocates %.2f/step, want 0", allocs)
	}
	c2, r2, _, _ := root.SpecStats()
	if c2 <= warmC || r2 <= warmR {
		t.Fatalf("measured window did not keep speculating: commits %d->%d rollbacks %d->%d", warmC, c2, warmR, r2)
	}
}
