// Package sim provides the deterministic discrete-event simulation core on
// which the Myrinet/GM model runs. All times are virtual: the engine keeps a
// virtual clock and a priority queue of scheduled events, and advances the
// clock from event to event. Given the same seed and the same schedule of
// calls, a simulation is bit-for-bit reproducible.
package sim

import (
	"errors"
	"fmt"
	"math"
)

// Time is a virtual timestamp in nanoseconds since the start of the
// simulation. Nanosecond granularity comfortably resolves the paper's
// microsecond-scale timing constants (the LANai interval timers tick every
// 500 ns).
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration = Time

// Common durations, mirroring the time package but in virtual units.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Forever is a time later than any event a simulation will schedule.
const Forever Time = math.MaxInt64

// Micros reports t as a floating-point number of microseconds, the unit the
// paper reports nearly all results in.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis reports t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit, e.g. "12.5us" or "1.2s".
func (t Time) String() string {
	switch {
	case t < 10*Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < 10*Millisecond:
		return fmt.Sprintf("%.1fus", t.Micros())
	case t < 10*Second:
		return fmt.Sprintf("%.1fms", t.Millis())
	default:
		return fmt.Sprintf("%.2fs", t.Seconds())
	}
}

// Event is a scheduled callback. The zero Event is invalid; events are
// created through Engine.At and Engine.After.
//
// Event objects are recycled through the engine's free list once they fire
// or are discarded after cancellation, so a handle is only valid until its
// callback runs. Callers that retain a handle must clear it inside the
// callback (every caller in this repo does); calling Cancel through a stale
// handle after the callback ran may cancel an unrelated, later event.
type Event struct {
	when Time
	// pri is the event's arrival class: 0 for locally scheduled events,
	// >0 for cross-domain arrivals (AtArrival). It sorts between when and
	// seq so that an arrival's position among same-instant events is a
	// stable property of its source, not of which window barrier happened
	// to flush it — the ingredient that makes results invariant under
	// window-schedule changes (shard count, speculation horizon, resume).
	pri      uint32
	seq      uint64 // FIFO tiebreak among events at the same (when, pri)
	index    int    // heap index, -1 when not queued
	canceled bool
	// specNew marks an event scheduled inside a speculative span (spec.go):
	// on rollback it is erased rather than restored, on commit the mark is
	// cleared.
	specNew bool
	fn      func()
	label   string
	eng     *Engine // owner, for cancellation bookkeeping
}

// When reports the virtual time the event is scheduled for.
func (e *Event) When() Time { return e.when }

// Cancel prevents a pending event from firing. Canceling an event that has
// already fired or been canceled is a no-op (but see the staleness caveat on
// Event: a retained handle must be cleared when its callback runs).
func (e *Event) Cancel() {
	if e == nil || e.canceled {
		return
	}
	e.canceled = true
	if e.eng != nil && e.index >= 0 {
		e.eng.noteCanceled(e)
	}
}

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e != nil && e.canceled }

// eventBefore is the queue's strict total order: by timestamp, then by
// arrival class (local events before cross-domain arrivals, arrivals by
// source class), then by scheduling sequence. A total order means any valid
// heap arrangement pops events in exactly one order, so compaction cannot
// perturb determinism. Ranking arrivals by class rather than raw sequence
// keeps same-instant ties independent of WHEN a barrier flushed the
// arrival: sequence numbers are assigned at flush time, which moves with
// the window schedule, while the class is fixed at construction.
func eventBefore(a, b *Event) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	if a.pri != b.pri {
		return a.pri < b.pri
	}
	return a.seq < b.seq
}

// TraceFunc receives a line of simulation trace output.
type TraceFunc func(t Time, component, format string, args ...any)

// ErrPastTime is returned when an event is scheduled before the current
// virtual time.
var ErrPastTime = errors.New("sim: event scheduled in the past")

// Engine is the discrete-event simulation engine. It is not safe for
// concurrent use: the entire simulation is single-threaded and deterministic.
// (Parallel experiments run one private Engine per worker.)
type Engine struct {
	now     Time
	queue   []*Event
	nextSeq uint64
	rng     *RNG
	trace   TraceFunc
	stopped bool
	// executed counts events that have fired, for diagnostics and runaway
	// detection in tests.
	executed uint64
	// canceled counts queued events whose Cancel has been called; when they
	// outnumber the live half of the queue, compact() sweeps them out so
	// timer churn cannot grow the heap unboundedly.
	canceled int
	// free recycles fired/discarded Event objects so scheduling on the hot
	// path does not allocate.
	free []*Event
	// arrivalClasses allocates AtArrival ordering classes for a legacy
	// (coordinator-less) engine; domained engines allocate from the coord.
	arrivalClasses uint32

	// Domain-mode plumbing (see shard.go). A legacy engine has co == nil and
	// none of these fields are touched.
	co         *coord
	domIdx     int
	dname      string
	dirty      []Boundary  // boundaries with transfers awaiting the barrier
	dirtyNoted bool        // this domain is already on the coordinator's dirty list
	ctrlq      []func()    // control closures awaiting the barrier
	traceBuf   []traceLine // trace lines awaiting the barrier merge
	tracePos   int

	// Speculation plumbing (see spec.go). specCapable domains may run past
	// their conservative bound into a journaled span that the barrier
	// commits or rolls back. specFree pools the one span journal an engine
	// ever needs (spans never nest), so reopening reuses its arenas.
	spec        *specState
	specFree    *specState
	specCapable bool
	specSave    func() any
	specRestore func(any)
}

// maxFree bounds the recycling pool; beyond this, fired events are left to
// the garbage collector.
const maxFree = 8192

// compactMin is the queue size below which canceled events are not worth
// sweeping eagerly — the normal discard-at-root path handles them.
const compactMin = 64

// NewEngine returns an engine with its clock at zero and a deterministic RNG
// seeded with seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRNG(seed)}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's deterministic random number generator.
func (e *Engine) RNG() *RNG { return e.rng }

// Executed reports how many events have fired so far on this engine (this
// domain only, in domain mode).
func (e *Engine) Executed() uint64 { return e.executed }

// ExecutedAll reports how many events have fired across every domain (the
// same as Executed on a legacy engine).
func (e *Engine) ExecutedAll() uint64 {
	if e.co == nil {
		return e.executed
	}
	var n uint64
	for _, d := range e.co.engines {
		n += d.executed
	}
	return n
}

// Pending reports how many events are queued on this engine (including
// canceled ones that have not yet been discarded).
func (e *Engine) Pending() int { return len(e.queue) }

// PendingAll reports queued events across every domain.
func (e *Engine) PendingAll() int {
	if e.co == nil {
		return len(e.queue)
	}
	n := 0
	for _, d := range e.co.engines {
		n += len(d.queue)
	}
	return n
}

// SetTrace installs fn as the trace sink; pass nil to disable tracing. In
// domain mode the sink is shared by every domain: lines emitted during a run
// are buffered per domain and merged deterministically at window barriers.
func (e *Engine) SetTrace(fn TraceFunc) {
	if e.co != nil {
		e.co.sink = fn
		return
	}
	e.trace = fn
}

// TraceEnabled reports whether a trace sink is installed. Hot paths guard
// Tracef calls with it: the variadic args are boxed at the call site even
// when tracing is off, and drop-path traces fire per packet.
func (e *Engine) TraceEnabled() bool {
	if e.co != nil {
		return e.co.sink != nil
	}
	return e.trace != nil
}

// Tracef emits a trace line attributed to component if tracing is enabled.
// During a domain-mode run the line is formatted immediately (arguments may
// be mutable simulation state) but buffered until the window barrier, where
// all domains' lines merge in deterministic order.
func (e *Engine) Tracef(component, format string, args ...any) {
	if e.co != nil {
		c := e.co
		if c.sink == nil {
			return
		}
		if c.running {
			e.traceBuf = append(e.traceBuf, traceLine{at: e.now, comp: component, msg: fmt.Sprintf(format, args...)})
			return
		}
		c.sink(e.now, component, format, args...)
		return
	}
	if e.trace != nil {
		e.trace(e.now, component, format, args...)
	}
}

// At schedules fn to run at virtual time t and returns a handle that can
// cancel it. Scheduling at the current time is allowed (the event runs after
// already-queued events at the same instant). Scheduling in the past panics:
// it is always a programming error in a discrete-event model.
func (e *Engine) At(t Time, fn func()) *Event {
	return e.AtLabel(t, "", fn)
}

// AtLabel is At with a label attached for diagnostics.
func (e *Engine) AtLabel(t Time, label string, fn func()) *Event {
	return e.schedule(t, label, 0, fn)
}

// ArrivalClass allocates a stable ordering class for one cross-domain
// arrival source (one direction of a boundary). Classes are handed out in
// construction order — which the determinism contract already requires to
// be fixed — so they are identical across shard counts, speculation
// horizons and resumed runs. Class 0 is reserved for local events.
func (e *Engine) ArrivalClass() uint32 {
	if e.co != nil {
		e.co.arrivalClasses++
		return e.co.arrivalClasses
	}
	e.arrivalClasses++
	return e.arrivalClasses
}

// AtArrival schedules a cross-domain arrival: an event injected into this
// engine by a boundary flush (or a wake derived from one). Same-instant
// ordering is local events first, then arrivals by class — a pure function
// of (time, source, sender FIFO order), never of which barrier performed
// the flush. Every TimedBoundary implementation must schedule its
// receiver-side events (including deferred-wake re-arms) through the class
// it allocated at construction, or same-instant ties would make results
// depend on the window schedule.
func (e *Engine) AtArrival(t Time, class uint32, label string, fn func()) *Event {
	return e.schedule(t, label, class, fn)
}

func (e *Engine) schedule(t Time, label string, pri uint32, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("%v: at %v, now %v", ErrPastTime, t, e.now))
	}
	var ev *Event
	if n := len(e.free); n > 0 {
		ev = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
	} else {
		ev = new(Event)
	}
	*ev = Event{when: t, pri: pri, seq: e.nextSeq, fn: fn, label: label, eng: e}
	e.nextSeq++
	if e.spec != nil {
		ev.specNew = true
		e.spec.pushed = append(e.spec.pushed, ev)
	}
	e.heapPush(ev)
	return ev
}

// --- Queue internals: a concrete 4-ary heap on []*Event. The previous
// container/heap implementation boxed every push/pop through interfaces;
// scheduling is the simulator's hottest path, so the sift loops are inlined
// on the concrete type. A branching factor of four halves the tree depth,
// which pays on the push-heavy schedule/cancel churn the MCP timers
// generate; the extra sibling comparisons on pop stay in one cache line of
// the slice. The comparison is a strict total order, so pop order — and
// therefore every simulation result — is identical to the binary heap's. ---

// heapArity is the branching factor of the event queue.
const heapArity = 4

func (e *Engine) heapPush(ev *Event) {
	e.queue = append(e.queue, ev)
	e.siftUp(len(e.queue) - 1)
}

// heapPop removes and returns the earliest event. The caller owns the
// returned event; its index is -1.
func (e *Engine) heapPop() *Event {
	q := e.queue
	root := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	e.queue = q[:n]
	root.index = -1
	if n > 0 {
		e.queue[0] = last
		e.siftDown(0)
	}
	return root
}

func (e *Engine) siftUp(i int) {
	q := e.queue
	ev := q[i]
	for i > 0 {
		parent := (i - 1) / heapArity
		if !eventBefore(ev, q[parent]) {
			break
		}
		q[i] = q[parent]
		q[i].index = i
		i = parent
	}
	q[i] = ev
	ev.index = i
}

func (e *Engine) siftDown(i int) {
	q := e.queue
	n := len(q)
	ev := q[i]
	for {
		child := heapArity*i + 1
		if child >= n {
			break
		}
		end := child + heapArity
		if end > n {
			end = n
		}
		for c := child + 1; c < end; c++ {
			if eventBefore(q[c], q[child]) {
				child = c
			}
		}
		if !eventBefore(q[child], ev) {
			break
		}
		q[i] = q[child]
		q[i].index = i
		i = child
	}
	q[i] = ev
	ev.index = i
}

// heapRemove unlinks a still-queued event from an arbitrary heap position
// (rollback erases speculatively scheduled events this way). The caller owns
// the returned slot; the event's index is -1.
func (e *Engine) heapRemove(ev *Event) {
	i := ev.index
	if i < 0 {
		return
	}
	q := e.queue
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	e.queue = q[:n]
	ev.index = -1
	if i < n {
		e.queue[i] = last
		last.index = i
		e.siftDown(i)
		e.siftUp(i)
	}
}

// recycle returns a no-longer-queued event to the allocation pool, dropping
// its callback reference so captured state can be collected.
func (e *Engine) recycle(ev *Event) {
	if len(e.free) >= maxFree {
		return
	}
	*ev = Event{index: -1}
	e.free = append(e.free, ev)
}

// discardCanceledRoot drops canceled events off the front of the queue so
// that the root, if any, is live. This is the single home of the discard
// logic Step and RunUntil share: a canceled timer with an early timestamp
// must neither fire nor mask the deadline check on the first live event.
// During a speculative span the discarded events are retained on the undo
// log instead of recycled, so a rollback can restore them.
func (e *Engine) discardCanceledRoot() {
	for len(e.queue) > 0 && e.queue[0].canceled {
		e.canceled--
		if e.spec != nil {
			e.spec.popped = append(e.spec.popped, e.heapPop())
			continue
		}
		e.recycle(e.heapPop())
	}
}

// noteCanceled records a cancellation of a queued event and triggers a
// compaction sweep once canceled events exceed half of Pending(). The
// watchdog re-arms a timer every L_timer interval; without this, each re-arm
// would leave a dead event queued until its (possibly far-future) timestamp.
// During speculation compaction is deferred (rollback must be able to find
// every pre-span event) and cancellations of pre-span events are journaled.
func (e *Engine) noteCanceled(ev *Event) {
	e.canceled++
	if e.spec != nil {
		if !ev.specNew {
			e.spec.canceledEvs = append(e.spec.canceledEvs, ev)
		}
		return
	}
	if n := len(e.queue); n >= compactMin && e.canceled*2 > n {
		e.compact()
	}
}

// compact removes every canceled event from the queue and re-establishes the
// heap invariant. The comparison is a strict total order, so the surviving
// events still fire in exactly the same sequence.
func (e *Engine) compact() {
	live := e.queue[:0]
	for _, ev := range e.queue {
		if ev.canceled {
			ev.index = -1
			e.recycle(ev)
		} else {
			live = append(live, ev)
		}
	}
	for i := len(live); i < len(e.queue); i++ {
		e.queue[i] = nil
	}
	e.queue = live
	for i, ev := range live {
		ev.index = i
	}
	if n := len(live); n > 1 {
		for i := (n - 2) / heapArity; i >= 0; i-- {
			e.siftDown(i)
		}
	}
	e.canceled = 0
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// AfterLabel is After with a label attached for diagnostics.
func (e *Engine) AfterLabel(d Duration, label string, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.AtLabel(e.now+d, label, fn)
}

// Stop makes the current Run/RunUntil call return after the in-flight event
// completes. Pending events remain queued. In domain mode a concurrent
// window finishes before the run returns. A Stop issued from inside a
// speculative span is journaled with the span: it takes effect only if the
// span commits (a rolled-back stop re-fires when its event re-executes
// conservatively).
func (e *Engine) Stop() {
	if e.spec != nil {
		e.spec.stopped = true
		return
	}
	if e.co != nil {
		e.co.stopReq.Store(true)
	}
	e.stopped = true
}

// Step fires the single earliest pending event, advancing the clock to its
// timestamp. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	e.discardCanceledRoot()
	if len(e.queue) == 0 {
		return false
	}
	ev := e.heapPop()
	e.now = ev.when
	e.executed++
	ev.fn()
	e.recycle(ev)
	return true
}

// Run fires events until the queue drains or Stop is called. It returns the
// final virtual time. On a control engine with domains (see NewDomain) the
// run proceeds in conservative windows across every domain.
func (e *Engine) Run() Time {
	if c := e.co; c != nil && len(c.engines) > 1 {
		e.checkControl()
		return c.run(Forever)
	}
	e.stopped = false
	for !e.stopped && e.Step() {
	}
	return e.now
}

// checkControl guards the run entry points: only the control domain may
// drive a domained simulation.
func (e *Engine) checkControl() {
	if e.domIdx != 0 {
		panic("sim: Run on a domain engine; drive the control engine")
	}
}

// RunUntil fires events with timestamps <= deadline, then sets the clock to
// deadline (if it is later than the last event). It returns the final time.
// On a control engine with domains, every domain's clock ends at deadline.
func (e *Engine) RunUntil(deadline Time) Time {
	if c := e.co; c != nil && len(c.engines) > 1 {
		e.checkControl()
		return c.run(deadline)
	}
	e.stopped = false
	for !e.stopped {
		// Discard before peeking: a canceled timer with an early timestamp
		// must not let Step() fire a live event beyond the deadline.
		e.discardCanceledRoot()
		if len(e.queue) == 0 || e.queue[0].when > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// RunFor advances the simulation by d virtual time.
func (e *Engine) RunFor(d Duration) Time { return e.RunUntil(e.now + d) }
