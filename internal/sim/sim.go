// Package sim provides the deterministic discrete-event simulation core on
// which the Myrinet/GM model runs. All times are virtual: the engine keeps a
// virtual clock and a priority queue of scheduled events, and advances the
// clock from event to event. Given the same seed and the same schedule of
// calls, a simulation is bit-for-bit reproducible.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
)

// Time is a virtual timestamp in nanoseconds since the start of the
// simulation. Nanosecond granularity comfortably resolves the paper's
// microsecond-scale timing constants (the LANai interval timers tick every
// 500 ns).
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration = Time

// Common durations, mirroring the time package but in virtual units.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Forever is a time later than any event a simulation will schedule.
const Forever Time = math.MaxInt64

// Micros reports t as a floating-point number of microseconds, the unit the
// paper reports nearly all results in.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis reports t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// String formats the time with an adaptive unit, e.g. "12.5us" or "1.2s".
func (t Time) String() string {
	switch {
	case t < 10*Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < 10*Millisecond:
		return fmt.Sprintf("%.1fus", t.Micros())
	case t < 10*Second:
		return fmt.Sprintf("%.1fms", t.Millis())
	default:
		return fmt.Sprintf("%.2fs", t.Seconds())
	}
}

// Event is a scheduled callback. The zero Event is invalid; events are
// created through Engine.At and Engine.After.
type Event struct {
	when     Time
	seq      uint64 // FIFO tiebreak among events at the same instant
	index    int    // heap index, -1 when not queued
	canceled bool
	fn       func()
	label    string
}

// When reports the virtual time the event is scheduled for.
func (e *Event) When() Time { return e.when }

// Cancel prevents a pending event from firing. Canceling an event that has
// already fired or been canceled is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.canceled = true
	}
}

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e != nil && e.canceled }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// TraceFunc receives a line of simulation trace output.
type TraceFunc func(t Time, component, format string, args ...any)

// ErrPastTime is returned when an event is scheduled before the current
// virtual time.
var ErrPastTime = errors.New("sim: event scheduled in the past")

// Engine is the discrete-event simulation engine. It is not safe for
// concurrent use: the entire simulation is single-threaded and deterministic.
type Engine struct {
	now     Time
	queue   eventQueue
	nextSeq uint64
	rng     *RNG
	trace   TraceFunc
	stopped bool
	// executed counts events that have fired, for diagnostics and runaway
	// detection in tests.
	executed uint64
}

// NewEngine returns an engine with its clock at zero and a deterministic RNG
// seeded with seed.
func NewEngine(seed uint64) *Engine {
	return &Engine{rng: NewRNG(seed)}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's deterministic random number generator.
func (e *Engine) RNG() *RNG { return e.rng }

// Executed reports how many events have fired so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending reports how many events are queued (including canceled ones that
// have not yet been discarded).
func (e *Engine) Pending() int { return len(e.queue) }

// SetTrace installs fn as the trace sink; pass nil to disable tracing.
func (e *Engine) SetTrace(fn TraceFunc) { e.trace = fn }

// Tracef emits a trace line attributed to component if tracing is enabled.
func (e *Engine) Tracef(component, format string, args ...any) {
	if e.trace != nil {
		e.trace(e.now, component, format, args...)
	}
}

// At schedules fn to run at virtual time t and returns a handle that can
// cancel it. Scheduling at the current time is allowed (the event runs after
// already-queued events at the same instant). Scheduling in the past panics:
// it is always a programming error in a discrete-event model.
func (e *Engine) At(t Time, fn func()) *Event {
	return e.AtLabel(t, "", fn)
}

// AtLabel is At with a label attached for diagnostics.
func (e *Engine) AtLabel(t Time, label string, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("%v: at %v, now %v", ErrPastTime, t, e.now))
	}
	ev := &Event{when: t, seq: e.nextSeq, fn: fn, label: label}
	e.nextSeq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// AfterLabel is After with a label attached for diagnostics.
func (e *Engine) AfterLabel(d Duration, label string, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.AtLabel(e.now+d, label, fn)
}

// Stop makes the current Run/RunUntil call return after the in-flight event
// completes. Pending events remain queued.
func (e *Engine) Stop() { e.stopped = true }

// Step fires the single earliest pending event, advancing the clock to its
// timestamp. It reports false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.when
		e.executed++
		ev.fn()
		return true
	}
	return false
}

// Run fires events until the queue drains or Stop is called. It returns the
// final virtual time.
func (e *Engine) Run() Time {
	e.stopped = false
	for !e.stopped && e.Step() {
	}
	return e.now
}

// RunUntil fires events with timestamps <= deadline, then sets the clock to
// deadline (if it is later than the last event). It returns the final time.
func (e *Engine) RunUntil(deadline Time) Time {
	e.stopped = false
	for !e.stopped {
		// Discard canceled events at the root before peeking: a canceled
		// timer with an early timestamp must not let Step() fire a live
		// event that lies beyond the deadline.
		for len(e.queue) > 0 && e.queue[0].canceled {
			heap.Pop(&e.queue)
		}
		if len(e.queue) == 0 {
			break
		}
		if e.queue[0].when > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
	return e.now
}

// RunFor advances the simulation by d virtual time.
func (e *Engine) RunFor(d Duration) Time { return e.RunUntil(e.now + d) }
