package sim

import "testing"

// BenchmarkEngineSchedule measures the schedule-then-fire hot path. With the
// free list in effect, steady state allocates nothing per event.
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(1, fn)
		e.Step()
	}
}

// BenchmarkEngineScheduleDepth measures push/pop against a standing queue of
// 64 events — closer to a booted cluster's timer population than an empty
// heap.
func BenchmarkEngineScheduleDepth(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	for i := 0; i < 64; i++ {
		e.After(Duration(1000+i), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(1, fn)
		e.Step()
	}
}

// BenchmarkEngineTimerChurn models the watchdog pattern that motivated the
// compaction pass: a timer re-armed (cancel + reschedule) far more often
// than it expires.
func BenchmarkEngineTimerChurn(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	var timer *Event
	for i := 0; i < b.N; i++ {
		if timer != nil {
			timer.Cancel()
		}
		timer = e.After(1000, fn)
		e.After(1, fn)
		e.Step()
	}
	b.StopTimer()
	if e.Pending() > b.N/2+2 {
		b.Fatalf("queue grew to %d: canceled timers not compacted", e.Pending())
	}
}
