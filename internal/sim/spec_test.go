package sim

import (
	"fmt"
	"strings"
	"testing"
)

// --- Toy speculation harness -------------------------------------------
//
// A ring of domains, each running an RNG-paced ticker that folds a running
// hash and periodically sends its hash across a TimedBoundary to the next
// domain. Every domain registers speculation hooks, so the harness
// exercises the full span lifecycle: journaled execution, commits on quiet
// windows, rollbacks when a neighbor's transfer (or possible transfer)
// lands inside a span. Fingerprints cover component state, event counts,
// speculation outcomes and the merged trace stream — byte-equal across
// every shard count is the contract under test.

type toyMsg struct {
	at Time
	v  uint64
}

type toyBoundary struct {
	src, dst *Engine
	owner    *toyDom // receiving component
	class    uint32  // arrival ordering class (AtArrival)
	q        []toyMsg
	noted    bool
}

func (b *toyBoundary) BoundaryTarget() *Engine { return b.dst }

func (b *toyBoundary) EarliestPending() Time {
	min := Forever
	for _, m := range b.q {
		if m.at < min {
			min = m.at
		}
	}
	return min
}

func (b *toyBoundary) FlushBoundary() {
	b.noted = false
	for _, m := range b.q {
		m := m
		b.dst.AtArrival(m.at, b.class, "xfer", func() { b.owner.recv(m.v) })
	}
	b.q = b.q[:0]
}

func (b *toyBoundary) send(v uint64, lat Duration) {
	b.q = append(b.q, toyMsg{at: b.src.Now() + lat, v: v})
	if !b.noted {
		b.noted = true
		b.src.NoteBoundary(b)
	}
}

type toyDom struct {
	eng      *Engine
	idx      int
	counter  uint64
	hash     uint64
	out      *toyBoundary // boundary this domain produces into (nil for sinks)
	lat      Duration
	sendMod  uint64 // send every sendMod ticks (0 = never)
	deadline Time
}

// toySnap is the component checkpoint the speculation hooks copy.
type toySnap struct {
	counter uint64
	hash    uint64
	outQ    []toyMsg
	noted   bool
}

func (d *toyDom) save() any {
	s := toySnap{counter: d.counter, hash: d.hash}
	if d.out != nil {
		s.outQ = append([]toyMsg(nil), d.out.q...)
		s.noted = d.out.noted
	}
	return s
}

func (d *toyDom) restore(v any) {
	s := v.(toySnap)
	d.counter = s.counter
	d.hash = s.hash
	if d.out != nil {
		d.out.q = append(d.out.q[:0], s.outQ...)
		d.out.noted = s.noted
	}
}

func (d *toyDom) fold(v uint64) {
	h := d.hash ^ v
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	d.hash = h ^ (h >> 27)
}

func (d *toyDom) recv(v uint64) {
	d.fold(v ^ 0xabcdef)
	d.fold(uint64(d.eng.Now()))
}

func (d *toyDom) tick() {
	d.counter++
	d.fold(d.counter)
	d.fold(uint64(d.eng.Now()))
	d.fold(d.eng.RNG().Uint64())
	if d.sendMod > 0 && d.counter%d.sendMod == 0 && d.out != nil {
		d.out.send(d.hash, d.lat)
	}
	if d.counter%97 == 0 {
		d.eng.Tracef("toy", "dom%d c=%d h=%x", d.idx, d.counter, d.hash)
	}
	next := d.eng.Now() + 50*Nanosecond + d.eng.RNG().Duration(150*Nanosecond)
	if next <= d.deadline {
		d.eng.AtLabel(next, "tick", func() { d.tick() })
	}
}

// runToyRing builds an n-domain ring, runs it to the deadline and returns a
// full fingerprint plus the speculation counters.
func runToyRing(n, shards, threshold int, horizon Duration, deadline Time) (string, uint64, uint64) {
	root := NewEngine(42)
	root.SetShards(shards)
	if threshold > 0 {
		root.SetParallelThreshold(threshold)
	}
	if horizon > 0 {
		root.SetSpeculation(horizon)
	}
	var trace strings.Builder
	root.SetTrace(func(at Time, comp, format string, args ...any) {
		fmt.Fprintf(&trace, "[%d] %s %s\n", at, comp, fmt.Sprintf(format, args...))
	})
	const lat = 1 * Microsecond
	doms := make([]*toyDom, n)
	for i := range doms {
		doms[i] = &toyDom{
			eng:      root.NewDomain(fmt.Sprintf("d%d", i)),
			idx:      i,
			lat:      lat,
			sendMod:  13,
			deadline: deadline,
		}
	}
	for i, d := range doms {
		next := doms[(i+1)%n]
		d.out = &toyBoundary{src: d.eng, dst: next.eng, owner: next, class: next.eng.ArrivalClass()}
		d.eng.ObserveEdgeLookahead(next.eng, lat)
	}
	for _, d := range doms {
		d := d
		if horizon > 0 {
			d.eng.EnableSpeculation(d.save, d.restore)
		}
		d.eng.AtLabel(Time(100+d.idx*7)*Nanosecond, "tick", func() { d.tick() })
	}
	root.RunUntil(deadline)
	var fp strings.Builder
	for _, d := range doms {
		fmt.Fprintf(&fp, "dom%d c=%d h=%x exec=%d now=%d\n",
			d.idx, d.counter, d.hash, d.eng.Executed(), d.eng.Now())
	}
	commits, rollbacks, cev, rev := root.SpecStats()
	fmt.Fprintf(&fp, "spec c=%d r=%d ce=%d re=%d\n", commits, rollbacks, cev, rev)
	fp.WriteString(trace.String())
	return fp.String(), commits, rollbacks
}

// TestSpecRingInvariance is the core contract: with speculation armed, the
// complete observable state — component hashes, event counts, speculation
// outcomes, merged trace bytes — is identical for every executor count and
// every dispatch threshold.
func TestSpecRingInvariance(t *testing.T) {
	const deadline = Time(300 * Microsecond)
	ref, commits, _ := runToyRing(12, 1, 0, 6*Microsecond, deadline)
	if commits == 0 {
		t.Fatalf("workload never committed a speculative span; harness is not exercising speculation")
	}
	for _, cfg := range []struct{ shards, threshold int }{
		{2, 0}, {4, 0}, {8, 0}, {4, 1}, {4, 100},
	} {
		got, _, _ := runToyRing(12, cfg.shards, cfg.threshold, 6*Microsecond, deadline)
		if got != ref {
			t.Errorf("shards=%d threshold=%d diverged from serial run:\n--- serial ---\n%.400s\n--- got ---\n%.400s",
				cfg.shards, cfg.threshold, ref, got)
		}
	}
}

// runToyRollback wires a sparse sender A into a dense spec-capable ticker B
// (edges both ways, so neither runs away): B's spans repeatedly overlap A's
// next possible — and periodically actual — transfer, forcing rollbacks.
func runToyRollback(shards int, horizon Duration) (string, uint64, uint64) {
	root := NewEngine(7)
	root.SetShards(shards)
	if horizon > 0 {
		root.SetSpeculation(horizon)
	}
	var trace strings.Builder
	root.SetTrace(func(at Time, comp, format string, args ...any) {
		fmt.Fprintf(&trace, "[%d] %s %s\n", at, comp, fmt.Sprintf(format, args...))
	})
	const lat = 1 * Microsecond
	const deadline = Time(200 * Microsecond)
	ea := root.NewDomain("A")
	eb := root.NewDomain("B")
	b := &toyDom{eng: eb, idx: 1, deadline: deadline}
	// A ticks densely (so B's earliest-affect bound advances every window,
	// letting quiet spans commit) and sends rarely — each send's arrival
	// lands at the start of a span B has already executed through, forcing
	// a rollback.
	a := &toyDom{eng: ea, idx: 0, lat: lat, sendMod: 199, deadline: deadline}
	a.out = &toyBoundary{src: ea, dst: eb, owner: b, class: eb.ArrivalClass()}
	ea.ObserveEdgeLookahead(eb, lat)
	eb.ObserveEdgeLookahead(ea, lat)
	if horizon > 0 {
		eb.EnableSpeculation(b.save, b.restore)
	}
	ea.AtLabel(100*Nanosecond, "tick", func() { a.tick() })
	eb.AtLabel(130*Nanosecond, "tick", func() { b.tick() })
	root.RunUntil(deadline)
	var fp strings.Builder
	fmt.Fprintf(&fp, "B c=%d h=%x exec=%d\nA c=%d h=%x exec=%d\n",
		b.counter, b.hash, eb.Executed(), a.counter, a.hash, ea.Executed())
	fp.WriteString(trace.String())
	commits, rollbacks, _, _ := root.SpecStats()
	return fp.String(), commits, rollbacks
}

// TestSpecForcedRollback injects boundary transfers that land inside
// speculated spans and checks three things: rollbacks actually happen,
// commits still happen in the quiet stretches, and the final state is
// byte-identical both across shard counts and against a fully conservative
// (speculation-off) run of the same workload.
func TestSpecForcedRollback(t *testing.T) {
	ref, commits, rollbacks := runToyRollback(1, 800*Nanosecond)
	if rollbacks == 0 {
		t.Fatalf("no span rolled back; the late transfers never landed inside a span (commits=%d)", commits)
	}
	if commits == 0 {
		t.Fatalf("no span committed; speculation never paid off (rollbacks=%d)", rollbacks)
	}
	for _, shards := range []int{2, 4} {
		got, _, rb := runToyRollback(shards, 800*Nanosecond)
		if got != ref {
			t.Errorf("shards=%d diverged under forced rollbacks:\n--- serial ---\n%.400s\n--- got ---\n%.400s", shards, ref, got)
		}
		if rb != rollbacks {
			t.Errorf("shards=%d: %d rollbacks, want %d (decisions must be executor-count invariant)", shards, rb, rollbacks)
		}
	}
	cons, _, _ := runToyRollback(1, 0)
	if cons != ref {
		t.Errorf("speculative run diverged from conservative run:\n--- conservative ---\n%.400s\n--- speculative ---\n%.400s", cons, ref)
	}
}

// TestZeroLookaheadPanics: domains with no registered lookahead used to
// silently degrade to 1 ns windows; now the first Run must refuse loudly.
func TestZeroLookaheadPanics(t *testing.T) {
	root := NewEngine(1)
	d1 := root.NewDomain("a")
	d2 := root.NewDomain("b")
	d1.AtLabel(10, "x", func() {})
	d2.AtLabel(20, "x", func() {})
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("Run with domains but no lookahead did not panic")
		}
		if !strings.Contains(fmt.Sprint(r), "lookahead") {
			t.Fatalf("panic message does not mention lookahead: %v", r)
		}
	}()
	root.Run()
}

// TestRNGStateRestoreRoundTrip: Restore(State()) must replay the identical
// stream, arbitrarily often and from any point.
func TestRNGStateRestoreRoundTrip(t *testing.T) {
	r := NewRNG(12345)
	for i := 0; i < 10; i++ {
		r.Uint64() // advance to an arbitrary mid-stream point
	}
	s := r.State()
	var first [32]uint64
	for i := range first {
		first[i] = r.Uint64()
	}
	f1, p1 := r.Float64(), r.Perm(16)
	r.Restore(s)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("draw %d after Restore = %#x, want %#x", i, got, first[i])
		}
	}
	f2, p2 := r.Float64(), r.Perm(16)
	if f1 != f2 {
		t.Fatalf("Float64 after Restore = %v, want %v", f2, f1)
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatalf("Perm after Restore = %v, want %v", p2, p1)
		}
	}
	// Restoring twice from the same snapshot replays again.
	r.Restore(s)
	if got := r.Uint64(); got != first[0] {
		t.Fatalf("second Restore: draw = %#x, want %#x", got, first[0])
	}
}

// TestSpeculationGuards covers the API misuse panics.
func TestSpeculationGuards(t *testing.T) {
	root := NewEngine(1)
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("EnableSpeculation on control engine", func() {
		root.EnableSpeculation(func() any { return nil }, func(any) {})
	})
	d := root.NewDomain("a")
	mustPanic("EnableSpeculation with nil hooks", func() {
		d.EnableSpeculation(nil, nil)
	})
	mustPanic("ObserveEdgeLookahead with zero latency", func() {
		d.ObserveEdgeLookahead(root, 0)
	})
	mustPanic("ObserveEdgeLookahead across coordinators", func() {
		other := NewEngine(2)
		d.ObserveEdgeLookahead(other, Microsecond)
	})
}
