package sim

// RNG is a small deterministic pseudo-random generator (splitmix64). The
// simulator cannot use math/rand's global source: experiments must be
// reproducible from a single seed, and fault-injection campaigns compare
// runs bit-for-bit.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Duration returns a uniform virtual duration in [0, d). It panics if d <= 0.
func (r *RNG) Duration(d Duration) Duration {
	return Duration(r.Int63n(int64(d)))
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// State snapshots the generator's full internal state. Together with
// Restore it gives the speculation machinery (shard.go) an exact
// checkpoint: splitmix64 keeps all of its entropy in one word, so a
// snapshot is a single load and a restore replays the identical stream.
func (r *RNG) State() uint64 { return r.state }

// Restore rewinds the generator to a state previously captured with State.
// The next Uint64 after Restore(s) equals the next Uint64 after State
// returned s.
func (r *RNG) Restore(s uint64) { r.state = s }

// Fork derives an independent generator from the current stream. Subsystems
// take forked generators so that adding randomness in one component does not
// perturb the sequence seen by another.
func (r *RNG) Fork() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1b54a32d192ed03)
}

// DeriveRNG returns a generator that is a pure function of (seed, index):
// the seed-splitting contract for parallel experiment campaigns. Trial i of
// a campaign seeded with s draws from DeriveRNG(s, i) no matter which worker
// executes it or in what order, so a fanned-out run is bit-for-bit identical
// to the serial one at any worker count. The index is folded in through the
// same splitmix64 finalizer the stream itself uses, so adjacent indices land
// in uncorrelated streams.
func DeriveRNG(seed, index uint64) *RNG {
	z := seed + 0x9e3779b97f4a7c15*(index+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return NewRNG(z ^ (z >> 31))
}
