package sim

// Deferred runs queued calls of one function at caller-chosen times, using a
// single pending engine event instead of a closure-carrying event per call.
// It is the engine-level idiom for a serial resource whose completion times
// are nondecreasing (a FIFO pipeline stage, a fixed post-processing delay):
// the per-call state travels in a plain ring slot, and the one callback is
// allocated when the Deferred is built.
//
// Calls MUST be issued with nondecreasing times; Call panics otherwise,
// because the ring would then dispatch later-due work first.
type Deferred[T any] struct {
	eng      *Engine
	label    string
	run      func(T)
	q        []deferredItem[T]
	head     int
	wake     *Event
	draining bool
	drainFn  func() // cached; arming a drain must not allocate

	// Speculation journaling (spec.go): the ring checkpoints its live region
	// into shadowQ on first touch per span and rebuilds canonically (head 0)
	// on rollback. Slot positions inside the array are unobservable, so the
	// canonical rebuild preserves dispatch order bit-for-bit.
	specEpoch  uint64
	shadowQ    []deferredItem[T]
	shadowWake *Event
}

type deferredItem[T any] struct {
	at Time
	v  T
}

// NewDeferred returns a Deferred that dispatches queued values to run.
func NewDeferred[T any](eng *Engine, label string, run func(T)) *Deferred[T] {
	d := &Deferred[T]{eng: eng, label: label, run: run}
	d.drainFn = d.drain
	return d
}

// Call queues run(v) for virtual time t. t must be >= every previously
// queued time.
func (d *Deferred[T]) Call(t Time, v T) {
	d.eng.SpecTouch(&d.specEpoch, d)
	if n := len(d.q); n > d.head && t < d.q[n-1].at {
		panic("sim: Deferred.Call with decreasing time")
	}
	if d.head > 0 && d.head == len(d.q) {
		d.q = d.q[:0]
		d.head = 0
	}
	d.q = append(d.q, deferredItem[T]{at: t, v: v})
	if d.wake == nil && !d.draining {
		d.wake = d.eng.AtLabel(t, d.label, d.drainFn)
	}
}

// After queues run(v) for dur from now.
func (d *Deferred[T]) After(dur Duration, v T) { d.Call(d.eng.Now()+dur, v) }

// Pending reports how many queued calls have not yet dispatched.
func (d *Deferred[T]) Pending() int { return len(d.q) - d.head }

// SpecSave / SpecRestore implement SpecSaver (spec.go): first-touch
// checkpoint of the ring's live region, wake event and cursor.
func (d *Deferred[T]) SpecSave() {
	d.shadowQ = append(d.shadowQ[:0], d.q[d.head:]...)
	d.shadowWake = d.wake
}

// SpecRestore rebuilds the ring canonically from the shadow. The wake event
// object is revived by the engine's own rollback (popped events are
// retained, span-new events erased), so re-pointing at the saved handle is
// always safe.
func (d *Deferred[T]) SpecRestore() {
	var zero deferredItem[T]
	for i := len(d.shadowQ); i < len(d.q); i++ {
		d.q[i] = zero
	}
	d.q = append(d.q[:0], d.shadowQ...)
	d.head = 0
	d.wake = d.shadowWake
	d.draining = false
}

func (d *Deferred[T]) drain() {
	// Touch before the transient flags flip, so a first-touch checkpoint
	// taken here (or by a reentrant Call from a dispatched callback) captures
	// the quiescent shape.
	d.eng.SpecTouch(&d.specEpoch, d)
	d.wake = nil
	d.draining = true
	now := d.eng.Now()
	var zero deferredItem[T]
	for d.head < len(d.q) {
		it := &d.q[d.head]
		if it.at > now {
			break
		}
		v := it.v
		*it = zero
		d.head++
		d.run(v)
	}
	d.draining = false
	// Under sustained load the ring may never fully empty; slide the tail
	// down once the dead prefix dominates so the array stays bounded.
	if d.head > 1024 && d.head*2 > len(d.q) {
		n := copy(d.q, d.q[d.head:])
		for i := n; i < len(d.q); i++ {
			d.q[i] = zero
		}
		d.q = d.q[:n]
		d.head = 0
	}
	if d.head < len(d.q) {
		d.wake = d.eng.AtLabel(d.q[d.head].at, d.label, d.drainFn)
	}
}
