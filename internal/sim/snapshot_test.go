package sim

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"strings"
	"testing"
)

// --- Snapshot/resume harness -------------------------------------------
//
// Reuses the speculation toy ring (spec_test.go): an n-domain ring of
// RNG-paced tickers exchanging hashes over TimedBoundaries, with state
// hooks registered so speculative spans open, commit and roll back. The
// snapshot contract under test: a run snapshotted at T1 and resumed on a
// fresh ring is byte-for-byte identical at T2 to a run that never stopped,
// for any (snapshot shard count) x (resume shard count) pairing and with
// speculation enabled.

// toyRing is a constructed-but-not-yet-run ring plus its trace sink.
type toyRing struct {
	root  *Engine
	doms  []*toyDom
	trace *strings.Builder
}

// buildToyRing constructs the identical ring workload runToyRing runs, but
// hands it back unrun so the caller can snapshot/resume at arbitrary points.
func buildToyRing(n, shards int, horizon Duration, deadline Time) *toyRing {
	root := NewEngine(42)
	root.SetShards(shards)
	if horizon > 0 {
		root.SetSpeculation(horizon)
	}
	trace := &strings.Builder{}
	root.SetTrace(func(at Time, comp, format string, args ...any) {
		fmt.Fprintf(trace, "[%d] %s %s\n", at, comp, fmt.Sprintf(format, args...))
	})
	const lat = 1 * Microsecond
	doms := make([]*toyDom, n)
	for i := range doms {
		doms[i] = &toyDom{
			eng:      root.NewDomain(fmt.Sprintf("d%d", i)),
			idx:      i,
			lat:      lat,
			sendMod:  13,
			deadline: deadline,
		}
	}
	for i, d := range doms {
		next := doms[(i+1)%n]
		d.out = &toyBoundary{src: d.eng, dst: next.eng, owner: next, class: next.eng.ArrivalClass()}
		d.eng.ObserveEdgeLookahead(next.eng, lat)
	}
	for _, d := range doms {
		d := d
		if horizon > 0 {
			d.eng.EnableSpeculation(d.save, d.restore)
		}
		d.eng.AtLabel(Time(100+d.idx*7)*Nanosecond, "tick", func() { d.tick() })
	}
	return &toyRing{root: root, doms: doms, trace: trace}
}

// fingerprint renders the ring's complete observable state: component
// hashes, per-domain engine counters, the full merged trace. Speculation
// counters are deliberately excluded — they are telemetry about how the
// schedule was executed, and a paused-and-resumed run legitimately resolves
// spans at different barriers than an uninterrupted one while producing
// identical results (the same reason they are shard-invariant only for a
// fixed call schedule).
func (r *toyRing) fingerprint() string {
	var fp strings.Builder
	for _, d := range r.doms {
		fmt.Fprintf(&fp, "dom%d c=%d h=%x exec=%d now=%d\n",
			d.idx, d.counter, d.hash, d.eng.Executed(), d.eng.Now())
	}
	fp.WriteString(r.trace.String())
	return fp.String()
}

const (
	toySnapAt  = Time(150 * Microsecond)
	toySnapEnd = Time(300 * Microsecond)
)

// TestSnapshotResumeBitForBit is the acceptance contract: snapshot at T1 on
// one shard count, resume on another (speculation armed throughout), run
// both to T2 — the resumed fingerprint must be byte-identical to the
// uninterrupted one.
func TestSnapshotResumeBitForBit(t *testing.T) {
	const horizon = 6 * Microsecond
	// The reference never stops: one uninterrupted run to T2.
	ref := buildToyRing(12, 1, horizon, toySnapEnd)
	ref.root.RunUntil(toySnapEnd)
	want := ref.fingerprint()
	if want == "" {
		t.Fatal("empty reference fingerprint")
	}
	if commits, _, _, _ := ref.root.SpecStats(); commits == 0 {
		t.Fatal("reference run never committed a speculative span; harness is not exercising speculation")
	}

	for _, snapShards := range []int{1, 4, 8} {
		src := buildToyRing(12, snapShards, horizon, toySnapEnd)
		src.root.RunUntil(toySnapAt)
		var snap bytes.Buffer
		if err := src.root.Snapshot(&snap); err != nil {
			t.Fatalf("snapshot at shards=%d: %v", snapShards, err)
		}
		for _, resShards := range []int{1, 4, 8} {
			dst := buildToyRing(12, resShards, horizon, toySnapEnd)
			if err := dst.root.Resume(bytes.NewReader(snap.Bytes())); err != nil {
				t.Fatalf("resume shards=%d from snapshot shards=%d: %v", resShards, snapShards, err)
			}
			if dst.root.Now() != toySnapAt {
				t.Fatalf("resume landed at %v, want %v", dst.root.Now(), toySnapAt)
			}
			dst.root.RunUntil(toySnapEnd)
			got := dst.fingerprint()
			if got != want {
				i := 0
				for i < len(got) && i < len(want) && got[i] == want[i] {
					i++
				}
				t.Fatalf("snap@shards=%d resume@shards=%d diverges at byte %d:\n  want ...%.120s\n  got  ...%.120s",
					snapShards, resShards, i, want[i:], got[i:])
			}
		}
	}
}

// TestSnapshotDeterministic: two runs reaching the same virtual time must
// produce byte-identical snapshots regardless of shard count.
func TestSnapshotDeterministic(t *testing.T) {
	var bufs [][]byte
	for _, shards := range []int{1, 4, 8} {
		r := buildToyRing(12, shards, 6*Microsecond, toySnapEnd)
		r.root.RunUntil(toySnapAt)
		var b bytes.Buffer
		if err := r.root.Snapshot(&b); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		bufs = append(bufs, b.Bytes())
	}
	for i := 1; i < len(bufs); i++ {
		if !bytes.Equal(bufs[0], bufs[i]) {
			t.Fatalf("snapshot bytes differ between shard counts (len %d vs %d)", len(bufs[0]), len(bufs[i]))
		}
	}
}

// TestSnapshotLegacyEngine: a plain undomained engine snapshots and resumes
// through the same API.
func TestSnapshotLegacyEngine(t *testing.T) {
	build := func() (*Engine, *int) {
		e := NewEngine(7)
		n := new(int)
		var tick func()
		tick = func() {
			*n++
			e.RNG().Uint64()
			e.After(10*Microsecond, tick)
		}
		e.After(Microsecond, tick)
		return e, n
	}
	e1, n1 := build()
	e1.RunUntil(Millisecond)
	var snap bytes.Buffer
	if err := e1.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	e1.RunUntil(2 * Millisecond)

	e2, n2 := build()
	if err := e2.Resume(bytes.NewReader(snap.Bytes())); err != nil {
		t.Fatal(err)
	}
	e2.RunUntil(2 * Millisecond)
	if *n1 != *n2 || e1.Executed() != e2.Executed() || e1.RNG().State() != e2.RNG().State() {
		t.Fatalf("resumed legacy run diverged: n=%d/%d exec=%d/%d", *n1, *n2, e1.Executed(), e2.Executed())
	}
}

// TestSnapshotNotQuiescent: snapshotting from inside a run must refuse.
func TestSnapshotNotQuiescent(t *testing.T) {
	r := buildToyRing(4, 1, 0, toySnapEnd)
	var got error
	r.root.At(50*Microsecond, func() {
		got = r.root.Snapshot(&bytes.Buffer{})
	})
	r.root.RunUntil(60 * Microsecond)
	if !errors.Is(got, ErrNotQuiescent) {
		t.Fatalf("mid-run Snapshot = %v, want ErrNotQuiescent", got)
	}
}

// TestResumeMismatch: resuming onto a simulation built from a different
// seed must fail the attestation with ErrSnapshotMismatch, and resuming
// onto one with a different domain count must fail before replaying.
func TestResumeMismatch(t *testing.T) {
	src := buildToyRing(6, 1, 0, toySnapEnd)
	src.root.RunUntil(toySnapAt)
	var snap bytes.Buffer
	if err := src.root.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}

	wrongSeed := buildToyRing(6, 1, 0, toySnapEnd)
	wrongSeed.root.rng = NewRNG(999) // perturb the root stream only
	if err := wrongSeed.root.Resume(bytes.NewReader(snap.Bytes())); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("wrong-seed Resume = %v, want ErrSnapshotMismatch", err)
	}

	wrongShape := buildToyRing(7, 1, 0, toySnapEnd)
	if err := wrongShape.root.Resume(bytes.NewReader(snap.Bytes())); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("wrong-shape Resume = %v, want ErrSnapshotMismatch", err)
	}

	past := buildToyRing(6, 1, 0, toySnapEnd)
	past.root.RunUntil(toySnapAt + Microsecond)
	if err := past.root.Resume(bytes.NewReader(snap.Bytes())); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("past-deadline Resume = %v, want ErrSnapshotMismatch", err)
	}
}

// TestSnapshotDecodeRejects: hostile bytes must come back as typed errors,
// never panics.
func TestSnapshotDecodeRejects(t *testing.T) {
	src := buildToyRing(4, 1, 0, toySnapEnd)
	src.root.RunUntil(toySnapAt)
	var snap bytes.Buffer
	if err := src.root.Snapshot(&snap); err != nil {
		t.Fatal(err)
	}
	good := snap.Bytes()

	// seal appends a valid CRC so inner corruption reaches the structural
	// checks instead of tripping the checksum; reseal re-checksums an
	// already-sealed stream after mutation.
	seal := func(body []byte) []byte {
		return binary.LittleEndian.AppendUint32(append([]byte(nil), body...), crc32.ChecksumIEEE(body))
	}
	reseal := func(b []byte) []byte { return seal(b[:len(b)-4]) }

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrSnapshotTruncated},
		{"short", good[:8], ErrSnapshotTruncated},
		{"bitflip", func() []byte {
			b := append([]byte(nil), good...)
			b[10] ^= 0x40
			return b
		}(), ErrSnapshotCorrupt},
		{"truncated-resealed", reseal(good[:len(good)-20]), ErrSnapshotTruncated},
		{"bad-magic", func() []byte {
			b := append([]byte(nil), good...)
			binary.LittleEndian.PutUint32(b[0:4], 0xdeadbeef)
			return reseal(b)
		}(), ErrSnapshotCorrupt},
		{"bad-version", func() []byte {
			b := append([]byte(nil), good...)
			binary.LittleEndian.PutUint16(b[4:6], 99)
			return reseal(b)
		}(), ErrSnapshotVersion},
		{"domain-count-overflow", func() []byte {
			b := append([]byte(nil), good...)
			binary.LittleEndian.PutUint32(b[48:52], 1<<30)
			return reseal(b)
		}(), ErrSnapshotTruncated},
		{"trailing-garbage", seal(append(append([]byte(nil), good[:len(good)-4]...), 1, 2, 3)), ErrSnapshotCorrupt},
	}
	for _, tc := range cases {
		_, err := decodeSnapshot(tc.data)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: decode = %v, want %v", tc.name, err, tc.want)
		}
	}
}
