package sim

// Speculative run-ahead (Time-Warp-lite). A domain whose conservative
// window bound has been reached may keep executing into a *speculative
// span*: every engine-level mutation is journaled (a copy-on-schedule undo
// log of heap inserts, pops and cancels, plus RNG, clock, sequence and
// counter snapshots) and the domain's component state is checkpointed
// through a caller-registered save/restore pair. The next window barrier
// resolves each span:
//
//   - commit — no cross-domain transfer landed inside the span. The journal
//     is discarded, retained events recycle, and the span becomes
//     indistinguishable from conservative execution.
//   - rollback — a transfer's delivery time precedes the domain's
//     speculated clock. The heap, RNG, clock, counters, trace buffer,
//     boundary/control queues and component state are all rewound to the
//     span start (which is exactly the conservative bound, so the incoming
//     transfer — guaranteed by the lookahead contract to arrive at or after
//     that bound — always lands in the restored domain's future), and the
//     span's events re-execute conservatively in a later window.
//
// Because commit/rollback decisions depend only on the deterministic window
// schedule — never on executor count — the bit-for-bit shard-invariance
// contract of shard.go §determinism survives speculation unchanged.
//
// Only domains that registered state hooks with EnableSpeculation
// participate; everything else stays on the conservative bound. Trace lines
// emitted inside a span stay buffered until the span resolves (the barrier
// merge already holds lines back until the global clock passes them), so a
// rolled-back span leaks nothing to the sink.

// specState is the journal of one in-flight speculative span.
type specState struct {
	savedComp any    // component checkpoint from the domain's save hook
	rng       uint64 // RNG stream position at span start
	now       Time
	executed  uint64
	nextSeq   uint64
	canceled  int // engine's canceled-event counter at span start

	dirtyLen int // lengths of the barrier queues at span start:
	ctrlLen  int // entries beyond these marks are speculative
	traceLen int

	// popped retains every event removed from the heap during the span
	// (fired or canceled-discarded), in pop order. Rollback re-pushes the
	// pre-span ones and erases the span-scheduled ones; commit recycles all.
	popped []*Event
	// pushed tracks events scheduled during the span (specNew flag set).
	pushed []*Event
	// canceledEvs tracks pre-span events canceled during the span, so
	// rollback can revive them.
	canceledEvs []*Event

	// stopped journals a Stop() issued inside the span; it reaches the
	// coordinator only on commit.
	stopped bool
}

// EnableSpeculation registers the component state hooks that make this
// domain eligible for speculative run-ahead: save must checkpoint every
// piece of state outside the engine that the domain's event callbacks can
// mutate (including outboxes of boundaries it produces into), and restore
// must rewind it. Both hooks run on the domain's executor with no other
// domain active on its state. Must be called on a non-control domain before
// the first Run.
func (e *Engine) EnableSpeculation(save func() any, restore func(any)) {
	if e.co == nil || e.domIdx == 0 {
		panic("sim: EnableSpeculation on a non-domain engine (speculation needs a domain carved with NewDomain)")
	}
	if save == nil || restore == nil {
		panic("sim: EnableSpeculation needs both a save and a restore hook")
	}
	if e.co.running {
		panic("sim: EnableSpeculation during run")
	}
	e.specCapable = true
	e.specSave = save
	e.specRestore = restore
	e.co.anySpec = true
}

// SetSpeculation arms speculative run-ahead on the whole simulation:
// domains that registered hooks with EnableSpeculation may execute up to
// horizon past their conservative window bound. 0 (the default) disables
// speculation. Call on the control engine before the first Run.
func (e *Engine) SetSpeculation(horizon Duration) {
	c := e.ensureCoord()
	if c.running {
		panic("sim: SetSpeculation during run")
	}
	if horizon < 0 {
		horizon = 0
	}
	c.specHorizon = horizon
}

// SpecStats reports how many speculative spans committed and rolled back,
// and how many speculatively executed events each outcome covered. Rolled-
// back events re-execute conservatively, so rollbackEvents counts wasted —
// not lost — work.
func (e *Engine) SpecStats() (commits, rollbacks, commitEvents, rollbackEvents uint64) {
	if e.co == nil {
		return 0, 0, 0, 0
	}
	c := e.co
	return c.specCommits, c.specRollbacks, c.specCommitEvents, c.specRollbackEvents
}

// speculate opens a journaled span and executes events in [from, limit).
// Called by the window executor after the conservative portion of the
// window; the span stays open until the barrier resolves it.
func (e *Engine) speculate(limit Time) {
	e.discardCanceledRoot()
	if len(e.queue) == 0 || e.queue[0].when >= limit {
		return
	}
	e.spec = &specState{
		savedComp: e.specSave(),
		rng:       e.rng.State(),
		now:       e.now,
		executed:  e.executed,
		nextSeq:   e.nextSeq,
		canceled:  e.canceled,
		dirtyLen:  len(e.dirty),
		ctrlLen:   len(e.ctrlq),
		traceLen:  len(e.traceBuf),
	}
	sp := e.spec
	for !sp.stopped && !e.co.stopReq.Load() {
		e.discardCanceledRoot()
		if len(e.queue) == 0 || e.queue[0].when >= limit {
			return
		}
		ev := e.heapPop()
		e.now = ev.when
		e.executed++
		ev.fn()
		sp.popped = append(sp.popped, ev)
	}
}

// commitSpec finalizes a span: retained events recycle, span-scheduled
// events lose their provisional mark, and a journaled Stop propagates.
// Runs on the coordinator at the barrier.
func (e *Engine) commitSpec() {
	sp := e.spec
	e.spec = nil
	for i, ev := range sp.pushed {
		if ev.index >= 0 {
			ev.specNew = false
		}
		sp.pushed[i] = nil
	}
	for i, ev := range sp.popped {
		e.recycle(ev)
		sp.popped[i] = nil
	}
	if sp.stopped {
		e.co.stopReq.Store(true)
	}
	e.co.specCommits++
	e.co.specCommitEvents += e.executed - sp.executed
}

// rollbackSpec rewinds a span: the heap, counters, RNG, trace buffer,
// barrier queues and component state all return to the span start. Events
// the span scheduled are erased (their sequence numbers are reissued on
// re-execution, so the replay is bit-for-bit); events it popped are
// re-pushed; events it canceled are revived. Runs on the coordinator at the
// barrier.
func (e *Engine) rollbackSpec() {
	sp := e.spec
	e.co.specRollbacks++
	e.co.specRollbackEvents += e.executed - sp.executed
	e.spec = nil
	// Erase span-scheduled events that are still queued. Ones that also
	// fired (or were discarded) inside the span sit on the popped log with
	// index -1 and are recycled below.
	for i, ev := range sp.pushed {
		if ev.index >= 0 {
			e.heapRemove(ev)
			e.recycle(ev)
		}
		sp.pushed[i] = nil
	}
	for i, ev := range sp.popped {
		if ev.specNew {
			e.recycle(ev)
		} else {
			e.heapPush(ev)
		}
		sp.popped[i] = nil
	}
	for i, ev := range sp.canceledEvs {
		ev.canceled = false
		sp.canceledEvs[i] = nil
	}
	e.now = sp.now
	e.executed = sp.executed
	e.nextSeq = sp.nextSeq
	e.canceled = sp.canceled
	e.rng.Restore(sp.rng)
	for i := sp.dirtyLen; i < len(e.dirty); i++ {
		e.dirty[i] = nil
	}
	e.dirty = e.dirty[:sp.dirtyLen]
	for i := sp.ctrlLen; i < len(e.ctrlq); i++ {
		e.ctrlq[i] = nil
	}
	e.ctrlq = e.ctrlq[:sp.ctrlLen]
	for i := sp.traceLen; i < len(e.traceBuf); i++ {
		e.traceBuf[i] = traceLine{}
	}
	e.traceBuf = e.traceBuf[:sp.traceLen]
	e.specRestore(sp.savedComp)
}
