package sim

// Speculative run-ahead (Time-Warp-lite). A domain whose conservative
// window bound has been reached may keep executing into a *speculative
// span*: every engine-level mutation is journaled (a copy-on-schedule undo
// log of heap inserts, pops and cancels, plus RNG, clock, sequence and
// counter snapshots) and component state is journaled incrementally through
// the specjournal facility below — first-touch component checkpoints
// (SpecTouch/SpecSaver), raw undo records (SpecUndo) and deferred commit
// effects (SpecOnCommit), all held in pooled record arenas so a warm span
// allocates nothing. The next window barrier resolves each span:
//
//   - commit — no cross-domain transfer landed inside the span. The journal
//     is discarded, deferred effects (e.g. packet-pool releases) run in
//     issue order, retained events recycle, and the span becomes
//     indistinguishable from conservative execution.
//   - rollback — a transfer's delivery time precedes the domain's
//     speculated clock. The undo log replays newest-first (component
//     checkpoints restore, raw records undo), then the heap, RNG, clock,
//     counters, trace buffer and boundary/control queues rewind to the span
//     start (which is exactly the conservative bound, so the incoming
//     transfer — guaranteed by the lookahead contract to arrive at or after
//     that bound — always lands in the restored domain's future), and the
//     span's events re-execute conservatively in a later window.
//
// Because commit/rollback decisions depend only on the deterministic window
// schedule — never on executor count — the bit-for-bit shard-invariance
// contract of shard.go §determinism survives speculation unchanged.
//
// Only domains that registered state hooks with EnableSpeculation
// participate; everything else stays on the conservative bound. Trace lines
// emitted inside a span stay buffered until the span resolves (the barrier
// merge already holds lines back until the global clock passes them), so a
// rolled-back span leaks nothing to the sink.

// SpecSaver is a component that checkpoints itself into its own reusable
// shadow storage. SpecSave copies every field the component's event
// callbacks may mutate into the shadow (reusing shadow capacity, so a warm
// save allocates nothing); SpecRestore copies the shadow back. The pair runs
// at most once per speculative span (Engine.SpecTouch dedupes by span id),
// always on the component's own domain with no other domain active on its
// state.
//
// Discipline for implementers: call SpecTouch at the TOP of every mutating
// method — before the first mutation — including drain loops that set
// transient in-progress flags, so the checkpoint always captures the
// component in its quiescent between-callback shape.
type SpecSaver interface {
	SpecSave()
	SpecRestore()
}

// specRec is one pooled journal record: a package-level function applied to
// boxed operands. Records never capture closures and operands are pointers
// or small scalars, so appending one allocates nothing once the arena is
// warm.
type specRec struct {
	fn     func(a, b any, v1, v2 uint64)
	a, b   any
	v1, v2 uint64
}

func runSaverRestore(a, b any, v1, v2 uint64) { a.(SpecSaver).SpecRestore() }

// specState is the journal of one in-flight speculative span. Engines keep
// one pooled instance (specFree) so opening a span reuses the record arenas
// and event logs of the previous one.
type specState struct {
	// id is a span identifier unique within this engine, drawn from the
	// coordinator's atomic counter. Components store it in their touch-epoch
	// field to dedupe first-touch saves; it never influences simulation
	// behavior, so its (executor-order-dependent) value does not break
	// determinism. State that outlives the engine (the process-wide packet
	// arena) must zero its epoch field before recycling, or a mark from a
	// dead engine can collide with a live span id (fabric pool.go).
	id        uint64
	savedComp any    // component checkpoint from the domain's save hook
	rng       uint64 // RNG stream position at span start
	now       Time
	executed  uint64
	nextSeq   uint64
	canceled  int // engine's canceled-event counter at span start

	dirtyLen int // lengths of the barrier queues at span start:
	ctrlLen  int // entries beyond these marks are speculative
	traceLen int

	// popped retains every event removed from the heap during the span
	// (fired or canceled-discarded), in pop order. Rollback re-pushes the
	// pre-span ones and erases the span-scheduled ones; commit recycles all.
	popped []*Event
	// pushed tracks events scheduled during the span (specNew flag set).
	pushed []*Event
	// canceledEvs tracks pre-span events canceled during the span, so
	// rollback can revive them.
	canceledEvs []*Event

	// undo is the component journal: first-touch checkpoint restores and raw
	// undo records, replayed newest-first on rollback so every record rewinds
	// to its capture point and the oldest capture wins.
	undo []specRec
	// commit holds deferred effects replayed oldest-first on commit — e.g.
	// packet-pool releases parked until the span is known to stand, so a
	// rollback can revive the packet without the pool having recycled it.
	commit []specRec

	// stopped journals a Stop() issued inside the span; it reaches the
	// coordinator only on commit.
	stopped bool
}

// EnableSpeculation registers the component state hooks that make this
// domain eligible for speculative run-ahead: save runs at span open and must
// checkpoint whatever per-domain state is NOT covered by the components'
// incremental SpecTouch/SpecUndo journaling (for fully journaled domains it
// may simply return nil), and restore rewinds it on rollback. Both hooks run
// on the domain's executor with no other domain active on its state. Must be
// called on a non-control domain before the first Run.
func (e *Engine) EnableSpeculation(save func() any, restore func(any)) {
	if e.co == nil || e.domIdx == 0 {
		panic("sim: EnableSpeculation on a non-domain engine (speculation needs a domain carved with NewDomain)")
	}
	if save == nil || restore == nil {
		panic("sim: EnableSpeculation needs both a save and a restore hook")
	}
	if e.co.running {
		panic("sim: EnableSpeculation during run")
	}
	e.specCapable = true
	e.specSave = save
	e.specRestore = restore
	e.co.anySpec = true
}

// SetSpeculation arms speculative run-ahead on the whole simulation:
// domains that registered hooks with EnableSpeculation may execute past
// their conservative window bound. horizon is the *initial and maximum*
// per-domain run-ahead: each domain's effective horizon then adapts between
// horizon/16 and horizon from its observed commit/rollback outcomes (AIMD —
// see noteSpecOutcome in shard.go). 0 (the default) disables speculation.
// Call on the control engine before the first Run.
func (e *Engine) SetSpeculation(horizon Duration) {
	c := e.ensureCoord()
	if c.running {
		panic("sim: SetSpeculation during run")
	}
	if horizon < 0 {
		horizon = 0
	}
	c.specHorizon = horizon
	c.horizons = nil // re-derive per-domain horizons from the new bound
}

// SpecStats reports how many speculative spans committed and rolled back,
// and how many speculatively executed events each outcome covered. Rolled-
// back events re-execute conservatively, so rollbackEvents counts wasted —
// not lost — work.
func (e *Engine) SpecStats() (commits, rollbacks, commitEvents, rollbackEvents uint64) {
	if e.co == nil {
		return 0, 0, 0, 0
	}
	c := e.co
	return c.specCommits, c.specRollbacks, c.specCommitEvents, c.specRollbackEvents
}

// SpecActive reports whether this engine is inside an open speculative
// span. Component code uses it to route irreversible effects (packet-pool
// releases) through SpecOnCommit instead of performing them in place.
func (e *Engine) SpecActive() bool { return e.spec != nil }

// SpecTouch journals component s into the current span on first touch: the
// component's SpecSave runs once per span (epoch must point at a uint64
// owned by the component, compared against the span id) and a restore
// record joins the undo log. Outside a span this is a single nil check.
// Call it at the top of every mutating method of a journaled component.
func (e *Engine) SpecTouch(epoch *uint64, s SpecSaver) {
	sp := e.spec
	if sp == nil || *epoch == sp.id {
		return
	}
	*epoch = sp.id
	s.SpecSave()
	sp.undo = append(sp.undo, specRec{fn: runSaverRestore, a: s})
}

// SpecUndo appends a raw undo record to the current span's journal: on
// rollback fn(a, b, v1, v2) runs, with records replayed newest-first. Use it
// for fine-grained state where a whole-component checkpoint would be too
// expensive (per-word memory writes, map inserts/deletes, free-list ops).
// No-op outside a span. fn must be a package-level function — a closure here
// would allocate per record.
func (e *Engine) SpecUndo(fn func(a, b any, v1, v2 uint64), a, b any, v1, v2 uint64) {
	sp := e.spec
	if sp == nil {
		return
	}
	sp.undo = append(sp.undo, specRec{fn: fn, a: a, b: b, v1: v1, v2: v2})
}

// SpecOnCommit defers fn(a, b, v1, v2) until the current span commits;
// records run oldest-first. A rolled-back span discards them. Outside a span
// fn runs immediately, so call sites need no branch of their own.
func (e *Engine) SpecOnCommit(fn func(a, b any, v1, v2 uint64), a, b any, v1, v2 uint64) {
	sp := e.spec
	if sp == nil {
		fn(a, b, v1, v2)
		return
	}
	sp.commit = append(sp.commit, specRec{fn: fn, a: a, b: b, v1: v1, v2: v2})
}

// speculate opens a journaled span and executes events in [from, limit).
// Called by the window executor after the conservative portion of the
// window; the span stays open until the barrier resolves it. The span state
// is pooled per engine: reopening reuses the previous span's journal arenas
// and RNG/counter snapshot storage, so a warm span allocates nothing.
func (e *Engine) speculate(limit Time) {
	e.discardCanceledRoot()
	if len(e.queue) == 0 || e.queue[0].when >= limit {
		return
	}
	// Rollback cooloff (noteSpecOutcome): a skip is consumed only here,
	// where a span would otherwise open, so the counter's evolution is a
	// pure function of the deterministic window schedule.
	if s := e.co.specSkip[e.domIdx]; s > 0 {
		e.co.specSkip[e.domIdx] = s - 1
		return
	}
	sp := e.specFree
	if sp == nil {
		sp = new(specState)
	} else {
		e.specFree = nil
	}
	sp.id = e.co.specSpanSeq.Add(1)
	sp.rng = e.rng.State()
	sp.now = e.now
	sp.executed = e.executed
	sp.nextSeq = e.nextSeq
	sp.canceled = e.canceled
	sp.dirtyLen = len(e.dirty)
	sp.ctrlLen = len(e.ctrlq)
	sp.traceLen = len(e.traceBuf)
	sp.stopped = false
	e.spec = sp
	sp.savedComp = e.specSave()
	for !sp.stopped && !e.co.stopReq.Load() {
		e.discardCanceledRoot()
		if len(e.queue) == 0 || e.queue[0].when >= limit {
			return
		}
		ev := e.heapPop()
		e.now = ev.when
		e.executed++
		ev.fn()
		sp.popped = append(sp.popped, ev)
	}
}

// recycleSpan returns a resolved span's journal to the engine's pool with
// every arena cleared but capacity retained.
func (e *Engine) recycleSpan(sp *specState) {
	sp.popped = sp.popped[:0]
	sp.pushed = sp.pushed[:0]
	sp.canceledEvs = sp.canceledEvs[:0]
	sp.undo = sp.undo[:0]
	sp.commit = sp.commit[:0]
	sp.savedComp = nil
	e.specFree = sp
}

// commitSpec finalizes a span: deferred effects run in issue order, retained
// events recycle, span-scheduled events lose their provisional mark, and a
// journaled Stop propagates. Runs on the coordinator at the barrier.
func (e *Engine) commitSpec() {
	sp := e.spec
	e.spec = nil
	for i := range sp.commit {
		r := &sp.commit[i]
		r.fn(r.a, r.b, r.v1, r.v2)
		sp.commit[i] = specRec{}
	}
	for i := range sp.undo {
		sp.undo[i] = specRec{}
	}
	for i, ev := range sp.pushed {
		if ev.index >= 0 {
			ev.specNew = false
		}
		sp.pushed[i] = nil
	}
	for i, ev := range sp.popped {
		e.recycle(ev)
		sp.popped[i] = nil
	}
	for i := range sp.canceledEvs {
		sp.canceledEvs[i] = nil
	}
	if sp.stopped {
		e.co.stopReq.Store(true)
	}
	e.co.specCommits++
	e.co.specCommitEvents += e.executed - sp.executed
	e.recycleSpan(sp)
}

// rollbackSpec rewinds a span. The component journal replays newest-first
// (checkpoint restores and raw undo records interleaved in reverse capture
// order, so the oldest capture wins); then the heap, counters, RNG, trace
// buffer, barrier queues and the eager domain checkpoint rewind. Events the
// span scheduled are erased (their sequence numbers are reissued on
// re-execution, so the replay is bit-for-bit); events it popped are
// re-pushed; events it canceled are revived. Deferred commit effects are
// discarded — the rewound component state still owns those resources. Runs
// on the coordinator at the barrier.
func (e *Engine) rollbackSpec() {
	sp := e.spec
	e.co.specRollbacks++
	e.co.specRollbackEvents += e.executed - sp.executed
	e.spec = nil
	for i := len(sp.undo) - 1; i >= 0; i-- {
		r := &sp.undo[i]
		r.fn(r.a, r.b, r.v1, r.v2)
		sp.undo[i] = specRec{}
	}
	for i := range sp.commit {
		sp.commit[i] = specRec{}
	}
	// Erase span-scheduled events that are still queued. Ones that also
	// fired (or were discarded) inside the span sit on the popped log with
	// index -1 and are recycled below.
	for i, ev := range sp.pushed {
		if ev.index >= 0 {
			e.heapRemove(ev)
			e.recycle(ev)
		}
		sp.pushed[i] = nil
	}
	for i, ev := range sp.popped {
		if ev.specNew {
			e.recycle(ev)
		} else {
			e.heapPush(ev)
		}
		sp.popped[i] = nil
	}
	for i, ev := range sp.canceledEvs {
		ev.canceled = false
		sp.canceledEvs[i] = nil
	}
	e.now = sp.now
	e.executed = sp.executed
	e.nextSeq = sp.nextSeq
	e.canceled = sp.canceled
	e.rng.Restore(sp.rng)
	for i := sp.dirtyLen; i < len(e.dirty); i++ {
		e.dirty[i] = nil
	}
	e.dirty = e.dirty[:sp.dirtyLen]
	for i := sp.ctrlLen; i < len(e.ctrlq); i++ {
		e.ctrlq[i] = nil
	}
	e.ctrlq = e.ctrlq[:sp.ctrlLen]
	for i := sp.traceLen; i < len(e.traceBuf); i++ {
		e.traceBuf[i] = traceLine{}
	}
	e.traceBuf = e.traceBuf[:sp.traceLen]
	e.specRestore(sp.savedComp)
	e.recycleSpan(sp)
}
