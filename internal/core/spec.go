package core

import (
	"repro/internal/gmproto"
	"repro/internal/mcp"
	"repro/internal/sim"
)

// Speculation journaling (sim spec.go) for the host-side control state: the
// driver, the fault tolerance daemon, and the per-port backup stores. All of
// it is node-engine event code — FTD recovery, FAULT_DETECTED handling and
// the library's token housekeeping run inside simulation callbacks on the
// node's own domain, so once the node domain speculates they can execute
// inside an open span and must be restorable.
//
// The driver and FTD are small and cold (they mutate on interrupts and
// recovery phases, not per message), so they use whole-struct first-touch
// shadows. The ShadowStore and RxAckTable are hot — NextSeq/Add/Remove and
// Update run on every send and receive — and their maps grow with the
// outstanding-token population, so a whole-map copy per span would tax
// exactly the path speculation is meant to speed up. They instead keep a
// typed per-operation undo log: each map write appends the displaced entry
// to a pooled log, and restore replays the log newest-first.

// --- Driver ---

// driverShadow is the restore image for Driver.SpecSave/SpecRestore. The
// route table is captured by reference: SetRoutes replaces the map wholesale
// and never edits one in place, so the old map is immutable once displaced.
// Open ports are copied into a fixed array (MaxPorts entries, no alloc).
type driverShadow struct {
	routes       map[gmproto.NodeID][]byte
	routesVer    uint64
	nodeID       gmproto.NodeID
	open         [gmproto.MaxPorts]mcp.EventSink
	openSet      [gmproto.MaxPorts]bool
	fataled      bool
	pendingFatal bool
	loadFails    int
	stats        DriverStats
}

func (d *Driver) specTouch() { d.eng.SpecTouch(&d.specMark, d) }

// SpecSave / SpecRestore implement sim.SpecSaver.
func (d *Driver) SpecSave() {
	d.shadow.routes = d.routes
	d.shadow.routesVer = d.routesVer
	d.shadow.nodeID = d.nodeID
	d.shadow.open = [gmproto.MaxPorts]mcp.EventSink{}
	d.shadow.openSet = [gmproto.MaxPorts]bool{}
	for p, sink := range d.openPorts {
		d.shadow.open[p] = sink
		d.shadow.openSet[p] = true
	}
	d.shadow.fataled = d.fataled
	d.shadow.pendingFatal = d.pendingFatal
	d.shadow.loadFails = d.mcpLoadFailures
	d.shadow.stats = d.stats
}

func (d *Driver) SpecRestore() {
	d.routes = d.shadow.routes
	d.routesVer = d.shadow.routesVer
	d.nodeID = d.shadow.nodeID
	clear(d.openPorts)
	for p := range d.shadow.open {
		if d.shadow.openSet[p] {
			d.openPorts[gmproto.PortID(p)] = d.shadow.open[p]
		}
	}
	d.fataled = d.shadow.fataled
	d.pendingFatal = d.shadow.pendingFatal
	d.mcpLoadFailures = d.shadow.loadFails
	d.stats = d.shadow.stats
}

// --- FTD ---

// ftdShadow is the restore image for FTD.SpecSave/SpecRestore. The timeline
// needs both the pointer and a copy of its marks: MarkFault replaces the
// Timeline wholesale, while Mark inserts into the current one in place, and
// a span can do either (or both).
type ftdShadow struct {
	timeline       *Timeline
	marks          map[Phase]sim.Time
	state          ftdState
	outcome        RecoveryOutcome
	failReason     string
	reloadAttempts int
	restarts       int
	stats          FTDStats
}

// SpecTouch journals the daemon (including its timeline) into the node
// engine's current span on first touch. Exported because the library's
// FAULT_DETECTED handler marks PhaseProcessesDone on the FTD's timeline from
// outside the package.
func (f *FTD) SpecTouch() { f.eng.SpecTouch(&f.specMark, f) }

// SpecSave / SpecRestore implement sim.SpecSaver.
func (f *FTD) SpecSave() {
	f.shadow.timeline = f.timeline
	if f.shadow.marks == nil {
		f.shadow.marks = make(map[Phase]sim.Time, len(f.timeline.marks))
	} else {
		clear(f.shadow.marks)
	}
	for k, v := range f.timeline.marks {
		f.shadow.marks[k] = v
	}
	f.shadow.state = f.state
	f.shadow.outcome = f.outcome
	f.shadow.failReason = f.failReason
	f.shadow.reloadAttempts = f.reloadAttempts
	f.shadow.restarts = f.restarts
	f.shadow.stats = f.stats
}

func (f *FTD) SpecRestore() {
	f.timeline = f.shadow.timeline
	clear(f.timeline.marks)
	for k, v := range f.shadow.marks {
		f.timeline.marks[k] = v
	}
	f.state = f.shadow.state
	f.outcome = f.shadow.outcome
	f.failReason = f.shadow.failReason
	f.reloadAttempts = f.shadow.reloadAttempts
	f.restarts = f.shadow.restarts
	f.stats = f.shadow.stats
}

// --- ShadowStore ---

// shadowOp is one undo record of the ShadowStore's per-operation log: the
// entry a map write displaced. Replayed newest-first on restore.
type shadowOp struct {
	kind uint8
	had  bool
	id   uint64 // token id, or packed seqKey for opSeq
	seq  uint32 // displaced txSeq value (opSeq)
	sTok gmproto.SendToken
	rTok gmproto.RecvToken
}

// shadowOp kinds.
const (
	opSend uint8 = iota // sendTokens[id] was sTok (or absent)
	opRecv              // recvTokens[id] was rTok (or absent)
	opSeq               // txSeq[unpack(id)] was seq (or absent)
)

func packSeqKey(k seqKey) uint64 { return uint64(k.node)<<8 | uint64(k.prio) }

func unpackSeqKey(v uint64) seqKey {
	return seqKey{node: gmproto.NodeID(v >> 8), prio: gmproto.Priority(v)}
}

// Bind attaches the store to its node's engine for speculation journaling.
// The gm library calls it at port creation; an unbound store (tests, sizing
// harnesses) journals nothing.
func (s *ShadowStore) Bind(eng *sim.Engine) { s.eng = eng }

func (s *ShadowStore) specTouch() {
	if s.eng != nil {
		s.eng.SpecTouch(&s.specMark, s)
	}
}

// inSpan reports whether mutations must log undo records: the store is bound
// and the engine is inside an open speculative span. specTouch has always
// run first, so SpecSave has already reset the log for this span.
func (s *ShadowStore) inSpan() bool { return s.eng != nil && s.eng.SpecActive() }

// SpecSave / SpecRestore implement sim.SpecSaver. Save resets the op log and
// records the order-slice lengths; until a scrub or compaction rewrites
// order content, every order mutation is an append and restore is a
// truncation. The first content rewrite of a span snapshots the (still
// pristine) prefix into a pooled buffer instead.
func (s *ShadowStore) SpecSave() {
	clear(s.ops)
	s.ops = s.ops[:0]
	s.sendLen, s.recvLen = len(s.sendOrder), len(s.recvOrder)
	s.sendSnapped, s.recvSnapped = false, false
}

func (s *ShadowStore) SpecRestore() {
	for i := len(s.ops) - 1; i >= 0; i-- {
		op := &s.ops[i]
		switch op.kind {
		case opSend:
			if op.had {
				s.sendTokens[op.id] = op.sTok
			} else {
				delete(s.sendTokens, op.id)
			}
		case opRecv:
			if op.had {
				s.recvTokens[op.id] = op.rTok
			} else {
				delete(s.recvTokens, op.id)
			}
		case opSeq:
			k := unpackSeqKey(op.id)
			if op.had {
				s.txSeq[k] = op.seq
			} else {
				delete(s.txSeq, k)
			}
		}
	}
	if s.sendSnapped {
		s.sendOrder = append(s.sendOrder[:0], s.sendSnap...)
	} else if len(s.sendOrder) > s.sendLen {
		s.sendOrder = s.sendOrder[:s.sendLen]
	}
	if s.recvSnapped {
		s.recvOrder = append(s.recvOrder[:0], s.recvSnap...)
	} else if len(s.recvOrder) > s.recvLen {
		s.recvOrder = s.recvOrder[:s.recvLen]
	}
}

// snapSendOrder captures the span-start prefix of sendOrder before its first
// in-place rewrite. Until that point the span has only appended, so the
// first sendLen entries are exactly the span-start content.
func (s *ShadowStore) snapSendOrder() {
	if !s.inSpan() || s.sendSnapped {
		return
	}
	s.sendSnapped = true
	n := s.sendLen
	if n > len(s.sendOrder) {
		n = len(s.sendOrder)
	}
	s.sendSnap = append(s.sendSnap[:0], s.sendOrder[:n]...)
}

func (s *ShadowStore) snapRecvOrder() {
	if !s.inSpan() || s.recvSnapped {
		return
	}
	s.recvSnapped = true
	n := s.recvLen
	if n > len(s.recvOrder) {
		n = len(s.recvOrder)
	}
	s.recvSnap = append(s.recvSnap[:0], s.recvOrder[:n]...)
}

// logSend records the displaced sendTokens entry for id.
func (s *ShadowStore) logSend(id uint64) {
	if !s.inSpan() {
		return
	}
	old, had := s.sendTokens[id]
	s.ops = append(s.ops, shadowOp{kind: opSend, had: had, id: id, sTok: old})
}

func (s *ShadowStore) logRecv(id uint64) {
	if !s.inSpan() {
		return
	}
	old, had := s.recvTokens[id]
	s.ops = append(s.ops, shadowOp{kind: opRecv, had: had, id: id, rTok: old})
}

func (s *ShadowStore) logSeq(k seqKey) {
	if !s.inSpan() {
		return
	}
	old, had := s.txSeq[k]
	s.ops = append(s.ops, shadowOp{kind: opSeq, had: had, id: packSeqKey(k), seq: old})
}

// --- RxAckTable ---

// rxAckOp is one undo record of the ACK table's log. ackOpEntry restores a
// displaced (stream, seq) entry; ackOpMark restores a stream's displaced
// dirty mark; ackOpEpoch restores the epoch counter and replaced latch.
type rxAckOp struct {
	kind uint8
	id   gmproto.StreamID
	seq  uint32
	had  bool
	mark uint64 // displaced mark (ackOpMark) or epoch (ackOpEpoch)
}

// rxAckOp kinds. ackOpEntry is the zero value so logEntry stays unchanged.
const (
	ackOpEntry uint8 = iota
	ackOpMark
	ackOpEpoch
)

// Bind attaches the table to its node's engine for speculation journaling.
func (t *RxAckTable) Bind(eng *sim.Engine) { t.eng = eng }

func (t *RxAckTable) specTouch() {
	if t.eng != nil {
		t.eng.SpecTouch(&t.specMark, t)
	}
}

func (t *RxAckTable) inSpan() bool { return t.eng != nil && t.eng.SpecActive() }

func (t *RxAckTable) logEntry(id gmproto.StreamID) {
	if !t.inSpan() {
		return
	}
	old, had := t.last[id]
	t.ops = append(t.ops, rxAckOp{id: id, seq: old, had: had})
}

// logEpoch records the epoch counter and replaced latch before a change.
func (t *RxAckTable) logEpoch() {
	if !t.inSpan() {
		return
	}
	t.ops = append(t.ops, rxAckOp{kind: ackOpEpoch, mark: t.epoch, had: t.replaced})
}

// markDirty stamps a stream with the current epoch, journaling the
// displaced mark so a rollback cannot leave false dirt. Callers run it
// after specTouch (it lives inside Update's mutation branch).
func (t *RxAckTable) markDirty(id gmproto.StreamID) {
	if t.epoch == 0 {
		return
	}
	old := t.marks[id]
	if old == t.epoch {
		return
	}
	if t.inSpan() {
		t.ops = append(t.ops, rxAckOp{kind: ackOpMark, id: id, mark: old})
	}
	t.marks[id] = t.epoch
}

// setReplaced latches the replace-all flag for the current epoch.
func (t *RxAckTable) setReplaced() {
	if t.epoch == 0 || t.replaced {
		return
	}
	if t.inSpan() {
		t.ops = append(t.ops, rxAckOp{kind: ackOpEpoch, mark: t.epoch, had: false})
	}
	t.replaced = true
}

// SpecSave / SpecRestore implement sim.SpecSaver.
func (t *RxAckTable) SpecSave() { t.ops = t.ops[:0] }

func (t *RxAckTable) SpecRestore() {
	for i := len(t.ops) - 1; i >= 0; i-- {
		op := &t.ops[i]
		switch op.kind {
		case ackOpEntry:
			if op.had {
				t.last[op.id] = op.seq
			} else {
				delete(t.last, op.id)
			}
		case ackOpMark:
			if op.mark == 0 {
				delete(t.marks, op.id)
			} else {
				t.marks[op.id] = op.mark
			}
		case ackOpEpoch:
			t.epoch, t.replaced = op.mark, op.had
		}
	}
}
