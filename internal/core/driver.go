package core

import (
	"repro/internal/gmproto"
	"repro/internal/host"
	"repro/internal/lanai"
	"repro/internal/mcp"
	"repro/internal/sim"
)

// DriverConfig sets the host driver's timing constants.
type DriverConfig struct {
	// MCPLoadTime is how long loading the control program into LANai SRAM
	// takes; the paper measured ~500,000 µs of the FTD recovery spent in
	// the reload (§5.2).
	MCPLoadTime sim.Duration
	// InterruptLatency is the host interrupt delivery latency, ~13 µs
	// (§5.2).
	InterruptLatency sim.Duration
}

// DefaultDriverConfig matches the paper's measurements.
func DefaultDriverConfig() DriverConfig {
	return DriverConfig{
		MCPLoadTime:      500 * sim.Millisecond,
		InterruptLatency: 13 * sim.Microsecond,
	}
}

// Driver is the GM host device driver of one node: it loads the MCP,
// provides port bookkeeping, keeps the authoritative copies of the mapping
// output and the page hash table, and dispatches the FATAL interrupt to the
// FTD (§4.3). It also implements the naive restart baseline the paper
// argues against (§3).
type Driver struct {
	eng  *sim.Engine
	chip *lanai.Chip
	m    *mcp.MCP
	cfg  DriverConfig

	pageTable *host.PageTable
	routes    map[gmproto.NodeID][]byte
	nodeID    gmproto.NodeID

	// routesVer counts route-table replacements: SetRoutes swaps the whole
	// map, so a version compare is all incremental checkpointing needs to
	// decide whether a delta must re-carry the route section.
	routesVer uint64

	// openPorts remembers each open port's event sink so recovery can
	// reopen them.
	openPorts map[gmproto.PortID]mcp.EventSink

	onFatal      func()
	fataled      bool
	pendingFatal bool

	// onNetFault forwards the MCP's NET_FAULT_SUSPECTED reports (a stream
	// stalled through consecutive silent retransmit timeouts) to the network
	// watchdog, after the usual interrupt delivery latency.
	onNetFault func(gmproto.NodeID)

	// mcpLoadFailures makes the next N MCP loads fail (fault injection:
	// a reload can be disturbed by the same transient that hung the card).
	mcpLoadFailures int

	stats DriverStats

	// Speculation journaling (core spec.go).
	specMark uint64
	shadow   driverShadow
}

// DriverStats counts driver-level events.
type DriverStats struct {
	MCPLoads        uint64
	MCPLoadFailures uint64
	FatalInterrupts uint64
	// SuppressedFatals counts FATAL interrupts that arrived while a
	// recovery was already in hand; they are coalesced and re-delivered
	// once ClearFatal re-arms delivery.
	SuppressedFatals uint64
	NaiveRestarts    uint64
	// NetFaultReports counts NET_FAULT_SUSPECTED interrupts delivered to the
	// host (path-health suspicions raised by the MCP's send streams).
	NetFaultReports uint64
}

// NewDriver builds the driver for a node's chip/MCP pair.
func NewDriver(m *mcp.MCP, cfg DriverConfig) *Driver {
	d := &Driver{
		eng:       m.Chip().Engine(),
		chip:      m.Chip(),
		m:         m,
		cfg:       cfg,
		pageTable: host.NewPageTable(),
		openPorts: make(map[gmproto.PortID]mcp.EventSink),
	}
	d.chip.SetHostInterrupt(d.handleInterrupt)
	m.SetNetFaultSink(d.handleNetFault)
	return d
}

// MCP returns the control program this driver manages.
func (d *Driver) MCP() *mcp.MCP { return d.m }

// Chip returns the managed chip.
func (d *Driver) Chip() *lanai.Chip { return d.chip }

// PageTable returns the node's page hash table (§4.3).
func (d *Driver) PageTable() *host.PageTable { return d.pageTable }

// Stats returns driver counters.
func (d *Driver) Stats() DriverStats { return d.stats }

// SetOnFatal installs the FTD wakeup hook.
func (d *Driver) SetOnFatal(fn func()) { d.onFatal = fn }

// SetOnNetFault installs the network-watchdog wakeup hook: fn receives the
// NodeID of the suspected-dead destination after the interrupt latency.
func (d *Driver) SetOnNetFault(fn func(target gmproto.NodeID)) { d.onNetFault = fn }

// handleNetFault receives the MCP's path-health report. Like the FATAL
// interrupt, the handler itself cannot run a remap (not in process
// context), so it only forwards to the daemon.
func (d *Driver) handleNetFault(target gmproto.NodeID) {
	d.specTouch()
	d.stats.NetFaultReports++
	d.eng.After(d.cfg.InterruptLatency, func() {
		if d.onNetFault != nil {
			d.onNetFault(target)
		}
	})
}

// SetRoutes stores the authoritative route table (mapper output); the FTD
// restores it into a recovering LANai.
func (d *Driver) SetRoutes(id gmproto.NodeID, routes map[gmproto.NodeID][]byte) {
	d.specTouch()
	d.nodeID = id
	d.routesVer++
	d.routes = make(map[gmproto.NodeID][]byte, len(routes))
	for k, v := range routes {
		d.routes[k] = append([]byte(nil), v...)
	}
}

// Routes returns the stored route table.
func (d *Driver) Routes() map[gmproto.NodeID][]byte { return d.routes }

// RoutesVersion returns the route-table replacement counter.
func (d *Driver) RoutesVersion() uint64 { return d.routesVer }

// NodeID returns the stored interface identity.
func (d *Driver) NodeID() gmproto.NodeID { return d.nodeID }

// LoadMCP loads and starts the control program, charging the measured load
// time, then restores identity/routes/page-table registration and calls
// done. Injected load failures are swallowed here; callers that need to
// react to them use LoadMCPChecked.
func (d *Driver) LoadMCP(done func()) {
	d.LoadMCPChecked(func(ok bool) {
		if ok && done != nil {
			done()
		}
	})
}

// LoadMCPChecked is LoadMCP with an explicit success report: the full load
// time is always charged, but an injected failure leaves the chip stopped
// and reports ok=false so the FTD can retry with backoff.
func (d *Driver) LoadMCPChecked(done func(ok bool)) {
	d.specTouch()
	d.stats.MCPLoads++
	d.eng.After(d.cfg.MCPLoadTime, func() {
		d.specTouch()
		if d.mcpLoadFailures > 0 {
			d.mcpLoadFailures--
			d.stats.MCPLoadFailures++
			d.eng.Tracef("driver", "mcp load failed (injected)")
			if done != nil {
				done(false)
			}
			return
		}
		d.m.LoadAndStart()
		if d.routes != nil {
			d.m.SetNodeID(d.nodeID)
		}
		if done != nil {
			done(true)
		}
	})
}

// SetMCPLoadFailures makes the next n MCP loads fail (fault injection).
func (d *Driver) SetMCPLoadFailures(n int) {
	d.specTouch()
	d.mcpLoadFailures = n
}

// OpenPort opens a GM port through the driver, remembering the sink for
// recovery-time reopen.
func (d *Driver) OpenPort(port gmproto.PortID, sink mcp.EventSink) error {
	if err := d.m.HostOpenPort(port, sink); err != nil {
		return err
	}
	d.specTouch()
	d.openPorts[port] = sink
	return nil
}

// ClosePort closes a port and forgets it.
func (d *Driver) ClosePort(port gmproto.PortID) {
	d.specTouch()
	d.m.HostClosePort(port)
	d.pageTable.SpecTouch(d.eng)
	d.pageTable.UnpinPort(int(port))
	delete(d.openPorts, port)
}

// OpenPorts lists open ports in ascending order.
func (d *Driver) OpenPorts() []gmproto.PortID {
	var out []gmproto.PortID
	for p := gmproto.PortID(0); int(p) < gmproto.MaxPorts; p++ {
		if _, ok := d.openPorts[p]; ok {
			out = append(out, p)
		}
	}
	return out
}

// PortSink returns the remembered event sink of a port.
func (d *Driver) PortSink(port gmproto.PortID) mcp.EventSink { return d.openPorts[port] }

// handleInterrupt receives chip interrupts. A watchdog (IT1) expiry is the
// FATAL interrupt: the handler cannot run the recovery itself (it is not in
// process context — no sleep() or malloc(), §4.3), so it only wakes the
// daemon, after the interrupt delivery latency.
func (d *Driver) handleInterrupt(isr uint32) {
	if isr&lanai.ISRTimer1 == 0 {
		return
	}
	d.specTouch()
	if d.fataled {
		// A recovery is already in hand. Don't wake the FTD again —
		// remember the report and re-deliver it once delivery is re-armed,
		// so a hang that lands mid-recovery is never silently lost.
		d.pendingFatal = true
		d.stats.SuppressedFatals++
		return
	}
	d.fataled = true
	d.stats.FatalInterrupts++
	d.eng.After(d.cfg.InterruptLatency, func() {
		if d.onFatal != nil {
			d.onFatal()
		}
	})
}

// ClearFatal re-arms FATAL interrupt delivery (recovery finished). A FATAL
// that was suppressed during the recovery is re-delivered now; the FTD's
// magic-word verification then decides whether it still warrants a reset.
func (d *Driver) ClearFatal() {
	d.specTouch()
	d.fataled = false
	if !d.pendingFatal {
		return
	}
	d.pendingFatal = false
	d.fataled = true
	d.stats.FatalInterrupts++
	d.eng.After(d.cfg.InterruptLatency, func() {
		if d.onFatal != nil {
			d.onFatal()
		}
	})
}

// NaiveRestart is the baseline recovery the paper shows to be incorrect
// (§3): reset the card, reload the MCP, restore routes and reopen ports —
// but restore none of the protocol state. The reloaded MCP re-generates
// sequence numbers from scratch and adopts NACK expectations (Figure 4);
// messages that were ACKed but not yet DMAed are gone (Figure 5). The
// caller re-posts whatever tokens the application still remembers.
func (d *Driver) NaiveRestart(done func()) {
	d.specTouch()
	d.stats.NaiveRestarts++
	d.chip.Reset()
	d.chip.ClearSRAM()
	d.LoadMCP(func() {
		if d.routes != nil {
			d.m.UploadRoutes(d.routes)
		}
		d.m.RegisterPageTable(d.pageTable.Len())
		for _, port := range d.OpenPorts() {
			d.m.ReopenPort(port, d.openPorts[port])
		}
		d.m.SetAdoptNackSeq(true)
		d.ClearFatal()
		if done != nil {
			done()
		}
	})
}
