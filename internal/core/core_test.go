package core

import (
	"testing"
	"testing/quick"

	"repro/internal/gmproto"
	"repro/internal/host"
	"repro/internal/lanai"
	"repro/internal/mcp"
	"repro/internal/sim"
)

func TestShadowStoreSendTokens(t *testing.T) {
	s := NewShadowStore(2)
	if s.Port() != 2 {
		t.Errorf("Port = %d", s.Port())
	}
	for i := uint64(1); i <= 3; i++ {
		s.AddSendToken(gmproto.SendToken{ID: i, Seq: uint32(i)})
	}
	s.RemoveSendToken(2)
	out := s.OutstandingSends()
	if len(out) != 2 || out[0].ID != 1 || out[1].ID != 3 {
		t.Fatalf("outstanding = %+v", out)
	}
	// Order is stable across repeated queries.
	out2 := s.OutstandingSends()
	if len(out2) != 2 || out2[0].ID != 1 {
		t.Fatalf("second query = %+v", out2)
	}
	sends, recvs := s.Counts()
	if sends != 2 || recvs != 0 {
		t.Errorf("Counts = %d, %d", sends, recvs)
	}
}

func TestShadowStoreRecvTokens(t *testing.T) {
	s := NewShadowStore(0)
	s.AddRecvToken(gmproto.RecvToken{ID: 10, Size: 4096})
	s.AddRecvToken(gmproto.RecvToken{ID: 11, Size: 4096})
	s.RemoveRecvToken(10)
	out := s.OutstandingRecvs()
	if len(out) != 1 || out[0].ID != 11 {
		t.Fatalf("outstanding = %+v", out)
	}
}

func TestShadowStoreSeqStreams(t *testing.T) {
	s := NewShadowStore(1)
	// Independent streams per remote node and priority (§4.1, §3.1).
	if s.NextSeq(5, gmproto.PriorityLow) != 1 || s.NextSeq(5, gmproto.PriorityLow) != 2 {
		t.Fatal("stream not advancing")
	}
	if s.NextSeq(7, gmproto.PriorityLow) != 1 {
		t.Fatal("streams not independent per destination")
	}
	if s.NextSeq(5, gmproto.PriorityHigh) != 1 {
		t.Fatal("priority levels share a sequence space")
	}
}

func TestShadowStoreDuplicateAdd(t *testing.T) {
	s := NewShadowStore(1)
	s.AddSendToken(gmproto.SendToken{ID: 1, Seq: 1})
	s.AddSendToken(gmproto.SendToken{ID: 1, Seq: 9}) // overwrite, not duplicate
	out := s.OutstandingSends()
	if len(out) != 1 || out[0].Seq != 9 {
		t.Fatalf("outstanding = %+v", out)
	}
}

func TestRxAckTable(t *testing.T) {
	tab := NewRxAckTable()
	id := gmproto.StreamID{Node: 3, Port: 1}
	tab.Update(id, 5)
	tab.Update(id, 3) // regressions ignored
	if tab.Last(id) != 5 {
		t.Errorf("Last = %d", tab.Last(id))
	}
	snap := tab.Snapshot()
	snap[id] = 99
	if tab.Last(id) != 5 {
		t.Error("Snapshot aliases internal state")
	}
	if tab.Len() != 1 {
		t.Errorf("Len = %d", tab.Len())
	}
}

// rig builds a single-node driver/FTD test rig.
type rig struct {
	eng    *sim.Engine
	chip   *lanai.Chip
	m      *mcp.MCP
	driver *Driver
	ftd    *FTD
}

func newRig(t *testing.T, mode mcp.Mode) *rig {
	t.Helper()
	eng := sim.NewEngine(1)
	pci := host.NewPCIBus(eng, "pci", host.DefaultPCIConfig())
	chip := lanai.New(eng, "lanai", lanai.DefaultConfig(), pci)
	m := mcp.New(chip, mcp.DefaultConfig(), mode)
	m.SetNodeID(1)
	d := NewDriver(m, DefaultDriverConfig())
	d.SetRoutes(1, map[gmproto.NodeID][]byte{2: {1}})
	f := NewFTD(d, DefaultFTDConfig())
	m.LoadAndStart()
	return &rig{eng: eng, chip: chip, m: m, driver: d, ftd: f}
}

func TestDriverLoadMCPTiming(t *testing.T) {
	eng := sim.NewEngine(1)
	pci := host.NewPCIBus(eng, "pci", host.DefaultPCIConfig())
	chip := lanai.New(eng, "lanai", lanai.DefaultConfig(), pci)
	m := mcp.New(chip, mcp.DefaultConfig(), mcp.ModeFTGM)
	d := NewDriver(m, DefaultDriverConfig())
	var loadedAt sim.Time
	d.LoadMCP(func() { loadedAt = eng.Now() })
	eng.RunUntil(sim.Second)
	if loadedAt != 500*sim.Millisecond {
		t.Errorf("loaded at %v, want 500ms", loadedAt)
	}
	if !chip.Running() {
		t.Error("chip not running after load")
	}
	if d.Stats().MCPLoads != 1 {
		t.Error("load not counted")
	}
}

func TestDriverPortBookkeeping(t *testing.T) {
	r := newRig(t, mcp.ModeFTGM)
	sink := func(ev gmproto.Event) {}
	if err := r.driver.OpenPort(2, sink); err != nil {
		t.Fatal(err)
	}
	if err := r.driver.OpenPort(5, sink); err != nil {
		t.Fatal(err)
	}
	ports := r.driver.OpenPorts()
	if len(ports) != 2 || ports[0] != 2 || ports[1] != 5 {
		t.Fatalf("OpenPorts = %v", ports)
	}
	if r.driver.PortSink(2) == nil {
		t.Error("sink lost")
	}
	r.driver.ClosePort(2)
	if len(r.driver.OpenPorts()) != 1 {
		t.Error("close did not unregister")
	}
}

func TestFullDetectionAndRecoveryTimeline(t *testing.T) {
	r := newRig(t, mcp.ModeFTGM)
	var events []gmproto.Event
	if err := r.driver.OpenPort(2, func(ev gmproto.Event) { events = append(events, ev) }); err != nil {
		t.Fatal(err)
	}
	var tl *Timeline
	r.ftd.OnRecovered = func(timeline *Timeline) { tl = timeline }

	// Let normal operation settle, then hang the LANai.
	r.eng.RunUntil(10 * sim.Millisecond)
	r.ftd.MarkFault()
	r.m.InjectHang()
	r.eng.RunUntil(5 * sim.Second)

	if tl == nil {
		t.Fatal("recovery never completed")
	}
	det := tl.DetectionTime()
	if det < 200*sim.Microsecond || det > 1200*sim.Microsecond {
		t.Errorf("detection time = %v, want sub-ms (Table 3: ~800us)", det)
	}
	ftdTime := tl.FTDTime()
	if ftdTime < 600*sim.Millisecond || ftdTime > 900*sim.Millisecond {
		t.Errorf("FTD time = %v, want ~765ms (Table 3)", ftdTime)
	}
	reload := tl.ReloadTime()
	if reload < 490*sim.Millisecond || reload > 510*sim.Millisecond {
		t.Errorf("reload time = %v, want ~500ms", reload)
	}
	// FAULT_DETECTED reached the port.
	found := false
	for _, ev := range events {
		if ev.Type == gmproto.EvFaultDetected && ev.Port == 2 {
			found = true
		}
	}
	if !found {
		t.Error("no FAULT_DETECTED event posted")
	}
	if !r.chip.Running() {
		t.Error("chip not running after recovery")
	}
	if r.ftd.Stats().Recoveries != 1 || r.ftd.Stats().PortsRecovered != 1 {
		t.Errorf("ftd stats = %+v", r.ftd.Stats())
	}
}

func TestFTDFalseAlarm(t *testing.T) {
	r := newRig(t, mcp.ModeFTGM)
	// Raise the watchdog ISR bit without an actual hang: the MCP is alive,
	// clears the magic word, and the FTD stands down.
	r.eng.RunUntil(5 * sim.Millisecond)
	r.chip.RaiseISR(lanai.ISRTimer1)
	r.eng.RunUntil(100 * sim.Millisecond)
	if r.ftd.Stats().FalseAlarms != 1 {
		t.Fatalf("FalseAlarms = %d, want 1", r.ftd.Stats().FalseAlarms)
	}
	if r.ftd.Stats().Recoveries != 0 {
		t.Error("false alarm triggered a recovery")
	}
	if r.chip.Stats().Resets != 0 {
		t.Error("false alarm reset the card")
	}
}

func TestHardHangNotDetected(t *testing.T) {
	// When the fault kills the timer/interrupt logic too, the watchdog
	// cannot fire — the assumption of §4.2 is violated.
	r := newRig(t, mcp.ModeFTGM)
	r.eng.RunUntil(5 * sim.Millisecond)
	r.m.InjectHardHang()
	r.eng.RunUntil(3 * sim.Second)
	if r.ftd.Stats().Wakeups != 0 {
		t.Error("hard hang woke the FTD")
	}
}

func TestRecoveryRearmsForNextFault(t *testing.T) {
	r := newRig(t, mcp.ModeFTGM)
	if err := r.driver.OpenPort(1, func(ev gmproto.Event) {}); err != nil {
		t.Fatal(err)
	}
	recovered := 0
	r.ftd.OnRecovered = func(tl *Timeline) { recovered++ }
	r.eng.RunUntil(10 * sim.Millisecond)
	r.m.InjectHang()
	r.eng.RunUntil(5 * sim.Second)
	if recovered != 1 {
		t.Fatalf("first recovery count = %d", recovered)
	}
	// Second fault after the first recovery: the FTD must stand guard
	// again ("rewinding and standing guard for the recovery of the next
	// fault", §4.3).
	r.m.InjectHang()
	r.eng.RunUntil(10 * sim.Second)
	if recovered != 2 {
		t.Fatalf("second recovery count = %d", recovered)
	}
}

func TestNaiveRestartRestoresNoState(t *testing.T) {
	r := newRig(t, mcp.ModeGM)
	var events []gmproto.Event
	if err := r.driver.OpenPort(1, func(ev gmproto.Event) { events = append(events, ev) }); err != nil {
		t.Fatal(err)
	}
	r.eng.RunUntil(5 * sim.Millisecond)
	r.m.InjectHang()
	done := false
	r.driver.NaiveRestart(func() { done = true })
	r.eng.RunUntil(2 * sim.Second)
	if !done {
		t.Fatal("naive restart did not finish")
	}
	if !r.chip.Running() {
		t.Error("chip not running")
	}
	if !r.m.PortOpen(1) {
		t.Error("port not reopened")
	}
	// No FAULT_DETECTED in naive mode: the application never learns.
	for _, ev := range events {
		if ev.Type == gmproto.EvFaultDetected {
			t.Error("naive restart posted FAULT_DETECTED")
		}
	}
	if r.driver.Stats().NaiveRestarts != 1 {
		t.Error("restart not counted")
	}
}

func TestTimelinePhases(t *testing.T) {
	tl := NewTimeline()
	tl.Mark(PhaseFaultInjected, 100)
	tl.Mark(PhaseFTDWake, 900)
	tl.Mark(PhaseEventsPosted, 765900)
	tl.Mark(PhaseProcessesDone, 1665900)
	tl.Mark(PhaseFaultInjected, 999999) // first mark wins
	if tl.DetectionTime() != 800 {
		t.Errorf("DetectionTime = %v", tl.DetectionTime())
	}
	if tl.FTDTime() != 765000 {
		t.Errorf("FTDTime = %v", tl.FTDTime())
	}
	if tl.PerProcessTime() != 900000 {
		t.Errorf("PerProcessTime = %v", tl.PerProcessTime())
	}
	if tl.TotalTime() != 1665800 {
		t.Errorf("TotalTime = %v", tl.TotalTime())
	}
	phases := tl.Phases()
	if len(phases) != 4 || phases[0].Phase != PhaseFaultInjected {
		t.Errorf("Phases = %+v", phases)
	}
	if tl.span(PhaseProcessesDone, PhaseFaultInjected) != 0 {
		t.Error("reversed span not zero")
	}
	for p := PhaseFaultInjected; p <= PhaseProcessesDone; p++ {
		if p.String() == "" {
			t.Error("empty phase name")
		}
	}
}

// Property: the shadow store's outstanding-token sets behave exactly like
// a model map with insertion order, under any interleaving of adds and
// removes.
func TestPropertyShadowStoreModel(t *testing.T) {
	f := func(ops []uint16) bool {
		s := NewShadowStore(1)
		model := make(map[uint64]gmproto.SendToken)
		var order []uint64
		for _, op := range ops {
			id := uint64(op%32) + 1
			if op&0x8000 == 0 {
				tok := gmproto.SendToken{ID: id, Seq: uint32(op)}
				if _, ok := model[id]; !ok {
					// Fresh (or re-added) ids go to the back of the queue.
					keep := order[:0]
					for _, v := range order {
						if v != id {
							keep = append(keep, v)
						}
					}
					order = append(keep, id)
				}
				model[id] = tok
				s.AddSendToken(tok)
			} else {
				delete(model, id)
				s.RemoveSendToken(id)
			}
		}
		got := s.OutstandingSends()
		if len(got) != len(model) {
			return false
		}
		i := 0
		for _, id := range order {
			want, ok := model[id]
			if !ok {
				continue
			}
			if got[i].ID != id || got[i].Seq != want.Seq {
				return false
			}
			i++
		}
		return i == len(got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the RxAckTable is a per-stream running maximum.
func TestPropertyRxAckTableMax(t *testing.T) {
	f := func(updates []uint32) bool {
		tab := NewRxAckTable()
		want := make(map[gmproto.StreamID]uint32)
		for i, seq := range updates {
			id := gmproto.StreamID{Node: gmproto.NodeID(i % 3), Port: gmproto.PortID(i % 2)}
			tab.Update(id, seq)
			if seq > want[id] {
				want[id] = seq
			}
		}
		for id, w := range want {
			if tab.Last(id) != w {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
