package core

import (
	"repro/internal/gmproto"
	"repro/internal/sim"
)

// NetWatchConfig tunes the network watchdog daemon.
type NetWatchConfig struct {
	// Enabled turns the daemon on. The detection counters in the MCP run
	// regardless; without the daemon the reports go nowhere (stock FTGM).
	Enabled bool

	// DebounceWindow is how long the daemon coalesces suspicion reports
	// before triggering a remap: one dead trunk stalls many streams at once,
	// and one remap repairs them all.
	DebounceWindow sim.Duration
	// DebounceCap bounds the escalated debounce delay (see QuietPeriod).
	DebounceCap sim.Duration
	// QuietPeriod separates incidents: suspicions arriving within this span
	// of the previous incident escalate the debounce delay (doubling, capped
	// at DebounceCap) instead of triggering back-to-back remaps — a peer
	// mid-FTD-recovery stalls its senders for over a second, and remapping
	// every few tens of milliseconds through that would be churn.
	QuietPeriod sim.Duration

	// RemapBackoffBase/RemapBackoffCap shape the retry delay after a failed
	// remap (the mapper did not converge — the fabric is still flapping):
	// capped exponential backoff, retried indefinitely.
	RemapBackoffBase sim.Duration
	RemapBackoffCap  sim.Duration

	// ProbeInterval is how often the daemon re-runs the mapper while any
	// peer stands expelled, so a repaired partition readmits automatically.
	// 0 disables probing.
	ProbeInterval sim.Duration

	// UnreachableGrace is how long an interface must stay missing from
	// successive maps before it is declared unreachable. It must comfortably
	// exceed one FTD recovery (~1.7 s virtual), which also makes a node
	// invisible to scouts; expelling a peer that is merely mid-recovery
	// would fail sends that recovery was about to deliver.
	UnreachableGrace sim.Duration
}

// DefaultNetWatchConfig returns the calibrated policy, disabled.
func DefaultNetWatchConfig() NetWatchConfig {
	return NetWatchConfig{
		Enabled:          false,
		DebounceWindow:   50 * sim.Millisecond,
		DebounceCap:      sim.Second,
		QuietPeriod:      sim.Second,
		RemapBackoffBase: 100 * sim.Millisecond,
		RemapBackoffCap:  2 * sim.Second,
		ProbeInterval:    2 * sim.Second,
		UnreachableGrace: 5 * sim.Second,
	}
}

// NetWatchStats counts the daemon's activity.
type NetWatchStats struct {
	// Suspicions counts NET_FAULT_SUSPECTED reports received.
	Suspicions uint64
	// Incidents counts debounced suspicion bursts that opened a remap cycle.
	Incidents uint64
	// Remaps counts successfully installed remaps.
	Remaps uint64
	// RemapFailures counts remap attempts that did not converge.
	RemapFailures uint64
	// Probes counts readmission probes (remaps run with no fresh suspicion,
	// looking for expelled peers that came back).
	Probes uint64
	// Unreachable counts terminal unreachable verdicts declared.
	Unreachable uint64
	// Readmissions counts expelled peers welcomed back by a later map.
	Readmissions uint64
}

// netwatch states.
const (
	nwIdle = iota
	nwDebouncing
	nwRemapping
	nwBackoff
)

// NetWatch is the network watchdog daemon — the FTD's sibling for fabric
// faults. The driver feeds it the MCP's path-health suspicions; it debounces
// them, triggers an automatic remap through the hook the cluster installs,
// retries with capped backoff while the fabric is flapping, and, while any
// peer stands expelled, probes periodically so repaired links readmit the
// peer without operator action.
//
// Like every daemon here it is single-threaded in virtual time: all methods
// run inside simulation callbacks.
type NetWatch struct {
	eng *sim.Engine
	cfg NetWatchConfig

	// remap runs one asynchronous remap attempt and reports success. The
	// cluster installs it; it must not pump the engine.
	remap func(done func(ok bool))

	state        int
	failures     int // consecutive remap failures, for backoff
	streak       int // incidents without a QuietPeriod of calm, for debounce escalation
	pending      bool
	lastIncident sim.Time
	// expelled tracks how many peers currently stand unreachable (the
	// cluster reports verdicts and readmissions); probing runs while > 0.
	expelled     int
	probePending bool

	stats NetWatchStats
}

// NewNetWatch builds the daemon; the cluster must SetRemap before the first
// suspicion arrives.
func NewNetWatch(eng *sim.Engine, cfg NetWatchConfig) *NetWatch {
	def := DefaultNetWatchConfig()
	if cfg.DebounceWindow <= 0 {
		cfg.DebounceWindow = def.DebounceWindow
	}
	if cfg.DebounceCap <= 0 {
		cfg.DebounceCap = def.DebounceCap
	}
	if cfg.QuietPeriod <= 0 {
		cfg.QuietPeriod = def.QuietPeriod
	}
	if cfg.RemapBackoffBase <= 0 {
		cfg.RemapBackoffBase = def.RemapBackoffBase
	}
	if cfg.RemapBackoffCap <= 0 {
		cfg.RemapBackoffCap = def.RemapBackoffCap
	}
	if cfg.UnreachableGrace <= 0 {
		cfg.UnreachableGrace = def.UnreachableGrace
	}
	return &NetWatch{eng: eng, cfg: cfg}
}

// SetRemap installs the remap trigger.
func (nw *NetWatch) SetRemap(fn func(done func(ok bool))) { nw.remap = fn }

// Stats returns a snapshot of the daemon's counters.
func (nw *NetWatch) Stats() NetWatchStats { return nw.stats }

// Suspect receives one NET_FAULT_SUSPECTED report (target is the peer whose
// stream stalled). Reports landing during a debounce window coalesce;
// reports landing mid-remap mark the cycle dirty so another remap follows.
func (nw *NetWatch) Suspect(target gmproto.NodeID) {
	nw.stats.Suspicions++
	switch nw.state {
	case nwIdle:
		now := nw.eng.Now()
		if nw.lastIncident != 0 && now-nw.lastIncident > sim.Duration(nw.cfg.QuietPeriod) {
			nw.streak = 0
		}
		nw.openIncident(target)
	case nwDebouncing:
		// Coalesced into the open window.
	default:
		nw.pending = true
	}
}

func (nw *NetWatch) openIncident(target gmproto.NodeID) {
	nw.streak++
	nw.lastIncident = nw.eng.Now()
	nw.stats.Incidents++
	nw.state = nwDebouncing
	delay := nw.escalatedDebounce()
	nw.eng.Tracef("netwatch", "suspicion about node %d: remap in %v", target, delay)
	nw.eng.AfterLabel(delay, "netwatch-debounce", nw.startRemap)
}

// escalatedDebounce doubles the debounce delay per incident in a streak,
// capped: a peer stalling its senders for a long stretch (e.g. mid-FTD-
// recovery) triggers a handful of escalating remaps, not hundreds.
func (nw *NetWatch) escalatedDebounce() sim.Duration {
	d := nw.cfg.DebounceWindow
	for i := 1; i < nw.streak && d < nw.cfg.DebounceCap; i++ {
		d *= 2
	}
	if d > nw.cfg.DebounceCap {
		d = nw.cfg.DebounceCap
	}
	return d
}

func (nw *NetWatch) startRemap() {
	nw.state = nwRemapping
	nw.pending = false
	if nw.remap == nil {
		nw.remapDone(false)
		return
	}
	nw.remap(nw.remapDone)
}

func (nw *NetWatch) remapDone(ok bool) {
	if ok {
		nw.stats.Remaps++
		nw.failures = 0
		nw.lastIncident = nw.eng.Now()
		if nw.pending {
			// Suspicions kept arriving while the remap ran: the fault is
			// not (fully) repaired — go around again, escalated.
			nw.pending = false
			nw.streak++
			nw.state = nwDebouncing
			nw.eng.AfterLabel(nw.escalatedDebounce(), "netwatch-debounce", nw.startRemap)
		} else {
			nw.state = nwIdle
		}
	} else {
		nw.stats.RemapFailures++
		nw.failures++
		delay := nw.cfg.RemapBackoffBase
		for i := 1; i < nw.failures && delay < nw.cfg.RemapBackoffCap; i++ {
			delay *= 2
		}
		if delay > nw.cfg.RemapBackoffCap {
			delay = nw.cfg.RemapBackoffCap
		}
		nw.eng.Tracef("netwatch", "remap failed; retry in %v", delay)
		nw.state = nwBackoff
		nw.eng.AfterLabel(delay, "netwatch-backoff", nw.startRemap)
	}
	nw.maybeScheduleProbe()
}

// NoteUnreachable records a terminal unreachable verdict (the cluster calls
// this when it expels a peer) and starts readmission probing.
func (nw *NetWatch) NoteUnreachable() {
	nw.stats.Unreachable++
	nw.expelled++
	nw.maybeScheduleProbe()
}

// NoteReadmitted records that an expelled peer rejoined the map.
func (nw *NetWatch) NoteReadmitted() {
	nw.stats.Readmissions++
	if nw.expelled > 0 {
		nw.expelled--
	}
}

func (nw *NetWatch) maybeScheduleProbe() {
	if nw.cfg.ProbeInterval <= 0 || nw.probePending || nw.expelled <= 0 {
		return
	}
	nw.probePending = true
	nw.eng.AfterLabel(nw.cfg.ProbeInterval, "netwatch-probe", func() {
		nw.probePending = false
		if nw.expelled <= 0 {
			return
		}
		if nw.state != nwIdle {
			// A remap cycle is in hand; it doubles as the probe.
			nw.maybeScheduleProbe()
			return
		}
		nw.stats.Probes++
		nw.startRemap()
	})
}
