package core

import (
	"testing"

	"repro/internal/sim"
)

// nwHarness wires a NetWatch to a scripted remap function.
type nwHarness struct {
	eng *sim.Engine
	nw  *NetWatch

	// results is popped once per remap attempt; empty means succeed.
	results []bool
	// attempts records the virtual times remaps were triggered.
	attempts []sim.Time
	// remapDelay is charged before each attempt reports its result.
	remapDelay sim.Duration
}

func newNWHarness(t *testing.T, cfg NetWatchConfig) *nwHarness {
	t.Helper()
	h := &nwHarness{eng: sim.NewEngine(1), remapDelay: 10 * sim.Millisecond}
	h.nw = NewNetWatch(h.eng, cfg)
	h.nw.SetRemap(func(done func(ok bool)) {
		h.attempts = append(h.attempts, h.eng.Now())
		ok := true
		if len(h.results) > 0 {
			ok = h.results[0]
			h.results = h.results[1:]
		}
		h.eng.After(h.remapDelay, func() { done(ok) })
	})
	return h
}

func TestNetWatchDebounceCoalesces(t *testing.T) {
	h := newNWHarness(t, DefaultNetWatchConfig())

	// A burst of suspicions from many stalled streams within the debounce
	// window must trigger exactly one remap.
	for i := 0; i < 8; i++ {
		d := sim.Duration(i) * sim.Millisecond
		h.eng.After(d, func() { h.nw.Suspect(2) })
	}
	h.eng.RunUntil(sim.Second)

	if got := len(h.attempts); got != 1 {
		t.Fatalf("remap attempts = %d, want 1 (burst must coalesce)", got)
	}
	// First suspicion at t=0, default debounce 50 ms.
	if h.attempts[0] != 50*sim.Millisecond {
		t.Fatalf("remap at %v, want 50ms", h.attempts[0])
	}
	st := h.nw.Stats()
	if st.Suspicions != 8 || st.Incidents != 1 || st.Remaps != 1 {
		t.Fatalf("stats = %+v, want 8 suspicions / 1 incident / 1 remap", st)
	}
}

func TestNetWatchSuspicionDuringRemapTriggersAnother(t *testing.T) {
	h := newNWHarness(t, DefaultNetWatchConfig())

	h.eng.After(0, func() { h.nw.Suspect(2) })
	// Lands at t=55ms, while the remap started at t=50ms is in flight.
	h.eng.After(55*sim.Millisecond, func() { h.nw.Suspect(3) })
	h.eng.RunUntil(5 * sim.Second)

	if got := len(h.attempts); got != 2 {
		t.Fatalf("remap attempts = %d, want 2 (dirty cycle must rerun)", got)
	}
	if st := h.nw.Stats(); st.Remaps != 2 {
		t.Fatalf("Remaps = %d, want 2", st.Remaps)
	}
}

func TestNetWatchBackoffOnFailure(t *testing.T) {
	cfg := DefaultNetWatchConfig()
	h := newNWHarness(t, cfg)
	h.results = []bool{false, false, false, true}

	h.eng.After(0, func() { h.nw.Suspect(2) })
	h.eng.RunUntil(30 * sim.Second)

	if got := len(h.attempts); got != 4 {
		t.Fatalf("remap attempts = %d, want 4 (3 failures then success)", got)
	}
	// Gaps between retries: remapDelay + base, then doubled base.
	gap1 := h.attempts[1] - h.attempts[0]
	gap2 := h.attempts[2] - h.attempts[1]
	gap3 := h.attempts[3] - h.attempts[2]
	want1 := h.remapDelay + cfg.RemapBackoffBase
	if gap1 != want1 {
		t.Fatalf("first retry gap = %v, want %v", gap1, want1)
	}
	if gap2 != h.remapDelay+2*cfg.RemapBackoffBase {
		t.Fatalf("second retry gap = %v, want %v", gap2, h.remapDelay+2*cfg.RemapBackoffBase)
	}
	if gap3 != h.remapDelay+4*cfg.RemapBackoffBase {
		t.Fatalf("third retry gap = %v, want %v", gap3, h.remapDelay+4*cfg.RemapBackoffBase)
	}
	st := h.nw.Stats()
	if st.RemapFailures != 3 || st.Remaps != 1 {
		t.Fatalf("stats = %+v, want 3 failures / 1 remap", st)
	}
}

func TestNetWatchBackoffCapped(t *testing.T) {
	cfg := DefaultNetWatchConfig()
	h := newNWHarness(t, cfg)
	// Fail 8 times; the retry delay must cap at RemapBackoffCap.
	h.results = []bool{false, false, false, false, false, false, false, false}

	h.eng.After(0, func() { h.nw.Suspect(2) })
	h.eng.RunUntil(60 * sim.Second)

	if got := len(h.attempts); got < 8 {
		t.Fatalf("remap attempts = %d, want >= 8", got)
	}
	for i := 6; i < 8; i++ {
		gap := h.attempts[i] - h.attempts[i-1]
		want := h.remapDelay + cfg.RemapBackoffCap
		if gap != want {
			t.Fatalf("retry gap %d = %v, want capped %v", i, gap, want)
		}
	}
}

func TestNetWatchStreakEscalatesDebounce(t *testing.T) {
	cfg := DefaultNetWatchConfig()
	h := newNWHarness(t, cfg)

	// Three incidents in quick succession (each new suspicion lands after
	// the previous cycle finished but within QuietPeriod): debounce doubles.
	h.eng.After(0, func() { h.nw.Suspect(2) })                   // incident 1: debounce 50ms
	h.eng.After(100*sim.Millisecond, func() { h.nw.Suspect(2) }) // incident 2: 100ms
	h.eng.After(300*sim.Millisecond, func() { h.nw.Suspect(2) }) // incident 3: 200ms
	h.eng.RunUntil(5 * sim.Second)

	if got := len(h.attempts); got != 3 {
		t.Fatalf("remap attempts = %d, want 3", got)
	}
	if h.attempts[0] != 50*sim.Millisecond {
		t.Fatalf("incident 1 remap at %v, want 50ms", h.attempts[0])
	}
	if h.attempts[1] != 200*sim.Millisecond {
		t.Fatalf("incident 2 remap at %v, want 200ms (100ms debounce)", h.attempts[1])
	}
	if h.attempts[2] != 500*sim.Millisecond {
		t.Fatalf("incident 3 remap at %v, want 500ms (200ms debounce)", h.attempts[2])
	}

	// After a QuietPeriod of calm the streak resets to the base window.
	h.nw.Suspect(2)
	h.eng.RunUntil(h.eng.Now() + sim.Second)
	if got := len(h.attempts); got != 4 {
		t.Fatalf("remap attempts = %d, want 4", got)
	}
	gap := h.attempts[3] - (5 * sim.Second)
	if gap != cfg.DebounceWindow {
		t.Fatalf("post-calm debounce = %v, want base %v", gap, cfg.DebounceWindow)
	}
}

func TestNetWatchProbesWhileExpelled(t *testing.T) {
	cfg := DefaultNetWatchConfig()
	h := newNWHarness(t, cfg)

	h.eng.After(0, func() { h.nw.NoteUnreachable() })
	h.eng.RunUntil(3 * cfg.ProbeInterval)

	st := h.nw.Stats()
	if st.Probes < 2 {
		t.Fatalf("Probes = %d, want >= 2 while a peer stands expelled", st.Probes)
	}
	if len(h.attempts) != int(st.Probes) {
		t.Fatalf("attempts = %d, want one per probe (%d)", len(h.attempts), st.Probes)
	}

	// Readmission stops the probing.
	h.nw.NoteReadmitted()
	before := h.nw.Stats().Probes
	h.eng.RunUntil(h.eng.Now() + 5*cfg.ProbeInterval)
	if after := h.nw.Stats().Probes; after > before+1 {
		t.Fatalf("probes kept firing after readmission: %d -> %d", before, after)
	}
	if st := h.nw.Stats(); st.Unreachable != 1 || st.Readmissions != 1 {
		t.Fatalf("stats = %+v, want 1 unreachable / 1 readmission", st)
	}
}
