package core

import (
	"testing"

	"repro/internal/sim"
)

// nwHarness wires a NetWatch to a scripted remap function.
type nwHarness struct {
	eng *sim.Engine
	nw  *NetWatch

	// results is popped once per remap attempt; empty means succeed.
	results []bool
	// attempts records the virtual times remaps were triggered.
	attempts []sim.Time
	// remapDelay is charged before each attempt reports its result.
	remapDelay sim.Duration
}

func newNWHarness(t *testing.T, cfg NetWatchConfig) *nwHarness {
	t.Helper()
	h := &nwHarness{eng: sim.NewEngine(1), remapDelay: 10 * sim.Millisecond}
	h.nw = NewNetWatch(h.eng, cfg)
	h.nw.SetRemap(func(done func(ok bool)) {
		h.attempts = append(h.attempts, h.eng.Now())
		ok := true
		if len(h.results) > 0 {
			ok = h.results[0]
			h.results = h.results[1:]
		}
		h.eng.After(h.remapDelay, func() { done(ok) })
	})
	return h
}

func TestNetWatchDebounceCoalesces(t *testing.T) {
	h := newNWHarness(t, DefaultNetWatchConfig())

	// A burst of suspicions from many stalled streams within the debounce
	// window must trigger exactly one remap.
	for i := 0; i < 8; i++ {
		d := sim.Duration(i) * sim.Millisecond
		h.eng.After(d, func() { h.nw.Suspect(2) })
	}
	h.eng.RunUntil(sim.Second)

	if got := len(h.attempts); got != 1 {
		t.Fatalf("remap attempts = %d, want 1 (burst must coalesce)", got)
	}
	// First suspicion at t=0, default debounce 50 ms.
	if h.attempts[0] != 50*sim.Millisecond {
		t.Fatalf("remap at %v, want 50ms", h.attempts[0])
	}
	st := h.nw.Stats()
	if st.Suspicions != 8 || st.Incidents != 1 || st.Remaps != 1 {
		t.Fatalf("stats = %+v, want 8 suspicions / 1 incident / 1 remap", st)
	}
}

func TestNetWatchSuspicionDuringRemapTriggersAnother(t *testing.T) {
	h := newNWHarness(t, DefaultNetWatchConfig())

	h.eng.After(0, func() { h.nw.Suspect(2) })
	// Lands at t=55ms, while the remap started at t=50ms is in flight.
	h.eng.After(55*sim.Millisecond, func() { h.nw.Suspect(3) })
	h.eng.RunUntil(5 * sim.Second)

	if got := len(h.attempts); got != 2 {
		t.Fatalf("remap attempts = %d, want 2 (dirty cycle must rerun)", got)
	}
	if st := h.nw.Stats(); st.Remaps != 2 {
		t.Fatalf("Remaps = %d, want 2", st.Remaps)
	}
}

func TestNetWatchBackoffOnFailure(t *testing.T) {
	cfg := DefaultNetWatchConfig()
	h := newNWHarness(t, cfg)
	h.results = []bool{false, false, false, true}

	h.eng.After(0, func() { h.nw.Suspect(2) })
	h.eng.RunUntil(30 * sim.Second)

	if got := len(h.attempts); got != 4 {
		t.Fatalf("remap attempts = %d, want 4 (3 failures then success)", got)
	}
	// Gaps between retries: remapDelay + base, then doubled base.
	gap1 := h.attempts[1] - h.attempts[0]
	gap2 := h.attempts[2] - h.attempts[1]
	gap3 := h.attempts[3] - h.attempts[2]
	want1 := h.remapDelay + cfg.RemapBackoffBase
	if gap1 != want1 {
		t.Fatalf("first retry gap = %v, want %v", gap1, want1)
	}
	if gap2 != h.remapDelay+2*cfg.RemapBackoffBase {
		t.Fatalf("second retry gap = %v, want %v", gap2, h.remapDelay+2*cfg.RemapBackoffBase)
	}
	if gap3 != h.remapDelay+4*cfg.RemapBackoffBase {
		t.Fatalf("third retry gap = %v, want %v", gap3, h.remapDelay+4*cfg.RemapBackoffBase)
	}
	st := h.nw.Stats()
	if st.RemapFailures != 3 || st.Remaps != 1 {
		t.Fatalf("stats = %+v, want 3 failures / 1 remap", st)
	}
}

func TestNetWatchBackoffCapped(t *testing.T) {
	cfg := DefaultNetWatchConfig()
	h := newNWHarness(t, cfg)
	// Fail 8 times; the retry delay must cap at RemapBackoffCap.
	h.results = []bool{false, false, false, false, false, false, false, false}

	h.eng.After(0, func() { h.nw.Suspect(2) })
	h.eng.RunUntil(60 * sim.Second)

	if got := len(h.attempts); got < 8 {
		t.Fatalf("remap attempts = %d, want >= 8", got)
	}
	for i := 6; i < 8; i++ {
		gap := h.attempts[i] - h.attempts[i-1]
		want := h.remapDelay + cfg.RemapBackoffCap
		if gap != want {
			t.Fatalf("retry gap %d = %v, want capped %v", i, gap, want)
		}
	}
}

func TestNetWatchStreakEscalatesDebounce(t *testing.T) {
	cfg := DefaultNetWatchConfig()
	h := newNWHarness(t, cfg)

	// Three incidents in quick succession (each new suspicion lands after
	// the previous cycle finished but within QuietPeriod): debounce doubles.
	h.eng.After(0, func() { h.nw.Suspect(2) })                   // incident 1: debounce 50ms
	h.eng.After(100*sim.Millisecond, func() { h.nw.Suspect(2) }) // incident 2: 100ms
	h.eng.After(300*sim.Millisecond, func() { h.nw.Suspect(2) }) // incident 3: 200ms
	h.eng.RunUntil(5 * sim.Second)

	if got := len(h.attempts); got != 3 {
		t.Fatalf("remap attempts = %d, want 3", got)
	}
	if h.attempts[0] != 50*sim.Millisecond {
		t.Fatalf("incident 1 remap at %v, want 50ms", h.attempts[0])
	}
	if h.attempts[1] != 200*sim.Millisecond {
		t.Fatalf("incident 2 remap at %v, want 200ms (100ms debounce)", h.attempts[1])
	}
	if h.attempts[2] != 500*sim.Millisecond {
		t.Fatalf("incident 3 remap at %v, want 500ms (200ms debounce)", h.attempts[2])
	}

	// After a QuietPeriod of calm the streak resets to the base window.
	h.nw.Suspect(2)
	h.eng.RunUntil(h.eng.Now() + sim.Second)
	if got := len(h.attempts); got != 4 {
		t.Fatalf("remap attempts = %d, want 4", got)
	}
	gap := h.attempts[3] - (5 * sim.Second)
	if gap != cfg.DebounceWindow {
		t.Fatalf("post-calm debounce = %v, want base %v", gap, cfg.DebounceWindow)
	}
}

func TestNetWatchProbesWhileExpelled(t *testing.T) {
	cfg := DefaultNetWatchConfig()
	h := newNWHarness(t, cfg)

	h.eng.After(0, func() { h.nw.NoteUnreachable() })
	h.eng.RunUntil(3 * cfg.ProbeInterval)

	st := h.nw.Stats()
	if st.Probes < 2 {
		t.Fatalf("Probes = %d, want >= 2 while a peer stands expelled", st.Probes)
	}
	if len(h.attempts) != int(st.Probes) {
		t.Fatalf("attempts = %d, want one per probe (%d)", len(h.attempts), st.Probes)
	}

	// Readmission stops the probing.
	h.nw.NoteReadmitted()
	before := h.nw.Stats().Probes
	h.eng.RunUntil(h.eng.Now() + 5*cfg.ProbeInterval)
	if after := h.nw.Stats().Probes; after > before+1 {
		t.Fatalf("probes kept firing after readmission: %d -> %d", before, after)
	}
	if st := h.nw.Stats(); st.Unreachable != 1 || st.Readmissions != 1 {
		t.Fatalf("stats = %+v, want 1 unreachable / 1 readmission", st)
	}
}

// A sustained flap storm — a new incident as soon as each remap cycle
// closes, for eight cycles straight — must walk the debounce ladder all the
// way to DebounceCap and hold it there, never going back-to-back.
func TestNetWatchFlapStormClampsDebounceAtCap(t *testing.T) {
	cfg := DefaultNetWatchConfig()
	h := newNWHarness(t, cfg)

	// Each suspicion lands 100 ms after the previous remap completes: well
	// inside QuietPeriod, so the streak never resets and incident i's
	// debounce is min(base << i, cap). The expected timeline is computed
	// with the same recurrence the daemon uses.
	const rounds = 8
	var wantAttempts []sim.Time
	next := sim.Duration(0)
	for i := 0; i < rounds; i++ {
		deb := cfg.DebounceWindow << uint(i)
		if deb > cfg.DebounceCap {
			deb = cfg.DebounceCap
		}
		h.eng.After(next, func() { h.nw.Suspect(2) })
		attempt := next + deb
		wantAttempts = append(wantAttempts, sim.Time(attempt))
		next = attempt + h.remapDelay + 100*sim.Millisecond
	}
	h.eng.RunUntil(sim.Time(next) + sim.Second)

	if len(h.attempts) != rounds {
		t.Fatalf("remap attempts = %d, want %d", len(h.attempts), rounds)
	}
	for i, want := range wantAttempts {
		if h.attempts[i] != want {
			t.Fatalf("attempt %d at %v, want %v (full ladder: got %v want %v)",
				i, h.attempts[i], want, h.attempts, wantAttempts)
		}
	}
	// The tail of the storm runs at the cap: the last two debounces both
	// equal DebounceCap, so the daemon has stopped escalating.
	lastDeb := wantAttempts[rounds-1] - wantAttempts[rounds-2] -
		sim.Time(h.remapDelay+100*sim.Millisecond)
	if sim.Duration(lastDeb) != cfg.DebounceCap {
		t.Fatalf("storm-tail debounce = %v, want cap %v", lastDeb, cfg.DebounceCap)
	}
	if st := h.nw.Stats(); st.Incidents != rounds || st.Remaps != rounds {
		t.Fatalf("stats = %+v, want %d incidents / %d remaps", st, rounds, rounds)
	}
}

// While a remap cycle is failing and backing off — a fabric that flaps
// faster than the mapper can converge — the readmission probe must defer
// to the cycle in hand (it "doubles as the probe") and only start firing
// once the daemon goes idle with peers still expelled.
func TestNetWatchProbeDefersToActiveRemapCycle(t *testing.T) {
	cfg := DefaultNetWatchConfig()
	h := newNWHarness(t, cfg)
	// 20 failures keep the daemon in remap/backoff for ~33 s of virtual
	// time; the 21st attempt succeeds.
	for i := 0; i < 20; i++ {
		h.results = append(h.results, false)
	}

	h.eng.After(0, func() {
		h.nw.NoteUnreachable()
		h.nw.Suspect(2)
	})
	var midProbes uint64
	h.eng.After(30*sim.Second, func() { midProbes = h.nw.Stats().Probes })
	h.eng.RunUntil(60 * sim.Second)

	if midProbes != 0 {
		t.Fatalf("probes fired while a remap cycle was in hand: %d", midProbes)
	}
	st := h.nw.Stats()
	if st.RemapFailures != 20 {
		t.Fatalf("RemapFailures = %d, want 20", st.RemapFailures)
	}
	if st.Probes < 2 {
		t.Fatalf("Probes = %d, want >= 2 once the daemon went idle with a peer expelled", st.Probes)
	}
	// Every attempt is accounted: one per failure, one per successful
	// remap (the incident's closer plus each probe's).
	if len(h.attempts) != int(st.RemapFailures+st.Remaps) {
		t.Fatalf("attempts = %d, want failures+remaps = %d", len(h.attempts), st.RemapFailures+st.Remaps)
	}
}

// Repeated flaps can expel several peers; the probe chain must stay a
// single chain (one probe per interval, however many peers stand expelled)
// and keep running until the last expelled peer is readmitted.
func TestNetWatchProbeChainSingleAcrossManyExpelled(t *testing.T) {
	cfg := DefaultNetWatchConfig()
	h := newNWHarness(t, cfg)

	h.eng.After(0, func() {
		h.nw.NoteUnreachable()
		h.nw.NoteUnreachable()
		h.nw.NoteUnreachable()
	})
	h.eng.RunUntil(10 * sim.Second)

	// Probe at ~2s, then every ProbeInterval+remapDelay: 4 fit in 10 s.
	// Three stacked chains would have fired ~12.
	st := h.nw.Stats()
	if st.Probes < 3 || st.Probes > 5 {
		t.Fatalf("Probes = %d, want one chain's worth (3..5) for 3 expelled peers", st.Probes)
	}

	// One readmission leaves two peers expelled: probing continues.
	h.nw.NoteReadmitted()
	before := h.nw.Stats().Probes
	h.eng.RunUntil(h.eng.Now() + 3*cfg.ProbeInterval)
	if after := h.nw.Stats().Probes; after <= before {
		t.Fatalf("probing stopped with peers still expelled: %d -> %d", before, after)
	}

	// Readmitting the rest stops the chain (modulo one already-armed timer).
	h.nw.NoteReadmitted()
	h.nw.NoteReadmitted()
	before = h.nw.Stats().Probes
	h.eng.RunUntil(h.eng.Now() + 5*cfg.ProbeInterval)
	if after := h.nw.Stats().Probes; after > before+1 {
		t.Fatalf("probes kept firing after full readmission: %d -> %d", before, after)
	}
	if st := h.nw.Stats(); st.Unreachable != 3 || st.Readmissions != 3 {
		t.Fatalf("stats = %+v, want 3 unreachable / 3 readmissions", st)
	}
}
