package core

import (
	"testing"

	"repro/internal/gmproto"
	"repro/internal/lanai"
	"repro/internal/mcp"
	"repro/internal/sim"
)

// hangAndRecover injects a hang at 10ms and runs until the FTD finishes,
// returning the recovery timeline.
func hangAndRecover(t *testing.T, r *rig) *Timeline {
	t.Helper()
	var tl *Timeline
	r.ftd.OnRecovered = func(timeline *Timeline) { tl = timeline }
	r.eng.RunUntil(10 * sim.Millisecond)
	r.ftd.MarkFault()
	r.m.InjectHang()
	r.eng.RunUntil(10 * sim.Second)
	if tl == nil {
		t.Fatal("recovery never completed")
	}
	return tl
}

// The recovery phases must complete in the §4.3 order: wake, magic-word
// verification, card reset, MCP reload, table restoration, event posting.
func TestFTDPhasesFireInOrder(t *testing.T) {
	r := newRig(t, mcp.ModeFTGM)
	if err := r.driver.OpenPort(1, func(ev gmproto.Event) {}); err != nil {
		t.Fatal(err)
	}
	tl := hangAndRecover(t, r)

	want := []Phase{
		PhaseFaultInjected, PhaseFTDWake, PhaseVerified, PhaseCardReset,
		PhaseMCPReloaded, PhaseTablesRestored, PhaseEventsPosted,
	}
	got := tl.Phases()
	if len(got) != len(want) {
		t.Fatalf("recorded %d phases %+v, want %d", len(got), got, len(want))
	}
	for i, p := range want {
		if got[i].Phase != p {
			t.Errorf("phase[%d] = %v, want %v", i, got[i].Phase, p)
		}
		if i > 0 && got[i].At < got[i-1].At {
			t.Errorf("phase %v at %v precedes %v at %v",
				got[i].Phase, got[i].At, got[i-1].Phase, got[i-1].At)
		}
	}
}

// Table 3 calibration: the default phase durations plus the MCP load time
// must sum to the paper's measured ~765,000 µs FTD recovery time.
func TestDefaultFTDDurationsSumToTable3(t *testing.T) {
	cfg := DefaultFTDConfig()
	sum := cfg.VerifyInterval + cfg.DisableInterrupts + cfg.UnmapIO +
		cfg.CardReset + cfg.ClearSRAM + cfg.RestorePageTable +
		cfg.RestoreRoutes + cfg.PostEventPerPort +
		DefaultDriverConfig().MCPLoadTime
	if sum < 760*sim.Millisecond || sum > 770*sim.Millisecond {
		t.Errorf("default FTD phase sum = %v, want ≈765ms (Table 3)", sum)
	}
}

// A second hang while the FTD is restoring tables must not produce a
// "recovered" interface with a dead chip: the liveness checks restart the
// §4.3 sequence and the recovery still concludes.
func TestHangDuringRecoveryRestartsSequence(t *testing.T) {
	r := newRig(t, mcp.ModeFTGM)
	if err := r.driver.OpenPort(1, func(ev gmproto.Event) {}); err != nil {
		t.Fatal(err)
	}
	recovered := 0
	r.ftd.OnRecovered = func(tl *Timeline) { recovered++ }
	r.eng.RunUntil(10 * sim.Millisecond)
	r.ftd.MarkFault()
	r.m.InjectHang()
	// Poll virtual time until the reloaded MCP starts running again — that
	// is the start of the ~195ms table-restore window — and hang it again.
	var rehang func()
	rehang = func() {
		if r.chip.Running() {
			r.m.InjectHang()
			return
		}
		r.eng.After(sim.Millisecond, rehang)
	}
	r.eng.After(sim.Millisecond, rehang)
	r.eng.RunUntil(20 * sim.Second)

	if recovered != 1 {
		t.Fatalf("recoveries = %d, want 1", recovered)
	}
	if r.ftd.Stats().RecoveryRestarts == 0 {
		t.Error("second hang did not restart the recovery sequence")
	}
	if r.ftd.Outcome() != RecoveryOK {
		t.Errorf("outcome = %v, want ok", r.ftd.Outcome())
	}
	if !r.chip.Running() {
		t.Error("chip not running after restarted recovery")
	}
}

// Regression: after a second, post-recovery hang the driver's
// ClearFatal/re-recovery cycle must leave the port reopened and usable.
func TestSecondHangLeavesPortUsable(t *testing.T) {
	r := newRig(t, mcp.ModeFTGM)
	faultEvents := 0
	if err := r.driver.OpenPort(1, func(ev gmproto.Event) {
		if ev.Type == gmproto.EvFaultDetected {
			faultEvents++
		}
	}); err != nil {
		t.Fatal(err)
	}
	recovered := 0
	r.ftd.OnRecovered = func(tl *Timeline) { recovered++ }
	r.eng.RunUntil(10 * sim.Millisecond)
	r.m.InjectHang()
	r.eng.RunUntil(5 * sim.Second)
	r.m.InjectHang()
	r.eng.RunUntil(15 * sim.Second)

	if recovered != 2 {
		t.Fatalf("recoveries = %d, want 2", recovered)
	}
	if faultEvents != 2 {
		t.Errorf("FAULT_DETECTED events = %d, want 2", faultEvents)
	}
	if !r.m.PortOpen(1) {
		t.Error("port not open after second recovery")
	}
	if !r.chip.Running() {
		t.Error("chip not running after second recovery")
	}
	if r.ftd.Outcome() != RecoveryOK {
		t.Errorf("outcome = %v, want ok", r.ftd.Outcome())
	}
}

// A FATAL that arrives while a recovery is in hand is coalesced, then
// re-delivered after ClearFatal; the magic-word verification classifies the
// re-delivery as a false alarm (the card was just rebuilt) and stands down
// without a second reset.
func TestSuppressedFatalRedeliveredAndVerified(t *testing.T) {
	r := newRig(t, mcp.ModeFTGM)
	r.eng.RunUntil(10 * sim.Millisecond)
	r.m.InjectHang()
	// While the hang is detected but recovery hasn't reset the card yet,
	// raise the watchdog bit again: IMR still has IT1 unmasked, so the
	// driver sees a second FATAL and must suppress it.
	r.eng.After(2*sim.Millisecond, func() { r.chip.RaiseISR(lanai.ISRTimer1) })
	r.eng.RunUntil(10 * sim.Second)

	ds := r.driver.Stats()
	if ds.SuppressedFatals != 1 {
		t.Errorf("SuppressedFatals = %d, want 1", ds.SuppressedFatals)
	}
	fs := r.ftd.Stats()
	if fs.Recoveries != 1 {
		t.Errorf("Recoveries = %d, want 1", fs.Recoveries)
	}
	if fs.FalseAlarms != 1 {
		t.Errorf("FalseAlarms = %d, want 1 (re-delivered FATAL verified alive)", fs.FalseAlarms)
	}
	if r.chip.Stats().Resets != 1 {
		t.Errorf("Resets = %d, want 1 (re-delivery must not reset again)", r.chip.Stats().Resets)
	}
}

// Transient MCP load failures are retried with capped exponential backoff
// and the recovery still concludes.
func TestMCPReloadRetriesWithBackoff(t *testing.T) {
	r := newRig(t, mcp.ModeFTGM)
	if err := r.driver.OpenPort(1, func(ev gmproto.Event) {}); err != nil {
		t.Fatal(err)
	}
	r.driver.SetMCPLoadFailures(2)
	tl := hangAndRecover(t, r)

	if got := r.ftd.Stats().ReloadRetries; got != 2 {
		t.Errorf("ReloadRetries = %d, want 2", got)
	}
	if got := r.driver.Stats().MCPLoadFailures; got != 2 {
		t.Errorf("MCPLoadFailures = %d, want 2", got)
	}
	// Three full load charges plus 10ms+20ms backoff.
	reload := tl.ReloadTime()
	if reload < 1530*sim.Millisecond || reload > 1560*sim.Millisecond {
		t.Errorf("reload span = %v, want ≈1530ms (3 loads + backoff)", reload)
	}
	if r.ftd.Outcome() != RecoveryOK {
		t.Errorf("outcome = %v, want ok", r.ftd.Outcome())
	}
}

// Exhausting the reload budget is terminal: the FTD surfaces
// RecoveryFailed instead of hanging the simulation, and Retry re-enters
// recovery once the operator clears the blockage.
func TestMCPReloadTerminalFailureAndRetry(t *testing.T) {
	r := newRig(t, mcp.ModeFTGM)
	if err := r.driver.OpenPort(1, func(ev gmproto.Event) {}); err != nil {
		t.Fatal(err)
	}
	var failReason string
	r.ftd.OnFailed = func(reason string) { failReason = reason }
	recovered := 0
	r.ftd.OnRecovered = func(tl *Timeline) { recovered++ }

	r.driver.SetMCPLoadFailures(3) // == MaxReloadAttempts: all tries fail
	r.eng.RunUntil(10 * sim.Millisecond)
	r.m.InjectHang()
	r.eng.RunUntil(30 * sim.Second) // must quiesce, not loop

	if r.ftd.Outcome() != RecoveryFailed {
		t.Fatalf("outcome = %v, want failed", r.ftd.Outcome())
	}
	if failReason == "" || r.ftd.FailReason() == "" {
		t.Error("no failure reason surfaced")
	}
	if recovered != 0 {
		t.Errorf("recoveries = %d during terminal failure", recovered)
	}
	if r.ftd.Stats().Failures != 1 {
		t.Errorf("Failures = %d, want 1", r.ftd.Stats().Failures)
	}
	if r.chip.Running() {
		t.Error("chip running despite failed reloads")
	}

	// Operator path: the load failure injection is exhausted, so Retry
	// completes the recovery.
	r.ftd.Retry()
	r.eng.RunUntil(60 * sim.Second)
	if recovered != 1 {
		t.Fatalf("recoveries after Retry = %d, want 1", recovered)
	}
	if r.ftd.Outcome() != RecoveryOK {
		t.Errorf("outcome after Retry = %v, want ok", r.ftd.Outcome())
	}
	if !r.m.PortOpen(1) {
		t.Error("port not usable after Retry recovery")
	}
}
