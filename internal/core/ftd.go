package core

import (
	"fmt"

	"repro/internal/lanai"
	"repro/internal/sim"
)

// FTDConfig sets the daemon's recovery-phase durations. The defaults are
// calibrated so the FTD span lands near the paper's measured ~765,000 µs,
// of which ~500,000 µs is the MCP reload (§5.2, Table 3).
type FTDConfig struct {
	// VerifyInterval is how long the FTD waits after writing the magic
	// word before checking whether a live MCP cleared it — it must cover a
	// worst-case L_timer gap (§4.3).
	VerifyInterval sim.Duration
	// DisableInterrupts, UnmapIO, CardReset, ClearSRAM are the pre-reload
	// steps of §4.3.
	DisableInterrupts sim.Duration
	UnmapIO           sim.Duration
	CardReset         sim.Duration
	ClearSRAM         sim.Duration
	// RestorePageTable covers notifying the LANai of the host's page hash
	// table; RestoreRoutes covers the mapping/route upload (§4.3).
	RestorePageTable sim.Duration
	RestoreRoutes    sim.Duration
	// PostEventPerPort is the cost of posting FAULT_DETECTED into one open
	// port's receive queue.
	PostEventPerPort sim.Duration

	// MaxReloadAttempts bounds MCP reload tries within one recovery pass;
	// retries back off exponentially from ReloadRetryBase, capped at
	// ReloadRetryCap. Zero values take the defaults.
	MaxReloadAttempts int
	ReloadRetryBase   sim.Duration
	ReloadRetryCap    sim.Duration
	// MaxRecoveryRestarts bounds how many times the §4.3 sequence restarts
	// after the LANai hangs again mid-recovery before the FTD gives up
	// with a terminal RecoveryFailed outcome.
	MaxRecoveryRestarts int
}

// DefaultFTDConfig matches the Table 3 breakdown.
func DefaultFTDConfig() FTDConfig {
	return FTDConfig{
		VerifyInterval:    2 * sim.Millisecond,
		DisableInterrupts: 100 * sim.Microsecond,
		UnmapIO:           3 * sim.Millisecond,
		CardReset:         50 * sim.Millisecond,
		ClearSRAM:         12 * sim.Millisecond,
		RestorePageTable:  150 * sim.Millisecond,
		RestoreRoutes:     45 * sim.Millisecond,
		PostEventPerPort:  1500 * sim.Microsecond,

		MaxReloadAttempts:   3,
		ReloadRetryBase:     10 * sim.Millisecond,
		ReloadRetryCap:      80 * sim.Millisecond,
		MaxRecoveryRestarts: 3,
	}
}

// Phase names a step of the recovery, for the Figure 9 timeline.
type Phase int

// Recovery phases in order.
const (
	PhaseFaultInjected Phase = iota + 1
	PhaseInterrupt
	PhaseFTDWake
	PhaseVerified
	PhaseCardReset
	PhaseMCPReloaded
	PhaseTablesRestored
	PhaseEventsPosted
	PhaseProcessesDone
)

// String names the phase.
func (p Phase) String() string {
	switch p {
	case PhaseFaultInjected:
		return "fault-injected"
	case PhaseInterrupt:
		return "watchdog-interrupt"
	case PhaseFTDWake:
		return "ftd-woken"
	case PhaseVerified:
		return "hang-verified"
	case PhaseCardReset:
		return "card-reset"
	case PhaseMCPReloaded:
		return "mcp-reloaded"
	case PhaseTablesRestored:
		return "tables-restored"
	case PhaseEventsPosted:
		return "fault-events-posted"
	case PhaseProcessesDone:
		return "processes-recovered"
	default:
		return fmt.Sprintf("phase?%d", int(p))
	}
}

// Timeline records when each recovery phase completed (Figure 9).
type Timeline struct {
	marks map[Phase]sim.Time
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline { return &Timeline{marks: make(map[Phase]sim.Time)} }

// Mark records a phase completion (first mark wins).
func (t *Timeline) Mark(p Phase, at sim.Time) {
	if _, ok := t.marks[p]; !ok {
		t.marks[p] = at
	}
}

// At returns a phase's timestamp.
func (t *Timeline) At(p Phase) (sim.Time, bool) {
	v, ok := t.marks[p]
	return v, ok
}

// DetectionTime is fault injection -> FTD wakeup: "measured as the time
// from the fault injection to the time when the FTD is woken up by the
// driver" (§5.2).
func (t *Timeline) DetectionTime() sim.Duration {
	return t.span(PhaseFaultInjected, PhaseFTDWake)
}

// FTDTime is FTD wakeup -> FAULT_DETECTED events posted (Table 3 "FTD
// Recovery Time").
func (t *Timeline) FTDTime() sim.Duration {
	return t.span(PhaseFTDWake, PhaseEventsPosted)
}

// ReloadTime is the MCP reload component of the FTD time.
func (t *Timeline) ReloadTime() sim.Duration {
	return t.span(PhaseCardReset, PhaseMCPReloaded)
}

// PerProcessTime is events posted -> all processes recovered (Table 3
// "Per-process Recovery Time").
func (t *Timeline) PerProcessTime() sim.Duration {
	return t.span(PhaseEventsPosted, PhaseProcessesDone)
}

// TotalTime is fault injection -> all processes recovered.
func (t *Timeline) TotalTime() sim.Duration {
	return t.span(PhaseFaultInjected, PhaseProcessesDone)
}

func (t *Timeline) span(a, b Phase) sim.Duration {
	ta, oka := t.marks[a]
	tb, okb := t.marks[b]
	if !oka || !okb || tb < ta {
		return 0
	}
	return tb - ta
}

// Phases returns the recorded phases in order with timestamps.
func (t *Timeline) Phases() []struct {
	Phase Phase
	At    sim.Time
} {
	var out []struct {
		Phase Phase
		At    sim.Time
	}
	for p := PhaseFaultInjected; p <= PhaseProcessesDone; p++ {
		if at, ok := t.marks[p]; ok {
			out = append(out, struct {
				Phase Phase
				At    sim.Time
			}{p, at})
		}
	}
	return out
}

// FTDStats counts daemon activity.
type FTDStats struct {
	Wakeups        uint64
	FalseAlarms    uint64 // magic word cleared: the LANai was alive after all
	Recoveries     uint64
	PortsRecovered uint64
	// ReloadRetries counts MCP reload attempts beyond the first.
	ReloadRetries uint64
	// RecoveryRestarts counts §4.3 sequence restarts after the LANai hung
	// again mid-recovery.
	RecoveryRestarts uint64
	// Failures counts terminal RecoveryFailed outcomes.
	Failures uint64
}

// ftdState tracks where the daemon is in its fault-handling cycle so
// re-entrant fault reports coalesce into the recovery already underway.
type ftdState int

const (
	ftdIdle ftdState = iota
	ftdVerifying
	ftdRecovering
	ftdFailed
)

// RecoveryOutcome is the disposition of the most recent recovery cycle.
type RecoveryOutcome int

// Recovery outcomes.
const (
	// RecoveryPending: no recovery has concluded (none started, or one is
	// in flight).
	RecoveryPending RecoveryOutcome = iota
	// RecoveryOK: the last recovery completed and re-armed the daemon.
	RecoveryOK
	// RecoveryFailed is terminal: reloads or restarts exceeded their
	// bounds and the FTD stopped rather than loop forever; only Retry
	// (the operator path) re-enters recovery.
	RecoveryFailed
)

// String names the outcome.
func (o RecoveryOutcome) String() string {
	switch o {
	case RecoveryPending:
		return "pending"
	case RecoveryOK:
		return "ok"
	case RecoveryFailed:
		return "failed"
	default:
		return fmt.Sprintf("outcome?%d", int(o))
	}
}

// FTD is the fault tolerance daemon of §4.3: a host process that sleeps
// until the driver's FATAL interrupt wakes it, verifies the hang via the
// magic-word handshake, and rebuilds the interface: reset, SRAM clear, MCP
// reload, page-hash and route restoration, and a FAULT_DETECTED event in
// every open port's receive queue. It then "rewinds and stands guard for
// the recovery of the next fault".
type FTD struct {
	eng    *sim.Engine
	driver *Driver
	cfg    FTDConfig

	timeline *Timeline
	stats    FTDStats

	state          ftdState
	outcome        RecoveryOutcome
	failReason     string
	reloadAttempts int
	restarts       int

	// Speculation journaling (core spec.go).
	specMark uint64
	shadow   ftdShadow

	// OnRecovered runs after FAULT_DETECTED events are posted (tests and
	// experiment harnesses hook it).
	OnRecovered func(*Timeline)
	// OnFailed runs on a terminal RecoveryFailed outcome.
	OnFailed func(reason string)
}

// NewFTD builds and arms the daemon on a driver. Zero retry/restart bounds
// in cfg are normalized to the defaults, so pre-existing config literals
// keep their meaning.
func NewFTD(driver *Driver, cfg FTDConfig) *FTD {
	def := DefaultFTDConfig()
	if cfg.MaxReloadAttempts <= 0 {
		cfg.MaxReloadAttempts = def.MaxReloadAttempts
	}
	if cfg.ReloadRetryBase <= 0 {
		cfg.ReloadRetryBase = def.ReloadRetryBase
	}
	if cfg.ReloadRetryCap <= 0 {
		cfg.ReloadRetryCap = def.ReloadRetryCap
	}
	if cfg.MaxRecoveryRestarts <= 0 {
		cfg.MaxRecoveryRestarts = def.MaxRecoveryRestarts
	}
	f := &FTD{
		eng:      driver.eng,
		driver:   driver,
		cfg:      cfg,
		timeline: NewTimeline(),
	}
	driver.SetOnFatal(f.wake)
	return f
}

// Timeline returns the current recovery timeline.
func (f *FTD) Timeline() *Timeline { return f.timeline }

// Stats returns daemon counters.
func (f *FTD) Stats() FTDStats { return f.stats }

// Outcome reports the disposition of the most recent recovery cycle.
func (f *FTD) Outcome() RecoveryOutcome { return f.outcome }

// FailReason describes a RecoveryFailed outcome ("" otherwise).
func (f *FTD) FailReason() string { return f.failReason }

// MarkFault records the fault-injection instant (experiment harnesses call
// this when they inject). A fault injected while a recovery is already
// underway folds into the current cycle and keeps its timeline.
func (f *FTD) MarkFault() {
	if f.state != ftdIdle {
		return
	}
	f.SpecTouch()
	f.timeline = NewTimeline()
	f.timeline.Mark(PhaseFaultInjected, f.eng.Now())
}

// wake is the daemon's entry: the driver saw the FATAL interrupt. Wakeups
// while verifying, recovering, or terminally failed coalesce — the driver
// already suppresses re-entrant FATALs, but a re-delivered pending FATAL
// can still race a Retry, so the daemon guards its own state too.
func (f *FTD) wake() {
	f.SpecTouch()
	f.stats.Wakeups++
	if f.state != ftdIdle {
		return
	}
	f.state = ftdVerifying
	f.timeline.Mark(PhaseFTDWake, f.eng.Now())
	f.verify()
}

// verify writes the magic word into LANai SRAM; a functioning MCP clears it
// within an L_timer interval. "If the location is not cleared, the FTD
// assumes that the interface has hung" (§4.3).
func (f *FTD) verify() {
	chip := f.driver.Chip()
	chip.WriteWord(lanai.MagicAddr, lanai.MagicWord)
	f.eng.After(f.cfg.VerifyInterval, func() {
		f.SpecTouch()
		if chip.ReadWord(lanai.MagicAddr) != lanai.MagicWord {
			// The LANai is alive; false alarm. Re-arm and go back to sleep
			// without resetting anything.
			f.stats.FalseAlarms++
			f.state = ftdIdle
			f.driver.ClearFatal()
			return
		}
		f.timeline.Mark(PhaseVerified, f.eng.Now())
		f.state = ftdRecovering
		f.outcome = RecoveryPending
		f.restarts = 0
		f.recover()
	})
}

// recover executes the §4.3 sequence with the calibrated phase costs. Each
// pass resets the reload-attempt budget; a restart after a mid-recovery
// hang re-enters here.
func (f *FTD) recover() {
	d := f.driver
	chip := d.Chip()
	f.SpecTouch()
	f.reloadAttempts = 0
	f.eng.After(f.cfg.DisableInterrupts, func() {
		// Interrupts disabled, IO unmapped.
		f.eng.After(f.cfg.UnmapIO, func() {
			// Card reset: all components return to a non-faulty state
			// (the fault is assumed transient, §4.3).
			f.eng.After(f.cfg.CardReset, func() {
				chip.Reset()
				f.eng.After(f.cfg.ClearSRAM, func() {
					chip.ClearSRAM()
					f.SpecTouch()
					f.timeline.Mark(PhaseCardReset, f.eng.Now())
					// Reload the MCP (the dominant cost, ~500 ms).
					f.reloadMCP()
				})
			})
		})
	})
}

// reloadMCP attempts the MCP reload, retrying a failed load with capped
// exponential backoff before giving up terminally.
func (f *FTD) reloadMCP() {
	f.SpecTouch()
	f.reloadAttempts++
	f.driver.LoadMCPChecked(func(ok bool) {
		f.SpecTouch()
		if !ok {
			if f.reloadAttempts >= f.cfg.MaxReloadAttempts {
				f.fail(fmt.Sprintf("mcp reload failed %d times", f.reloadAttempts))
				return
			}
			delay := f.cfg.ReloadRetryBase << uint(f.reloadAttempts-1)
			if delay > f.cfg.ReloadRetryCap {
				delay = f.cfg.ReloadRetryCap
			}
			f.stats.ReloadRetries++
			f.eng.Tracef("ftd", "mcp reload attempt %d failed; retrying in %v", f.reloadAttempts, delay)
			f.eng.After(delay, f.reloadMCP)
			return
		}
		f.timeline.Mark(PhaseMCPReloaded, f.eng.Now())
		f.restoreTables()
	})
}

// alive checks mid-recovery that the freshly reloaded LANai is still
// running. Chaos can hang the card again while tables are being restored,
// and the restore operations would silently no-op against a dead chip —
// producing a "recovered" interface that forwards nothing. A failed check
// restarts the §4.3 sequence (the fault is assumed transient), bounded by
// MaxRecoveryRestarts.
func (f *FTD) alive() bool {
	if f.driver.Chip().Running() {
		return true
	}
	f.SpecTouch()
	f.restarts++
	f.stats.RecoveryRestarts++
	if f.restarts > f.cfg.MaxRecoveryRestarts {
		f.fail(fmt.Sprintf("lanai hung %d times during recovery", f.restarts))
		return false
	}
	f.eng.Tracef("ftd", "lanai hung mid-recovery; restarting sequence (%d/%d)",
		f.restarts, f.cfg.MaxRecoveryRestarts)
	f.recover()
	return false
}

// fail records a terminal RecoveryFailed outcome. FATAL delivery stays
// disarmed — further watchdog expiries are suppressed and the simulation
// quiesces instead of looping — until Retry re-enters recovery.
func (f *FTD) fail(reason string) {
	f.SpecTouch()
	f.state = ftdFailed
	f.outcome = RecoveryFailed
	f.failReason = reason
	f.stats.Failures++
	f.eng.Tracef("ftd", "recovery failed: %s", reason)
	if f.OnFailed != nil {
		f.OnFailed(reason)
	}
}

// Retry re-enters recovery after a terminal failure (the operator path:
// clear whatever blocked the reload, run the FTD again). No-op unless the
// daemon is in the failed state.
func (f *FTD) Retry() {
	if f.state != ftdFailed {
		return
	}
	f.SpecTouch()
	f.state = ftdRecovering
	f.outcome = RecoveryPending
	f.failReason = ""
	f.restarts = 0
	f.recover()
}

// restoreTables re-registers the page hash table and re-uploads the
// mapping/route information, then posts FAULT_DETECTED everywhere.
func (f *FTD) restoreTables() {
	d := f.driver
	f.eng.After(f.cfg.RestorePageTable, func() {
		if !f.alive() {
			return
		}
		d.MCP().RegisterPageTable(d.PageTable().Len())
		f.eng.After(f.cfg.RestoreRoutes, func() {
			if !f.alive() {
				return
			}
			if d.Routes() != nil {
				d.MCP().UploadRoutes(d.Routes())
				d.MCP().SetNodeID(d.NodeID())
			}
			f.SpecTouch()
			f.timeline.Mark(PhaseTablesRestored, f.eng.Now())
			f.postFaultEvents()
		})
	})
}

// postFaultEvents re-opens each port skeleton and posts FAULT_DETECTED into
// its receive queue; the per-process handler does the rest (§4.4).
func (f *FTD) postFaultEvents() {
	d := f.driver
	ports := d.OpenPorts()
	var next func(i int)
	next = func(i int) {
		f.SpecTouch()
		if i >= len(ports) {
			f.timeline.Mark(PhaseEventsPosted, f.eng.Now())
			f.stats.Recoveries++
			f.state = ftdIdle
			f.outcome = RecoveryOK
			d.ClearFatal()
			if f.OnRecovered != nil {
				f.OnRecovered(f.timeline)
			}
			return
		}
		port := ports[i]
		f.eng.After(f.cfg.PostEventPerPort, func() {
			if !f.alive() {
				return
			}
			// The port is reopened in a bare state; the process's
			// FAULT_DETECTED handler restores tokens and sequence state.
			d.MCP().ReopenPort(port, d.PortSink(port))
			d.MCP().PostFaultDetected(port)
			f.stats.PortsRecovered++
			next(i + 1)
		})
	}
	next(0)
}
