// Package core implements the paper's primary contribution: low-overhead
// fault tolerance for network-interface processor hangs (§3-§4). It
// provides
//
//   - the continuous host-side state backup ("checkpointing") of §4.1: the
//     shadow copies of the send and receive tokens in the LANai's
//     possession, the host-generated per-(port, remote-node) sequence-number
//     streams, and the receiver's per-(connection, port) ACK table;
//   - the device driver that loads the MCP and turns the watchdog's FATAL
//     interrupt into a fault-tolerance-daemon wakeup (§4.2-4.3);
//   - the fault tolerance daemon (FTD) itself, with the full recovery
//     sequence of §4.3 (magic-word verification, card reset, SRAM clear,
//     MCP reload, page-hash/route restoration, FAULT_DETECTED posting);
//   - a recovery timeline that reproduces the measurement points of
//     Figure 9 and Table 3;
//   - the naive restart baseline (driver reload without state restoration)
//     whose failures motivate the design (Figures 4 and 5).
package core

import (
	"slices"
	"sort"

	"repro/internal/gmproto"
	"repro/internal/sim"
)

// ShadowStore is one port's backup copy of the state the LANai holds on its
// behalf: "the user keeps a copy of the required LANai state that is not
// implicitly stored in the host memory" (§4.1). The gm library updates it
// on every send/receive call and consumes it in the FAULT_DETECTED handler.
type ShadowStore struct {
	port gmproto.PortID

	sendTokens map[uint64]gmproto.SendToken
	sendOrder  []uint64

	recvTokens map[uint64]gmproto.RecvToken
	recvOrder  []uint64

	// txSeq is the next host-generated sequence number per remote node and
	// priority level: "independent streams of sequence numbers for each
	// remote node on a per-port basis" (§4.1), with GM's two priority
	// levels carrying separate spaces.
	txSeq map[seqKey]uint32

	// Speculation journaling (core spec.go): a per-operation undo log —
	// these maps mutate on every send and receive, so a whole-map shadow
	// per span would be far more expensive than logging displaced entries.
	eng                      *sim.Engine
	specMark                 uint64
	ops                      []shadowOp
	sendLen, recvLen         int
	sendSnapped, recvSnapped bool
	sendSnap, recvSnap       []uint64
}

type seqKey struct {
	node gmproto.NodeID
	prio gmproto.Priority
}

// NewShadowStore returns an empty store for a port.
func NewShadowStore(port gmproto.PortID) *ShadowStore {
	return &ShadowStore{
		port:       port,
		sendTokens: make(map[uint64]gmproto.SendToken),
		recvTokens: make(map[uint64]gmproto.RecvToken),
		txSeq:      make(map[seqKey]uint32),
	}
}

// Port returns the owning port.
func (s *ShadowStore) Port() gmproto.PortID { return s.port }

// NextSeq mints the next sequence number of the (dest, priority) stream.
func (s *ShadowStore) NextSeq(dest gmproto.NodeID, prio gmproto.Priority) uint32 {
	s.specTouch()
	k := seqKey{node: dest, prio: prio}
	s.logSeq(k)
	s.txSeq[k]++
	return s.txSeq[k]
}

// ResetPeerSeqs forgets the sequence streams toward one remote node, both
// priorities. Used when a peer expelled as unreachable is readmitted: its
// terminal send failures left gaps in the old streams, so both sides restart
// at sequence 1 (the receive side forgets via RxAckTable.Forget).
func (s *ShadowStore) ResetPeerSeqs(node gmproto.NodeID) {
	s.specTouch()
	lo := seqKey{node: node, prio: gmproto.PriorityLow}
	hi := seqKey{node: node, prio: gmproto.PriorityHigh}
	s.logSeq(lo)
	s.logSeq(hi)
	delete(s.txSeq, lo)
	delete(s.txSeq, hi)
}

// AddSendToken records a token handed to the LANai; "when a call to any of
// the gm_send() functions is made, a copy of the send token is added to the
// queue" (§4.1). Re-adding an id that was removed places it at the back of
// the queue (it is a fresh token that happens to reuse the id).
func (s *ShadowStore) AddSendToken(tok gmproto.SendToken) {
	s.specTouch()
	if _, dup := s.sendTokens[tok.ID]; !dup {
		if hasID(s.sendOrder, tok.ID) {
			s.snapSendOrder()
			s.sendOrder = scrubID(s.sendOrder, tok.ID)
		}
		s.sendOrder = append(s.sendOrder, tok.ID)
	}
	s.logSend(tok.ID)
	s.sendTokens[tok.ID] = tok
}

// hasID reports whether id occurs in order (a stale occurrence means the
// scrub will rewrite content in place, which the speculation journal must
// snapshot first; a plain append needs only the saved length).
func hasID(order []uint64, id uint64) bool {
	for _, v := range order {
		if v == id {
			return true
		}
	}
	return false
}

// scrubID drops stale occurrences of id left behind by a removal.
func scrubID(order []uint64, id uint64) []uint64 {
	out := order[:0]
	for _, v := range order {
		if v != id {
			out = append(out, v)
		}
	}
	return out
}

// RemoveSendToken drops the copy "just before the callback function for
// that send token is invoked" (§4.1).
func (s *ShadowStore) RemoveSendToken(id uint64) {
	s.specTouch()
	s.logSend(id)
	delete(s.sendTokens, id)
}

// AddRecvToken records a provided receive buffer.
func (s *ShadowStore) AddRecvToken(tok gmproto.RecvToken) {
	s.specTouch()
	if _, dup := s.recvTokens[tok.ID]; !dup {
		if hasID(s.recvOrder, tok.ID) {
			s.snapRecvOrder()
			s.recvOrder = scrubID(s.recvOrder, tok.ID)
		}
		s.recvOrder = append(s.recvOrder, tok.ID)
	}
	s.logRecv(tok.ID)
	s.recvTokens[tok.ID] = tok
}

// RemoveRecvToken drops the copy when the message lands ("the receiver, at
// this time, also deletes the corresponding copy of the receive token",
// §4.1).
func (s *ShadowStore) RemoveRecvToken(id uint64) {
	s.specTouch()
	s.logRecv(id)
	delete(s.recvTokens, id)
}

// OutstandingSends returns the unacknowledged send tokens in posting order —
// "the send tokens contain the sequence numbers of the messages that have
// not been acknowledged" (§4.4). Order matters: restored messages must
// re-enter the window in sequence order.
func (s *ShadowStore) OutstandingSends() []gmproto.SendToken {
	return s.AppendOutstandingSends(make([]gmproto.SendToken, 0, len(s.sendTokens)))
}

// AppendOutstandingSends is OutstandingSends into a caller-retained buffer:
// appending onto dst (usually dst[:0] of a pooled slice) keeps periodic
// checkpoint encoding allocation-free at steady state.
func (s *ShadowStore) AppendOutstandingSends(dst []gmproto.SendToken) []gmproto.SendToken {
	s.specTouch()
	live := s.sendOrder[:0]
	for _, id := range s.sendOrder {
		tok, ok := s.sendTokens[id]
		if !ok {
			// First stale entry: the compaction below starts rewriting
			// content in place, and up to here every write was an identity,
			// so the span-start prefix is still intact to snapshot.
			s.snapSendOrder()
			continue
		}
		live = append(live, id)
		dst = append(dst, tok)
	}
	s.sendOrder = live
	return dst
}

// OutstandingRecvs returns the receive tokens the LANai still owes buffers
// for, in posting order.
func (s *ShadowStore) OutstandingRecvs() []gmproto.RecvToken {
	return s.AppendOutstandingRecvs(make([]gmproto.RecvToken, 0, len(s.recvTokens)))
}

// AppendOutstandingRecvs is OutstandingRecvs into a caller-retained buffer.
func (s *ShadowStore) AppendOutstandingRecvs(dst []gmproto.RecvToken) []gmproto.RecvToken {
	s.specTouch()
	live := s.recvOrder[:0]
	for _, id := range s.recvOrder {
		tok, ok := s.recvTokens[id]
		if !ok {
			s.snapRecvOrder()
			continue
		}
		live = append(live, id)
		dst = append(dst, tok)
	}
	s.recvOrder = live
	return dst
}

// Counts reports outstanding send and receive token counts.
func (s *ShadowStore) Counts() (sends, recvs int) {
	return len(s.sendTokens), len(s.recvTokens)
}

// SeqStream is one host-generated sequence stream's cursor: the last
// sequence number minted toward (Node, Prio). Exposed for endpoint
// checkpointing (internal/ckpt), which must serialize the generator state
// deterministically.
type SeqStream struct {
	Node gmproto.NodeID
	Prio gmproto.Priority
	Last uint32
}

// SeqStreams returns every sequence-stream cursor, sorted by (node,
// priority) so the enumeration is deterministic.
func (s *ShadowStore) SeqStreams() []SeqStream {
	out := make([]SeqStream, 0, len(s.txSeq))
	for k, v := range s.txSeq {
		out = append(out, SeqStream{Node: k.node, Prio: k.prio, Last: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Prio < out[j].Prio
	})
	return out
}

// AppendSeqStreams is SeqStreams into a caller-retained buffer, sorted with
// slices.SortFunc so the append-and-sort allocates nothing once dst has
// steady-state capacity.
func (s *ShadowStore) AppendSeqStreams(dst []SeqStream) []SeqStream {
	base := len(dst)
	for k, v := range s.txSeq {
		dst = append(dst, SeqStream{Node: k.node, Prio: k.prio, Last: v})
	}
	slices.SortFunc(dst[base:], func(a, b SeqStream) int {
		if a.Node != b.Node {
			return int(a.Node) - int(b.Node)
		}
		return int(a.Prio) - int(b.Prio)
	})
	return dst
}

// RestoreSeq reinstates a sequence-stream cursor from a checkpoint: the next
// NextSeq for (node, prio) returns last+1.
func (s *ShadowStore) RestoreSeq(node gmproto.NodeID, prio gmproto.Priority, last uint32) {
	s.specTouch()
	k := seqKey{node: node, prio: prio}
	s.logSeq(k)
	s.txSeq[k] = last
}

// Per-entry sizes of the backup structures, as a C implementation inside
// the GM library would declare them (§5 prices the whole process-side
// overhead at ~20 KB of virtual memory).
const (
	sendTokenBytes = 96 // buffer pointer/len, destination, priority, seq
	recvTokenBytes = 32 // buffer len, priority, id
	seqStreamBytes = 8  // per-destination next sequence number
)

// FootprintBytes reports the process virtual memory held by this port's
// backup copies: the shadow send/receive token queues and the sequence
// generators. Hash-table slack is included at 2x load factor.
func (s *ShadowStore) FootprintBytes(maxSendTokens, maxRecvTokens, maxNodes int) int {
	sends := maxSendTokens * sendTokenBytes * 2
	recvs := maxRecvTokens * recvTokenBytes * 2
	seqs := maxNodes * seqStreamBytes
	return sends + recvs + seqs
}

// RxAckTable is the node-level copy of the last sequence number received on
// each incoming stream — "an ACK number for every (connection, port) pair"
// (§4.1). The gm library updates it from the sequence number the LANai
// includes in every receive event.
type RxAckTable struct {
	last map[gmproto.StreamID]uint32

	// Dirty-epoch tracking for incremental checkpoints. epoch is 0 while
	// tracking is off; once enabled, every Update stamps the stream's mark
	// with the current epoch, and NextDirtyEpoch (called after each delta
	// emission) opens a fresh epoch without touching the marks. Forget
	// deletes entries — which a merge delta cannot express — so it latches
	// replaced, telling the next delta to carry the whole table. All of it
	// is journaled through the same undo log as the entries: a rolled-back
	// span must not leave false dirt, or checkpoint frames would depend on
	// the speculation schedule instead of virtual time alone.
	marks    map[gmproto.StreamID]uint64
	epoch    uint64
	replaced bool

	// Speculation journaling (core spec.go): per-operation undo log — the
	// table takes a write per received message.
	eng      *sim.Engine
	specMark uint64
	ops      []rxAckOp
}

// NewRxAckTable returns an empty table.
func NewRxAckTable() *RxAckTable {
	return &RxAckTable{last: make(map[gmproto.StreamID]uint32)}
}

// Update records a received (and host-committed) sequence number.
func (t *RxAckTable) Update(id gmproto.StreamID, seq uint32) {
	if seq > t.last[id] {
		t.specTouch()
		t.logEntry(id)
		t.last[id] = seq
		t.markDirty(id)
	}
}

// Last returns the recorded sequence number for a stream.
func (t *RxAckTable) Last(id gmproto.StreamID) uint32 { return t.last[id] }

// Snapshot copies the table for upload to a recovering LANai (§4.4).
func (t *RxAckTable) Snapshot() map[gmproto.StreamID]uint32 {
	out := make(map[gmproto.StreamID]uint32, len(t.last))
	for k, v := range t.last {
		out[k] = v
	}
	return out
}

// Forget drops every stream originating at one remote node. Used on
// readmission of an expelled peer, whose streams restart at sequence 1.
func (t *RxAckTable) Forget(node gmproto.NodeID) {
	t.specTouch()
	for id := range t.last {
		if id.Node == node {
			t.logEntry(id)
			delete(t.last, id)
		}
	}
	t.setReplaced()
}

// Len reports how many streams are tracked.
func (t *RxAckTable) Len() int { return len(t.last) }

// StartDirtyTracking opens the first dirty epoch. The caller is expected to
// take a full base checkpoint at the same instant, so no pre-existing entry
// needs marking. Idempotent restart after StopDirtyTracking opens a fresh
// epoch (stale marks from the previous run compare unequal and read clean).
func (t *RxAckTable) StartDirtyTracking() {
	t.specTouch()
	if t.marks == nil {
		t.marks = make(map[gmproto.StreamID]uint64, len(t.last)+16)
	}
	t.logEpoch()
	t.epoch++
	t.replaced = false
}

// StopDirtyTracking turns tracking off; marks are retained (stale) so a
// later restart is cheap.
func (t *RxAckTable) StopDirtyTracking() {
	if t.epoch == 0 {
		return
	}
	t.specTouch()
	t.logEpoch()
	t.epoch = 0
	t.replaced = false
}

// NextDirtyEpoch closes the current epoch after a delta emission: entries
// marked so far read clean until their next Update.
func (t *RxAckTable) NextDirtyEpoch() {
	if t.epoch == 0 {
		return
	}
	t.specTouch()
	t.logEpoch()
	t.epoch++
	t.replaced = false
}

// Replaced reports whether the table saw a deletion this epoch, forcing the
// next delta to carry the whole table instead of a merge.
func (t *RxAckTable) Replaced() bool { return t.replaced }

// DirtyLen reports how many live streams are marked in the current epoch.
func (t *RxAckTable) DirtyLen() int {
	n := 0
	for id, m := range t.marks {
		if m == t.epoch {
			if _, ok := t.last[id]; ok {
				n++
			}
		}
	}
	return n
}

// AppendDirtyStreams appends the streams dirtied in the current epoch,
// sorted by (node, port, priority). Marks whose entry has since been
// deleted (a rolled-back insert, or a Forget — which forces a full replace
// anyway) are skipped, so the result is a pure function of committed state.
func (t *RxAckTable) AppendDirtyStreams(dst []gmproto.StreamID) []gmproto.StreamID {
	base := len(dst)
	for id, m := range t.marks {
		if m == t.epoch {
			if _, ok := t.last[id]; ok {
				dst = append(dst, id)
			}
		}
	}
	sortStreamIDs(dst[base:])
	return dst
}

// AppendAllStreams appends every tracked stream, sorted — the replace-all
// companion of AppendDirtyStreams.
func (t *RxAckTable) AppendAllStreams(dst []gmproto.StreamID) []gmproto.StreamID {
	base := len(dst)
	for id := range t.last {
		dst = append(dst, id)
	}
	sortStreamIDs(dst[base:])
	return dst
}

func sortStreamIDs(ids []gmproto.StreamID) {
	slices.SortFunc(ids, func(a, b gmproto.StreamID) int {
		if a.Node != b.Node {
			return int(a.Node) - int(b.Node)
		}
		if a.Port != b.Port {
			return int(a.Port) - int(b.Port)
		}
		return int(a.Prio) - int(b.Prio)
	})
}
