package mapper

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/fabric"
	"repro/internal/gmproto"
	"repro/internal/host"
	"repro/internal/lanai"
	"repro/internal/mcp"
	"repro/internal/sim"
)

// testNet is a hand-built fabric for mapper tests.
type testNet struct {
	eng      *sim.Engine
	mcps     []*mcp.MCP
	switches []*fabric.Switch
	links    []*fabric.Link
}

func newNet(t *testing.T) *testNet {
	t.Helper()
	return &testNet{eng: sim.NewEngine(1)}
}

func (n *testNet) addNode(t *testing.T, uid uint64) *mcp.MCP {
	t.Helper()
	i := len(n.mcps)
	pci := host.NewPCIBus(n.eng, fmt.Sprintf("pci%d", i), host.DefaultPCIConfig())
	chip := lanai.New(n.eng, fmt.Sprintf("lanai%d", i), lanai.DefaultConfig(), pci)
	m := mcp.New(chip, mcp.DefaultConfig(), mcp.ModeGM)
	m.SetUID(uid)
	m.LoadAndStart()
	n.mcps = append(n.mcps, m)
	return m
}

func (n *testNet) addSwitch(t *testing.T) *fabric.Switch {
	t.Helper()
	sw := fabric.NewSwitch(n.eng, fmt.Sprintf("sw%d", len(n.switches)), fabric.DefaultSwitchConfig())
	n.switches = append(n.switches, sw)
	return sw
}

func (n *testNet) cable(t *testing.T, m *mcp.MCP, sw *fabric.Switch, port int) *fabric.Link {
	t.Helper()
	l := fabric.NewLink(n.eng, fabric.DefaultLinkConfig(), m.Chip(), sw)
	if err := sw.AttachLink(port, l); err != nil {
		t.Fatal(err)
	}
	m.Chip().Attach(l.EndFor(m.Chip()))
	n.links = append(n.links, l)
	return l
}

func (n *testNet) trunk(t *testing.T, a, b *fabric.Switch, pa, pb int) *fabric.Link {
	t.Helper()
	l := fabric.NewLink(n.eng, fabric.DefaultLinkConfig(), a, b)
	if err := a.AttachLink(pa, l); err != nil {
		t.Fatal(err)
	}
	if err := b.AttachLink(pb, l); err != nil {
		t.Fatal(err)
	}
	n.links = append(n.links, l)
	return l
}

func runMapper(t *testing.T, n *testNet, local *mcp.MCP, cfg Config) Result {
	t.Helper()
	var res Result
	var err error
	finished := false
	New(local, cfg).Run(func(r Result, e error) { res, err, finished = r, e, true })
	n.eng.RunUntil(n.eng.Now() + sim.Second)
	if !finished {
		t.Fatal("mapper did not finish")
	}
	if err != nil {
		t.Fatalf("mapper: %v", err)
	}
	return res
}

// verifyAllPairs opens a port on every node and checks a message can travel
// between every ordered pair using the distributed route tables.
func verifyAllPairs(t *testing.T, n *testNet) {
	t.Helper()
	recvd := make([]map[string]bool, len(n.mcps))
	for i, m := range n.mcps {
		i := i
		recvd[i] = make(map[string]bool)
		if err := m.HostOpenPort(2, func(ev gmproto.Event) {
			if ev.Type == gmproto.EvReceived {
				recvd[i][string(ev.Data)] = true
			}
		}); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < len(n.mcps); j++ {
			if err := m.HostPostRecvToken(2, gmproto.RecvToken{ID: uint64(100*i + j), Size: 64, Prio: gmproto.PriorityLow}); err != nil {
				t.Fatal(err)
			}
		}
	}
	tid := uint64(1000)
	for i, src := range n.mcps {
		for j, dst := range n.mcps {
			if i == j {
				continue
			}
			tid++
			tok := gmproto.SendToken{
				ID: tid, Dest: dst.NodeID(), DestPort: 2, SrcPort: 2,
				Prio: gmproto.PriorityLow,
				Data: []byte(fmt.Sprintf("%d->%d", i, j)),
			}
			if err := src.HostPostSend(tok); err != nil {
				t.Fatal(err)
			}
		}
	}
	n.eng.RunUntil(n.eng.Now() + 100*sim.Millisecond)
	for i := range n.mcps {
		for j := range n.mcps {
			if i == j {
				continue
			}
			if !recvd[j][fmt.Sprintf("%d->%d", i, j)] {
				t.Errorf("message %d->%d not delivered", i, j)
			}
		}
	}
}

func TestMapSingleSwitch(t *testing.T) {
	n := newNet(t)
	sw := n.addSwitch(t)
	for i := 0; i < 4; i++ {
		m := n.addNode(t, uint64(0xA0+i))
		n.cable(t, m, sw, i*2) // spread over ports 0,2,4,6
	}
	res := runMapper(t, n, n.mcps[0], DefaultConfig())
	if len(res.IDs) != 4 {
		t.Fatalf("discovered %d interfaces, want 4", len(res.IDs))
	}
	// Deterministic identity assignment by UID order.
	for i := 0; i < 4; i++ {
		if res.IDs[uint64(0xA0+i)] != gmproto.NodeID(i+1) {
			t.Errorf("IDs = %v", res.IDs)
		}
	}
	for i, m := range n.mcps {
		if m.NodeID() != gmproto.NodeID(i+1) {
			t.Errorf("node %d got NodeID %d", i, m.NodeID())
		}
		if len(m.Routes()) != 3 {
			t.Errorf("node %d has %d routes, want 3", i, len(m.Routes()))
		}
	}
	verifyAllPairs(t, n)
}

func TestMapTwoSwitches(t *testing.T) {
	n := newNet(t)
	s1 := n.addSwitch(t)
	s2 := n.addSwitch(t)
	n.trunk(t, s1, s2, 7, 0)
	for i := 0; i < 2; i++ {
		m := n.addNode(t, uint64(0xB0+i))
		n.cable(t, m, s1, i)
	}
	for i := 0; i < 2; i++ {
		m := n.addNode(t, uint64(0xB8+i))
		n.cable(t, m, s2, i+3)
	}
	res := runMapper(t, n, n.mcps[0], DefaultConfig())
	if len(res.IDs) != 4 {
		t.Fatalf("discovered %d interfaces, want 4: %v", len(res.IDs), res.IDs)
	}
	verifyAllPairs(t, n)
}

func TestMapThreeSwitchLine(t *testing.T) {
	n := newNet(t)
	s1 := n.addSwitch(t)
	s2 := n.addSwitch(t)
	s3 := n.addSwitch(t)
	n.trunk(t, s1, s2, 7, 0)
	n.trunk(t, s2, s3, 7, 0)
	a := n.addNode(t, 0xC1)
	n.cable(t, a, s1, 2)
	b := n.addNode(t, 0xC2)
	n.cable(t, b, s2, 3)
	c := n.addNode(t, 0xC3)
	n.cable(t, c, s3, 4)
	res := runMapper(t, n, n.mcps[0], DefaultConfig())
	if len(res.IDs) != 3 {
		t.Fatalf("discovered %d interfaces, want 3", len(res.IDs))
	}
	verifyAllPairs(t, n)
}

func TestMapperFromNonFirstNode(t *testing.T) {
	n := newNet(t)
	sw := n.addSwitch(t)
	for i := 0; i < 3; i++ {
		m := n.addNode(t, uint64(0xD0+i))
		n.cable(t, m, sw, i)
	}
	// The mapper runs on the *last* node; identities must still be
	// assigned by UID order, not mapper position.
	res := runMapper(t, n, n.mcps[2], DefaultConfig())
	if res.MapperID != 3 {
		t.Errorf("MapperID = %d, want 3", res.MapperID)
	}
	verifyAllPairs(t, n)
}

func TestRemapAfterNodeLoss(t *testing.T) {
	n := newNet(t)
	sw := n.addSwitch(t)
	for i := 0; i < 3; i++ {
		m := n.addNode(t, uint64(0xE0+i))
		n.cable(t, m, sw, i)
	}
	res := runMapper(t, n, n.mcps[0], DefaultConfig())
	if len(res.IDs) != 3 {
		t.Fatalf("initial map found %d", len(res.IDs))
	}
	// Node 2's link dies; remapping must drop it.
	n.links[2].SetUp(false)
	res2 := runMapper(t, n, n.mcps[0], DefaultConfig())
	if len(res2.IDs) != 2 {
		t.Fatalf("after link loss map found %d, want 2", len(res2.IDs))
	}
	if _, gone := res2.IDs[0xE2]; gone {
		t.Error("dead interface still mapped")
	}
}

func TestMapperIsolatedNode(t *testing.T) {
	n := newNet(t)
	sw := n.addSwitch(t)
	m := n.addNode(t, 0xF0)
	n.cable(t, m, sw, 0)
	res := runMapper(t, n, m, DefaultConfig())
	// A lone mapper still produces a one-node map of itself.
	if len(res.IDs) != 1 || res.IDs[0xF0] != 1 {
		t.Errorf("IDs = %v, want self only", res.IDs)
	}
	if m.NodeID() != 1 {
		t.Errorf("NodeID = %d, want 1", m.NodeID())
	}
}

func TestSpliceRoute(t *testing.T) {
	cases := []struct {
		name     string
		toX, toY []byte
		want     []byte
	}{
		{"from mapper", nil, []byte{2}, []byte{2}},
		{"to mapper", []byte{2}, nil, []byte{0xFE}},
		{"siblings one switch", []byte{2}, []byte{5}, []byte{3}},
		{"two switches diverge at first", []byte{1, 2}, []byte{3}, []byte{0xFE, 2}},
		{"shared prefix", []byte{1, 2}, []byte{1, 5}, []byte{3}},
		{"long shared prefix", []byte{1, 4, 2}, []byte{1, 4, 6}, []byte{4}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := SpliceRoute(c.toX, c.toY)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, c.want) {
				t.Errorf("SpliceRoute(%v, %v) = %v, want %v", c.toX, c.toY, got, c.want)
			}
		})
	}
	if _, err := SpliceRoute(nil, nil); err == nil {
		t.Error("splice of empty routes succeeded")
	}
}

func TestReverseRoute(t *testing.T) {
	got := gmproto.ReverseRoute([]byte{1, 0xFE, 3}) // +1,-2,+3
	want := []byte{0xFD, 2, 0xFF}                   // -3,+2,-1
	if !bytes.Equal(got, want) {
		t.Errorf("ReverseRoute = %v, want %v", got, want)
	}
	if len(gmproto.ReverseRoute(nil)) != 0 {
		t.Error("reverse of empty route not empty")
	}
}

// runMapperPrior is runMapper with a prior identity assignment installed.
func runMapperPrior(t *testing.T, n *testNet, local *mcp.MCP, cfg Config, prior map[uint64]gmproto.NodeID) Result {
	t.Helper()
	var res Result
	var err error
	finished := false
	mp := New(local, cfg)
	mp.SetPrior(prior)
	mp.Run(func(r Result, e error) { res, err, finished = r, e, true })
	n.eng.RunUntil(n.eng.Now() + sim.Second)
	if !finished {
		t.Fatal("mapper did not finish")
	}
	if err != nil {
		t.Fatalf("mapper: %v", err)
	}
	return res
}

// TestRemapKeepsSurvivorIDs is the NodeID-stability regression test: when a
// node disappears and the fabric is remapped with the prior assignment
// installed, every survivor keeps its identity. (Without SetPrior the mapper
// reassigns 1..n over the sorted survivors, silently renaming nodes whose
// UID sorts after the casualty — and the protocol stack keys its sequence
// streams by NodeID.)
func TestRemapKeepsSurvivorIDs(t *testing.T) {
	n := newNet(t)
	sw := n.addSwitch(t)
	for i := 0; i < 3; i++ {
		m := n.addNode(t, uint64(0xE0+i))
		n.cable(t, m, sw, i)
	}
	res := runMapper(t, n, n.mcps[0], DefaultConfig())
	if res.IDs[0xE0] != 1 || res.IDs[0xE1] != 2 || res.IDs[0xE2] != 3 {
		t.Fatalf("initial IDs = %v", res.IDs)
	}

	// The middle node's link dies; the survivor with the larger UID must
	// keep NodeID 3, not slide down to 2.
	n.links[1].SetUp(false)
	res2 := runMapperPrior(t, n, n.mcps[0], DefaultConfig(), res.IDs)
	if len(res2.IDs) != 2 {
		t.Fatalf("after link loss map found %d, want 2", len(res2.IDs))
	}
	if res2.IDs[0xE0] != 1 || res2.IDs[0xE2] != 3 {
		t.Fatalf("survivor IDs moved: %v, want 0xE0->1 0xE2->3", res2.IDs)
	}
	if n.mcps[2].NodeID() != 3 {
		t.Fatalf("node 0xE2 reconfigured to NodeID %d, want 3", n.mcps[2].NodeID())
	}
}

// TestRemapNewcomerFillsGap checks a node joining after a loss takes the
// smallest unused identity rather than colliding with a survivor.
func TestRemapNewcomerFillsGap(t *testing.T) {
	n := newNet(t)
	sw := n.addSwitch(t)
	for i := 0; i < 3; i++ {
		m := n.addNode(t, uint64(0xE0+i))
		n.cable(t, m, sw, i)
	}
	res := runMapper(t, n, n.mcps[0], DefaultConfig())

	// 0xE1 (NodeID 2) leaves; a brand-new interface appears.
	n.links[1].SetUp(false)
	nu := n.addNode(t, 0xEE)
	n.cable(t, nu, sw, 5)
	res2 := runMapperPrior(t, n, n.mcps[0], DefaultConfig(), res.IDs)
	if res2.IDs[0xE0] != 1 || res2.IDs[0xE2] != 3 {
		t.Fatalf("survivor IDs moved: %v", res2.IDs)
	}
	if res2.IDs[0xEE] != 2 {
		t.Fatalf("newcomer got NodeID %d, want the vacated 2 (IDs=%v)", res2.IDs[0xEE], res2.IDs)
	}
}

// TestMapDualTrunkFailover proves the dual-trunk topology offers two
// link-disjoint routes between the switches: killing either trunk alone, a
// remap (with prior identities) still reaches every interface through the
// surviving trunk, with spliced all-pairs routes that deliver.
func TestMapDualTrunkFailover(t *testing.T) {
	for kill := 0; kill < 2; kill++ {
		t.Run(fmt.Sprintf("kill-trunk-%d", kill), func(t *testing.T) {
			n := newNet(t)
			s1 := n.addSwitch(t)
			s2 := n.addSwitch(t)
			trunks := []*fabric.Link{
				n.trunk(t, s1, s2, 6, 6),
				n.trunk(t, s1, s2, 7, 7),
			}
			for i := 0; i < 2; i++ {
				m := n.addNode(t, uint64(0xB0+i))
				n.cable(t, m, s1, i)
			}
			for i := 0; i < 2; i++ {
				m := n.addNode(t, uint64(0xB8+i))
				n.cable(t, m, s2, i)
			}
			res := runMapper(t, n, n.mcps[0], DefaultConfig())
			if len(res.IDs) != 4 {
				t.Fatalf("initial map found %d interfaces, want 4", len(res.IDs))
			}
			verifyAllPairs(t, n)
			for _, m := range n.mcps {
				m.HostClosePort(2)
			}

			trunks[kill].SetUp(false)
			res2 := runMapperPrior(t, n, n.mcps[0], DefaultConfig(), res.IDs)
			if len(res2.IDs) != 4 {
				t.Fatalf("after trunk %d death map found %d interfaces, want 4", kill, len(res2.IDs))
			}
			for uid, id := range res.IDs {
				if res2.IDs[uid] != id {
					t.Fatalf("IDs moved across trunk failover: %v -> %v", res.IDs, res2.IDs)
				}
			}
			verifyAllPairs(t, n)
		})
	}
}

// TestMapperAbort checks an aborted run goes quiet: no completion callback,
// no configuration distribution.
func TestMapperAbort(t *testing.T) {
	n := newNet(t)
	sw := n.addSwitch(t)
	for i := 0; i < 2; i++ {
		m := n.addNode(t, uint64(0xA0+i))
		n.cable(t, m, sw, i)
	}
	mp := New(n.mcps[0], DefaultConfig())
	finished := false
	mp.Run(func(Result, error) { finished = true })
	// Abort almost immediately, well before any round completes.
	n.eng.After(sim.Microsecond, mp.Abort)
	n.eng.RunUntil(n.eng.Now() + sim.Second)
	if finished {
		t.Fatal("aborted mapper still reported completion")
	}
	if n.mcps[1].NodeID() != 0 {
		t.Fatalf("aborted mapper still configured a node (NodeID %d)", n.mcps[1].NodeID())
	}
}
