// Package mapper implements the GM mapper: the program that runs on one
// node, explores the fabric with scout packets, assigns every interface an
// identity, computes source routes, and distributes (identity, route table)
// configuration to each interface — after which "each interface has a map
// of the network and routes to all other interfaces stored in its local
// memory" (§2 of the paper). Re-running the mapper reconfigures the network
// when links or nodes appear or disappear, and the FTD restores the
// mapper's output into a recovering interface (§4.3).
//
// Exploration is breadth-first over route space: scouts are launched along
// every delta sequence up to MaxDepth; an interface reached by a scout
// answers with its burned-in UID over the reverse route (negated deltas,
// reversed). Routes between two non-mapper nodes are spliced at the
// mapper's first switch from the mapper's own routes, with the junction
// delta adjusted for the different ingress port.
package mapper

import (
	"errors"

	"repro/internal/gmproto"
	"repro/internal/mcp"
	"repro/internal/routing"
	"repro/internal/sim"
)

// Config controls the exploration.
type Config struct {
	// MaxDepth is the maximum route length explored (switch hops).
	MaxDepth int
	// MaxDelta bounds the per-hop delta magnitude; 8-port switches need
	// deltas in [-7, 7].
	MaxDelta int
	// RoundTimeout is how long the mapper waits for scout replies of one
	// depth after the last scout of the round left.
	RoundTimeout sim.Duration
	// ScoutGap paces probe injection so replies do not overrun the
	// mapper's own packet ring (the real mapper likewise rate-limits).
	ScoutGap sim.Duration
}

// DefaultConfig explores up to three switch hops on 8-port switches.
func DefaultConfig() Config {
	return Config{
		MaxDepth:     3,
		MaxDelta:     7,
		RoundTimeout: 1 * sim.Millisecond,
		ScoutGap:     2 * sim.Microsecond,
	}
}

// Result is the outcome of a mapping run.
type Result struct {
	// IDs maps each discovered interface UID to its assigned NodeID.
	IDs map[uint64]gmproto.NodeID
	// Routes maps each assigned NodeID to its route table (routes to every
	// other node).
	Routes map[gmproto.NodeID]map[gmproto.NodeID][]byte
	// MapperID is the NodeID assigned to the mapping node itself.
	MapperID gmproto.NodeID
	// ScoutsSent counts probes launched.
	ScoutsSent int
	// Elapsed is how long the mapping protocol took.
	Elapsed sim.Duration
}

// ErrNoInterfaces is reported when exploration finds nothing and the
// mapper cannot even configure itself.
var ErrNoInterfaces = errors.New("mapper: no interfaces discovered")

// Mapper drives one mapping run from a node's MCP.
type Mapper struct {
	eng   *sim.Engine
	local *mcp.MCP
	cfg   Config

	found    map[uint64][]byte // uid -> shortest forward route
	frontier [][]byte
	scouts   int
	started  sim.Time
	done     func(Result, error)

	// prior is the previous map's UID->NodeID assignment. Interfaces found
	// again keep their prior identity; only newcomers get fresh IDs. The
	// protocol stack keys its streams by NodeID, so an identity that moved
	// between nodes across a remap would silently cross-wire sequence spaces.
	prior map[uint64]gmproto.NodeID

	aborted bool

	// scoutSend paces the frontier's scout launches (one every ScoutGap)
	// without allocating a timer closure per probe — a mapping round floods
	// hundreds of scouts, and remaps run while traffic continues.
	scoutSend *sim.Deferred[[]byte]
}

// New prepares a mapper on the given (local) interface.
func New(local *mcp.MCP, cfg Config) *Mapper {
	mp := &Mapper{
		eng:   local.Chip().Engine(),
		local: local,
		cfg:   cfg,
		found: make(map[uint64][]byte),
	}
	mp.scoutSend = sim.NewDeferred(mp.eng, "scout", func(route []byte) {
		if mp.aborted {
			return
		}
		scout := gmproto.ScoutPayload{Fwd: route}
		mp.local.RawTransmit(route, scout.Encode())
	})
	return mp
}

// SetPrior installs the previous map's UID->NodeID assignment; re-found
// interfaces keep those identities (see the prior field). Call before Run.
func (mp *Mapper) SetPrior(prior map[uint64]gmproto.NodeID) {
	mp.prior = make(map[uint64]gmproto.NodeID, len(prior))
	for uid, id := range prior {
		mp.prior[uid] = id
	}
}

// Abort cancels a run in flight: the map sink is released and no further
// rounds, configuration distribution, or done callback will happen. Used by
// the network watchdog when a remap overruns its convergence cap.
func (mp *Mapper) Abort() {
	mp.aborted = true
	mp.local.SetMapSink(nil)
}

// Run starts the mapping protocol; done is invoked (in virtual time) with
// the result. The local interface's map sink is taken over for the run.
func (mp *Mapper) Run(done func(Result, error)) {
	mp.done = done
	mp.started = mp.eng.Now()
	mp.local.SetMapSink(mp.onReply)
	// Depth-1 frontier: every single-delta route.
	mp.frontier = nil
	for d := -mp.cfg.MaxDelta; d <= mp.cfg.MaxDelta; d++ {
		mp.frontier = append(mp.frontier, []byte{byte(int8(d))})
	}
	mp.runRound(1)
}

func (mp *Mapper) runRound(depth int) {
	for i, route := range mp.frontier {
		mp.scoutSend.After(sim.Duration(i)*mp.cfg.ScoutGap, route)
		mp.scouts++
	}
	sendSpan := sim.Duration(len(mp.frontier)) * mp.cfg.ScoutGap
	mp.eng.After(sendSpan+mp.cfg.RoundTimeout, func() {
		if mp.aborted {
			return
		}
		if depth >= mp.cfg.MaxDepth {
			mp.finish()
			return
		}
		// Extend only routes that did not terminate at an interface:
		// those may have ended at a switch (or at nothing — the depth
		// bound kills the difference).
		var next [][]byte
		for _, route := range mp.frontier {
			if mp.reachedInterface(route) {
				continue
			}
			for d := -mp.cfg.MaxDelta; d <= mp.cfg.MaxDelta; d++ {
				ext := make([]byte, len(route)+1)
				copy(ext, route)
				ext[len(route)] = byte(int8(d))
				next = append(next, ext)
			}
		}
		mp.frontier = next
		if len(next) == 0 {
			mp.finish()
			return
		}
		mp.runRound(depth + 1)
	})
}

func (mp *Mapper) reachedInterface(route []byte) bool {
	for _, r := range mp.found {
		if len(r) == len(route) && string(r) == string(route) {
			return true
		}
	}
	return false
}

func (mp *Mapper) onReply(payload []byte) {
	r, err := gmproto.DecodeReply(payload)
	if err != nil {
		return
	}
	if r.UID == mp.local.UID() {
		return // a scout that looped straight back home
	}
	if prev, ok := mp.found[r.UID]; ok && len(prev) <= len(r.Fwd) {
		return
	}
	mp.found[r.UID] = r.Fwd
}

// finish assigns identities, computes all-pairs routes, distributes the
// configuration, and reports the result.
func (mp *Mapper) finish() {
	if mp.aborted {
		return
	}
	mp.local.SetMapSink(nil)
	// A mapper that found nothing still configures itself: a one-node map
	// (the rest of the fabric may be down or absent).

	// Deterministic identity assignment (internal/routing): interfaces
	// present in the prior map keep their identity, newcomers fill the
	// smallest unused IDs from 1 up.
	uids := make([]uint64, 0, len(mp.found)+1)
	uids = append(uids, mp.local.UID())
	for uid := range mp.found {
		uids = append(uids, uid)
	}
	ids := routing.AssignIDs(uids, mp.prior)
	mapperID := ids[mp.local.UID()]

	// Mapper-relative routes: the anchor database the shared splicing core
	// (and, in the gossip plane, every member's local recompute) works from.
	fromMapper := make(map[gmproto.NodeID][]byte, len(mp.found))
	for uid, route := range mp.found {
		fromMapper[ids[uid]] = route
	}

	// All-pairs route tables via splicing at the mapper's first switch.
	members := make([]gmproto.NodeID, 0, len(uids))
	for _, uid := range uids {
		members = append(members, ids[uid])
	}
	routes := routing.Tables(members, fromMapper)

	// Distribute: remote nodes by config packet, the mapper node directly.
	for _, uid := range uids {
		id := ids[uid]
		if uid == mp.local.UID() {
			mp.local.SetNodeID(id)
			mp.local.UploadRoutes(routes[id])
			continue
		}
		cfg := gmproto.ConfigPayload{ID: id, Routes: routes[id]}
		mp.local.RawTransmit(fromMapper[id], cfg.Encode())
	}

	res := Result{
		IDs:        ids,
		Routes:     routes,
		MapperID:   mapperID,
		ScoutsSent: mp.scouts,
		Elapsed:    mp.eng.Now() - mp.started,
	}
	// Give the config packets time to land before reporting completion.
	mp.eng.After(mp.cfg.RoundTimeout, func() {
		if mp.aborted {
			return
		}
		mp.done(res, nil)
	})
}

// SpliceRoute builds a route X->Y out of the mapper's routes M->X and M->Y,
// spliced at their first divergence switch. The computation lives in
// internal/routing (shared with the gossip control plane, whose members
// splice their own tables locally); this forwarder keeps the mapper's
// historical API.
func SpliceRoute(toX, toY []byte) ([]byte, error) {
	return routing.SpliceRoute(toX, toY)
}
