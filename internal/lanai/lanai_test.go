package lanai

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/host"
	"repro/internal/sim"
)

func newChip(eng *sim.Engine) *Chip {
	pci := host.NewPCIBus(eng, "pci", host.PCIConfig{BytesPerSec: 264e6, TxnOverhead: 1500})
	c := New(eng, "lanai0", DefaultConfig(), pci)
	c.Start()
	return c
}

func TestTimerExpiryRaisesISR(t *testing.T) {
	eng := sim.NewEngine(1)
	c := newChip(eng)
	var raised []uint32
	c.SetISRHandler(func(bit uint32) { raised = append(raised, bit) })
	c.SetTimer(0, 100) // 100 ticks = 50 µs
	eng.Run()
	if len(raised) != 1 || raised[0] != ISRTimer0 {
		t.Fatalf("raised = %v", raised)
	}
	if eng.Now() != 50*sim.Microsecond {
		t.Errorf("expired at %v, want 50us", eng.Now())
	}
	if c.ISR()&ISRTimer0 == 0 {
		t.Error("ISR bit not set")
	}
	c.AckISR(ISRTimer0)
	if c.ISR()&ISRTimer0 != 0 {
		t.Error("AckISR did not clear")
	}
}

func TestTimerRearmReplaces(t *testing.T) {
	eng := sim.NewEngine(1)
	c := newChip(eng)
	count := 0
	c.SetISRHandler(func(bit uint32) { count++ })
	c.SetTimer(1, 100)
	eng.At(10*sim.Microsecond, func() { c.SetTimer(1, 100) })
	eng.Run()
	if count != 1 {
		t.Fatalf("timer fired %d times, want 1 (re-arm must replace)", count)
	}
	if eng.Now() != 60*sim.Microsecond {
		t.Errorf("fired at %v, want 60us", eng.Now())
	}
}

func TestStopTimer(t *testing.T) {
	eng := sim.NewEngine(1)
	c := newChip(eng)
	fired := false
	c.SetISRHandler(func(bit uint32) { fired = true })
	c.SetTimer(2, 10)
	if !c.TimerArmed(2) {
		t.Error("TimerArmed = false after SetTimer")
	}
	c.StopTimer(2)
	if c.TimerArmed(2) {
		t.Error("TimerArmed = true after StopTimer")
	}
	eng.Run()
	if fired {
		t.Error("stopped timer fired")
	}
}

func TestWatchdogInterruptPath(t *testing.T) {
	// The §4.2 mechanism end to end at chip level: IT1 armed, IMR unmasked,
	// processor hangs, IT1 expiry raises a host interrupt even though the
	// processor is dead.
	eng := sim.NewEngine(1)
	c := newChip(eng)
	var hostISR uint32
	c.SetHostInterrupt(func(isr uint32) { hostISR = isr })
	c.SetIMR(ISRTimer1)
	c.SetTimer(1, 2000) // 1 ms watchdog
	eng.At(100*sim.Microsecond, func() { c.Hang() })
	eng.Run()
	if hostISR&ISRTimer1 == 0 {
		t.Fatal("watchdog expiry did not interrupt the host")
	}
	if eng.Now() != 1*sim.Millisecond {
		t.Errorf("interrupt at %v, want 1ms", eng.Now())
	}
	if !c.Hung() {
		t.Error("Hung() = false")
	}
}

func TestHardHangKillsWatchdog(t *testing.T) {
	eng := sim.NewEngine(1)
	c := newChip(eng)
	interrupted := false
	c.SetHostInterrupt(func(isr uint32) { interrupted = true })
	c.SetIMR(ISRTimer1)
	c.SetTimer(1, 2000)
	eng.At(100*sim.Microsecond, func() { c.HardHang() })
	eng.Run()
	if interrupted {
		t.Fatal("hard hang must suppress the watchdog interrupt")
	}
}

func TestISRHandlerNotCalledWhenHung(t *testing.T) {
	eng := sim.NewEngine(1)
	c := newChip(eng)
	calls := 0
	c.SetISRHandler(func(bit uint32) { calls++ })
	c.Hang()
	c.RaiseISR(ISRDoorbell)
	if calls != 0 {
		t.Error("hung processor dispatched an ISR")
	}
	if c.ISR()&ISRDoorbell == 0 {
		t.Error("ISR bit must still latch while hung")
	}
}

func TestExecSerializesAndAccounts(t *testing.T) {
	eng := sim.NewEngine(1)
	c := newChip(eng)
	var done []sim.Time
	c.Exec(3*sim.Microsecond, func() { done = append(done, eng.Now()) })
	c.Exec(2*sim.Microsecond, func() { done = append(done, eng.Now()) })
	eng.Run()
	if len(done) != 2 || done[0] != 3*sim.Microsecond || done[1] != 5*sim.Microsecond {
		t.Fatalf("done = %v", done)
	}
	if c.Stats().ExecBusy != 5*sim.Microsecond {
		t.Errorf("ExecBusy = %v", c.Stats().ExecBusy)
	}
}

func TestExecInvalidatedByHang(t *testing.T) {
	eng := sim.NewEngine(1)
	c := newChip(eng)
	ran := false
	c.Exec(10*sim.Microsecond, func() { ran = true })
	eng.At(5*sim.Microsecond, func() { c.Hang() })
	eng.Run()
	if ran {
		t.Error("handler queued before hang ran after it")
	}
	// Exec while hung is dropped entirely.
	c.Exec(1, func() { ran = true })
	eng.Run()
	if ran {
		t.Error("Exec ran on hung processor")
	}
}

func TestExecInvalidatedByReset(t *testing.T) {
	eng := sim.NewEngine(1)
	c := newChip(eng)
	ran := false
	c.Exec(10*sim.Microsecond, func() { ran = true })
	eng.At(5*sim.Microsecond, func() { c.Reset(); c.Start() })
	eng.Run()
	if ran {
		t.Error("handler survived a reset")
	}
}

func TestHostDMASerializesOnEngine(t *testing.T) {
	eng := sim.NewEngine(1)
	c := newChip(eng)
	var done []sim.Time
	c.HostDMA(264, func() { done = append(done, eng.Now()) }) // 1000+1500 ns
	c.HostDMA(264, func() { done = append(done, eng.Now()) })
	eng.Run()
	if len(done) != 2 {
		t.Fatalf("done = %v", done)
	}
	if done[0] != 2500 || done[1] != 5000 {
		t.Errorf("done = %v, want [2500 5000]", done)
	}
	if c.Stats().HostDMAs != 2 || c.Stats().HostDMABytes != 528 {
		t.Errorf("stats = %+v", c.Stats())
	}
	if c.ISR()&ISRHostDMADone == 0 {
		t.Error("DMA done did not raise ISR")
	}
}

func TestHostDMAInvalidatedByReset(t *testing.T) {
	eng := sim.NewEngine(1)
	c := newChip(eng)
	ran := false
	c.HostDMA(264, func() { ran = true })
	c.Reset()
	c.Start()
	eng.Run()
	if ran {
		t.Error("DMA completion survived reset")
	}
}

func TestPacketLoopThroughLink(t *testing.T) {
	eng := sim.NewEngine(1)
	pci := host.NewPCIBus(eng, "pci", host.DefaultPCIConfig())
	a := New(eng, "a", DefaultConfig(), pci)
	b := New(eng, "b", DefaultConfig(), pci)
	a.Start()
	b.Start()
	l := fabric.NewLink(eng, fabric.DefaultLinkConfig(), a, b)
	a.Attach(l.EndFor(a))
	b.Attach(l.EndFor(b))
	var got uint32
	b.SetISRHandler(func(bit uint32) {
		if bit == ISRRecvPacket {
			got++
		}
	})
	p := &fabric.Packet{Payload: []byte("hi")}
	p.SealCRC()
	a.TransmitPacket(p)
	eng.Run()
	if got != 1 || b.RecvPending() != 1 {
		t.Fatalf("got=%d pending=%d", got, b.RecvPending())
	}
	if pkt := b.PopRecv(); pkt == nil || string(pkt.Payload) != "hi" {
		t.Error("payload lost")
	}
	if b.PopRecv() != nil {
		t.Error("ring not empty")
	}
}

func TestRecvDroppedWhenHung(t *testing.T) {
	eng := sim.NewEngine(1)
	c := newChip(eng)
	c.Hang()
	p := &fabric.Packet{Payload: []byte("x")}
	c.RecvPacket(p, nil)
	if c.Stats().PacketsDropped != 1 || c.RecvPending() != 0 {
		t.Error("hung chip buffered a packet")
	}
}

func TestRecvRingOverflow(t *testing.T) {
	eng := sim.NewEngine(1)
	pci := host.NewPCIBus(eng, "pci", host.DefaultPCIConfig())
	c := New(eng, "c", Config{SRAMSize: 4096, RecvRing: 2}, pci)
	c.Start()
	for i := 0; i < 3; i++ {
		c.RecvPacket(&fabric.Packet{}, nil)
	}
	if c.RecvPending() != 2 || c.Stats().PacketsDropped != 1 {
		t.Errorf("pending=%d dropped=%d", c.RecvPending(), c.Stats().PacketsDropped)
	}
}

func TestResetClearsState(t *testing.T) {
	eng := sim.NewEngine(1)
	c := newChip(eng)
	c.SetIMR(ISRTimer1)
	c.SetTimer(1, 100)
	c.RecvPacket(&fabric.Packet{}, nil)
	c.RaiseISR(ISRDoorbell)
	c.Reset()
	if c.Running() || c.Hung() {
		t.Error("reset left processor state")
	}
	if c.ISR() != 0 || c.IMR() != 0 {
		t.Error("reset left registers")
	}
	if c.TimerArmed(1) {
		t.Error("reset left timer armed")
	}
	if c.RecvPending() != 0 {
		t.Error("reset left buffered packets")
	}
	if c.Stats().Resets != 1 {
		t.Error("reset not counted")
	}
}

func TestMagicWordHandshake(t *testing.T) {
	eng := sim.NewEngine(1)
	c := newChip(eng)
	c.WriteWord(MagicAddr, MagicWord)
	if c.ReadWord(MagicAddr) != MagicWord {
		t.Fatal("SRAM word round trip failed")
	}
	// A live MCP clears it.
	c.WriteWord(MagicAddr, 0)
	if c.ReadWord(MagicAddr) != 0 {
		t.Fatal("clear failed")
	}
}

func TestSRAMBoundsSafe(t *testing.T) {
	eng := sim.NewEngine(1)
	c := newChip(eng)
	c.WriteWord(uint32(len(c.SRAM))-2, 7) // straddles the end: ignored
	if v := c.ReadWord(uint32(len(c.SRAM)) - 2); v != 0 {
		t.Error("out-of-bounds access not ignored")
	}
}

func TestClearSRAM(t *testing.T) {
	eng := sim.NewEngine(1)
	c := newChip(eng)
	c.WriteWord(0x100, 0xabcd)
	c.ClearSRAM()
	if c.ReadWord(0x100) != 0 {
		t.Error("ClearSRAM left data")
	}
}
