// Package lanai models the LANai chip at the center of the Myrinet host
// interface card (§2 of the paper): a RISC processor core, fast local SRAM,
// DMA logic to/from the network (the packet interface), E-bus DMA logic
// to/from the host across PCI, three 32-bit interval timers decremented
// every 0.5 µs, and the interface status / interrupt mask registers.
//
// The control program (package mcp) runs "on" this chip: its handlers
// execute serially on the single processor with explicit time costs, and a
// processor hang — the paper's central failure mode — stops the handlers
// while leaving the timer and interrupt logic alive, which is precisely the
// property the software watchdog of §4.2 relies on.
package lanai

import (
	"repro/internal/fabric"
	"repro/internal/host"
	"repro/internal/sim"
)

// ISR/IMR bits of the interface status register.
const (
	ISRTimer0      uint32 = 1 << iota // IT0: GM's L_timer interval timer
	ISRTimer1                         // IT1: the watchdog timer FTGM arms (§4.2)
	ISRTimer2                         // IT2: spare
	ISRRecvPacket                     // packet interface: packet landed in SRAM
	ISRHostDMADone                    // E-bus DMA engine completion
	ISRDoorbell                       // host wrote a doorbell word
)

// TimerTick is the interval timer decrement period: "32-bit counters that
// are decremented every 1/2 µs" (§4.2).
const TimerTick = 500 * sim.Nanosecond

// NumTimers is the number of interval timers on the chip.
const NumTimers = 3

// MagicAddr is the SRAM location used for the FTD's liveness handshake: the
// FTD writes a magic word here, which a live control program clears (§4.3).
const MagicAddr = 0x40

// MagicWord is the value the FTD writes to MagicAddr.
const MagicWord = 0xFEEDC0DE

// Config sets the chip's physical parameters.
type Config struct {
	// SRAMSize is the local memory size (512 KB..8 MB on real cards).
	SRAMSize int
	// RecvRing is how many arrived packets the packet interface can hold
	// before the control program services them; overflow is dropped (the
	// network-level Go-Back-N recovers).
	RecvRing int
}

// DefaultConfig models a LANai 9 card with 1 MB of SRAM.
func DefaultConfig() Config {
	return Config{SRAMSize: 1 << 20, RecvRing: 256}
}

// Stats counts chip-level activity.
type Stats struct {
	PacketsSent     uint64
	PacketsReceived uint64
	PacketsDropped  uint64 // recv-ring overflow or processor down
	HostDMAs        uint64
	HostDMABytes    uint64
	ExecBusy        sim.Duration // processor busy time
	Resets          uint64
}

type timer struct {
	event   *sim.Event
	armedAt sim.Time
	ticks   uint32
}

// Chip is one LANai instance. It implements fabric.Device so a link can be
// cabled directly into its packet interface.
type Chip struct {
	eng  *sim.Engine
	cfg  Config
	name string

	// SRAM backs the ISA-level fault experiments and the magic-word
	// handshake; protocol state is modeled structurally in package mcp.
	SRAM []byte

	isr, imr uint32
	timers   [NumTimers]timer

	running bool
	hung    bool
	// epoch invalidates queued processor work across hangs and resets.
	epoch    uint64
	execFree sim.Time

	pci     *host.PCIBus
	dmaBusy bool
	dmaQ    []dmaReq

	att      *fabric.Attachment
	recvRing []*fabric.Packet

	isrHandler  func(bit uint32)
	hostIntr    func(isr uint32)
	stats       Stats
	onHung      func()
	powerCycled bool
}

type dmaReq struct {
	bytes int
	done  func()
}

// New returns a powered chip with no control program running.
func New(eng *sim.Engine, name string, cfg Config, pci *host.PCIBus) *Chip {
	return &Chip{
		eng:  eng,
		cfg:  cfg,
		name: name,
		SRAM: make([]byte, cfg.SRAMSize),
		pci:  pci,
	}
}

// Name implements fabric.Device.
func (c *Chip) Name() string { return c.name }

// Engine returns the simulation engine the chip runs on.
func (c *Chip) Engine() *sim.Engine { return c.eng }

// Stats returns the chip's counters.
func (c *Chip) Stats() Stats { return c.stats }

// Attach cables the packet interface to a link end.
func (c *Chip) Attach(a *fabric.Attachment) { c.att = a }

// Attachment returns the cabled link end, or nil.
func (c *Chip) Attachment() *fabric.Attachment { return c.att }

// SetISRHandler installs the control program's dispatch hook: it is invoked
// whenever an ISR bit is raised while the processor runs.
func (c *Chip) SetISRHandler(fn func(bit uint32)) { c.isrHandler = fn }

// SetHostInterrupt installs the driver's interrupt handler, invoked when a
// raised ISR bit is enabled in the IMR. This is the path the watchdog's
// FATAL interrupt takes to the host (§4.3).
func (c *Chip) SetHostInterrupt(fn func(isr uint32)) { c.hostIntr = fn }

// Running reports whether the processor is executing the control program.
func (c *Chip) Running() bool { return c.running }

// Hung reports whether the processor is hung.
func (c *Chip) Hung() bool { return c.hung }

// Start begins executing the control program (after LoadMCP / reset).
func (c *Chip) Start() {
	c.running = true
	c.hung = false
	c.execFree = c.eng.Now()
}

// Hang models the paper's central failure: the processor stops executing
// instructions (crash or infinite loop). Timer and interrupt logic stay
// alive — the paper's watchdog assumption, which held for every hang in
// their experiments (§4.2). Queued handlers are invalidated.
func (c *Chip) Hang() {
	if !c.running {
		return
	}
	c.running = false
	c.hung = true
	c.epoch++
	c.eng.Tracef(c.name, "processor hung")
	if c.onHung != nil {
		c.onHung()
	}
}

// SetOnHung installs a test/experiment hook invoked when the chip hangs.
func (c *Chip) SetOnHung(fn func()) { c.onHung = fn }

// HardHang additionally kills the timer and interrupt logic: the fault
// propagated beyond the processor core, so the watchdog interrupt can never
// fire. Rare, and the reason the paper's detection assumption "cannot be
// proved correct".
func (c *Chip) HardHang() {
	c.Hang()
	for i := range c.timers {
		if c.timers[i].event != nil {
			c.timers[i].event.Cancel()
			c.timers[i].event = nil
		}
	}
	c.imr = 0
}

// Reset models the card reset the FTD performs: the processor stops, ISR,
// IMR and timers clear, in-flight DMA and queued work are invalidated, and
// buffered packets are lost. SRAM contents are *not* cleared by the reset
// itself; the FTD clears SRAM and reloads the MCP explicitly (§4.3).
func (c *Chip) Reset() {
	c.running = false
	c.hung = false
	c.epoch++
	c.isr = 0
	c.imr = 0
	for i := range c.timers {
		if c.timers[i].event != nil {
			c.timers[i].event.Cancel()
			c.timers[i].event = nil
		}
	}
	c.dmaBusy = false
	c.dmaQ = nil
	c.recvRing = nil
	c.stats.Resets++
	c.eng.Tracef(c.name, "card reset")
}

// ClearSRAM zeroes local memory (FTD recovery step).
func (c *Chip) ClearSRAM() {
	for i := range c.SRAM {
		c.SRAM[i] = 0
	}
}

// --- Registers ---

// ISR returns the interface status register.
func (c *Chip) ISR() uint32 { return c.isr }

// RaiseISR sets an ISR bit, notifies the running control program, and
// raises a host interrupt if the bit is unmasked in the IMR.
func (c *Chip) RaiseISR(bit uint32) {
	c.isr |= bit
	if c.running && c.isrHandler != nil {
		c.isrHandler(bit)
	}
	if c.imr&bit != 0 && c.hostIntr != nil {
		c.hostIntr(c.isr)
	}
}

// AckISR clears ISR bits.
func (c *Chip) AckISR(bits uint32) { c.isr &^= bits }

// IMR returns the interrupt mask register.
func (c *Chip) IMR() uint32 { return c.imr }

// SetIMR replaces the interrupt mask register.
func (c *Chip) SetIMR(v uint32) { c.imr = v }

// --- Interval timers ---

// SetTimer arms interval timer i to expire after ticks 0.5 µs ticks,
// replacing any previous deadline. Expiry raises the timer's ISR bit.
func (c *Chip) SetTimer(i int, ticks uint32) {
	t := &c.timers[i]
	if t.event != nil {
		t.event.Cancel()
	}
	t.armedAt = c.eng.Now()
	t.ticks = ticks
	bit := ISRTimer0 << uint(i)
	t.event = c.eng.AfterLabel(sim.Duration(ticks)*TimerTick, "timer", func() {
		t.event = nil
		c.RaiseISR(bit)
	})
}

// StopTimer disarms interval timer i.
func (c *Chip) StopTimer(i int) {
	if c.timers[i].event != nil {
		c.timers[i].event.Cancel()
		c.timers[i].event = nil
	}
}

// TimerArmed reports whether timer i has a pending expiry.
func (c *Chip) TimerArmed(i int) bool { return c.timers[i].event != nil }

// --- Processor ---

// Exec queues fn on the processor: it runs after the processor finishes all
// earlier work plus cost. Work queued before a hang or reset never runs.
// Exec on a stopped processor is dropped.
func (c *Chip) Exec(cost sim.Duration, fn func()) {
	if !c.running {
		return
	}
	start := c.eng.Now()
	if c.execFree > start {
		start = c.execFree
	}
	end := start + cost
	c.execFree = end
	c.stats.ExecBusy += cost
	epoch := c.epoch
	c.eng.At(end, func() {
		if c.epoch != epoch || !c.running {
			return
		}
		fn()
	})
}

// ExecBusyUntil reports when the processor will next be idle.
func (c *Chip) ExecBusyUntil() sim.Time { return c.execFree }

// --- E-bus (host) DMA engine ---

// HostDMA queues a transfer of n bytes between host memory and SRAM on the
// single E-bus DMA engine. Transfers serialize on the engine and occupy the
// PCI bus; done runs at completion (and the ISRHostDMADone bit is raised).
// Send-side and receive-side traffic of one card contend here, which is the
// resource that caps the bidirectional bandwidth curve (Figure 7).
func (c *Chip) HostDMA(n int, done func()) {
	if !c.running {
		return
	}
	c.dmaQ = append(c.dmaQ, dmaReq{bytes: n, done: done})
	c.pumpDMA()
}

func (c *Chip) pumpDMA() {
	if c.dmaBusy || len(c.dmaQ) == 0 {
		return
	}
	req := c.dmaQ[0]
	c.dmaQ = c.dmaQ[1:]
	c.dmaBusy = true
	c.stats.HostDMAs++
	c.stats.HostDMABytes += uint64(req.bytes)
	epoch := c.epoch
	c.pci.Transfer(req.bytes, func() {
		if c.epoch != epoch {
			return
		}
		c.dmaBusy = false
		c.RaiseISR(ISRHostDMADone)
		if req.done != nil {
			req.done()
		}
		c.pumpDMA()
	})
}

// --- Packet interface ---

// TransmitPacket injects a packet onto the cabled link.
func (c *Chip) TransmitPacket(pkt *fabric.Packet) {
	if c.att == nil {
		return
	}
	c.stats.PacketsSent++
	c.att.Send(pkt)
}

// RecvPacket implements fabric.Device: an arriving packet lands in the
// packet interface's SRAM ring and raises ISRRecvPacket. With the processor
// down (hung or in reset) the ring is not serviced; arrivals are dropped,
// modeling the backpressured-then-timed-out fate of packets sent to a dead
// interface.
func (c *Chip) RecvPacket(pkt *fabric.Packet, on *fabric.Attachment) {
	if !c.running || len(c.recvRing) >= c.cfg.RecvRing {
		c.stats.PacketsDropped++
		return
	}
	c.stats.PacketsReceived++
	c.recvRing = append(c.recvRing, pkt)
	c.RaiseISR(ISRRecvPacket)
}

// PopRecv removes and returns the oldest buffered packet, or nil.
func (c *Chip) PopRecv() *fabric.Packet {
	if len(c.recvRing) == 0 {
		return nil
	}
	pkt := c.recvRing[0]
	c.recvRing = c.recvRing[1:]
	return pkt
}

// RecvPending reports how many packets wait in the ring.
func (c *Chip) RecvPending() int { return len(c.recvRing) }

// --- SRAM word access (magic word, ISA images) ---

// ReadWord reads a 32-bit little-endian SRAM word.
func (c *Chip) ReadWord(addr uint32) uint32 {
	if int(addr)+4 > len(c.SRAM) {
		return 0
	}
	return uint32(c.SRAM[addr]) | uint32(c.SRAM[addr+1])<<8 |
		uint32(c.SRAM[addr+2])<<16 | uint32(c.SRAM[addr+3])<<24
}

// WriteWord writes a 32-bit little-endian SRAM word.
func (c *Chip) WriteWord(addr uint32, v uint32) {
	if int(addr)+4 > len(c.SRAM) {
		return
	}
	c.SRAM[addr] = byte(v)
	c.SRAM[addr+1] = byte(v >> 8)
	c.SRAM[addr+2] = byte(v >> 16)
	c.SRAM[addr+3] = byte(v >> 24)
}
