// Package lanai models the LANai chip at the center of the Myrinet host
// interface card (§2 of the paper): a RISC processor core, fast local SRAM,
// DMA logic to/from the network (the packet interface), E-bus DMA logic
// to/from the host across PCI, three 32-bit interval timers decremented
// every 0.5 µs, and the interface status / interrupt mask registers.
//
// The control program (package mcp) runs "on" this chip: its handlers
// execute serially on the single processor with explicit time costs, and a
// processor hang — the paper's central failure mode — stops the handlers
// while leaving the timer and interrupt logic alive, which is precisely the
// property the software watchdog of §4.2 relies on.
package lanai

import (
	"repro/internal/fabric"
	"repro/internal/host"
	"repro/internal/sim"
)

// ISR/IMR bits of the interface status register.
const (
	ISRTimer0      uint32 = 1 << iota // IT0: GM's L_timer interval timer
	ISRTimer1                         // IT1: the watchdog timer FTGM arms (§4.2)
	ISRTimer2                         // IT2: spare
	ISRRecvPacket                     // packet interface: packet landed in SRAM
	ISRHostDMADone                    // E-bus DMA engine completion
	ISRDoorbell                       // host wrote a doorbell word
)

// TimerTick is the interval timer decrement period: "32-bit counters that
// are decremented every 1/2 µs" (§4.2).
const TimerTick = 500 * sim.Nanosecond

// NumTimers is the number of interval timers on the chip.
const NumTimers = 3

// MagicAddr is the SRAM location used for the FTD's liveness handshake: the
// FTD writes a magic word here, which a live control program clears (§4.3).
const MagicAddr = 0x40

// MagicWord is the value the FTD writes to MagicAddr.
const MagicWord = 0xFEEDC0DE

// Config sets the chip's physical parameters.
type Config struct {
	// SRAMSize is the local memory size (512 KB..8 MB on real cards).
	SRAMSize int
	// RecvRing is how many arrived packets the packet interface can hold
	// before the control program services them; overflow is dropped (the
	// network-level Go-Back-N recovers).
	RecvRing int
}

// DefaultConfig models a LANai 9 card with 1 MB of SRAM.
func DefaultConfig() Config {
	return Config{SRAMSize: 1 << 20, RecvRing: 256}
}

// Stats counts chip-level activity.
type Stats struct {
	PacketsSent     uint64
	PacketsReceived uint64
	PacketsDropped  uint64 // recv-ring overflow or processor down
	HostDMAs        uint64
	HostDMABytes    uint64
	ExecBusy        sim.Duration // processor busy time
	Resets          uint64
}

type timer struct {
	event   *sim.Event
	armedAt sim.Time
	ticks   uint32
	fireFn  func() // cached expiry body; re-arming must not allocate
}

// Chip is one LANai instance. It implements fabric.Device so a link can be
// cabled directly into its packet interface.
type Chip struct {
	eng  *sim.Engine
	cfg  Config
	name string

	// SRAM backs the ISA-level fault experiments and the magic-word
	// handshake; protocol state is modeled structurally in package mcp.
	SRAM []byte

	isr, imr uint32
	timers   [NumTimers]timer

	running bool
	hung    bool
	killed  bool // powered off for good (Kill); Start no-ops
	// epoch invalidates queued processor work across hangs and resets.
	epoch    uint64
	execFree sim.Time

	// Queued processor work. Exec completion times are nondecreasing (the
	// processor is a serial resource), so the queue is a FIFO ring drained
	// by a single engine event instead of one event + wrapper closure per
	// Exec call — the simulator's hottest allocation site.
	execQ        []execItem
	execHead     int
	execWake     *sim.Event
	execDraining bool
	execDrainFn  func() // cached; scheduling a drain must not allocate

	pci     *host.PCIBus
	dmaBusy bool
	dmaQ    []dmaReq
	dmaHead int
	// dmaDoneFn is the cached PCI completion callback; dmaEpochQ carries the
	// chip epoch at each transfer's issue so completions that straddle a
	// reset are recognized as stale (PCI completions arrive in issue order,
	// so a FIFO of epochs suffices). The epoch queue survives Reset — the
	// stale completions still pending on the bus must pop their entries.
	dmaDoneFn    func()
	dmaEpochQ    []uint64
	dmaEpochHead int

	att      *fabric.Attachment
	recvRing []*fabric.Packet
	recvHead int

	isrHandler  func(bit uint32)
	hostIntr    func(isr uint32)
	stats       Stats
	onHung      func()
	powerCycled bool

	// Speculation journaling (sim spec.go): one first-touch checkpoint covers
	// every register, timer, ring and counter above; SRAM words are journaled
	// individually (WriteWord undo records) since a checkpoint of the full
	// megabyte per span would defeat the incremental journal.
	specMark uint64
	shadow   chipShadow
}

// chipShadow is the restore image for Chip.SpecSave/SpecRestore.
type chipShadow struct {
	isr, imr    uint32
	timers      [NumTimers]timerShadow
	running     bool
	hung        bool
	killed      bool
	powerCycled bool
	dmaBusy     bool
	epoch       uint64
	execFree    sim.Time
	stats       Stats
	execQ       []execItem
	execWake    *sim.Event
	dmaQ        []dmaReq
	dmaEpochQ   []uint64
	recvRing    []*fabric.Packet
}

type timerShadow struct {
	event   *sim.Event
	armedAt sim.Time
	ticks   uint32
}

// specTouch journals the chip into the current span on first touch; every
// mutating method calls it before its first write.
func (c *Chip) specTouch() { c.eng.SpecTouch(&c.specMark, c) }

// SpecSave / SpecRestore implement sim.SpecSaver: live-region copies of the
// processor, DMA and receive rings, rebuilt canonically (head 0) on
// rollback. Event handles are revived by the engine's own rollback, so
// re-pointing at saved handles is always safe.
func (c *Chip) SpecSave() {
	s := &c.shadow
	s.isr, s.imr = c.isr, c.imr
	for i := range c.timers {
		t := &c.timers[i]
		s.timers[i] = timerShadow{event: t.event, armedAt: t.armedAt, ticks: t.ticks}
	}
	s.running, s.hung, s.killed, s.powerCycled = c.running, c.hung, c.killed, c.powerCycled
	s.dmaBusy = c.dmaBusy
	s.epoch = c.epoch
	s.execFree = c.execFree
	s.stats = c.stats
	s.execQ = append(s.execQ[:0], c.execQ[c.execHead:]...)
	s.execWake = c.execWake
	s.dmaQ = append(s.dmaQ[:0], c.dmaQ[c.dmaHead:]...)
	s.dmaEpochQ = append(s.dmaEpochQ[:0], c.dmaEpochQ[c.dmaEpochHead:]...)
	s.recvRing = append(s.recvRing[:0], c.recvRing[c.recvHead:]...)
}

func (c *Chip) SpecRestore() {
	s := &c.shadow
	c.isr, c.imr = s.isr, s.imr
	for i := range c.timers {
		t := &c.timers[i]
		t.event, t.armedAt, t.ticks = s.timers[i].event, s.timers[i].armedAt, s.timers[i].ticks
	}
	c.running, c.hung, c.killed, c.powerCycled = s.running, s.hung, s.killed, s.powerCycled
	c.dmaBusy = s.dmaBusy
	c.epoch = s.epoch
	c.execFree = s.execFree
	c.stats = s.stats
	for i := len(s.execQ); i < len(c.execQ); i++ {
		c.execQ[i] = execItem{}
	}
	c.execQ = append(c.execQ[:0], s.execQ...)
	c.execHead = 0
	c.execWake = s.execWake
	c.execDraining = false
	for i := len(s.dmaQ); i < len(c.dmaQ); i++ {
		c.dmaQ[i] = dmaReq{}
	}
	c.dmaQ = append(c.dmaQ[:0], s.dmaQ...)
	c.dmaHead = 0
	for i := len(s.dmaEpochQ); i < len(c.dmaEpochQ); i++ {
		c.dmaEpochQ[i] = 0
	}
	c.dmaEpochQ = append(c.dmaEpochQ[:0], s.dmaEpochQ...)
	c.dmaEpochHead = 0
	for i := len(s.recvRing); i < len(c.recvRing); i++ {
		c.recvRing[i] = nil
	}
	c.recvRing = append(c.recvRing[:0], s.recvRing...)
	c.recvHead = 0
}

func sramUndoWrite(a, b any, v1, v2 uint64) {
	c := a.(*Chip)
	addr, v := uint32(v1), uint32(v2)
	c.SRAM[addr] = byte(v)
	c.SRAM[addr+1] = byte(v >> 8)
	c.SRAM[addr+2] = byte(v >> 16)
	c.SRAM[addr+3] = byte(v >> 24)
}

func sramUndoClear(a, b any, v1, v2 uint64) {
	copy(a.(*Chip).SRAM, b.([]byte))
}

type dmaReq struct {
	bytes int
	done  func()
}

type execItem struct {
	at    sim.Time
	epoch uint64
	fn    func()
}

// New returns a powered chip with no control program running.
func New(eng *sim.Engine, name string, cfg Config, pci *host.PCIBus) *Chip {
	c := &Chip{
		eng:  eng,
		cfg:  cfg,
		name: name,
		SRAM: make([]byte, cfg.SRAMSize),
		pci:  pci,
	}
	c.execDrainFn = c.drainExec
	c.dmaDoneFn = c.dmaComplete
	for i := range c.timers {
		t := &c.timers[i]
		bit := ISRTimer0 << uint(i)
		t.fireFn = func() {
			c.specTouch()
			t.event = nil
			c.RaiseISR(bit)
		}
	}
	return c
}

// Name implements fabric.Device.
func (c *Chip) Name() string { return c.name }

// Engine returns the simulation engine the chip runs on.
func (c *Chip) Engine() *sim.Engine { return c.eng }

// Stats returns the chip's counters.
func (c *Chip) Stats() Stats { return c.stats }

// Attach cables the packet interface to a link end.
func (c *Chip) Attach(a *fabric.Attachment) { c.att = a }

// Attachment returns the cabled link end, or nil.
func (c *Chip) Attachment() *fabric.Attachment { return c.att }

// SetISRHandler installs the control program's dispatch hook: it is invoked
// whenever an ISR bit is raised while the processor runs.
func (c *Chip) SetISRHandler(fn func(bit uint32)) { c.isrHandler = fn }

// SetHostInterrupt installs the driver's interrupt handler, invoked when a
// raised ISR bit is enabled in the IMR. This is the path the watchdog's
// FATAL interrupt takes to the host (§4.3).
func (c *Chip) SetHostInterrupt(fn func(isr uint32)) { c.hostIntr = fn }

// Running reports whether the processor is executing the control program.
func (c *Chip) Running() bool { return c.running }

// Hung reports whether the processor is hung.
func (c *Chip) Hung() bool { return c.hung }

// Start begins executing the control program (after LoadMCP / reset).
func (c *Chip) Start() {
	if c.killed {
		return
	}
	c.specTouch()
	c.running = true
	c.hung = false
	c.execFree = c.eng.Now()
}

// Kill permanently powers the card off: Start becomes a no-op, so no
// control program — not even one a watchdog reloads — can run again.
// Cluster shutdown uses this to drain in-flight traffic with the guarantee
// that nothing new is injected.
func (c *Chip) Kill() {
	c.specTouch()
	c.killed = true
	c.Reset()
}

// Hang models the paper's central failure: the processor stops executing
// instructions (crash or infinite loop). Timer and interrupt logic stay
// alive — the paper's watchdog assumption, which held for every hang in
// their experiments (§4.2). Queued handlers are invalidated.
func (c *Chip) Hang() {
	if !c.running {
		return
	}
	c.specTouch()
	c.running = false
	c.hung = true
	c.epoch++
	c.eng.Tracef(c.name, "processor hung")
	if c.onHung != nil {
		c.onHung()
	}
}

// SetOnHung installs a test/experiment hook invoked when the chip hangs.
func (c *Chip) SetOnHung(fn func()) { c.onHung = fn }

// HardHang additionally kills the timer and interrupt logic: the fault
// propagated beyond the processor core, so the watchdog interrupt can never
// fire. Rare, and the reason the paper's detection assumption "cannot be
// proved correct".
func (c *Chip) HardHang() {
	c.specTouch()
	c.Hang()
	for i := range c.timers {
		if c.timers[i].event != nil {
			c.timers[i].event.Cancel()
			c.timers[i].event = nil
		}
	}
	c.imr = 0
}

// Reset models the card reset the FTD performs: the processor stops, ISR,
// IMR and timers clear, in-flight DMA and queued work are invalidated, and
// buffered packets are lost. SRAM contents are *not* cleared by the reset
// itself; the FTD clears SRAM and reloads the MCP explicitly (§4.3).
func (c *Chip) Reset() {
	c.specTouch()
	c.running = false
	c.hung = false
	c.epoch++
	c.isr = 0
	c.imr = 0
	for i := range c.timers {
		if c.timers[i].event != nil {
			c.timers[i].event.Cancel()
			c.timers[i].event = nil
		}
	}
	c.dmaBusy = false
	for i := range c.dmaQ {
		c.dmaQ[i] = dmaReq{}
	}
	c.dmaQ = c.dmaQ[:0]
	c.dmaHead = 0
	for i := c.recvHead; i < len(c.recvRing); i++ {
		c.recvRing[i].ReleaseSpec(c.eng)
		c.recvRing[i] = nil
	}
	c.recvRing = c.recvRing[:0]
	c.recvHead = 0
	c.flushExec()
	c.stats.Resets++
	c.eng.Tracef(c.name, "card reset")
}

// ClearSRAM zeroes local memory (FTD recovery step).
func (c *Chip) ClearSRAM() {
	if c.eng.SpecActive() {
		// Rare path (FTD recovery): journal a full copy rather than per-word
		// records for a megabyte of zeroes.
		saved := make([]byte, len(c.SRAM))
		copy(saved, c.SRAM)
		c.eng.SpecUndo(sramUndoClear, c, saved, 0, 0)
	}
	for i := range c.SRAM {
		c.SRAM[i] = 0
	}
}

// --- Registers ---

// ISR returns the interface status register.
func (c *Chip) ISR() uint32 { return c.isr }

// RaiseISR sets an ISR bit, notifies the running control program, and
// raises a host interrupt if the bit is unmasked in the IMR.
func (c *Chip) RaiseISR(bit uint32) {
	c.specTouch()
	c.isr |= bit
	if c.running && c.isrHandler != nil {
		c.isrHandler(bit)
	}
	if c.imr&bit != 0 && c.hostIntr != nil {
		c.hostIntr(c.isr)
	}
}

// AckISR clears ISR bits.
func (c *Chip) AckISR(bits uint32) {
	c.specTouch()
	c.isr &^= bits
}

// IMR returns the interrupt mask register.
func (c *Chip) IMR() uint32 { return c.imr }

// SetIMR replaces the interrupt mask register.
func (c *Chip) SetIMR(v uint32) {
	c.specTouch()
	c.imr = v
}

// --- Interval timers ---

// SetTimer arms interval timer i to expire after ticks 0.5 µs ticks,
// replacing any previous deadline. Expiry raises the timer's ISR bit.
func (c *Chip) SetTimer(i int, ticks uint32) {
	c.specTouch()
	t := &c.timers[i]
	if t.event != nil {
		t.event.Cancel()
	}
	t.armedAt = c.eng.Now()
	t.ticks = ticks
	t.event = c.eng.AfterLabel(sim.Duration(ticks)*TimerTick, "timer", t.fireFn)
}

// StopTimer disarms interval timer i.
func (c *Chip) StopTimer(i int) {
	c.specTouch()
	if c.timers[i].event != nil {
		c.timers[i].event.Cancel()
		c.timers[i].event = nil
	}
}

// TimerArmed reports whether timer i has a pending expiry.
func (c *Chip) TimerArmed(i int) bool { return c.timers[i].event != nil }

// --- Processor ---

// Exec queues fn on the processor: it runs after the processor finishes all
// earlier work plus cost. Work queued before a hang or reset never runs.
// Exec on a stopped processor is dropped.
//
// Completion times are nondecreasing, so queued work lives in a FIFO ring
// serviced by one pending engine event; each item carries the epoch it was
// queued under, and the drain skips items from a superseded epoch (every
// running=true transition passes through Start after a Hang/Reset epoch
// bump, so the epoch check subsumes the running check).
func (c *Chip) Exec(cost sim.Duration, fn func()) {
	if !c.running {
		return
	}
	c.specTouch()
	start := c.eng.Now()
	if c.execFree > start {
		start = c.execFree
	}
	end := start + cost
	c.execFree = end
	c.stats.ExecBusy += cost
	if c.execHead > 0 && c.execHead == len(c.execQ) {
		c.execQ = c.execQ[:0]
		c.execHead = 0
	}
	c.execQ = append(c.execQ, execItem{at: end, epoch: c.epoch, fn: fn})
	if c.execWake == nil && !c.execDraining {
		c.execWake = c.eng.AtLabel(end, "exec", c.execDrainFn)
	}
}

// drainExec runs every queued item that is due, then re-arms one wake event
// for the next pending item. Items pushed by a running handler are picked up
// in the same sweep when due now (the arming guard keeps them from
// scheduling duplicate wakes mid-drain).
func (c *Chip) drainExec() {
	// Touch before the transient flags flip, so the first-touch checkpoint
	// captures the quiescent between-callback shape.
	c.specTouch()
	c.execWake = nil
	c.execDraining = true
	now := c.eng.Now()
	for c.execHead < len(c.execQ) {
		it := &c.execQ[c.execHead]
		if it.at > now {
			break
		}
		fn, epoch := it.fn, it.epoch
		*it = execItem{}
		c.execHead++
		if epoch == c.epoch && c.running {
			fn()
		}
	}
	c.execDraining = false
	// Under sustained load the queue may never fully empty; slide the tail
	// down once the dead prefix dominates so the array stays bounded.
	if c.execHead > 1024 && c.execHead*2 > len(c.execQ) {
		n := copy(c.execQ, c.execQ[c.execHead:])
		for i := n; i < len(c.execQ); i++ {
			c.execQ[i] = execItem{}
		}
		c.execQ = c.execQ[:n]
		c.execHead = 0
	}
	if c.execHead < len(c.execQ) {
		c.execWake = c.eng.AtLabel(c.execQ[c.execHead].at, "exec", c.execDrainFn)
	}
}

// flushExec discards all queued processor work (reset path).
func (c *Chip) flushExec() {
	for i := c.execHead; i < len(c.execQ); i++ {
		c.execQ[i] = execItem{}
	}
	c.execQ = c.execQ[:0]
	c.execHead = 0
	if c.execWake != nil {
		c.execWake.Cancel()
		c.execWake = nil
	}
}

// ExecBusyUntil reports when the processor will next be idle.
func (c *Chip) ExecBusyUntil() sim.Time { return c.execFree }

// --- E-bus (host) DMA engine ---

// HostDMA queues a transfer of n bytes between host memory and SRAM on the
// single E-bus DMA engine. Transfers serialize on the engine and occupy the
// PCI bus; done runs at completion (and the ISRHostDMADone bit is raised).
// Send-side and receive-side traffic of one card contend here, which is the
// resource that caps the bidirectional bandwidth curve (Figure 7).
func (c *Chip) HostDMA(n int, done func()) {
	if !c.running {
		return
	}
	c.specTouch()
	if c.dmaHead > 0 && c.dmaHead == len(c.dmaQ) {
		c.dmaQ = c.dmaQ[:0]
		c.dmaHead = 0
	}
	c.dmaQ = append(c.dmaQ, dmaReq{bytes: n, done: done})
	c.pumpDMA()
}

// pumpDMA issues the head request to the PCI bus. The request stays at the
// queue head until its completion fires; the cached dmaDoneFn pops it then,
// so issuing a transfer allocates nothing.
func (c *Chip) pumpDMA() {
	if c.dmaBusy || c.dmaHead == len(c.dmaQ) {
		return
	}
	req := &c.dmaQ[c.dmaHead]
	c.dmaBusy = true
	c.stats.HostDMAs++
	c.stats.HostDMABytes += uint64(req.bytes)
	if c.dmaEpochHead > 0 && c.dmaEpochHead == len(c.dmaEpochQ) {
		c.dmaEpochQ = c.dmaEpochQ[:0]
		c.dmaEpochHead = 0
	}
	c.dmaEpochQ = append(c.dmaEpochQ, c.epoch)
	c.pci.Transfer(req.bytes, c.dmaDoneFn)
}

// dmaComplete is the shared PCI completion callback. A completion issued
// before a reset pops a stale epoch and is ignored; the reset already
// cleared the request queue it referred to.
func (c *Chip) dmaComplete() {
	c.specTouch()
	epoch := c.dmaEpochQ[c.dmaEpochHead]
	c.dmaEpochHead++
	if epoch != c.epoch {
		return
	}
	req := c.dmaQ[c.dmaHead]
	c.dmaQ[c.dmaHead] = dmaReq{}
	c.dmaHead++
	c.dmaBusy = false
	c.RaiseISR(ISRHostDMADone)
	if req.done != nil {
		req.done()
	}
	c.pumpDMA()
}

// --- Packet interface ---

// TransmitPacket injects a packet onto the cabled link.
func (c *Chip) TransmitPacket(pkt *fabric.Packet) {
	c.specTouch()
	if c.att == nil {
		pkt.ReleaseSpec(c.eng)
		return
	}
	c.stats.PacketsSent++
	c.att.Send(pkt)
}

// RecvPacket implements fabric.Device: an arriving packet lands in the
// packet interface's SRAM ring and raises ISRRecvPacket. With the processor
// down (hung or in reset) the ring is not serviced; arrivals are dropped,
// modeling the backpressured-then-timed-out fate of packets sent to a dead
// interface.
func (c *Chip) RecvPacket(pkt *fabric.Packet, on *fabric.Attachment) {
	c.specTouch()
	if !c.running || len(c.recvRing)-c.recvHead >= c.cfg.RecvRing {
		c.stats.PacketsDropped++
		pkt.ReleaseSpec(c.eng)
		return
	}
	c.stats.PacketsReceived++
	if c.recvHead > 0 && c.recvHead == len(c.recvRing) {
		c.recvRing = c.recvRing[:0]
		c.recvHead = 0
	}
	c.recvRing = append(c.recvRing, pkt)
	c.RaiseISR(ISRRecvPacket)
}

// PopRecv removes and returns the oldest buffered packet, or nil.
func (c *Chip) PopRecv() *fabric.Packet {
	if c.recvHead == len(c.recvRing) {
		return nil
	}
	c.specTouch()
	pkt := c.recvRing[c.recvHead]
	c.recvRing[c.recvHead] = nil
	c.recvHead++
	return pkt
}

// RecvPending reports how many packets wait in the ring.
func (c *Chip) RecvPending() int { return len(c.recvRing) - c.recvHead }

// --- SRAM word access (magic word, ISA images) ---

// ReadWord reads a 32-bit little-endian SRAM word.
func (c *Chip) ReadWord(addr uint32) uint32 {
	if int(addr)+4 > len(c.SRAM) {
		return 0
	}
	return uint32(c.SRAM[addr]) | uint32(c.SRAM[addr+1])<<8 |
		uint32(c.SRAM[addr+2])<<16 | uint32(c.SRAM[addr+3])<<24
}

// WriteWord writes a 32-bit little-endian SRAM word.
func (c *Chip) WriteWord(addr uint32, v uint32) {
	if int(addr)+4 > len(c.SRAM) {
		return
	}
	c.eng.SpecUndo(sramUndoWrite, c, nil, uint64(addr), uint64(c.ReadWord(addr)))
	c.SRAM[addr] = byte(v)
	c.SRAM[addr+1] = byte(v >> 8)
	c.SRAM[addr+2] = byte(v >> 16)
	c.SRAM[addr+3] = byte(v >> 24)
}
