//go:build !race

// Zero-allocation guards for the pooled packet primitives. Excluded under
// the race detector, whose instrumentation allocates.

package fabric

import "testing"

// TestZeroAllocPacketCycle asserts the full sender-side packet life cycle —
// checkout, route assignment, payload fill, seal, verify, release — performs
// no heap allocation in steady state.
func TestZeroAllocPacketCycle(t *testing.T) {
	route := []byte{1, 2}
	payload := make([]byte, 4096)
	// Warm the pool so the measured runs recycle rather than construct.
	warm := GetPacket()
	warm.Buf(len(payload))
	warm.Release()

	allocs := testing.AllocsPerRun(200, func() {
		p := GetPacket()
		p.Route = route // interned-route path: assign, don't copy
		copy(p.Buf(len(payload)), payload)
		p.SealCRC()
		if !p.CRCOk() {
			t.Fatal("CRCOk false after seal")
		}
		p.Release()
	})
	if allocs != 0 {
		t.Fatalf("packet cycle allocates %.1f/op, want 0", allocs)
	}
}

// TestZeroAllocCopyRoute asserts the mapper-style copied-route path stays
// allocation-free for routes that fit the inline buffer.
func TestZeroAllocCopyRoute(t *testing.T) {
	route := []byte{3, 1, 4, 1, 5}
	warm := GetPacket()
	warm.Buf(64)
	warm.Release()

	allocs := testing.AllocsPerRun(200, func() {
		p := GetPacket()
		p.CopyRoute(route)
		copy(p.Buf(64), route)
		p.SealCRC()
		p.Release()
	})
	if allocs != 0 {
		t.Fatalf("CopyRoute cycle allocates %.1f/op, want 0", allocs)
	}
}
