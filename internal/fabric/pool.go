package fabric

import (
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// Packet pooling. The data path checks packets out of a process-wide arena,
// fills them in place, and releases them exactly once when the fabric is done
// with them. The ownership contract (DESIGN.md §11):
//
//   - The *sender* (MCP transmit path, mapper RawTransmit) checks a packet
//     out with GetPacket, writes the payload into Buf, seals the CRC, and
//     hands it to the fabric. From that instant the packet belongs to
//     whatever holds it next; the sender must not touch it again.
//   - The *fabric* (links, switches) transfers ownership hop by hop. Every
//     drop point — downed link, fault drop, route exhaustion, dead port,
//     full receive ring, chip reset — releases the packet it eats.
//   - The *receiver* (MCP receive service) releases the packet after the
//     handler for it has run, once the fragment bytes have been copied into
//     the host receive buffer (the model's DMA-complete point).
//
// Release on a packet built as a plain literal (tests, externally owned
// buffers) is a no-op, so drop points need not care where a packet came
// from. Double-releasing a pooled packet panics: it means two owners, which
// is exactly the corruption the contract exists to prevent.

// pooledPayloadCap is the payload capacity packets are born with: the
// largest data packet (gmproto.DataHeaderSize + MaxPacketPayload ≈ 4.1 KB)
// plus slack, so steady-state traffic never grows a buffer.
const pooledPayloadCap = 4352

var pktPool = sync.Pool{
	New: func() any {
		return &Packet{buf: make([]byte, 0, pooledPayloadCap), pooled: true}
	},
}

// Pool leak accounting. live is the number of packets checked out and not
// yet released; a quiesced simulation must bring it back to its starting
// value, which the chaos campaign leak test asserts.
var (
	poolCheckouts atomic.Uint64
	poolReleases  atomic.Uint64
	poolLive      atomic.Int64
)

// PoolCounters is a snapshot of the packet arena's leak accounting.
type PoolCounters struct {
	Checkouts uint64
	Releases  uint64
	Live      int64
}

// PoolStats returns the arena's checkout/release counters. Live ==
// Checkouts - Releases is the number of packets currently owned by some
// layer of the stack.
func PoolStats() PoolCounters {
	return PoolCounters{
		Checkouts: poolCheckouts.Load(),
		Releases:  poolReleases.Load(),
		Live:      poolLive.Load(),
	}
}

// GetPacket checks a packet out of the arena. The packet is empty (no
// route, zero-length payload) and must be released exactly once.
func GetPacket() *Packet {
	p := pktPool.Get().(*Packet)
	p.live = true
	poolCheckouts.Add(1)
	poolLive.Add(1)
	return p
}

// GetPacketSpec is GetPacket with span journaling: inside a speculative span
// the checkout gets an undo record, so a rollback returns the packet to the
// arena (the rewound component state never saw it). Outside a span it is
// exactly GetPacket.
func GetPacketSpec(eng *sim.Engine) *Packet {
	p := GetPacket()
	if eng.SpecActive() {
		eng.SpecUndo(pktUndoCheckout, p, nil, 0, 0)
	}
	return p
}

func pktUndoCheckout(a, b any, v1, v2 uint64) { a.(*Packet).Release() }

// ReleaseSpec is Release deferred to span commit: inside a speculative span
// the packet must stay intact until the span is known to stand, because a
// rollback rewinds rings and windows that still own it. Outside a span the
// release runs immediately. Every release site reachable from speculating
// domain event code must use this instead of Release.
func (p *Packet) ReleaseSpec(eng *sim.Engine) {
	eng.SpecOnCommit(pktCommitRelease, p, nil, 0, 0)
}

func pktCommitRelease(a, b any, v1, v2 uint64) { a.(*Packet).Release() }

// Release returns a pooled packet to the arena. On packets not from the
// arena it is a no-op; releasing a pooled packet twice panics.
func (p *Packet) Release() {
	if !p.pooled {
		return
	}
	if !p.live {
		panic("fabric: pooled packet released twice")
	}
	p.live = false
	p.Route = nil
	p.Payload = nil
	p.CRC = 0
	p.ID = 0
	p.SrcLabel = ""
	p.Injected = 0
	p.crcValid = false
	// The touch-epoch must not survive the arena: span ids are per-engine
	// counters, so a recycled packet carrying a mark from a previous run (or
	// a previous engine in the same process) can collide with a live span id,
	// falsely dedupe SpecTouch, and skip the header shadow a rollback needs.
	p.specMark = 0
	poolReleases.Add(1)
	poolLive.Add(-1)
	pktPool.Put(p)
}

// Buf resizes the packet's owned payload storage to n bytes and points
// Payload at it. The contents are unspecified (callers overwrite every
// byte); the CRC becomes stale until the next SealCRC.
func (p *Packet) Buf(n int) []byte {
	if cap(p.buf) < n {
		p.buf = make([]byte, 0, n)
	}
	p.Payload = p.buf[:n]
	p.crcValid = false
	return p.Payload
}

// CopyRoute stores an owned copy of route in the packet, using the inline
// route buffer when it fits, for senders whose route slice may be reused or
// mutated after transmission. Senders whose route bytes are immutable for
// the packet's lifetime (the MCP's epoch-copied route table) can assign
// p.Route directly instead and skip the copy.
func (p *Packet) CopyRoute(route []byte) {
	if len(route) <= len(p.routeBuf) {
		p.Route = p.routeBuf[:len(route):len(route)]
	} else {
		p.Route = make([]byte, len(route))
	}
	copy(p.Route, route)
}
