package fabric

import (
	"fmt"

	"repro/internal/sim"
)

// Device is anything a link end can attach to: a switch or a host
// interface's packet interface.
type Device interface {
	// Name identifies the device in traces.
	Name() string
	// RecvPacket delivers a packet that finished arriving on the given
	// attachment.
	RecvPacket(pkt *Packet, on *Attachment)
}

// LinkConfig sets the physical characteristics of a link.
type LinkConfig struct {
	// BytesPerSec is the serialization rate per direction
	// (2 Gb/s Myrinet = 250e6).
	BytesPerSec float64
	// PropDelay is the signal propagation delay of the cable.
	PropDelay sim.Duration
}

// DefaultLinkConfig matches the paper's 2 Gb/s Myrinet links with a short
// machine-room cable.
func DefaultLinkConfig() LinkConfig {
	return LinkConfig{BytesPerSec: 250e6, PropDelay: 100 * sim.Nanosecond}
}

// Attachment is one end of a link, the handle a device transmits on.
type Attachment struct {
	link *Link
	end  int
	dev  Device
}

// Device returns the device attached at this end.
func (a *Attachment) Device() Device { return a.dev }

// Peer returns the attachment at the other end of the link.
func (a *Attachment) Peer() *Attachment { return &a.link.ends[1-a.end] }

// Link returns the link this attachment belongs to.
func (a *Attachment) Link() *Link { return a.link }

// Send transmits a packet toward the peer device. Transmission serializes
// behind earlier packets in the same direction (the Myrinet stop/go
// backpressure collapses to FIFO occupancy at packet granularity) and the
// packet is delivered after serialization plus propagation. Packets sent on
// a downed link are silently dropped, as on a cut cable; an installed fault
// profile can additionally drop or corrupt packets in flight.
func (a *Attachment) Send(pkt *Packet) {
	l := a.link
	eng := l.engs[a.end]
	eng.SpecTouch(&l.tx[a.end].mark, &l.tx[a.end])
	if !l.cross {
		// One engine owns both sides of an intra-domain link, so the send
		// path below writes the receiver-owned delivery ring directly.
		eng.SpecTouch(&l.rx[a.end].mark, &l.rx[a.end])
	}
	if !l.up {
		l.stats[a.end].Dropped++
		pkt.ReleaseSpec(eng)
		return
	}
	start := eng.Now()
	if l.nextFree[a.end] > start {
		start = l.nextFree[a.end]
	}
	ser := sim.Duration(float64(pkt.WireSize()) / l.cfg.BytesPerSec * float64(sim.Second))
	l.nextFree[a.end] = start + ser
	st := &l.stats[a.end]
	st.Packets++
	st.Bytes += uint64(pkt.WireSize())
	st.Busy += ser
	if l.faultRNG[a.end] != nil {
		if l.faults.DropProb > 0 && l.faultRNG[a.end].Float64() < l.faults.DropProb {
			// A lossy cable or marginal SerDes eats the packet mid-flight;
			// the sender's Go-Back-N is what recovers it.
			st.Dropped++
			st.FaultDropped++
			eng.Tracef(l.name, "fault drop %v", pkt)
			pkt.ReleaseSpec(eng)
			return
		}
		if l.faults.CorruptProb > 0 && l.faultRNG[a.end].Float64() < l.faults.CorruptProb {
			bit := l.faultRNG[a.end].Intn(8 * maxInt(len(pkt.Payload), 1))
			if l.faults.CorruptPreSeal {
				// The damage predates the CRC seal (e.g. an upset in the
				// staging SRAM): reseal so the link-level check passes and
				// the corruption travels on undetected (Table 1 "Messages
				// Corrupted").
				pkt.SpecCorruptPayload(eng, bit, true)
			} else {
				// Wire-level bit flip on the sealed packet: the receiver's
				// CRC check catches and drops it.
				pkt.SpecCorruptPayload(eng, bit, false)
			}
			st.Corrupted++
			eng.Tracef(l.name, "fault corrupt %v bit %d", pkt, bit)
		}
	}
	end := a.end
	at := start + ser + l.cfg.PropDelay
	if l.cross {
		// The peer device lives in another event domain: park the packet in
		// this direction's outbox and mark the boundary dirty. The
		// coordinator moves the outbox into the receiver's delivery ring at
		// the next window barrier — which is always in time, because the
		// window span never exceeds PropDelay (the lookahead this link
		// registered), and at >= start + PropDelay > window end.
		l.xq[end] = append(l.xq[end], delivery{at: at, pkt: pkt})
		if !l.xnoted[end] {
			l.xnoted[end] = true
			eng.NoteBoundary(&l.xb[end])
		}
		return
	}
	// Delivery times per direction are nondecreasing (FIFO serialization plus
	// a constant propagation delay), so in-flight packets wait in a ring
	// drained by a single pending engine event per direction rather than one
	// closure-carrying event per packet.
	if l.delivHead[end] > 0 && l.delivHead[end] == len(l.deliv[end]) {
		l.deliv[end] = l.deliv[end][:0]
		l.delivHead[end] = 0
	}
	l.deliv[end] = append(l.deliv[end], delivery{at: at, pkt: pkt})
	if l.delivWake[end] == nil && !l.delivDraining[end] {
		l.delivWake[end] = eng.AtLabel(at, "link", l.drainFns[end])
	}
}

// linkBoundary adapts one direction of a cross-domain link to the
// coordinator's Boundary interface.
type linkBoundary struct {
	l   *Link
	end int
}

// BoundaryTarget reports the domain direction end's packets flush into: the
// receiving device's engine.
func (b *linkBoundary) BoundaryTarget() *sim.Engine { return b.l.engs[1-b.end] }

// EarliestPending reports the delivery time of the earliest parked packet in
// this direction. Delivery times per direction are nondecreasing (FIFO
// serialization plus a constant propagation delay), so the outbox head is
// the minimum.
func (b *linkBoundary) EarliestPending() sim.Time {
	q := b.l.xq[b.end]
	if len(q) == 0 {
		return sim.Forever
	}
	return q[0].at
}

// FlushBoundary moves direction end's outbox into the receiver-owned
// delivery ring and arms the receiver's drain event. Runs on the coordinator
// between windows, so neither side's event code is concurrently active.
func (b *linkBoundary) FlushBoundary() {
	l, end := b.l, b.end
	l.xnoted[end] = false
	if len(l.xq[end]) == 0 {
		return
	}
	if l.delivHead[end] > 0 && l.delivHead[end] == len(l.deliv[end]) {
		l.deliv[end] = l.deliv[end][:0]
		l.delivHead[end] = 0
	}
	l.deliv[end] = append(l.deliv[end], l.xq[end]...)
	for i := range l.xq[end] {
		l.xq[end][i] = delivery{}
	}
	l.xq[end] = l.xq[end][:0]
	if l.delivWake[end] == nil && !l.delivDraining[end] {
		l.delivWake[end] = l.engs[1-end].AtArrival(l.deliv[end][l.delivHead[end]].at, l.class[end], "link", l.drainFns[end])
	}
}

// drainDeliveries delivers every due packet for one direction and re-arms a
// wake for the next pending one. Runs on the receiving device's engine.
func (l *Link) drainDeliveries(end int) {
	eng := l.engs[1-end]
	// Touch before the transient flags flip, so the first-touch checkpoint
	// captures the quiescent between-callback shape.
	eng.SpecTouch(&l.rx[end].mark, &l.rx[end])
	l.delivWake[end] = nil
	l.delivDraining[end] = true
	now := eng.Now()
	peer := &l.ends[1-end]
	for l.delivHead[end] < len(l.deliv[end]) {
		d := &l.deliv[end][l.delivHead[end]]
		if d.at > now {
			break
		}
		pkt := d.pkt
		*d = delivery{}
		l.delivHead[end]++
		if !l.up {
			l.rxDropped[end]++
			pkt.ReleaseSpec(eng)
			continue
		}
		peer.dev.RecvPacket(pkt, peer)
	}
	l.delivDraining[end] = false
	if h := l.delivHead[end]; h > 1024 && h*2 > len(l.deliv[end]) {
		n := copy(l.deliv[end], l.deliv[end][h:])
		for i := n; i < len(l.deliv[end]); i++ {
			l.deliv[end][i] = delivery{}
		}
		l.deliv[end] = l.deliv[end][:n]
		l.delivHead[end] = 0
	}
	if l.delivHead[end] < len(l.deliv[end]) {
		if l.cross {
			l.delivWake[end] = l.engs[1-end].AtArrival(l.deliv[end][l.delivHead[end]].at, l.class[end], "link", l.drainFns[end])
		} else {
			l.delivWake[end] = l.engs[1-end].AtLabel(l.deliv[end][l.delivHead[end]].at, "link", l.drainFns[end])
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// LinkStats counts traffic in one direction of a link.
type LinkStats struct {
	Packets uint64
	Bytes   uint64
	Dropped uint64 // all losses on this direction (down link + injected)
	// FaultDropped is the subset of Dropped caused by an injected fault
	// profile rather than a downed link.
	FaultDropped uint64
	// Corrupted counts packets whose payload a fault profile damaged in
	// flight (whether or not the damage is CRC-detectable).
	Corrupted uint64
	Busy      sim.Duration
}

// FaultProfile describes injected misbehavior of a link. The zero value is
// a healthy cable.
type FaultProfile struct {
	// DropProb is the per-packet probability the link eats the packet.
	DropProb float64
	// CorruptProb is the per-packet probability of a payload bit flip.
	CorruptProb float64
	// CorruptPreSeal makes flips happen "before" the CRC seal (resealed, so
	// they pass the link-level check); otherwise the flip damages the sealed
	// packet and the receiver's CRC check drops it.
	CorruptPreSeal bool
}

// Link is a full-duplex point-to-point cable between two devices. The two
// devices may live in different event domains (NewLinkEngines with distinct
// engines): the link is then a shard boundary — each direction's in-flight
// packets cross at window barriers through a per-direction outbox.
type Link struct {
	engs     [2]*sim.Engine // engine of ends[i].dev; equal on an intra-domain link
	cfg      LinkConfig
	name     string
	ends     [2]Attachment
	nextFree [2]sim.Time
	stats    [2]LinkStats
	up       bool

	// In-flight packets per direction, ordered by delivery time; one engine
	// event per direction drains the due prefix (see Send). In cross-domain
	// mode the ring is owned by the receiving domain and fed only at window
	// barriers from the outbox below.
	deliv         [2][]delivery
	delivHead     [2]int
	delivWake     [2]*sim.Event
	delivDraining [2]bool
	drainFns      [2]func() // cached; arming a drain must not allocate

	// rxDropped counts deliveries dropped at the receiving end of a downed
	// link. It is kept apart from stats[end].Dropped because in cross-domain
	// mode the sender owns stats[end] while the receiver's domain executes
	// the drop; Stats() folds it back in.
	rxDropped [2]uint64

	// Cross-domain boundary state (engs[0] != engs[1]). xq is the
	// per-direction outbox the sending domain fills during a window; xnoted
	// dedupes the dirty-boundary note per window.
	cross  bool
	xq     [2][]delivery
	xnoted [2]bool
	xb     [2]linkBoundary
	// class is the per-direction arrival ordering class (sim.AtArrival) the
	// receiver-side wake events are scheduled under, so same-instant ties
	// against receiver-local events resolve independently of which barrier
	// flushed the packets. Zero (intra-domain link) means local scheduling.
	class [2]uint32

	faults FaultProfile
	// faultRNG draws fault decisions per direction. On an intra-domain link
	// both entries alias one generator (decisions are a function of the
	// global packet order, matching the original single-stream behavior); on
	// a cross-domain link each direction gets an independent stream so the
	// two sending domains never race on generator state.
	faultRNG [2]*sim.RNG

	// Speculation journaling (sim spec.go): per direction, the sender-owned
	// state (serialization cursor, counters, fault RNG, outbox) and the
	// receiver-owned state (delivery ring) checkpoint through separate savers,
	// because on a cross-domain link they belong to different engines and
	// their spans open and resolve independently.
	tx [2]linkTxSide
	rx [2]linkRxSide
}

// linkTxSide journals direction end's sender-owned state; its SpecTouch runs
// on engs[end] at the top of Attachment.Send.
type linkTxSide struct {
	l      *Link
	end    int
	mark   uint64
	shadow linkTxShadow
}

type linkTxShadow struct {
	nextFree sim.Time
	stats    LinkStats
	rng      uint64
	xq       []delivery
	xnoted   bool
}

func (t *linkTxSide) SpecSave() {
	l, end := t.l, t.end
	t.shadow.nextFree = l.nextFree[end]
	t.shadow.stats = l.stats[end]
	if l.faultRNG[end] != nil {
		t.shadow.rng = l.faultRNG[end].State()
	}
	t.shadow.xq = append(t.shadow.xq[:0], l.xq[end]...)
	t.shadow.xnoted = l.xnoted[end]
}

func (t *linkTxSide) SpecRestore() {
	l, end := t.l, t.end
	l.nextFree[end] = t.shadow.nextFree
	l.stats[end] = t.shadow.stats
	if l.faultRNG[end] != nil {
		l.faultRNG[end].Restore(t.shadow.rng)
	}
	for i := len(t.shadow.xq); i < len(l.xq[end]); i++ {
		l.xq[end][i] = delivery{}
	}
	l.xq[end] = append(l.xq[end][:0], t.shadow.xq...)
	l.xnoted[end] = t.shadow.xnoted
}

// linkRxSide journals direction end's receiver-owned delivery ring; its
// SpecTouch runs on engs[1-end] (drainDeliveries, and Send on intra-domain
// links, where both sides share one engine).
type linkRxSide struct {
	l      *Link
	end    int
	mark   uint64
	shadow linkRxShadow
}

type linkRxShadow struct {
	deliv     []delivery
	wake      *sim.Event
	rxDropped uint64
}

func (r *linkRxSide) SpecSave() {
	l, end := r.l, r.end
	r.shadow.deliv = append(r.shadow.deliv[:0], l.deliv[end][l.delivHead[end]:]...)
	r.shadow.wake = l.delivWake[end]
	r.shadow.rxDropped = l.rxDropped[end]
}

func (r *linkRxSide) SpecRestore() {
	l, end := r.l, r.end
	for i := len(r.shadow.deliv); i < len(l.deliv[end]); i++ {
		l.deliv[end][i] = delivery{}
	}
	l.deliv[end] = append(l.deliv[end][:0], r.shadow.deliv...)
	l.delivHead[end] = 0
	l.delivWake[end] = r.shadow.wake
	l.delivDraining[end] = false
	l.rxDropped[end] = r.shadow.rxDropped
}

// NewLink creates a link between devices a and b and returns it. Attachment
// 0 belongs to a, attachment 1 to b. Both devices schedule on eng.
func NewLink(eng *sim.Engine, cfg LinkConfig, a, b Device) *Link {
	return NewLinkEngines(eng, eng, cfg, a, b)
}

// NewLinkEngines creates a link between device a scheduling on ea and device
// b scheduling on eb. With distinct engines the link becomes a cross-domain
// boundary and registers cfg.PropDelay as the conservative lookahead of both
// directed edges; the propagation delay must then be positive, since it
// bounds the synchronization window.
func NewLinkEngines(ea, eb *sim.Engine, cfg LinkConfig, a, b Device) *Link {
	l := &Link{
		engs:  [2]*sim.Engine{ea, eb},
		cfg:   cfg,
		name:  fmt.Sprintf("%s<->%s", a.Name(), b.Name()),
		up:    true,
		cross: ea != eb,
	}
	l.ends[0] = Attachment{link: l, end: 0, dev: a}
	l.ends[1] = Attachment{link: l, end: 1, dev: b}
	l.drainFns[0] = func() { l.drainDeliveries(0) }
	l.drainFns[1] = func() { l.drainDeliveries(1) }
	l.xb[0] = linkBoundary{l: l, end: 0}
	l.xb[1] = linkBoundary{l: l, end: 1}
	l.tx[0] = linkTxSide{l: l, end: 0}
	l.tx[1] = linkTxSide{l: l, end: 1}
	l.rx[0] = linkRxSide{l: l, end: 0}
	l.rx[1] = linkRxSide{l: l, end: 1}
	if l.cross {
		if cfg.PropDelay <= 0 {
			panic(fmt.Sprintf("fabric: cross-domain link %s needs a positive PropDelay lookahead", l.name))
		}
		ea.ObserveEdgeLookahead(eb, cfg.PropDelay)
		eb.ObserveEdgeLookahead(ea, cfg.PropDelay)
		l.class[0] = eb.ArrivalClass()
		l.class[1] = ea.ArrivalClass()
	}
	return l
}

// delivery is one in-flight packet on a link direction.
type delivery struct {
	at  sim.Time
	pkt *Packet
}

// End returns the attachment for end i (0 or 1).
func (l *Link) End(i int) *Attachment { return &l.ends[i] }

// EndFor returns the attachment belonging to dev, or nil.
func (l *Link) EndFor(dev Device) *Attachment {
	for i := range l.ends {
		if l.ends[i].dev == dev {
			return &l.ends[i]
		}
	}
	return nil
}

// Name identifies the link in traces.
func (l *Link) Name() string { return l.name }

// Up reports whether the link is carrying traffic.
func (l *Link) Up() bool { return l.up }

// SetUp raises or cuts the link. In-flight deliveries on a link that goes
// down are dropped. Topology control: call from the control domain (chaos
// schedulers and experiments already do).
func (l *Link) SetUp(up bool) { l.up = up }

// SetFaults installs (or with a zero profile, removes) a fault profile on
// the link, using a generator seeded deterministically: fault decisions are
// then a pure function of the seed and the packet sequence, so chaos
// campaigns replay bit-for-bit. A cross-domain link derives one independent
// stream per direction from the seed.
func (l *Link) SetFaults(p FaultProfile, seed uint64) {
	l.faults = p
	if p == (FaultProfile{}) {
		l.faultRNG = [2]*sim.RNG{}
		return
	}
	if l.cross {
		l.faultRNG[0] = sim.DeriveRNG(seed, 0)
		l.faultRNG[1] = sim.DeriveRNG(seed, 1)
		return
	}
	r := sim.NewRNG(seed)
	l.faultRNG = [2]*sim.RNG{r, r}
}

// Faults returns the installed fault profile (zero when healthy).
func (l *Link) Faults() FaultProfile { return l.faults }

// Stats returns a snapshot of the traffic counters for direction end->peer.
// The copy-out is deliberate: callers audit counters against each other and
// must not alias live state.
func (l *Link) Stats(end int) LinkStats {
	s := l.stats[end]
	s.Dropped += l.rxDropped[end]
	return s
}

// Utilization reports the busy fraction of direction end over elapsed time
// since the start of the simulation.
func (l *Link) Utilization(end int) float64 {
	now := l.engs[end].Now()
	if now == 0 {
		return 0
	}
	return float64(l.stats[end].Busy) / float64(now)
}
