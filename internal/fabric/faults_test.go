package fabric

import (
	"testing"

	"repro/internal/sim"
)

// Every packet pushed at a link must be accounted for: delivered to the
// peer or counted in Dropped, across up/down flaps including cuts that
// catch packets mid-flight.
func TestLinkDownAccountsEveryLoss(t *testing.T) {
	eng := sim.NewEngine(1)
	a := &sink{name: "a", eng: eng}
	b := &sink{name: "b", eng: eng}
	l := NewLink(eng, LinkConfig{BytesPerSec: 250e6, PropDelay: 500}, a, b)

	const total = 40
	sent := 0
	var pump func(i int)
	pump = func(i int) {
		if i >= total {
			return
		}
		l.End(0).Send(pkt(242))
		sent++
		eng.After(700, func() { pump(i + 1) })
	}
	pump(0)
	// Flap the link twice while traffic flows: some packets are refused at
	// the downed cable, some are cut mid-flight.
	eng.At(3_100, func() { l.SetUp(false) })
	eng.At(9_050, func() { l.SetUp(true) })
	eng.At(15_033, func() { l.SetUp(false) })
	eng.At(21_777, func() { l.SetUp(true) })
	eng.Run()

	st := l.Stats(0)
	if len(b.got) == total {
		t.Fatal("flaps dropped nothing; test is not exercising the loss path")
	}
	// Refused sends are not counted in Packets, so conservation is:
	// delivered + dropped == sent attempts (Packets counts accepted ones,
	// Dropped counts both refused and cut-mid-flight ones).
	if got := uint64(len(b.got)) + st.Dropped; got != uint64(sent) {
		t.Errorf("delivered(%d) + Dropped(%d) = %d, want %d (every loss accounted)",
			len(b.got), st.Dropped, got, sent)
	}
	if st.FaultDropped != 0 {
		t.Errorf("FaultDropped = %d with no fault profile installed", st.FaultDropped)
	}
}

func TestLinkFaultProfileDrops(t *testing.T) {
	run := func(seed uint64) (delivered int, st LinkStats) {
		eng := sim.NewEngine(1)
		a := &sink{name: "a", eng: eng}
		b := &sink{name: "b", eng: eng}
		l := NewLink(eng, LinkConfig{BytesPerSec: 250e6, PropDelay: 0}, a, b)
		l.SetFaults(FaultProfile{DropProb: 0.3}, seed)
		for i := 0; i < 200; i++ {
			l.End(0).Send(pkt(100))
		}
		eng.Run()
		return len(b.got), l.Stats(0)
	}
	d1, st1 := run(42)
	if st1.FaultDropped == 0 || d1 == 200 {
		t.Fatalf("drop profile inert: delivered=%d stats=%+v", d1, st1)
	}
	if uint64(d1)+st1.Dropped != 200 {
		t.Errorf("delivered(%d) + Dropped(%d) != 200", d1, st1.Dropped)
	}
	// Same seed, same losses — the chaos determinism contract.
	d2, st2 := run(42)
	if d1 != d2 || st1 != st2 {
		t.Errorf("fault profile not deterministic: %d/%+v vs %d/%+v", d1, st1, d2, st2)
	}
	// A different seed draws a different loss pattern (overwhelmingly).
	d3, _ := run(43)
	if d1 == d3 {
		t.Logf("seeds 42 and 43 dropped identically (%d); suspicious but possible", d1)
	}
}

func TestLinkFaultProfileCorruption(t *testing.T) {
	eng := sim.NewEngine(1)
	a := &sink{name: "a", eng: eng}
	b := &sink{name: "b", eng: eng}
	l := NewLink(eng, LinkConfig{BytesPerSec: 250e6, PropDelay: 0}, a, b)

	// Post-seal (wire) corruption: CRC check must catch it.
	l.SetFaults(FaultProfile{CorruptProb: 1}, 7)
	l.End(0).Send(pkt(64))
	eng.Run()
	if len(b.got) != 1 {
		t.Fatal("corrupted packet not delivered")
	}
	if b.got[0].CRCOk() {
		t.Error("wire corruption passed the CRC check")
	}
	if l.Stats(0).Corrupted != 1 {
		t.Errorf("Corrupted = %d, want 1", l.Stats(0).Corrupted)
	}

	// Pre-seal corruption: resealed, so it slips past the CRC.
	l.SetFaults(FaultProfile{CorruptProb: 1, CorruptPreSeal: true}, 7)
	l.End(0).Send(pkt(64))
	eng.Run()
	if len(b.got) != 2 {
		t.Fatal("pre-seal corrupted packet not delivered")
	}
	if !b.got[1].CRCOk() {
		t.Error("pre-seal corruption must pass the CRC check")
	}

	// Clearing the profile restores a healthy cable.
	l.SetFaults(FaultProfile{}, 0)
	if l.Faults() != (FaultProfile{}) {
		t.Error("fault profile not cleared")
	}
	l.End(0).Send(pkt(64))
	eng.Run()
	if got := l.Stats(0).Corrupted; got != 2 {
		t.Errorf("Corrupted = %d after clearing, want 2", got)
	}
}

func TestSwitchDeadPortDropsBothDirections(t *testing.T) {
	eng := sim.NewEngine(1)
	sw := NewSwitch(eng, "sw", DefaultSwitchConfig())
	a := &sink{name: "a", eng: eng}
	b := &sink{name: "b", eng: eng}
	la := NewLink(eng, DefaultLinkConfig(), a, sw)
	lb := NewLink(eng, DefaultLinkConfig(), b, sw)
	if err := sw.AttachLink(0, la); err != nil {
		t.Fatal(err)
	}
	if err := sw.AttachLink(1, lb); err != nil {
		t.Fatal(err)
	}

	// Output port dead: routed into it, dropped.
	sw.SetPortDead(1, true)
	if !sw.PortDead(1) {
		t.Fatal("PortDead(1) = false after kill")
	}
	p := pkt(10)
	p.Route = []byte{1}
	la.EndFor(a).Send(p)
	eng.Run()
	if len(b.got) != 0 {
		t.Fatal("delivered through dead output port")
	}

	// Input port dead: arrivals on it are dropped too.
	sw.SetPortDead(1, false)
	sw.SetPortDead(0, true)
	p2 := pkt(10)
	p2.Route = []byte{1}
	la.EndFor(a).Send(p2)
	eng.Run()
	if len(b.got) != 0 {
		t.Fatal("delivered from dead input port")
	}
	if got := sw.Stats().DroppedDead; got != 2 {
		t.Errorf("DroppedDead = %d, want 2", got)
	}

	// Revive: traffic flows again.
	sw.SetPortDead(0, false)
	p3 := pkt(10)
	p3.Route = []byte{1}
	la.EndFor(a).Send(p3)
	eng.Run()
	if len(b.got) != 1 {
		t.Fatal("not delivered after revive")
	}
}
