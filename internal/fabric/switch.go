package fabric

import (
	"fmt"

	"repro/internal/sim"
)

// SwitchConfig sets the forwarding characteristics of a crossbar switch.
type SwitchConfig struct {
	// Ports is the number of external ports (the M3M-SW8 of the paper has 8).
	Ports int
	// CutThrough is the head-of-packet forwarding latency: the time from
	// the route byte arriving to the packet emerging on the output port.
	CutThrough sim.Duration
}

// DefaultSwitchConfig models the M3M-SW8 8-port switch with the sub-µs
// cut-through latency Myrinet is known for.
func DefaultSwitchConfig() SwitchConfig {
	return SwitchConfig{Ports: 8, CutThrough: 300 * sim.Nanosecond}
}

// SwitchStats counts switch-level events.
type SwitchStats struct {
	Forwarded     uint64
	DroppedNoPort uint64
	DroppedDead   uint64 // routed into a downed link or a dead port
}

// Switch is a source-routing crossbar: it consumes the packet's first route
// byte as the output port index and forwards after the cut-through latency.
type Switch struct {
	eng   *sim.Engine
	cfg   SwitchConfig
	name  string
	ports []*Attachment // nil where nothing is cabled
	dead  []bool        // per-port SerDes death (fault injection)
	stats SwitchStats

	// Packets waiting out the cut-through latency, in due order; one engine
	// event drains the due prefix (see RecvPacket).
	fwdQ        []swFwd
	fwdHead     int
	fwdWake     *sim.Event
	fwdDraining bool
	fwdDrainFn  func() // cached; arming a drain must not allocate

	// Speculation journaling (sim spec.go): first-touch checkpoint of the
	// forwarding ring and counters. dead is excluded — SetPortDead is
	// control-plane, and control code never runs with a span open.
	specMark uint64
	shadow   switchShadow
}

// switchShadow is the restore image for Switch.SpecSave/SpecRestore.
type switchShadow struct {
	stats SwitchStats
	fwdQ  []swFwd
	wake  *sim.Event
}

// SpecSave / SpecRestore implement sim.SpecSaver: live-region copy of the
// forwarding ring, rebuilt canonically (head 0) on rollback. Slot positions
// inside the array are unobservable, so the rebuild is bit-for-bit safe.
func (s *Switch) SpecSave() {
	s.shadow.stats = s.stats
	s.shadow.fwdQ = append(s.shadow.fwdQ[:0], s.fwdQ[s.fwdHead:]...)
	s.shadow.wake = s.fwdWake
}

func (s *Switch) SpecRestore() {
	s.stats = s.shadow.stats
	for i := len(s.shadow.fwdQ); i < len(s.fwdQ); i++ {
		s.fwdQ[i] = swFwd{}
	}
	s.fwdQ = append(s.fwdQ[:0], s.shadow.fwdQ...)
	s.fwdHead = 0
	s.fwdWake = s.shadow.wake
	s.fwdDraining = false
}

// NewSwitch creates a switch with cfg.Ports empty ports.
func NewSwitch(eng *sim.Engine, name string, cfg SwitchConfig) *Switch {
	s := &Switch{
		eng:   eng,
		cfg:   cfg,
		name:  name,
		ports: make([]*Attachment, cfg.Ports),
		dead:  make([]bool, cfg.Ports),
	}
	s.fwdDrainFn = s.drainForwards
	return s
}

// Name identifies the switch in traces.
func (s *Switch) Name() string { return s.name }

// NumPorts returns the port count.
func (s *Switch) NumPorts() int { return len(s.ports) }

// Stats returns a snapshot of the forwarding counters (copy-out: audits
// compare counter sets and must not alias live state).
func (s *Switch) Stats() SwitchStats { return s.stats }

// SetPortDead kills or revives one port's SerDes: a dead port neither
// accepts nor emits packets, while the cabled link itself stays up (the
// failure is inside the crossbar, not on the cable).
func (s *Switch) SetPortDead(i int, dead bool) {
	if i >= 0 && i < len(s.dead) {
		s.dead[i] = dead
		s.eng.Tracef(s.name, "port %d dead=%v", i, dead)
	}
}

// PortDead reports whether port i is killed.
func (s *Switch) PortDead(i int) bool { return i >= 0 && i < len(s.dead) && s.dead[i] }

// AttachLink cables an end of l into port i. The attachment must belong to
// this switch (create the link with the switch as one of its devices).
func (s *Switch) AttachLink(i int, l *Link) error {
	if i < 0 || i >= len(s.ports) {
		return fmt.Errorf("fabric: switch %s has no port %d", s.name, i)
	}
	if s.ports[i] != nil {
		return fmt.Errorf("fabric: switch %s port %d already cabled", s.name, i)
	}
	end := l.EndFor(s)
	if end == nil {
		return fmt.Errorf("fabric: link %s has no end at switch %s", l.Name(), s.name)
	}
	s.ports[i] = end
	return nil
}

// PortLink returns the link cabled into port i, or nil.
func (s *Switch) PortLink(i int) *Link {
	if i < 0 || i >= len(s.ports) || s.ports[i] == nil {
		return nil
	}
	return s.ports[i].link
}

// PortFor reports which port the given attachment (an end of a link at this
// switch) is cabled into, or -1.
func (s *Switch) PortFor(a *Attachment) int {
	for i, p := range s.ports {
		if p == a {
			return i
		}
	}
	return -1
}

// RecvPacket implements Device: consume one route byte as a signed delta
// relative to the input port (Myrinet's relative addressing: the output
// port is input + delta, modulo the crossbar size), and forward out that
// port after the cut-through latency. Relative deltas make routes
// reversible — the reverse route is the negated deltas in reverse order —
// which the mapper's scout/reply protocol depends on. Packets with no route
// left, or a delta naming an empty or downed port, are dropped; Myrinet
// switches likewise discard packets routed into dead links, and it is the
// mapper's job to avoid such routes.
func (s *Switch) RecvPacket(pkt *Packet, on *Attachment) {
	s.eng.SpecTouch(&s.specMark, s)
	if len(pkt.Route) == 0 {
		s.stats.DroppedNoPort++
		if s.eng.TraceEnabled() {
			s.eng.Tracef(s.name, "drop %v: route exhausted at switch", pkt)
		}
		pkt.ReleaseSpec(s.eng)
		return
	}
	in := s.PortFor(on)
	if in < 0 {
		s.stats.DroppedNoPort++
		pkt.ReleaseSpec(s.eng)
		return
	}
	if s.dead[in] {
		s.stats.DroppedDead++
		if s.eng.TraceEnabled() {
			s.eng.Tracef(s.name, "drop %v: input port %d dead", pkt, in)
		}
		pkt.ReleaseSpec(s.eng)
		return
	}
	pkt.SpecTouch(s.eng)
	delta := int(int8(pkt.Route[0]))
	pkt.Route = pkt.Route[1:]
	out := (in + delta%len(s.ports) + len(s.ports)) % len(s.ports)
	if out >= len(s.ports) || s.ports[out] == nil {
		s.stats.DroppedNoPort++
		if s.eng.TraceEnabled() {
			s.eng.Tracef(s.name, "drop %v: no port %d", pkt, out)
		}
		pkt.ReleaseSpec(s.eng)
		return
	}
	if s.dead[out] {
		s.stats.DroppedDead++
		if s.eng.TraceEnabled() {
			s.eng.Tracef(s.name, "drop %v: port %d dead", pkt, out)
		}
		pkt.ReleaseSpec(s.eng)
		return
	}
	dst := s.ports[out]
	if !dst.link.Up() {
		s.stats.DroppedDead++
		if s.eng.TraceEnabled() {
			s.eng.Tracef(s.name, "drop %v: port %d link down", pkt, out)
		}
		pkt.ReleaseSpec(s.eng)
		return
	}
	s.stats.Forwarded++
	// Cut-through latency is constant, so pending forwards are due in FIFO
	// order; queue them in a ring drained by one engine event instead of a
	// closure-carrying event per packet.
	if s.fwdHead > 0 && s.fwdHead == len(s.fwdQ) {
		s.fwdQ = s.fwdQ[:0]
		s.fwdHead = 0
	}
	s.fwdQ = append(s.fwdQ, swFwd{at: s.eng.Now() + s.cfg.CutThrough, dst: dst, pkt: pkt})
	if s.fwdWake == nil && !s.fwdDraining {
		s.fwdWake = s.eng.AtLabel(s.fwdQ[len(s.fwdQ)-1].at, "switch", s.fwdDrainFn)
	}
}

// drainForwards emits every due queued forward and re-arms a wake for the
// next pending one.
func (s *Switch) drainForwards() {
	// Touch before the transient flags flip, so the first-touch checkpoint
	// captures the quiescent between-callback shape.
	s.eng.SpecTouch(&s.specMark, s)
	s.fwdWake = nil
	s.fwdDraining = true
	now := s.eng.Now()
	for s.fwdHead < len(s.fwdQ) {
		f := &s.fwdQ[s.fwdHead]
		if f.at > now {
			break
		}
		dst, pkt := f.dst, f.pkt
		*f = swFwd{}
		s.fwdHead++
		dst.Send(pkt)
	}
	s.fwdDraining = false
	if s.fwdHead > 1024 && s.fwdHead*2 > len(s.fwdQ) {
		n := copy(s.fwdQ, s.fwdQ[s.fwdHead:])
		for i := n; i < len(s.fwdQ); i++ {
			s.fwdQ[i] = swFwd{}
		}
		s.fwdQ = s.fwdQ[:n]
		s.fwdHead = 0
	}
	if s.fwdHead < len(s.fwdQ) {
		s.fwdWake = s.eng.AtLabel(s.fwdQ[s.fwdHead].at, "switch", s.fwdDrainFn)
	}
}

// swFwd is one packet waiting out the cut-through latency.
type swFwd struct {
	at  sim.Time
	dst *Attachment
	pkt *Packet
}
