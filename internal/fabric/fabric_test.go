package fabric

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// sink is a test device that records deliveries.
type sink struct {
	name    string
	got     []*Packet
	gotAt   []sim.Time
	eng     *sim.Engine
	forward func(pkt *Packet, on *Attachment)
}

func (s *sink) Name() string { return s.name }

func (s *sink) RecvPacket(pkt *Packet, on *Attachment) {
	s.got = append(s.got, pkt)
	s.gotAt = append(s.gotAt, s.eng.Now())
	if s.forward != nil {
		s.forward(pkt, on)
	}
}

func pkt(payload int) *Packet {
	p := &Packet{Payload: make([]byte, payload)}
	p.SealCRC()
	return p
}

func TestPacketCRC(t *testing.T) {
	p := &Packet{Payload: []byte("hello myrinet")}
	p.SealCRC()
	if !p.CRCOk() {
		t.Fatal("fresh CRC does not verify")
	}
	p.CorruptPayload(13, false)
	if p.CRCOk() {
		t.Fatal("stale CRC verified after corruption")
	}
	p.SealCRC()
	if !p.CRCOk() {
		t.Fatal("resealed CRC does not verify")
	}
	p.CorruptPayload(13, true)
	if !p.CRCOk() {
		t.Fatal("resealed corruption must pass CRC (pre-CRC fault model)")
	}
}

func TestPacketClone(t *testing.T) {
	p := &Packet{Route: []byte{1, 2}, Payload: []byte{9, 8, 7}}
	c := p.Clone()
	c.Route[0] = 99
	c.Payload[0] = 99
	if p.Route[0] == 99 || p.Payload[0] == 99 {
		t.Fatal("Clone shares memory with the original")
	}
}

func TestPacketWireSize(t *testing.T) {
	p := &Packet{Route: []byte{1, 2, 3}, Payload: make([]byte, 100)}
	if got := p.WireSize(); got != 3+100+HeaderBytes {
		t.Errorf("WireSize = %d", got)
	}
}

func TestLinkDelivery(t *testing.T) {
	eng := sim.NewEngine(1)
	a := &sink{name: "a", eng: eng}
	b := &sink{name: "b", eng: eng}
	l := NewLink(eng, LinkConfig{BytesPerSec: 250e6, PropDelay: 100}, a, b)
	p := pkt(242) // 250 bytes on the wire
	l.End(0).Send(p)
	eng.Run()
	if len(b.got) != 1 {
		t.Fatalf("b received %d packets, want 1", len(b.got))
	}
	// 250 bytes at 250 MB/s = 1000 ns serialization + 100 ns propagation.
	if want := sim.Time(1100); b.gotAt[0] != want {
		t.Errorf("delivered at %v, want %v", b.gotAt[0], want)
	}
	if len(a.got) != 0 {
		t.Error("sender received its own packet")
	}
}

func TestLinkSerialization(t *testing.T) {
	eng := sim.NewEngine(1)
	a := &sink{name: "a", eng: eng}
	b := &sink{name: "b", eng: eng}
	l := NewLink(eng, LinkConfig{BytesPerSec: 250e6, PropDelay: 0}, a, b)
	// Two packets sent at t=0 must serialize back to back.
	l.End(0).Send(pkt(242))
	l.End(0).Send(pkt(242))
	eng.Run()
	if len(b.got) != 2 {
		t.Fatalf("received %d, want 2", len(b.got))
	}
	if b.gotAt[0] != 1000 || b.gotAt[1] != 2000 {
		t.Errorf("arrival times %v, want [1000 2000]", b.gotAt)
	}
}

func TestLinkFullDuplex(t *testing.T) {
	eng := sim.NewEngine(1)
	a := &sink{name: "a", eng: eng}
	b := &sink{name: "b", eng: eng}
	l := NewLink(eng, LinkConfig{BytesPerSec: 250e6, PropDelay: 0}, a, b)
	l.End(0).Send(pkt(242))
	l.End(1).Send(pkt(242))
	eng.Run()
	// Directions must not serialize against each other.
	if len(a.got) != 1 || len(b.got) != 1 {
		t.Fatalf("a=%d b=%d, want 1 each", len(a.got), len(b.got))
	}
	if a.gotAt[0] != 1000 || b.gotAt[0] != 1000 {
		t.Errorf("full duplex broken: %v %v", a.gotAt, b.gotAt)
	}
}

func TestLinkDown(t *testing.T) {
	eng := sim.NewEngine(1)
	a := &sink{name: "a", eng: eng}
	b := &sink{name: "b", eng: eng}
	l := NewLink(eng, DefaultLinkConfig(), a, b)
	l.SetUp(false)
	l.End(0).Send(pkt(100))
	eng.Run()
	if len(b.got) != 0 {
		t.Fatal("packet delivered over downed link")
	}
	if l.Stats(0).Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", l.Stats(0).Dropped)
	}
	l.SetUp(true)
	l.End(0).Send(pkt(100))
	eng.Run()
	if len(b.got) != 1 {
		t.Fatal("packet not delivered after link restored")
	}
}

func TestLinkCutMidFlight(t *testing.T) {
	eng := sim.NewEngine(1)
	a := &sink{name: "a", eng: eng}
	b := &sink{name: "b", eng: eng}
	l := NewLink(eng, LinkConfig{BytesPerSec: 250e6, PropDelay: 1000}, a, b)
	l.End(0).Send(pkt(242))
	eng.At(500, func() { l.SetUp(false) })
	eng.Run()
	if len(b.got) != 0 {
		t.Fatal("packet survived a link cut mid flight")
	}
}

func TestLinkStatsAndUtilization(t *testing.T) {
	eng := sim.NewEngine(1)
	a := &sink{name: "a", eng: eng}
	b := &sink{name: "b", eng: eng}
	l := NewLink(eng, LinkConfig{BytesPerSec: 250e6, PropDelay: 0}, a, b)
	l.End(0).Send(pkt(242))
	eng.Run()
	st := l.Stats(0)
	if st.Packets != 1 || st.Bytes != 250 || st.Busy != 1000 {
		t.Errorf("stats = %+v", st)
	}
	if u := l.Utilization(0); u != 1.0 {
		t.Errorf("utilization = %v, want 1.0", u)
	}
}

func TestSwitchForwarding(t *testing.T) {
	eng := sim.NewEngine(1)
	sw := NewSwitch(eng, "sw", DefaultSwitchConfig())
	a := &sink{name: "a", eng: eng}
	b := &sink{name: "b", eng: eng}
	la := NewLink(eng, DefaultLinkConfig(), a, sw)
	lb := NewLink(eng, DefaultLinkConfig(), b, sw)
	if err := sw.AttachLink(0, la); err != nil {
		t.Fatal(err)
	}
	if err := sw.AttachLink(5, lb); err != nil {
		t.Fatal(err)
	}
	p := pkt(100)
	p.Route = []byte{5} // out port 5
	la.EndFor(a).Send(p)
	eng.Run()
	if len(b.got) != 1 {
		t.Fatalf("b received %d, want 1", len(b.got))
	}
	if len(b.got[0].Route) != 0 {
		t.Errorf("route not fully consumed: %v", b.got[0].Route)
	}
	if sw.Stats().Forwarded != 1 {
		t.Errorf("Forwarded = %d", sw.Stats().Forwarded)
	}
}

func TestSwitchTwoHop(t *testing.T) {
	eng := sim.NewEngine(1)
	sw1 := NewSwitch(eng, "sw1", DefaultSwitchConfig())
	sw2 := NewSwitch(eng, "sw2", DefaultSwitchConfig())
	a := &sink{name: "a", eng: eng}
	b := &sink{name: "b", eng: eng}
	la := NewLink(eng, DefaultLinkConfig(), a, sw1)
	trunk := NewLink(eng, DefaultLinkConfig(), sw1, sw2)
	lb := NewLink(eng, DefaultLinkConfig(), b, sw2)
	if err := sw1.AttachLink(0, la); err != nil {
		t.Fatal(err)
	}
	if err := sw1.AttachLink(7, trunk); err != nil {
		t.Fatal(err)
	}
	if err := sw2.AttachLink(3, trunk); err != nil {
		t.Fatal(err)
	}
	if err := sw2.AttachLink(1, lb); err != nil {
		t.Fatal(err)
	}
	p := pkt(64)
	// Deltas: sw1 in 0 -> out 7 is +7; sw2 in 3 -> out 1 is -2.
	p.Route = []byte{7, 0xFE}
	la.EndFor(a).Send(p)
	eng.Run()
	if len(b.got) != 1 {
		t.Fatalf("b received %d, want 1", len(b.got))
	}
}

func TestSwitchDropsBadRoute(t *testing.T) {
	eng := sim.NewEngine(1)
	sw := NewSwitch(eng, "sw", DefaultSwitchConfig())
	a := &sink{name: "a", eng: eng}
	la := NewLink(eng, DefaultLinkConfig(), a, sw)
	if err := sw.AttachLink(0, la); err != nil {
		t.Fatal(err)
	}

	empty := pkt(10) // no route left at the switch
	la.EndFor(a).Send(empty)

	bad := pkt(10)
	bad.Route = []byte{6} // port 6 not cabled
	la.EndFor(a).Send(bad)

	eng.Run()
	st := sw.Stats()
	if st.DroppedNoPort != 2 {
		t.Errorf("DroppedNoPort = %d, want 2", st.DroppedNoPort)
	}
}

func TestSwitchDropsDeadPort(t *testing.T) {
	eng := sim.NewEngine(1)
	sw := NewSwitch(eng, "sw", DefaultSwitchConfig())
	a := &sink{name: "a", eng: eng}
	b := &sink{name: "b", eng: eng}
	la := NewLink(eng, DefaultLinkConfig(), a, sw)
	lb := NewLink(eng, DefaultLinkConfig(), b, sw)
	if err := sw.AttachLink(0, la); err != nil {
		t.Fatal(err)
	}
	if err := sw.AttachLink(1, lb); err != nil {
		t.Fatal(err)
	}
	lb.SetUp(false)
	p := pkt(10)
	p.Route = []byte{1}
	la.EndFor(a).Send(p)
	eng.Run()
	if len(b.got) != 0 {
		t.Fatal("delivered through dead port")
	}
	if sw.Stats().DroppedDead != 1 {
		t.Errorf("DroppedDead = %d, want 1", sw.Stats().DroppedDead)
	}
}

func TestSwitchAttachErrors(t *testing.T) {
	eng := sim.NewEngine(1)
	sw := NewSwitch(eng, "sw", SwitchConfig{Ports: 2, CutThrough: 1})
	a := &sink{name: "a", eng: eng}
	b := &sink{name: "b", eng: eng}
	la := NewLink(eng, DefaultLinkConfig(), a, sw)
	if err := sw.AttachLink(9, la); err == nil {
		t.Error("out-of-range port accepted")
	}
	if err := sw.AttachLink(0, la); err != nil {
		t.Fatal(err)
	}
	if err := sw.AttachLink(0, la); err == nil {
		t.Error("double cabling accepted")
	}
	foreign := NewLink(eng, DefaultLinkConfig(), a, b) // no end at sw
	if err := sw.AttachLink(1, foreign); err == nil {
		t.Error("foreign link accepted")
	}
}

func TestSwitchPortFor(t *testing.T) {
	eng := sim.NewEngine(1)
	sw := NewSwitch(eng, "sw", DefaultSwitchConfig())
	a := &sink{name: "a", eng: eng}
	la := NewLink(eng, DefaultLinkConfig(), a, sw)
	if err := sw.AttachLink(4, la); err != nil {
		t.Fatal(err)
	}
	if got := sw.PortFor(la.EndFor(sw)); got != 4 {
		t.Errorf("PortFor = %d, want 4", got)
	}
	if sw.PortLink(4) != la {
		t.Error("PortLink(4) wrong")
	}
	if sw.PortLink(5) != nil {
		t.Error("PortLink(5) should be nil")
	}
}

// Property: total delivery time over an idle link equals size/rate + prop
// for any packet size.
func TestPropertyLinkTiming(t *testing.T) {
	f := func(payload uint16, prop uint16) bool {
		eng := sim.NewEngine(1)
		a := &sink{name: "a", eng: eng}
		b := &sink{name: "b", eng: eng}
		l := NewLink(eng, LinkConfig{BytesPerSec: 250e6, PropDelay: sim.Duration(prop)}, a, b)
		p := pkt(int(payload))
		l.End(0).Send(p)
		eng.Run()
		if len(b.got) != 1 {
			return false
		}
		ser := sim.Duration(float64(p.WireSize()) / 250e6 * 1e9)
		return b.gotAt[0] == ser+sim.Duration(prop)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: N same-size packets on one direction arrive in order, equally
// spaced by the serialization time.
func TestPropertyLinkFIFO(t *testing.T) {
	f := func(n uint8) bool {
		count := int(n%20) + 1
		eng := sim.NewEngine(1)
		a := &sink{name: "a", eng: eng}
		b := &sink{name: "b", eng: eng}
		l := NewLink(eng, LinkConfig{BytesPerSec: 250e6, PropDelay: 0}, a, b)
		for i := 0; i < count; i++ {
			p := pkt(242)
			p.ID = uint64(i)
			l.End(0).Send(p)
		}
		eng.Run()
		if len(b.got) != count {
			return false
		}
		for i, p := range b.got {
			if p.ID != uint64(i) || b.gotAt[i] != sim.Time(1000*(i+1)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
