// Package fabric models the Myrinet network fabric: point-to-point
// full-duplex links, crossbar switches with cut-through forwarding, and
// source-routed packets. A Myrinet packet begins with a sequence of route
// bytes — one per switch hop, each naming the output port — which switches
// strip as the packet advances; the remainder (the GM-level header and
// payload) is opaque to the fabric and protected by a trailing CRC.
//
// Differences from the real wire protocol, and why they don't matter here:
// the model forwards whole packets with a cut-through latency term rather
// than individual flits (the latency/bandwidth terms are preserved; flit
// interleaving below 4 KB packets is not observable in the paper's
// experiments), and route bytes are absolute output-port indices rather
// than Myrinet's signed deltas (a naming choice invisible above the mapper).
package fabric

import (
	"fmt"
	"hash/crc32"

	"repro/internal/sim"
)

// Packet is a unit of transfer on the fabric. Route holds the remaining
// route bytes; Payload is the GM-level content; CRC covers Payload.
//
// Packets normally come from the process-wide arena (GetPacket/Release, see
// pool.go); literal construction still works for tests and one-off traffic.
// Payload may be written freely through Buf before SealCRC; code that
// mutates Payload through other means after sealing must call
// InvalidateCRC, or CRCOk will keep reporting the seal-time verdict.
type Packet struct {
	Route   []byte
	Payload []byte
	CRC     uint32

	// Tracing metadata; not part of the wire image.
	ID       uint64
	SrcLabel string
	Injected sim.Time

	// crcValid caches "CRC matches Payload": set by SealCRC, cleared by
	// Buf/CorruptPayload/InvalidateCRC. It lets CRCOk answer without
	// rehashing the payload — the checksum is computed once at injection
	// and (for damaged or literal packets only) once at delivery, instead
	// of once per hop.
	crcValid bool

	// Arena bookkeeping (pool.go). pooled marks packets born in the arena;
	// live guards against double release. buf is the owned payload storage
	// Buf slices into; routeBuf backs CopyRoute for short routes.
	pooled   bool
	live     bool
	buf      []byte
	routeBuf [16]byte
}

// HeaderBytes is the fixed per-packet framing overhead on the wire beyond
// route bytes and payload (type field + CRC trailer), in bytes.
const HeaderBytes = 8

// WireSize is the number of bytes the packet occupies on a link.
func (p *Packet) WireSize() int { return len(p.Route) + len(p.Payload) + HeaderBytes }

// SealCRC computes and stores the payload CRC.
func (p *Packet) SealCRC() {
	p.CRC = crc32.ChecksumIEEE(p.Payload)
	p.crcValid = true
}

// CRCOk reports whether the stored CRC matches the payload. Sealed,
// undamaged packets answer from the cached seal verdict; only literal or
// damaged packets pay for a checksum here.
func (p *Packet) CRCOk() bool {
	return p.crcValid || p.CRC == crc32.ChecksumIEEE(p.Payload)
}

// InvalidateCRC discards the cached seal verdict, forcing the next CRCOk to
// rehash the payload. Call it after mutating Payload outside the packet's
// own mutators.
func (p *Packet) InvalidateCRC() { p.crcValid = false }

// CorruptPayload flips a bit of the payload (for fault experiments). The CRC
// is left stale so receivers detect the damage, unless reseal is true, which
// models corruption that happened before the CRC was computed — the damage
// then slips past the link-level check, exactly the "Messages Corrupted"
// failure mode of Table 1.
func (p *Packet) CorruptPayload(bit int, reseal bool) {
	if len(p.Payload) == 0 {
		return
	}
	idx := (bit / 8) % len(p.Payload)
	p.Payload[idx] ^= 1 << (bit % 8)
	p.crcValid = false
	if reseal {
		p.SealCRC()
	}
}

// Clone deep-copies the packet (route and payload) through the arena; the
// copy must be released like any checked-out packet.
func (p *Packet) Clone() *Packet {
	cp := GetPacket()
	cp.CopyRoute(p.Route)
	copy(cp.Buf(len(p.Payload)), p.Payload)
	cp.CRC = p.CRC
	cp.crcValid = p.crcValid
	cp.ID = p.ID
	cp.SrcLabel = p.SrcLabel
	cp.Injected = p.Injected
	return cp
}

// String summarizes the packet for traces.
func (p *Packet) String() string {
	return fmt.Sprintf("pkt#%d[route=%v payload=%dB]", p.ID, p.Route, len(p.Payload))
}
