// Package fabric models the Myrinet network fabric: point-to-point
// full-duplex links, crossbar switches with cut-through forwarding, and
// source-routed packets. A Myrinet packet begins with a sequence of route
// bytes — one per switch hop, each naming the output port — which switches
// strip as the packet advances; the remainder (the GM-level header and
// payload) is opaque to the fabric and protected by a trailing CRC.
//
// Differences from the real wire protocol, and why they don't matter here:
// the model forwards whole packets with a cut-through latency term rather
// than individual flits (the latency/bandwidth terms are preserved; flit
// interleaving below 4 KB packets is not observable in the paper's
// experiments), and route bytes are absolute output-port indices rather
// than Myrinet's signed deltas (a naming choice invisible above the mapper).
package fabric

import (
	"fmt"
	"hash/crc32"

	"repro/internal/sim"
)

// Packet is a unit of transfer on the fabric. Route holds the remaining
// route bytes; Payload is the GM-level content; CRC covers Payload.
//
// Packets normally come from the process-wide arena (GetPacket/Release, see
// pool.go); literal construction still works for tests and one-off traffic.
// Payload may be written freely through Buf before SealCRC; code that
// mutates Payload through other means after sealing must call
// InvalidateCRC, or CRCOk will keep reporting the seal-time verdict.
type Packet struct {
	Route   []byte
	Payload []byte
	CRC     uint32

	// Tracing metadata; not part of the wire image.
	ID       uint64
	SrcLabel string
	Injected sim.Time

	// crcValid caches "CRC matches Payload": set by SealCRC, cleared by
	// Buf/CorruptPayload/InvalidateCRC. It lets CRCOk answer without
	// rehashing the payload — the checksum is computed once at injection
	// and (for damaged or literal packets only) once at delivery, instead
	// of once per hop.
	crcValid bool

	// Arena bookkeeping (pool.go). pooled marks packets born in the arena;
	// live guards against double release. buf is the owned payload storage
	// Buf slices into; routeBuf backs CopyRoute for short routes.
	pooled   bool
	live     bool
	buf      []byte
	routeBuf [16]byte

	// Speculation journaling (sim spec.go): first-touch shadow of the header
	// fields a speculative span may mutate in place (route advance at
	// switches, CRC reseal on injected corruption, injection stamps). Payload
	// *content* is never shadowed: in-flight damage is undone by the
	// self-inverse XOR record of SpecCorruptPayload, and construction-time
	// writes only happen on packets the span itself checked out, which a
	// rollback releases wholesale.
	specMark uint64
	shadow   pktShadow
}

// pktShadow holds the restore image for Packet.SpecSave/SpecRestore. Slice
// fields copy only the header (pointer/len/cap), not the bytes.
type pktShadow struct {
	route    []byte
	payload  []byte
	crc      uint32
	id       uint64
	srcLabel string
	injected sim.Time
	crcValid bool
}

// SpecTouch journals this packet into eng's current speculative span on
// first touch. Call before mutating a packet that may predate the span (the
// switch's route advance, the MCP's injection stamp on a parked packet).
func (p *Packet) SpecTouch(eng *sim.Engine) { eng.SpecTouch(&p.specMark, p) }

// SpecSave / SpecRestore implement sim.SpecSaver.
func (p *Packet) SpecSave() {
	p.shadow = pktShadow{
		route:    p.Route,
		payload:  p.Payload,
		crc:      p.CRC,
		id:       p.ID,
		srcLabel: p.SrcLabel,
		injected: p.Injected,
		crcValid: p.crcValid,
	}
}

// SpecRestore rewinds the header fields. Pool liveness is deliberately not
// restored here: checkouts and releases are journaled by GetPacketSpec and
// ReleaseSpec (pool.go) so ownership rewinds through the span journal, never
// through a component checkpoint.
func (p *Packet) SpecRestore() {
	p.Route = p.shadow.route
	p.Payload = p.shadow.payload
	p.CRC = p.shadow.crc
	p.ID = p.shadow.id
	p.SrcLabel = p.shadow.srcLabel
	p.Injected = p.shadow.injected
	p.crcValid = p.shadow.crcValid
}

// SpecCorruptPayload is CorruptPayload with span journaling: the bit flip is
// undone by a self-inverse XOR record and the CRC/crcValid damage by the
// first-touch header shadow. Replayed newest-first, the XOR runs before the
// header restore, so both orders of capture rewind correctly.
func (p *Packet) SpecCorruptPayload(eng *sim.Engine, bit int, reseal bool) {
	if len(p.Payload) == 0 {
		return
	}
	p.SpecTouch(eng)
	eng.SpecUndo(pktUndoXOR, p, nil, uint64(bit), 0)
	p.CorruptPayload(bit, reseal)
}

func pktUndoXOR(a, b any, v1, v2 uint64) {
	p := a.(*Packet)
	if len(p.Payload) == 0 {
		return
	}
	idx := (int(v1) / 8) % len(p.Payload)
	p.Payload[idx] ^= 1 << (v1 % 8)
}

// HeaderBytes is the fixed per-packet framing overhead on the wire beyond
// route bytes and payload (type field + CRC trailer), in bytes.
const HeaderBytes = 8

// WireSize is the number of bytes the packet occupies on a link.
func (p *Packet) WireSize() int { return len(p.Route) + len(p.Payload) + HeaderBytes }

// SealCRC computes and stores the payload CRC.
func (p *Packet) SealCRC() {
	p.CRC = crc32.ChecksumIEEE(p.Payload)
	p.crcValid = true
}

// CRCOk reports whether the stored CRC matches the payload. Sealed,
// undamaged packets answer from the cached seal verdict; only literal or
// damaged packets pay for a checksum here.
func (p *Packet) CRCOk() bool {
	return p.crcValid || p.CRC == crc32.ChecksumIEEE(p.Payload)
}

// InvalidateCRC discards the cached seal verdict, forcing the next CRCOk to
// rehash the payload. Call it after mutating Payload outside the packet's
// own mutators.
func (p *Packet) InvalidateCRC() { p.crcValid = false }

// CorruptPayload flips a bit of the payload (for fault experiments). The CRC
// is left stale so receivers detect the damage, unless reseal is true, which
// models corruption that happened before the CRC was computed — the damage
// then slips past the link-level check, exactly the "Messages Corrupted"
// failure mode of Table 1.
func (p *Packet) CorruptPayload(bit int, reseal bool) {
	if len(p.Payload) == 0 {
		return
	}
	idx := (bit / 8) % len(p.Payload)
	p.Payload[idx] ^= 1 << (bit % 8)
	p.crcValid = false
	if reseal {
		p.SealCRC()
	}
}

// Clone deep-copies the packet (route and payload) through the arena; the
// copy must be released like any checked-out packet.
func (p *Packet) Clone() *Packet {
	cp := GetPacket()
	cp.CopyRoute(p.Route)
	copy(cp.Buf(len(p.Payload)), p.Payload)
	cp.CRC = p.CRC
	cp.crcValid = p.crcValid
	cp.ID = p.ID
	cp.SrcLabel = p.SrcLabel
	cp.Injected = p.Injected
	return cp
}

// String summarizes the packet for traces.
func (p *Packet) String() string {
	return fmt.Sprintf("pkt#%d[route=%v payload=%dB]", p.ID, p.Route, len(p.Payload))
}
