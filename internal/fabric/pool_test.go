package fabric

import (
	"sync"
	"testing"
)

// TestPoolCounters checks the leak accounting: every checkout is matched by
// exactly one release and Live returns to its starting value.
func TestPoolCounters(t *testing.T) {
	before := PoolStats()
	pkts := make([]*Packet, 64)
	for i := range pkts {
		pkts[i] = GetPacket()
	}
	mid := PoolStats()
	if got := mid.Live - before.Live; got != 64 {
		t.Fatalf("live after 64 checkouts: got %d, want 64", got)
	}
	if got := mid.Checkouts - before.Checkouts; got != 64 {
		t.Fatalf("checkouts: got %d, want 64", got)
	}
	for _, p := range pkts {
		p.Release()
	}
	after := PoolStats()
	if after.Live != before.Live {
		t.Fatalf("live after release: got %d, want %d", after.Live, before.Live)
	}
	if got := after.Releases - mid.Releases; got != 64 {
		t.Fatalf("releases: got %d, want 64", got)
	}
}

// TestReleaseLiteralNoop checks that drop points can release packets built
// as plain literals without effect.
func TestReleaseLiteralNoop(t *testing.T) {
	before := PoolStats()
	p := &Packet{Payload: []byte{1, 2, 3}}
	p.Release()
	p.Release() // must not panic either
	if after := PoolStats(); after.Releases != before.Releases {
		t.Fatalf("literal release bumped pool counters: %+v -> %+v", before, after)
	}
	if len(p.Payload) != 3 {
		t.Fatalf("literal release wiped payload")
	}
}

// TestDoubleReleasePanics checks the two-owners guard.
func TestDoubleReleasePanics(t *testing.T) {
	p := GetPacket()
	p.Release()
	defer func() {
		if recover() == nil {
			t.Fatalf("double release of a pooled packet did not panic")
		}
	}()
	p.Release()
}

// TestReleaseClearsState checks a released-then-reacquired packet carries
// nothing over (a stale CRC verdict would let corrupt payloads through).
func TestReleaseClearsState(t *testing.T) {
	p := GetPacket()
	p.CopyRoute([]byte{1, 2, 3})
	copy(p.Buf(8), []byte("deadbeef"))
	p.SealCRC()
	p.ID = 42
	p.SrcLabel = "x"
	p.specMark = 7 // pretend a speculative span touched it
	p.Release()

	q := GetPacket() // likely the same object back from the pool
	defer q.Release()
	if q.Route != nil || q.Payload != nil || q.CRC != 0 || q.ID != 0 || q.SrcLabel != "" {
		t.Fatalf("reacquired packet carries state: %+v", q)
	}
	if q.crcValid {
		t.Fatalf("reacquired packet has a cached CRC verdict")
	}
	// The touch epoch must die with the release: span ids are per-engine
	// counters, so a stale mark from one engine can collide with a live span
	// id in another and falsely dedupe the SpecTouch that saves the header
	// shadow a rollback needs (this made back-to-back speculative runs in
	// one process diverge from a fresh-process run of the same config).
	if q.specMark != 0 {
		t.Fatalf("reacquired packet carries a touch epoch: %d", q.specMark)
	}
}

// TestBufGrowsAndInvalidates checks Buf beyond the born capacity and that
// resizing clears the CRC cache.
func TestBufGrowsAndInvalidates(t *testing.T) {
	p := GetPacket()
	defer p.Release()
	copy(p.Buf(4), []byte("abcd"))
	p.SealCRC()
	if !p.CRCOk() {
		t.Fatalf("sealed packet fails CRCOk")
	}
	big := pooledPayloadCap * 2
	buf := p.Buf(big)
	if len(buf) != big {
		t.Fatalf("Buf(%d) returned len %d", big, len(buf))
	}
	if p.crcValid {
		t.Fatalf("Buf did not invalidate the CRC cache")
	}
}

// TestCRCCacheSemantics checks the seal-once/verify-once state machine.
func TestCRCCacheSemantics(t *testing.T) {
	p := GetPacket()
	defer p.Release()
	copy(p.Buf(16), []byte("0123456789abcdef"))
	p.SealCRC()
	if !p.CRCOk() {
		t.Fatalf("sealed: CRCOk false")
	}
	// Mutating Payload outside the packet's own mutators leaves the cached
	// verdict in place until InvalidateCRC.
	p.Payload[0] ^= 0xff
	if !p.CRCOk() {
		t.Fatalf("cached verdict should still answer true before InvalidateCRC")
	}
	p.InvalidateCRC()
	if p.CRCOk() {
		t.Fatalf("damaged payload passes CRCOk after InvalidateCRC")
	}
	// CorruptPayload clears the cache itself.
	p.Payload[0] ^= 0xff
	p.SealCRC()
	p.CorruptPayload(3, false)
	if p.CRCOk() {
		t.Fatalf("CorruptPayload(reseal=false) still passes CRCOk")
	}
	// ...and reseal models pre-checksum corruption that slips through.
	p.CorruptPayload(9, true)
	if !p.CRCOk() {
		t.Fatalf("CorruptPayload(reseal=true) should pass CRCOk")
	}
}

// TestCloneThroughPool checks Clone deep-copies and is independently owned.
func TestCloneThroughPool(t *testing.T) {
	orig := &Packet{Route: []byte{7, 7}, Payload: []byte("payload")}
	orig.SealCRC()
	cp := orig.Clone()
	if !cp.pooled || !cp.live {
		t.Fatalf("clone is not a live pooled packet")
	}
	if string(cp.Payload) != "payload" || len(cp.Route) != 2 || cp.Route[0] != 7 {
		t.Fatalf("clone content mismatch: %+v", cp)
	}
	if !cp.CRCOk() {
		t.Fatalf("clone lost the CRC verdict")
	}
	// Deep copy: mutating the clone must not touch the original.
	cp.Payload[0] = 'X'
	cp.Route[0] = 9
	if orig.Payload[0] != 'p' || orig.Route[0] != 7 {
		t.Fatalf("clone aliases the original's buffers")
	}
	cp.Release()
	if !orig.CRCOk() {
		t.Fatalf("original damaged by clone release")
	}
}

// TestCopyRouteInline checks short routes land in the inline buffer and long
// ones are still copied correctly.
func TestCopyRouteInline(t *testing.T) {
	p := GetPacket()
	defer p.Release()
	src := []byte{1, 2, 3}
	p.CopyRoute(src)
	src[0] = 99 // must not alias
	if p.Route[0] != 1 || len(p.Route) != 3 {
		t.Fatalf("CopyRoute aliases or mis-copies: %v", p.Route)
	}
	long := make([]byte, 32)
	for i := range long {
		long[i] = byte(i)
	}
	p.CopyRoute(long)
	if len(p.Route) != 32 || p.Route[31] != 31 {
		t.Fatalf("long route mis-copied: %v", p.Route)
	}
}

// TestPoolConcurrentStress exercises checkout/release from many goroutines;
// under `go test -race` this checks the arena's synchronization.
func TestPoolConcurrentStress(t *testing.T) {
	before := PoolStats()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				p := GetPacket()
				copy(p.Buf(64), []byte("stress"))
				p.SealCRC()
				if !p.CRCOk() {
					t.Errorf("goroutine %d: CRCOk false after seal", g)
				}
				p.Release()
			}
		}(g)
	}
	wg.Wait()
	after := PoolStats()
	if after.Live != before.Live {
		t.Fatalf("stress leaked packets: live %d -> %d", before.Live, after.Live)
	}
}
