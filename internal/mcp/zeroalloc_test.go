//go:build !race

// Zero-allocation guards for the MCP data-path primitives: building a sealed
// DATA packet for injection, and verifying/decoding/landing one at delivery.
// These are the per-fragment operations the zero-copy refactor made
// allocation-free; the guards pin that down so regressions fail loudly.
// Excluded under the race detector, whose instrumentation allocates.

package mcp

import (
	"testing"

	"repro/internal/fabric"
	"repro/internal/gmproto"
)

// TestZeroAllocSendPath asserts the transmit-side packet build — pool
// checkout, interned route assignment, header+payload encode into the pooled
// buffer, CRC seal — allocates nothing per fragment.
func TestZeroAllocSendPath(t *testing.T) {
	route := []byte{0, 1} // stands in for the epoch-interned route table entry
	frag := make([]byte, gmproto.MaxPacketPayload)
	h := gmproto.DataHeader{
		Src: 1, Dst: 2, SrcPort: 2, DstPort: 2,
		Seq: 7, MsgID: 3, MsgLen: uint32(len(frag)),
	}
	warm := fabric.GetPacket()
	warm.Buf(gmproto.DataHeaderSize + len(frag))
	warm.Release()

	allocs := testing.AllocsPerRun(200, func() {
		pkt := fabric.GetPacket()
		pkt.Route = route
		h.EncodeTo(pkt.Buf(gmproto.DataHeaderSize+len(frag)), frag)
		pkt.SealCRC()
		pkt.Release()
	})
	if allocs != 0 {
		t.Fatalf("send-path packet build allocates %.1f/frag, want 0", allocs)
	}
}

// TestZeroAllocRecvPath asserts the delivery-side fragment service — CRC
// verification (cached seal verdict), type peek, header decode, copy into
// the host receive-token buffer, release — allocates nothing per fragment.
func TestZeroAllocRecvPath(t *testing.T) {
	frag := make([]byte, gmproto.MaxPacketPayload)
	h := gmproto.DataHeader{
		Src: 1, Dst: 2, SrcPort: 2, DstPort: 2,
		Seq: 7, MsgID: 3, MsgLen: uint32(len(frag)),
	}
	tokenBuf := make([]byte, len(frag)) // the posted host receive buffer

	allocs := testing.AllocsPerRun(200, func() {
		pkt := fabric.GetPacket()
		h.EncodeTo(pkt.Buf(gmproto.DataHeaderSize+len(frag)), frag)
		pkt.SealCRC()
		// ...wire transit...
		if !pkt.CRCOk() {
			t.Fatal("CRC failed")
		}
		pt, err := gmproto.PeekType(pkt.Payload)
		if err != nil || pt != gmproto.PTData {
			t.Fatal("peek failed")
		}
		hdr, body, err := gmproto.DecodeData(pkt.Payload)
		if err != nil {
			t.Fatal("decode failed")
		}
		copy(tokenBuf[hdr.Offset:], body) // the model's DMA into host memory
		pkt.Release()
	})
	if allocs != 0 {
		t.Fatalf("recv-path fragment service allocates %.1f/frag, want 0", allocs)
	}
}

// TestZeroAllocControlPath asserts the ACK/NACK build and decode round trip
// allocates nothing.
func TestZeroAllocControlPath(t *testing.T) {
	route := []byte{1}
	h := gmproto.AckHeader{Src: 2, Dst: 1, SrcPort: 2, Prio: gmproto.Priority(0), AckSeq: 12}
	warm := fabric.GetPacket()
	warm.Buf(gmproto.AckHeaderSize)
	warm.Release()

	allocs := testing.AllocsPerRun(200, func() {
		pkt := fabric.GetPacket()
		pkt.Route = route
		h.EncodeTo(pkt.Buf(gmproto.AckHeaderSize))
		pkt.SealCRC()
		if !pkt.CRCOk() {
			t.Fatal("CRC failed")
		}
		if _, err := gmproto.DecodeAck(pkt.Payload); err != nil {
			t.Fatal("decode failed")
		}
		pkt.Release()
	})
	if allocs != 0 {
		t.Fatalf("control-path round trip allocates %.1f/pkt, want 0", allocs)
	}
}
