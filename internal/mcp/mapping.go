package mcp

import (
	"repro/internal/fabric"
	"repro/internal/gmproto"
)

// MapSink receives mapper replies arriving at the node running the mapper
// process.
type MapSink func(payload []byte)

// SetUID burns in the interface's unique hardware identity (analogous to a
// Myrinet interface's globally unique address), which the mapper uses to
// recognize interfaces before NodeIDs exist.
func (m *MCP) SetUID(uid uint64) { m.uid = uid }

// UID returns the burned-in identity.
func (m *MCP) UID() uint64 { return m.uid }

// SetMapSink installs the local mapper process's reply hook.
func (m *MCP) SetMapSink(fn MapSink) { m.mapSink = fn }

// GossipSink receives gossip control-plane datagrams (PTGossip payloads)
// arriving at this interface; the cluster wires it to the node's
// membership agent. Unlike the map sink — which only the mapping node
// installs, for the duration of one run — the gossip sink is permanent and
// present on every node.
type GossipSink func(payload []byte)

// SetGossipSink installs the node's gossip-plane datagram hook.
func (m *MCP) SetGossipSink(fn GossipSink) { m.gossipSink = fn }

// RawTransmit injects an arbitrary payload onto the wire along an explicit
// route; the mapper uses it to launch scouts and distribute configuration.
// The packet is built (and route/payload copied) at call time; a ring holds
// it until its AckProc slot, so a mapping flood queues no closure per probe.
func (m *MCP) RawTransmit(route []byte, payload []byte) {
	if !m.chip.Running() {
		// Exec would drop the callback; don't queue an orphan packet.
		return
	}
	m.specTouch()
	pkt := fabric.GetPacketSpec(m.eng)
	// Unlike the route table, the mapper reuses and mutates its route
	// buffers, so this path copies instead of interning.
	pkt.CopyRoute(route)
	pkt.SrcLabel = m.chip.Name()
	copy(pkt.Buf(len(payload)), payload)
	pkt.SealCRC()
	if m.rawHead > 0 && m.rawHead == len(m.rawQ) {
		m.rawQ = m.rawQ[:0]
		m.rawHead = 0
	}
	m.rawQ = append(m.rawQ, pkt)
	m.chip.Exec(m.cfg.AckProc, m.rawFn)
}

// rawDispatch injects the oldest queued mapper packet.
func (m *MCP) rawDispatch() {
	m.specTouch()
	pkt := m.rawQ[m.rawHead]
	m.rawQ[m.rawHead] = nil
	m.rawHead++
	pkt.SpecTouch(m.eng)
	pkt.Injected = m.eng.Now()
	m.chip.TransmitPacket(pkt)
}

// handleMapPacket implements the interface side of the mapping protocol:
// scouts are answered with the interface identity over the reverse route,
// replies are handed to the local mapper process, and config installs the
// NodeID and route table.
func (m *MCP) handleMapPacket(t gmproto.PacketType, payload []byte) {
	switch t {
	case gmproto.PTMapScout:
		s, err := gmproto.DecodeScout(payload)
		if err != nil {
			m.stats.BadHeaderDrops++
			return
		}
		reply := gmproto.ReplyPayload{UID: m.uid, Fwd: s.Fwd}
		m.RawTransmit(gmproto.ReverseRoute(s.Fwd), reply.Encode())
	case gmproto.PTMapReply:
		if m.mapSink != nil {
			m.mapSink(payload)
		}
	case gmproto.PTMapConfig:
		c, err := gmproto.DecodeConfig(payload)
		if err != nil {
			m.stats.BadHeaderDrops++
			return
		}
		m.nodeID = c.ID
		m.UploadRoutes(c.Routes)
	case gmproto.PTGossip:
		// The sink decodes (and copies what it keeps) before returning; the
		// packet goes back to the arena right after, like a map reply.
		if m.gossipSink != nil {
			m.gossipSink(payload)
		}
	}
}
