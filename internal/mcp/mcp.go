package mcp

import (
	"fmt"

	"repro/internal/fabric"
	"repro/internal/gmproto"
	"repro/internal/lanai"
	"repro/internal/sim"
)

// EventSink receives events the MCP posts into a port's receive queue,
// after the event record has been DMAed to host memory. The gm library
// installs one per open port.
type EventSink func(ev gmproto.Event)

// MCP is one control-program instance, bound to a chip.
type MCP struct {
	eng  *sim.Engine
	chip *lanai.Chip
	cfg  Config
	mode Mode

	nodeID gmproto.NodeID
	uid    uint64
	routes map[gmproto.NodeID][]byte

	mapSink    MapSink
	gossipSink GossipSink

	// onNetFault is the host-side sink for NET_FAULT_SUSPECTED reports
	// (the driver wires it to the network watchdog).
	onNetFault func(gmproto.NodeID)

	// deadPeers marks destinations the watchdog declared unreachable: sends
	// toward them complete immediately with SendErrorUnreachable instead of
	// entering a retransmit loop. Cleared per peer by ResetPeerStreams.
	deadPeers map[gmproto.NodeID]bool

	// gen invalidates engine-level timers (retransmission) across reloads.
	gen uint64

	ports [gmproto.MaxPorts]*portState

	tx map[gmproto.StreamID]*txStream
	rx map[gmproto.StreamID]*rxStream

	nextMsgID uint32

	// host request queue serviced by L_timer(): alarms etc. (§4.2).
	alarms []alarmReq

	pageTableEntries int // cached page-hash-table registration (§4.3)

	stats Stats

	// inService holds packets popped from the receive ring whose handler
	// closures are queued on the processor. A card reset wipes the Exec
	// queue without running them, so LoadAndStart and Shutdown release
	// whatever is still here (pool ownership contract, DESIGN.md §11).
	inService []*fabric.Packet

	// recvScheduled coalesces packet-ring service into one queued handler.
	recvScheduled bool
	// sendScheduled coalesces doorbell service.
	sendScheduled bool
	// Cached dispatch closures: doorbell and ring service fire on every
	// message, so scheduling them must not allocate.
	sendSvcFn func()
	recvSvcFn func()
	ringFn    func() // bound serviceRecvRing, for drop-path continuations
	lTimerFn  func() // bound lTimer

	// Pending-work rings, each consumed by one cached callback in FIFO
	// order (the chip's Exec and HostDMA queues preserve issue order, so a
	// plain ring replaces a captured closure per item). A card reset drops
	// the queued callbacks without running them; Shutdown clears the rings
	// to match (it runs exactly when those callbacks can no longer fire).
	svcQ        []svcItem // decoded packets awaiting their handler slot
	svcHead     int
	svcFn       func()
	commitQ     []dmaCommit // per-fragment receive-DMA completions
	commitHead  int
	commitFn    func()
	ctrlQ       []ctrlItem // ACK/NACK builds awaiting their AckProc slot
	ctrlHead    int
	ctrlFn      func()
	evQ         []evItem // event records awaiting their DMA completion
	evHead      int
	evFn        func()
	rawQ        []*fabric.Packet // sealed mapper packets awaiting injection
	rawHead     int
	rawFn       func()
	deliverQ    []deliverItem // committed messages awaiting their delivery slot
	deliverHead int
	deliverFn   func()
	edmaQ       []deliverItem // FTGM deliveries awaiting the event-record DMA
	edmaHead    int
	edmaFn      func()

	// msgPool / pmPool recycle the per-message send-window and reassembly
	// records, the last two per-message heap objects on the data path.
	msgPool []*txMsg
	pmPool  []*partialMsg

	// touched is serviceSendQueues's per-round scratch (reused across
	// rounds; rebuilt maps/slices per doorbell were a measurable share of
	// steady-state garbage).
	touched []*txStream

	// adoptNackSeq reproduces the Figure 4 vulnerability: after a naive
	// MCP reload the sender has lost its sequence state, and on a NACK it
	// adopts the receiver's expected sequence number for its pending
	// message — which makes the receiver accept a duplicate.
	adoptNackSeq bool

	// corruptNextSend, when nonzero, flips a payload bit of the next DATA
	// fragment before the CRC is computed (fault injection: "Messages
	// Corrupted").
	corruptNextSend int

	// loaded marks that a control program is present (LoadAndStart ran
	// after the last reset).
	loaded bool

	// Speculation journaling (sim spec.go, DESIGN.md §16).
	specMark uint64
	shadow   mcpShadow
}

type alarmReq struct {
	port gmproto.PortID
	at   sim.Time
}

// svcItem is one ring packet decoded by serviceRecvRing, waiting for its
// processor slot.
type svcItem struct {
	kind uint8 // svcData, svcAck, svcNack, svcMap
	pt   gmproto.PacketType
	dh   gmproto.DataHeader
	ah   gmproto.AckHeader
	frag []byte
	pkt  *fabric.Packet
}

const (
	svcData = uint8(iota)
	svcAck
	svcNack
	svcMap
)

// dmaCommit is one receive fragment's DMA-completion record.
type dmaCommit struct {
	ps *portState
	rs *rxStream
	id gmproto.StreamID
	p  *partialMsg
	n  uint32
}

// ctrlItem is one ACK/NACK waiting for its AckProc slot.
type ctrlItem struct {
	h     gmproto.AckHeader
	route []byte
}

// evItem is one event record in flight to the host queue.
type evItem struct {
	sink EventSink
	ev   gmproto.Event
}

// deliverItem is one fully committed message waiting for its delivery
// processor slot — and, under FTGM, then for the event-record DMA that
// gates the delayed ACK (§4.1).
type deliverItem struct {
	ps       *portState
	rs       *rxStream
	ev       gmproto.Event
	src      gmproto.NodeID
	port     gmproto.PortID // stream port carried in the released ACK
	prio     gmproto.Priority
	seq      uint32
	directed bool
}

type portState struct {
	open       bool
	sendQ      []gmproto.SendToken
	recvTokens []gmproto.RecvToken
	sink       EventSink
	// regions maps registered-memory ids to their pinned host buffers
	// (directed-send targets). The byte slices ARE host memory: deposits
	// into them survive a card reset, and the process re-registers the
	// same slices during recovery.
	regions map[uint32][]byte

	// frozen parks committed deliveries in frozenQ instead of running them
	// (bounded-drain periodic checkpointing). Parking happens BEFORE the
	// §4.1 commit point — no host table advances and no delayed ACK leaves
	// for a parked item — so everything parked is still covered by the
	// sender's Go-Back-N window and a checkpoint cut taken during the
	// freeze is consistent. ThawPort replays the queue in arrival order.
	frozen  bool
	frozenQ []deliverItem

	// Speculation journaling (sim spec.go, DESIGN.md §16).
	specMark uint64
	shadow   portShadow
}

// New creates a control program for chip. It is inert until LoadAndStart.
func New(chip *lanai.Chip, cfg Config, mode Mode) *MCP {
	m := &MCP{
		eng:       chip.Engine(),
		chip:      chip,
		cfg:       cfg,
		mode:      mode,
		routes:    make(map[gmproto.NodeID][]byte),
		tx:        make(map[gmproto.StreamID]*txStream),
		rx:        make(map[gmproto.StreamID]*rxStream),
		deadPeers: make(map[gmproto.NodeID]bool),
	}
	m.sendSvcFn = func() {
		m.sendScheduled = false
		m.serviceSendQueues()
	}
	m.recvSvcFn = func() {
		m.recvScheduled = false
		m.serviceRecvRing()
	}
	m.ringFn = m.serviceRecvRing
	m.lTimerFn = m.lTimer
	m.svcFn = m.svcDispatch
	m.commitFn = m.commitDispatch
	m.ctrlFn = m.ctrlDispatch
	m.evFn = m.evDispatch
	m.rawFn = m.rawDispatch
	m.deliverFn = m.deliverDispatch
	m.edmaFn = m.edmaDispatch
	chip.SetISRHandler(m.onISR)
	return m
}

// svcDispatch runs the handler for the oldest decoded ring packet, then
// continues draining the ring.
func (m *MCP) svcDispatch() {
	m.specTouch()
	it := m.svcQ[m.svcHead]
	m.svcQ[m.svcHead] = svcItem{}
	m.svcHead++
	switch it.kind {
	case svcData:
		// handleData copies the fragment into the host buffer before
		// returning, so the wire packet can go back to the arena here.
		m.handleData(it.dh, it.frag)
		m.finishService(it.pkt)
	case svcAck:
		m.handleAck(it.ah)
	case svcNack:
		m.handleNack(it.ah)
	case svcMap:
		// Map decoders copy the route/config bytes they keep.
		m.handleMapPacket(it.pt, it.pkt.Payload)
		m.finishService(it.pkt)
	}
	m.serviceRecvRing()
}

// commitDispatch credits the oldest pending fragment DMA and tries to
// commit its message.
func (m *MCP) commitDispatch() {
	m.specTouch()
	it := m.commitQ[m.commitHead]
	m.commitQ[m.commitHead] = dmaCommit{}
	m.commitHead++
	m.touchPartial(it.p)
	it.p.dmaDone += it.n
	m.maybeCommit(it.ps, it.rs, it.id, it.p)
}

// ctrlDispatch builds and injects the oldest queued ACK/NACK.
func (m *MCP) ctrlDispatch() {
	m.specTouch()
	it := m.ctrlQ[m.ctrlHead]
	m.ctrlQ[m.ctrlHead] = ctrlItem{}
	m.ctrlHead++
	pkt := fabric.GetPacketSpec(m.eng)
	pkt.Route = it.route // interned: see injectFrag
	pkt.SrcLabel = m.chip.Name()
	pkt.Injected = m.eng.Now()
	it.h.EncodeTo(pkt.Buf(gmproto.AckHeaderSize))
	pkt.SealCRC()
	if it.h.Nack {
		m.stats.NacksSent++
	} else {
		m.stats.AcksSent++
	}
	m.chip.TransmitPacket(pkt)
}

// evDispatch hands the oldest DMAed event record to its host sink.
func (m *MCP) evDispatch() {
	m.specTouch()
	it := m.evQ[m.evHead]
	m.evQ[m.evHead] = evItem{}
	m.evHead++
	it.sink(it.ev)
}

// deliverDispatch finishes the oldest committed message once its delivery
// processor slot fires: directed deposits commit silently, stock GM posts
// the receive event, FTGM first DMAs the event record to the host queue.
func (m *MCP) deliverDispatch() {
	m.specTouch()
	it := m.deliverQ[m.deliverHead]
	m.deliverQ[m.deliverHead] = deliverItem{}
	m.deliverHead++
	if it.ps.frozen {
		// Bounded-drain freeze: park ahead of the commit point. The item
		// is unacknowledged, so the sender's window still owns it.
		m.touchPort(it.ps)
		it.ps.frozenQ = append(it.ps.frozenQ, it)
		return
	}
	m.deliverBody(it)
}

// deliverBody is the committed-delivery tail shared by the live dispatch
// path and ThawPort's replay of parked items.
func (m *MCP) deliverBody(it deliverItem) {
	m.touchRx(it.rs)
	if it.directed {
		// Deposit complete: the receiver process is not notified (GM's
		// directed-send semantics). Stock GM commits the sequence number
		// and is done (the ACK already left at arrival). FTGM falls through
		// to the event-DMA stage below with the internal commit record: the
		// host ACK table must learn the deposit's sequence number — it is
		// part of the checkpointable recovery anchor, and a restored MCP
		// seeded without it would NACK the stream forever — and the §4.1
		// delayed ACK leaves only after that record lands in host memory.
		m.stats.DirectedDeposits++
		if m.mode != ModeFTGM {
			if it.seq > it.rs.committedSeq {
				it.rs.committedSeq = it.seq
			}
			return
		}
	} else {
		m.stats.MsgsDelivered++
	}
	if m.mode == ModeFTGM {
		if m.edmaHead > 0 && m.edmaHead == len(m.edmaQ) {
			m.edmaQ = m.edmaQ[:0]
			m.edmaHead = 0
		}
		m.edmaQ = append(m.edmaQ, it)
		m.chip.HostDMA(m.cfg.EventBytes, m.edmaFn)
		return
	}
	if it.seq > it.rs.committedSeq {
		it.rs.committedSeq = it.seq
	}
	m.postEvent(it.ps.sink, it.ev)
}

// edmaDispatch runs when the oldest delivery's event record lands in host
// memory. Delayed commit point: the ACK leaves only after the message and
// its event are in host memory (§4.1).
func (m *MCP) edmaDispatch() {
	m.specTouch()
	it := m.edmaQ[m.edmaHead]
	m.edmaQ[m.edmaHead] = deliverItem{}
	m.edmaHead++
	m.touchRx(it.rs)
	if it.ps.sink != nil {
		it.ps.sink(it.ev)
	}
	if it.seq > it.rs.committedSeq {
		it.rs.committedSeq = it.seq
	}
	if !m.cfg.ImmediateAck {
		m.sendControl(gmproto.AckHeader{
			Src: m.nodeID, Dst: it.src, SrcPort: it.port, Prio: it.prio,
			AckSeq: it.rs.committedSeq,
		})
	}
}

// getTxMsg / freeTxMsg recycle send-window records. A record still owned by
// an in-progress fragment chain is left to the garbage collector.
func (m *MCP) getTxMsg() *txMsg {
	if n := len(m.msgPool); n > 0 {
		msg := m.msgPool[n-1]
		m.msgPool[n-1] = nil
		m.msgPool = m.msgPool[:n-1]
		// Touch before the caller writes fields: the first-touch image must
		// be the zeroed pool state a rollback returns the record to.
		m.touchMsg(msg)
		return msg
	}
	return &txMsg{}
}

func (m *MCP) freeTxMsg(s *txStream, msg *txMsg) {
	if msg.sending || msg == s.cur {
		return
	}
	// Field-wise zero: a whole-struct clear would wipe the record's spec
	// mark and shadow, which the open span may still need for rollback.
	m.touchMsg(msg)
	msg.tok, msg.seq, msg.msgID = gmproto.SendToken{}, 0, 0
	msg.inFlight, msg.sending, msg.needRtx, msg.failed = false, false, false, false
	m.msgPool = append(m.msgPool, msg)
}

// getPartial / freePartial recycle reassembly records.
func (m *MCP) getPartial() *partialMsg {
	if n := len(m.pmPool); n > 0 {
		p := m.pmPool[n-1]
		m.pmPool[n-1] = nil
		m.pmPool = m.pmPool[:n-1]
		m.touchPartial(p)
		return p
	}
	return &partialMsg{}
}

func (m *MCP) freePartial(p *partialMsg) {
	// Field-wise zero for the same reason as freeTxMsg.
	m.touchPartial(p)
	p.hdr, p.buf, p.arrived, p.dmaDone = gmproto.DataHeader{}, nil, 0, 0
	p.tok, p.committed, p.directed = gmproto.RecvToken{}, false, false
	m.pmPool = append(m.pmPool, p)
}

// Chip returns the chip the program runs on.
func (m *MCP) Chip() *lanai.Chip { return m.chip }

// Mode returns the protocol variant.
func (m *MCP) Mode() Mode { return m.mode }

// Stats returns protocol counters.
func (m *MCP) Stats() Stats { return m.stats }

// NodeID returns the interface's mapper-assigned identity.
func (m *MCP) NodeID() gmproto.NodeID { return m.nodeID }

// SetNodeID assigns the interface identity (mapper/driver).
func (m *MCP) SetNodeID(id gmproto.NodeID) {
	m.specTouch()
	m.nodeID = id
}

// LoadAndStart models the driver finishing an MCP load: the processor
// starts, timers are armed, and the protocol state is empty. The time cost
// of loading lives in the driver/FTD, which calls this at the right moment.
func (m *MCP) LoadAndStart() {
	m.specTouch()
	m.gen++
	// A load follows either power-on (nothing in service) or a card reset
	// (the reset's epoch bump dropped the queued handler closures), so the
	// previous program's in-service packets can only be released here.
	m.Shutdown()
	m.tx = make(map[gmproto.StreamID]*txStream)
	m.rx = make(map[gmproto.StreamID]*rxStream)
	for i := range m.ports {
		m.ports[i] = nil
	}
	m.alarms = nil
	m.recvScheduled = false
	m.sendScheduled = false
	m.pageTableEntries = 0
	m.loaded = true
	m.chip.Start()
	m.armLTimer()
	if m.mode == ModeFTGM {
		// The IMR is modified so IT1 expiry raises a host interrupt; the
		// L_timer routine re-arms IT1 just in time during normal operation
		// (§4.2).
		m.chip.SetIMR(m.chip.IMR() | lanai.ISRTimer1)
		m.chip.SetTimer(1, m.cfg.WatchdogTicks)
	}
}

// Loaded reports whether a control program is running (or hung) since the
// last reset.
func (m *MCP) Loaded() bool { return m.loaded }

// Shutdown releases the pooled packets whose handler closures died with the
// Exec queue. Call only when those closures cannot run anymore — after a
// card reset (epoch bump) or at end of simulation.
func (m *MCP) Shutdown() {
	m.specTouch()
	for _, pkt := range m.inService {
		pkt.ReleaseSpec(m.eng)
	}
	m.inService = nil
	// The pending-work rings pair 1:1 with callbacks that died with the
	// Exec/DMA queues; clear them so the next program's callbacks realign.
	for i := range m.svcQ {
		m.svcQ[i] = svcItem{}
	}
	m.svcQ, m.svcHead = m.svcQ[:0], 0
	for i := range m.commitQ {
		m.commitQ[i] = dmaCommit{}
	}
	m.commitQ, m.commitHead = m.commitQ[:0], 0
	for i := range m.ctrlQ {
		m.ctrlQ[i] = ctrlItem{}
	}
	m.ctrlQ, m.ctrlHead = m.ctrlQ[:0], 0
	for i := range m.evQ {
		m.evQ[i] = evItem{}
	}
	m.evQ, m.evHead = m.evQ[:0], 0
	for i := m.rawHead; i < len(m.rawQ); i++ {
		m.rawQ[i].ReleaseSpec(m.eng)
	}
	for i := range m.rawQ {
		m.rawQ[i] = nil
	}
	m.rawQ, m.rawHead = m.rawQ[:0], 0
	for i := range m.deliverQ {
		m.deliverQ[i] = deliverItem{}
	}
	m.deliverQ, m.deliverHead = m.deliverQ[:0], 0
	for i := range m.edmaQ {
		m.edmaQ[i] = deliverItem{}
	}
	m.edmaQ, m.edmaHead = m.edmaQ[:0], 0
}

// Routes returns the currently uploaded route table (driver keeps the
// authoritative copy; this accessor serves tests and the FTD).
func (m *MCP) Routes() map[gmproto.NodeID][]byte {
	out := make(map[gmproto.NodeID][]byte, len(m.routes))
	for k, v := range m.routes {
		out[k] = append([]byte(nil), v...)
	}
	return out
}

// UploadRoutes installs the source-route table (mapper or FTD restore).
func (m *MCP) UploadRoutes(routes map[gmproto.NodeID][]byte) {
	m.specTouch() // the core shadow holds the old map reference
	m.routes = make(map[gmproto.NodeID][]byte, len(routes))
	for k, v := range routes {
		m.routes[k] = append([]byte(nil), v...)
	}
}

// RegisterPageTable records the host's page-hash-table registration; the
// MCP caches entries from it on demand (§4.3). Only the registration count
// is modeled.
func (m *MCP) RegisterPageTable(entries int) {
	m.specTouch()
	m.pageTableEntries = entries
}

// PageTableEntries reports the registered page-table size.
func (m *MCP) PageTableEntries() int { return m.pageTableEntries }

// --- Host interface (called by the gm library / driver at host time) ---

// HostOpenPort opens a port and installs its event sink.
func (m *MCP) HostOpenPort(port gmproto.PortID, sink EventSink) error {
	if int(port) >= gmproto.MaxPorts {
		return fmt.Errorf("mcp: no port %d", port)
	}
	if m.ports[port] != nil && m.ports[port].open {
		return fmt.Errorf("mcp: port %d already open", port)
	}
	m.specTouch() // the ports array lives in the core shadow
	m.ports[port] = &portState{open: true, sink: sink}
	return nil
}

// HostClosePort closes a port; pending tokens are dropped, as are any
// deliveries parked by a freeze (they were never acknowledged, so the
// sender still owns them).
func (m *MCP) HostClosePort(port gmproto.PortID) {
	if ps := m.port(port); ps != nil {
		m.touchPort(ps)
		ps.open = false
		ps.frozen = false
		for i := range ps.frozenQ {
			ps.frozenQ[i] = deliverItem{}
		}
		ps.frozenQ = ps.frozenQ[:0]
	}
}

// FreezePort stops committed-message delivery on a port: items reaching the
// delivery stage park in the port's freeze queue ahead of the §4.1 commit
// point (no host event, no ACK). Send-side traffic and control processing
// continue. Idempotent; a closed or unknown port is a no-op.
func (m *MCP) FreezePort(port gmproto.PortID) {
	ps := m.port(port)
	if ps == nil || !ps.open || ps.frozen {
		return
	}
	m.touchPort(ps)
	ps.frozen = true
}

// ThawPort resumes delivery, replaying parked items in arrival order
// through the same commit path the live dispatch uses (event DMA, ACK
// release). Replay happens at the thaw instant: the delivery processor
// slot for each item was already charged before it parked.
func (m *MCP) ThawPort(port gmproto.PortID) {
	ps := m.port(port)
	if ps == nil || !ps.frozen {
		return
	}
	m.touchPort(ps)
	ps.frozen = false
	for i := 0; i < len(ps.frozenQ); i++ {
		it := ps.frozenQ[i]
		ps.frozenQ[i] = deliverItem{}
		m.deliverBody(it)
	}
	ps.frozenQ = ps.frozenQ[:0]
}

// Frozen reports whether a port is holding deliveries.
func (m *MCP) Frozen(port gmproto.PortID) bool {
	ps := m.port(port)
	return ps != nil && ps.frozen
}

// PortOpen reports whether a port is open.
func (m *MCP) PortOpen(port gmproto.PortID) bool {
	ps := m.port(port)
	return ps != nil && ps.open
}

func (m *MCP) port(p gmproto.PortID) *portState {
	if int(p) >= gmproto.MaxPorts {
		return nil
	}
	return m.ports[p]
}

// HostPostSend enqueues a send token on a port and rings the doorbell.
func (m *MCP) HostPostSend(tok gmproto.SendToken) error {
	ps := m.port(tok.SrcPort)
	if ps == nil || !ps.open {
		return fmt.Errorf("mcp: send on closed port %d", tok.SrcPort)
	}
	m.touchPort(ps)
	ps.sendQ = append(ps.sendQ, tok)
	m.chip.RaiseISR(lanai.ISRDoorbell)
	return nil
}

// HostPostRecvToken provides a receive buffer on a port.
func (m *MCP) HostPostRecvToken(port gmproto.PortID, tok gmproto.RecvToken) error {
	ps := m.port(port)
	if ps == nil || !ps.open {
		return fmt.Errorf("mcp: recv token on closed port %d", port)
	}
	m.touchPort(ps)
	ps.recvTokens = append(ps.recvTokens, tok)
	return nil
}

// HostRegisterRegion registers a pinned host buffer as a directed-send
// target. The MCP writes deposits straight into buf (modeling DMA into
// user memory); re-registering an id replaces the mapping.
func (m *MCP) HostRegisterRegion(port gmproto.PortID, id uint32, buf []byte) error {
	ps := m.port(port)
	if ps == nil || !ps.open {
		return fmt.Errorf("mcp: register region on closed port %d", port)
	}
	m.touchPort(ps) // shadow holds the old regions-map reference (or nil)
	if ps.regions == nil {
		ps.regions = make(map[uint32][]byte)
	}
	old, had := ps.regions[id]
	var hadV uint64
	if had {
		hadV = 1
	}
	m.eng.SpecUndo(regionUndoSet, ps.regions, old, uint64(id), hadV)
	ps.regions[id] = buf
	return nil
}

// HostSetAlarm asks the MCP to post an EvAlarm on the port at the given
// virtual time; serviced by L_timer like other host requests (§4.2).
func (m *MCP) HostSetAlarm(port gmproto.PortID, at sim.Time) {
	m.specTouch()
	m.alarms = append(m.alarms, alarmReq{port: port, at: at})
}

// --- Recovery entry points (FTD / gm library fault handler, §4.3-4.4) ---

// PostFaultDetected places a FAULT_DETECTED event in the receive queue of a
// port. The FTD calls this for every open port after reloading the MCP.
func (m *MCP) PostFaultDetected(port gmproto.PortID) {
	ps := m.port(port)
	if ps == nil || !ps.open || ps.sink == nil {
		return
	}
	sink := ps.sink
	m.postEvent(sink, gmproto.Event{Type: gmproto.EvFaultDetected, Port: port})
}

// ReopenPort re-establishes a port after recovery with its event sink; the
// LANai "initializes the per-port state and, as usual, starts sending and
// receiving messages for the port" (§4.4).
func (m *MCP) ReopenPort(port gmproto.PortID, sink EventSink) {
	m.specTouch()
	m.ports[port] = &portState{open: true, sink: sink}
}

// RestoreRxSeqs uploads the last in-order sequence number received on each
// stream, "one for each (connection, port) pair", so the reloaded MCP "ACKs
// the right messages and NACKs those that arrive out-of-order" (§4.4).
func (m *MCP) RestoreRxSeqs(seqs map[gmproto.StreamID]uint32) {
	for id, seq := range seqs {
		rs := m.rxStream(id)
		m.touchRx(rs)
		if seq > rs.arrivedSeq {
			rs.arrivedSeq = seq
		}
		if seq > rs.committedSeq {
			rs.committedSeq = seq
		}
	}
}

// --- Network-fault entry points (driver / network watchdog) ---

// SetNetFaultSink installs the host callback for NET_FAULT_SUSPECTED
// reports. The sink survives MCP reloads (it models the interrupt vector
// the driver owns, not LANai state).
func (m *MCP) SetNetFaultSink(fn func(target gmproto.NodeID)) { m.onNetFault = fn }

// --- Fault hooks (package fault drives these) ---

// SetAdoptNackSeq toggles the naive-restart vulnerability: a freshly
// reloaded MCP that lost its sequence state adopts the expected sequence
// number carried by a NACK, re-stamping its pending messages with it — the
// exact mechanism by which Figure 4's duplicate message gets accepted.
func (m *MCP) SetAdoptNackSeq(v bool) { m.adoptNackSeq = v }

// InjectHang stops the network processor (soft hang: timers and interrupt
// logic stay alive).
func (m *MCP) InjectHang() { m.chip.Hang() }

// InjectHardHang stops the processor and the timer/interrupt logic.
func (m *MCP) InjectHardHang() { m.chip.HardHang() }

// InjectSendCorruption makes the next transmitted DATA fragment carry a
// flipped payload bit. If preSeal, the flip happens before send_chunk
// computes the CRC — it passes the link-level check and reaches the
// application undetected (Table 1 "Messages Corrupted"). Otherwise the flip
// happens on the sealed packet and the receiver's CRC check drops it.
func (m *MCP) InjectSendCorruption(bit int, preSeal bool) {
	bit |= 1 // zero would disarm the injection
	if preSeal {
		m.corruptNextSend = bit
	} else {
		m.corruptNextSend = -bit
	}
}

// --- Dispatch ---

func (m *MCP) onISR(bit uint32) {
	m.specTouch()
	switch bit {
	case lanai.ISRDoorbell:
		m.chip.AckISR(lanai.ISRDoorbell)
		if !m.sendScheduled {
			m.sendScheduled = true
			m.chip.Exec(0, m.sendSvcFn)
		}
	case lanai.ISRRecvPacket:
		m.chip.AckISR(lanai.ISRRecvPacket)
		if !m.recvScheduled {
			m.recvScheduled = true
			m.chip.Exec(0, m.recvSvcFn)
		}
	case lanai.ISRTimer0:
		m.chip.AckISR(lanai.ISRTimer0)
		m.chip.Exec(m.cfg.LTimerProc, m.lTimerFn)
	}
}

// lTimer is the L_timer() routine (§4.2): it services host requests
// (alarms), clears the FTD's magic word, re-arms the watchdog (FTGM) and
// finally re-arms IT0.
func (m *MCP) lTimer() {
	m.specTouch()
	m.stats.LTimerRuns++
	now := m.eng.Now()
	rest := m.alarms[:0]
	for _, a := range m.alarms {
		if a.at <= now {
			if ps := m.port(a.port); ps != nil && ps.open && ps.sink != nil {
				m.postEvent(ps.sink, gmproto.Event{Type: gmproto.EvAlarm, Port: a.port})
			}
			continue
		}
		rest = append(rest, a)
	}
	m.alarms = rest

	// Liveness handshake: a running MCP clears the magic word (§4.3).
	if m.chip.ReadWord(lanai.MagicAddr) == lanai.MagicWord {
		m.chip.WriteWord(lanai.MagicAddr, 0)
	}

	if m.mode == ModeFTGM {
		m.chip.SetTimer(1, m.cfg.WatchdogTicks)
	}
	m.armLTimer()
}

func (m *MCP) armLTimer() { m.chip.SetTimer(0, m.cfg.LTimerTicks) }

// postEvent DMAs an event record into the port's host receive queue, then
// hands it to the host-side sink. The sink call is the commit point: once
// it runs, the host owns the information.
func (m *MCP) postEvent(sink EventSink, ev gmproto.Event) {
	if !m.chip.Running() {
		// HostDMA would drop the request; don't queue an orphan record.
		return
	}
	m.specTouch()
	if m.evHead > 0 && m.evHead == len(m.evQ) {
		m.evQ = m.evQ[:0]
		m.evHead = 0
	}
	m.evQ = append(m.evQ, evItem{sink: sink, ev: ev})
	m.chip.HostDMA(m.cfg.EventBytes, m.evFn)
}
