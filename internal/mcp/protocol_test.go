package mcp

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/gmproto"
	"repro/internal/sim"
)

// linkOf returns the link cabled into switch port i of the pair harness.
func (p *pair) linkOf(i int) interface{ SetUp(bool) } {
	return p.swch.PortLink(i)
}

func TestAckLossTriggersRtxAndDupSuppression(t *testing.T) {
	// Drop the ACK on the wire: the sender must retransmit on timeout, the
	// receiver must discard the duplicate and re-ACK, and the send must
	// complete exactly once.
	p := newPair(t, ModeGM)
	p.openPorts(1)
	if err := p.b.HostPostRecvToken(1, recvTok(64)); err != nil {
		t.Fatal(err)
	}
	// Cut B's cable the instant the ACK is emitted; restore it shortly
	// after so the retransmission flows.
	linkB := p.linkOf(1)
	var probe func()
	probe = func() {
		if p.b.Stats().AcksSent > 0 {
			linkB.SetUp(false)
			p.eng.After(1*sim.Millisecond, func() { linkB.SetUp(true) })
			return
		}
		p.eng.After(50*sim.Nanosecond, probe)
	}
	p.eng.After(50*sim.Nanosecond, probe)

	if err := p.a.HostPostSend(sendTok(2, 1, []byte("ack-me"))); err != nil {
		t.Fatal(err)
	}
	p.eng.RunUntil(100 * sim.Millisecond)

	recvd := p.events(p.evB, gmproto.EvReceived)
	if len(recvd) != 1 {
		t.Fatalf("delivered %d times, want exactly 1", len(recvd))
	}
	if p.a.Stats().Retransmits == 0 {
		t.Error("sender never retransmitted after the lost ACK")
	}
	if p.b.Stats().DupDropped == 0 {
		t.Error("receiver never saw (and suppressed) the duplicate")
	}
	sent := p.events(p.evA, gmproto.EvSent)
	if len(sent) != 1 {
		t.Fatalf("sender completed %d times, want 1", len(sent))
	}
}

func TestDataLossDuringLinkBlip(t *testing.T) {
	// The link drops while data is in flight; Go-Back-N redelivers after
	// it returns.
	p := newPair(t, ModeGM)
	p.openPorts(1)
	for i := 0; i < 4; i++ {
		if err := p.b.HostPostRecvToken(1, recvTok(64)); err != nil {
			t.Fatal(err)
		}
	}
	linkA := p.linkOf(0)
	linkA.SetUp(false)
	p.eng.After(2*sim.Millisecond, func() { linkA.SetUp(true) })
	for i := 0; i < 3; i++ {
		if err := p.a.HostPostSend(sendTok(2, 1, []byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	p.eng.RunUntil(200 * sim.Millisecond)
	recvd := p.events(p.evB, gmproto.EvReceived)
	if len(recvd) != 3 {
		t.Fatalf("delivered %d/3 after link blip", len(recvd))
	}
	for i, ev := range recvd {
		if ev.Data[0] != byte(i) {
			t.Fatalf("order broken at %d", i)
		}
	}
	if p.a.Stats().Retransmits == 0 {
		t.Error("no retransmissions despite a dead link")
	}
}

func TestFragmentLossMidMessage(t *testing.T) {
	// A multi-fragment message loses a middle fragment; the whole message
	// is retransmitted (message-granularity Go-Back-N) and reassembles.
	p := newPair(t, ModeGM)
	p.openPorts(1)
	size := 3 * gmproto.MaxPacketPayload
	if err := p.b.HostPostRecvToken(1, recvTok(uint32(size))); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i)
	}
	// Blip the link after the first fragment is through.
	linkA := p.linkOf(0)
	p.eng.After(30*sim.Microsecond, func() {
		linkA.SetUp(false)
		p.eng.After(100*sim.Microsecond, func() { linkA.SetUp(true) })
	})
	if err := p.a.HostPostSend(sendTok(2, 1, data)); err != nil {
		t.Fatal(err)
	}
	p.eng.RunUntil(200 * sim.Millisecond)
	recvd := p.events(p.evB, gmproto.EvReceived)
	if len(recvd) != 1 {
		t.Fatalf("delivered %d, want 1", len(recvd))
	}
	if !bytes.Equal(recvd[0].Data, data) {
		t.Fatal("reassembly corrupted after fragment loss")
	}
}

func TestCorruptMapConfigDropped(t *testing.T) {
	p := newPair(t, ModeGM)
	bad := []byte{byte(gmproto.PTMapConfig), 1} // truncated
	p.a.RawTransmit([]byte{0x01}, bad)
	p.eng.RunUntil(1 * sim.Millisecond)
	if p.b.Stats().BadHeaderDrops == 0 {
		t.Error("truncated config not counted")
	}
	if p.b.NodeID() != 2 {
		t.Error("truncated config changed the node id")
	}
}

func TestRecvTokenReturnedOnSenderRewind(t *testing.T) {
	// If reassembly is abandoned (sender restarts the message with a new
	// MsgID after Go-Back-N), the reserved receive token must return to
	// the pool rather than leak.
	p := newPair(t, ModeGM)
	p.openPorts(1)
	if err := p.b.HostPostRecvToken(1, recvTok(64)); err != nil {
		t.Fatal(err)
	}
	ps := p.b.ports[1]
	if len(ps.recvTokens) != 1 {
		t.Fatalf("tokens = %d", len(ps.recvTokens))
	}
	// Hand-feed a first fragment of a two-fragment message, then a first
	// fragment of a different message id on the same seq.
	h1 := gmproto.DataHeader{
		Src: 1, Dst: 2, SrcPort: 1, DstPort: 1, Prio: gmproto.PriorityLow,
		Seq: 100001, MsgID: 7, MsgLen: 10, Offset: 0,
	}
	p.b.handleData(h1, []byte("12345"))
	if len(ps.recvTokens) != 0 {
		t.Fatal("token not reserved")
	}
	h2 := h1
	h2.MsgID = 9
	p.b.handleData(h2, []byte("12345"))
	// The abandoned reservation returned and was immediately re-reserved
	// by the new message; completing it must deliver.
	p.b.handleData(gmproto.DataHeader{
		Src: 1, Dst: 2, SrcPort: 1, DstPort: 1, Prio: gmproto.PriorityLow,
		Seq: 100001, MsgID: 9, MsgLen: 10, Offset: 5,
	}, []byte("67890"))
	p.eng.RunUntil(1 * sim.Millisecond)
	recvd := p.events(p.evB, gmproto.EvReceived)
	if len(recvd) != 1 || string(recvd[0].Data) != "1234567890" {
		t.Fatalf("rewound message not delivered: %+v", recvd)
	}
}

func TestMisroutedPacketDropped(t *testing.T) {
	p := newPair(t, ModeGM)
	p.openPorts(1)
	if err := p.b.HostPostRecvToken(1, recvTok(64)); err != nil {
		t.Fatal(err)
	}
	// A DATA packet whose header names another node: hardware-level
	// misroute (e.g. stale route after remap).
	h := gmproto.DataHeader{
		Src: 1, Dst: 9, SrcPort: 1, DstPort: 1, Prio: gmproto.PriorityLow,
		Seq: 1, MsgID: 1, MsgLen: 1,
	}
	p.b.handleData(h, []byte("x"))
	if p.b.Stats().MisroutedDrops == 0 {
		t.Error("misrouted packet not dropped")
	}
	if len(p.events(p.evB, gmproto.EvReceived)) != 0 {
		t.Error("misrouted packet delivered")
	}
}

func TestInsaneHeadersDropped(t *testing.T) {
	p := newPair(t, ModeGM)
	p.openPorts(1)
	if err := p.b.HostPostRecvToken(1, recvTok(64)); err != nil {
		t.Fatal(err)
	}
	cases := []gmproto.DataHeader{
		{Src: 1, Dst: 2, DstPort: 1, Prio: 0, Seq: 1, MsgLen: 1},                              // bad prio
		{Src: 1, Dst: 2, DstPort: 1, Prio: gmproto.PriorityLow, Seq: 1, MsgLen: 1 << 30},      // huge
		{Src: 1, Dst: 2, DstPort: 1, Prio: gmproto.PriorityLow, Seq: 1, MsgLen: 2, Offset: 8}, // overflow
	}
	before := p.b.Stats().BadHeaderDrops
	for _, h := range cases {
		p.b.handleData(h, []byte("x"))
	}
	if got := p.b.Stats().BadHeaderDrops - before; got != uint64(len(cases)) {
		t.Errorf("BadHeaderDrops advanced by %d, want %d", got, len(cases))
	}
}

// Property: any batch of messages with arbitrary small sizes is delivered
// exactly once, in order, with intact contents.
func TestPropertyBatchDelivery(t *testing.T) {
	f := func(sizes []uint16, seed uint8) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(sizes) > 12 {
			sizes = sizes[:12]
		}
		p := newPair(t, ModeGM)
		p.openPorts(1)
		var want [][]byte
		for i, sz := range sizes {
			n := int(sz % 9000) // spans the 4 KB fragmentation boundary
			buf := make([]byte, n)
			for j := range buf {
				buf[j] = byte(j) ^ byte(i) ^ seed
			}
			want = append(want, buf)
			if err := p.b.HostPostRecvToken(1, recvTok(uint32(n)+1)); err != nil {
				return false
			}
		}
		for _, buf := range want {
			if err := p.a.HostPostSend(sendTok(2, 1, buf)); err != nil {
				return false
			}
		}
		p.eng.RunUntil(500 * sim.Millisecond)
		recvd := p.events(p.evB, gmproto.EvReceived)
		if len(recvd) != len(want) {
			return false
		}
		for i := range want {
			if !bytes.Equal(recvd[i].Data, want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: duplicate injections of the same DATA fragment never produce a
// second delivery, whatever the fragment's position.
func TestPropertyDuplicateFragmentsSafe(t *testing.T) {
	f := func(repeat uint8) bool {
		p := newPair(t, ModeGM)
		p.openPorts(1)
		if err := p.b.HostPostRecvToken(1, recvTok(64)); err != nil {
			return false
		}
		h := gmproto.DataHeader{
			Src: 1, Dst: 2, SrcPort: 1, DstPort: 1, Prio: gmproto.PriorityLow,
			Seq: 100001, MsgID: 3, MsgLen: 3,
		}
		n := int(repeat%5) + 2
		for i := 0; i < n; i++ {
			p.b.handleData(h, []byte("abc"))
		}
		p.eng.RunUntil(10 * sim.Millisecond)
		return len(p.events(p.evB, gmproto.EvReceived)) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
