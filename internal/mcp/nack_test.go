package mcp

import (
	"testing"

	"repro/internal/gmproto"
	"repro/internal/sim"
)

// fillWindow posts n sends while the victim's link is down, leaving them
// transmitted-but-unacknowledged in the sender's window.
func fillWindow(t *testing.T, p *pair, n int) {
	t.Helper()
	p.linkOf(1).SetUp(false) // B unreachable: no ACKs come back
	for i := 0; i < n; i++ {
		if err := p.a.HostPostSend(sendTok(2, 1, []byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	p.eng.RunUntil(p.eng.Now() + 2*sim.Millisecond)
}

func TestHandleNackImplicitAck(t *testing.T) {
	p := newPair(t, ModeGM)
	p.openPorts(1)
	fillWindow(t, p, 3) // seqs 100001..100003 in flight
	s := p.a.tx[gmproto.StreamID{Node: 2, Port: gmproto.ConnectionPort, Prio: gmproto.PriorityLow}]
	if s == nil || len(s.window) != 3 {
		t.Fatalf("window not primed: %+v", s)
	}
	// NACK expecting the third message: the first two are implicitly
	// acknowledged (their tokens return), the third is marked for resend.
	p.a.handleNack(gmproto.AckHeader{
		Src: 2, SrcPort: gmproto.ConnectionPort, Prio: gmproto.PriorityLow, AckSeq: 100003, Nack: true,
	})
	p.eng.RunUntil(p.eng.Now() + 2*sim.Millisecond)
	if len(s.window) != 1 || s.window[0].seq != 100003 {
		t.Fatalf("window after NACK = %d msgs", len(s.window))
	}
	if got := len(p.events(p.evA, gmproto.EvSent)); got != 2 {
		t.Errorf("implicitly acked callbacks = %d, want 2", got)
	}
	if p.a.Stats().Retransmits == 0 {
		t.Error("expected message not retransmitted")
	}
}

func TestHandleNackUnknownSeqWaits(t *testing.T) {
	// The receiver expects a sequence number that is not in the window
	// (its token has not been restored yet): retransmitting higher
	// sequence numbers would only provoke more NACKs, so the sender must
	// wait.
	p := newPair(t, ModeGM)
	p.openPorts(1)
	fillWindow(t, p, 2)
	rtxBefore := p.a.Stats().Retransmits
	p.a.handleNack(gmproto.AckHeader{
		Src: 2, SrcPort: gmproto.ConnectionPort, Prio: gmproto.PriorityLow, AckSeq: 99000, Nack: true,
	})
	p.eng.RunUntil(p.eng.Now() + 2*sim.Millisecond)
	if p.a.Stats().Retransmits != rtxBefore {
		t.Error("sender retransmitted for an unknown expectation")
	}
}

func TestHandleNackAdoptRenumbers(t *testing.T) {
	// The Figure 4 mechanism in isolation: a naive-reload sender adopts
	// the receiver's expectation and renumbers its pending window.
	p := newPair(t, ModeGM)
	p.openPorts(1)
	fillWindow(t, p, 2)
	p.a.SetAdoptNackSeq(true)
	s := p.a.tx[gmproto.StreamID{Node: 2, Port: gmproto.ConnectionPort, Prio: gmproto.PriorityLow}]
	p.a.handleNack(gmproto.AckHeader{
		Src: 2, SrcPort: gmproto.ConnectionPort, Prio: gmproto.PriorityLow, AckSeq: 55, Nack: true,
	})
	p.eng.RunUntil(p.eng.Now() + 2*sim.Millisecond)
	if s.window[0].seq != 55 || s.window[1].seq != 56 {
		t.Fatalf("window seqs = %d, %d; want 55, 56", s.window[0].seq, s.window[1].seq)
	}
	if s.nextSeq != 57 {
		t.Errorf("nextSeq = %d, want 57", s.nextSeq)
	}
}

func TestHandleNackUnknownStream(t *testing.T) {
	p := newPair(t, ModeGM)
	// NACK for a stream that does not exist must be a harmless no-op.
	p.a.handleNack(gmproto.AckHeader{Src: 9, SrcPort: 3, AckSeq: 1, Nack: true})
	p.a.handleAck(gmproto.AckHeader{Src: 9, SrcPort: 3, AckSeq: 1})
}

func TestRecvRingRejectsGarbage(t *testing.T) {
	p := newPair(t, ModeGM)
	p.openPorts(1)
	// A packet whose payload is not a known GM type.
	p.a.RawTransmit([]byte{0x01}, []byte{0xEE, 1, 2, 3})
	// A truncated ACK.
	p.a.RawTransmit([]byte{0x01}, []byte{byte(gmproto.PTAck), 1})
	// An empty payload.
	p.a.RawTransmit([]byte{0x01}, nil)
	p.eng.RunUntil(p.eng.Now() + 2*sim.Millisecond)
	if p.b.Stats().BadHeaderDrops < 2 {
		t.Errorf("BadHeaderDrops = %d, want >= 2", p.b.Stats().BadHeaderDrops)
	}
}

func TestRecvRingRouteResidueDrop(t *testing.T) {
	p := newPair(t, ModeGM)
	p.openPorts(1)
	// Two route bytes to a one-hop destination: the packet arrives at B
	// with a leftover byte and must be discarded.
	p.a.RawTransmit([]byte{0x01, 0x03}, (&gmproto.ScoutPayload{Fwd: []byte{1}}).Encode())
	p.eng.RunUntil(p.eng.Now() + 2*sim.Millisecond)
	if p.b.Stats().MisroutedDrops == 0 {
		t.Error("route residue not dropped")
	}
}

func TestMCPAccessors(t *testing.T) {
	p := newPair(t, ModeFTGM)
	if p.a.Mode() != ModeFTGM {
		t.Errorf("Mode = %v", p.a.Mode())
	}
	if !p.a.Loaded() {
		t.Error("Loaded = false after LoadAndStart")
	}
	p.a.SetUID(0x1234)
	if p.a.UID() != 0x1234 {
		t.Error("UID round trip failed")
	}
	p.a.RegisterPageTable(42)
	if p.a.PageTableEntries() != 42 {
		t.Errorf("PageTableEntries = %d", p.a.PageTableEntries())
	}
	// Recovery entry points on closed/absent ports are harmless no-ops.
	p.a.PostFaultDetected(7)
	p.a.ReopenPort(6, nil)
	if !p.a.PortOpen(6) {
		t.Error("ReopenPort did not open")
	}
	if err := p.a.HostRegisterRegion(5, 1, make([]byte, 8)); err == nil {
		t.Error("region registered on closed port")
	}
}

func TestFootprintScaling(t *testing.T) {
	p := newPair(t, ModeGM)
	q := newPair(t, ModeFTGM)
	gmFp := p.a.Footprint(64)
	ftFp := q.a.Footprint(64)
	if ftFp.Total() <= gmFp.Total() {
		t.Errorf("FTGM footprint %d <= GM %d", ftFp.Total(), gmFp.Total())
	}
	// FTGM's ACK table and sequence shadow exist only in FTGM.
	if gmFp.AckTable != 0 || gmFp.SeqShadow != 0 {
		t.Error("GM mode has FTGM tables")
	}
	if ftFp.AckTable == 0 || ftFp.SeqShadow == 0 {
		t.Error("FTGM tables empty")
	}
	// Linear in the cluster size.
	big := q.a.Footprint(128)
	if big.Total() <= ftFp.Total() {
		t.Error("footprint not growing with cluster size")
	}
}
