// Package mcp implements the Myrinet Control Program: the event-driven
// firmware that runs on the LANai and provides GM's reliable, ordered,
// OS-bypass messaging (§2, §3.1 of the paper). It covers the send path
// (token fetch, fragmentation into ≤4 KB packets, host→SRAM DMA, injection),
// the receive path (CRC and sequence checking, reassembly, SRAM→host DMA,
// event posting), per-stream Go-Back-N with ACK/NACK, the L_timer() routine,
// and the FTGM modifications: host-supplied per-(port,destination) sequence
// numbers, the delayed ACK commit point, the watchdog timer, and the state
// restoration entry points used during fault recovery (§4).
package mcp

import "repro/internal/sim"

// Mode selects the protocol variant.
type Mode int

// Protocol variants.
const (
	// ModeGM is stock GM-1.5.1 behavior: MCP-generated per-connection
	// sequence numbers and an ACK sent as soon as the message has fully
	// arrived in LANai SRAM (before the DMA to the user buffer).
	ModeGM Mode = iota + 1
	// ModeFTGM is the paper's modified MCP: host-generated per-(port,dest)
	// sequence streams, per-(connection,port) ACK tables, the ACK delayed
	// until the message is DMA-complete in the user's buffer, and the IT1
	// software watchdog armed.
	ModeFTGM
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case ModeGM:
		return "GM"
	case ModeFTGM:
		return "FTGM"
	default:
		return "mode?"
	}
}

// Config holds the MCP's timing and protocol parameters. The defaults are
// calibrated against the paper's published constants (Table 2, §4.2, §5.1);
// see DESIGN.md §5.
type Config struct {
	// SendProcA is LANai processing per outgoing fragment before the host
	// DMA (token decode, DMA programming).
	SendProcA sim.Duration
	// SendProcB is LANai processing per outgoing fragment after the DMA
	// (header build, route prepend, packet-interface programming) —
	// send_chunk in the real MCP.
	SendProcB sim.Duration
	// RecvProcA is LANai processing per arriving fragment (CRC and
	// sequence check, buffer match, DMA programming).
	RecvProcA sim.Duration
	// RecvProcB is LANai processing per completed message (receive-queue
	// event build).
	RecvProcB sim.Duration
	// AckProc is LANai processing to emit or absorb an ACK/NACK.
	AckProc sim.Duration
	// FTGMSendExtra/FTGMRecvExtra are the additional LANai costs of FTGM:
	// consuming host-supplied sequence numbers on the send side, and the
	// per-(connection,port) ACK-table plus delayed-ACK bookkeeping on the
	// receive side. Together they move LANai occupancy from 6.0 to 6.8 µs
	// per message (Table 2).
	FTGMSendExtra sim.Duration
	FTGMRecvExtra sim.Duration

	// EventBytes is the size of one receive-queue event record DMAed to
	// host memory.
	EventBytes int

	// LTimerTicks is the IT0 interval in 0.5 µs ticks. GM re-arms IT0 at
	// the end of every L_timer() invocation; the worst-case observed gap
	// between invocations is ~800 µs (§4.2).
	LTimerTicks uint32
	// LTimerProc is the execution cost of L_timer().
	LTimerProc sim.Duration
	// WatchdogTicks is the IT1 interval in ticks, "slightly greater than
	// 800 µs" (§4.2). Only armed in ModeFTGM.
	WatchdogTicks uint32

	// RtxTimeout is the Go-Back-N retransmission timeout per stream.
	RtxTimeout sim.Duration
	// NetFaultThreshold is the number of consecutive timeout-retransmit
	// rounds of one stream with no ACK/NACK heard before the MCP raises a
	// NET_FAULT_SUSPECTED report to the host (a likely dead path, as opposed
	// to ordinary loss, which produces control traffic). 0 disables path
	// health reporting.
	NetFaultThreshold int
	// WindowSize is the maximum number of unacknowledged messages per
	// stream.
	WindowSize int
	// MaxMsgSize bounds a message; headers announcing more are treated as
	// corrupt and dropped.
	MaxMsgSize uint32

	// ImmediateAck is an ablation switch: in FTGM mode, send the ACK at
	// message arrival (stock GM's commit point) instead of after the DMA
	// completes. It re-opens the Figure 5 loss window and exists to
	// measure what the delayed commit point costs (DESIGN.md §6).
	ImmediateAck bool
}

// DefaultConfig returns the calibrated parameters.
func DefaultConfig() Config {
	return Config{
		SendProcA:         1500 * sim.Nanosecond,
		SendProcB:         1500 * sim.Nanosecond,
		RecvProcA:         2000 * sim.Nanosecond,
		RecvProcB:         1000 * sim.Nanosecond,
		AckProc:           300 * sim.Nanosecond,
		FTGMSendExtra:     400 * sim.Nanosecond,
		FTGMRecvExtra:     400 * sim.Nanosecond,
		EventBytes:        64,
		LTimerTicks:       1400, // 700 µs; serialization stretches gaps toward 800 µs
		LTimerProc:        2 * sim.Microsecond,
		WatchdogTicks:     2000, // 1000 µs, slightly above the 800 µs worst case
		RtxTimeout:        10 * sim.Millisecond,
		NetFaultThreshold: 3,
		WindowSize:        16,
		MaxMsgSize:        16 << 20,
	}
}

// Stats counts MCP-level protocol activity.
type Stats struct {
	MsgsSent         uint64 // messages fully transmitted (first time)
	MsgsDelivered    uint64 // messages committed to the host
	MsgsAcked        uint64 // send tokens completed by an ACK
	FragmentsSent    uint64
	FragmentsRecvd   uint64
	AcksSent         uint64
	NacksSent        uint64
	Retransmits      uint64 // messages retransmitted (timeout or NACK)
	CorruptDropped   uint64 // CRC failures
	BadHeaderDrops   uint64 // undecodable or insane headers
	DupDropped       uint64 // duplicate messages discarded (re-ACKed)
	OutOfOrderNack   uint64
	DirectedDeposits uint64 // directed sends landed in registered memory
	NoBufferDrops    uint64 // no receive token available
	MisroutedDrops   uint64
	ClosedPortDrops  uint64
	LTimerRuns       uint64
	// NetFaultSuspicions counts path-health reports raised to the host:
	// streams that hit NetFaultThreshold consecutive silent timeout rounds.
	NetFaultSuspicions uint64
	// UnreachableFails counts sends terminally failed because their
	// destination was declared unreachable.
	UnreachableFails uint64
}
