package mcp

import "repro/internal/gmproto"

// MemoryFootprint itemizes the control program's SRAM usage beyond packet
// buffering, in bytes. The paper reports that FTGM's modifications cost
// "around 100KB" of extra static LANai memory (§5) — the per-(connection,
// port) ACK table, the host-sequence bookkeeping and the larger event
// records. The sizes here are the structural state of this model, sized as
// the real firmware would lay them out.
type MemoryFootprint struct {
	RouteTable   int // route bytes per destination
	TxStreams    int // per-stream window bookkeeping
	RxStreams    int // per-stream sequence tracking
	PortTables   int // per-port queues and token tables
	AckTable     int // FTGM: per-(connection,port) ACK numbers (§4.1)
	SeqShadow    int // FTGM: host-sequence consumption state
	PageHashSlot int // cached page-hash entries
}

// Total sums the components.
func (m MemoryFootprint) Total() int {
	return m.RouteTable + m.TxStreams + m.RxStreams + m.PortTables +
		m.AckTable + m.SeqShadow + m.PageHashSlot
}

// Static per-entry sizes, as a real MCP would declare them.
const (
	routeEntryBytes  = 16  // route bytes + length + destination id
	txStreamBytes    = 96  // window descriptors, next-seq, rtx deadline
	rxStreamBytes    = 24  // expected/committed sequence numbers
	portTableBytes   = 512 // send queue ring + recv token table + event ring head
	ackEntryBytes    = 8   // (connection, port) -> last seq
	seqShadowBytes   = 8   // per-stream host-sequence high-water mark
	pageCacheEntries = 64  // cached page-hash lines per port
	pageCacheBytes   = 16
)

// Footprint reports the current structural SRAM usage. In FTGM mode the
// receiver tracks one ACK entry per (connection, port) pair — up to
// 8x the per-connection table of stock GM — and the sender keeps
// host-sequence state per stream; both are sized at their configured
// maximums (static allocation, as firmware must).
func (m *MCP) Footprint(maxNodes int) MemoryFootprint {
	fp := MemoryFootprint{
		RouteTable:   maxNodes * routeEntryBytes,
		PortTables:   gmproto.MaxPorts * portTableBytes,
		PageHashSlot: gmproto.MaxPorts * pageCacheEntries * pageCacheBytes,
	}
	if m.mode == ModeFTGM {
		// Independent streams per (port, remote node), both directions.
		streams := maxNodes * gmproto.MaxPorts
		fp.TxStreams = streams * txStreamBytes
		fp.RxStreams = streams * rxStreamBytes
		fp.AckTable = streams * ackEntryBytes
		fp.SeqShadow = streams * seqShadowBytes
	} else {
		// One connection per remote node.
		fp.TxStreams = maxNodes * txStreamBytes
		fp.RxStreams = maxNodes * rxStreamBytes
	}
	return fp
}
