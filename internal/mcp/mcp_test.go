package mcp

import (
	"bytes"
	"testing"

	"repro/internal/fabric"
	"repro/internal/gmproto"
	"repro/internal/host"
	"repro/internal/lanai"
	"repro/internal/sim"
)

// pair is a two-node test harness: two hosts with their own PCI buses and
// LANai cards, cabled through one 8-port switch.
type pair struct {
	t    *testing.T
	eng  *sim.Engine
	a, b *MCP
	swch *fabric.Switch

	// collected events per side
	evA, evB []gmproto.Event
}

func newPair(t *testing.T, mode Mode) *pair {
	t.Helper()
	return newPairCfg(t, mode, DefaultConfig())
}

func newPairCfg(t *testing.T, mode Mode, cfg Config) *pair {
	t.Helper()
	eng := sim.NewEngine(1)
	p := &pair{t: t, eng: eng}

	pciA := host.NewPCIBus(eng, "pciA", host.DefaultPCIConfig())
	pciB := host.NewPCIBus(eng, "pciB", host.DefaultPCIConfig())
	chipA := lanai.New(eng, "lanaiA", lanai.DefaultConfig(), pciA)
	chipB := lanai.New(eng, "lanaiB", lanai.DefaultConfig(), pciB)

	p.swch = fabric.NewSwitch(eng, "sw", fabric.DefaultSwitchConfig())
	la := fabric.NewLink(eng, fabric.DefaultLinkConfig(), chipA, p.swch)
	lb := fabric.NewLink(eng, fabric.DefaultLinkConfig(), chipB, p.swch)
	if err := p.swch.AttachLink(0, la); err != nil {
		t.Fatal(err)
	}
	if err := p.swch.AttachLink(1, lb); err != nil {
		t.Fatal(err)
	}
	chipA.Attach(la.EndFor(chipA))
	chipB.Attach(lb.EndFor(chipB))

	p.a = New(chipA, cfg, mode)
	p.b = New(chipB, cfg, mode)
	p.a.SetNodeID(1)
	p.b.SetNodeID(2)
	// Deltas: A enters the switch on port 0, B on port 1.
	p.a.UploadRoutes(map[gmproto.NodeID][]byte{2: {0x01}})
	p.b.UploadRoutes(map[gmproto.NodeID][]byte{1: {0xFF}})
	p.a.LoadAndStart()
	p.b.LoadAndStart()
	return p
}

func (p *pair) openPorts(port gmproto.PortID) {
	p.t.Helper()
	if err := p.a.HostOpenPort(port, func(ev gmproto.Event) { p.evA = append(p.evA, ev) }); err != nil {
		p.t.Fatal(err)
	}
	if err := p.b.HostOpenPort(port, func(ev gmproto.Event) { p.evB = append(p.evB, ev) }); err != nil {
		p.t.Fatal(err)
	}
}

func (p *pair) events(evs []gmproto.Event, t gmproto.EventType) []gmproto.Event {
	var out []gmproto.Event
	for _, ev := range evs {
		if ev.Type == t {
			out = append(out, ev)
		}
	}
	return out
}

var nextTokenID uint64

func sendTok(dest gmproto.NodeID, port gmproto.PortID, data []byte) gmproto.SendToken {
	nextTokenID++
	return gmproto.SendToken{
		ID: nextTokenID, Dest: dest, DestPort: port, SrcPort: port,
		Prio: gmproto.PriorityLow, Data: data,
	}
}

func recvTok(size uint32) gmproto.RecvToken {
	nextTokenID++
	return gmproto.RecvToken{ID: nextTokenID, Size: size, Prio: gmproto.PriorityLow}
}

func TestBasicSendReceive(t *testing.T) {
	for _, mode := range []Mode{ModeGM, ModeFTGM} {
		t.Run(mode.String(), func(t *testing.T) {
			p := newPair(t, mode)
			p.openPorts(2)
			if err := p.b.HostPostRecvToken(2, recvTok(4096)); err != nil {
				t.Fatal(err)
			}
			payload := []byte("hello myrinet world")
			tok := sendTok(2, 2, payload)
			if mode == ModeFTGM {
				tok.Seq, tok.HasSeq = 1, true
			}
			if err := p.a.HostPostSend(tok); err != nil {
				t.Fatal(err)
			}
			p.eng.RunUntil(1 * sim.Millisecond)

			recvd := p.events(p.evB, gmproto.EvReceived)
			if len(recvd) != 1 {
				t.Fatalf("received %d messages, want 1", len(recvd))
			}
			if !bytes.Equal(recvd[0].Data, payload) {
				t.Errorf("payload = %q", recvd[0].Data)
			}
			if recvd[0].Src != 1 || recvd[0].SrcPort != 2 {
				t.Errorf("event meta = %+v", recvd[0])
			}
			if mode == ModeFTGM && recvd[0].Seq != 1 {
				t.Errorf("host-generated seq = %d, want 1", recvd[0].Seq)
			}
			sent := p.events(p.evA, gmproto.EvSent)
			if len(sent) != 1 || sent[0].TokenID != tok.ID || sent[0].Status != gmproto.SendOK {
				t.Fatalf("sent events = %+v", sent)
			}
		})
	}
}

func TestSmallMessageLatencyBand(t *testing.T) {
	// Calibration: GM short-message half-RTT is ~11.5 µs, FTGM ~13.0 µs
	// (Table 2). One-way delivery time must sit in those bands.
	check := func(mode Mode, lo, hi sim.Duration) {
		p := newPair(t, mode)
		p.openPorts(2)
		if err := p.b.HostPostRecvToken(2, recvTok(256)); err != nil {
			t.Fatal(err)
		}
		tok := sendTok(2, 2, make([]byte, 16))
		if mode == ModeFTGM {
			tok.Seq, tok.HasSeq = 1, true
		}
		var deliveredAt sim.Time
		p.b.ports[2].sink = func(ev gmproto.Event) {
			if ev.Type == gmproto.EvReceived {
				deliveredAt = p.eng.Now()
			}
		}
		if err := p.a.HostPostSend(tok); err != nil {
			t.Fatal(err)
		}
		p.eng.RunUntil(1 * sim.Millisecond)
		if deliveredAt == 0 {
			t.Fatalf("%v: not delivered", mode)
		}
		if deliveredAt < lo || deliveredAt > hi {
			t.Errorf("%v one-way latency = %v, want %v..%v", mode, deliveredAt, lo, hi)
		}
	}
	check(ModeGM, 8*sim.Microsecond, 13*sim.Microsecond)
	check(ModeFTGM, 9*sim.Microsecond, 15*sim.Microsecond)
}

func TestInOrderDelivery(t *testing.T) {
	p := newPair(t, ModeGM)
	p.openPorts(1)
	const n = 20
	for i := 0; i < n; i++ {
		if err := p.b.HostPostRecvToken(1, recvTok(64)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		if err := p.a.HostPostSend(sendTok(2, 1, []byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	p.eng.RunUntil(10 * sim.Millisecond)
	recvd := p.events(p.evB, gmproto.EvReceived)
	if len(recvd) != n {
		t.Fatalf("received %d, want %d", len(recvd), n)
	}
	base := recvd[0].Seq
	for i, ev := range recvd {
		if ev.Data[0] != byte(i) {
			t.Fatalf("out of order at %d: got %d", i, ev.Data[0])
		}
		if ev.Seq != base+uint32(i) {
			t.Errorf("seq[%d] = %d, want consecutive from %d", i, ev.Seq, base)
		}
	}
}

func TestFragmentationAndReassembly(t *testing.T) {
	p := newPair(t, ModeGM)
	p.openPorts(1)
	size := 3*gmproto.MaxPacketPayload + 100 // 4 fragments
	if err := p.b.HostPostRecvToken(1, recvTok(uint32(size))); err != nil {
		t.Fatal(err)
	}
	data := make([]byte, size)
	for i := range data {
		data[i] = byte(i * 7)
	}
	if err := p.a.HostPostSend(sendTok(2, 1, data)); err != nil {
		t.Fatal(err)
	}
	p.eng.RunUntil(10 * sim.Millisecond)
	recvd := p.events(p.evB, gmproto.EvReceived)
	if len(recvd) != 1 {
		t.Fatalf("received %d, want 1", len(recvd))
	}
	if !bytes.Equal(recvd[0].Data, data) {
		t.Fatal("reassembled payload mismatch")
	}
	if p.a.Stats().FragmentsSent != 4 {
		t.Errorf("FragmentsSent = %d, want 4", p.a.Stats().FragmentsSent)
	}
	if p.b.Stats().AcksSent != 1 {
		t.Errorf("AcksSent = %d, want 1 (one ACK per message)", p.b.Stats().AcksSent)
	}
}

func TestZeroLengthMessage(t *testing.T) {
	p := newPair(t, ModeGM)
	p.openPorts(1)
	if err := p.b.HostPostRecvToken(1, recvTok(64)); err != nil {
		t.Fatal(err)
	}
	if err := p.a.HostPostSend(sendTok(2, 1, nil)); err != nil {
		t.Fatal(err)
	}
	p.eng.RunUntil(1 * sim.Millisecond)
	recvd := p.events(p.evB, gmproto.EvReceived)
	if len(recvd) != 1 || len(recvd[0].Data) != 0 {
		t.Fatalf("zero-length message: %+v", recvd)
	}
}

func TestWindowExceeded(t *testing.T) {
	cfg := DefaultConfig()
	cfg.WindowSize = 4
	p := newPairCfg(t, ModeGM, cfg)
	p.openPorts(1)
	const n = 30
	for i := 0; i < n; i++ {
		if err := p.b.HostPostRecvToken(1, recvTok(64)); err != nil {
			t.Fatal(err)
		}
		if err := p.a.HostPostSend(sendTok(2, 1, []byte{byte(i)})); err != nil {
			t.Fatal(err)
		}
	}
	p.eng.RunUntil(50 * sim.Millisecond)
	recvd := p.events(p.evB, gmproto.EvReceived)
	if len(recvd) != n {
		t.Fatalf("received %d, want %d", len(recvd), n)
	}
	for i, ev := range recvd {
		if ev.Data[0] != byte(i) {
			t.Fatalf("out of order at %d", i)
		}
	}
}

func TestNoReceiveBufferThenRecover(t *testing.T) {
	p := newPair(t, ModeGM)
	p.openPorts(1)
	if err := p.a.HostPostSend(sendTok(2, 1, []byte("x"))); err != nil {
		t.Fatal(err)
	}
	p.eng.RunUntil(2 * sim.Millisecond)
	if len(p.events(p.evB, gmproto.EvReceived)) != 0 {
		t.Fatal("delivered without a buffer")
	}
	if p.b.Stats().NoBufferDrops == 0 {
		t.Error("NoBufferDrops = 0")
	}
	if len(p.events(p.evB, gmproto.EvNoRecvBuffer)) == 0 {
		t.Error("no EvNoRecvBuffer warning")
	}
	// Provide the buffer; the sender's Go-Back-N timeout redelivers.
	if err := p.b.HostPostRecvToken(1, recvTok(64)); err != nil {
		t.Fatal(err)
	}
	p.eng.RunUntil(50 * sim.Millisecond)
	if len(p.events(p.evB, gmproto.EvReceived)) != 1 {
		t.Fatal("not delivered after buffer provided")
	}
	if p.a.Stats().Retransmits == 0 {
		t.Error("delivery without retransmission?")
	}
}

func TestWireCorruptionDroppedAndRetransmitted(t *testing.T) {
	p := newPair(t, ModeGM)
	p.openPorts(1)
	if err := p.b.HostPostRecvToken(1, recvTok(64)); err != nil {
		t.Fatal(err)
	}
	p.a.InjectSendCorruption(100, false) // post-seal: CRC catches it
	payload := []byte("precious data")
	if err := p.a.HostPostSend(sendTok(2, 1, payload)); err != nil {
		t.Fatal(err)
	}
	p.eng.RunUntil(50 * sim.Millisecond)
	recvd := p.events(p.evB, gmproto.EvReceived)
	if len(recvd) != 1 {
		t.Fatalf("received %d, want 1", len(recvd))
	}
	if !bytes.Equal(recvd[0].Data, payload) {
		t.Error("delivered corrupted data")
	}
	if p.b.Stats().CorruptDropped != 1 {
		t.Errorf("CorruptDropped = %d, want 1", p.b.Stats().CorruptDropped)
	}
	if p.a.Stats().Retransmits == 0 {
		t.Error("no retransmission")
	}
}

func TestPreSealCorruptionReachesApplication(t *testing.T) {
	// Damage before the CRC seal models send_chunk staging faults: GM
	// cannot detect it; the message arrives corrupted (Table 1).
	p := newPair(t, ModeGM)
	p.openPorts(1)
	if err := p.b.HostPostRecvToken(1, recvTok(64)); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 32)
	p.a.InjectSendCorruption(300, true)
	if err := p.a.HostPostSend(sendTok(2, 1, payload)); err != nil {
		t.Fatal(err)
	}
	p.eng.RunUntil(10 * sim.Millisecond)
	recvd := p.events(p.evB, gmproto.EvReceived)
	// The flip may land in the header (dropped as insane) or in the data
	// (delivered corrupt); with bit 300 it lands in the data region.
	if len(recvd) != 1 {
		t.Fatalf("received %d, want 1", len(recvd))
	}
	if bytes.Equal(recvd[0].Data, payload) {
		t.Error("corruption did not reach the application")
	}
}

func TestPriorityTokenMatching(t *testing.T) {
	p := newPair(t, ModeGM)
	p.openPorts(1)
	// Only a low-priority token available; a high-priority message must
	// not consume it.
	if err := p.b.HostPostRecvToken(1, recvTok(64)); err != nil {
		t.Fatal(err)
	}
	tok := sendTok(2, 1, []byte("urgent"))
	tok.Prio = gmproto.PriorityHigh
	if err := p.a.HostPostSend(tok); err != nil {
		t.Fatal(err)
	}
	p.eng.RunUntil(2 * sim.Millisecond)
	if len(p.events(p.evB, gmproto.EvReceived)) != 0 {
		t.Fatal("high-priority message consumed a low-priority buffer")
	}
	ht := recvTok(64)
	ht.Prio = gmproto.PriorityHigh
	if err := p.b.HostPostRecvToken(1, ht); err != nil {
		t.Fatal(err)
	}
	p.eng.RunUntil(50 * sim.Millisecond)
	if len(p.events(p.evB, gmproto.EvReceived)) != 1 {
		t.Fatal("high-priority message not delivered to matching buffer")
	}
}

func TestBidirectionalTraffic(t *testing.T) {
	p := newPair(t, ModeFTGM)
	p.openPorts(1)
	const n = 10
	for i := 0; i < n; i++ {
		if err := p.a.HostPostRecvToken(1, recvTok(64)); err != nil {
			t.Fatal(err)
		}
		if err := p.b.HostPostRecvToken(1, recvTok(64)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		ta := sendTok(2, 1, []byte{1, byte(i)})
		ta.Seq, ta.HasSeq = uint32(i+1), true
		tb := sendTok(1, 1, []byte{2, byte(i)})
		tb.Seq, tb.HasSeq = uint32(i+1), true
		if err := p.a.HostPostSend(ta); err != nil {
			t.Fatal(err)
		}
		if err := p.b.HostPostSend(tb); err != nil {
			t.Fatal(err)
		}
	}
	p.eng.RunUntil(10 * sim.Millisecond)
	if got := len(p.events(p.evA, gmproto.EvReceived)); got != n {
		t.Errorf("A received %d, want %d", got, n)
	}
	if got := len(p.events(p.evB, gmproto.EvReceived)); got != n {
		t.Errorf("B received %d, want %d", got, n)
	}
}

func TestSendToClosedPortDropped(t *testing.T) {
	p := newPair(t, ModeGM)
	p.openPorts(1)
	// Destination port 3 is closed on B.
	tok := sendTok(2, 1, []byte("x"))
	tok.DestPort = 3
	if err := p.a.HostPostSend(tok); err != nil {
		t.Fatal(err)
	}
	p.eng.RunUntil(2 * sim.Millisecond)
	if p.b.Stats().ClosedPortDrops == 0 {
		t.Error("ClosedPortDrops = 0")
	}
	if len(p.events(p.evB, gmproto.EvReceived)) != 0 {
		t.Error("delivered to closed port")
	}
}

func TestSendWithoutRouteFails(t *testing.T) {
	p := newPair(t, ModeGM)
	p.openPorts(1)
	tok := sendTok(9, 1, []byte("x")) // node 9 unknown
	if err := p.a.HostPostSend(tok); err != nil {
		t.Fatal(err)
	}
	p.eng.RunUntil(2 * sim.Millisecond)
	errs := p.events(p.evA, gmproto.EvSendError)
	if len(errs) != 1 || errs[0].TokenID != tok.ID {
		t.Fatalf("send-error events = %+v", errs)
	}
}

func TestHostOpenPortErrors(t *testing.T) {
	p := newPair(t, ModeGM)
	if err := p.a.HostOpenPort(99, nil); err == nil {
		t.Error("out-of-range port opened")
	}
	if err := p.a.HostOpenPort(1, nil); err != nil {
		t.Fatal(err)
	}
	if err := p.a.HostOpenPort(1, nil); err == nil {
		t.Error("double open succeeded")
	}
	if err := p.a.HostPostSend(gmproto.SendToken{SrcPort: 5}); err == nil {
		t.Error("send on closed port succeeded")
	}
	if err := p.a.HostPostRecvToken(5, gmproto.RecvToken{}); err == nil {
		t.Error("recv token on closed port succeeded")
	}
	p.a.HostClosePort(1)
	if p.a.PortOpen(1) {
		t.Error("port still open after close")
	}
}

func TestLTimerRunsAndClearsMagic(t *testing.T) {
	p := newPair(t, ModeFTGM)
	p.a.Chip().WriteWord(lanai.MagicAddr, lanai.MagicWord)
	p.eng.RunUntil(3 * sim.Millisecond)
	if p.a.Stats().LTimerRuns < 3 {
		t.Errorf("LTimerRuns = %d, want >= 3", p.a.Stats().LTimerRuns)
	}
	if p.a.Chip().ReadWord(lanai.MagicAddr) == lanai.MagicWord {
		t.Error("live MCP did not clear the magic word")
	}
}

func TestWatchdogDetectsHangFTGM(t *testing.T) {
	p := newPair(t, ModeFTGM)
	var fatalAt sim.Time
	p.a.Chip().SetHostInterrupt(func(isr uint32) {
		if isr&lanai.ISRTimer1 != 0 && fatalAt == 0 {
			fatalAt = p.eng.Now()
		}
	})
	hangAt := 5 * sim.Millisecond
	p.eng.At(hangAt, func() { p.a.InjectHang() })
	p.eng.RunUntil(20 * sim.Millisecond)
	if fatalAt == 0 {
		t.Fatal("watchdog never fired")
	}
	detection := fatalAt - hangAt
	// IT1 is armed at 1000 µs and re-armed by each L_timer; detection
	// latency is bounded by the watchdog interval.
	if detection <= 0 || detection > 1100*sim.Microsecond {
		t.Errorf("detection latency = %v, want (0, 1.1ms]", detection)
	}
}

func TestNoWatchdogInGMMode(t *testing.T) {
	p := newPair(t, ModeGM)
	fired := false
	p.a.Chip().SetHostInterrupt(func(isr uint32) { fired = true })
	p.eng.At(5*sim.Millisecond, func() { p.a.InjectHang() })
	p.eng.RunUntil(50 * sim.Millisecond)
	if fired {
		t.Fatal("stock GM must not detect hangs — that is the paper's point")
	}
}

func TestWatchdogNoFalsePositives(t *testing.T) {
	p := newPair(t, ModeFTGM)
	p.openPorts(1)
	fired := false
	p.a.Chip().SetHostInterrupt(func(isr uint32) {
		if isr&lanai.ISRTimer1 != 0 {
			fired = true
		}
	})
	// Sustained traffic for 100 ms: L_timer must keep re-arming IT1 in
	// time despite the load.
	for i := 0; i < 50; i++ {
		if err := p.b.HostPostRecvToken(1, recvTok(8192)); err != nil {
			t.Fatal(err)
		}
	}
	var sendNext func(i int)
	sendNext = func(i int) {
		if i >= 50 {
			return
		}
		tok := sendTok(2, 1, make([]byte, 8192))
		tok.Seq, tok.HasSeq = uint32(i+1), true
		if err := p.a.HostPostSend(tok); err != nil {
			t.Fatal(err)
		}
		p.eng.After(2*sim.Millisecond, func() { sendNext(i + 1) })
	}
	sendNext(0)
	p.eng.RunUntil(100 * sim.Millisecond)
	if fired {
		t.Fatal("watchdog false positive under load")
	}
}

func TestHungInterfaceStopsTraffic(t *testing.T) {
	p := newPair(t, ModeGM)
	p.openPorts(1)
	if err := p.b.HostPostRecvToken(1, recvTok(64)); err != nil {
		t.Fatal(err)
	}
	p.b.InjectHang()
	if err := p.a.HostPostSend(sendTok(2, 1, []byte("x"))); err != nil {
		t.Fatal(err)
	}
	p.eng.RunUntil(30 * sim.Millisecond)
	if len(p.events(p.evB, gmproto.EvReceived)) != 0 {
		t.Fatal("hung interface delivered a message")
	}
	// Sender keeps retransmitting into the void.
	if p.a.Stats().Retransmits == 0 {
		t.Error("sender did not retransmit")
	}
}

func TestFTGMHostSequencesHonored(t *testing.T) {
	p := newPair(t, ModeFTGM)
	p.openPorts(1)
	for i := 0; i < 3; i++ {
		if err := p.b.HostPostRecvToken(1, recvTok(64)); err != nil {
			t.Fatal(err)
		}
	}
	// Host supplies 1,2,3; events must carry them back.
	for i := 1; i <= 3; i++ {
		tok := sendTok(2, 1, []byte{byte(i)})
		tok.Seq, tok.HasSeq = uint32(i), true
		if err := p.a.HostPostSend(tok); err != nil {
			t.Fatal(err)
		}
	}
	p.eng.RunUntil(5 * sim.Millisecond)
	recvd := p.events(p.evB, gmproto.EvReceived)
	if len(recvd) != 3 {
		t.Fatalf("received %d", len(recvd))
	}
	for i, ev := range recvd {
		if ev.Seq != uint32(i+1) {
			t.Errorf("seq[%d] = %d", i, ev.Seq)
		}
	}
}

func TestRestoreRxSeqsSuppressesDuplicates(t *testing.T) {
	p := newPair(t, ModeFTGM)
	p.openPorts(1)
	if err := p.b.HostPostRecvToken(1, recvTok(64)); err != nil {
		t.Fatal(err)
	}
	// Simulate a recovered receiver that already committed seq 5 on stream
	// (node 1, port 1).
	p.b.RestoreRxSeqs(map[gmproto.StreamID]uint32{{Node: 1, Port: 1, Prio: gmproto.PriorityLow}: 5})
	tok := sendTok(2, 1, []byte("dup"))
	tok.Seq, tok.HasSeq = 5, true
	if err := p.a.HostPostSend(tok); err != nil {
		t.Fatal(err)
	}
	p.eng.RunUntil(5 * sim.Millisecond)
	if len(p.events(p.evB, gmproto.EvReceived)) != 0 {
		t.Fatal("duplicate delivered after RestoreRxSeqs")
	}
	if p.b.Stats().DupDropped == 0 {
		t.Error("DupDropped = 0")
	}
	// The duplicate is re-ACKed so the sender completes.
	if len(p.events(p.evA, gmproto.EvSent)) != 1 {
		t.Error("sender did not get its token back")
	}
}

func TestAlarm(t *testing.T) {
	p := newPair(t, ModeGM)
	p.openPorts(1)
	p.a.HostSetAlarm(1, 3*sim.Millisecond)
	p.eng.RunUntil(2 * sim.Millisecond)
	if len(p.events(p.evA, gmproto.EvAlarm)) != 0 {
		t.Fatal("alarm fired early")
	}
	p.eng.RunUntil(5 * sim.Millisecond)
	if len(p.events(p.evA, gmproto.EvAlarm)) != 1 {
		t.Fatal("alarm did not fire")
	}
}

func TestScoutReplyMapping(t *testing.T) {
	p := newPair(t, ModeGM)
	p.b.SetUID(0xBBBB)
	var replies [][]byte
	p.a.SetMapSink(func(payload []byte) { replies = append(replies, payload) })
	scout := gmproto.ScoutPayload{Fwd: []byte{0x01}}
	p.a.RawTransmit([]byte{0x01}, scout.Encode())
	p.eng.RunUntil(1 * sim.Millisecond)
	if len(replies) != 1 {
		t.Fatalf("replies = %d, want 1", len(replies))
	}
	r, err := gmproto.DecodeReply(replies[0])
	if err != nil {
		t.Fatal(err)
	}
	if r.UID != 0xBBBB || !bytes.Equal(r.Fwd, []byte{0x01}) {
		t.Errorf("reply = %+v", r)
	}
}

func TestMapConfigInstalls(t *testing.T) {
	p := newPair(t, ModeGM)
	cfgPayload := gmproto.ConfigPayload{
		ID:     7,
		Routes: map[gmproto.NodeID][]byte{1: {0xFF}, 3: {0x02}},
	}
	p.a.RawTransmit([]byte{0x01}, cfgPayload.Encode()) // A -> B
	p.eng.RunUntil(1 * sim.Millisecond)
	if p.b.NodeID() != 7 {
		t.Errorf("NodeID = %d, want 7", p.b.NodeID())
	}
	routes := p.b.Routes()
	if len(routes) != 2 || !bytes.Equal(routes[1], []byte{0xFF}) {
		t.Errorf("routes = %v", routes)
	}
}

func TestLanaiPerMessageUtilization(t *testing.T) {
	// Table 2: LANai occupancy per small message is ~6.0 µs for GM and
	// ~6.8 µs for FTGM (sender + receiver combined).
	measure := func(mode Mode) float64 {
		p := newPair(t, mode)
		p.openPorts(1)
		const n = 100
		for i := 0; i < n; i++ {
			if err := p.b.HostPostRecvToken(1, recvTok(64)); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < n; i++ {
			tok := sendTok(2, 1, []byte{byte(i)})
			if mode == ModeFTGM {
				tok.Seq, tok.HasSeq = uint32(i+1), true
			}
			if err := p.a.HostPostSend(tok); err != nil {
				t.Fatal(err)
			}
		}
		p.eng.RunUntil(100 * sim.Millisecond)
		if got := len(p.events(p.evB, gmproto.EvReceived)); got != n {
			t.Fatalf("%v: received %d/%d", mode, got, n)
		}
		busy := p.a.Chip().Stats().ExecBusy + p.b.Chip().Stats().ExecBusy
		// Subtract L_timer housekeeping, which is not per-message work.
		lt := sim.Duration(p.a.Stats().LTimerRuns+p.b.Stats().LTimerRuns) * DefaultConfig().LTimerProc
		return (busy - lt).Micros() / n
	}
	gm := measure(ModeGM)
	ftgm := measure(ModeFTGM)
	if gm < 5.0 || gm > 7.5 {
		t.Errorf("GM LANai util per msg = %.2f us, want ~6.0", gm)
	}
	if ftgm < gm+0.5 || ftgm > gm+1.5 {
		t.Errorf("FTGM LANai util per msg = %.2f us, want ~%.2f+0.8", ftgm, gm)
	}
}
