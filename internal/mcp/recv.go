package mcp

import (
	"repro/internal/fabric"
	"repro/internal/gmproto"
	"repro/internal/sim"
)

// rxStream is the receiver side of one stream. Two sequence marks matter:
//
//   - arrivedSeq: the highest in-order message that has fully arrived. It
//     governs accept/duplicate/NACK decisions, so later messages keep
//     flowing while earlier ones are still being DMAed — FTGM delays the
//     ACK, not acceptance ("several packets ... in-flight at the same
//     time", §5.1).
//   - committedSeq: the highest message whose bytes and event record are in
//     host memory. FTGM ACKs carry this value (the delayed commit point of
//     §4.1); stock GM ACKs carry arrivedSeq (the Figure 5 vulnerability).
type rxStream struct {
	id           gmproto.StreamID // map key, carried for journal undo records
	arrivedSeq   uint32
	committedSeq uint32
	partial      *partialMsg

	// Speculation journaling (sim spec.go, DESIGN.md §16).
	specMark uint64
	shadow   rxStreamShadow
}

// ackValue is the cumulative sequence number this mode may safely ACK.
func (rs *rxStream) ackValue(mode Mode) uint32 {
	if mode == ModeFTGM {
		return rs.committedSeq
	}
	return rs.arrivedSeq
}

type partialMsg struct {
	hdr       gmproto.DataHeader
	buf       []byte
	arrived   uint32
	dmaDone   uint32
	tok       gmproto.RecvToken // the consumed receive token (zero if directed)
	committed bool
	directed  bool // deposit into registered memory; no token, no event

	// Speculation journaling (sim spec.go, DESIGN.md §16).
	specMark uint64
	shadow   partialShadow
}

// trackService records custody of a packet whose handler closure sits on
// the processor's Exec queue: a card reset wipes that queue without running
// the closures, and Shutdown/LoadAndStart must release what they held.
func (m *MCP) trackService(pkt *fabric.Packet) { m.inService = append(m.inService, pkt) }

// finishService releases a packet whose handler has run and drops custody.
func (m *MCP) finishService(pkt *fabric.Packet) {
	m.specTouch()
	for i, p := range m.inService {
		if p == pkt {
			m.inService = append(m.inService[:i], m.inService[i+1:]...)
			break
		}
	}
	pkt.ReleaseSpec(m.eng)
}

// serviceRecvRing drains the packet interface's ring one packet per
// processor slot. Ring packets are owned by this service loop: every path
// below — early drop or handler — releases the packet back to the arena
// once its bytes are no longer needed (for DATA fragments, after the copy
// into the host receive buffer; the model's DMA-complete point).
func (m *MCP) serviceRecvRing() {
	pkt := m.chip.PopRecv()
	if pkt == nil {
		return
	}
	m.specTouch()
	if len(pkt.Route) != 0 {
		// Route bytes left over at an interface: the packet was launched
		// with a route that does not terminate here (a mapper scout probing
		// past a NIC, or a corrupted route). Hardware discards it.
		m.stats.MisroutedDrops++
		pkt.ReleaseSpec(m.eng)
		m.chip.Exec(0, m.ringFn)
		return
	}
	if !pkt.CRCOk() {
		// Link-level corruption: GM silently drops; the sender's
		// Go-Back-N recovers (§2).
		m.stats.CorruptDropped++
		pkt.ReleaseSpec(m.eng)
		m.chip.Exec(0, m.ringFn)
		return
	}
	t, err := gmproto.PeekType(pkt.Payload)
	if err != nil {
		m.stats.BadHeaderDrops++
		pkt.ReleaseSpec(m.eng)
		m.chip.Exec(0, m.ringFn)
		return
	}
	// Handlers are queued through the svc ring: the decoded header waits in
	// a plain struct and one cached callback per item replaces a captured
	// closure per packet (the Exec queue keeps them aligned in FIFO order).
	switch t {
	case gmproto.PTData:
		h, frag, err := gmproto.DecodeData(pkt.Payload)
		if err != nil {
			m.stats.BadHeaderDrops++
			pkt.ReleaseSpec(m.eng)
			m.chip.Exec(0, m.ringFn)
			return
		}
		m.trackService(pkt)
		m.pushSvc(svcItem{kind: svcData, dh: h, frag: frag, pkt: pkt}, m.cfg.RecvProcA)
	case gmproto.PTAck:
		h, err := gmproto.DecodeAck(pkt.Payload)
		if err != nil {
			m.stats.BadHeaderDrops++
			pkt.ReleaseSpec(m.eng)
			m.chip.Exec(0, m.ringFn)
			return
		}
		pkt.ReleaseSpec(m.eng) // header fully decoded; nothing references the bytes
		m.pushSvc(svcItem{kind: svcAck, ah: h}, m.cfg.AckProc)
	case gmproto.PTNack:
		h, err := gmproto.DecodeAck(pkt.Payload)
		if err != nil {
			m.stats.BadHeaderDrops++
			pkt.ReleaseSpec(m.eng)
			m.chip.Exec(0, m.ringFn)
			return
		}
		pkt.ReleaseSpec(m.eng)
		m.pushSvc(svcItem{kind: svcNack, ah: h}, m.cfg.AckProc)
	case gmproto.PTMapScout, gmproto.PTMapReply, gmproto.PTMapConfig, gmproto.PTGossip:
		m.trackService(pkt)
		m.pushSvc(svcItem{kind: svcMap, pt: t, pkt: pkt}, m.cfg.AckProc)
	default:
		m.stats.BadHeaderDrops++
		pkt.ReleaseSpec(m.eng)
		m.chip.Exec(0, m.ringFn)
	}
}

// pushSvc queues a decoded packet for its handler slot. serviceRecvRing
// only runs on the processor, so the chip is running and the Exec is never
// dropped — the ring and the queued callbacks stay 1:1.
func (m *MCP) pushSvc(it svcItem, cost sim.Duration) {
	if m.svcHead > 0 && m.svcHead == len(m.svcQ) {
		m.svcQ = m.svcQ[:0]
		m.svcHead = 0
	}
	m.svcQ = append(m.svcQ, it)
	m.chip.Exec(cost, m.svcFn)
}

// handleData processes one arriving DATA fragment: sequence check against
// the stream, reassembly, per-fragment DMA to the user buffer, and the
// mode-dependent commit/ACK point.
func (m *MCP) handleData(h gmproto.DataHeader, frag []byte) {
	m.stats.FragmentsRecvd++
	if h.Dst != m.nodeID {
		m.stats.MisroutedDrops++
		return
	}
	// Defensive validation: headers can arrive corrupted-but-CRC-valid
	// when the damage predates the CRC seal.
	if !h.Prio.Valid() || h.MsgLen > m.cfg.MaxMsgSize ||
		uint64(h.Offset)+uint64(len(frag)) > uint64(h.MsgLen) ||
		(h.MsgLen > 0 && len(frag) == 0) {
		m.stats.BadHeaderDrops++
		return
	}
	ps := m.port(h.DstPort)
	if ps == nil || !ps.open {
		m.stats.ClosedPortDrops++
		return
	}
	m.touchPort(ps)

	streamPort := h.SrcPort
	if m.mode == ModeGM {
		streamPort = gmproto.ConnectionPort
	}
	id := gmproto.StreamID{Node: h.Src, Port: streamPort, Prio: h.Prio}
	rs, known := m.rx[id]
	if !known {
		// First contact on this stream. Mid-message fragments cannot
		// establish a stream; the sender's Go-Back-N resends the whole
		// message.
		if h.Offset != 0 {
			m.stats.BadHeaderDrops++
			return
		}
		if m.mode == ModeFTGM {
			// FTGM sequence spaces live in host memory, survive MCP
			// reloads, and always start at 1, so an unknown stream is
			// either genuine first contact (Seq 1) or a reloaded MCP
			// seeing a mid-window retransmit before the FAULT_DETECTED
			// handler has uploaded the ACK table (§4.4). Adopting a
			// mid-stream number here would skip — and then dup-ACK away —
			// the sender's unacknowledged window, so the stream starts at
			// zero and anything later is NACKed until the restore lands.
			rs = &rxStream{id: id}
		} else {
			// Stock GM is connectionless with MCP-generated sequence
			// numbers: the receiver synchronizes to the sender's current
			// number (connection establishment is implicit).
			rs = &rxStream{id: id, arrivedSeq: h.Seq - 1, committedSeq: h.Seq - 1}
		}
		m.rx[id] = rs
		m.eng.SpecUndo(rxMapUndoInsert, m.rx, rs, 0, 0)
	}
	m.touchRx(rs)
	expected := rs.arrivedSeq + 1

	switch {
	case h.Seq <= rs.arrivedSeq:
		// Duplicate of a message already held: discard, and re-ACK the
		// commit mark once per message so the sender stops resending
		// (§3.1.1).
		m.stats.DupDropped++
		if h.Offset == 0 {
			m.sendControl(gmproto.AckHeader{
				Src: m.nodeID, Dst: h.Src, SrcPort: streamPort, Prio: h.Prio,
				AckSeq: rs.ackValue(m.mode),
			})
		}
		return
	case h.Seq > expected:
		// Out of order: NACK with the expected sequence number so the
		// sender goes back (§3.1.1).
		m.stats.OutOfOrderNack++
		if h.Offset == 0 {
			m.sendControl(gmproto.AckHeader{
				Src: m.nodeID, Dst: h.Src, SrcPort: streamPort, Prio: h.Prio,
				AckSeq: expected, Nack: true,
			})
		}
		return
	}

	// h.Seq == expected: fragment of the message being assembled.
	p := rs.partial
	if p != nil && (p.hdr.MsgID != h.MsgID || p.hdr.Seq != h.Seq) {
		// The sender restarted this message (e.g. Go-Back-N rewound mid
		// message); restart reassembly.
		if !p.directed {
			m.returnRecvToken(ps, p)
		}
		p = nil
	}
	if p == nil {
		if h.Directed {
			// Directed send: deposit into the registered region, no
			// receive token, no event. Out-of-bounds deposits are
			// protocol violations and are dropped.
			region, ok := ps.regions[h.RegionID]
			if !ok || uint64(h.RemoteOffset)+uint64(h.MsgLen) > uint64(len(region)) {
				m.stats.BadHeaderDrops++
				return
			}
			p = m.getPartial()
			p.hdr = h
			p.buf = region[h.RemoteOffset : h.RemoteOffset+h.MsgLen]
			p.directed = true
			rs.partial = p
		} else {
			tok, ok := m.takeRecvToken(ps, h.Prio, h.MsgLen)
			if !ok {
				// No receive buffer: drop; the sender's timeout will retry,
				// and the process learns it is starving the port.
				m.stats.NoBufferDrops++
				if ps.sink != nil && h.Offset == 0 {
					m.postEvent(ps.sink, gmproto.Event{
						Type: gmproto.EvNoRecvBuffer, Port: h.DstPort,
						Src: h.Src, SrcPort: h.SrcPort,
					})
				}
				return
			}
			// Reassemble straight into the token's host buffer: the message
			// crosses from wire packet to application memory with one copy
			// and no allocation. Tokens posted without a buffer (direct-MCP
			// tests) fall back to allocating at delivery.
			buf := tok.Buf
			if buf != nil {
				buf = buf[:h.MsgLen]
			} else {
				buf = make([]byte, h.MsgLen)
			}
			p = m.getPartial()
			p.hdr, p.buf, p.tok = h, buf, tok
			rs.partial = p
		}
	}
	// The partial may have been created in an earlier span; its header
	// fields need journaling before mutation. The buffer CONTENT is host
	// memory and is deliberately not journaled (see partialShadow).
	m.touchPartial(p)
	copy(p.buf[h.Offset:], frag)
	p.arrived += uint32(len(frag))

	if p.arrived >= p.hdr.MsgLen {
		// Message fully arrived: the stream accepts the next one.
		rs.arrivedSeq = h.Seq
		rs.partial = nil
		if m.mode == ModeGM || m.cfg.ImmediateAck {
			// Stock GM commit point: ACK as soon as the message has fully
			// arrived, before the DMA into the user buffer (§3.1.2). This
			// is the lost-message window of Figure 5. (FTGM reaches this
			// path only under the ImmediateAck ablation.)
			m.sendControl(gmproto.AckHeader{
				Src: m.nodeID, Dst: h.Src, SrcPort: streamPort, Prio: h.Prio, AckSeq: h.Seq,
			})
		}
	}

	// Per-fragment DMA into the pinned user buffer; fragments of one
	// message pipeline through the DMA engine (§5.1). The completion record
	// waits in the commit ring; DMA completions fire in issue order, so the
	// cached callback pops the matching record without a per-fragment
	// closure.
	n := len(frag)
	if n == 0 {
		n = 1 // zero-length message still costs a descriptor write
	}
	if m.commitHead > 0 && m.commitHead == len(m.commitQ) {
		m.commitQ = m.commitQ[:0]
		m.commitHead = 0
	}
	m.commitQ = append(m.commitQ, dmaCommit{ps: ps, rs: rs, id: id, p: p, n: uint32(len(frag))})
	m.chip.HostDMA(n, m.commitFn)
}

// maybeCommit delivers the message to the host once every byte has both
// arrived and been DMAed. Commit order matters for fault tolerance: the
// event (with its sequence number) reaches host memory first, then the ACK
// is released under FTGM — so a hang between the two can only cause a
// retransmission, never a loss (§4.1).
func (m *MCP) maybeCommit(ps *portState, rs *rxStream, id gmproto.StreamID, p *partialMsg) {
	if p.committed || p.arrived < p.hdr.MsgLen || p.dmaDone < p.hdr.MsgLen {
		return
	}
	p.committed = true
	proc := m.cfg.RecvProcB
	if m.mode == ModeFTGM {
		proc += m.cfg.FTGMRecvExtra
	}
	it := deliverItem{
		ps: ps, rs: rs,
		src: p.hdr.Src, port: id.Port, prio: id.Prio,
		seq: p.hdr.Seq, directed: p.directed,
	}
	if p.directed {
		// Library-internal commit record: under FTGM it is DMAed to the
		// host so the §4.1 ACK table learns the deposit's sequence number
		// before the ACK leaves — the deposit becomes part of the
		// checkpointable recovery anchor.
		it.ev = gmproto.Event{
			Type:     gmproto.EvDirectedDeposit,
			Port:     p.hdr.DstPort,
			Src:      p.hdr.Src,
			SrcPort:  p.hdr.SrcPort,
			Prio:     p.hdr.Prio,
			Seq:      p.hdr.Seq,
			RegionID: p.hdr.RegionID,
		}
	} else {
		it.ev = gmproto.Event{
			Type:    gmproto.EvReceived,
			Port:    p.hdr.DstPort,
			Src:     p.hdr.Src,
			SrcPort: p.hdr.SrcPort,
			Prio:    p.hdr.Prio,
			Seq:     p.hdr.Seq,
			TokenID: p.tok.ID,
			Data:    p.buf,
		}
	}
	// The DMA pop that triggered this commit was the last reference to the
	// reassembly record: every fragment completion has been consumed
	// (dmaDone just reached MsgLen) and rs.partial moved on when the final
	// fragment arrived, so the record recycles before delivery even runs.
	m.freePartial(p)
	if m.deliverHead > 0 && m.deliverHead == len(m.deliverQ) {
		m.deliverQ = m.deliverQ[:0]
		m.deliverHead = 0
	}
	m.deliverQ = append(m.deliverQ, it)
	m.chip.Exec(proc, m.deliverFn)
}

// takeRecvToken reserves the first receive token matching the message's
// priority and size. The real MCP hashes by size class; the linear scan is
// behaviorally identical.
func (m *MCP) takeRecvToken(ps *portState, prio gmproto.Priority, size uint32) (gmproto.RecvToken, bool) {
	for i, tok := range ps.recvTokens {
		if tok.Prio == prio && tok.Size >= size {
			ps.recvTokens = append(ps.recvTokens[:i], ps.recvTokens[i+1:]...)
			return tok, true
		}
	}
	return gmproto.RecvToken{}, false
}

// returnRecvToken puts an abandoned reassembly's token back, buffer and
// all; the restarted message reuses it.
func (m *MCP) returnRecvToken(ps *portState, p *partialMsg) {
	ps.recvTokens = append(ps.recvTokens, p.tok)
}
