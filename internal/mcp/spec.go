package mcp

// Speculation journaling for the MCP (the sim spec.go undo-journal contract,
// DESIGN.md §16). The MCP is the densest mutable state on a node domain, so
// it checkpoints at several granularities rather than as one deep copy:
//
//   - one core saver for the scalars, the pending-work rings (live regions,
//     rebuilt canonically at head 0 on rollback), the container headers and
//     the record pools;
//   - per-stream / per-message / per-reassembly / per-port savers, so a span
//     that brushes one stream does not copy them all;
//   - raw undo records for in-place map inserts and deletes. The records
//     carry the map value itself (maps are pointer-shaped, so boxing one
//     into an interface allocates nothing) rather than the MCP field,
//     because a LoadAndStart later in the same span may replace the field
//     wholesale — the undo must edit the map it recorded, and the core
//     saver separately restores the field.
//
// Touch discipline: every externally reachable mutating entry point — host
// API calls, ISR/timer callbacks, dispatch callbacks, the retransmission
// timer body — touches the core and whatever fine-grained objects it
// mutates before the first write. Internal helpers rely on their callers'
// touches only where every caller is enumerated here; elsewhere they touch
// redundantly (a touch after the first is one pointer compare).

import (
	"repro/internal/fabric"
	"repro/internal/gmproto"
	"repro/internal/sim"
)

// mcpShadow is the core restore image.
type mcpShadow struct {
	nodeID           gmproto.NodeID
	gen              uint64
	nextMsgID        uint32
	pageTableEntries int
	recvScheduled    bool
	sendScheduled    bool
	adoptNackSeq     bool
	corruptNextSend  int
	loaded           bool
	stats            Stats

	// Saved by reference: wholesale replacement (LoadAndStart, UploadRoutes)
	// is undone by restoring the pointer; in-place inserts/deletes are
	// journaled as raw records at the mutation site.
	routes    map[gmproto.NodeID][]byte
	tx        map[gmproto.StreamID]*txStream
	rx        map[gmproto.StreamID]*rxStream
	deadPeers map[gmproto.NodeID]bool

	ports     [gmproto.MaxPorts]*portState
	alarms    []alarmReq
	inService []*fabric.Packet

	svcQ     []svcItem
	commitQ  []dmaCommit
	ctrlQ    []ctrlItem
	evQ      []evItem
	rawQ     []*fabric.Packet
	deliverQ []deliverItem
	edmaQ    []deliverItem

	msgPool []*txMsg
	pmPool  []*partialMsg
}

func (m *MCP) specTouch() { m.eng.SpecTouch(&m.specMark, m) }

func (m *MCP) touchTx(s *txStream)        { m.eng.SpecTouch(&s.specMark, s) }
func (m *MCP) touchRx(rs *rxStream)       { m.eng.SpecTouch(&rs.specMark, rs) }
func (m *MCP) touchMsg(msg *txMsg)        { m.eng.SpecTouch(&msg.specMark, msg) }
func (m *MCP) touchPort(ps *portState)    { m.eng.SpecTouch(&ps.specMark, ps) }
func (m *MCP) touchPartial(p *partialMsg) { m.eng.SpecTouch(&p.specMark, p) }

// SpecSave / SpecRestore implement sim.SpecSaver for the MCP core.
func (m *MCP) SpecSave() {
	sh := &m.shadow
	sh.nodeID, sh.gen, sh.nextMsgID = m.nodeID, m.gen, m.nextMsgID
	sh.pageTableEntries = m.pageTableEntries
	sh.recvScheduled, sh.sendScheduled = m.recvScheduled, m.sendScheduled
	sh.adoptNackSeq, sh.corruptNextSend, sh.loaded = m.adoptNackSeq, m.corruptNextSend, m.loaded
	sh.stats = m.stats
	sh.routes, sh.tx, sh.rx, sh.deadPeers = m.routes, m.tx, m.rx, m.deadPeers
	sh.ports = m.ports
	sh.alarms = append(sh.alarms[:0], m.alarms...)
	sh.inService = append(sh.inService[:0], m.inService...)
	sh.svcQ = append(sh.svcQ[:0], m.svcQ[m.svcHead:]...)
	sh.commitQ = append(sh.commitQ[:0], m.commitQ[m.commitHead:]...)
	sh.ctrlQ = append(sh.ctrlQ[:0], m.ctrlQ[m.ctrlHead:]...)
	sh.evQ = append(sh.evQ[:0], m.evQ[m.evHead:]...)
	sh.rawQ = append(sh.rawQ[:0], m.rawQ[m.rawHead:]...)
	sh.deliverQ = append(sh.deliverQ[:0], m.deliverQ[m.deliverHead:]...)
	sh.edmaQ = append(sh.edmaQ[:0], m.edmaQ[m.edmaHead:]...)
	sh.msgPool = append(sh.msgPool[:0], m.msgPool...)
	sh.pmPool = append(sh.pmPool[:0], m.pmPool...)
}

func (m *MCP) SpecRestore() {
	sh := &m.shadow
	m.nodeID, m.gen, m.nextMsgID = sh.nodeID, sh.gen, sh.nextMsgID
	m.pageTableEntries = sh.pageTableEntries
	m.recvScheduled, m.sendScheduled = sh.recvScheduled, sh.sendScheduled
	m.adoptNackSeq, m.corruptNextSend, m.loaded = sh.adoptNackSeq, sh.corruptNextSend, sh.loaded
	m.stats = sh.stats
	m.routes, m.tx, m.rx, m.deadPeers = sh.routes, sh.tx, sh.rx, sh.deadPeers
	m.ports = sh.ports
	m.alarms = append(m.alarms[:0], sh.alarms...)
	// Zero stale tails before the rebuild so retained backing arrays cannot
	// pin packets or host buffers, then rebuild each ring at head 0. Slot
	// positions are unobservable (only pop order matters), so the canonical
	// shape replays bit-for-bit.
	for i := len(sh.inService); i < len(m.inService); i++ {
		m.inService[i] = nil
	}
	m.inService = append(m.inService[:0], sh.inService...)
	for i := len(sh.svcQ); i < len(m.svcQ); i++ {
		m.svcQ[i] = svcItem{}
	}
	m.svcQ, m.svcHead = append(m.svcQ[:0], sh.svcQ...), 0
	for i := len(sh.commitQ); i < len(m.commitQ); i++ {
		m.commitQ[i] = dmaCommit{}
	}
	m.commitQ, m.commitHead = append(m.commitQ[:0], sh.commitQ...), 0
	for i := len(sh.ctrlQ); i < len(m.ctrlQ); i++ {
		m.ctrlQ[i] = ctrlItem{}
	}
	m.ctrlQ, m.ctrlHead = append(m.ctrlQ[:0], sh.ctrlQ...), 0
	for i := len(sh.evQ); i < len(m.evQ); i++ {
		m.evQ[i] = evItem{}
	}
	m.evQ, m.evHead = append(m.evQ[:0], sh.evQ...), 0
	for i := len(sh.rawQ); i < len(m.rawQ); i++ {
		m.rawQ[i] = nil
	}
	m.rawQ, m.rawHead = append(m.rawQ[:0], sh.rawQ...), 0
	for i := len(sh.deliverQ); i < len(m.deliverQ); i++ {
		m.deliverQ[i] = deliverItem{}
	}
	m.deliverQ, m.deliverHead = append(m.deliverQ[:0], sh.deliverQ...), 0
	for i := len(sh.edmaQ); i < len(m.edmaQ); i++ {
		m.edmaQ[i] = deliverItem{}
	}
	m.edmaQ, m.edmaHead = append(m.edmaQ[:0], sh.edmaQ...), 0
	for i := len(sh.msgPool); i < len(m.msgPool); i++ {
		m.msgPool[i] = nil
	}
	m.msgPool = append(m.msgPool[:0], sh.msgPool...)
	for i := len(sh.pmPool); i < len(m.pmPool); i++ {
		m.pmPool[i] = nil
	}
	m.pmPool = append(m.pmPool[:0], sh.pmPool...)
}

// --- per-object shadows ---

type txStreamShadow struct {
	nextSeq                                   uint32
	window                                    []*txMsg
	rtx                                       *sim.Event
	stalls                                    int
	txBusy, needSort, queued                  bool
	cur                                       *txMsg
	curIsRtx                                  bool
	curTotal, curNfrag, curFrag, curLo, curHi int
	curRoute                                  []byte
	rtxGen                                    uint64
	rtxAt                                     sim.Time
	nfailed                                   int
}

func (s *txStream) SpecSave() {
	sh := &s.shadow
	sh.nextSeq, sh.rtx, sh.stalls = s.nextSeq, s.rtx, s.stalls
	sh.txBusy, sh.needSort, sh.queued = s.txBusy, s.needSort, s.queued
	sh.cur, sh.curIsRtx = s.cur, s.curIsRtx
	sh.curTotal, sh.curNfrag, sh.curFrag = s.curTotal, s.curNfrag, s.curFrag
	sh.curLo, sh.curHi = s.curLo, s.curHi
	sh.curRoute, sh.rtxGen = s.curRoute, s.rtxGen
	sh.rtxAt, sh.nfailed = s.rtxAt, s.nfailed
	sh.window = append(sh.window[:0], s.window...)
}

func (s *txStream) SpecRestore() {
	sh := &s.shadow
	s.nextSeq, s.rtx, s.stalls = sh.nextSeq, sh.rtx, sh.stalls
	s.txBusy, s.needSort, s.queued = sh.txBusy, sh.needSort, sh.queued
	s.cur, s.curIsRtx = sh.cur, sh.curIsRtx
	s.curTotal, s.curNfrag, s.curFrag = sh.curTotal, sh.curNfrag, sh.curFrag
	s.curLo, s.curHi = sh.curLo, sh.curHi
	s.curRoute, s.rtxGen = sh.curRoute, sh.rtxGen
	s.rtxAt, s.nfailed = sh.rtxAt, sh.nfailed
	for i := len(sh.window); i < len(s.window); i++ {
		s.window[i] = nil
	}
	s.window = append(s.window[:0], sh.window...)
}

type txMsgShadow struct {
	tok                                gmproto.SendToken
	seq, msgID                         uint32
	inFlight, sending, needRtx, failed bool
}

func (msg *txMsg) SpecSave() {
	msg.shadow = txMsgShadow{tok: msg.tok, seq: msg.seq, msgID: msg.msgID,
		inFlight: msg.inFlight, sending: msg.sending, needRtx: msg.needRtx, failed: msg.failed}
}

func (msg *txMsg) SpecRestore() {
	sh := &msg.shadow
	msg.tok, msg.seq, msg.msgID = sh.tok, sh.seq, sh.msgID
	msg.inFlight, msg.sending, msg.needRtx, msg.failed = sh.inFlight, sh.sending, sh.needRtx, sh.failed
}

type rxStreamShadow struct {
	arrivedSeq, committedSeq uint32
	partial                  *partialMsg
}

func (rs *rxStream) SpecSave() {
	rs.shadow = rxStreamShadow{arrivedSeq: rs.arrivedSeq, committedSeq: rs.committedSeq, partial: rs.partial}
}

func (rs *rxStream) SpecRestore() {
	rs.arrivedSeq, rs.committedSeq, rs.partial = rs.shadow.arrivedSeq, rs.shadow.committedSeq, rs.shadow.partial
}

// partialShadow journals the reassembly record's header fields only. The
// buffer CONTENT is host memory and is deliberately not journaled: a rolled
// back fragment copy leaves bytes in the user buffer, but every read of
// them is gated on delivery events that roll back with the span, and the
// bit-for-bit replay re-copies the identical fragment (DESIGN.md §16).
type partialShadow struct {
	hdr                 gmproto.DataHeader
	buf                 []byte
	arrived, dmaDone    uint32
	tok                 gmproto.RecvToken
	committed, directed bool
}

func (p *partialMsg) SpecSave() {
	p.shadow = partialShadow{hdr: p.hdr, buf: p.buf, arrived: p.arrived, dmaDone: p.dmaDone,
		tok: p.tok, committed: p.committed, directed: p.directed}
}

func (p *partialMsg) SpecRestore() {
	sh := &p.shadow
	p.hdr, p.buf, p.arrived, p.dmaDone = sh.hdr, sh.buf, sh.arrived, sh.dmaDone
	p.tok, p.committed, p.directed = sh.tok, sh.committed, sh.directed
}

type portShadow struct {
	open       bool
	frozen     bool
	sendQ      []gmproto.SendToken
	recvTokens []gmproto.RecvToken
	frozenQ    []deliverItem
	sink       EventSink
	regions    map[uint32][]byte
}

func (ps *portState) SpecSave() {
	sh := &ps.shadow
	sh.open, sh.frozen = ps.open, ps.frozen
	sh.sink, sh.regions = ps.sink, ps.regions
	sh.sendQ = append(sh.sendQ[:0], ps.sendQ...)
	sh.recvTokens = append(sh.recvTokens[:0], ps.recvTokens...)
	sh.frozenQ = append(sh.frozenQ[:0], ps.frozenQ...)
}

func (ps *portState) SpecRestore() {
	sh := &ps.shadow
	ps.open, ps.frozen = sh.open, sh.frozen
	ps.sink, ps.regions = sh.sink, sh.regions
	for i := len(sh.sendQ); i < len(ps.sendQ); i++ {
		ps.sendQ[i] = gmproto.SendToken{}
	}
	ps.sendQ = append(ps.sendQ[:0], sh.sendQ...)
	for i := len(sh.recvTokens); i < len(ps.recvTokens); i++ {
		ps.recvTokens[i] = gmproto.RecvToken{}
	}
	ps.recvTokens = append(ps.recvTokens[:0], sh.recvTokens...)
	for i := len(sh.frozenQ); i < len(ps.frozenQ); i++ {
		ps.frozenQ[i] = deliverItem{}
	}
	ps.frozenQ = append(ps.frozenQ[:0], sh.frozenQ...)
}

// --- raw undo records for in-place map mutation ---

func txMapUndoInsert(a, b any, _, _ uint64) {
	delete(a.(map[gmproto.StreamID]*txStream), b.(*txStream).id)
}

func txMapUndoDelete(a, b any, _, _ uint64) {
	s := b.(*txStream)
	a.(map[gmproto.StreamID]*txStream)[s.id] = s
}

func rxMapUndoInsert(a, b any, _, _ uint64) {
	delete(a.(map[gmproto.StreamID]*rxStream), b.(*rxStream).id)
}

func rxMapUndoDelete(a, b any, _, _ uint64) {
	s := b.(*rxStream)
	a.(map[gmproto.StreamID]*rxStream)[s.id] = s
}

func deadUndoInsert(a, _ any, v1, _ uint64) {
	delete(a.(map[gmproto.NodeID]bool), gmproto.NodeID(v1))
}

func deadUndoDelete(a, _ any, v1, _ uint64) {
	a.(map[gmproto.NodeID]bool)[gmproto.NodeID(v1)] = true
}

// regionUndoSet reverts ps.regions[v1]: v2==1 restores the previous buffer
// (boxed in b — a rare-path allocation, region registration is port setup),
// v2==0 removes the entry.
func regionUndoSet(a, b any, v1, v2 uint64) {
	mp := a.(map[uint32][]byte)
	if v2 == 0 {
		delete(mp, uint32(v1))
	} else {
		mp[uint32(v1)] = b.([]byte)
	}
}
