package mcp

import (
	"sort"

	"repro/internal/fabric"
	"repro/internal/gmproto"
	"repro/internal/sim"
)

// txStream is the sender side of one reliable stream: a Go-Back-N window of
// messages ordered by sequence number. In stock GM there is one stream per
// connection (remote node) and the MCP assigns sequence numbers; in FTGM
// there is one per (local port, remote node) and the host assigns them
// (§4.1).
type txStream struct {
	id      gmproto.StreamID // {remote node, local sending port}
	nextSeq uint32           // next MCP-assigned seq (GM mode); last+1
	window  []*txMsg
	rtx     *sim.Event
	// stalls counts consecutive timeout-retransmit rounds with no ACK or
	// NACK heard: ordinary loss produces control traffic, a dead path
	// produces silence. At Config.NetFaultThreshold the MCP raises a
	// NET_FAULT_SUSPECTED report to the host.
	stalls int
	// txBusy serializes messages onto the wire: fragments of one message
	// go out back to back, and the next message starts only when the
	// previous one is fully injected. Go-Back-N at message granularity
	// requires in-order arrival of message starts; the wire is serial
	// anyway, so this costs no bandwidth.
	txBusy bool
	// needSort marks that the last service round appended a token out of
	// sequence order (restored tokens interleaved with fresh sends around
	// a recovery); the window is sorted once before pumping instead of
	// shifting per insert.
	needSort bool
	// nfailed counts window messages marked failed and not yet swept, so
	// the per-pump sweep can skip the window rewrite on the (overwhelmingly
	// common) failure-free path.
	nfailed int
	// rtxAt is the Go-Back-N timer's current deadline, 0 when disarmed.
	// Re-arming stores the new deadline instead of cancel+reschedule; the
	// queued event re-arms itself on an early fire. ACK-heavy traffic
	// re-arms per message, so this keeps timer churn out of the event heap.
	rtxAt sim.Time
	// queued marks the stream as already on the serviceSendQueues touched
	// list for the current round.
	queued bool

	// Fragment pipeline state for the message currently on the wire. txBusy
	// serializes messages, so one set of fields per stream suffices; the
	// stage closures below are built once per stream and shared by every
	// fragment, replacing the three closures the pipeline used to allocate
	// per fragment. Stale stages after a reset are dropped by the chip's
	// Exec epoch check, exactly as the captured closures were.
	cur          *txMsg
	curIsRtx     bool
	curTotal     int
	curNfrag     int
	curFrag      int
	curLo, curHi int
	curRoute     []byte
	stageDMA     func() // SendProcA done -> host DMA of the fragment
	dmaDone      func() // DMA done -> SendProcB
	stageInj     func() // SendProcB done -> header build + injection

	// rtxFn is the cached retransmission-timer body; rtxGen is the MCP
	// generation it was armed under (a reload invalidates armed timers).
	rtxFn  func()
	rtxGen uint64

	// Speculation journaling (sim spec.go, DESIGN.md §16).
	specMark uint64
	shadow   txStreamShadow
}

type txMsg struct {
	tok      gmproto.SendToken
	seq      uint32
	msgID    uint32
	inFlight bool // fully transmitted at least once
	sending  bool // fragment chain in progress
	needRtx  bool // scheduled for retransmission (NACK or timeout)
	failed   bool // unroutable; swept out of the window lazily

	// Speculation journaling (sim spec.go, DESIGN.md §16).
	specMark uint64
	shadow   txMsgShadow
}

func (m *MCP) txStreamFor(id gmproto.StreamID) *txStream {
	s, ok := m.tx[id]
	if !ok {
		s = &txStream{id: id}
		s.stageDMA = func() { m.chip.HostDMA(s.curHi-s.curLo, s.dmaDone) }
		s.dmaDone = func() { m.chip.Exec(m.cfg.SendProcB, s.stageInj) }
		s.stageInj = func() { m.injectFrag(s) }
		s.rtxFn = func() {
			m.touchTx(s)
			s.rtx = nil
			if m.gen != s.rtxGen || !m.chip.Running() {
				return
			}
			if now := m.eng.Now(); s.rtxAt > now {
				// The deadline moved forward since this event was scheduled
				// (an ACK or a fresh transmission re-armed the timer): hop to
				// the current deadline instead of firing.
				s.rtx = m.eng.AfterLabel(s.rtxAt-now, "rtx", s.rtxFn)
				return
			}
			if s.rtxAt == 0 {
				return // disarmed: the window drained while this event was queued
			}
			s.rtxAt = 0
			m.retransmitWindow(s)
		}
		if m.mode == ModeGM {
			// Stock GM's MCP picks the connection's initial sequence number
			// itself; a reloaded MCP starts a fresh sequence space that has
			// nothing to do with the receiver's expectation — the root of
			// the Figure 4 duplicate. Each load uses a distinct base
			// (standing in for the real MCP's arbitrary initialization).
			s.nextSeq = uint32(m.gen) * 100000
		}
		m.tx[id] = s
		m.eng.SpecUndo(txMapUndoInsert, m.tx, s, 0, 0)
	}
	return s
}

func (m *MCP) rxStream(id gmproto.StreamID) *rxStream {
	s, ok := m.rx[id]
	if !ok {
		s = &rxStream{id: id}
		m.rx[id] = s
		m.eng.SpecUndo(rxMapUndoInsert, m.rx, s, 0, 0)
	}
	return s
}

// serviceSendQueues drains every open port's send queue into the per-stream
// windows and pumps the touched streams.
func (m *MCP) serviceSendQueues() {
	m.specTouch()
	touched := m.touched[:0] // ordered: simulation must be deterministic
	for _, ps := range m.ports {
		if ps == nil || !ps.open {
			continue
		}
		// High-priority tokens are serviced ahead of queued low-priority
		// ones (GM's two non-preemptive priority levels, §3.1): an
		// in-flight low transfer is never preempted, but a waiting one is
		// overtaken. Two passes over the queue avoid building a reordered
		// copy on every doorbell.
		for pass := 0; pass < 2; pass++ {
			for _, tok := range ps.sendQ {
				if (tok.Prio == gmproto.PriorityHigh) != (pass == 0) {
					continue
				}
				if m.deadPeers[tok.Dest] {
					m.stats.UnreachableFails++
					m.completeToken(tok, tok.Seq, gmproto.SendErrorUnreachable)
					continue
				}
				id := gmproto.StreamID{Node: tok.Dest, Port: tok.SrcPort, Prio: tok.Prio}
				if m.mode == ModeGM {
					id.Port = gmproto.ConnectionPort
				}
				s := m.txStreamFor(id)
				m.touchTx(s)
				msg := m.getTxMsg()
				msg.tok, msg.msgID = tok, m.nextMsgID
				m.nextMsgID++
				if m.mode == ModeFTGM && tok.HasSeq {
					// Host-generated sequence number travels in the token; the
					// MCP "simply uses these sequence numbers rather than
					// generating its own" (§4.1).
					msg.seq = tok.Seq
					if tok.Seq >= s.nextSeq {
						s.nextSeq = tok.Seq + 1
					}
				} else {
					s.nextSeq++
					msg.seq = s.nextSeq
				}
				// Go-Back-N requires the window sorted by sequence number,
				// and restored tokens and fresh sends can arrive interleaved
				// around a recovery — but shifting the tail on every insert is
				// quadratic in the window size. Append, note disorder, and
				// sort once per touched stream below.
				if n := len(s.window); n > 0 && s.window[n-1].seq > msg.seq {
					s.needSort = true
				}
				s.window = append(s.window, msg)
				if !s.queued {
					s.queued = true
					touched = append(touched, s)
				}
			}
		}
		// Truncate in place, dropping the token payload references so the
		// retained backing array cannot pin host buffers.
		if len(ps.sendQ) > 0 {
			m.touchPort(ps)
		}
		for i := range ps.sendQ {
			ps.sendQ[i] = gmproto.SendToken{}
		}
		ps.sendQ = ps.sendQ[:0]
	}
	for _, s := range touched {
		s.queued = false
		if s.needSort {
			w := s.window
			sort.Slice(w, func(i, j int) bool { return w[i].seq < w[j].seq })
			s.needSort = false
		}
		m.pumpStream(s)
	}
	for i := range touched {
		touched[i] = nil
	}
	m.touched = touched[:0]
}

// sweepFailed drops unroutable messages from the window, recycling their
// records (they completed with an error when they were marked). With no
// failed messages pending it is a counter check, not a window walk.
func (m *MCP) sweepFailed(s *txStream) {
	if s.nfailed == 0 {
		return
	}
	m.touchTx(s)
	s.nfailed = 0
	w := s.window[:0]
	for _, msg := range s.window {
		if !msg.failed {
			w = append(w, msg)
			continue
		}
		m.freeTxMsg(s, msg)
	}
	s.window = w
}

// pumpStream starts transmission of the first window message that needs
// the wire (never sent, or marked for retransmission), oldest first.
func (m *MCP) pumpStream(s *txStream) {
	m.touchTx(s)
	m.sweepFailed(s)
	if s.txBusy {
		return
	}
	limit := m.cfg.WindowSize
	for i, msg := range s.window {
		if i >= limit {
			break
		}
		if msg.failed || msg.sending {
			continue
		}
		if !msg.inFlight || msg.needRtx {
			s.txBusy = true
			m.transmitMsg(s, msg, msg.inFlight)
			return
		}
	}
}

// transmitMsg runs the per-fragment send pipeline: SendProcA (token decode,
// DMA setup), host DMA of the fragment into SRAM, SendProcB (send_chunk:
// header build and packet injection). Fragments of one message go back to
// back; distinct messages pipeline through the window.
func (m *MCP) transmitMsg(s *txStream, msg *txMsg, isRtx bool) {
	m.specTouch()
	m.touchTx(s)
	m.touchMsg(msg)
	route, ok := m.routes[s.id.Node]
	if !ok {
		if !m.deadPeers[s.id.Node] && isRtx {
			// An in-flight message had a route once; losing it transiently
			// (a remap just replaced the table) is not grounds for a
			// terminal drop. Park the message until the next timeout round.
			msg.needRtx = true
			s.txBusy = false
			m.armRtx(s)
			return
		}
		// No route: GM reports a failed send to the application. The
		// window slot is swept on the next pump (callers may be ranging
		// over the window right now).
		status := gmproto.SendErrorDropped
		if m.deadPeers[s.id.Node] {
			status = gmproto.SendErrorUnreachable
			m.stats.UnreachableFails++
		}
		m.completeSend(msg, status)
		msg.failed = true
		s.nfailed++
		s.txBusy = false
		m.pumpStream(s)
		return
	}
	if isRtx {
		m.stats.Retransmits++
	}
	msg.sending = true
	msg.needRtx = false
	total := len(msg.tok.Data)
	nfrag := (total + gmproto.MaxPacketPayload - 1) / gmproto.MaxPacketPayload
	if nfrag == 0 {
		nfrag = 1
	}
	s.cur = msg
	s.curIsRtx = isRtx
	s.curTotal = total
	s.curNfrag = nfrag
	s.curFrag = 0
	s.curRoute = route
	m.startFrag(s)
}

// startFrag queues SendProcA for the stream's current fragment; the cached
// stage closures then carry it through DMA and injection.
func (m *MCP) startFrag(s *txStream) {
	s.curLo = s.curFrag * gmproto.MaxPacketPayload
	s.curHi = s.curLo + gmproto.MaxPacketPayload
	if s.curHi > s.curTotal {
		s.curHi = s.curTotal
	}
	procA := m.cfg.SendProcA
	if s.curFrag == 0 && m.mode == ModeFTGM {
		procA += m.cfg.FTGMSendExtra
	}
	m.chip.Exec(procA, s.stageDMA)
}

// injectFrag is the send_chunk tail: build the fragment header, seal, and
// inject; then chain to the next fragment or finish the message.
func (m *MCP) injectFrag(s *txStream) {
	m.specTouch()
	m.touchTx(s)
	msg := s.cur
	m.touchMsg(msg)
	h := gmproto.DataHeader{
		Src:          m.nodeID,
		Dst:          s.id.Node,
		SrcPort:      msg.tok.SrcPort,
		DstPort:      msg.tok.DestPort,
		Prio:         msg.tok.Prio,
		Seq:          msg.seq,
		MsgID:        msg.msgID,
		MsgLen:       uint32(s.curTotal),
		Offset:       uint32(s.curLo),
		Directed:     msg.tok.Directed,
		RegionID:     msg.tok.RegionID,
		RemoteOffset: msg.tok.RemoteOffset,
	}
	pkt := fabric.GetPacketSpec(m.eng)
	// The route slice is interned, not copied: UploadRoutes installs fresh
	// copies per epoch and never mutates them, and switches only re-slice
	// pkt.Route, so every packet of a (stream, route-epoch) can alias one
	// backing array.
	pkt.Route = s.curRoute
	pkt.SrcLabel = m.chip.Name()
	pkt.Injected = m.eng.Now()
	h.EncodeTo(pkt.Buf(gmproto.DataHeaderSize+(s.curHi-s.curLo)), msg.tok.Data[s.curLo:s.curHi])
	switch {
	case m.corruptNextSend > 0:
		// Pre-seal fault: the bit flipped while the fragment sat in SRAM,
		// before send_chunk computed the CRC — the damage passes the
		// link-level check and reaches the application (Table 1 "Messages
		// Corrupted").
		pkt.CorruptPayload(m.corruptNextSend, false)
		pkt.SealCRC()
		m.corruptNextSend = 0
	case m.corruptNextSend < 0:
		// Post-seal (wire-level) fault: the receiver's CRC check catches it
		// and Go-Back-N retransmits.
		pkt.SealCRC()
		pkt.CorruptPayload(-m.corruptNextSend, false)
		m.corruptNextSend = 0
	default:
		pkt.SealCRC()
	}
	m.stats.FragmentsSent++
	m.chip.TransmitPacket(pkt)
	if s.curFrag+1 < s.curNfrag {
		s.curFrag++
		m.startFrag(s)
		return
	}
	msg.sending = false
	msg.inFlight = true
	if !s.curIsRtx {
		m.stats.MsgsSent++
	}
	s.cur = nil
	m.armRtx(s)
	s.txBusy = false
	m.pumpStream(s)
}

// armRtx (re)arms the stream's Go-Back-N retransmission timer. Only the
// deadline is written; if an event is already queued (necessarily at or
// before the new deadline — deadlines only move forward), it will hop to the
// stored deadline when it fires, so a re-arm never touches the event heap.
func (m *MCP) armRtx(s *txStream) {
	m.touchTx(s)
	s.rtxGen = m.gen
	s.rtxAt = m.eng.Now() + m.cfg.RtxTimeout
	if s.rtx == nil {
		s.rtx = m.eng.AfterLabel(m.cfg.RtxTimeout, "rtx", s.rtxFn)
	}
}

// retransmitWindow marks every in-flight unacknowledged message of the
// stream for resend, oldest first (Go-Back-N on timeout).
func (m *MCP) retransmitWindow(s *txStream) {
	m.specTouch()
	m.touchTx(s)
	m.sweepFailed(s)
	any := false
	for i, msg := range s.window {
		if i >= m.cfg.WindowSize {
			break
		}
		if msg.inFlight && !msg.sending {
			m.touchMsg(msg)
			msg.needRtx = true
			any = true
		}
	}
	if any {
		s.stalls++
		if t := m.cfg.NetFaultThreshold; t > 0 && s.stalls >= t {
			// Consecutive silent timeouts: the path is likely dead, not
			// lossy. Report and re-arm so a still-dead path keeps reporting
			// (the watchdog debounces on its side).
			s.stalls = 0
			m.stats.NetFaultSuspicions++
			if m.onNetFault != nil {
				m.onNetFault(s.id.Node)
			}
		}
		m.pumpStream(s)
	} else if len(s.window) > 0 {
		m.armRtx(s)
	}
}

// handleAck processes a cumulative ACK: every message with seq <= AckSeq is
// complete; its send token is passed back to the process via an EvSent
// event, which triggers the application callback (§3.1).
func (m *MCP) handleAck(h gmproto.AckHeader) {
	id := gmproto.StreamID{Node: h.Src, Port: h.SrcPort, Prio: h.Prio}
	s, ok := m.tx[id]
	if !ok {
		return
	}
	m.specTouch()
	m.touchTx(s)
	s.stalls = 0 // control traffic heard: the path is alive
	m.sweepFailed(s)
	rest := s.window[:0]
	for _, msg := range s.window {
		if msg.seq <= h.AckSeq && msg.inFlight {
			m.stats.MsgsAcked++
			m.completeSend(msg, gmproto.SendOK)
			m.freeTxMsg(s, msg)
			continue
		}
		rest = append(rest, msg)
	}
	s.window = rest
	if len(s.window) == 0 {
		// Disarm by deadline: the queued event (if any) self-clears when it
		// fires, avoiding a cancel/compact cycle per drained window.
		s.rtxAt = 0
	} else {
		m.armRtx(s)
	}
	m.pumpStream(s)
}

// handleNack processes a NACK carrying the receiver's expected sequence
// number. Messages below it are implicitly acknowledged; transmission
// restarts from the expected message (Go-Back-N).
//
// If the expected sequence number is not in the window and adoptNackSeq is
// set (a naive post-reload MCP that lost its sequence state), the pending
// messages are renumbered starting at the receiver's expectation — the
// Figure 4 behavior that delivers a duplicate message.
func (m *MCP) handleNack(h gmproto.AckHeader) {
	id := gmproto.StreamID{Node: h.Src, Port: h.SrcPort, Prio: h.Prio}
	s, ok := m.tx[id]
	if !ok {
		return
	}
	m.specTouch()
	m.touchTx(s)
	s.stalls = 0 // control traffic heard: the path is alive
	m.sweepFailed(s)
	expected := h.AckSeq
	// Implicit cumulative ACK below the expectation.
	rest := s.window[:0]
	for _, msg := range s.window {
		if msg.seq < expected && msg.inFlight {
			m.stats.MsgsAcked++
			m.completeSend(msg, gmproto.SendOK)
			m.freeTxMsg(s, msg)
			continue
		}
		rest = append(rest, msg)
	}
	s.window = rest

	found := false
	for _, msg := range s.window {
		if msg.seq == expected {
			found = true
			break
		}
	}
	if !found {
		if m.adoptNackSeq && len(s.window) > 0 {
			for i, msg := range s.window {
				m.touchMsg(msg)
				msg.seq = expected + uint32(i)
				msg.inFlight = false
			}
			s.nextSeq = expected + uint32(len(s.window))
			m.pumpStream(s)
		}
		// The expected message is not here (e.g. its token has not been
		// restored yet after a recovery): retransmitting higher sequence
		// numbers can only provoke further NACKs, so wait.
		return
	}
	for i, msg := range s.window {
		if i >= m.cfg.WindowSize {
			break
		}
		if msg.seq >= expected && msg.inFlight && !msg.sending {
			m.touchMsg(msg)
			msg.needRtx = true
		}
	}
	m.pumpStream(s)
}

// completeSend posts the EvSent/EvSendError event that returns the send
// token to the process and fires its callback.
func (m *MCP) completeSend(msg *txMsg, status gmproto.SendStatus) {
	m.completeToken(msg.tok, msg.seq, status)
}

// completeToken is completeSend for a token that never got a window slot.
func (m *MCP) completeToken(tok gmproto.SendToken, seq uint32, status gmproto.SendStatus) {
	ps := m.port(tok.SrcPort)
	if ps == nil || !ps.open || ps.sink == nil {
		return
	}
	ev := gmproto.Event{
		Port:    tok.SrcPort,
		TokenID: tok.ID,
		Seq:     seq,
		Status:  status,
	}
	if status == gmproto.SendOK {
		ev.Type = gmproto.EvSent
	} else {
		ev.Type = gmproto.EvSendError
	}
	m.postEvent(ps.sink, ev)
}

// streamIDsToward collects the stream identities involving node from ids,
// sorted — callers iterate them to post events, and event order must not
// depend on Go map iteration (the determinism contract).
func streamIDsToward(node gmproto.NodeID, ids []gmproto.StreamID) []gmproto.StreamID {
	out := ids[:0]
	for _, id := range ids {
		if id.Node == node {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Port != b.Port {
			return a.Port < b.Port
		}
		return a.Prio < b.Prio
	})
	return out
}

func txStreamIDs(m map[gmproto.StreamID]*txStream) []gmproto.StreamID {
	out := make([]gmproto.StreamID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	return out
}

func rxStreamIDs(m map[gmproto.StreamID]*rxStream) []gmproto.StreamID {
	out := make([]gmproto.StreamID, 0, len(m))
	for id := range m {
		out = append(out, id)
	}
	return out
}

// FailPeer terminally fails all pending traffic toward node and marks it
// unreachable: queued send tokens and window messages complete with
// SendErrorUnreachable, their tx streams are dropped, and later sends to
// node fail immediately — the graceful-degradation half of the network
// watchdog's verdict. ResetPeerStreams readmits the peer.
func (m *MCP) FailPeer(node gmproto.NodeID) {
	m.specTouch()
	if !m.deadPeers[node] {
		m.eng.SpecUndo(deadUndoInsert, m.deadPeers, nil, uint64(node), 0)
	}
	m.deadPeers[node] = true
	// Queued tokens that never reached a window.
	for _, ps := range m.ports {
		if ps == nil || !ps.open {
			continue
		}
		if len(ps.sendQ) > 0 {
			m.touchPort(ps)
		}
		keep := ps.sendQ[:0]
		for _, tok := range ps.sendQ {
			if tok.Dest == node {
				m.stats.UnreachableFails++
				m.completeToken(tok, tok.Seq, gmproto.SendErrorUnreachable)
				continue
			}
			keep = append(keep, tok)
		}
		ps.sendQ = keep
	}
	// Window messages, in sorted stream order for determinism.
	for _, id := range streamIDsToward(node, txStreamIDs(m.tx)) {
		s := m.tx[id]
		m.touchTx(s)
		if s.rtx != nil {
			s.rtx.Cancel()
			s.rtx = nil
		}
		for _, msg := range s.window {
			if msg.failed {
				continue
			}
			m.touchMsg(msg)
			msg.failed = true
			m.stats.UnreachableFails++
			m.completeSend(msg, gmproto.SendErrorUnreachable)
		}
		s.window = nil
		s.nfailed = 0
		s.rtxAt = 0
		delete(m.tx, id)
		m.eng.SpecUndo(txMapUndoDelete, m.tx, s, 0, 0)
	}
}

// ResetPeerStreams clears every piece of protocol state shared with node —
// tx windows, rx reassembly and sequence expectations, the unreachable mark
// — so a readmitted peer and this node meet again on fresh streams (both
// sides restart at sequence 1 via the FTGM first-contact path).
func (m *MCP) ResetPeerStreams(node gmproto.NodeID) {
	m.specTouch()
	if m.deadPeers[node] {
		m.eng.SpecUndo(deadUndoDelete, m.deadPeers, nil, uint64(node), 0)
	}
	delete(m.deadPeers, node)
	for _, id := range streamIDsToward(node, txStreamIDs(m.tx)) {
		s := m.tx[id]
		m.touchTx(s)
		if s.rtx != nil {
			s.rtx.Cancel()
			s.rtx = nil
		}
		s.rtxAt = 0
		delete(m.tx, id)
		m.eng.SpecUndo(txMapUndoDelete, m.tx, s, 0, 0)
	}
	for _, id := range streamIDsToward(node, rxStreamIDs(m.rx)) {
		rs := m.rx[id]
		delete(m.rx, id)
		m.eng.SpecUndo(rxMapUndoDelete, m.rx, rs, 0, 0)
	}
}

// PeerUnreachable reports whether node is currently marked unreachable.
func (m *MCP) PeerUnreachable(node gmproto.NodeID) bool { return m.deadPeers[node] }

// sendControl emits an ACK or NACK packet toward a node. The header and its
// route wait in the ctrl ring for the AckProc slot; the cached callback
// builds and injects the packet, so a control send allocates nothing.
func (m *MCP) sendControl(h gmproto.AckHeader) {
	m.specTouch()
	route, ok := m.routes[h.Dst]
	if !ok {
		return
	}
	if !m.chip.Running() {
		// Exec would drop the slot; don't queue an orphan record.
		return
	}
	if m.ctrlHead > 0 && m.ctrlHead == len(m.ctrlQ) {
		m.ctrlQ = m.ctrlQ[:0]
		m.ctrlHead = 0
	}
	m.ctrlQ = append(m.ctrlQ, ctrlItem{h: h, route: route})
	m.chip.Exec(m.cfg.AckProc, m.ctrlFn)
}
