// Package fault reproduces the paper's fault-injection methodology
// (§2, Table 1): transient faults are simulated by flipping a random bit in
// the machine code of the MCP's send_chunk section while it handles a send,
// and the outcome of executing the corrupted code is classified into the
// paper's failure categories. The code under test is a real program — a
// send_chunk written in the LANai-flavored ISA of internal/isa, with the
// surrounding dispatch loop, MMIO-programmed DMA/packet-interface accesses,
// and the branchy non-executed paths (high-priority, fragmentation,
// alignment fixup, error handling) whose presence is what makes roughly
// half of all flips harmless for any particular message.
//
// The package also drives the system-level consequences in the full
// discrete-event cluster: an ISA outcome of "interface hung" becomes an
// injected LANai hang, "message corrupted" becomes a pre-CRC payload flip,
// and the recovery-effectiveness experiment (§5.2) replays every hang
// against a live FTGM cluster and audits delivery.
package fault

import (
	"fmt"

	"repro/internal/isa"
)

// Memory map of the campaign machine.
const (
	// CodeOrigin is where the MCP image is assembled.
	CodeOrigin = 0x100
	// TokenAddr holds the send token the dispatch loop consumes.
	TokenAddr = 0x4000
	// TokenFlagAddr is the "send posted" doorbell word.
	TokenFlagAddr = 0x4100
	// BufAddr is the staged message payload (already SDMA'd into SRAM).
	BufAddr = 0x5000
	// RxFlagAddr is the "packet arrived" doorbell for the receive path.
	RxFlagAddr = 0x4104
	// RxPktAddr is where the packet interface deposited an arrived packet.
	RxPktAddr = 0x5C00
	// PktBufAddr is where send_chunk builds the outgoing packet.
	PktBufAddr = 0x6000
	// AckBufAddr is where recv_chunk builds the outgoing ACK.
	AckBufAddr = 0x6400
	// RouteTableAddr is the cached route table.
	RouteTableAddr = 0x7000

	// MMIODMABase is the E-bus DMA engine: +4 status (1 = idle).
	MMIODMABase = 0x8000_0000
	// MMIOPIBase is the packet interface: +0 data FIFO, +4 commit,
	// +8 status (1 = free).
	MMIOPIBase = 0x8000_0100
	// MMIOTimerBase is the interval-timer block: +0 IT0 reload.
	MMIOTimerBase = 0x8000_0300
	// MMIOHostBase is the E-bus window into host memory; only the event
	// slot at +0x100 is a legitimate target. Stray writes anywhere else in
	// the window corrupt host kernel memory (host crash).
	MMIOHostBase = 0x9000_0000
	// MMIOHostSize is the size of the host window.
	MMIOHostSize = 0x1_0000
	// HostEventOffset is the completion-event slot within the host window.
	HostEventOffset = 0x100
	// HostStatusOffset is the host-visible sent counter.
	HostStatusOffset = 0x200
	// HostDataOffset is the start of the pinned receive buffer within the
	// host window; recv_chunk DMAs arrived payloads here.
	HostDataOffset = 0x1000
	// HostDataSize is the size of the pinned receive buffer.
	HostDataSize = 0x1000

	// SRAMSize is the campaign machine's memory.
	SRAMSize = 1 << 16
)

// mcpSource is the control-program fragment under test. The section
// bracketed by send_chunk/send_chunk_end is the flip target, exactly as the
// paper selected the send_chunk section of GM's MCP. The message used by
// every trial is low-priority, short (no fragmentation) and word-aligned,
// so the high-priority, fragmentation, alignment-fixup and error paths are
// present in the section but never executed for the test send.
const mcpSource = `
; --- reset vector ------------------------------------------------------
        .org 0x0
        j start

; --- bootstrap + dispatch loop ------------------------------------------
        .org 0x100
start:
        li   sp, 0xF000          ; stack (unused by this fragment)
dispatch:
        li   r1, 0x4100          ; send token_flag
        lw   r2, 0(r1)
        beq  r2, r0, no_send     ; no send posted
        call send_chunk
        ; post the send-completion event into the host receive queue
        li   r3, 0x90000100
        li   r4, 0x600D
        sw   r4, 0(r3)
        j    dispatch            ; event-driven loop: re-check the doorbells
no_send:
        li   r1, 0x4104          ; receive doorbell
        lw   r2, 0(r1)
        beq  r2, r0, done        ; nothing arrived: idle
        call recv_chunk
        j    dispatch
done:
        ; re-arm the interval timer (L_timer housekeeping)
        li   r3, 0x80000300
        li   r4, 1400
        sw   r4, 0(r3)
        halt                     ; experiment end (the real loop never exits)

; --- send_chunk: the section under fault injection ----------------------
send_chunk:
        li   r10, 0x4000         ; token base
        lw   r11, 0(r10)         ; dest node
        lw   r12, 4(r10)         ; dest port
        lw   r13, 8(r10)         ; priority
        lw   r14, 12(r10)        ; sequence number
        lw   r15, 16(r10)        ; message length (bytes)
        lw   r16, 20(r10)        ; buffer pointer

        ; priority dispatch: high priority uses the other send queue
        addi r2, r0, 2
        beq  r13, r2, high_prio_path

        ; length check: > 4096 must be fragmented
        li   r2, 4096
        slt  r3, r2, r15
        bne  r3, r0, frag_path

        ; alignment check: unaligned buffers take the fixup path
        andi r2, r16, 3
        bne  r2, r0, align_fixup

chunk_common:
        ; wait for the E-bus DMA engine to finish staging the payload
        li   r9, 0x80000000
sdma_wait:
        lw   r2, 4(r9)
        beq  r2, r0, sdma_wait

        ; route lookup: route_table[dest]
        li   r2, 0x7000
        slli r3, r11, 2
        add  r2, r2, r3
        lw   r17, 0(r2)          ; packed route word

        ; build the packet header in pktbuf
        li   r18, 0x6000
        sw   r17, 0(r18)         ; route
        slli r2, r11, 16
        or   r2, r2, r12
        sw   r2, 4(r18)          ; dest<<16 | port
        slli r2, r13, 16
        or   r2, r2, r15
        sw   r2, 8(r18)          ; prio<<16 | len
        sw   r14, 12(r18)        ; sequence number

        ; copy payload into the packet and accumulate the checksum
        addi r19, r0, 0          ; checksum
        addi r20, r0, 0          ; offset
copy_loop:
        bge  r20, r15, copy_done
        add  r2, r16, r20
        lw   r3, 0(r2)
        add  r4, r18, r20
        sw   r3, 16(r4)
        add  r19, r19, r3
        addi r20, r20, 4
        j    copy_loop
copy_done:
        add  r2, r18, r20
        sw   r19, 16(r2)         ; checksum trailer

        ; stream the packet words into the packet-interface FIFO
        li   r21, 0x80000100     ; PI data register
pi_wait:
        lw   r2, 8(r21)          ; PI status: nonzero = interface free
        beq  r2, r0, pi_wait
        addi r20, r20, 20        ; total bytes = header 16 + payload + csum 4
        addi r22, r0, 0
pi_loop:
        bge  r22, r20, pi_done
        add  r2, r18, r22
        lw   r3, 0(r2)
        sw   r3, 0(r21)
        addi r22, r22, 4
        j    pi_loop
pi_done:
        addi r2, r0, 1
        sw   r2, 4(r21)          ; commit: inject onto the link
drain_wait:
        lw   r2, 8(r21)          ; wait for the FIFO to drain to the link
        beq  r2, r0, drain_wait

        ; bump the host-visible sent counter (E-bus write into the host's
        ; status page — address corruption here scribbles on host memory)
        li   r8, 0x90000200
        lw   r2, 0(r8)
        addi r2, r2, 1
        sw   r2, 0(r8)

        ; consume the doorbell
        li   r1, 0x4100
        sw   r0, 0(r1)
        ret

; --- paths not taken by the test message (flip mass, never executed) ----
high_prio_path:
        ; high-priority sends use their own packet staging area
        li   r2, 0x7200
        lw   r3, 0(r2)
        addi r3, r3, 1
        sw   r3, 0(r2)
        li   r18, 0x6800
        j    chunk_common

frag_path:
        ; fragment into 4 KB chunks; the remainder re-enters the common path
        li   r2, 4096
frag_loop:
        slt  r3, r15, r2
        bne  r3, r0, frag_tail
        sub  r15, r15, r2
        j    frag_loop
frag_tail:
        j    chunk_common

align_fixup:
        ; bounce the buffer to an aligned region one byte at a time
        li   r4, 0x5800
        addi r5, r0, 0
fix_loop:
        bge  r5, r15, fix_done
        add  r2, r16, r5
        lb   r3, 0(r2)
        add  r6, r4, r5
        sb   r3, 0(r6)
        addi r5, r5, 1
        j    fix_loop
fix_done:
        addi r16, r4, 0
        j    chunk_common

err_path:
        ; record the error code and give up on the send
        li   r2, 0x7500
        addi r3, r0, 0xEE
        sw   r3, 0(r2)
        ret
send_chunk_end:

; --- recv_chunk: the receive-path section (a second injection target) ---
; Arrived packet layout at 0x5C00: [0] route residue, [4] src<<16|port,
; [8] prio<<16|len, [12] seq, [16..] payload, [16+len] checksum.
recv_chunk:
        li   r10, 0x5C00         ; arrived packet
        lw   r11, 4(r10)         ; src<<16 | port
        lw   r12, 8(r10)         ; prio<<16 | len
        lw   r14, 12(r10)        ; sequence number

        ; split the fields
        srli r13, r12, 16        ; priority
        li   r2, 0xFFFF
        and  r15, r12, r2        ; length in bytes

        ; priority dispatch
        addi r2, r0, 2
        beq  r13, r2, rx_high_prio

        ; length sanity: longer than the pinned buffer is a protocol error
        li   r2, 4096
        slt  r3, r2, r15
        bne  r3, r0, rx_err

        ; verify the checksum over the payload
        addi r19, r0, 0
        addi r20, r0, 0
rx_csum_loop:
        bge  r20, r15, rx_csum_done
        add  r2, r10, r20
        lw   r3, 16(r2)
        add  r19, r19, r3
        addi r20, r20, 4
        j    rx_csum_loop
rx_csum_done:
        add  r2, r10, r20
        lw   r3, 16(r2)          ; stored checksum
        bne  r19, r3, rx_bad_csum

        ; sequence check against the per-stream ACK table
        li   r2, 0x7600
        srli r3, r11, 16         ; src node
        slli r3, r3, 2
        add  r2, r2, r3
        lw   r4, 0(r2)           ; last in-order seq
        addi r4, r4, 1
        bne  r14, r4, rx_out_of_order
        sw   r14, 0(r2)          ; commit the new sequence number

        ; wait for the E-bus engine, then DMA the payload to the pinned
        ; host buffer
        li   r9, 0x80000000
rx_dma_wait:
        lw   r2, 4(r9)
        beq  r2, r0, rx_dma_wait
        li   r21, 0x90001000     ; pinned host receive buffer
        addi r20, r0, 0
rx_copy_loop:
        bge  r20, r15, rx_copy_done
        add  r2, r10, r20
        lw   r3, 16(r2)
        add  r4, r21, r20
        sw   r3, 0(r4)
        addi r20, r20, 4
        j    rx_copy_loop
rx_copy_done:

        ; build and emit the ACK through the packet interface
        li   r18, 0x6400
        li   r2, 0x00AC0000
        or   r2, r2, r14         ; ACK tag | seq low bits
        sw   r2, 0(r18)
        sw   r11, 4(r18)         ; echo src<<16|port
        li   r22, 0x80000100
rx_pi_wait:
        lw   r2, 8(r22)
        beq  r2, r0, rx_pi_wait
        lw   r3, 0(r18)
        sw   r3, 0(r22)
        lw   r3, 4(r18)
        sw   r3, 0(r22)
        addi r2, r0, 1
        sw   r2, 4(r22)          ; commit the ACK

        ; post the receive event (with the sequence number, §4.1)
        li   r3, 0x90000100
        li   r4, 0x4ECD
        add  r4, r4, r14
        sw   r4, 0(r3)

        ; consume the receive doorbell
        li   r1, 0x4104
        sw   r0, 0(r1)
        ret

; --- receive paths not taken by the test packet (flip mass) -------------
rx_high_prio:
        ; high-priority packets use the second token pool
        li   r2, 0x7700
        lw   r3, 0(r2)
        addi r3, r3, 1
        sw   r3, 0(r2)
        li   r21, 0x90001800
        j    rx_err

rx_bad_csum:
        ; corrupted packet: count it and drop (the sender retransmits)
        li   r2, 0x7704
        lw   r3, 0(r2)
        addi r3, r3, 1
        sw   r3, 0(r2)
        li   r1, 0x4104
        sw   r0, 0(r1)
        ret

rx_out_of_order:
        ; NACK with the expected sequence number (Go-Back-N)
        li   r18, 0x6400
        li   r2, 0x00BAD000
        or   r2, r2, r4
        sw   r2, 0(r18)
        li   r22, 0x80000100
        lw   r3, 0(r18)
        sw   r3, 0(r22)
        addi r2, r0, 1
        sw   r2, 4(r22)
rx_err:
        li   r1, 0x4104
        sw   r0, 0(r1)
        ret
recv_chunk_end:
`

// Program returns the assembled campaign firmware.
func Program() (*isa.Program, error) {
	p, err := isa.Assemble(mcpSource, 0)
	if err != nil {
		return nil, fmt.Errorf("fault: assemble MCP fragment: %w", err)
	}
	return p, nil
}
