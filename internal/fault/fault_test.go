package fault

import (
	"testing"

	"repro/internal/isa"
)

func newCampaign(t *testing.T) *Campaign {
	t.Helper()
	c, err := NewCampaign(42)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGoldenRun(t *testing.T) {
	c := newCampaign(t)
	pkt := c.GoldenPacket()
	if len(pkt) != 21 {
		// 4 header words + 16 payload words + checksum.
		t.Fatalf("golden packet = %d words, want 21", len(pkt))
	}
	// Header words carry the token fields.
	if pkt[1] != testDest<<16|testDestPort {
		t.Errorf("dest word = %#x", pkt[1])
	}
	if pkt[2] != testPrio<<16|testMsgLen {
		t.Errorf("len word = %#x", pkt[2])
	}
	if pkt[3] != testSeq {
		t.Errorf("seq word = %#x", pkt[3])
	}
	// Payload round trip.
	for i := 0; i < testMsgLen/4; i++ {
		if pkt[4+i] != uint32(0xD0D0_0000+4*i) {
			t.Fatalf("payload word %d = %#x", i, pkt[4+i])
		}
	}
}

func TestSectionBounds(t *testing.T) {
	c := newCampaign(t)
	if c.SectionBits() < 2000 || c.SectionBits() > 6000 {
		t.Errorf("section bits = %d, want a few thousand (~100 instructions)", c.SectionBits())
	}
}

func TestTrialDeterminism(t *testing.T) {
	c := newCampaign(t)
	for bit := 0; bit < 64; bit++ {
		a := c.RunTrial(bit)
		b := c.RunTrial(bit)
		if a != b {
			t.Fatalf("bit %d: %+v != %+v", bit, a, b)
		}
	}
}

func TestCampaignDeterminism(t *testing.T) {
	c1 := newCampaign(t)
	c2 := newCampaign(t)
	r1 := c1.Run(200)
	r2 := c2.Run(200)
	for _, o := range Outcomes() {
		if r1.Counts[o] != r2.Counts[o] {
			t.Fatalf("category %v: %d != %d", o, r1.Counts[o], r2.Counts[o])
		}
	}
}

func TestTable1Shape(t *testing.T) {
	// The reproduction bands for Table 1: the exact percentages depend on
	// the firmware's instruction mix, but the paper's shape must hold —
	// hangs and corruption together dominate the failures, roughly half of
	// all flips are harmless, host crashes are rare but present, and the
	// "remote interface hung" and "MCP restart" rows are ~0 (as in the
	// paper's own runs).
	c := newCampaign(t)
	res := c.Run(1000)
	if res.Runs != 1000 || len(res.Trials) != 1000 {
		t.Fatalf("runs = %d, trials = %d", res.Runs, len(res.Trials))
	}
	hang := res.Percent(OutcomeLocalHang)
	corrupt := res.Percent(OutcomeCorrupted)
	clean := res.Percent(OutcomeNoImpact)
	crash := res.Percent(OutcomeHostCrash)
	if hang < 18 || hang > 38 {
		t.Errorf("hang = %.1f%%, want ~28.6%% (paper) / 23.4%% (Iyer)", hang)
	}
	if corrupt < 10 || corrupt > 30 {
		t.Errorf("corrupt = %.1f%%, want ~18.3%%", corrupt)
	}
	if clean < 40 || clean > 62 {
		t.Errorf("no impact = %.1f%%, want ~51.3%%", clean)
	}
	if crash <= 0 || crash > 3 {
		t.Errorf("host crash = %.1f%%, want ~0.6%%", crash)
	}
	if res.Counts[OutcomeRemoteHang] != 0 {
		t.Errorf("remote hang = %d, want 0", res.Counts[OutcomeRemoteHang])
	}
	// Failures affecting the interface are dominated by hang+corrupt
	// ("more than 90% of the failures that affect the network interface").
	failures := 100 - clean
	if (hang+corrupt)/failures < 0.85 {
		t.Errorf("hang+corrupt = %.1f%% of failures, want > 85%%", 100*(hang+corrupt)/failures)
	}
}

func TestCampaignWorkerInvariance(t *testing.T) {
	// The seed-splitting contract: a campaign's trials — order, bit
	// positions, and outcomes — are bit-for-bit identical at any worker
	// count, because trial i draws its stream from (nonce, i) rather than
	// from whichever worker runs it.
	ref, err := NewCampaign(2003)
	if err != nil {
		t.Fatal(err)
	}
	serial := ref.RunWorkers(300, 1)
	for _, workers := range []int{1, 2, 8} {
		c, err := NewCampaign(2003)
		if err != nil {
			t.Fatal(err)
		}
		got := c.RunWorkers(300, workers)
		if len(got.Trials) != len(serial.Trials) {
			t.Fatalf("workers=%d: %d trials, want %d", workers, len(got.Trials), len(serial.Trials))
		}
		for i := range got.Trials {
			if got.Trials[i] != serial.Trials[i] {
				t.Fatalf("workers=%d: trial %d = %+v, serial %+v",
					workers, i, got.Trials[i], serial.Trials[i])
			}
		}
	}
}

func TestSuccessiveRunsSampleFreshPositions(t *testing.T) {
	// Each Run call draws a new nonce from the campaign's seed stream, so
	// back-to-back Runs must not replay the same bit sequence.
	c := newCampaign(t)
	r1 := c.Run(50)
	r2 := c.Run(50)
	same := 0
	for i := range r1.Trials {
		if r1.Trials[i].Bit == r2.Trials[i].Bit {
			same++
		}
	}
	if same == len(r1.Trials) {
		t.Fatal("two successive Run calls replayed identical bit positions")
	}
}

func TestExhaustiveWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("double census")
	}
	c1 := newCampaign(t)
	c2 := newCampaign(t)
	r1 := c1.ExhaustiveWorkers(1)
	r2 := c2.ExhaustiveWorkers(4)
	for i := range r1.Trials {
		if r1.Trials[i] != r2.Trials[i] {
			t.Fatalf("census trial %d differs: %+v vs %+v", i, r1.Trials[i], r2.Trials[i])
		}
	}
}

func TestExhaustiveCensus(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive census")
	}
	c := newCampaign(t)
	res := c.Exhaustive()
	if res.Runs != c.SectionBits() {
		t.Fatalf("census runs = %d, want %d", res.Runs, c.SectionBits())
	}
	total := 0
	for _, n := range res.Counts {
		total += n
	}
	if total != res.Runs {
		t.Fatalf("counts sum %d != runs %d", total, res.Runs)
	}
	// Every major category must be populated somewhere in the section.
	for _, o := range []Outcome{OutcomeLocalHang, OutcomeCorrupted, OutcomeNoImpact, OutcomeHostCrash} {
		if res.Counts[o] == 0 {
			t.Errorf("census found no %v", o)
		}
	}
}

func TestClassifierReasons(t *testing.T) {
	// Pin concrete flip positions to concrete mechanisms so the classifier
	// cannot silently drift: find via census one exemplar per stop reason.
	c := newCampaign(t)
	byStop := make(map[isa.StopReason]Trial)
	for bit := 0; bit < c.SectionBits(); bit++ {
		tr := c.RunTrial(bit)
		if _, ok := byStop[tr.Stop]; !ok {
			byStop[tr.Stop] = tr
		}
	}
	if tr, ok := byStop[isa.StopInvalidOpcode]; !ok || tr.Outcome != OutcomeLocalHang {
		t.Errorf("invalid opcode exemplar: %+v", tr)
	}
	if tr, ok := byStop[isa.StopBudgetExhausted]; !ok || tr.Outcome != OutcomeLocalHang {
		t.Errorf("infinite loop exemplar: %+v", tr)
	}
	if _, ok := byStop[isa.StopOutOfRange]; !ok {
		t.Error("no out-of-range exemplar in the whole section")
	}
	if _, ok := byStop[isa.StopHalted]; !ok {
		t.Error("no completing trial in the whole section")
	}
}

func TestOutcomeStrings(t *testing.T) {
	for _, o := range Outcomes() {
		if o.String() == "" {
			t.Errorf("empty name for %d", int(o))
		}
	}
	if Outcome(99).String() == "" {
		t.Error("unknown outcome has empty name")
	}
}

func TestProgramAssembles(t *testing.T) {
	p, err := Program()
	if err != nil {
		t.Fatal(err)
	}
	for _, sym := range []string{"start", "dispatch", "send_chunk", "send_chunk_end", "copy_loop", "pi_loop"} {
		if _, ok := p.Symbols[sym]; !ok {
			t.Errorf("symbol %q missing", sym)
		}
	}
}

func BenchmarkTrial(b *testing.B) {
	c, err := NewCampaign(42)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.RunTrial(i % c.SectionBits())
	}
}

func TestRecvSectionCampaign(t *testing.T) {
	c, err := NewSectionCampaign(SectionRecv, 42)
	if err != nil {
		t.Fatal(err)
	}
	if c.Section() != SectionRecv {
		t.Errorf("Section = %v", c.Section())
	}
	// Golden recv run emits a 2-word ACK, not a data packet.
	if got := len(c.GoldenPacket()); got != 2 {
		t.Fatalf("golden ACK words = %d, want 2", got)
	}
	res := c.Run(600)
	hang := res.Percent(OutcomeLocalHang)
	clean := res.Percent(OutcomeNoImpact)
	if hang < 15 || hang > 35 {
		t.Errorf("recv-section hang = %.1f%%, want the same regime as send", hang)
	}
	if clean < 38 || clean > 62 {
		t.Errorf("recv-section no impact = %.1f%%", clean)
	}
	// The two sections must be *different* experiments: distinct golden
	// outputs and independent flip targets.
	s, err := NewSectionCampaign(SectionSend, 42)
	if err != nil {
		t.Fatal(err)
	}
	if s.SectionBits() == c.SectionBits() && len(s.GoldenPacket()) == len(c.GoldenPacket()) {
		t.Error("send and recv sections look identical")
	}
}

func TestSectionStrings(t *testing.T) {
	if SectionSend.String() != "send_chunk" || SectionRecv.String() != "recv_chunk" {
		t.Error("section names wrong")
	}
	if Section(9).String() == "" {
		t.Error("unknown section empty")
	}
}
