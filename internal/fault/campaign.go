package fault

import (
	"encoding/binary"
	"fmt"

	"repro/internal/isa"
	"repro/internal/parallel"
	"repro/internal/sim"
)

// Outcome is a Table 1 failure category.
type Outcome int

// Failure categories, matching Table 1 of the paper.
const (
	OutcomeNoImpact Outcome = iota + 1
	OutcomeLocalHang
	OutcomeCorrupted
	OutcomeRemoteHang
	OutcomeMCPRestart
	OutcomeHostCrash
	OutcomeOther
)

// String names the category with the paper's wording.
func (o Outcome) String() string {
	switch o {
	case OutcomeNoImpact:
		return "No Impact"
	case OutcomeLocalHang:
		return "Local Interface Hung"
	case OutcomeCorrupted:
		return "Messages Corrupted"
	case OutcomeRemoteHang:
		return "Remote Interface Hung"
	case OutcomeMCPRestart:
		return "MCP Restart"
	case OutcomeHostCrash:
		return "Host Computer Crash"
	case OutcomeOther:
		return "Other Errors"
	default:
		return fmt.Sprintf("Outcome?%d", int(o))
	}
}

// Outcomes lists the categories in Table 1's row order.
func Outcomes() []Outcome {
	return []Outcome{
		OutcomeLocalHang, OutcomeCorrupted, OutcomeRemoteHang,
		OutcomeMCPRestart, OutcomeHostCrash, OutcomeOther, OutcomeNoImpact,
	}
}

// Section selects the MCP code region under injection. The paper flipped
// bits in send_chunk and noted "these results could be different if fault
// injection is carried out on some other section of the code" (§2); the
// receive path is provided as that comparison.
type Section int

// Injection targets.
const (
	SectionSend Section = iota + 1
	SectionRecv
)

// String names the section.
func (s Section) String() string {
	switch s {
	case SectionSend:
		return "send_chunk"
	case SectionRecv:
		return "recv_chunk"
	default:
		return fmt.Sprintf("section?%d", int(s))
	}
}

func (s Section) symbols() (string, string) {
	if s == SectionRecv {
		return "recv_chunk", "recv_chunk_end"
	}
	return "send_chunk", "send_chunk_end"
}

// Trial is one injection's result.
type Trial struct {
	Bit     int // absolute bit index within the section
	Stop    isa.StopReason
	Outcome Outcome
}

// CampaignResult aggregates a campaign.
type CampaignResult struct {
	Runs   int
	Counts map[Outcome]int
	Trials []Trial
}

// Percent reports a category's share of all runs.
func (r *CampaignResult) Percent(o Outcome) float64 {
	if r.Runs == 0 {
		return 0
	}
	return 100 * float64(r.Counts[o]) / float64(r.Runs)
}

// The fixed workload every trial runs: low priority, 64 bytes, aligned —
// the paper likewise drove a fixed communication pattern while injecting.
const (
	testMsgLen   = 64
	testDest     = 3
	testDestPort = 2
	testPrio     = 1
	testSeq      = 0x2A
	testSrc      = 5 // incoming packet's source node (recv section)
)

// rig is one prepared campaign machine with its device state.
type rig struct {
	m *isa.Machine

	packet     []uint32 // words streamed into the packet interface
	committed  bool
	hostEvent  uint32
	hostStatus uint32
	hostData   []byte // the pinned receive buffer in host memory
	hostCrash  bool
	timerSet   bool
}

func buildRig(p *isa.Program, section Section) *rig {
	r := &rig{hostData: make([]byte, HostDataSize)}
	m := isa.NewMachine(SRAMSize)
	copy(m.Mem[p.Origin:], p.Image)
	m.PC = 0
	m.ResetVector = 0
	m.TrapOnReset = true

	for n := 0; n < 8; n++ {
		m.StoreWord(uint32(RouteTableAddr+4*n), uint32(0x40+n))
	}

	switch section {
	case SectionRecv:
		// An arrived, checksummed 64-byte packet plus the doorbell.
		m.StoreWord(RxPktAddr+0, 0)
		m.StoreWord(RxPktAddr+4, testSrc<<16|testDestPort)
		m.StoreWord(RxPktAddr+8, testPrio<<16|testMsgLen)
		m.StoreWord(RxPktAddr+12, testSeq)
		csum := uint32(0)
		for i := 0; i < testMsgLen; i += 4 {
			w := uint32(0xCAFE_0000 + i)
			m.StoreWord(uint32(RxPktAddr+16+i), w)
			csum += w
		}
		m.StoreWord(RxPktAddr+16+testMsgLen, csum)
		m.StoreWord(RxFlagAddr, 1)
		// Per-stream ACK table: expecting exactly testSeq next.
		m.StoreWord(0x7600+4*testSrc, testSeq-1)
	default:
		// A posted send token plus its doorbell and staged payload.
		m.StoreWord(TokenAddr+0, testDest)
		m.StoreWord(TokenAddr+4, testDestPort)
		m.StoreWord(TokenAddr+8, testPrio)
		m.StoreWord(TokenAddr+12, testSeq)
		m.StoreWord(TokenAddr+16, testMsgLen)
		m.StoreWord(TokenAddr+20, BufAddr)
		m.StoreWord(TokenFlagAddr, 1)
		for i := 0; i < testMsgLen; i += 4 {
			m.StoreWord(uint32(BufAddr+i), uint32(0xD0D0_0000+i))
		}
	}

	m.AddMMIO(isa.MMIORegion{
		Name: "ebus-dma", Base: MMIODMABase, Size: 0x100,
		// Status reads as "idle/complete"; control writes are accepted.
		Read:  func(addr uint32) (uint32, bool) { return 1, true },
		Write: func(addr uint32, v uint32) bool { return true },
	})
	m.AddMMIO(isa.MMIORegion{
		Name: "packet-interface", Base: MMIOPIBase, Size: 0x100,
		Read: func(addr uint32) (uint32, bool) { return 1, true },
		Write: func(addr uint32, v uint32) bool {
			switch addr - MMIOPIBase {
			case 0:
				if len(r.packet) > 4096 {
					return false // FIFO overrun wedges the interface
				}
				r.packet = append(r.packet, v)
			case 4:
				r.committed = true
			default:
				return false
			}
			return true
		},
	})
	m.AddMMIO(isa.MMIORegion{
		Name: "timers", Base: MMIOTimerBase, Size: 0x100,
		Read: func(addr uint32) (uint32, bool) { return 0, true },
		Write: func(addr uint32, v uint32) bool {
			r.timerSet = true
			return true
		},
	})
	m.AddMMIO(isa.MMIORegion{
		Name: "host-window", Base: MMIOHostBase, Size: MMIOHostSize,
		Read: func(addr uint32) (uint32, bool) {
			off := addr - MMIOHostBase
			switch {
			case off == HostStatusOffset:
				return r.hostStatus, true
			case off >= HostDataOffset && off < HostDataOffset+HostDataSize:
				return binary.LittleEndian.Uint32(r.hostData[off-HostDataOffset:]), true
			}
			return 0, true
		},
		Write: func(addr uint32, v uint32) bool {
			off := addr - MMIOHostBase
			switch {
			case off == HostEventOffset:
				r.hostEvent = v
			case off == HostStatusOffset:
				r.hostStatus = v
			case off >= HostDataOffset && off+4 <= HostDataOffset+HostDataSize:
				binary.LittleEndian.PutUint32(r.hostData[off-HostDataOffset:], v)
			default:
				// A stray DMA/store into host memory corrupts the kernel:
				// this is how interface faults propagate to host crashes.
				r.hostCrash = true
			}
			return true
		},
	})
	r.m = m
	return r
}

// reset returns the rig to the given pre-execution SRAM image, making it
// reusable across trials without reallocating the machine or the pinned
// host memory. The MMIO handlers installed by buildRig close over the rig
// itself, so clearing the mutable fields is sufficient.
func (r *rig) reset(pristine []byte) {
	copy(r.m.Mem, pristine)
	r.m.Regs = [32]uint32{}
	r.m.PC = 0
	r.m.Cycle = 0
	r.packet = r.packet[:0]
	r.committed = false
	r.hostEvent = 0
	r.hostStatus = 0
	for i := range r.hostData {
		r.hostData[i] = 0
	}
	r.hostCrash = false
	r.timerSet = false
}

// Campaign runs the Table 1 experiment: single-bit flips uniformly
// distributed over one MCP section, each against an isolated machine state.
// Run and Exhaustive fan trials out across GOMAXPROCS workers; results are
// bit-for-bit identical at any worker count (see RunWorkers). A Campaign's
// methods must not be invoked concurrently with each other — the campaign
// parallelizes internally.
type Campaign struct {
	prog      *isa.Program
	section   Section
	sectionLo uint32
	sectionHi uint32

	goldenPkt      []uint32
	goldenHostData []byte
	goldenEvent    uint32
	goldenMem      []byte
	// pristine is the SRAM image before execution: the reset state rigs are
	// rewound to between trials.
	pristine []byte

	rng        *sim.RNG
	execBudget uint64
}

// NewCampaign assembles the firmware and verifies the golden send run (the
// paper's configuration).
func NewCampaign(seed uint64) (*Campaign, error) {
	return NewSectionCampaign(SectionSend, seed)
}

// NewSectionCampaign targets an arbitrary section.
func NewSectionCampaign(section Section, seed uint64) (*Campaign, error) {
	prog, err := Program()
	if err != nil {
		return nil, err
	}
	lo, hi, err := prog.SymbolRange(section.symbols())
	if err != nil {
		return nil, err
	}
	c := &Campaign{
		prog:       prog,
		section:    section,
		sectionLo:  lo,
		sectionHi:  hi,
		rng:        sim.NewRNG(seed),
		execBudget: 100000,
	}
	golden := buildRig(prog, section)
	c.pristine = golden.m.Snapshot()
	stop := golden.m.Run(c.execBudget)
	if stop != isa.StopHalted {
		return nil, fmt.Errorf("fault: golden %v run stopped with %v", section, stop)
	}
	if err := c.checkGoldenDevices(golden); err != nil {
		return nil, err
	}
	c.goldenPkt = append([]uint32(nil), golden.packet...)
	c.goldenHostData = append([]byte(nil), golden.hostData...)
	c.goldenEvent = golden.hostEvent
	c.goldenMem = golden.m.Snapshot()
	return c, nil
}

func (c *Campaign) checkGoldenDevices(golden *rig) error {
	bad := func() error {
		return fmt.Errorf("fault: golden %v device state wrong: %s", c.section, deviceState(golden))
	}
	if !golden.committed || golden.hostCrash || !golden.timerSet {
		return bad()
	}
	switch c.section {
	case SectionRecv:
		if golden.hostEvent != 0x4ECD+testSeq || len(golden.packet) != 2 {
			return bad()
		}
		for i := 0; i < testMsgLen; i += 4 {
			if binary.LittleEndian.Uint32(golden.hostData[i:]) != uint32(0xCAFE_0000+i) {
				return bad()
			}
		}
	default:
		if golden.hostEvent != 0x600D || golden.hostStatus != 1 || len(golden.packet) != 21 {
			return bad()
		}
	}
	return nil
}

func deviceState(r *rig) string {
	return fmt.Sprintf("committed=%v crash=%v event=%#x timer=%v pkt=%d words",
		r.committed, r.hostCrash, r.hostEvent, r.timerSet, len(r.packet))
}

// Section reports the injection target.
func (c *Campaign) Section() Section { return c.section }

// SectionBits reports the size of the flip target in bits.
func (c *Campaign) SectionBits() int { return int(c.sectionHi-c.sectionLo) * 8 }

// GoldenPacket returns the packet(s) the un-faulted firmware emits.
func (c *Campaign) GoldenPacket() []uint32 { return append([]uint32(nil), c.goldenPkt...) }

// RunTrial executes one injection at the given bit offset within the
// section.
func (c *Campaign) RunTrial(bit int) Trial {
	return c.runTrialIn(buildRig(c.prog, c.section), bit)
}

// runTrialIn executes one injection on a reusable rig, rewinding it to the
// pristine image first. Trials are pure functions of the bit position, so
// workers can run them in any order on any rig.
func (c *Campaign) runTrialIn(r *rig, bit int) Trial {
	r.reset(c.pristine)
	addr := c.sectionLo + uint32(bit/8)
	r.m.Mem[addr] ^= 1 << (bit % 8)
	stop := r.m.Run(c.execBudget)
	return Trial{Bit: bit, Stop: stop, Outcome: c.classify(r, stop)}
}

// classify maps an execution result onto the paper's categories.
func (c *Campaign) classify(r *rig, stop isa.StopReason) Outcome {
	// Stray writes into host memory take priority: whatever else happened,
	// the host kernel is now corrupt.
	if r.hostCrash {
		return OutcomeHostCrash
	}
	switch stop {
	case isa.StopInvalidOpcode, isa.StopUnalignedAccess, isa.StopOutOfRange, isa.StopMMIOFault:
		// The network processor took an exception and stopped: the
		// interface is hung from the host's point of view.
		return OutcomeLocalHang
	case isa.StopBudgetExhausted:
		// Infinite loop: "the LANai ... entered into an infinite loop,
		// causing it to stop responding" (§2).
		return OutcomeLocalHang
	case isa.StopResetVector:
		return OutcomeMCPRestart
	case isa.StopHalted:
		// The firmware completed; inspect what it did.
		if !c.outputsMatch(r) {
			if !r.committed && len(r.packet) == 0 && c.hostDataMatches(r) {
				// Nothing emitted and nothing else visible: the operation
				// was silently skipped — the reliability layer surfaces
				// this as a timeout, not a corruption.
				return OutcomeOther
			}
			return OutcomeCorrupted
		}
		if !c.eventsMatch(r) {
			return OutcomeOther
		}
		if !c.architecturalStateClean(r) {
			return OutcomeOther
		}
		return OutcomeNoImpact
	default:
		return OutcomeOther
	}
}

// outputsMatch compares the externally visible data products: the emitted
// packet(s) and, for the receive path, the bytes landed in host memory.
func (c *Campaign) outputsMatch(r *rig) bool {
	if !r.committed || len(r.packet) != len(c.goldenPkt) {
		return false
	}
	for i := range r.packet {
		if r.packet[i] != c.goldenPkt[i] {
			return false
		}
	}
	return c.hostDataMatches(r)
}

func (c *Campaign) hostDataMatches(r *rig) bool {
	for i := range r.hostData {
		if r.hostData[i] != c.goldenHostData[i] {
			return false
		}
	}
	return true
}

func (c *Campaign) eventsMatch(r *rig) bool {
	if r.hostEvent != c.goldenEvent || !r.timerSet {
		return false
	}
	if c.section == SectionSend && r.hostStatus != 1 {
		return false
	}
	return true
}

// architecturalStateClean compares the data regions the next operation
// depends on against the golden final state; corrupted firmware that
// scribbled on them completed this operation but poisoned the next one.
func (c *Campaign) architecturalStateClean(r *rig) bool {
	regions := []struct{ lo, hi uint32 }{
		{TokenAddr, TokenAddr + 0x40},
		{TokenFlagAddr, TokenFlagAddr + 8}, // send + recv doorbells
		{RouteTableAddr, RouteTableAddr + 0x40},
		{BufAddr, BufAddr + testMsgLen},
		{0x7600, 0x7640}, // per-stream ACK table
	}
	for _, reg := range regions {
		for a := reg.lo; a < reg.hi; a += 4 {
			got := binary.LittleEndian.Uint32(r.m.Mem[a:])
			want := binary.LittleEndian.Uint32(c.goldenMem[a:])
			if got != want {
				return false
			}
		}
	}
	return true
}

// Run executes n trials at uniformly random bit positions (the paper's
// protocol: "a fault was injected at a random bit location in this section
// while it was handling some network communication"), fanned out across
// GOMAXPROCS workers.
func (c *Campaign) Run(n int) CampaignResult { return c.RunWorkers(n, 0) }

// RunWorkers is Run with an explicit worker count (0 selects GOMAXPROCS).
//
// Determinism contract: each Run call first advances the campaign's seed
// stream by one draw to obtain a nonce, and trial i then flips the bit drawn
// from sim.DeriveRNG(nonce, i). Results are therefore a pure function of
// (campaign seed, Run-call sequence, n) — bit-for-bit identical between a
// serial and a parallel run and across any worker count — while successive
// Run calls on the same campaign still sample fresh positions.
func (c *Campaign) RunWorkers(n, workers int) CampaignResult {
	nonce := c.rng.Uint64()
	bits := c.SectionBits()
	trials, _ := parallel.MapWorker(n, workers,
		func(int) (*rig, error) { return buildRig(c.prog, c.section), nil },
		func(r *rig, i int) (Trial, error) {
			return c.runTrialIn(r, sim.DeriveRNG(nonce, uint64(i)).Intn(bits)), nil
		})
	return c.collect(trials)
}

// Exhaustive flips every bit of the section exactly once (beyond the
// paper: a complete census instead of a 1000-run sample), fanned out across
// GOMAXPROCS workers.
func (c *Campaign) Exhaustive() CampaignResult { return c.ExhaustiveWorkers(0) }

// ExhaustiveWorkers is Exhaustive with an explicit worker count (0 selects
// GOMAXPROCS). Trial i flips bit i; no randomness is involved, so the census
// is identical at any worker count.
func (c *Campaign) ExhaustiveWorkers(workers int) CampaignResult {
	trials, _ := parallel.MapWorker(c.SectionBits(), workers,
		func(int) (*rig, error) { return buildRig(c.prog, c.section), nil },
		func(r *rig, bit int) (Trial, error) { return c.runTrialIn(r, bit), nil })
	return c.collect(trials)
}

// collect aggregates ordered trials into a CampaignResult.
func (c *Campaign) collect(trials []Trial) CampaignResult {
	res := CampaignResult{Runs: len(trials), Counts: make(map[Outcome]int), Trials: trials}
	for _, tr := range trials {
		res.Counts[tr.Outcome]++
	}
	return res
}
