// Package ckpt implements the endpoint checkpoint wire codec: a versioned,
// deterministic binary serialization of a node's recovery anchor — the §4.1
// host-side backup state that FTGM keeps so a hung interface can be restored.
// A checkpoint extends that protection to host death: it captures, per node,
//
//   - the interface identity (UID, mapped NodeID) and the driver's route
//     cache;
//   - the node-level receive commit table (RxAckTable: the last sequence
//     number committed on every incoming stream — the delayed-ACK state of
//     §4.1, updated only after the event record lands in host memory);
//   - per open port: the shadow send-token queue (which carries the
//     host-generated Go-Back-N sequence numbers of every unacknowledged
//     message, in posting order), the shadow receive-token queue, the
//     per-(remote node, priority) sequence generators, and the registered
//     directed-send regions (id allocator cursor, geometry and contents —
//     a deposit the MCP has already acknowledged lives only in the region
//     buffer, so the buffer is part of the recovery anchor).
//
// The encoding is deterministic: maps are serialized in sorted key order and
// every integer is fixed-width little-endian, so two checkpoints of equal
// state are byte-identical. The stream is framed with a magic number, a
// format version and a trailing CRC32; Decode rejects truncated, corrupt or
// foreign input with typed errors and never panics. Decoded checkpoints own
// their memory (no aliasing of the input buffer).
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/core"
	"repro/internal/gmproto"
)

// Codec errors.
var (
	// ErrTruncated is returned when the stream ends mid-record.
	ErrTruncated = errors.New("ckpt: checkpoint truncated")
	// ErrCorrupt is returned on a bad magic number, checksum or framing.
	ErrCorrupt = errors.New("ckpt: checkpoint corrupt")
	// ErrVersion is returned on an unknown format version.
	ErrVersion = errors.New("ckpt: unsupported checkpoint version")
)

// Magic identifies a checkpoint stream ("GMCK").
const Magic uint32 = 0x474d434b

// Version is the current format version. Any layout change bumps it; Decode
// refuses versions it does not understand.
const Version uint16 = 1

// RxAck is one receive-commit table entry.
type RxAck struct {
	Stream gmproto.StreamID
	Seq    uint32
}

// Route is one route-cache entry: the source-routed hop bytes toward a node.
type Route struct {
	Node gmproto.NodeID
	Hops []byte
}

// PortCheckpoint is one open port's recovery anchor.
type PortCheckpoint struct {
	Port gmproto.PortID
	// NextToken is the port's token-id allocator cursor, so a restored port
	// mints ids that do not collide with outstanding shadow tokens.
	NextToken uint64
	// SendTokens are the unacknowledged sends in posting order, each
	// carrying its host-generated sequence number — the Go-Back-N window
	// marks (§4.4: "the send tokens contain the sequence numbers of the
	// messages that have not been acknowledged").
	SendTokens []gmproto.SendToken
	// RecvTokens are the provided-but-unconsumed receive buffers in posting
	// order. Buffer contents are not serialized (a receive buffer has none
	// until a message lands); BufLen records the allocation size.
	RecvTokens []RecvTokenCheckpoint
	// SeqStreams are the per-(remote, priority) sequence generators, sorted.
	SeqStreams []core.SeqStream
	// NextRegion is the port's region-id allocator cursor, so regions
	// registered after a restore never reuse an id peers may still hold
	// from before the death.
	NextRegion uint32
	// Regions are the registered directed-send regions in registration
	// order. Contents are serialized: an acknowledged directed deposit
	// exists only in the region buffer, so dropping the bytes would lose
	// it — the peer's ACK table dedups the retransmission after a restore.
	Regions []RegionCheckpoint
}

// RegionCheckpoint is one registered directed-send region: its id and the
// pinned buffer bytes (len(Data) is the region size).
type RegionCheckpoint struct {
	ID   uint32
	Data []byte
}

// RecvTokenCheckpoint is the serialized form of a receive token: identity
// and geometry, not contents.
type RecvTokenCheckpoint struct {
	ID     uint64
	Size   uint32
	Prio   gmproto.Priority
	BufLen uint32
}

// Checkpoint is a node's complete recovery anchor.
type Checkpoint struct {
	// UID is the interface's pre-mapping unique id; NodeID its mapped
	// identity. A restore must present the same UID so the control plane
	// readmits it as the same member.
	UID    uint64
	NodeID gmproto.NodeID
	// Routes is the driver's route cache, sorted by destination.
	Routes []Route
	// RxAcks is the receive commit table, sorted by (node, port, priority).
	RxAcks []RxAck
	// Ports holds one record per open port, sorted by port id.
	Ports []PortCheckpoint
}

// Minimum encoded sizes, used to sanity-check counts before allocating.
const (
	minRoute     = 2 + 2 // node + hop count
	minRxAck     = 2 + 1 + 1 + 4
	minSendToken = 8 + 2 + 1 + 1 + 1 + 4 + 1 + 1 + 4 + 4 + 4
	minRecvToken = 8 + 4 + 1 + 4
	minSeqStream = 2 + 1 + 4
	minRegion    = 4 + 4
	minPort      = 1 + 8 + 4 + 4 + 4 + 4 + 4
)

// enc appends fixed-width little-endian fields to a caller-owned buffer. It
// is shared by the base-checkpoint and delta encoders so both frame families
// serialize tokens, streams and regions with identical byte layouts.
type enc struct{ b []byte }

func (e *enc) u8(v uint8)   { e.b = append(e.b, v) }
func (e *enc) u16(v uint16) { e.b = binary.LittleEndian.AppendUint16(e.b, v) }
func (e *enc) u32(v uint32) { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64) { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) bytes(p []byte) {
	e.u32(uint32(len(p)))
	e.b = append(e.b, p...)
}

func (e *enc) route(r *Route) {
	e.u16(uint16(r.Node))
	e.u16(uint16(len(r.Hops)))
	e.b = append(e.b, r.Hops...)
}

func (e *enc) rxAck(a *RxAck) {
	e.u16(uint16(a.Stream.Node))
	e.u8(uint8(a.Stream.Port))
	e.u8(uint8(a.Stream.Prio))
	e.u32(a.Seq)
}

func (e *enc) sendToken(t *gmproto.SendToken) {
	e.u64(t.ID)
	e.u16(uint16(t.Dest))
	e.u8(uint8(t.DestPort))
	e.u8(uint8(t.SrcPort))
	e.u8(uint8(t.Prio))
	e.u32(t.Seq)
	e.u8(boolByte(t.HasSeq))
	e.u8(boolByte(t.Directed))
	e.u32(t.RegionID)
	e.u32(t.RemoteOffset)
	e.bytes(t.Data)
}

func (e *enc) recvToken(t *RecvTokenCheckpoint) {
	e.u64(t.ID)
	e.u32(t.Size)
	e.u8(uint8(t.Prio))
	e.u32(t.BufLen)
}

func (e *enc) seqStream(ss *core.SeqStream) {
	e.u16(uint16(ss.Node))
	e.u8(uint8(ss.Prio))
	e.u32(ss.Last)
}

// seal appends the CRC32 of everything appended since start and returns the
// finished frame.
func (e *enc) seal(start int) []byte {
	return binary.LittleEndian.AppendUint32(e.b, crc32.ChecksumIEEE(e.b[start:]))
}

// AppendTo serializes the checkpoint onto buf and returns the extended
// slice. The appended bytes are a complete frame (identical to Encode's
// output); passing a retained buffer with buf[:0] makes repeated encodes
// allocation-free once the buffer has grown to steady-state size.
func (c *Checkpoint) AppendTo(buf []byte) []byte {
	e := enc{b: buf}
	start := len(buf)

	e.u32(Magic)
	e.u16(Version)
	e.u16(0) // reserved flags
	e.u64(c.UID)
	e.u16(uint16(c.NodeID))

	e.u32(uint32(len(c.Routes)))
	for i := range c.Routes {
		e.route(&c.Routes[i])
	}

	e.u32(uint32(len(c.RxAcks)))
	for i := range c.RxAcks {
		e.rxAck(&c.RxAcks[i])
	}

	e.u32(uint32(len(c.Ports)))
	for i := range c.Ports {
		pc := &c.Ports[i]
		e.u8(uint8(pc.Port))
		e.u64(pc.NextToken)
		e.u32(uint32(len(pc.SendTokens)))
		for j := range pc.SendTokens {
			e.sendToken(&pc.SendTokens[j])
		}
		e.u32(uint32(len(pc.RecvTokens)))
		for j := range pc.RecvTokens {
			e.recvToken(&pc.RecvTokens[j])
		}
		e.u32(uint32(len(pc.SeqStreams)))
		for j := range pc.SeqStreams {
			e.seqStream(&pc.SeqStreams[j])
		}
		e.u32(pc.NextRegion)
		e.u32(uint32(len(pc.Regions)))
		for j := range pc.Regions {
			e.u32(pc.Regions[j].ID)
			e.bytes(pc.Regions[j].Data)
		}
	}

	return e.seal(start)
}

// Encode serializes the checkpoint. The output is deterministic: equal
// checkpoints produce byte-identical streams.
func (c *Checkpoint) Encode() []byte {
	return c.AppendTo(make([]byte, 0, 64))
}

// TrailingCRC returns the frame's trailing CRC32 word — the value a delta
// chained onto this frame must carry as PrevCRC. It does not validate the
// frame; callers hold frames that Decode/DecodeDelta already accepted, or
// that they encoded themselves.
func TrailingCRC(frame []byte) uint32 {
	if len(frame) < 4 {
		return 0
	}
	return binary.LittleEndian.Uint32(frame[len(frame)-4:])
}

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

// decoder walks the stream with bounds checks; the first overrun latches
// ErrTruncated and every later read returns zeros, so decode paths need no
// per-read error plumbing.
type decoder struct {
	data []byte
	off  int
	err  error
}

func (d *decoder) need(n int) bool {
	if d.err != nil {
		return false
	}
	if d.off+n > len(d.data) {
		d.err = ErrTruncated
		return false
	}
	return true
}

func (d *decoder) u8() uint8 {
	if !d.need(1) {
		return 0
	}
	v := d.data[d.off]
	d.off++
	return v
}

func (d *decoder) u16() uint16 {
	if !d.need(2) {
		return 0
	}
	v := binary.LittleEndian.Uint16(d.data[d.off:])
	d.off += 2
	return v
}

func (d *decoder) u32() uint32 {
	if !d.need(4) {
		return 0
	}
	v := binary.LittleEndian.Uint32(d.data[d.off:])
	d.off += 4
	return v
}

func (d *decoder) u64() uint64 {
	if !d.need(8) {
		return 0
	}
	v := binary.LittleEndian.Uint64(d.data[d.off:])
	d.off += 8
	return v
}

// bytes reads a length-prefixed byte string into fresh memory.
func (d *decoder) bytes() []byte {
	n := int(d.u32())
	if !d.need(n) {
		return nil
	}
	out := append([]byte(nil), d.data[d.off:d.off+n]...)
	d.off += n
	return out
}

// count reads a record count and validates it against the bytes remaining at
// the given minimum record size, so hostile counts cannot force huge
// allocations.
func (d *decoder) count(minRecord int) int {
	n := d.u32()
	if d.err != nil {
		return 0
	}
	if uint64(n) > uint64(len(d.data)-d.off)/uint64(minRecord) {
		d.err = ErrTruncated
		return 0
	}
	return int(n)
}

// Decode parses a checkpoint stream, validating framing, version and
// checksum. It never panics on hostile input and the returned checkpoint
// shares no memory with data.
func Decode(data []byte) (*Checkpoint, error) {
	// Fixed header (magic+version+flags+uid+node) plus trailing CRC.
	const fixed = 4 + 2 + 2 + 8 + 2
	if len(data) < fixed+4 {
		return nil, ErrTruncated
	}
	body, crcBytes := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(crcBytes) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	d := &decoder{data: body}
	if d.u32() != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := d.u16(); v != Version {
		return nil, fmt.Errorf("%w: version %d", ErrVersion, v)
	}
	d.u16() // flags
	c := &Checkpoint{UID: d.u64(), NodeID: gmproto.NodeID(d.u16())}

	if n := d.count(minRoute); n > 0 {
		c.Routes = make([]Route, 0, n)
		for i := 0; i < n; i++ {
			node := gmproto.NodeID(d.u16())
			hopLen := int(d.u16())
			if !d.need(hopLen) {
				break
			}
			hops := append([]byte(nil), d.data[d.off:d.off+hopLen]...)
			d.off += hopLen
			c.Routes = append(c.Routes, Route{Node: node, Hops: hops})
		}
	}

	if n := d.count(minRxAck); n > 0 {
		c.RxAcks = make([]RxAck, 0, n)
		for i := 0; i < n; i++ {
			c.RxAcks = append(c.RxAcks, RxAck{
				Stream: gmproto.StreamID{
					Node: gmproto.NodeID(d.u16()),
					Port: gmproto.PortID(d.u8()),
					Prio: gmproto.Priority(d.u8()),
				},
				Seq: d.u32(),
			})
		}
	}

	if n := d.count(minPort); n > 0 {
		c.Ports = make([]PortCheckpoint, 0, n)
		for i := 0; i < n; i++ {
			pc := PortCheckpoint{
				Port:      gmproto.PortID(d.u8()),
				NextToken: d.u64(),
			}
			if sn := d.count(minSendToken); sn > 0 {
				pc.SendTokens = make([]gmproto.SendToken, 0, sn)
				for j := 0; j < sn; j++ {
					t := gmproto.SendToken{
						ID:       d.u64(),
						Dest:     gmproto.NodeID(d.u16()),
						DestPort: gmproto.PortID(d.u8()),
						SrcPort:  gmproto.PortID(d.u8()),
						Prio:     gmproto.Priority(d.u8()),
						Seq:      d.u32(),
					}
					t.HasSeq = d.u8() != 0
					t.Directed = d.u8() != 0
					t.RegionID = d.u32()
					t.RemoteOffset = d.u32()
					t.Data = d.bytes()
					pc.SendTokens = append(pc.SendTokens, t)
				}
			}
			if rn := d.count(minRecvToken); rn > 0 {
				pc.RecvTokens = make([]RecvTokenCheckpoint, 0, rn)
				for j := 0; j < rn; j++ {
					pc.RecvTokens = append(pc.RecvTokens, RecvTokenCheckpoint{
						ID:     d.u64(),
						Size:   d.u32(),
						Prio:   gmproto.Priority(d.u8()),
						BufLen: d.u32(),
					})
				}
			}
			if qn := d.count(minSeqStream); qn > 0 {
				pc.SeqStreams = make([]core.SeqStream, 0, qn)
				for j := 0; j < qn; j++ {
					pc.SeqStreams = append(pc.SeqStreams, core.SeqStream{
						Node: gmproto.NodeID(d.u16()),
						Prio: gmproto.Priority(d.u8()),
						Last: d.u32(),
					})
				}
			}
			pc.NextRegion = d.u32()
			if gn := d.count(minRegion); gn > 0 {
				pc.Regions = make([]RegionCheckpoint, 0, gn)
				for j := 0; j < gn; j++ {
					pc.Regions = append(pc.Regions, RegionCheckpoint{
						ID:   d.u32(),
						Data: d.bytes(),
					})
				}
			}
			c.Ports = append(c.Ports, pc)
		}
	}

	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(body)-d.off)
	}
	return c, nil
}
