// Delta frames: the incremental half of the checkpoint codec. A periodic
// checkpoint stream is one full base frame (the GMCK format of ckpt.go)
// followed by an ordered chain of GMCD delta frames, each encoding only the
// sections dirtied since its predecessor:
//
//   - the route cache, only when the driver replaced it (flag bit 0);
//   - receive-commit advances as sorted (stream, seq) updates merged into
//     the base table — or a full table replace after a Forget (flag bit 1),
//     since Forget deletes entries and a merge cannot express deletion;
//   - one record per dirty port: a full replace of the port's scalar and
//     token sections (they are small and churn together), plus the port's
//     complete region list in registration order with a dirty bit per
//     region — clean regions carry only their id (5 bytes) and inherit
//     their bytes from the predecessor frame, dirty regions inline their
//     contents;
//   - ids of ports closed since the predecessor frame.
//
// Chain integrity is end-to-end: every frame carries its position in the
// chain (Seq: base is 0, the first delta 1, ...) and the trailing CRC32 word
// of its predecessor (PrevCRC), so ReplayChain detects a missing, reordered
// or cross-chain frame even when each frame is individually well-formed.
// Replay is deterministic and canonical: applying a chain to its base
// reconstructs a Checkpoint whose sections are sorted exactly as a fresh
// full Checkpoint() of the same state, so re-encoding the replayed
// checkpoint is bit-identical to a stop-and-copy checkpoint taken at the
// same drain point.
package ckpt

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"sort"

	"repro/internal/core"
	"repro/internal/gmproto"
)

// DeltaMagic identifies a delta frame ("GMCD").
const DeltaMagic uint32 = 0x474d4344

// DeltaVersion is the current delta format version.
const DeltaVersion uint16 = 1

// Delta flag bits. Unknown bits are a decode error, which keeps the
// canonical re-encode property: every accepted frame round-trips exactly.
const (
	// deltaFlagRoutes marks a frame that carries a replacement route table.
	deltaFlagRoutes uint16 = 1 << 0
	// deltaFlagRxReplace marks a frame whose RxAcks section replaces the
	// whole receive-commit table instead of merging into it.
	deltaFlagRxReplace uint16 = 1 << 1

	deltaFlagKnown = deltaFlagRoutes | deltaFlagRxReplace
)

// ErrChain is returned when a delta cannot extend the checkpoint it is
// applied to: identity mismatch, a gap or reorder in the chain sequence, a
// PrevCRC that does not match the predecessor frame, or a clean region
// reference to state the base does not hold.
var ErrChain = fmt.Errorf("ckpt: delta chain broken")

// RegionDelta is one registered region in a dirty port's record. A clean
// region names its id and inherits its bytes from the predecessor frame; a
// dirty region carries its full contents (deposits land at arbitrary
// offsets, and the region buffer is the only home of acknowledged directed
// data, so partial-buffer diffs are not worth the bookkeeping).
type RegionDelta struct {
	ID    uint32
	Dirty bool
	Data  []byte // nil unless Dirty
}

// PortDelta is one dirty port's record: a full replacement of the port's
// checkpoint section except for clean region contents.
type PortDelta struct {
	Port       gmproto.PortID
	NextToken  uint64
	SendTokens []gmproto.SendToken
	RecvTokens []RecvTokenCheckpoint
	SeqStreams []core.SeqStream
	NextRegion uint32
	Regions    []RegionDelta
}

// Delta is one decoded (or to-be-encoded) delta frame. The zero value with
// UID/NodeID/Seq/PrevCRC filled in is an empty-but-valid frame. A Delta
// built for encoding may alias live state (token slices, region buffers):
// AppendTo copies everything into the output frame and retains nothing.
type Delta struct {
	UID    uint64
	NodeID gmproto.NodeID
	// Seq is the frame's position in the chain: the base frame is 0, the
	// first delta 1, and so on with no gaps.
	Seq uint64
	// PrevCRC is the trailing CRC32 word of the predecessor frame (the base
	// for Seq 1, the previous delta otherwise).
	PrevCRC uint32
	// RoutesReplaced marks that Routes carries a full replacement route
	// table (sorted by destination). When false, Routes must be empty and
	// the section is absent from the wire.
	RoutesReplaced bool
	Routes         []Route
	// RxReplaceAll marks that RxAcks replaces the whole receive-commit
	// table; otherwise RxAcks holds only the entries that advanced, to be
	// merged into the predecessor's table. Sorted either way.
	RxReplaceAll bool
	RxAcks       []RxAck
	// Ports holds one record per dirty port, sorted by port id.
	Ports []PortDelta
	// Removed lists ports closed since the predecessor frame, sorted.
	Removed []gmproto.PortID
}

// Minimum encoded sizes for delta records (see the base-format table in
// ckpt.go for the shared token/stream records).
const (
	minPortDelta   = 1 + 8 + 4 + 4 + 4 + 4 + 4
	minRegionDelta = 4 + 1
	minRemoved     = 1
)

// NextPort extends d.Ports by one record and returns it for filling. The
// record's inner slices keep their capacity from previous builds, so a
// retained Delta reaches zero allocations per build at steady state.
// Callers must reset the slices they fill (pd.SendTokens = pd.SendTokens[:0]
// style) — NextPort only preserves capacity, not contents.
func (d *Delta) NextPort() *PortDelta {
	if len(d.Ports) < cap(d.Ports) {
		d.Ports = d.Ports[:len(d.Ports)+1]
	} else {
		d.Ports = append(d.Ports, PortDelta{})
	}
	return &d.Ports[len(d.Ports)-1]
}

// NextRegionDelta extends pd.Regions by one record and returns it for
// filling, with the same capacity-preserving contract as Delta.NextPort.
func (pd *PortDelta) NextRegionDelta() *RegionDelta {
	if len(pd.Regions) < cap(pd.Regions) {
		pd.Regions = pd.Regions[:len(pd.Regions)+1]
	} else {
		pd.Regions = append(pd.Regions, RegionDelta{})
	}
	return &pd.Regions[len(pd.Regions)-1]
}

// Reset clears the frame for rebuilding while keeping every slice's
// capacity (including the inner slices of pooled port records).
func (d *Delta) Reset() {
	d.RoutesReplaced, d.RxReplaceAll = false, false
	d.Routes = d.Routes[:0]
	d.RxAcks = d.RxAcks[:0]
	d.Ports = d.Ports[:0]
	d.Removed = d.Removed[:0]
}

// flags derives the wire flag word from the struct.
func (d *Delta) flags() uint16 {
	var f uint16
	if d.RoutesReplaced {
		f |= deltaFlagRoutes
	}
	if d.RxReplaceAll {
		f |= deltaFlagRxReplace
	}
	return f
}

// AppendTo serializes the delta onto buf and returns the extended slice.
// Deterministic like the base encoder: equal deltas produce byte-identical
// frames. Nothing in d is retained or mutated.
func (d *Delta) AppendTo(buf []byte) []byte {
	e := enc{b: buf}
	start := len(buf)

	e.u32(DeltaMagic)
	e.u16(DeltaVersion)
	e.u16(d.flags())
	e.u64(d.UID)
	e.u16(uint16(d.NodeID))
	e.u64(d.Seq)
	e.u32(d.PrevCRC)

	if d.RoutesReplaced {
		e.u32(uint32(len(d.Routes)))
		for i := range d.Routes {
			e.route(&d.Routes[i])
		}
	}

	e.u32(uint32(len(d.RxAcks)))
	for i := range d.RxAcks {
		e.rxAck(&d.RxAcks[i])
	}

	e.u32(uint32(len(d.Ports)))
	for i := range d.Ports {
		pd := &d.Ports[i]
		e.u8(uint8(pd.Port))
		e.u64(pd.NextToken)
		e.u32(uint32(len(pd.SendTokens)))
		for j := range pd.SendTokens {
			e.sendToken(&pd.SendTokens[j])
		}
		e.u32(uint32(len(pd.RecvTokens)))
		for j := range pd.RecvTokens {
			e.recvToken(&pd.RecvTokens[j])
		}
		e.u32(uint32(len(pd.SeqStreams)))
		for j := range pd.SeqStreams {
			e.seqStream(&pd.SeqStreams[j])
		}
		e.u32(pd.NextRegion)
		e.u32(uint32(len(pd.Regions)))
		for j := range pd.Regions {
			rd := &pd.Regions[j]
			e.u32(rd.ID)
			e.u8(boolByte(rd.Dirty))
			if rd.Dirty {
				e.bytes(rd.Data)
			}
		}
	}

	e.u32(uint32(len(d.Removed)))
	for _, p := range d.Removed {
		e.u8(uint8(p))
	}

	return e.seal(start)
}

// Encode serializes the delta into a fresh buffer.
func (d *Delta) Encode() []byte {
	return d.AppendTo(make([]byte, 0, 64))
}

// DecodeDelta parses a delta frame, validating framing, version, flags and
// checksum. It never panics on hostile input and the returned delta shares
// no memory with data.
func DecodeDelta(data []byte) (*Delta, error) {
	dl := &Delta{}
	if err := decodeDeltaInto(dl, data); err != nil {
		return nil, err
	}
	return dl, nil
}

// decodeDeltaInto is DecodeDelta writing into a caller-owned frame, reusing
// its slice capacity (including the inner slices of pooled port records).
// A chain replayer decoding hundreds of frames through one scratch Delta
// reaches zero slice-header allocations at steady state; only variable-size
// byte payloads (send-token data, dirty region contents) still copy fresh.
func decodeDeltaInto(dl *Delta, data []byte) error {
	// Fixed header (magic+version+flags+uid+node+seq+prevCRC) plus CRC.
	const fixed = 4 + 2 + 2 + 8 + 2 + 8 + 4
	if len(data) < fixed+4 {
		return ErrTruncated
	}
	body, crcBytes := data[:len(data)-4], data[len(data)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(crcBytes) {
		return fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	d := &decoder{data: body}
	if d.u32() != DeltaMagic {
		return fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := d.u16(); v != DeltaVersion {
		return fmt.Errorf("%w: delta version %d", ErrVersion, v)
	}
	flags := d.u16()
	if flags&^deltaFlagKnown != 0 {
		return fmt.Errorf("%w: unknown delta flags %#x", ErrCorrupt, flags&^deltaFlagKnown)
	}
	dl.Reset()
	dl.RoutesReplaced = flags&deltaFlagRoutes != 0
	dl.RxReplaceAll = flags&deltaFlagRxReplace != 0
	dl.UID = d.u64()
	dl.NodeID = gmproto.NodeID(d.u16())
	dl.Seq = d.u64()
	dl.PrevCRC = d.u32()

	if dl.RoutesReplaced {
		n := d.count(minRoute)
		for i := 0; i < n; i++ {
			node := gmproto.NodeID(d.u16())
			hopLen := int(d.u16())
			if !d.need(hopLen) {
				break
			}
			hops := append([]byte(nil), d.data[d.off:d.off+hopLen]...)
			d.off += hopLen
			dl.Routes = append(dl.Routes, Route{Node: node, Hops: hops})
		}
	}

	n := d.count(minRxAck)
	for i := 0; i < n; i++ {
		dl.RxAcks = append(dl.RxAcks, RxAck{
			Stream: gmproto.StreamID{
				Node: gmproto.NodeID(d.u16()),
				Port: gmproto.PortID(d.u8()),
				Prio: gmproto.Priority(d.u8()),
			},
			Seq: d.u32(),
		})
	}

	n = d.count(minPortDelta)
	for i := 0; i < n; i++ {
		pd := dl.NextPort()
		pd.Port = gmproto.PortID(d.u8())
		pd.NextToken = d.u64()
		pd.SendTokens = pd.SendTokens[:0]
		sn := d.count(minSendToken)
		for j := 0; j < sn; j++ {
			t := gmproto.SendToken{
				ID:       d.u64(),
				Dest:     gmproto.NodeID(d.u16()),
				DestPort: gmproto.PortID(d.u8()),
				SrcPort:  gmproto.PortID(d.u8()),
				Prio:     gmproto.Priority(d.u8()),
				Seq:      d.u32(),
			}
			t.HasSeq = d.u8() != 0
			t.Directed = d.u8() != 0
			t.RegionID = d.u32()
			t.RemoteOffset = d.u32()
			t.Data = d.bytes()
			pd.SendTokens = append(pd.SendTokens, t)
		}
		pd.RecvTokens = pd.RecvTokens[:0]
		rn := d.count(minRecvToken)
		for j := 0; j < rn; j++ {
			pd.RecvTokens = append(pd.RecvTokens, RecvTokenCheckpoint{
				ID:     d.u64(),
				Size:   d.u32(),
				Prio:   gmproto.Priority(d.u8()),
				BufLen: d.u32(),
			})
		}
		pd.SeqStreams = pd.SeqStreams[:0]
		qn := d.count(minSeqStream)
		for j := 0; j < qn; j++ {
			pd.SeqStreams = append(pd.SeqStreams, core.SeqStream{
				Node: gmproto.NodeID(d.u16()),
				Prio: gmproto.Priority(d.u8()),
				Last: d.u32(),
			})
		}
		pd.NextRegion = d.u32()
		pd.Regions = pd.Regions[:0]
		gn := d.count(minRegionDelta)
		for j := 0; j < gn; j++ {
			rd := RegionDelta{ID: d.u32(), Dirty: d.u8() != 0}
			if rd.Dirty {
				rd.Data = d.bytes()
			}
			pd.Regions = append(pd.Regions, rd)
		}
	}

	n = d.count(minRemoved)
	for i := 0; i < n; i++ {
		dl.Removed = append(dl.Removed, gmproto.PortID(d.u8()))
	}

	if d.err != nil {
		return d.err
	}
	if d.off != len(body) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(body)-d.off)
	}
	return nil
}

// Apply merges one delta into the checkpoint in place, keeping every section
// sorted exactly as a fresh Checkpoint() would produce it. The checkpoint
// takes its own copies of the delta's memory, so the delta (which may alias
// live state on the encode side) stays untouched. Chain-order validation
// (Seq, PrevCRC) is ReplayChain's job; Apply validates only what it can see
// on its own: identity and clean-region references.
func (c *Checkpoint) Apply(d *Delta) error {
	if d.UID != c.UID || d.NodeID != c.NodeID {
		return fmt.Errorf("%w: delta for uid=%d node=%d applied to uid=%d node=%d",
			ErrChain, d.UID, d.NodeID, c.UID, c.NodeID)
	}

	if d.RoutesReplaced {
		c.Routes = make([]Route, len(d.Routes))
		for i, r := range d.Routes {
			c.Routes[i] = Route{Node: r.Node, Hops: append([]byte(nil), r.Hops...)}
		}
	}

	if d.RxReplaceAll {
		c.RxAcks = append([]RxAck(nil), d.RxAcks...)
	} else {
		for _, a := range d.RxAcks {
			i := sort.Search(len(c.RxAcks), func(i int) bool {
				return !streamLess(c.RxAcks[i].Stream, a.Stream)
			})
			if i < len(c.RxAcks) && c.RxAcks[i].Stream == a.Stream {
				c.RxAcks[i].Seq = a.Seq
			} else {
				c.RxAcks = append(c.RxAcks, RxAck{})
				copy(c.RxAcks[i+1:], c.RxAcks[i:])
				c.RxAcks[i] = a
			}
		}
	}

	// Removals first: a close-then-reopen inside one interval shows up as
	// the port in both Removed and Ports, and the fresh record must survive.
	for _, p := range d.Removed {
		i := sort.Search(len(c.Ports), func(i int) bool {
			return c.Ports[i].Port >= p
		})
		if i >= len(c.Ports) || c.Ports[i].Port != p {
			return fmt.Errorf("%w: removed port %d absent from base", ErrChain, p)
		}
		c.Ports = append(c.Ports[:i], c.Ports[i+1:]...)
	}

	for pi := range d.Ports {
		pd := &d.Ports[pi]
		i := sort.Search(len(c.Ports), func(i int) bool {
			return c.Ports[i].Port >= pd.Port
		})
		var prev *PortCheckpoint
		if i < len(c.Ports) && c.Ports[i].Port == pd.Port {
			prev = &c.Ports[i]
		}
		pc := PortCheckpoint{
			Port:       pd.Port,
			NextToken:  pd.NextToken,
			NextRegion: pd.NextRegion,
		}
		// The replaced record's slices have exactly one owner (the checkpoint)
		// and are about to be dropped — recycle their capacity, so a long
		// chain replay stops allocating per frame once the records reach
		// their steady-state sizes.
		if len(pd.SendTokens) > 0 {
			if prev != nil {
				pc.SendTokens = prev.SendTokens[:0]
			}
			for _, t := range pd.SendTokens {
				t.Data = append([]byte(nil), t.Data...)
				pc.SendTokens = append(pc.SendTokens, t)
			}
		}
		if len(pd.RecvTokens) > 0 {
			var dst []RecvTokenCheckpoint
			if prev != nil {
				dst = prev.RecvTokens[:0]
			}
			pc.RecvTokens = append(dst, pd.RecvTokens...)
		}
		if len(pd.SeqStreams) > 0 {
			var dst []core.SeqStream
			if prev != nil {
				dst = prev.SeqStreams[:0]
			}
			pc.SeqStreams = append(dst, pd.SeqStreams...)
		}
		if n := len(pd.Regions); n > 0 {
			pc.Regions = make([]RegionCheckpoint, n)
			for j := range pd.Regions {
				rd := &pd.Regions[j]
				if rd.Dirty {
					pc.Regions[j] = RegionCheckpoint{
						ID:   rd.ID,
						Data: append([]byte(nil), rd.Data...),
					}
					continue
				}
				old := prevRegion(prev, rd.ID)
				if old == nil {
					return fmt.Errorf("%w: port %d region %d marked clean but absent from base",
						ErrChain, pd.Port, rd.ID)
				}
				// Move, don't share: prev is about to be replaced, so the
				// old buffer has exactly one owner either way.
				pc.Regions[j] = RegionCheckpoint{ID: rd.ID, Data: old.Data}
			}
		}
		if prev != nil {
			c.Ports[i] = pc
		} else {
			c.Ports = append(c.Ports, PortCheckpoint{})
			copy(c.Ports[i+1:], c.Ports[i:])
			c.Ports[i] = pc
		}
	}

	return nil
}

// prevRegion finds the region with the given id in the predecessor port
// record, or nil.
func prevRegion(prev *PortCheckpoint, id uint32) *RegionCheckpoint {
	if prev == nil {
		return nil
	}
	for i := range prev.Regions {
		if prev.Regions[i].ID == id {
			return &prev.Regions[i]
		}
	}
	return nil
}

// streamLess orders receive-commit entries by (node, port, priority) — the
// sort order Checkpoint() uses for the RxAcks section.
func streamLess(a, b gmproto.StreamID) bool {
	if a.Node != b.Node {
		return a.Node < b.Node
	}
	if a.Port != b.Port {
		return a.Port < b.Port
	}
	return a.Prio < b.Prio
}

// ReplayChain reconstructs a checkpoint from a base frame and its ordered
// delta chain, validating end-to-end integrity: each delta must decode, sit
// at the next chain position, name the same interface, and carry the
// predecessor frame's trailing CRC. The result is bit-identical (after
// re-encoding) to a full checkpoint taken at the final delta's drain point.
func ReplayChain(base []byte, deltas [][]byte) (*Checkpoint, error) {
	c, err := Decode(base)
	if err != nil {
		return nil, fmt.Errorf("ckpt: chain base: %w", err)
	}
	prevCRC := TrailingCRC(base)
	// One scratch frame serves the whole chain: decodeDeltaInto reuses its
	// capacity and Apply copies everything it keeps, so per-frame cost stays
	// flat however long the chain grows.
	d := &Delta{}
	for i, frame := range deltas {
		if err := decodeDeltaInto(d, frame); err != nil {
			return nil, fmt.Errorf("ckpt: chain delta %d: %w", i+1, err)
		}
		if d.Seq != uint64(i+1) {
			return nil, fmt.Errorf("%w: delta %d carries seq %d", ErrChain, i+1, d.Seq)
		}
		if d.PrevCRC != prevCRC {
			return nil, fmt.Errorf("%w: delta %d prevCRC %#x != predecessor CRC %#x",
				ErrChain, i+1, d.PrevCRC, prevCRC)
		}
		if err := c.Apply(d); err != nil {
			return nil, fmt.Errorf("ckpt: chain delta %d: %w", i+1, err)
		}
		prevCRC = TrailingCRC(frame)
	}
	return c, nil
}
