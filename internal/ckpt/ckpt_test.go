package ckpt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"testing"

	"repro/internal/core"
	"repro/internal/gmproto"
)

// seedCheckpoints returns representative checkpoints: an empty anchor, a
// minimal one, and a fully populated node mid-burst. The fuzz corpus seeds
// from these, and the round-trip tests sweep them.
func seedCheckpoints() []*Checkpoint {
	return []*Checkpoint{
		{UID: 1, NodeID: 1},
		{
			UID:    7,
			NodeID: 3,
			Routes: []Route{{Node: 1, Hops: []byte{0x81}}, {Node: 2, Hops: nil}},
			RxAcks: []RxAck{{Stream: gmproto.StreamID{Node: 1, Port: 2, Prio: gmproto.PriorityLow}, Seq: 41}},
			Ports: []PortCheckpoint{{
				Port:      2,
				NextToken: 9,
			}},
		},
		{
			UID:    0xdeadbeefcafe,
			NodeID: 12,
			Routes: []Route{
				{Node: 1, Hops: []byte{0x80, 0x81, 0x82}},
				{Node: 5, Hops: []byte{0x83}},
			},
			RxAcks: []RxAck{
				{Stream: gmproto.StreamID{Node: 1, Port: 2, Prio: gmproto.PriorityLow}, Seq: 100},
				{Stream: gmproto.StreamID{Node: 1, Port: 2, Prio: gmproto.PriorityHigh}, Seq: 3},
				{Stream: gmproto.StreamID{Node: 5, Port: 4, Prio: gmproto.PriorityLow}, Seq: 77},
			},
			Ports: []PortCheckpoint{
				{
					Port:      2,
					NextToken: 1234,
					SendTokens: []gmproto.SendToken{
						{
							ID: 17, Dest: 5, DestPort: 2, SrcPort: 2,
							Prio: gmproto.PriorityLow, Seq: 88, HasSeq: true,
							Data: []byte("unacked payload"),
						},
						{
							ID: 18, Dest: 5, DestPort: 2, SrcPort: 2,
							Prio: gmproto.PriorityHigh, Seq: 4, HasSeq: true,
							Directed: true, RegionID: 3, RemoteOffset: 4096,
							Data: []byte{},
						},
					},
					RecvTokens: []RecvTokenCheckpoint{
						{ID: 40, Size: 512, Prio: gmproto.PriorityLow, BufLen: 512},
						{ID: 41, Size: 4096, Prio: gmproto.PriorityHigh, BufLen: 4096},
					},
					SeqStreams: []core.SeqStream{
						{Node: 1, Prio: gmproto.PriorityLow, Last: 10},
						{Node: 5, Prio: gmproto.PriorityLow, Last: 88},
						{Node: 5, Prio: gmproto.PriorityHigh, Last: 4},
					},
					NextRegion: 3,
					Regions: []RegionCheckpoint{
						{ID: 1, Data: []byte("acked deposit bytes")},
						{ID: 3, Data: make([]byte, 64)},
					},
				},
				{Port: 4, NextToken: 2},
			},
		},
	}
}

// TestRoundTrip: Encode then Decode must reproduce the checkpoint exactly;
// re-encoding the decoded form must be byte-identical (the canonical-form
// property the fuzz target relies on).
func TestRoundTrip(t *testing.T) {
	for i, c := range seedCheckpoints() {
		enc := c.Encode()
		dec, err := Decode(enc)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", i, err)
		}
		if dec.UID != c.UID || dec.NodeID != c.NodeID {
			t.Fatalf("seed %d: identity %d/%d, want %d/%d", i, dec.UID, dec.NodeID, c.UID, c.NodeID)
		}
		if len(dec.Routes) != len(c.Routes) || len(dec.RxAcks) != len(c.RxAcks) || len(dec.Ports) != len(c.Ports) {
			t.Fatalf("seed %d: section lengths differ", i)
		}
		re := dec.Encode()
		if !bytes.Equal(re, enc) {
			t.Fatalf("seed %d: re-encode differs (%d vs %d bytes)", i, len(re), len(enc))
		}
	}
}

// TestEncodeDeterministic: two encodes of the same state are byte-identical.
func TestEncodeDeterministic(t *testing.T) {
	for i, c := range seedCheckpoints() {
		if !bytes.Equal(c.Encode(), c.Encode()) {
			t.Fatalf("seed %d: non-deterministic encode", i)
		}
	}
}

// TestDecodeCopies: a decoded checkpoint must not alias the input buffer.
func TestDecodeCopies(t *testing.T) {
	c := seedCheckpoints()[2]
	enc := c.Encode()
	dec, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	wantHops := append([]byte(nil), dec.Routes[0].Hops...)
	wantData := append([]byte(nil), dec.Ports[0].SendTokens[0].Data...)
	wantRegion := append([]byte(nil), dec.Ports[0].Regions[0].Data...)
	for i := range enc {
		enc[i] = 0xff
	}
	if !bytes.Equal(dec.Routes[0].Hops, wantHops) {
		t.Fatal("route hops alias the input buffer")
	}
	if !bytes.Equal(dec.Ports[0].SendTokens[0].Data, wantData) {
		t.Fatal("send-token data aliases the input buffer")
	}
	if !bytes.Equal(dec.Ports[0].Regions[0].Data, wantRegion) {
		t.Fatal("region contents alias the input buffer")
	}
}

// seal appends a valid CRC; reseal re-checksums a mutated sealed stream so
// inner corruption reaches the structural checks.
func seal(body []byte) []byte {
	return binary.LittleEndian.AppendUint32(append([]byte(nil), body...), crc32.ChecksumIEEE(body))
}

func reseal(b []byte) []byte { return seal(b[:len(b)-4]) }

// TestDecodeRejects: hostile input comes back as typed errors, never panics.
func TestDecodeRejects(t *testing.T) {
	good := seedCheckpoints()[2].Encode()
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short", good[:10], ErrTruncated},
		{"bitflip", func() []byte {
			b := append([]byte(nil), good...)
			b[20] ^= 0x10
			return b
		}(), ErrCorrupt},
		{"bad-magic", func() []byte {
			b := append([]byte(nil), good...)
			binary.LittleEndian.PutUint32(b[0:4], 0x12345678)
			return reseal(b)
		}(), ErrCorrupt},
		{"bad-version", func() []byte {
			b := append([]byte(nil), good...)
			binary.LittleEndian.PutUint16(b[4:6], 0xfffe)
			return reseal(b)
		}(), ErrVersion},
		{"hostile-count", func() []byte {
			b := append([]byte(nil), good...)
			// Route count lives right after the 18-byte fixed header.
			binary.LittleEndian.PutUint32(b[18:22], 1<<31)
			return reseal(b)
		}(), ErrTruncated},
		{"truncated-resealed", reseal(good[:len(good)/2]), ErrTruncated},
		{"trailing-garbage", seal(append(append([]byte(nil), good[:len(good)-4]...), 9, 9)), ErrCorrupt},
	}
	for _, tc := range cases {
		c, err := Decode(tc.data)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: Decode = (%v, %v), want %v", tc.name, c, err, tc.want)
		}
	}
}
