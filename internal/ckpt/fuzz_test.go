package ckpt

import (
	"bytes"
	"testing"
)

// FuzzDecodeCheckpoint hammers the checkpoint decoder with mutated streams.
// The invariants: Decode never panics, never allocates unboundedly from a
// hostile count, and anything it accepts is canonical — re-encoding the
// decoded checkpoint reproduces the accepted bytes exactly. Seeded with the
// representative checkpoints plus targeted mutations of each.
func FuzzDecodeCheckpoint(f *testing.F) {
	for _, c := range seedCheckpoints() {
		enc := c.Encode()
		f.Add(enc)
		if len(enc) > 8 {
			f.Add(enc[:len(enc)/2])
			mut := append([]byte(nil), enc...)
			mut[len(mut)/3] ^= 0x80
			f.Add(mut)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0x4b, 0x43, 0x4d, 0x47}) // magic alone
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Decode(data)
		if err != nil {
			if c != nil {
				t.Fatal("Decode returned both a checkpoint and an error")
			}
			return
		}
		re := c.Encode()
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted stream is not canonical: %d bytes in, %d bytes re-encoded", len(data), len(re))
		}
	})
}
