package ckpt

import (
	"bytes"
	"testing"
)

// FuzzDecodeCheckpoint hammers the checkpoint decoder with mutated streams.
// The invariants: Decode never panics, never allocates unboundedly from a
// hostile count, and anything it accepts is canonical — re-encoding the
// decoded checkpoint reproduces the accepted bytes exactly. Seeded with the
// representative checkpoints plus targeted mutations of each.
func FuzzDecodeCheckpoint(f *testing.F) {
	for _, c := range seedCheckpoints() {
		enc := c.Encode()
		f.Add(enc)
		if len(enc) > 8 {
			f.Add(enc[:len(enc)/2])
			mut := append([]byte(nil), enc...)
			mut[len(mut)/3] ^= 0x80
			f.Add(mut)
		}
	}
	for _, seed := range deltaChainSeeds() {
		f.Add(seed)
	}
	f.Add([]byte{})
	f.Add([]byte{0x4b, 0x43, 0x4d, 0x47}) // magic alone
	f.Fuzz(func(t *testing.T, data []byte) {
		c, err := Decode(data)
		if err != nil {
			if c != nil {
				t.Fatal("Decode returned both a checkpoint and an error")
			}
			return
		}
		re := c.Encode()
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted stream is not canonical: %d bytes in, %d bytes re-encoded", len(data), len(re))
		}
	})
}

// deltaChainSeeds builds delta frames exercising the chain failure modes —
// a truncated chain frame, a CRC-broken link, and a version-skewed frame —
// shared between the checkpoint and delta fuzz corpora (the base decoder
// must cleanly reject delta frames and vice versa).
func deltaChainSeeds() [][]byte {
	_, frames := chainFrames(seedCheckpoints()[2], seedDeltas())
	var seeds [][]byte
	for _, enc := range frames {
		seeds = append(seeds, enc)
		if len(enc) > 8 {
			seeds = append(seeds, enc[:len(enc)/2]) // truncated chain frame
			link := append([]byte(nil), enc...)
			link[26] ^= 0xff // PrevCRC word: CRC-broken link
			seeds = append(seeds, reseal(link))
			skew := append([]byte(nil), enc...)
			skew[4] ^= 0x02 // version skew
			seeds = append(seeds, reseal(skew))
		}
	}
	return seeds
}

// FuzzDecodeDelta is the delta-frame analogue of FuzzDecodeCheckpoint: the
// decoder never panics, never over-allocates from hostile counts, and every
// accepted frame is canonical under re-encode. Anything a mutated frame
// decodes into must also survive ReplayChain without panicking when chained
// onto a seed base.
func FuzzDecodeDelta(f *testing.F) {
	for _, seed := range deltaChainSeeds() {
		f.Add(seed)
	}
	for _, c := range seedCheckpoints() {
		f.Add(c.Encode()) // wrong family: must be rejected, not misparsed
	}
	f.Add([]byte{})
	f.Add([]byte{0x44, 0x43, 0x4d, 0x47}) // delta magic alone
	base := seedCheckpoints()[2]
	baseFrame := base.Encode()
	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeDelta(data)
		if err != nil {
			if d != nil {
				t.Fatal("DecodeDelta returned both a delta and an error")
			}
			return
		}
		re := d.Encode()
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted frame is not canonical: %d bytes in, %d bytes re-encoded", len(data), len(re))
		}
		// Chain replay must reject or succeed, never panic; when it
		// succeeds the result must still encode canonically.
		if c, err := ReplayChain(baseFrame, [][]byte{data}); err == nil {
			if !bytes.Equal(c.Encode(), MustDecode(t, c.Encode()).Encode()) {
				t.Fatal("replayed checkpoint is not canonical")
			}
		}
	})
}

// MustDecode decodes or fails the test.
func MustDecode(t *testing.T, data []byte) *Checkpoint {
	t.Helper()
	c, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	return c
}
