package ckpt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/gmproto"
)

// seedDeltas returns representative delta frames chained onto the seed
// checkpoints: an empty heartbeat delta, an ack-merge delta, and a busy one
// exercising every section including clean-region inheritance, a port
// insert, and a port removal.
func seedDeltas() []*Delta {
	base := seedCheckpoints()[2]
	return []*Delta{
		{UID: base.UID, NodeID: base.NodeID, Seq: 1, PrevCRC: 0x1234},
		{
			UID: base.UID, NodeID: base.NodeID, Seq: 2, PrevCRC: 0xcafe,
			RxAcks: []RxAck{
				{Stream: gmproto.StreamID{Node: 1, Port: 2, Prio: gmproto.PriorityLow}, Seq: 101},
				{Stream: gmproto.StreamID{Node: 9, Port: 1, Prio: gmproto.PriorityHigh}, Seq: 1},
			},
		},
		{
			UID: base.UID, NodeID: base.NodeID, Seq: 3, PrevCRC: 0xfeed,
			RoutesReplaced: true,
			Routes: []Route{
				{Node: 1, Hops: []byte{0x90}},
				{Node: 7, Hops: []byte{0x91, 0x92}},
			},
			RxReplaceAll: true,
			RxAcks: []RxAck{
				{Stream: gmproto.StreamID{Node: 1, Port: 2, Prio: gmproto.PriorityLow}, Seq: 200},
			},
			Ports: []PortDelta{
				{
					Port:      2,
					NextToken: 1300,
					SendTokens: []gmproto.SendToken{{
						ID: 19, Dest: 1, DestPort: 2, SrcPort: 2,
						Prio: gmproto.PriorityLow, Seq: 89, HasSeq: true,
						Data: []byte("delta payload"),
					}},
					RecvTokens: []RecvTokenCheckpoint{
						{ID: 42, Size: 256, Prio: gmproto.PriorityLow, BufLen: 256},
					},
					SeqStreams: []core.SeqStream{
						{Node: 1, Prio: gmproto.PriorityLow, Last: 11},
					},
					NextRegion: 3,
					Regions: []RegionDelta{
						{ID: 1, Dirty: true, Data: []byte("fresh deposit bytes")},
						{ID: 3, Dirty: false},
					},
				},
				{Port: 6, NextToken: 1},
			},
			Removed: []gmproto.PortID{4},
		},
	}
}

// TestDeltaRoundTrip: AppendTo then DecodeDelta must reproduce the delta
// exactly, and re-encoding the decoded form must be byte-identical (the
// canonical-form property the delta fuzz target relies on).
func TestDeltaRoundTrip(t *testing.T) {
	for i, d := range seedDeltas() {
		enc := d.Encode()
		dec, err := DecodeDelta(enc)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", i, err)
		}
		if dec.UID != d.UID || dec.NodeID != d.NodeID || dec.Seq != d.Seq || dec.PrevCRC != d.PrevCRC {
			t.Fatalf("seed %d: header fields differ", i)
		}
		if dec.RoutesReplaced != d.RoutesReplaced || dec.RxReplaceAll != d.RxReplaceAll {
			t.Fatalf("seed %d: flags differ", i)
		}
		if len(dec.Ports) != len(d.Ports) || len(dec.Removed) != len(d.Removed) {
			t.Fatalf("seed %d: section lengths differ", i)
		}
		re := dec.Encode()
		if !bytes.Equal(re, enc) {
			t.Fatalf("seed %d: re-encode differs (%d vs %d bytes)", i, len(re), len(enc))
		}
	}
}

// TestDeltaDecodeCopies: a decoded delta must not alias the input buffer.
func TestDeltaDecodeCopies(t *testing.T) {
	enc := seedDeltas()[2].Encode()
	dec, err := DecodeDelta(enc)
	if err != nil {
		t.Fatal(err)
	}
	wantHops := append([]byte(nil), dec.Routes[0].Hops...)
	wantData := append([]byte(nil), dec.Ports[0].SendTokens[0].Data...)
	wantRegion := append([]byte(nil), dec.Ports[0].Regions[0].Data...)
	for i := range enc {
		enc[i] = 0xff
	}
	if !bytes.Equal(dec.Routes[0].Hops, wantHops) ||
		!bytes.Equal(dec.Ports[0].SendTokens[0].Data, wantData) ||
		!bytes.Equal(dec.Ports[0].Regions[0].Data, wantRegion) {
		t.Fatal("decoded delta aliases the input buffer")
	}
}

// chainFrames encodes base + deltas with correct Seq/PrevCRC stitching and
// returns the wire frames.
func chainFrames(base *Checkpoint, deltas []*Delta) ([]byte, [][]byte) {
	baseFrame := base.Encode()
	prev := TrailingCRC(baseFrame)
	frames := make([][]byte, len(deltas))
	for i, d := range deltas {
		d.Seq = uint64(i + 1)
		d.PrevCRC = prev
		frames[i] = d.Encode()
		prev = TrailingCRC(frames[i])
	}
	return baseFrame, frames
}

// TestReplayChain: applying a chain reconstructs the expected checkpoint
// with every section still sorted, and the replayed checkpoint re-encodes
// canonically (base+delta round-trip property).
func TestReplayChain(t *testing.T) {
	base := seedCheckpoints()[2]
	deltas := seedDeltas()
	baseFrame, frames := chainFrames(base, deltas)

	got, err := ReplayChain(baseFrame, frames)
	if err != nil {
		t.Fatal(err)
	}

	// The busy delta replaced routes, the whole ack table, port 2, inserted
	// port 6 and removed port 4.
	want := &Checkpoint{
		UID:    base.UID,
		NodeID: base.NodeID,
		Routes: []Route{
			{Node: 1, Hops: []byte{0x90}},
			{Node: 7, Hops: []byte{0x91, 0x92}},
		},
		RxAcks: []RxAck{
			{Stream: gmproto.StreamID{Node: 1, Port: 2, Prio: gmproto.PriorityLow}, Seq: 200},
		},
		Ports: []PortCheckpoint{
			{
				Port:      2,
				NextToken: 1300,
				SendTokens: []gmproto.SendToken{{
					ID: 19, Dest: 1, DestPort: 2, SrcPort: 2,
					Prio: gmproto.PriorityLow, Seq: 89, HasSeq: true,
					Data: []byte("delta payload"),
				}},
				RecvTokens: []RecvTokenCheckpoint{
					{ID: 42, Size: 256, Prio: gmproto.PriorityLow, BufLen: 256},
				},
				SeqStreams: []core.SeqStream{
					{Node: 1, Prio: gmproto.PriorityLow, Last: 11},
				},
				NextRegion: 3,
				Regions: []RegionCheckpoint{
					{ID: 1, Data: []byte("fresh deposit bytes")},
					{ID: 3, Data: make([]byte, 64)}, // inherited clean from base
				},
			},
			{Port: 6, NextToken: 1},
		},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed checkpoint differs:\ngot  %+v\nwant %+v", got, want)
	}

	// Canonical: the replayed checkpoint must re-encode to exactly what a
	// fresh encode of the same state produces, and decode back canonically.
	re := got.Encode()
	if !bytes.Equal(re, want.Encode()) {
		t.Fatal("replayed checkpoint does not encode canonically")
	}
	dec, err := Decode(re)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.Encode(), re) {
		t.Fatal("replayed checkpoint round-trip is not canonical")
	}
}

// TestApplyMerges: ack merges hit both the replace and the sorted-insert
// paths, and applying to the wrong identity fails.
func TestApplyMerges(t *testing.T) {
	base := seedCheckpoints()[2]
	c, err := Decode(base.Encode())
	if err != nil {
		t.Fatal(err)
	}
	d := seedDeltas()[1] // two ack updates: one replace, one insert
	if err := c.Apply(d); err != nil {
		t.Fatal(err)
	}
	if len(c.RxAcks) != 4 {
		t.Fatalf("RxAcks len = %d, want 4", len(c.RxAcks))
	}
	if c.RxAcks[0].Seq != 101 {
		t.Fatalf("replaced ack seq = %d, want 101", c.RxAcks[0].Seq)
	}
	if c.RxAcks[3].Stream.Node != 9 || c.RxAcks[3].Seq != 1 {
		t.Fatalf("inserted ack misplaced: %+v", c.RxAcks[3])
	}
	for i := 1; i < len(c.RxAcks); i++ {
		if !streamLess(c.RxAcks[i-1].Stream, c.RxAcks[i].Stream) {
			t.Fatal("RxAcks not sorted after merge")
		}
	}

	bad := &Delta{UID: 999, NodeID: c.NodeID}
	if err := c.Apply(bad); !errors.Is(err, ErrChain) {
		t.Fatalf("identity mismatch: err = %v, want ErrChain", err)
	}
}

// TestReplayChainRejects: every chain-integrity violation is detected.
func TestReplayChainRejects(t *testing.T) {
	base := seedCheckpoints()[2]
	deltas := seedDeltas()
	baseFrame, frames := chainFrames(base, deltas)

	t.Run("gap", func(t *testing.T) {
		if _, err := ReplayChain(baseFrame, [][]byte{frames[0], frames[2]}); !errors.Is(err, ErrChain) {
			t.Fatalf("err = %v, want ErrChain", err)
		}
	})
	t.Run("reorder", func(t *testing.T) {
		if _, err := ReplayChain(baseFrame, [][]byte{frames[1], frames[0], frames[2]}); !errors.Is(err, ErrChain) {
			t.Fatalf("err = %v, want ErrChain", err)
		}
	})
	t.Run("crc-link", func(t *testing.T) {
		// A frame that is individually valid but chained onto different
		// predecessor bytes: rebuild delta 2 with a wrong PrevCRC.
		d := seedDeltas()[1]
		d.Seq = 2
		d.PrevCRC ^= 0xffffffff
		if _, err := ReplayChain(baseFrame, [][]byte{frames[0], d.Encode()}); !errors.Is(err, ErrChain) {
			t.Fatalf("err = %v, want ErrChain", err)
		}
	})
	t.Run("corrupt-frame", func(t *testing.T) {
		mut := append([]byte(nil), frames[1]...)
		mut[len(mut)/2] ^= 0x40
		if _, err := ReplayChain(baseFrame, [][]byte{frames[0], mut}); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("err = %v, want ErrCorrupt", err)
		}
	})
	t.Run("clean-region-missing", func(t *testing.T) {
		d := &Delta{
			UID: base.UID, NodeID: base.NodeID, Seq: 1,
			PrevCRC: TrailingCRC(baseFrame),
			Ports: []PortDelta{{
				Port:    4, // exists in base but has no regions
				Regions: []RegionDelta{{ID: 9, Dirty: false}},
			}},
		}
		if _, err := ReplayChain(baseFrame, [][]byte{d.Encode()}); !errors.Is(err, ErrChain) {
			t.Fatalf("err = %v, want ErrChain", err)
		}
	})
	t.Run("remove-missing", func(t *testing.T) {
		d := &Delta{
			UID: base.UID, NodeID: base.NodeID, Seq: 1,
			PrevCRC: TrailingCRC(baseFrame),
			Removed: []gmproto.PortID{7},
		}
		if _, err := ReplayChain(baseFrame, [][]byte{d.Encode()}); !errors.Is(err, ErrChain) {
			t.Fatalf("err = %v, want ErrChain", err)
		}
	})
}

// TestDeltaDecodeRejects: hostile delta input comes back as typed errors.
func TestDeltaDecodeRejects(t *testing.T) {
	good := seedDeltas()[2].Encode()
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrTruncated},
		{"short", good[:12], ErrTruncated},
		{"base-frame", seedCheckpoints()[2].Encode(), ErrCorrupt}, // GMCK magic
		{"bad-version", func() []byte {
			b := append([]byte(nil), good...)
			binary.LittleEndian.PutUint16(b[4:6], 0x7777)
			return reseal(b)
		}(), ErrVersion},
		{"unknown-flags", func() []byte {
			b := append([]byte(nil), good...)
			binary.LittleEndian.PutUint16(b[6:8], 0x8003)
			return reseal(b)
		}(), ErrCorrupt},
		{"bitflip", func() []byte {
			b := append([]byte(nil), good...)
			b[25] ^= 0x08
			return b
		}(), ErrCorrupt},
		{"hostile-count", func() []byte {
			b := append([]byte(nil), good...)
			// Route count sits right after the 30-byte fixed delta header.
			binary.LittleEndian.PutUint32(b[30:34], 1<<31)
			return reseal(b)
		}(), ErrTruncated},
		{"truncated-resealed", reseal(good[:len(good)/2]), ErrTruncated},
		{"trailing-garbage", seal(append(append([]byte(nil), good[:len(good)-4]...), 1)), ErrCorrupt},
	}
	for _, tc := range cases {
		d, err := DecodeDelta(tc.data)
		if !errors.Is(err, tc.want) {
			t.Errorf("%s: DecodeDelta = (%v, %v), want %v", tc.name, d, err, tc.want)
		}
	}
}

// TestDeltaBuildZeroAlloc: rebuilding and re-encoding a retained delta frame
// allocates nothing once its arenas have reached steady-state capacity —
// the property the periodic checkpoint pipeline relies on.
func TestDeltaBuildZeroAlloc(t *testing.T) {
	payload := []byte("steady-state payload")
	region := make([]byte, 128)
	var d Delta
	var buf []byte
	build := func() {
		d.Reset()
		d.UID, d.NodeID, d.Seq, d.PrevCRC = 42, 3, 7, 0xabcd
		d.RxAcks = append(d.RxAcks, RxAck{
			Stream: gmproto.StreamID{Node: 1, Port: 2}, Seq: 9,
		})
		pd := d.NextPort()
		pd.Port, pd.NextToken, pd.NextRegion = 2, 55, 2
		pd.SendTokens = append(pd.SendTokens[:0], gmproto.SendToken{
			ID: 1, Dest: 1, Seq: 3, HasSeq: true, Data: payload,
		})
		pd.RecvTokens = pd.RecvTokens[:0]
		pd.SeqStreams = append(pd.SeqStreams[:0], core.SeqStream{Node: 1, Last: 3})
		rd := pd.NextRegionDelta()
		rd.ID, rd.Dirty, rd.Data = 1, true, region
		buf = d.AppendTo(buf[:0])
	}
	build() // warm the arenas
	if allocs := testing.AllocsPerRun(100, build); allocs != 0 {
		t.Fatalf("delta build+encode allocates %.1f/op, want 0", allocs)
	}
	if _, err := DecodeDelta(buf); err != nil {
		t.Fatal(err)
	}
}
