package host

import "repro/internal/sim"

// CPUAccount accumulates host-CPU time charged to a process by the
// messaging library. GM's claim to fame is tiny host overhead (0.30 µs per
// send, 0.75 µs per receive on the paper's hosts); FTGM adds the
// token-housekeeping costs on top. Table 2's "Host util." rows are computed
// from these counters.
type CPUAccount struct {
	busy      sim.Duration
	sends     uint64
	recvs     uint64
	sendBusy  sim.Duration
	recvBusy  sim.Duration
	otherBusy sim.Duration

	// Speculation journaling (sim spec.go). The account has no engine of its
	// own, so the owning library code calls SpecTouch before charging.
	specMark uint64
	shadow   cpuShadow
}

type cpuShadow struct {
	busy      sim.Duration
	sends     uint64
	recvs     uint64
	sendBusy  sim.Duration
	recvBusy  sim.Duration
	otherBusy sim.Duration
}

// SpecTouch journals the account into eng's current span on first touch.
// Call before ChargeSend/ChargeRecv/Charge from speculating domain code.
func (c *CPUAccount) SpecTouch(eng *sim.Engine) { eng.SpecTouch(&c.specMark, c) }

// SpecSave / SpecRestore implement sim.SpecSaver.
func (c *CPUAccount) SpecSave() {
	c.shadow = cpuShadow{busy: c.busy, sends: c.sends, recvs: c.recvs,
		sendBusy: c.sendBusy, recvBusy: c.recvBusy, otherBusy: c.otherBusy}
}

func (c *CPUAccount) SpecRestore() {
	c.busy, c.sends, c.recvs = c.shadow.busy, c.shadow.sends, c.shadow.recvs
	c.sendBusy, c.recvBusy, c.otherBusy = c.shadow.sendBusy, c.shadow.recvBusy, c.shadow.otherBusy
}

// ChargeSend records host-CPU time spent posting a send.
func (c *CPUAccount) ChargeSend(d sim.Duration) {
	c.busy += d
	c.sendBusy += d
	c.sends++
}

// ChargeRecv records host-CPU time spent handling a receive.
func (c *CPUAccount) ChargeRecv(d sim.Duration) {
	c.busy += d
	c.recvBusy += d
	c.recvs++
}

// Charge records other library host-CPU time (polling, recovery handler).
func (c *CPUAccount) Charge(d sim.Duration) {
	c.busy += d
	c.otherBusy += d
}

// Busy reports total charged time.
func (c *CPUAccount) Busy() sim.Duration { return c.busy }

// PerSend reports the mean host-CPU cost of a send in virtual time.
func (c *CPUAccount) PerSend() sim.Duration {
	if c.sends == 0 {
		return 0
	}
	return c.sendBusy / sim.Duration(c.sends)
}

// PerRecv reports the mean host-CPU cost of a receive in virtual time.
func (c *CPUAccount) PerRecv() sim.Duration {
	if c.recvs == 0 {
		return 0
	}
	return c.recvBusy / sim.Duration(c.recvs)
}

// Counts reports how many sends and receives were charged.
func (c *CPUAccount) Counts() (sends, recvs uint64) { return c.sends, c.recvs }

// Reset zeroes the account (between benchmark phases).
func (c *CPUAccount) Reset() { *c = CPUAccount{} }
