package host

import (
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestPCITransferTiming(t *testing.T) {
	eng := sim.NewEngine(1)
	bus := NewPCIBus(eng, "pci0", PCIConfig{BytesPerSec: 264e6, TxnOverhead: 1500})
	var doneAt sim.Time
	end := bus.Transfer(264, func() { doneAt = eng.Now() })
	eng.Run()
	// 264 bytes at 264 MB/s = 1000 ns + 1500 ns overhead.
	if want := sim.Time(2500); end != want || doneAt != want {
		t.Errorf("end=%v doneAt=%v, want %v", end, doneAt, want)
	}
}

func TestPCISerialization(t *testing.T) {
	eng := sim.NewEngine(1)
	bus := NewPCIBus(eng, "pci0", PCIConfig{BytesPerSec: 264e6, TxnOverhead: 1500})
	var times []sim.Time
	bus.Transfer(264, func() { times = append(times, eng.Now()) })
	bus.Transfer(264, func() { times = append(times, eng.Now()) })
	eng.Run()
	if len(times) != 2 || times[0] != 2500 || times[1] != 5000 {
		t.Errorf("times = %v, want [2500 5000]", times)
	}
	st := bus.Stats()
	if st.Transactions != 2 || st.Bytes != 528 || st.Busy != 5000 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPCIUtilization(t *testing.T) {
	eng := sim.NewEngine(1)
	bus := NewPCIBus(eng, "pci0", PCIConfig{BytesPerSec: 264e6, TxnOverhead: 0})
	bus.Transfer(264, nil)
	eng.RunUntil(2000)
	if u := bus.Utilization(); u != 0.5 {
		t.Errorf("utilization = %v, want 0.5", u)
	}
}

func TestPCINilDone(t *testing.T) {
	eng := sim.NewEngine(1)
	bus := NewPCIBus(eng, "pci0", DefaultPCIConfig())
	bus.Transfer(100, nil) // must not panic
	eng.Run()
}

func TestPageTablePinLookup(t *testing.T) {
	pt := NewPageTable()
	h, err := pt.Pin(2, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	got, err := pt.Lookup(2, 0x10000+123)
	if err != nil {
		t.Fatal(err)
	}
	if got != h+123 {
		t.Errorf("Lookup = %#x, want %#x", got, h+123)
	}
	if _, err := pt.Lookup(3, 0x10000); !errors.Is(err, ErrNotPinned) {
		t.Errorf("cross-port lookup err = %v, want ErrNotPinned", err)
	}
	if _, err := pt.Pin(2, 0x10000+8); !errors.Is(err, ErrAlreadyPinned) {
		t.Errorf("double pin err = %v, want ErrAlreadyPinned", err)
	}
}

func TestPageTablePinRange(t *testing.T) {
	pt := NewPageTable()
	// 3 pages: straddles from mid-page 1 to mid-page 3.
	if err := pt.PinRange(1, PageSize+100, 2*PageSize); err != nil {
		t.Fatal(err)
	}
	if pt.Len() != 3 {
		t.Errorf("Len = %d, want 3", pt.Len())
	}
	// Overlapping range re-pins nothing and succeeds.
	if err := pt.PinRange(1, PageSize, PageSize); err != nil {
		t.Fatal(err)
	}
	if pt.Len() != 3 {
		t.Errorf("Len after overlap = %d, want 3", pt.Len())
	}
	if err := pt.PinRange(1, 0, 0); err != nil {
		t.Errorf("zero-size PinRange: %v", err)
	}
}

func TestPageTableUnpinPort(t *testing.T) {
	pt := NewPageTable()
	if err := pt.PinRange(1, 0, 4*PageSize); err != nil {
		t.Fatal(err)
	}
	if err := pt.PinRange(2, 0, 2*PageSize); err != nil {
		t.Fatal(err)
	}
	if n := pt.UnpinPort(1); n != 4 {
		t.Errorf("UnpinPort(1) = %d, want 4", n)
	}
	if pt.Len() != 2 {
		t.Errorf("Len = %d, want 2", pt.Len())
	}
	if _, err := pt.Lookup(1, 0); err == nil {
		t.Error("lookup of unpinned page succeeded")
	}
	if _, err := pt.Lookup(2, 0); err != nil {
		t.Errorf("port 2 pages lost: %v", err)
	}
}

func TestPageTableEntries(t *testing.T) {
	pt := NewPageTable()
	if err := pt.PinRange(5, 0, 3*PageSize); err != nil {
		t.Fatal(err)
	}
	es := pt.Entries()
	if len(es) != 3 {
		t.Fatalf("Entries len = %d", len(es))
	}
	for _, e := range es {
		if e.Port != 5 {
			t.Errorf("entry port = %d", e.Port)
		}
	}
}

func TestCPUAccount(t *testing.T) {
	var c CPUAccount
	c.ChargeSend(300)
	c.ChargeSend(300)
	c.ChargeRecv(750)
	c.Charge(1000)
	if c.Busy() != 2350 {
		t.Errorf("Busy = %v", c.Busy())
	}
	if c.PerSend() != 300 {
		t.Errorf("PerSend = %v", c.PerSend())
	}
	if c.PerRecv() != 750 {
		t.Errorf("PerRecv = %v", c.PerRecv())
	}
	s, r := c.Counts()
	if s != 2 || r != 1 {
		t.Errorf("Counts = %d, %d", s, r)
	}
	c.Reset()
	if c.Busy() != 0 || c.PerSend() != 0 || c.PerRecv() != 0 {
		t.Error("Reset did not zero the account")
	}
}

// Property: DMA handles from Lookup preserve intra-page offsets for any
// pinned address.
func TestPropertyPageOffsets(t *testing.T) {
	f := func(vbase uint32, off uint16) bool {
		pt := NewPageTable()
		vaddr := uint64(vbase)
		if err := pt.PinRange(0, vaddr, uint64(off)+1); err != nil {
			return false
		}
		h1, err1 := pt.Lookup(0, vaddr)
		h2, err2 := pt.Lookup(0, vaddr+uint64(off))
		if err1 != nil || err2 != nil {
			return false
		}
		// Offsets within the same page must be exactly preserved; across
		// pages, the page-start relation must hold.
		if vaddr/PageSize == (vaddr+uint64(off))/PageSize {
			return uint64(h2-h1) == uint64(off)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: the PCI bus never completes transfers out of order.
func TestPropertyPCIFIFO(t *testing.T) {
	f := func(sizes []uint16) bool {
		eng := sim.NewEngine(1)
		bus := NewPCIBus(eng, "pci", DefaultPCIConfig())
		var order []int
		for i, s := range sizes {
			i := i
			bus.Transfer(int(s), func() { order = append(order, i) })
		}
		eng.Run()
		for i, v := range order {
			if v != i {
				return false
			}
		}
		return len(order) == len(sizes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
