// Package host models the host side of a Myrinet node: the PCI bus the
// interface card sits on, the pinned (DMAable) memory pages user processes
// exchange messages through, the page hash table mapping virtual addresses
// to DMA addresses, and host-CPU time accounting. The paper's platform is a
// Pentium III with a 33 MHz PCI bus; the host-CPU utilization rows of
// Table 2 and the PCI component of the latency budget come from this layer.
package host

import (
	"fmt"

	"repro/internal/sim"
)

// PCIConfig sets the bus model parameters.
type PCIConfig struct {
	// BytesPerSec is the burst data rate (33 MHz x 64-bit = 264e6).
	BytesPerSec float64
	// TxnOverhead is the fixed cost per DMA transaction: arbitration,
	// address phase, and DMA-engine programming.
	TxnOverhead sim.Duration
}

// DefaultPCIConfig matches the paper's 33 MHz, 64-bit PCI slot. The raw
// burst rate is 264 MB/s; sustained DMA achieves less because of wait
// states and arbitration, and 200 MB/s sustained (plus the per-transaction
// overhead) reproduces the paper's measured ~92 MB/s bidirectional
// asymptote (Figure 7): each 4 KB fragment costs ~22 µs on the bus, and a
// node moving traffic both ways pays it twice per 4 KB exchanged.
func DefaultPCIConfig() PCIConfig {
	return PCIConfig{
		BytesPerSec: 195e6,
		TxnOverhead: 1000 * sim.Nanosecond,
	}
}

// PCIStats counts bus activity.
type PCIStats struct {
	Transactions uint64
	Bytes        uint64
	Busy         sim.Duration
}

// PCIBus serializes DMA transactions between host memory and the interface
// card. The LANai has a single E-bus DMA engine, so send-side and
// receive-side transfers of one card contend here — this contention is what
// bends the bidirectional bandwidth curve of Figure 7 below the link rate.
type PCIBus struct {
	eng      *sim.Engine
	cfg      PCIConfig
	name     string
	nextFree sim.Time
	stats    PCIStats

	// Pending completions in finish order (transactions serialize, so
	// finish times are nondecreasing); one engine event drains the due
	// prefix instead of one event per transaction.
	doneQ        []pciDone
	doneHead     int
	doneWake     *sim.Event
	doneDraining bool
	drainFn      func() // cached; arming a drain must not allocate

	// Speculation journaling (sim spec.go): first-touch checkpoint of the
	// serialization cursor, counters and completion ring.
	specMark uint64
	shadow   pciShadow
}

// pciShadow is the restore image for PCIBus.SpecSave/SpecRestore.
type pciShadow struct {
	nextFree sim.Time
	stats    PCIStats
	doneQ    []pciDone
	wake     *sim.Event
}

// SpecSave / SpecRestore implement sim.SpecSaver: live-region copy of the
// completion ring, rebuilt canonically (head 0) on rollback.
func (b *PCIBus) SpecSave() {
	b.shadow.nextFree = b.nextFree
	b.shadow.stats = b.stats
	b.shadow.doneQ = append(b.shadow.doneQ[:0], b.doneQ[b.doneHead:]...)
	b.shadow.wake = b.doneWake
}

func (b *PCIBus) SpecRestore() {
	b.nextFree = b.shadow.nextFree
	b.stats = b.shadow.stats
	for i := len(b.shadow.doneQ); i < len(b.doneQ); i++ {
		b.doneQ[i] = pciDone{}
	}
	b.doneQ = append(b.doneQ[:0], b.shadow.doneQ...)
	b.doneHead = 0
	b.doneWake = b.shadow.wake
	b.doneDraining = false
}

// pciDone is one pending transfer completion.
type pciDone struct {
	at sim.Time
	fn func()
}

// NewPCIBus returns a bus attached to the engine.
func NewPCIBus(eng *sim.Engine, name string, cfg PCIConfig) *PCIBus {
	b := &PCIBus{eng: eng, cfg: cfg, name: name}
	b.drainFn = b.drainDone
	return b
}

// Name identifies the bus in traces.
func (b *PCIBus) Name() string { return b.name }

// Stats returns the activity counters.
func (b *PCIBus) Stats() PCIStats { return b.stats }

// TransferTime reports how long a transaction of n bytes occupies the bus.
func (b *PCIBus) TransferTime(n int) sim.Duration {
	return b.cfg.TxnOverhead + sim.Duration(float64(n)/b.cfg.BytesPerSec*float64(sim.Second))
}

// Transfer queues a DMA of n bytes and calls done when it completes. The
// transaction serializes behind earlier ones; the returned time is when the
// transfer will finish.
func (b *PCIBus) Transfer(n int, done func()) sim.Time {
	b.eng.SpecTouch(&b.specMark, b)
	start := b.eng.Now()
	if b.nextFree > start {
		start = b.nextFree
	}
	dur := b.TransferTime(n)
	end := start + dur
	b.nextFree = end
	b.stats.Transactions++
	b.stats.Bytes += uint64(n)
	b.stats.Busy += dur
	if done != nil {
		if b.doneHead > 0 && b.doneHead == len(b.doneQ) {
			b.doneQ = b.doneQ[:0]
			b.doneHead = 0
		}
		b.doneQ = append(b.doneQ, pciDone{at: end, fn: done})
		if b.doneWake == nil && !b.doneDraining {
			b.doneWake = b.eng.AtLabel(end, "pci", b.drainFn)
		}
	}
	return end
}

// drainDone runs every due completion and re-arms a wake for the next
// pending one.
func (b *PCIBus) drainDone() {
	// Touch before the transient flags flip, so the first-touch checkpoint
	// captures the quiescent between-callback shape.
	b.eng.SpecTouch(&b.specMark, b)
	b.doneWake = nil
	b.doneDraining = true
	now := b.eng.Now()
	for b.doneHead < len(b.doneQ) {
		d := &b.doneQ[b.doneHead]
		if d.at > now {
			break
		}
		fn := d.fn
		*d = pciDone{}
		b.doneHead++
		fn()
	}
	b.doneDraining = false
	if b.doneHead > 1024 && b.doneHead*2 > len(b.doneQ) {
		n := copy(b.doneQ, b.doneQ[b.doneHead:])
		for i := n; i < len(b.doneQ); i++ {
			b.doneQ[i] = pciDone{}
		}
		b.doneQ = b.doneQ[:n]
		b.doneHead = 0
	}
	if b.doneHead < len(b.doneQ) {
		b.doneWake = b.eng.AtLabel(b.doneQ[b.doneHead].at, "pci", b.drainFn)
	}
}

// Utilization reports the bus busy fraction since simulation start.
func (b *PCIBus) Utilization() float64 {
	now := b.eng.Now()
	if now == 0 {
		return 0
	}
	return float64(b.stats.Busy) / float64(now)
}

// String summarizes the bus state.
func (b *PCIBus) String() string {
	return fmt.Sprintf("pci(%s: %d txns, %d bytes)", b.name, b.stats.Transactions, b.stats.Bytes)
}
