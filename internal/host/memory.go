package host

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// PageSize is the host page size used for pinning (4 KB, as on the paper's
// IA-32 Linux hosts).
const PageSize = 4096

// DMAHandle names a pinned page on the I/O bus: the address the LANai's DMA
// engine uses.
type DMAHandle uint64

// errors exposed for matching.
var (
	ErrNotPinned     = errors.New("host: address not pinned")
	ErrAlreadyPinned = errors.New("host: page already pinned")
)

// PageEntry maps one pinned virtual page of one port to its DMA address.
type PageEntry struct {
	Port  int
	VPage uint64
	DMA   DMAHandle
}

type pageKey struct {
	port  int
	vpage uint64
}

// PageTable is the page hash table of §4.3: it tracks the virtual-to-DMA
// mappings for every pinned page of every port. It lives in host memory (it
// is "big"), the MCP caches entries, and the FTD re-registers it with the
// LANai during recovery.
type PageTable struct {
	entries map[pageKey]PageEntry
	nextDMA DMAHandle

	// Speculation journaling (sim spec.go). Pin/unpin traffic is port
	// open/close and recovery — rare relative to spans — so a whole-map
	// first-touch copy is cheaper than per-entry records would be worth.
	specMark   uint64
	shadow     map[pageKey]PageEntry
	shadowNext DMAHandle
}

// SpecTouch journals the table into eng's current span on first touch. Call
// before Pin/PinRange/UnpinPort from speculating domain code.
func (t *PageTable) SpecTouch(eng *sim.Engine) { eng.SpecTouch(&t.specMark, t) }

// SpecSave / SpecRestore implement sim.SpecSaver.
func (t *PageTable) SpecSave() {
	if t.shadow == nil {
		t.shadow = make(map[pageKey]PageEntry, len(t.entries))
	} else {
		clear(t.shadow)
	}
	for k, v := range t.entries {
		t.shadow[k] = v
	}
	t.shadowNext = t.nextDMA
}

func (t *PageTable) SpecRestore() {
	clear(t.entries)
	for k, v := range t.shadow {
		t.entries[k] = v
	}
	t.nextDMA = t.shadowNext
}

// NewPageTable returns an empty table.
func NewPageTable() *PageTable {
	return &PageTable{entries: make(map[pageKey]PageEntry), nextDMA: 0x1000}
}

// Pin registers the page containing vaddr for the given port and returns
// its DMA handle. Pinning an already pinned page fails.
func (t *PageTable) Pin(port int, vaddr uint64) (DMAHandle, error) {
	k := pageKey{port, vaddr / PageSize}
	if _, ok := t.entries[k]; ok {
		return 0, fmt.Errorf("%w: port %d page %#x", ErrAlreadyPinned, port, k.vpage)
	}
	h := t.nextDMA
	t.nextDMA += PageSize
	t.entries[k] = PageEntry{Port: port, VPage: k.vpage, DMA: h}
	return h, nil
}

// PinRange pins every page overlapping [vaddr, vaddr+size). Pages already
// pinned by the same port are left in place.
func (t *PageTable) PinRange(port int, vaddr, size uint64) error {
	if size == 0 {
		return nil
	}
	for p := vaddr / PageSize; p <= (vaddr+size-1)/PageSize; p++ {
		k := pageKey{port, p}
		if _, ok := t.entries[k]; ok {
			continue
		}
		if _, err := t.Pin(port, p*PageSize); err != nil {
			return err
		}
	}
	return nil
}

// Lookup translates a virtual address of a port to its DMA handle.
func (t *PageTable) Lookup(port int, vaddr uint64) (DMAHandle, error) {
	k := pageKey{port, vaddr / PageSize}
	e, ok := t.entries[k]
	if !ok {
		return 0, fmt.Errorf("%w: port %d vaddr %#x", ErrNotPinned, port, vaddr)
	}
	return e.DMA + DMAHandle(vaddr%PageSize), nil
}

// UnpinPort releases every page of a port (port close).
func (t *PageTable) UnpinPort(port int) int {
	n := 0
	for k := range t.entries {
		if k.port == port {
			delete(t.entries, k)
			n++
		}
	}
	return n
}

// Len reports how many pages are pinned in total.
func (t *PageTable) Len() int { return len(t.entries) }

// Entries returns a copy of all entries; the FTD walks this during recovery
// to re-register the table with the reloaded MCP.
func (t *PageTable) Entries() []PageEntry {
	out := make([]PageEntry, 0, len(t.entries))
	for _, e := range t.entries {
		out = append(out, e)
	}
	return out
}
