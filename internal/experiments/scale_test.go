package experiments

import (
	"testing"

	"repro/internal/sim"
)

// shortOpts is the `make scale-short` trial: a 64-node Clos with a recovery
// storm, small enough to run under the race detector.
func shortOpts(shards int) ScaleOptions {
	return ScaleOptions{
		Nodes:     64,
		Shards:    shards,
		Pattern:   PatternAllToAll,
		TickEvery: 8 * sim.Microsecond,
		Duration:  sim.Millisecond,
		Storm:     true,
	}
}

// TestScaleShort drives the 64-node storm trial on the sharded engine and
// checks the full contract: traffic flows, every accepted send is delivered
// exactly once despite eight mid-run processor hangs, and the windowed
// schedule is bit-for-bit invariant between one and four executors.
func TestScaleShort(t *testing.T) {
	one, err := RunScale(shortOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	four, err := RunScale(shortOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range []ScaleResult{one, four} {
		if r.Sent == 0 || r.Delivered != r.Sent {
			t.Fatalf("shards=%d: delivered %d of %d accepted sends", r.Shards, r.Delivered, r.Sent)
		}
		if r.Recovered != 8 {
			t.Fatalf("shards=%d: %d of 8 hung nodes completed recovery", r.Shards, r.Recovered)
		}
	}
	pt := ScalePoint{Serial: one, Sharded: four}
	if !pt.Matches() {
		t.Fatalf("schedules diverge between 1 and 4 executors:\n  1: %+v\n  4: %+v", one, four)
	}
	if pt.Speedup() <= 0 {
		t.Fatalf("bad speedup %v", pt.Speedup())
	}
}

// TestScaleShortSpec is the `make scale-short` speculative variant: the
// same trial with the per-leaf monitor ring attached and speculation armed,
// across one and four executors under the race detector. Speculation must
// actually engage (spans commit AND roll back), and the schedule — node
// traffic, monitor ticks, speculation decisions — must stay executor-count
// invariant.
func TestScaleShortSpec(t *testing.T) {
	specOpts := func(shards int) ScaleOptions {
		o := shortOpts(shards)
		o.Monitors = true
		o.Speculate = true
		o.SpecHorizon = sim.Microsecond
		return o
	}
	one, err := RunScale(specOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	four, err := RunScale(specOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	if one.SpecCommits == 0 || one.SpecRollbacks == 0 {
		t.Fatalf("speculation did not exercise both outcomes: commits=%d rollbacks=%d",
			one.SpecCommits, one.SpecRollbacks)
	}
	for _, r := range []ScaleResult{one, four} {
		if r.Sent == 0 || r.Delivered != r.Sent {
			t.Fatalf("shards=%d: delivered %d of %d accepted sends", r.Shards, r.Delivered, r.Sent)
		}
		if r.Recovered != 8 {
			t.Fatalf("shards=%d: %d of 8 hung nodes completed recovery", r.Shards, r.Recovered)
		}
	}
	if one.Events != four.Events || one.Now != four.Now ||
		one.MonitorTicks != four.MonitorTicks ||
		one.SpecCommits != four.SpecCommits || one.SpecRollbacks != four.SpecRollbacks {
		t.Fatalf("speculative schedules diverge between 1 and 4 executors:\n  1: %+v\n  4: %+v", one, four)
	}
	// The monitors ride along without perturbing the fabric schedule: node
	// traffic counters must match the monitor-free trial exactly.
	plain, err := RunScale(shortOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Sent != one.Sent || plain.Delivered != one.Delivered {
		t.Fatalf("monitor ring perturbed node traffic: plain %d/%d vs monitored %d/%d",
			plain.Sent, plain.Delivered, one.Sent, one.Delivered)
	}
}

// TestScaleIncast exercises the congestion pattern end to end: every node
// fires at node 0; the sink's domain serializes but nothing is lost.
func TestScaleIncast(t *testing.T) {
	opts := ScaleOptions{
		Nodes:     32,
		Shards:    2,
		Pattern:   PatternIncast,
		TickEvery: 8 * sim.Microsecond,
		Duration:  sim.Millisecond,
		Drain:     200 * sim.Millisecond,
	}
	r, err := RunScale(opts)
	if err != nil {
		t.Fatal(err)
	}
	if r.Sent == 0 || r.Delivered != r.Sent {
		t.Fatalf("delivered %d of %d accepted sends", r.Delivered, r.Sent)
	}
}

func TestClosShape(t *testing.T) {
	for _, tc := range []struct {
		n, spines, leaves, perLeaf int
	}{
		{16, 2, 2, 8}, {64, 4, 8, 8}, {128, 4, 16, 8}, {256, 4, 32, 8}, {36, 4, 9, 4},
	} {
		spines, leaves, perLeaf, err := closShape(tc.n)
		if err != nil {
			t.Fatal(err)
		}
		if spines != tc.spines || leaves != tc.leaves || perLeaf != tc.perLeaf {
			t.Fatalf("closShape(%d) = %d,%d,%d want %d,%d,%d",
				tc.n, spines, leaves, perLeaf, tc.spines, tc.leaves, tc.perLeaf)
		}
	}
}
