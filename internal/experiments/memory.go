package experiments

import (
	"fmt"

	"repro/gm"
	"repro/internal/core"
	"repro/internal/gmproto"
	"repro/internal/trace"
)

// MemoryResult reproduces the §5 resource claims: "the extra static memory
// usage in the LANai was around 100KB while a process used up extra virtual
// memory in the order of 20KB".
type MemoryResult struct {
	ClusterNodes   int
	GMLanaiBytes   int
	FTGMLanaiBytes int
	ExtraLanai     int
	ProcessBytes   int
	PaperLanai     int // ~100 KB
	PaperProcess   int // ~20 KB
}

// MemoryFootprint sizes both variants' structural state for a cluster of
// the given node count (the paper's era ran Myrinet clusters of 64-256
// interfaces; firmware allocates its tables at the configured maximum).
func MemoryFootprint(clusterNodes int) (MemoryResult, error) {
	res := MemoryResult{
		ClusterNodes: clusterNodes,
		PaperLanai:   100 << 10,
		PaperProcess: 20 << 10,
	}
	for _, mode := range []gm.Mode{gm.ModeGM, gm.ModeFTGM} {
		p, err := NewPair(PairOptions{Mode: mode})
		if err != nil {
			return res, err
		}
		fp := p.A.Driver().MCP().Footprint(clusterNodes)
		if mode == gm.ModeGM {
			res.GMLanaiBytes = fp.Total()
		} else {
			res.FTGMLanaiBytes = fp.Total()
		}
	}
	res.ExtraLanai = res.FTGMLanaiBytes - res.GMLanaiBytes

	// Process side: one port's backup at GM's default token limits (64
	// send tokens, a 128-deep receive queue).
	shadow := core.NewShadowStore(2)
	res.ProcessBytes = shadow.FootprintBytes(
		gm.DefaultHostConfig().SendTokens, 128, clusterNodes)
	_ = gmproto.MaxPorts
	return res, nil
}

// Render prints the comparison against the paper's figures.
func (r MemoryResult) Render() string {
	t := trace.Table{
		Title: fmt.Sprintf("Memory footprint of the fault tolerance state (%d-node cluster)",
			r.ClusterNodes),
		Headers: []string{"Quantity", "this repro", "paper"},
	}
	kb := func(b int) string { return fmt.Sprintf("%.0fKB", float64(b)/1024) }
	t.AddRow("LANai SRAM, stock GM tables", kb(r.GMLanaiBytes), "-")
	t.AddRow("LANai SRAM, FTGM tables", kb(r.FTGMLanaiBytes), "-")
	t.AddRow("  extra for FTGM", kb(r.ExtraLanai), "~100KB")
	t.AddRow("process virtual memory per port", kb(r.ProcessBytes), "~20KB")
	return t.Render()
}
