package experiments

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/parallel"
	"repro/internal/trace"
)

// Table1Result wraps the ISA-level campaign outcome with the paper's
// reference numbers for side-by-side rendering.
type Table1Result struct {
	Campaign fault.CampaignResult
}

// paperTable1 is Table 1's "Our work" column and the Iyer et al. column.
var paperTable1 = map[fault.Outcome][2]float64{
	fault.OutcomeLocalHang:  {28.6, 23.4},
	fault.OutcomeCorrupted:  {18.3, 12.7},
	fault.OutcomeRemoteHang: {0.0, 1.2},
	fault.OutcomeMCPRestart: {0.0, 3.1},
	fault.OutcomeHostCrash:  {0.6, 0.4},
	fault.OutcomeOther:      {1.2, 1.1},
	fault.OutcomeNoImpact:   {51.3, 58.1},
}

// Table1 runs the fault-injection campaign: `runs` single-bit flips at
// random positions in the assembled send_chunk section.
func Table1(runs int, seed uint64) (Table1Result, error) {
	c, err := fault.NewCampaign(seed)
	if err != nil {
		return Table1Result{}, err
	}
	return Table1Result{Campaign: c.Run(runs)}, nil
}

// Table1Exhaustive flips every bit of the section once (a census the paper
// could not afford on hardware).
func Table1Exhaustive(seed uint64) (Table1Result, error) {
	c, err := fault.NewCampaign(seed)
	if err != nil {
		return Table1Result{}, err
	}
	return Table1Result{Campaign: c.Exhaustive()}, nil
}

// Table1Sections runs the campaign against both MCP sections — the paper's
// send_chunk plus the receive path it speculates about ("these results
// could be different if fault injection is carried out on some other
// section of the code", §2). The two campaigns (golden run included) build
// and run concurrently; each is deterministic in its own seed.
func Table1Sections(runs int, seed uint64) (send, recv Table1Result, err error) {
	sections := []fault.Section{fault.SectionSend, fault.SectionRecv}
	res, err := parallel.Map(len(sections), 0, func(i int) (Table1Result, error) {
		c, err := fault.NewSectionCampaign(sections[i], seed)
		if err != nil {
			return Table1Result{}, err
		}
		return Table1Result{Campaign: c.Run(runs)}, nil
	})
	if err != nil {
		return send, recv, err
	}
	return res[0], res[1], nil
}

// RenderSections prints the two sections side by side.
func RenderSections(send, recv Table1Result) string {
	t := trace.Table{
		Title: fmt.Sprintf("Fault injection by MCP section (%d runs each; the paper injected only send_chunk)",
			send.Campaign.Runs),
		Headers: []string{"Failure Category", "send_chunk", "recv_chunk", "paper (send)"},
	}
	for _, o := range fault.Outcomes() {
		t.AddRow(o.String(),
			fmt.Sprintf("%.1f%%", send.Campaign.Percent(o)),
			fmt.Sprintf("%.1f%%", recv.Campaign.Percent(o)),
			fmt.Sprintf("%.1f%%", paperTable1[o][0]))
	}
	return t.Render()
}

// Render prints the distribution next to the paper's columns.
func (r Table1Result) Render() string {
	t := trace.Table{
		Title: fmt.Sprintf("Table 1. Results of fault injection on a Myrinet system (%d runs)",
			r.Campaign.Runs),
		Headers: []string{"Failure Category", "this repro", "paper", "Iyer et al."},
	}
	for _, o := range fault.Outcomes() {
		ref := paperTable1[o]
		t.AddRow(o.String(),
			fmt.Sprintf("%.1f%%", r.Campaign.Percent(o)),
			fmt.Sprintf("%.1f%%", ref[0]),
			fmt.Sprintf("%.1f%%", ref[1]))
	}
	return t.Render()
}
