package experiments

import (
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/sim"
)

// The host-fault comparison's headline: a checkpointed endpoint survives
// host death under every revival regime. The restore schemes come back
// under the suspicion timeout with nothing excused and no dead verdicts;
// the rebirth scheme is buried, readmitted, and only its own disowned
// in-flight sends are excused.
func TestHostFaultComparison(t *testing.T) {
	cfg := chaos.CampaignConfig{
		Trials: 1,
		Trial: chaos.TrialConfig{
			Nodes:     4,
			Traffic:   sim.Second,
			SendEvery: 4 * sim.Millisecond,
			Events:    2,
			MaxSettle: 30 * sim.Second,
		},
	}
	results, err := HostFaultComparison(20030623, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("got %d results", len(results))
	}
	byLabel := map[string]HostFaultResult{}
	for _, r := range results {
		byLabel[r.Label] = r
		if v := r.Verdict(); v != "exactly-once in-order" {
			t.Errorf("%s verdict = %q: %v (dirty=%v)", r.Label, v,
				r.Campaign.Total, r.Campaign.Total.Dirty)
		}
		if r.Label == "periodic+central" {
			// The periodic scheme serializes base+delta chains, not
			// stop-and-copy anchors.
			continue
		}
		if r.Counters.Checkpoints == 0 || r.Counters.CheckpointBytes == 0 {
			t.Errorf("%s never serialized a checkpoint: %+v", r.Label, r.Counters)
		}
		if r.Counters.LiveExpelled != 0 || r.Counters.RouteGaps != 0 {
			t.Errorf("%s membership damage: %+v", r.Label, r.Counters)
		}
	}
	pc := byLabel["periodic+central"]
	if pc.Counters.PeriodicFrames == 0 || pc.Counters.PeriodicBytes == 0 {
		t.Errorf("periodic scheme shipped no incremental frames: %+v", pc.Counters)
	}
	if pc.Counters.ChainMismatches != 0 {
		t.Errorf("periodic scheme chain replays diverged: %+v", pc.Counters)
	}
	// The bounded-drain contract: no partial drain may ever pause the victim
	// longer than the configured budget (200µs in the chaos injector).
	if pc.Counters.MaxDrainPause > 200*sim.Microsecond {
		t.Errorf("periodic drain pause %v exceeded the 200µs budget", pc.Counters.MaxDrainPause)
	}
	if pc.Counters.Restores == 0 {
		t.Errorf("periodic scheme never restored from a chain: %+v", pc.Counters)
	}
	for _, label := range []string{"restore+central", "restore+gossip"} {
		r := byLabel[label]
		if r.Counters.Restores == 0 || r.Counters.Rejoins != 0 {
			t.Errorf("%s revival mix wrong: %+v", label, r.Counters)
		}
		if r.Campaign.Total.Excused != 0 {
			t.Errorf("%s excused %d sends; a restored host disowns nothing",
				label, r.Campaign.Total.Excused)
		}
		if r.Counters.DeadDeclared != 0 {
			t.Errorf("%s drew dead verdicts for an outage under the suspicion timeout: %+v",
				label, r.Counters)
		}
	}
	rb := byLabel["rebirth+gossip"]
	if rb.Counters.Rejoins == 0 || rb.Counters.Restores != 0 {
		t.Errorf("rebirth revival mix wrong: %+v", rb.Counters)
	}
	if rb.Counters.DeadDeclared == 0 || rb.Counters.Readmissions == 0 {
		t.Errorf("rebirth was never buried and readmitted: %+v", rb.Counters)
	}
	if rb.Campaign.Total.Excused == 0 {
		t.Error("the reborn mapper's disowned in-flight sends were never excused")
	}
	out := RenderHostFault(results)
	for _, want := range []string{"restore+central", "restore+gossip", "rebirth+gossip",
		"periodic+central", "exactly-once in-order", "ckpt-bytes=", "max-drain-pause="} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}
