package experiments

import (
	"bytes"
	"fmt"

	"repro/gm"
)

// ScenarioResult reports one of the motivating failure scenarios.
type ScenarioResult struct {
	Name       string
	Deliveries int // times the probe message reached the application
	Expected   int
	Detail     string
}

// Broken reports whether the scenario exhibited the failure (deliveries
// differ from exactly-once).
func (s ScenarioResult) Broken() bool { return s.Deliveries != 1 }

// Render describes the outcome.
func (s ScenarioResult) Render() string {
	verdict := "exactly-once (correct)"
	switch {
	case s.Deliveries == 0:
		verdict = "LOST (delivered 0 times)"
	case s.Deliveries > 1:
		verdict = fmt.Sprintf("DUPLICATED (delivered %d times)", s.Deliveries)
	}
	return fmt.Sprintf("%s: %s\n  %s\n", s.Name, verdict, s.Detail)
}

// Figure4Scenario reproduces the duplicate-message case: the sender's LANai
// crashes while the ACK for a delivered message is in transit. Under stock
// GM with a naive MCP reload the message is delivered twice; under FTGM it
// is delivered exactly once.
func Figure4Scenario(mode gm.Mode) (ScenarioResult, error) {
	res := ScenarioResult{Expected: 1}
	if mode == gm.ModeGM {
		res.Name = "Figure 4 scenario, stock GM + naive restart"
	} else {
		res.Name = "Figure 4 scenario, FTGM"
	}
	p, err := NewPair(PairOptions{Mode: mode})
	if err != nil {
		return res, err
	}
	cl := p.Cluster
	probe := []byte("probe-message")
	count := 0
	p.PB.SetReceiveHandler(func(ev gm.RecvEvent) {
		if bytes.Equal(ev.Data, probe) {
			count++
		}
	})
	for i := 0; i < 8; i++ {
		if err := p.PB.ProvideReceiveBuffer(64, gm.PriorityLow); err != nil {
			return res, err
		}
	}
	// Warm the connection so the crash hits an established stream.
	if err := p.PA.Send(p.B.ID(), 2, gm.PriorityLow, []byte("warmup"), nil); err != nil {
		return res, err
	}
	cl.Run(2 * gm.Millisecond)

	// Hang the sender the moment the receiver emits the probe's ACK.
	acksBefore := p.B.MCPStats().AcksSent
	var watch func()
	watch = func() {
		if p.B.MCPStats().AcksSent > acksBefore {
			if !p.A.Hung() {
				p.A.InjectHang()
			}
			return
		}
		cl.After(100*gm.Nanosecond, watch)
	}
	cl.After(100*gm.Nanosecond, watch)
	if err := p.PA.Send(p.B.ID(), 2, gm.PriorityLow, probe, nil); err != nil {
		return res, err
	}
	cl.Run(5 * gm.Millisecond)
	if !p.A.Hung() {
		return res, fmt.Errorf("experiments: crash window missed")
	}

	if mode == gm.ModeGM {
		done := false
		p.A.NaiveRestart(func() { done = true })
		cl.Run(3 * gm.Second)
		if !done {
			return res, fmt.Errorf("experiments: naive restart incomplete")
		}
		cl.Run(2 * gm.Second)
	} else {
		cl.Run(8 * gm.Second) // transparent FTGM recovery
	}
	res.Deliveries = count
	res.Detail = "sender crashed with the probe's ACK in transit; pending send re-posted after recovery"
	return res, nil
}

// Figure6Result reports the head-of-line demonstration.
type Figure6Result struct {
	GMBlocked   bool // stock GM: port 2 starved behind port 1's stall
	FTGMBlocked bool // FTGM: must be false
}

// Figure6Scenario demonstrates the structural change of Figure 6: stock GM
// multiplexes every port's traffic to a remote node into one connection
// with one sequence space, so one port's undeliverable message (its
// destination port has no receive buffer) head-of-line blocks every other
// port's traffic to that node. FTGM's independent per-(port, destination)
// streams decouple them.
func Figure6Scenario() (Figure6Result, error) {
	var res Figure6Result
	check := func(mode gm.Mode) (blocked bool, err error) {
		p, err := NewPair(PairOptions{Mode: mode})
		if err != nil {
			return false, err
		}
		pa1, err := p.A.OpenPort(1)
		if err != nil {
			return false, err
		}
		pb1, err := p.B.OpenPort(1)
		if err != nil {
			return false, err
		}
		_ = pb1
		flowed := false
		p.PB.SetReceiveHandler(func(ev gm.RecvEvent) { flowed = true })
		// Only the PB port (2) has a buffer; port 1 on B has none.
		if err := p.PB.ProvideReceiveBuffer(64, gm.PriorityLow); err != nil {
			return false, err
		}
		if err := pa1.Send(p.B.ID(), 1, gm.PriorityLow, []byte("starved"), nil); err != nil {
			return false, err
		}
		if err := p.PA.Send(p.B.ID(), 2, gm.PriorityLow, []byte("flows"), nil); err != nil {
			return false, err
		}
		p.Cluster.Run(5 * gm.Millisecond)
		return !flowed, nil
	}
	var err error
	if res.GMBlocked, err = check(gm.ModeGM); err != nil {
		return res, err
	}
	if res.FTGMBlocked, err = check(gm.ModeFTGM); err != nil {
		return res, err
	}
	return res, nil
}

// Render describes the Figure 6 outcome.
func (r Figure6Result) Render() string {
	verdict := func(blocked bool) string {
		if blocked {
			return "port 2 BLOCKED behind port 1's stalled message"
		}
		return "port 2 flows independently"
	}
	return fmt.Sprintf(
		"Figure 6 (stream structure): one port's message stalls for want of a buffer while another port sends to the same node\n"+
			"  stock GM (single multiplexed connection): %s\n"+
			"  FTGM (independent per-(port,dest) streams): %s\n",
		verdict(r.GMBlocked), verdict(r.FTGMBlocked))
}

// Figure5Scenario reproduces the lost-message case: the receiver's LANai
// crashes after sending the ACK but before the DMA into the user buffer
// completes. Under stock GM the message is lost forever; under FTGM the
// delayed commit point turns the crash into a retransmission.
func Figure5Scenario(mode gm.Mode) (ScenarioResult, error) {
	res := ScenarioResult{Expected: 1}
	if mode == gm.ModeGM {
		res.Name = "Figure 5 scenario, stock GM + naive restart"
	} else {
		res.Name = "Figure 5 scenario, FTGM"
	}
	p, err := NewPair(PairOptions{Mode: mode})
	if err != nil {
		return res, err
	}
	cl := p.Cluster
	count := 0
	p.PB.SetReceiveHandler(func(ev gm.RecvEvent) { count++ })
	for i := 0; i < 4; i++ {
		if err := p.PB.ProvideReceiveBuffer(64, gm.PriorityLow); err != nil {
			return res, err
		}
	}
	ackSeen := false
	if err := p.PA.Send(p.B.ID(), 2, gm.PriorityLow, []byte("victim"), func(s gm.SendStatus) {
		ackSeen = s == gm.SendOK
	}); err != nil {
		return res, err
	}
	// Kill the receiver inside the ACK-sent / not-yet-committed window
	// (GM) or the equivalent pre-commit instant (FTGM).
	if mode == gm.ModeGM {
		var watch func()
		watch = func() {
			if p.B.MCPStats().AcksSent > 0 && count == 0 {
				if !p.B.Hung() {
					p.B.Driver().MCP().InjectHang()
				}
				return
			}
			if count == 0 {
				cl.After(100*gm.Nanosecond, watch)
			}
		}
		cl.After(100*gm.Nanosecond, watch)
	} else {
		cl.After(8*gm.Microsecond, func() {
			if count == 0 {
				p.B.InjectHang()
			}
		})
	}
	cl.Run(5 * gm.Millisecond)
	if !p.B.Hung() {
		return res, fmt.Errorf("experiments: crash window missed")
	}

	if mode == gm.ModeGM {
		done := false
		p.B.NaiveRestart(func() { done = true })
		cl.Run(3 * gm.Second)
		if !done {
			return res, fmt.Errorf("experiments: naive restart incomplete")
		}
		cl.Run(2 * gm.Second)
		res.Detail = fmt.Sprintf("sender saw ACK: %v; stock GM never retransmits an ACKed message", ackSeen)
	} else {
		cl.Run(10 * gm.Second)
		res.Detail = "no ACK left before the crash; sender retransmitted after recovery"
	}
	res.Deliveries = count
	return res, nil
}
