package experiments

import (
	"fmt"

	"repro/gm"
	"repro/internal/parallel"
	"repro/internal/trace"
)

// perfModes is the GM/FTGM pair every comparison sweeps, in render order.
var perfModes = []gm.Mode{gm.ModeGM, gm.ModeFTGM}

// sweepPoints runs measure over the (mode, size) grid — each point on its
// own freshly booted pair, all points fanned out across workers — and
// returns the values grid-ordered: all of GM's sizes, then all of FTGM's.
func sweepPoints(sizes []int, measure func(p *Pair, size int) float64) ([]float64, error) {
	return parallel.Map(len(perfModes)*len(sizes), 0, func(i int) (float64, error) {
		p, err := NewPair(PairOptions{Mode: perfModes[i/len(sizes)]})
		if err != nil {
			return 0, err
		}
		return measure(p, sizes[i%len(sizes)]), nil
	})
}

// Figure7Sizes is the message-length sweep for the bandwidth figure:
// powers of two from 1 B to 512 KB, plus points just past each of the
// first fragmentation boundaries, which produce the jagged mid-curve the
// paper explains by GM's 4 KB fragmentation (§5.1).
func Figure7Sizes() []int {
	var sizes []int
	for s := 1; s <= 512*1024; s *= 2 {
		sizes = append(sizes, s)
	}
	for _, straddle := range []int{4097, 8193, 12289, 20481} {
		sizes = append(sizes, straddle)
	}
	return sortedInts(sizes)
}

// Figure8Sizes is the latency sweep: 1 B to 64 KB.
func Figure8Sizes() []int {
	var sizes []int
	for s := 1; s <= 64*1024; s *= 2 {
		sizes = append(sizes, s)
	}
	sizes = append(sizes, 100) // the paper quotes the 1..100 B average
	return sortedInts(sizes)
}

func sortedInts(v []int) []int {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j-1] > v[j]; j-- {
			v[j-1], v[j] = v[j], v[j-1]
		}
	}
	return v
}

// Figure7Result holds the bandwidth curves.
type Figure7Result struct {
	GM   trace.Series
	FTGM trace.Series
}

// Figure7 measures the sustained bidirectional data rate per direction for
// both protocol variants across the size sweep. msgs is the message count
// per point (the paper used 1000; smaller counts keep the same steady-state
// shape).
func Figure7(sizes []int, msgs int) (Figure7Result, error) {
	res := Figure7Result{GM: trace.Series{Name: "GM"}, FTGM: trace.Series{Name: "FTGM"}}
	rates, err := sweepPoints(sizes, func(p *Pair, size int) float64 {
		return BidirectionalRate(p, size, msgs)
	})
	if err != nil {
		return res, err
	}
	for i, rate := range rates {
		size := float64(sizes[i%len(sizes)])
		if perfModes[i/len(sizes)] == gm.ModeGM {
			res.GM.Add(size, rate)
		} else {
			res.FTGM.Add(size, rate)
		}
	}
	return res, nil
}

// Render prints the two curves as aligned columns.
func (r Figure7Result) Render() string {
	return trace.RenderSeries(
		"Figure 7. Bandwidth comparison of the original GM and FTGM (MB/s per direction, bidirectional workload)",
		"bytes", r.GM, r.FTGM)
}

// Figure8Result holds the latency curves (half round trip, µs).
type Figure8Result struct {
	GM   trace.Series
	FTGM trace.Series
}

// Figure8 measures the ping-pong half round-trip latency across the sweep.
func Figure8(sizes []int, rounds int) (Figure8Result, error) {
	res := Figure8Result{GM: trace.Series{Name: "GM"}, FTGM: trace.Series{Name: "FTGM"}}
	halves, err := sweepPoints(sizes, func(p *Pair, size int) float64 {
		return HalfRoundTrip(p, size, rounds).Micros()
	})
	if err != nil {
		return res, err
	}
	for i, half := range halves {
		size := float64(sizes[i%len(sizes)])
		if perfModes[i/len(sizes)] == gm.ModeGM {
			res.GM.Add(size, half)
		} else {
			res.FTGM.Add(size, half)
		}
	}
	return res, nil
}

// Render prints the two curves.
func (r Figure8Result) Render() string {
	return trace.RenderSeries(
		"Figure 8. Latency comparison of the original GM and FTGM (half round trip, us)",
		"bytes", r.GM, r.FTGM)
}

// Table2Row is one protocol variant's summary metrics.
type Table2Row struct {
	BandwidthMBs  float64 // large-message bidirectional rate per direction
	LatencyUs     float64 // short-message (<=100 B) half round trip
	HostSendUs    float64 // host CPU per send
	HostRecvUs    float64 // host CPU per receive
	LanaiPerMsgUs float64 // LANai occupancy per message (both interfaces)
}

// Table2Result compares GM and FTGM.
type Table2Result struct {
	GM   Table2Row
	FTGM Table2Row
}

// Table2 reproduces the paper's metric summary, measuring the GM and FTGM
// rows concurrently (each on its own set of clusters).
func Table2() (Table2Result, error) {
	var res Table2Result
	rows, err := parallel.Map(len(perfModes), 0, func(i int) (Table2Row, error) {
		return table2Row(perfModes[i])
	})
	if err != nil {
		return res, err
	}
	res.GM, res.FTGM = rows[0], rows[1]
	return res, nil
}

func table2Row(mode gm.Mode) (Table2Row, error) {
	var row Table2Row

	// Bandwidth: large messages, bidirectional.
	p, err := NewPair(PairOptions{Mode: mode})
	if err != nil {
		return row, err
	}
	row.BandwidthMBs = BidirectionalRate(p, 256*1024, 60)

	// Latency: mean over the paper's 1..100 B band.
	var lat float64
	latSizes := []int{1, 16, 32, 64, 100}
	for _, size := range latSizes {
		p, err := NewPair(PairOptions{Mode: mode})
		if err != nil {
			return row, err
		}
		lat += HalfRoundTrip(p, size, 30).Micros()
	}
	row.LatencyUs = lat / float64(len(latSizes))

	// Host and LANai utilization from a unidirectional small-message run.
	p, err = NewPair(PairOptions{Mode: mode})
	if err != nil {
		return row, err
	}
	const n = 200
	ltBefore := p.A.MCPStats().LTimerRuns + p.B.MCPStats().LTimerRuns
	busyBefore := p.A.ChipStats().ExecBusy + p.B.ChipStats().ExecBusy
	st := stream(p.Cluster, p.PA, p.PB, p.B.ID(), 16, n, 32)
	limit := p.Cluster.Now() + 30*gm.Second
	for st.delivered < n && p.Cluster.Now() < limit {
		p.Cluster.Run(5 * gm.Millisecond)
	}
	if st.delivered < n {
		return row, fmt.Errorf("experiments: utilization stream stalled at %d/%d", st.delivered, n)
	}
	row.HostSendUs = p.A.CPU().PerSend().Micros()
	row.HostRecvUs = p.B.CPU().PerRecv().Micros()
	busy := p.A.ChipStats().ExecBusy + p.B.ChipStats().ExecBusy - busyBefore
	lt := p.A.MCPStats().LTimerRuns + p.B.MCPStats().LTimerRuns - ltBefore
	cfg := gm.DefaultConfig(mode)
	busy -= gm.Duration(lt) * cfg.MCP.LTimerProc
	row.LanaiPerMsgUs = busy.Micros() / float64(n)
	return row, nil
}

// Render prints the summary in the paper's Table 2 shape.
func (r Table2Result) Render() string {
	t := trace.Table{
		Title:   "Table 2. Comparison of various performance metrics between GM and FTGM",
		Headers: []string{"Performance Metric", "GM", "FTGM", "paper GM", "paper FTGM"},
	}
	t.AddRow("Bandwidth",
		fmt.Sprintf("%.1fMB/s", r.GM.BandwidthMBs), fmt.Sprintf("%.1fMB/s", r.FTGM.BandwidthMBs),
		"92.4MB/s", "92.0MB/s")
	t.AddRow("Latency",
		fmt.Sprintf("%.1fus", r.GM.LatencyUs), fmt.Sprintf("%.1fus", r.FTGM.LatencyUs),
		"11.5us", "13.0us")
	t.AddRow("Host util. (send)",
		fmt.Sprintf("%.2fus", r.GM.HostSendUs), fmt.Sprintf("%.2fus", r.FTGM.HostSendUs),
		"0.30us", "0.55us")
	t.AddRow("Host util. (recv)",
		fmt.Sprintf("%.2fus", r.GM.HostRecvUs), fmt.Sprintf("%.2fus", r.FTGM.HostRecvUs),
		"0.75us", "1.15us")
	t.AddRow("LANai util.",
		fmt.Sprintf("%.1fus", r.GM.LanaiPerMsgUs), fmt.Sprintf("%.1fus", r.FTGM.LanaiPerMsgUs),
		"6.0us", "6.8us")
	return t.Render()
}
