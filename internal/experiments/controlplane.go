package experiments

import (
	"fmt"

	"repro/gm"
	"repro/internal/chaos"
	"repro/internal/trace"
)

// ControlPlaneResult is one scheme's showing under the mapper-death
// campaign.
type ControlPlaneResult struct {
	// Label names the scheme: FTGM, FTGM+central, or FTGM+gossip.
	Label    string
	Campaign chaos.CampaignResult
	// Counters sums the trials' repair-plane activity.
	Counters ControlPlaneCounters
}

// ControlPlaneCounters aggregates repair-plane activity over a campaign.
// The central fields and the gossip fields are mutually exclusive by
// construction — a trial runs one plane or the other.
type ControlPlaneCounters struct {
	Remaps      uint64 // central: successful automatic remaps
	Unreachable uint64 // central: peers expelled as unreachable

	Probes       uint64 // gossip: direct pings launched
	Suspicions   uint64 // gossip: local probe-failure suspicions
	DeadDeclared uint64 // gossip: dead verdicts (local + adopted)
	Readmissions uint64 // gossip: dead members welcomed back
	LiveExpelled uint64 // gossip: live nodes wrongly marked dead at trial end
	RouteGaps    uint64 // gossip: live peers missing from survivor route tables

	FailedSends uint64 // sends terminally failed against expelled peers
}

// DeliveryRate is the fraction of accepted sends that arrived (duplicates
// not counted).
func (r ControlPlaneResult) DeliveryRate() float64 {
	if r.Campaign.Total.Sent == 0 {
		return 0
	}
	return float64(r.Campaign.Total.Unique) / float64(r.Campaign.Total.Sent)
}

// Verdict renders the scheme's outcome. The central watchdog's failure
// mode is subtle: its audit can be vacuously clean because it terminally
// failed the survivors' sends after expelling every live node, so a clean
// audit only counts as recovery when no live node was expelled.
func (r ControlPlaneResult) Verdict() string {
	switch {
	case !r.Campaign.AllExactlyOnce:
		return "STALLED"
	case r.Counters.Unreachable > 0 || r.Counters.LiveExpelled > 0:
		return "SELF-DESTRUCTED"
	default:
		return "exactly-once in-order"
	}
}

// ControlPlaneComparison runs the identical mapper-death injection plan —
// node 0, the boot-time mapper, hard-hangs in the middle of an active
// remap window — against three FTGM repair planes. Plain FTGM has no
// repair story: traffic held for the corpse retransmits forever and the
// trial never drains. The centralized watchdog is worse than nothing: its
// remap scouts transmit into the dead chip, come back with a one-node map,
// and one grace period later every live survivor has been expelled as
// unreachable. The gossip plane has no distinguished node — the survivors
// expel exactly the dead member by distributed agreement, splice routes
// among themselves, and keep delivery exactly-once in-order.
func ControlPlaneComparison(seed uint64, cfg chaos.CampaignConfig) ([]ControlPlaneResult, error) {
	cfg.Mode = gm.ModeFTGM
	if len(cfg.Trial.Kinds) == 0 {
		cfg.Trial.Kinds = []chaos.EventKind{chaos.KindMapperDeath}
	}
	schemes := []struct {
		label string
		watch bool
		plane gm.ControlPlane
	}{
		{"FTGM", false, gm.ControlPlaneCentral},
		{"FTGM+central", true, gm.ControlPlaneCentral},
		{"FTGM+gossip", false, gm.ControlPlaneGossip},
	}
	results := make([]ControlPlaneResult, 0, len(schemes))
	for _, s := range schemes {
		cfg := cfg
		cfg.Trial.NetWatch = s.watch
		cfg.Trial.ControlPlane = s.plane
		res, err := chaos.Run(seed, cfg)
		if err != nil {
			return nil, err
		}
		cp := ControlPlaneResult{Label: s.label, Campaign: res}
		for _, tr := range res.Trials {
			cp.Counters.Remaps += tr.NetRemaps
			cp.Counters.Unreachable += tr.NetUnreachable
			cp.Counters.Probes += tr.GossipProbes
			cp.Counters.Suspicions += tr.GossipSuspicions
			cp.Counters.DeadDeclared += tr.GossipDeadDeclared
			cp.Counters.Readmissions += tr.GossipReadmissions
			cp.Counters.LiveExpelled += tr.GossipLiveExpelled
			cp.Counters.RouteGaps += tr.GossipRouteGaps
			cp.Counters.FailedSends += tr.UnreachableFails
		}
		results = append(results, cp)
	}
	return results, nil
}

// RenderControlPlane prints the comparison.
func RenderControlPlane(results []ControlPlaneResult) string {
	t := trace.Table{
		Title: "Control planes: the boot-time mapper dies mid-remap",
		Headers: []string{"Scheme", "trials", "sent", "delivered", "rate",
			"lost", "failed", "excused", "dead", "live-expelled", "verdict"},
	}
	for _, r := range results {
		liveExpelled := r.Counters.Unreachable + r.Counters.LiveExpelled
		t.AddRow(r.Label,
			fmt.Sprintf("%d", len(r.Campaign.Trials)),
			fmt.Sprintf("%d", r.Campaign.Total.Sent),
			fmt.Sprintf("%d", r.Campaign.Total.Unique),
			fmt.Sprintf("%.1f%%", 100*r.DeliveryRate()),
			fmt.Sprintf("%d", r.Campaign.Total.Lost),
			fmt.Sprintf("%d", r.Campaign.Total.Failed),
			fmt.Sprintf("%d", r.Campaign.Total.Excused),
			fmt.Sprintf("%d", r.Counters.DeadDeclared),
			fmt.Sprintf("%d", liveExpelled),
			r.Verdict())
	}
	out := t.Render()
	for _, r := range results {
		c := r.Counters
		out += fmt.Sprintf("\n%-13s remaps=%d unreachable=%d probes=%d suspicions=%d dead=%d readmitted=%d live-expelled=%d route-gaps=%d failed-sends=%d",
			r.Label, c.Remaps, c.Unreachable, c.Probes, c.Suspicions,
			c.DeadDeclared, c.Readmissions, c.LiveExpelled, c.RouteGaps, c.FailedSends)
	}
	return out
}
