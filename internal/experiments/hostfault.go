package experiments

import (
	"fmt"

	"repro/gm"
	"repro/internal/chaos"
	"repro/internal/sim"
	"repro/internal/trace"
)

// HostFaultResult is one scheme's showing under the host-death campaign.
type HostFaultResult struct {
	// Label names the scheme: restore+central, restore+gossip,
	// rebirth+gossip, or periodic+central.
	Label    string
	Campaign chaos.CampaignResult
	// Counters sums the trials' checkpoint/revival and membership activity.
	Counters HostFaultCounters
}

// HostFaultCounters aggregates checkpoint machinery and gossip-plane
// activity over a campaign. The gossip fields stay zero under the central
// plane; the periodic fields stay zero unless the scheme streams
// incremental base+delta chains.
type HostFaultCounters struct {
	Checkpoints     uint64 // recovery anchors serialized through the wire codec
	CheckpointBytes uint64 // total encoded checkpoint bytes
	Restores        uint64 // full-state revivals completed (pre-expulsion)
	Rejoins         uint64 // fresh-epoch revivals completed (post-expulsion)

	DeadDeclared uint64 // gossip: dead verdicts (local + adopted)
	Readmissions uint64 // gossip: dead members welcomed back
	LiveExpelled uint64 // gossip: live nodes wrongly marked dead at trial end
	RouteGaps    uint64 // gossip: live peers missing from survivor route tables

	PeriodicFrames  uint64       // incremental frames shipped (bases + deltas)
	PeriodicBytes   uint64       // total incremental frame bytes
	PeriodicSkips   uint64       // intervals skipped on drain-budget exhaustion
	MaxDrainPause   sim.Duration // worst per-checkpoint drain pause observed
	ChainMismatches uint64       // chain replays that diverged from the full checkpoint
}

// DeliveryRate is the fraction of accepted sends that arrived (duplicates
// not counted).
func (r HostFaultResult) DeliveryRate() float64 {
	if r.Campaign.Total.Sent == 0 {
		return 0
	}
	return float64(r.Campaign.Total.Unique) / float64(r.Campaign.Total.Sent)
}

// Verdict renders the scheme's outcome. Restore-path schemes must be
// spotless: the outage fits under the suspicion timeout, so membership
// damage of any kind (or a single excused send) is a failure. The rebirth
// scheme legitimately excuses the dead mapper's disowned sends but must end
// with a converged membership.
func (r HostFaultResult) Verdict() string {
	switch {
	case !r.Campaign.AllExactlyOnce:
		return "STALLED"
	case r.Counters.ChainMismatches > 0:
		return "CHAIN DIVERGENCE"
	case r.Counters.LiveExpelled > 0 || r.Counters.RouteGaps > 0:
		return "MEMBERSHIP DAMAGE"
	default:
		return "exactly-once in-order"
	}
}

// HostFaultComparison runs the endpoint checkpoint/restart machinery under
// three revival regimes. restore+central and restore+gossip share the same
// host-death plan: a node is drained at a message boundary, its recovery
// anchor serialized through the internal/ckpt wire codec, the host killed
// mid-burst and a standby restored from the checkpoint a few milliseconds
// later — under the suspicion timeout, so the gossip plane must hold its
// fire. rebirth+gossip stretches the outage past the suspicion timeout: the
// mapping node is buried by the survivors and its revival is a genuine
// readmission campaign, with the checkpointed identity but fresh protocol
// epochs on every stream.
func HostFaultComparison(seed uint64, cfg chaos.CampaignConfig) ([]HostFaultResult, error) {
	schemes := HostFaultSchemes(cfg)
	results := make([]HostFaultResult, 0, len(schemes))
	for _, s := range schemes {
		res, err := chaos.Run(seed, s.Cfg)
		if err != nil {
			return nil, err
		}
		results = append(results, FoldHostFault(s.Label, res))
	}
	return results, nil
}

// HostFaultScheme pairs a scheme label with the campaign config it runs.
type HostFaultScheme struct {
	Label string
	Cfg   chaos.CampaignConfig
}

// HostFaultSchemes expands a base config into the labeled campaigns
// HostFaultComparison runs. Exported so the resumable gmbench runner can
// execute the same campaigns trial by trial across processes.
func HostFaultSchemes(cfg chaos.CampaignConfig) []HostFaultScheme {
	cfg.Mode = gm.ModeFTGM
	if len(cfg.Trial.Kinds) == 0 {
		cfg.Trial.Kinds = []chaos.EventKind{chaos.KindHostDeath}
	}
	rebirth := cfg
	rebirth.Trial.Kinds = []chaos.EventKind{chaos.KindMapperRebirth}
	rebirth.Trial.Events = 1
	// The grave must outlast the 3s suspicion timeout and the readmission
	// probes need live traffic on both sides of the revival.
	if rebirth.Trial.Traffic < 12*sim.Second {
		rebirth.Trial.Traffic = 12 * sim.Second
	}
	if rebirth.Trial.MaxSettle < 60*sim.Second {
		rebirth.Trial.MaxSettle = 60 * sim.Second
	}
	// The periodic scheme revives from streamed base+delta chains instead of
	// a stop-and-copy anchor: victims run the incremental checkpointer the
	// whole trial and the revival consumes only bytes a standby host could
	// have accumulated frame by frame.
	periodic := cfg
	periodic.Trial.Kinds = []chaos.EventKind{chaos.KindPeriodicDeath}

	schemes := []HostFaultScheme{
		{"restore+central", cfg},
		{"restore+gossip", cfg},
		{"rebirth+gossip", rebirth},
		{"periodic+central", periodic},
	}
	planes := []gm.ControlPlane{gm.ControlPlaneCentral, gm.ControlPlaneGossip,
		gm.ControlPlaneGossip, gm.ControlPlaneCentral}
	for i := range schemes {
		schemes[i].Cfg.Trial.ControlPlane = planes[i]
	}
	return schemes
}

// FoldHostFault sums a campaign's per-trial counters into a scheme result.
func FoldHostFault(label string, res chaos.CampaignResult) HostFaultResult {
	hf := HostFaultResult{Label: label, Campaign: res}
	for _, tr := range res.Trials {
		hf.Counters.Checkpoints += tr.Checkpoints
		hf.Counters.CheckpointBytes += tr.CheckpointBytes
		hf.Counters.Restores += tr.HostRestores
		hf.Counters.Rejoins += tr.HostRejoins
		hf.Counters.DeadDeclared += tr.GossipDeadDeclared
		hf.Counters.Readmissions += tr.GossipReadmissions
		hf.Counters.LiveExpelled += tr.GossipLiveExpelled
		hf.Counters.RouteGaps += tr.GossipRouteGaps
		hf.Counters.PeriodicFrames += tr.PeriodicFrames
		hf.Counters.PeriodicBytes += tr.PeriodicBytes
		hf.Counters.PeriodicSkips += tr.PeriodicSkips
		if tr.PeriodicMaxPause > hf.Counters.MaxDrainPause {
			hf.Counters.MaxDrainPause = tr.PeriodicMaxPause
		}
		hf.Counters.ChainMismatches += tr.PeriodicChainMismatches
	}
	return hf
}

// RenderHostFault prints the comparison.
func RenderHostFault(results []HostFaultResult) string {
	t := trace.Table{
		Title: "Host death: checkpointed endpoints restored and reborn",
		Headers: []string{"Scheme", "trials", "sent", "delivered", "rate",
			"excused", "ckpts", "restores", "rejoins", "dead", "verdict"},
	}
	for _, r := range results {
		t.AddRow(r.Label,
			fmt.Sprintf("%d", len(r.Campaign.Trials)),
			fmt.Sprintf("%d", r.Campaign.Total.Sent),
			fmt.Sprintf("%d", r.Campaign.Total.Unique),
			fmt.Sprintf("%.1f%%", 100*r.DeliveryRate()),
			fmt.Sprintf("%d", r.Campaign.Total.Excused),
			fmt.Sprintf("%d", r.Counters.Checkpoints),
			fmt.Sprintf("%d", r.Counters.Restores),
			fmt.Sprintf("%d", r.Counters.Rejoins),
			fmt.Sprintf("%d", r.Counters.DeadDeclared),
			r.Verdict())
	}
	out := t.Render()
	for _, r := range results {
		c := r.Counters
		out += fmt.Sprintf("\n%-16s ckpts=%d ckpt-bytes=%d restores=%d rejoins=%d dead=%d readmitted=%d live-expelled=%d route-gaps=%d",
			r.Label, c.Checkpoints, c.CheckpointBytes, c.Restores, c.Rejoins,
			c.DeadDeclared, c.Readmissions, c.LiveExpelled, c.RouteGaps)
		if c.PeriodicFrames > 0 {
			out += fmt.Sprintf("\n%-16s frames=%d frame-bytes=%d skips=%d max-drain-pause=%v chain-mismatches=%d",
				"", c.PeriodicFrames, c.PeriodicBytes, c.PeriodicSkips,
				c.MaxDrainPause, c.ChainMismatches)
		}
	}
	return out
}
