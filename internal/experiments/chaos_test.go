package experiments

import (
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/sim"
)

// The chaos comparison's headline: the identical fault plan breaks stock GM
// and leaves FTGM exactly-once in-order.
func TestChaosComparison(t *testing.T) {
	cfg := chaos.DefaultCampaignConfig()
	cfg.Trials = 1
	cfg.Trial.SendEvery = 4 * sim.Millisecond
	results, err := ChaosComparison(20030623, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	byMode := map[string]chaos.CampaignResult{}
	for _, r := range results {
		byMode[r.Mode] = r
	}
	if byMode["GM"].AllExactlyOnce {
		t.Error("stock GM survived the chaos plan unscathed")
	}
	if !byMode["FTGM"].AllExactlyOnce {
		t.Errorf("FTGM audit dirty: %v", byMode["FTGM"].Total)
	}
	out := RenderChaos(results)
	for _, want := range []string{"GM", "FTGM", "BROKEN", "exactly-once in-order"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}
