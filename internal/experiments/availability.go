package experiments

import (
	"fmt"

	"repro/gm"
	"repro/internal/parallel"
	"repro/internal/trace"
)

// AvailabilityResult reports a long-mission run under recurring interface
// hangs — the NASA-REE-style context the paper motivates with (§2: systems
// "requiring high availability for special applications", where cosmic-ray
// upsets make processor hangs routine rather than exceptional).
type AvailabilityResult struct {
	Scheme       string
	MissionTime  gm.Duration
	Faults       int
	Sent         int
	Delivered    int
	Duplicates   int
	Losses       int
	Downtime     gm.Duration
	Availability float64 // 1 - downtime/mission
}

// AvailabilityConfig shapes the mission.
type AvailabilityConfig struct {
	// Mission is the total virtual mission time.
	Mission gm.Duration
	// FaultEvery is the spacing of injected hangs on the sender's
	// interface.
	FaultEvery gm.Duration
	// SendEvery is the application's message period.
	SendEvery gm.Duration
	// NaiveDetection is the external watchdog delay assumed for the naive
	// baseline (stock GM has no detection of its own; an operator or a
	// cluster heartbeat eventually notices).
	NaiveDetection gm.Duration
	// TargetWindows pins each injection to the instant an ACK leaves the
	// receiver — inside the protocol's vulnerable window. A real mission
	// has ~10^5 messages between faults, so over its lifetime some faults
	// land in the window; a compressed benchmark mission must aim for it
	// to show the same per-fault consequences (the Figure 4 duplicate
	// under naive restart).
	TargetWindows bool
	// HardFaults makes every injected fault a hard hang: the upset reaches
	// the timer/interrupt logic, so the watchdog can never fire (§4.2's
	// assumption violated). FTGM then degrades to the no-recovery scheme —
	// the honest boundary of the paper's detection mechanism.
	HardFaults bool
}

// DefaultAvailabilityConfig is a 60 s mission with a hang every 10 s.
func DefaultAvailabilityConfig() AvailabilityConfig {
	return AvailabilityConfig{
		Mission:        60 * gm.Second,
		FaultEvery:     10 * gm.Second,
		SendEvery:      1 * gm.Millisecond,
		NaiveDetection: 5 * gm.Second,
		TargetWindows:  true,
	}
}

// AvailabilityScheme selects the recovery policy under test.
type AvailabilityScheme int

// Schemes.
const (
	// SchemeNoRecovery is stock GM with nothing watching: the first hang
	// is permanent (middleware like MPI "consider GM send errors to be
	// fatal and exit", §2).
	SchemeNoRecovery AvailabilityScheme = iota + 1
	// SchemeNaiveRestart is stock GM plus an external watchdog that
	// reloads the driver after NaiveDetection (§3's baseline).
	SchemeNaiveRestart
	// SchemeFTGM is the paper's design.
	SchemeFTGM
)

// String names the scheme.
func (s AvailabilityScheme) String() string {
	switch s {
	case SchemeNoRecovery:
		return "GM, no recovery"
	case SchemeNaiveRestart:
		return "GM + naive restart"
	case SchemeFTGM:
		return "FTGM"
	default:
		return "scheme?"
	}
}

// Availability runs the mission under one scheme.
func Availability(scheme AvailabilityScheme, cfg AvailabilityConfig) (AvailabilityResult, error) {
	res := AvailabilityResult{Scheme: scheme.String(), MissionTime: cfg.Mission}
	mode := gm.ModeGM
	if scheme == SchemeFTGM {
		mode = gm.ModeFTGM
	}
	p, err := NewPair(PairOptions{
		Mode:       mode,
		SendTokens: 65536,
		Configure: func(c *gm.Config) {
			// A long outage accumulates a deep retransmission backlog;
			// keep recovery handler costs bounded for the mission.
			c.Host.RecoveryPerToken = 0
		},
	})
	if err != nil {
		return res, err
	}
	cl := p.Cluster
	start := cl.Now()

	// Receiver audit: numbered messages, exactly-once bookkeeping.
	seen := make(map[uint64]bool)
	var delivered, dups int
	p.PB.SetReceiveHandler(func(ev gm.RecvEvent) {
		var id uint64
		for i := 0; i < 8; i++ {
			id |= uint64(ev.Data[i]) << (8 * i)
		}
		if seen[id] {
			dups++
		}
		seen[id] = true
		delivered++
		_ = p.PB.ProvideReceiveBuffer(64, gm.PriorityLow)
	})
	for i := 0; i < 512; i++ {
		if err := p.PB.ProvideReceiveBuffer(64, gm.PriorityLow); err != nil {
			return res, err
		}
	}

	sent := 0
	var pump func()
	pump = func() {
		if cl.Now()-start >= cfg.Mission {
			return
		}
		sent++
		buf := make([]byte, 8)
		for i := 0; i < 8; i++ {
			buf[i] = byte(uint64(sent) >> (8 * i))
		}
		_ = p.PA.Send(p.B.ID(), 2, gm.PriorityLow, buf, nil)
		cl.After(cfg.SendEvery, pump)
	}
	pump()

	// Downtime accounting: from each injection until the interface is
	// serving again.
	var downtime gm.Duration
	var downSince gm.Time
	down := false
	markDown := func() {
		if !down {
			down = true
			downSince = cl.Now()
		}
	}
	markUp := func() {
		if down {
			down = false
			downtime += cl.Now() - downSince
		}
	}
	if scheme == SchemeFTGM {
		p.A.Recovered = func() { markUp() }
	}

	faults := 0
	fire := func() {
		faults++
		markDown()
		if cfg.HardFaults {
			p.A.InjectHardHang()
		} else {
			p.A.InjectHang()
		}
		switch scheme {
		case SchemeNaiveRestart:
			cl.After(cfg.NaiveDetection, func() {
				p.A.NaiveRestart(func() { markUp() })
			})
		case SchemeNoRecovery:
			// nothing ever happens
		}
	}
	var inject func()
	inject = func() {
		if cl.Now()-start >= cfg.Mission {
			return
		}
		if cfg.TargetWindows && !p.A.Hung() {
			// Aim the SEU at the vulnerable instant: the receiver has just
			// released an ACK that the hang will strand in transit.
			baseline := p.B.MCPStats().AcksSent
			var probe func()
			probe = func() {
				if p.A.Hung() {
					return
				}
				if p.B.MCPStats().AcksSent > baseline {
					fire()
					return
				}
				cl.After(100*gm.Nanosecond, probe)
			}
			probe()
		} else if !p.A.Hung() {
			fire()
		}
		cl.After(cfg.FaultEvery, inject)
	}
	cl.After(cfg.FaultEvery, inject)

	cl.RunUntil(start + cfg.Mission)
	// Downtime is judged over the mission window only.
	missionDowntime := downtime
	if down {
		missionDowntime += cl.Now() - downSince
	}
	// Let in-flight recovery and retransmissions settle before auditing
	// delivery (messages reaching their destination late still count as
	// delivered, just as a post-mission telemetry flush would).
	cl.Run(20 * gm.Second)

	res.Faults = faults
	res.Sent = sent
	res.Delivered = delivered
	res.Duplicates = dups
	res.Losses = sent - (delivered - dups)
	if res.Losses < 0 {
		res.Losses = 0
	}
	res.Downtime = missionDowntime
	if cfg.Mission > 0 {
		res.Availability = 1 - float64(missionDowntime)/float64(cfg.Mission)
		if res.Availability < 0 {
			res.Availability = 0
		}
	}
	return res, nil
}

// AvailabilityComparison runs all three schemes on the same mission. Each
// scheme's mission is a full, independent simulation on its own cluster, so
// the three run concurrently; the result order is fixed (no-recovery, naive
// restart, FTGM) regardless of which finishes first.
func AvailabilityComparison(cfg AvailabilityConfig) ([]AvailabilityResult, error) {
	schemes := []AvailabilityScheme{SchemeNoRecovery, SchemeNaiveRestart, SchemeFTGM}
	return parallel.Map(len(schemes), 0, func(i int) (AvailabilityResult, error) {
		return Availability(schemes[i], cfg)
	})
}

// RenderAvailability prints the comparison.
func RenderAvailability(results []AvailabilityResult) string {
	t := trace.Table{
		Title:   "Mission availability under recurring interface hangs (REE-style workload)",
		Headers: []string{"Scheme", "faults", "sent", "delivered", "dups", "lost", "downtime", "availability"},
	}
	for _, r := range results {
		t.AddRow(r.Scheme,
			fmt.Sprintf("%d", r.Faults),
			fmt.Sprintf("%d", r.Sent),
			fmt.Sprintf("%d", r.Delivered),
			fmt.Sprintf("%d", r.Duplicates),
			fmt.Sprintf("%d", r.Losses),
			r.Downtime.String(),
			fmt.Sprintf("%.1f%%", 100*r.Availability))
	}
	return t.Render()
}
