package experiments

import (
	"fmt"

	"repro/gm"
	"repro/internal/trace"
)

// CheckpointPoint reports one checkpoint-interval configuration of the
// classical whole-state checkpointing scheme the paper rejects: "a crude
// way ... is by periodically checkpointing both the application and the
// network interface state and retracting back to the last checkpoint ...
// Such a scheme however involves a great deal of overhead and in many ways
// can work against the very basis of using a high-speed network" (§4).
type CheckpointPoint struct {
	IntervalMs     float64
	MeanLatencyUs  float64
	P99LatencyUs   float64
	MaxLatencyUs   float64
	BandwidthMBs   float64
	PauseOverhead  float64 // fraction of time the NIC is quiesced
	RollbackLossMs float64 // mean work lost on a fault (interval/2)
}

// CheckpointConfig shapes the rejected scheme's costs.
type CheckpointConfig struct {
	// NICPause is how long the interface is quiesced per checkpoint
	// (drain, snapshot registers and queues).
	NICPause gm.Duration
	// StateBytes is the interface + application state copied across PCI
	// per checkpoint (the LANai alone carries up to 1 MB of SRAM).
	StateBytes int
}

// DefaultCheckpointConfig quiesces for 2 ms and copies 1 MB per round.
func DefaultCheckpointConfig() CheckpointConfig {
	return CheckpointConfig{NICPause: 2 * gm.Millisecond, StateBytes: 1 << 20}
}

// CheckpointBaseline measures ping latency and streaming bandwidth under
// periodic whole-state checkpointing at each interval, for comparison with
// FTGM's continuous 1.5 µs-per-message backup. The FTGM reference point is
// returned as a pseudo-interval of 0.
func CheckpointBaseline(intervals []gm.Duration, ckpt CheckpointConfig) ([]CheckpointPoint, error) {
	var out []CheckpointPoint

	// FTGM reference: no pauses, the continuous backup's cost is already
	// inside the per-message constants.
	ref, err := checkpointRun(0, ckpt)
	if err != nil {
		return nil, err
	}
	out = append(out, ref)

	for _, iv := range intervals {
		pt, err := checkpointRun(iv, ckpt)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

func checkpointRun(interval gm.Duration, ckpt CheckpointConfig) (CheckpointPoint, error) {
	var pt CheckpointPoint
	pt.IntervalMs = interval.Millis()

	p, err := NewPair(PairOptions{Mode: gm.ModeFTGM, SendTokens: 512})
	if err != nil {
		return pt, err
	}
	cl := p.Cluster

	if interval > 0 {
		var pause func()
		pause = func() {
			p.A.InjectCheckpointPause(ckpt.NICPause, ckpt.StateBytes)
			p.B.InjectCheckpointPause(ckpt.NICPause, ckpt.StateBytes)
			cl.After(interval, pause)
		}
		cl.After(interval, pause)
		// Quiesce time plus the PCI occupancy of the state copy.
		pciTime := gm.Duration(float64(ckpt.StateBytes) / 195e6 * float64(gm.Second))
		pt.PauseOverhead = float64(ckpt.NICPause+pciTime) / float64(interval)
		pt.RollbackLossMs = interval.Millis() / 2
	}

	// Latency probes: a ping every 500 µs for 200 rounds, timed
	// individually so checkpoint stalls show up in the tail.
	var lat trace.LatencySeries
	probes := 0
	var sendProbe func()
	p.PB.SetReceiveHandler(func(ev gm.RecvEvent) {
		_ = p.PB.ProvideReceiveBuffer(64, gm.PriorityLow)
	})
	for i := 0; i < 16; i++ {
		if err := p.PB.ProvideReceiveBuffer(64, gm.PriorityLow); err != nil {
			return pt, err
		}
	}
	sendProbe = func() {
		if probes >= 200 {
			return
		}
		probes++
		start := cl.Now()
		if err := p.PA.Send(p.B.ID(), 2, gm.PriorityLow, make([]byte, 16), func(gm.SendStatus) {
			lat.Add(cl.Now() - start)
			cl.After(500*gm.Microsecond, sendProbe)
		}); err != nil {
			panic(err)
		}
	}
	sendProbe()
	limit := cl.Now() + 30*gm.Second
	for lat.N() < 200 && cl.Now() < limit {
		cl.Run(10 * gm.Millisecond)
	}
	if lat.N() < 200 {
		return pt, fmt.Errorf("experiments: checkpoint probes stalled at %d/200", lat.N())
	}
	pt.MeanLatencyUs = lat.Mean().Micros()
	pt.P99LatencyUs = lat.Percentile(99).Micros()
	pt.MaxLatencyUs = lat.Max().Micros()

	// Streaming bandwidth under the same pauses.
	pt.BandwidthMBs = BidirectionalRate(p, 65536, 60)
	return pt, nil
}

// RenderCheckpoint prints the comparison, FTGM row first.
func RenderCheckpoint(points []CheckpointPoint) string {
	t := trace.Table{
		Title:   "Rejected baseline: periodic whole-state checkpointing vs FTGM's continuous backup",
		Headers: []string{"scheme", "send lat mean", "p99", "max", "stream MB/s", "NIC pause", "rollback loss"},
	}
	for i, p := range points {
		name := fmt.Sprintf("checkpoint every %.0fms", p.IntervalMs)
		if i == 0 {
			name = "FTGM (continuous)"
		}
		t.AddRow(name,
			fmt.Sprintf("%.1fus", p.MeanLatencyUs),
			fmt.Sprintf("%.1fus", p.P99LatencyUs),
			fmt.Sprintf("%.0fus", p.MaxLatencyUs),
			fmt.Sprintf("%.1f", p.BandwidthMBs),
			fmt.Sprintf("%.2f%%", 100*p.PauseOverhead),
			fmt.Sprintf("%.0fms", p.RollbackLossMs))
	}
	return t.Render()
}
