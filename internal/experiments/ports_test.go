package experiments

import (
	"strings"
	"testing"
)

func TestRecoveryVsPorts(t *testing.T) {
	points, err := RecoveryVsPorts([]int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// FTD time grows mildly (one FAULT_DETECTED post per port)...
	if points[2].FTDUs <= points[0].FTDUs {
		t.Errorf("FTD time not growing with ports: %v", points)
	}
	// ...while per-process time grows roughly linearly (handlers serialize
	// on the host CPU).
	r21 := points[1].PerProcessUs / points[0].PerProcessUs
	r42 := points[2].PerProcessUs / points[1].PerProcessUs
	if r21 < 1.7 || r21 > 2.3 || r42 < 1.7 || r42 > 2.3 {
		t.Errorf("per-process scaling not ~linear: 1->2 x%.2f, 2->4 x%.2f", r21, r42)
	}
	if !strings.Contains(RenderRecoveryVsPorts(points), "open ports") {
		t.Error("render broken")
	}
	if _, err := RecoveryVsPorts([]int{0}); err == nil {
		t.Error("port count 0 accepted")
	}
}
