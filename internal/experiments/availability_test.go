package experiments

import (
	"strings"
	"testing"

	"repro/gm"
)

func quickMission() AvailabilityConfig {
	return AvailabilityConfig{
		Mission:        20 * gm.Second,
		FaultEvery:     6 * gm.Second,
		SendEvery:      2 * gm.Millisecond,
		NaiveDetection: 2 * gm.Second,
		TargetWindows:  true,
	}
}

func TestAvailabilityNoRecoveryCollapses(t *testing.T) {
	res, err := Availability(SchemeNoRecovery, quickMission())
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults == 0 {
		t.Fatal("no faults injected")
	}
	// The first hang is permanent: most of the mission is downtime and
	// most messages are lost.
	if res.Availability > 0.5 {
		t.Errorf("availability = %.2f, want collapse", res.Availability)
	}
	if res.Losses < res.Sent/2 {
		t.Errorf("losses = %d of %d sent, want the majority", res.Losses, res.Sent)
	}
}

func TestAvailabilityFTGMRecovers(t *testing.T) {
	res, err := Availability(SchemeFTGM, quickMission())
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults < 2 {
		t.Fatalf("faults = %d", res.Faults)
	}
	// ~1.8 s of downtime per fault on a 20 s mission: availability well
	// above the naive schemes but below 1.
	if res.Availability < 0.6 || res.Availability >= 1.0 {
		t.Errorf("availability = %.2f", res.Availability)
	}
	if res.Duplicates != 0 {
		t.Errorf("duplicates = %d, want 0", res.Duplicates)
	}
	if res.Losses != 0 {
		t.Errorf("losses = %d, want 0", res.Losses)
	}
	if res.Delivered != res.Sent {
		t.Errorf("delivered %d of %d", res.Delivered, res.Sent)
	}
}

func TestAvailabilityComparisonOrdering(t *testing.T) {
	results, err := AvailabilityComparison(quickMission())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	none, naive, ftgm := results[0], results[1], results[2]
	if !(ftgm.Availability > naive.Availability && naive.Availability > none.Availability) {
		t.Errorf("availability ordering broken: %.2f / %.2f / %.2f",
			none.Availability, naive.Availability, ftgm.Availability)
	}
	// The naive scheme recovers liveness but not correctness.
	if naive.Duplicates+naive.Losses == 0 {
		t.Error("naive restart showed no correctness violations")
	}
	if ftgm.Duplicates+ftgm.Losses != 0 {
		t.Errorf("FTGM violations: %d dups, %d losses", ftgm.Duplicates, ftgm.Losses)
	}
	out := RenderAvailability(results)
	for _, want := range []string{"Mission availability", "FTGM", "naive", "availability"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestCheckpointBaseline(t *testing.T) {
	points, err := CheckpointBaseline([]gm.Duration{50 * gm.Millisecond, 10 * gm.Millisecond}, DefaultCheckpointConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	ftgm, cp50, cp10 := points[0], points[1], points[2]
	// FTGM's tail is tight; checkpointing spikes the tail by the pause.
	if ftgm.MaxLatencyUs > 100 {
		t.Errorf("FTGM max latency = %.0f us", ftgm.MaxLatencyUs)
	}
	if cp50.MaxLatencyUs < 1000 {
		t.Errorf("50ms-checkpoint max latency = %.0f us, want a ~ms stall", cp50.MaxLatencyUs)
	}
	// Tighter intervals cost more steady-state overhead and bandwidth.
	if cp10.PauseOverhead <= cp50.PauseOverhead {
		t.Error("pause overhead not increasing with checkpoint frequency")
	}
	if cp10.BandwidthMBs >= ftgm.BandwidthMBs {
		t.Errorf("10ms checkpointing bandwidth %.1f >= FTGM %.1f", cp10.BandwidthMBs, ftgm.BandwidthMBs)
	}
	// FTGM pays nothing in pauses or rollback.
	if ftgm.PauseOverhead != 0 || ftgm.RollbackLossMs != 0 {
		t.Error("FTGM reference shows checkpoint costs")
	}
	out := RenderCheckpoint(points)
	for _, want := range []string{"Rejected baseline", "FTGM (continuous)", "checkpoint every 10ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestAvailabilityHardFaultsDefeatWatchdog(t *testing.T) {
	// A hard hang kills the timer/interrupt logic: the watchdog cannot
	// fire, so FTGM degrades to the no-recovery outcome — the documented
	// boundary of §4.2's assumption.
	cfg := quickMission()
	cfg.HardFaults = true
	res, err := Availability(SchemeFTGM, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Availability > 0.5 {
		t.Errorf("availability = %.2f under hard faults, want collapse", res.Availability)
	}
	soft, err := Availability(SchemeFTGM, quickMission())
	if err != nil {
		t.Fatal(err)
	}
	if soft.Availability <= res.Availability {
		t.Errorf("soft-fault availability %.2f <= hard-fault %.2f", soft.Availability, res.Availability)
	}
}
