package experiments

import (
	"fmt"

	"repro/gm"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/trace"
)

// Table3Result aggregates the recovery-time components over several
// injected hangs (Table 3 / Figure 9 of the paper).
type Table3Result struct {
	Runs         int
	Detection    trace.LatencySeries
	FTD          trace.LatencySeries
	Reload       trace.LatencySeries
	PerProcess   trace.LatencySeries
	Total        trace.LatencySeries
	LastTimeline *core.Timeline
}

// Table3 injects `runs` hangs (at varied phases of the watchdog period)
// into a live FTGM pair carrying light traffic and measures each recovery
// phase. The same run yields the Figure 9 timeline.
func Table3(runs int) (*Table3Result, error) {
	res := &Table3Result{Runs: runs}
	p, err := NewPair(PairOptions{Mode: gm.ModeFTGM, SendTokens: 1024})
	if err != nil {
		return nil, err
	}
	// Light background traffic so recovery happens mid-stream.
	p.PB.SetReceiveHandler(func(ev gm.RecvEvent) {
		_ = p.PB.ProvideReceiveBuffer(64, gm.PriorityLow)
	})
	for i := 0; i < 64; i++ {
		if err := p.PB.ProvideReceiveBuffer(64, gm.PriorityLow); err != nil {
			return nil, err
		}
	}
	stopTraffic := false
	var pump func()
	pump = func() {
		if stopTraffic {
			return
		}
		_ = p.PA.Send(p.B.ID(), 2, gm.PriorityLow, []byte("background"), nil)
		p.Cluster.After(500*gm.Microsecond, pump)
	}
	pump()

	for i := 0; i < runs; i++ {
		// Vary the injection phase relative to the L_timer/watchdog cycle
		// so detection latency is sampled across the period.
		phase := gm.Duration(i) * 137 * gm.Microsecond
		p.Cluster.Run(20*gm.Millisecond + phase)

		recovered := false
		p.A.Recovered = func() { recovered = true }
		p.A.InjectHang()
		limit := p.Cluster.Now() + 20*gm.Second
		for !recovered && p.Cluster.Now() < limit {
			p.Cluster.Run(50 * gm.Millisecond)
		}
		if !recovered {
			return nil, fmt.Errorf("experiments: recovery %d did not complete", i)
		}
		tl := p.A.FTD().Timeline()
		res.Detection.Add(tl.DetectionTime())
		res.FTD.Add(tl.FTDTime())
		res.Reload.Add(tl.ReloadTime())
		res.PerProcess.Add(tl.PerProcessTime())
		res.Total.Add(tl.TotalTime())
		res.LastTimeline = tl
		// Let the retransmission backlog drain before the next fault.
		p.Cluster.Run(500 * gm.Millisecond)
	}
	stopTraffic = true
	return res, nil
}

// Render prints the Table 3 breakdown next to the paper's values.
func (r *Table3Result) Render() string {
	t := trace.Table{
		Title:   fmt.Sprintf("Table 3. Components of the fault recovery time (mean of %d runs)", r.Runs),
		Headers: []string{"Component", "this repro (us)", "paper (us)"},
	}
	t.AddRow("Fault Detection Time", fmt.Sprintf("%.0f", r.Detection.Mean().Micros()), "800")
	t.AddRow("FTD Recovery Time", fmt.Sprintf("%.0f", r.FTD.Mean().Micros()), "765000")
	t.AddRow("  of which MCP reload", fmt.Sprintf("%.0f", r.Reload.Mean().Micros()), "~500000")
	t.AddRow("Per-process Recovery Time", fmt.Sprintf("%.0f", r.PerProcess.Mean().Micros()), "900000")
	t.AddRow("Total", fmt.Sprintf("%.0f", r.Total.Mean().Micros()), "<2s")
	return t.Render()
}

// RenderTimeline prints the Figure 9 recovery timeline of the last run.
func (r *Table3Result) RenderTimeline() string {
	if r.LastTimeline == nil {
		return "no timeline recorded\n"
	}
	out := "Figure 9. The timeline of the fault recovery process\n"
	phases := r.LastTimeline.Phases()
	if len(phases) == 0 {
		return out
	}
	t0 := phases[0].At
	for _, ph := range phases {
		out += fmt.Sprintf("  %-22s t+%12.1f us\n", ph.Phase, (ph.At - t0).Micros())
	}
	return out
}

// EffectivenessResult reproduces the §5.2 experiment: the Table 1 campaign
// repeated with FTGM in place.
type EffectivenessResult struct {
	CampaignRuns int
	Hangs        int
	Detected     int
	Recovered    int
	AuditFailed  int
	PaperHangs   int // 286
	PaperMissed  int // 5
}

// Effectiveness runs the ISA campaign to find the hang-producing flips,
// then replays `sample` of them as live LANai hangs against an FTGM pair
// under audited traffic: every hang must be detected by the watchdog and
// recovered with exactly-once delivery.
func Effectiveness(campaignRuns, sample int, seed uint64) (*EffectivenessResult, error) {
	c, err := fault.NewCampaign(seed)
	if err != nil {
		return nil, err
	}
	campaign := c.Run(campaignRuns)
	res := &EffectivenessResult{
		CampaignRuns: campaignRuns,
		Hangs:        campaign.Counts[fault.OutcomeLocalHang],
		PaperHangs:   286,
		PaperMissed:  5,
	}
	if sample <= 0 || sample > res.Hangs {
		sample = res.Hangs
	}

	p, err := NewPair(PairOptions{Mode: gm.ModeFTGM, SendTokens: 4096})
	if err != nil {
		return nil, err
	}
	// Audited continuous traffic.
	seen := make(map[uint32]bool)
	var delivered, dups, reorders int
	var lastID uint32
	p.PB.SetReceiveHandler(func(ev gm.RecvEvent) {
		id := uint32(ev.Data[0]) | uint32(ev.Data[1])<<8 | uint32(ev.Data[2])<<16 | uint32(ev.Data[3])<<24
		if seen[id] {
			dups++
		}
		if id < lastID {
			reorders++
		}
		seen[id] = true
		lastID = id
		delivered++
		_ = p.PB.ProvideReceiveBuffer(64, gm.PriorityLow)
	})
	for i := 0; i < 256; i++ {
		if err := p.PB.ProvideReceiveBuffer(64, gm.PriorityLow); err != nil {
			return nil, err
		}
	}
	var sent uint32
	sendOne := func() {
		sent++
		id := sent
		buf := []byte{byte(id), byte(id >> 8), byte(id >> 16), byte(id >> 24)}
		_ = p.PA.Send(p.B.ID(), 2, gm.PriorityLow, buf, nil)
	}
	stop := false
	var pump func()
	pump = func() {
		if stop {
			return
		}
		sendOne()
		p.Cluster.After(300*gm.Microsecond, pump)
	}
	pump()

	for i := 0; i < sample; i++ {
		p.Cluster.Run(10 * gm.Millisecond)
		recovered := false
		p.A.Recovered = func() { recovered = true }
		before := p.A.FTD().Stats().Wakeups
		p.A.InjectHang()
		limit := p.Cluster.Now() + 20*gm.Second
		for !recovered && p.Cluster.Now() < limit {
			p.Cluster.Run(100 * gm.Millisecond)
		}
		if p.A.FTD().Stats().Wakeups > before {
			res.Detected++
		}
		if recovered {
			res.Recovered++
		}
		p.Cluster.Run(500 * gm.Millisecond) // drain backlog
	}
	stop = true
	p.Cluster.Run(2 * gm.Second)
	if dups > 0 || reorders > 0 || delivered < int(sent)-64 {
		res.AuditFailed = dups + reorders
	}
	_ = delivered
	return res, nil
}

// Render summarizes the §5.2 comparison.
func (r *EffectivenessResult) Render() string {
	t := trace.Table{
		Title:   "Recovery effectiveness (the §5.2 experiment: Table 1 campaign repeated with FTGM)",
		Headers: []string{"Quantity", "this repro", "paper"},
	}
	t.AddRow("Hangs in campaign", fmt.Sprintf("%d/%d", r.Hangs, r.CampaignRuns), "286/1000")
	t.AddRow("Hangs detected", fmt.Sprintf("%d/%d (replayed)", r.Detected, r.Recovered+r.missedCount()), "286/286 (all)")
	t.AddRow("Hangs recovered", fmt.Sprintf("%d", r.Recovered), "281/286")
	t.AddRow("Audit violations", fmt.Sprintf("%d", r.AuditFailed), "n/a")
	return t.Render()
}

func (r *EffectivenessResult) missedCount() int {
	return r.Detected - r.Recovered
}
