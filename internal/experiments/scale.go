package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/gm"
	"repro/internal/sim"
)

// This file is the large-cluster scaling harness: it builds a Clos fabric
// of N nodes, boots it over generator routes (no scout flood — the mapper
// is quadratic in cluster size and is not what this experiment measures),
// drives a traffic pattern from every node's own event domain, optionally
// throws a mid-run recovery storm at it, and reports how much wall clock
// the harness itself burned. Comparing Shards=0 (the classic single
// global event heap) against a sharded run on the same trial is the
// headline number: the same virtual schedule, executed by one heap vs
// many small per-domain heaps synchronized at conservative-time windows.

// Traffic patterns for RunScale.
const (
	// PatternAllToAll: every node streams round-robin to every peer.
	PatternAllToAll = "alltoall"
	// PatternIncast: every node streams at node 0 (the congestion case —
	// node 0's domain is the serial bottleneck, the worst case for
	// sharding).
	PatternIncast = "incast"
)

// ScaleOptions parameterize one scaling trial.
type ScaleOptions struct {
	// Nodes is the cluster size; must divide evenly into the Clos shape
	// (multiples of 8 up to 1024, or of 4/2 below that).
	Nodes int
	// Shards selects the engine: 0 = classic single-engine, >= 1 = that
	// many window-sweep workers over per-domain event heaps.
	Shards int
	// Pattern is PatternAllToAll or PatternIncast.
	Pattern string
	// MsgBytes is the payload size per message.
	MsgBytes int
	// TickEvery is each node's send cadence.
	TickEvery sim.Duration
	// Duration is the traffic window in virtual time; the trial then runs
	// half as long again to drain retransmits and recoveries.
	Duration sim.Duration
	// Storm hangs every eighth interface processor mid-run, so the FTD
	// fleet detects and recovers them all while the survivors keep
	// retransmitting into the outage.
	Storm bool
	// Drain extends the run past the traffic window so retransmits and
	// recoveries settle; zero selects Duration/2 + 25 ms.
	Drain sim.Duration
	// Seed defaults to 2003.
	Seed uint64
	// Monitors attaches one co-simulated load-monitor domain per leaf: a
	// ticker ring exchanging digests over its own lookahead edges, each
	// registering wholesale save/restore speculation hooks (FTHP-style
	// co-simulated daemons). Their schedule does not feed the fabric, so
	// node-level counters are identical with or without them.
	Monitors bool
	// Speculate arms speculative run-ahead on the engine
	// (gm.Config.Speculate, DESIGN.md §16): the gm node and switch domains
	// journal their mutations through incremental undo logs and run past
	// their conservative window bounds, as do the monitors via their
	// wholesale hooks. The harness's own per-node workload counters live in
	// journaled cells so a rolled-back span never leaks into the totals.
	// Requires Shards >= 1.
	Speculate bool
	// SpecHorizon bounds how far past the conservative bound a span may
	// run; zero picks the cluster default (8x the link propagation delay).
	SpecHorizon sim.Duration
	// ParallelThreshold overrides how many due domains a window needs
	// before it is dispatched to the worker pool (0 = engine default).
	ParallelThreshold int
}

// ScaleResult is one trial's outcome. The simulated-schedule fields
// (Sent..Now) are shard-count invariant by the engine's determinism
// contract; WallNs is the measured harness cost, which is the point.
type ScaleResult struct {
	Nodes     int          `json:"nodes"`
	Shards    int          `json:"shards"`
	Pattern   string       `json:"pattern"`
	Storm     bool         `json:"storm"`
	Sent      int64        `json:"sent"`
	Rejected  int64        `json:"rejected"`
	Delivered int64        `json:"delivered"`
	Recovered int          `json:"recovered"`
	Events    uint64       `json:"events"`
	Now       sim.Time     `json:"virtual_now"`
	Virtual   sim.Duration `json:"virtual_ns"`
	WallNs    int64        `json:"wall_ns"`

	// Speculation outcome, nonzero only on Speculate runs.
	Speculative   bool   `json:"speculative,omitempty"`
	Threshold     int    `json:"threshold,omitempty"`
	MonitorTicks  uint64 `json:"monitor_ticks,omitempty"`
	SpecCommits   uint64 `json:"spec_commits,omitempty"`
	SpecRollbacks uint64 `json:"spec_rollbacks,omitempty"`
	// Adaptive-horizon telemetry (DESIGN.md §16): the spread of per-domain
	// effective horizons when the run ended. Like the commit/rollback
	// counters these are pure functions of the window schedule, so they are
	// bit-identical across executor counts and gate the single-core
	// overhead story: a low mean relative to SpecHorizon shows the AIMD
	// controller throttling speculation where it keeps losing.
	HorizonLo   sim.Duration `json:"horizon_lo,omitempty"`
	HorizonHi   sim.Duration `json:"horizon_hi,omitempty"`
	HorizonMean sim.Duration `json:"horizon_mean,omitempty"`
}

// closShape picks a two-tier Clos for n nodes: the widest per-leaf fan-in
// that divides n, four spines (or fewer on tiny clusters).
func closShape(n int) (spines, leaves, perLeaf int, err error) {
	for _, p := range []int{8, 4, 2, 1} {
		if n%p == 0 {
			perLeaf = p
			break
		}
	}
	leaves = n / perLeaf
	if leaves > 128 {
		return 0, 0, 0, fmt.Errorf("scale: %d nodes exceed the 128-leaf route-delta range", n)
	}
	spines = 4
	if leaves < spines {
		spines = leaves
	}
	return spines, leaves, perLeaf, nil
}

// scaleConfig is the trial configuration: FTGM mode, recovery constants
// shrunk so a storm's detect-and-recover cycle fits in single-digit
// virtual milliseconds, and a slightly longer cable (600 ns, ~120 m of
// fiber) so the conservative windows are wide enough to batch work.
func scaleConfig(opts ScaleOptions) gm.Config {
	cfg := gm.DefaultConfig(gm.ModeFTGM)
	cfg.Shards = opts.Shards
	cfg.Seed = opts.Seed
	if cfg.Seed == 0 {
		cfg.Seed = 2003
	}
	cfg.Link.PropDelay = 600 * sim.Nanosecond
	cfg.Driver.MCPLoadTime = 2 * sim.Millisecond
	cfg.Host.RecoveryHandlerBase = sim.Millisecond
	cfg.Host.RecoverySeqUpload = 100 * sim.Microsecond
	cfg.Host.RecoveryReopen = 100 * sim.Microsecond
	cfg.FTD.VerifyInterval = 500 * sim.Microsecond
	cfg.FTD.UnmapIO = 200 * sim.Microsecond
	cfg.FTD.CardReset = sim.Millisecond
	cfg.FTD.ClearSRAM = 500 * sim.Microsecond
	cfg.FTD.RestorePageTable = sim.Millisecond
	cfg.FTD.RestoreRoutes = 500 * sim.Microsecond
	cfg.Speculate = opts.Speculate
	cfg.SpecHorizon = opts.SpecHorizon
	cfg.ParallelThreshold = opts.ParallelThreshold
	return cfg
}

// scaleMonitor is one co-simulated load monitor: its own event domain,
// an RNG-paced tick that folds a digest, and a periodic digest message to
// the next monitor in the ring across a TimedBoundary. It registers
// speculation hooks, so with Speculate armed its spans commit during quiet
// stretches and roll back when a neighbor's digest lands inside one.
type scaleMonitor struct {
	eng     *sim.Engine
	counter uint64
	digest  uint64
	out     *monitorBoundary
	lat     sim.Duration
	tick    sim.Duration
	stopAt  sim.Time
}

type monitorMsg struct {
	at sim.Time
	v  uint64
}

// monitorBoundary carries digests between adjacent monitors in the ring.
type monitorBoundary struct {
	src, dst *sim.Engine
	tgt      *scaleMonitor
	class    uint32 // arrival ordering class (sim.AtArrival)
	q        []monitorMsg
	noted    bool
}

func (b *monitorBoundary) BoundaryTarget() *sim.Engine { return b.dst }

func (b *monitorBoundary) EarliestPending() sim.Time {
	min := sim.Forever
	for _, m := range b.q {
		if m.at < min {
			min = m.at
		}
	}
	return min
}

func (b *monitorBoundary) FlushBoundary() {
	b.noted = false
	for _, m := range b.q {
		m := m
		b.dst.AtArrival(m.at, b.class, "mon", func() { b.tgt.fold(m.v ^ 0x5bd1e995) })
	}
	b.q = b.q[:0]
}

// monitorSnap is the component checkpoint the speculation hooks copy.
type monitorSnap struct {
	counter uint64
	digest  uint64
	outQ    []monitorMsg
	noted   bool
}

func (m *scaleMonitor) save() any {
	return monitorSnap{
		counter: m.counter,
		digest:  m.digest,
		outQ:    append([]monitorMsg(nil), m.out.q...),
		noted:   m.out.noted,
	}
}

func (m *scaleMonitor) restore(v any) {
	s := v.(monitorSnap)
	m.counter = s.counter
	m.digest = s.digest
	m.out.q = append(m.out.q[:0], s.outQ...)
	m.out.noted = s.noted
}

func (m *scaleMonitor) fold(v uint64) {
	h := m.digest ^ v
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	m.digest = h ^ (h >> 27)
}

func (m *scaleMonitor) run() {
	m.counter++
	m.fold(m.counter)
	m.fold(m.eng.RNG().Uint64())
	if m.counter%32 == 0 {
		m.out.q = append(m.out.q, monitorMsg{at: m.eng.Now() + m.lat, v: m.digest})
		if !m.out.noted {
			m.out.noted = true
			m.eng.NoteBoundary(m.out)
		}
	}
	// RNG-paced sampling much denser than the ring latency: that is the
	// regime where speculative spans hold several events below the
	// neighbor-derived commit bound, so speculation actually pays.
	if next := m.eng.Now() + m.tick + m.eng.RNG().Duration(m.tick); next <= m.stopAt {
		m.eng.AtLabel(next, "mon", m.run)
	}
}

// attachMonitors carves one monitor domain per leaf and rings them
// together. Must run before Boot (domains and edges are fixed at first
// Run); the caller tightens stopAt once the post-boot clock is known —
// each tick re-reads it, so the chains wind down on time.
func attachMonitors(c *gm.Cluster, leaves int, lat sim.Duration) []*scaleMonitor {
	mons := make([]*scaleMonitor, leaves)
	for i := range mons {
		mons[i] = &scaleMonitor{
			eng:    c.Engine().NewDomain(fmt.Sprintf("mon%d", i)),
			lat:    lat,
			tick:   100 * sim.Nanosecond,
			stopAt: sim.Forever,
		}
	}
	for i, m := range mons {
		next := mons[(i+1)%leaves]
		m.out = &monitorBoundary{src: m.eng, dst: next.eng, tgt: next, class: next.eng.ArrivalClass()}
		m.eng.ObserveEdgeLookahead(next.eng, lat)
		m.eng.EnableSpeculation(m.save, m.restore)
	}
	for i, m := range mons {
		m := m
		m.eng.AtLabel(sim.Time(500+i*11)*sim.Nanosecond, "mon", m.run)
	}
	return mons
}

// scaleCell is one node's workload state — the peer cursor and the traffic
// counters the harness mutates from inside that node's event domain. Node
// domains genuinely speculate now (DESIGN.md §16), so these mutations must
// ride the same undo journal as the library's own state: every callback
// touches the cell before mutating it, and a rolled-back span restores the
// shadow. Without this, a replayed tick would double-count its send.
type scaleCell struct {
	eng  *sim.Engine
	mark uint64

	peer      int
	sent      int64
	rejected  int64
	delivered int64
	recovered int

	shadow scaleSnap
}

type scaleSnap struct {
	peer                      int
	sent, rejected, delivered int64
	recovered                 int
}

func (w *scaleCell) touch() { w.eng.SpecTouch(&w.mark, w) }

func (w *scaleCell) SpecSave() {
	w.shadow = scaleSnap{w.peer, w.sent, w.rejected, w.delivered, w.recovered}
}

func (w *scaleCell) SpecRestore() {
	s := w.shadow
	w.peer, w.sent, w.rejected, w.delivered, w.recovered =
		s.peer, s.sent, s.rejected, s.delivered, s.recovered
}

// RunScale executes one scaling trial and reports its schedule counters
// and wall-clock cost.
func RunScale(opts ScaleOptions) (ScaleResult, error) {
	if opts.Pattern == "" {
		opts.Pattern = PatternAllToAll
	}
	if opts.Pattern != PatternAllToAll && opts.Pattern != PatternIncast {
		return ScaleResult{}, fmt.Errorf("scale: unknown pattern %q", opts.Pattern)
	}
	if opts.MsgBytes <= 0 {
		opts.MsgBytes = 512
	}
	if opts.TickEvery <= 0 {
		opts.TickEvery = 4 * sim.Microsecond
	}
	if opts.Duration <= 0 {
		opts.Duration = 2 * sim.Millisecond
	}
	spines, leaves, perLeaf, err := closShape(opts.Nodes)
	if err != nil {
		return ScaleResult{}, err
	}

	cfg := scaleConfig(opts)
	c := gm.NewCluster(cfg)
	topo, err := gm.BuildClos(c, spines, leaves, perLeaf)
	if err != nil {
		return ScaleResult{}, err
	}
	var mons []*scaleMonitor
	if opts.Monitors {
		// The ring latency is the monitors' own co-sim contract, not the
		// cable: 2 µs keeps the digest edges much wider than the sampling
		// cadence, which is what gives speculative spans room to commit.
		mons = attachMonitors(c, leaves, 2*sim.Microsecond)
	}

	start := time.Now()
	if _, err := topo.Boot(c); err != nil {
		return ScaleResult{}, err
	}

	n := len(topo.Nodes)
	res := ScaleResult{
		Nodes:       n,
		Shards:      opts.Shards,
		Pattern:     opts.Pattern,
		Storm:       opts.Storm,
		Speculative: opts.Speculate,
		Threshold:   opts.ParallelThreshold,
	}
	cells := make([]*scaleCell, n)
	ports := make([]*gm.Port, n)
	for i, node := range topo.Nodes {
		p, err := node.OpenPort(2)
		if err != nil {
			return ScaleResult{}, err
		}
		ports[i] = p
		w := &scaleCell{eng: node.Engine(), peer: (i + 1) % n}
		cells[i] = w
		p.SetReceiveHandler(func(ev gm.RecvEvent) {
			w.touch()
			w.delivered++
			_ = p.RecycleReceiveBuffer(ev.Data, ev.Prio)
		})
		slots := 32
		if opts.Pattern == PatternIncast && i == 0 {
			slots = 256 // the incast sink needs depth
		}
		for j := 0; j < slots; j++ {
			if err := p.ProvideReceiveBuffer(uint32(opts.MsgBytes), gm.PriorityLow); err != nil {
				return ScaleResult{}, err
			}
		}
	}

	stopAt := c.Now() + opts.Duration
	for _, m := range mons {
		m.stopAt = stopAt
	}
	payload := make([]byte, opts.MsgBytes)
	for i, node := range topo.Nodes {
		if opts.Pattern == PatternIncast && i == 0 {
			continue
		}
		i := i
		eng := node.Engine()
		w := cells[i]
		var tick func()
		tick = func() {
			if eng.Now() >= stopAt {
				return
			}
			w.touch()
			dst := 0
			if opts.Pattern == PatternAllToAll {
				if w.peer == i {
					w.peer = (w.peer + 1) % n
				}
				dst = w.peer
				w.peer = (w.peer + 1) % n
			}
			if err := ports[i].Send(topo.Nodes[dst].ID(), 2, gm.PriorityLow, payload, nil); err != nil {
				w.rejected++
			} else {
				w.sent++
			}
			eng.After(opts.TickEvery, tick)
		}
		// Stagger the start so the first window is not one synchronized
		// burst.
		eng.After(sim.Duration(i%16+1)*250*sim.Nanosecond, tick)
	}

	if opts.Storm {
		for i, node := range topo.Nodes {
			if i%8 != 3 {
				continue
			}
			node := node
			w := cells[i]
			node.Recovered = func() {
				w.touch()
				w.recovered++
			}
			c.After(opts.Duration/2, func() { node.InjectHang() })
		}
	}

	drain := opts.Drain
	if drain <= 0 {
		drain = opts.Duration/2 + 25*sim.Millisecond
		if opts.Storm {
			// A recovery storm leaves Go-Back-N streams mid-flight; give
			// every straggler time to land so delivery counts converge.
			drain += 100 * sim.Millisecond
		}
		if opts.Pattern == PatternIncast {
			// The sink services one sender at a time; the receiver-not-
			// ready retransmit churn takes a while to unwind, and the tail
			// grows with the number of senders waiting for a slot.
			drain += 200*sim.Millisecond + sim.Duration(opts.Nodes)*4*sim.Millisecond
		}
	}
	c.RunUntil(stopAt + drain)
	c.Shutdown(sim.Millisecond)
	res.WallNs = time.Since(start).Nanoseconds()

	for _, w := range cells {
		res.Sent += w.sent
		res.Rejected += w.rejected
		res.Delivered += w.delivered
		res.Recovered += w.recovered
	}
	res.Events = c.Engine().ExecutedAll()
	res.Now = c.Now()
	res.Virtual = sim.Duration(res.Now)
	for _, m := range mons {
		res.MonitorTicks += m.counter
	}
	res.SpecCommits, res.SpecRollbacks, _, _ = c.Engine().SpecStats()
	if opts.Speculate {
		res.HorizonLo, res.HorizonHi, res.HorizonMean = c.Engine().SpecHorizonStats()
	}
	if opts.Storm && res.Recovered == 0 {
		return res, fmt.Errorf("scale: storm injected but no node completed recovery")
	}
	if res.Delivered == 0 {
		return res, fmt.Errorf("scale: no traffic delivered")
	}
	return res, nil
}

// ScalePoint is one serial-vs-sharded comparison on an identical trial.
type ScalePoint struct {
	Serial  ScaleResult `json:"serial"`
	Sharded ScaleResult `json:"sharded"`
}

// Speedup is serial wall clock over sharded wall clock (> 1 means the
// sharded engine won).
func (p ScalePoint) Speedup() float64 {
	if p.Sharded.WallNs <= 0 {
		return 0
	}
	return float64(p.Serial.WallNs) / float64(p.Sharded.WallNs)
}

// Matches reports whether both runs executed the identical virtual
// schedule. Only meaningful when both runs used Shards >= 1: that is the
// engine's bit-for-bit invariance contract (the trace-level check lives in
// the gm test suite). A legacy Shards == 0 run is a different engine —
// same-timestamp events tie-break on a global sequence counter instead of
// per-domain ones, and Control runs inline instead of as a barrier event —
// so its schedule legitimately differs in same-instant orderings.
func (p ScalePoint) Matches() bool {
	a, b := p.Serial, p.Sharded
	return a.Sent == b.Sent && a.Rejected == b.Rejected &&
		a.Delivered == b.Delivered && a.Recovered == b.Recovered &&
		a.Events == b.Events && a.Now == b.Now
}

// ScaleSweep runs the serial-vs-sharded comparison across cluster sizes
// and patterns. Every size runs all-to-all; sizes >= stormAt also run the
// incast pattern and get a recovery storm on the all-to-all point.
func ScaleSweep(sizes []int, shards int, stormAt int) ([]ScalePoint, error) {
	var pts []ScalePoint
	for _, n := range sizes {
		patterns := []string{PatternAllToAll}
		if n >= stormAt {
			patterns = append(patterns, PatternIncast)
		}
		for _, pat := range patterns {
			opts := ScaleOptions{
				Nodes:   n,
				Pattern: pat,
				Storm:   pat == PatternAllToAll && n >= stormAt,
			}
			opts.Shards = 0
			serial, err := RunScale(opts)
			if err != nil {
				return nil, fmt.Errorf("scale %d/%s serial: %w", n, pat, err)
			}
			opts.Shards = shards
			sharded, err := RunScale(opts)
			if err != nil {
				return nil, fmt.Errorf("scale %d/%s shards=%d: %w", n, pat, shards, err)
			}
			// Each run must deliver every accepted send (exactly-once over
			// the drain window); schedule identity between shard counts is
			// asserted trace-level in the gm suite, not here — the legacy
			// baseline tie-breaks same-instant events differently.
			for _, r := range []ScaleResult{serial, sharded} {
				if r.Delivered != r.Sent {
					return nil, fmt.Errorf("scale %d/%s shards=%d: delivered %d of %d accepted sends",
						n, pat, r.Shards, r.Delivered, r.Sent)
				}
			}
			pts = append(pts, ScalePoint{Serial: serial, Sharded: sharded})
		}
	}
	return pts, nil
}

// MatrixPoint is one cell of the multi-core scale matrix.
type MatrixPoint struct {
	Label  string      `json:"label"`
	Result ScaleResult `json:"result"`
}

// ScaleMatrix runs the multi-core matrix on one cluster size: shard count x
// {conservative, speculative} with the monitor ring attached in every cell
// (so the workloads are identical and the columns comparable), plus a
// dispatch-threshold sweep on the last shard count. It cross-checks the
// invariance contract on the way: every cell with the same Speculate
// setting must execute the identical virtual schedule regardless of shard
// count or threshold.
func ScaleMatrix(nodes int, shardCounts, thresholds []int, dur sim.Duration) ([]MatrixPoint, error) {
	base := ScaleOptions{
		Nodes:       nodes,
		Pattern:     PatternAllToAll,
		Duration:    dur,
		Monitors:    true,
		SpecHorizon: sim.Microsecond,
	}
	var pts []MatrixPoint
	var refCons, refSpec *ScaleResult
	check := func(label string, r ScaleResult, ref **ScaleResult) error {
		if r.Delivered != r.Sent {
			return fmt.Errorf("scale matrix %s: delivered %d of %d accepted sends", label, r.Delivered, r.Sent)
		}
		if *ref == nil {
			c := r
			*ref = &c
			return nil
		}
		o := **ref
		if r.Sent != o.Sent || r.Delivered != o.Delivered || r.Events != o.Events ||
			r.Now != o.Now || r.MonitorTicks != o.MonitorTicks ||
			r.SpecCommits != o.SpecCommits || r.SpecRollbacks != o.SpecRollbacks ||
			r.HorizonLo != o.HorizonLo || r.HorizonHi != o.HorizonHi ||
			r.HorizonMean != o.HorizonMean {
			return fmt.Errorf("scale matrix %s: schedule diverged from its reference cell:\n  ref: %+v\n  got: %+v", label, o, r)
		}
		return nil
	}
	// Each cell is timed best-of-N: the virtual schedule is deterministic
	// (every repeat is cross-checked against the reference cell), so the
	// minimum wall clock is the least-noisy estimate of the cell's true
	// cost — cells are compared against each other by regression gates, and
	// a single noisy measurement on a loaded host would fail them spuriously.
	const matrixRepeats = 3
	run := func(label string, opts ScaleOptions, ref **ScaleResult) error {
		var best ScaleResult
		for i := 0; i < matrixRepeats; i++ {
			r, err := RunScale(opts)
			if err != nil {
				return fmt.Errorf("scale matrix %s: %w", label, err)
			}
			if err := check(label, r, ref); err != nil {
				return err
			}
			if i == 0 || r.WallNs < best.WallNs {
				best = r
			}
		}
		pts = append(pts, MatrixPoint{Label: label, Result: best})
		return nil
	}
	for _, s := range shardCounts {
		opts := base
		opts.Shards = s
		if err := run(fmt.Sprintf("s%d_cons", s), opts, &refCons); err != nil {
			return nil, err
		}
		opts.Speculate = true
		if err := run(fmt.Sprintf("s%d_spec", s), opts, &refSpec); err != nil {
			return nil, err
		}
	}
	if len(shardCounts) > 0 {
		s := shardCounts[len(shardCounts)-1]
		for _, thr := range thresholds {
			opts := base
			opts.Shards = s
			opts.ParallelThreshold = thr
			if err := run(fmt.Sprintf("thr%d", thr), opts, &refCons); err != nil {
				return nil, err
			}
		}
	}
	return pts, nil
}

// RenderScaleMatrix formats the matrix in the usual experiment-table shape.
func RenderScaleMatrix(nodes int, pts []MatrixPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Multi-core scale matrix at %d nodes: shards x {conservative, speculative}\n", nodes)
	fmt.Fprintf(&b, "%-10s  %6s  %4s  %12s  %10s  %10s  %8s  %8s  %9s  %10s\n",
		"cell", "shards", "thr", "events", "delivered", "mon ticks", "commits", "rollbk", "hmean ns", "wall ms")
	for _, p := range pts {
		r := p.Result
		fmt.Fprintf(&b, "%-10s  %6d  %4d  %12d  %10d  %10d  %8d  %8d  %9d  %10.1f\n",
			p.Label, r.Shards, r.Threshold, r.Events, r.Delivered,
			r.MonitorTicks, r.SpecCommits, r.SpecRollbacks, int64(r.HorizonMean), float64(r.WallNs)/1e6)
	}
	return b.String()
}

// RenderScale formats a sweep in the usual experiment-table shape.
func RenderScale(pts []ScalePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Large-cluster scaling: serial engine vs sharded conservative-time engine\n")
	fmt.Fprintf(&b, "%6s  %-8s  %-5s  %12s  %10s  %12s  %12s  %8s\n",
		"nodes", "pattern", "storm", "events", "delivered", "serial ms", "sharded ms", "speedup")
	for _, p := range pts {
		fmt.Fprintf(&b, "%6d  %-8s  %-5v  %12d  %10d  %12.1f  %12.1f  %7.2fx\n",
			p.Serial.Nodes, p.Serial.Pattern, p.Serial.Storm,
			p.Serial.Events, p.Serial.Delivered,
			float64(p.Serial.WallNs)/1e6, float64(p.Sharded.WallNs)/1e6, p.Speedup())
	}
	return b.String()
}
