package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/gm"
	"repro/internal/sim"
)

// This file is the large-cluster scaling harness: it builds a Clos fabric
// of N nodes, boots it over generator routes (no scout flood — the mapper
// is quadratic in cluster size and is not what this experiment measures),
// drives a traffic pattern from every node's own event domain, optionally
// throws a mid-run recovery storm at it, and reports how much wall clock
// the harness itself burned. Comparing Shards=0 (the classic single
// global event heap) against a sharded run on the same trial is the
// headline number: the same virtual schedule, executed by one heap vs
// many small per-domain heaps synchronized at conservative-time windows.

// Traffic patterns for RunScale.
const (
	// PatternAllToAll: every node streams round-robin to every peer.
	PatternAllToAll = "alltoall"
	// PatternIncast: every node streams at node 0 (the congestion case —
	// node 0's domain is the serial bottleneck, the worst case for
	// sharding).
	PatternIncast = "incast"
)

// ScaleOptions parameterize one scaling trial.
type ScaleOptions struct {
	// Nodes is the cluster size; must divide evenly into the Clos shape
	// (multiples of 8 up to 1024, or of 4/2 below that).
	Nodes int
	// Shards selects the engine: 0 = classic single-engine, >= 1 = that
	// many window-sweep workers over per-domain event heaps.
	Shards int
	// Pattern is PatternAllToAll or PatternIncast.
	Pattern string
	// MsgBytes is the payload size per message.
	MsgBytes int
	// TickEvery is each node's send cadence.
	TickEvery sim.Duration
	// Duration is the traffic window in virtual time; the trial then runs
	// half as long again to drain retransmits and recoveries.
	Duration sim.Duration
	// Storm hangs every eighth interface processor mid-run, so the FTD
	// fleet detects and recovers them all while the survivors keep
	// retransmitting into the outage.
	Storm bool
	// Drain extends the run past the traffic window so retransmits and
	// recoveries settle; zero selects Duration/2 + 25 ms.
	Drain sim.Duration
	// Seed defaults to 2003.
	Seed uint64
}

// ScaleResult is one trial's outcome. The simulated-schedule fields
// (Sent..Now) are shard-count invariant by the engine's determinism
// contract; WallNs is the measured harness cost, which is the point.
type ScaleResult struct {
	Nodes     int          `json:"nodes"`
	Shards    int          `json:"shards"`
	Pattern   string       `json:"pattern"`
	Storm     bool         `json:"storm"`
	Sent      int64        `json:"sent"`
	Rejected  int64        `json:"rejected"`
	Delivered int64        `json:"delivered"`
	Recovered int          `json:"recovered"`
	Events    uint64       `json:"events"`
	Now       sim.Time     `json:"virtual_now"`
	Virtual   sim.Duration `json:"virtual_ns"`
	WallNs    int64        `json:"wall_ns"`
}

// closShape picks a two-tier Clos for n nodes: the widest per-leaf fan-in
// that divides n, four spines (or fewer on tiny clusters).
func closShape(n int) (spines, leaves, perLeaf int, err error) {
	for _, p := range []int{8, 4, 2, 1} {
		if n%p == 0 {
			perLeaf = p
			break
		}
	}
	leaves = n / perLeaf
	if leaves > 128 {
		return 0, 0, 0, fmt.Errorf("scale: %d nodes exceed the 128-leaf route-delta range", n)
	}
	spines = 4
	if leaves < spines {
		spines = leaves
	}
	return spines, leaves, perLeaf, nil
}

// scaleConfig is the trial configuration: FTGM mode, recovery constants
// shrunk so a storm's detect-and-recover cycle fits in single-digit
// virtual milliseconds, and a slightly longer cable (600 ns, ~120 m of
// fiber) so the conservative windows are wide enough to batch work.
func scaleConfig(opts ScaleOptions) gm.Config {
	cfg := gm.DefaultConfig(gm.ModeFTGM)
	cfg.Shards = opts.Shards
	cfg.Seed = opts.Seed
	if cfg.Seed == 0 {
		cfg.Seed = 2003
	}
	cfg.Link.PropDelay = 600 * sim.Nanosecond
	cfg.Driver.MCPLoadTime = 2 * sim.Millisecond
	cfg.Host.RecoveryHandlerBase = sim.Millisecond
	cfg.Host.RecoverySeqUpload = 100 * sim.Microsecond
	cfg.Host.RecoveryReopen = 100 * sim.Microsecond
	cfg.FTD.VerifyInterval = 500 * sim.Microsecond
	cfg.FTD.UnmapIO = 200 * sim.Microsecond
	cfg.FTD.CardReset = sim.Millisecond
	cfg.FTD.ClearSRAM = 500 * sim.Microsecond
	cfg.FTD.RestorePageTable = sim.Millisecond
	cfg.FTD.RestoreRoutes = 500 * sim.Microsecond
	return cfg
}

// RunScale executes one scaling trial and reports its schedule counters
// and wall-clock cost.
func RunScale(opts ScaleOptions) (ScaleResult, error) {
	if opts.Pattern == "" {
		opts.Pattern = PatternAllToAll
	}
	if opts.Pattern != PatternAllToAll && opts.Pattern != PatternIncast {
		return ScaleResult{}, fmt.Errorf("scale: unknown pattern %q", opts.Pattern)
	}
	if opts.MsgBytes <= 0 {
		opts.MsgBytes = 512
	}
	if opts.TickEvery <= 0 {
		opts.TickEvery = 4 * sim.Microsecond
	}
	if opts.Duration <= 0 {
		opts.Duration = 2 * sim.Millisecond
	}
	spines, leaves, perLeaf, err := closShape(opts.Nodes)
	if err != nil {
		return ScaleResult{}, err
	}

	cfg := scaleConfig(opts)
	c := gm.NewCluster(cfg)
	topo, err := gm.BuildClos(c, spines, leaves, perLeaf)
	if err != nil {
		return ScaleResult{}, err
	}

	start := time.Now()
	if _, err := topo.Boot(c); err != nil {
		return ScaleResult{}, err
	}

	n := len(topo.Nodes)
	res := ScaleResult{
		Nodes:   n,
		Shards:  opts.Shards,
		Pattern: opts.Pattern,
		Storm:   opts.Storm,
	}
	sent := make([]int64, n)
	rejected := make([]int64, n)
	delivered := make([]int64, n)
	recovered := make([]int, n)
	ports := make([]*gm.Port, n)
	for i, node := range topo.Nodes {
		p, err := node.OpenPort(2)
		if err != nil {
			return ScaleResult{}, err
		}
		ports[i] = p
		i := i
		p.SetReceiveHandler(func(ev gm.RecvEvent) {
			delivered[i]++
			_ = p.RecycleReceiveBuffer(ev.Data, ev.Prio)
		})
		slots := 32
		if opts.Pattern == PatternIncast && i == 0 {
			slots = 256 // the incast sink needs depth
		}
		for j := 0; j < slots; j++ {
			if err := p.ProvideReceiveBuffer(uint32(opts.MsgBytes), gm.PriorityLow); err != nil {
				return ScaleResult{}, err
			}
		}
	}

	stopAt := c.Now() + opts.Duration
	payload := make([]byte, opts.MsgBytes)
	for i, node := range topo.Nodes {
		if opts.Pattern == PatternIncast && i == 0 {
			continue
		}
		i := i
		eng := node.Engine()
		peer := (i + 1) % n
		var tick func()
		tick = func() {
			if eng.Now() >= stopAt {
				return
			}
			dst := 0
			if opts.Pattern == PatternAllToAll {
				if peer == i {
					peer = (peer + 1) % n
				}
				dst = peer
				peer = (peer + 1) % n
			}
			if err := ports[i].Send(topo.Nodes[dst].ID(), 2, gm.PriorityLow, payload, nil); err != nil {
				rejected[i]++
			} else {
				sent[i]++
			}
			eng.After(opts.TickEvery, tick)
		}
		// Stagger the start so the first window is not one synchronized
		// burst.
		eng.After(sim.Duration(i%16+1)*250*sim.Nanosecond, tick)
	}

	if opts.Storm {
		for i, node := range topo.Nodes {
			if i%8 != 3 {
				continue
			}
			i, node := i, node
			node.Recovered = func() { recovered[i]++ }
			c.After(opts.Duration/2, func() { node.InjectHang() })
		}
	}

	drain := opts.Drain
	if drain <= 0 {
		drain = opts.Duration/2 + 25*sim.Millisecond
		if opts.Storm {
			// A recovery storm leaves Go-Back-N streams mid-flight; give
			// every straggler time to land so delivery counts converge.
			drain += 100 * sim.Millisecond
		}
		if opts.Pattern == PatternIncast {
			// The sink services one sender at a time; the receiver-not-
			// ready retransmit churn takes a while to unwind, and the tail
			// grows with the number of senders waiting for a slot.
			drain += 200*sim.Millisecond + sim.Duration(opts.Nodes)*4*sim.Millisecond
		}
	}
	c.RunUntil(stopAt + drain)
	c.Shutdown(sim.Millisecond)
	res.WallNs = time.Since(start).Nanoseconds()

	for i := range topo.Nodes {
		res.Sent += sent[i]
		res.Rejected += rejected[i]
		res.Delivered += delivered[i]
		res.Recovered += recovered[i]
	}
	res.Events = c.Engine().ExecutedAll()
	res.Now = c.Now()
	res.Virtual = sim.Duration(res.Now)
	if opts.Storm && res.Recovered == 0 {
		return res, fmt.Errorf("scale: storm injected but no node completed recovery")
	}
	if res.Delivered == 0 {
		return res, fmt.Errorf("scale: no traffic delivered")
	}
	return res, nil
}

// ScalePoint is one serial-vs-sharded comparison on an identical trial.
type ScalePoint struct {
	Serial  ScaleResult `json:"serial"`
	Sharded ScaleResult `json:"sharded"`
}

// Speedup is serial wall clock over sharded wall clock (> 1 means the
// sharded engine won).
func (p ScalePoint) Speedup() float64 {
	if p.Sharded.WallNs <= 0 {
		return 0
	}
	return float64(p.Serial.WallNs) / float64(p.Sharded.WallNs)
}

// Matches reports whether both runs executed the identical virtual
// schedule. Only meaningful when both runs used Shards >= 1: that is the
// engine's bit-for-bit invariance contract (the trace-level check lives in
// the gm test suite). A legacy Shards == 0 run is a different engine —
// same-timestamp events tie-break on a global sequence counter instead of
// per-domain ones, and Control runs inline instead of as a barrier event —
// so its schedule legitimately differs in same-instant orderings.
func (p ScalePoint) Matches() bool {
	a, b := p.Serial, p.Sharded
	return a.Sent == b.Sent && a.Rejected == b.Rejected &&
		a.Delivered == b.Delivered && a.Recovered == b.Recovered &&
		a.Events == b.Events && a.Now == b.Now
}

// ScaleSweep runs the serial-vs-sharded comparison across cluster sizes
// and patterns. Every size runs all-to-all; sizes >= stormAt also run the
// incast pattern and get a recovery storm on the all-to-all point.
func ScaleSweep(sizes []int, shards int, stormAt int) ([]ScalePoint, error) {
	var pts []ScalePoint
	for _, n := range sizes {
		patterns := []string{PatternAllToAll}
		if n >= stormAt {
			patterns = append(patterns, PatternIncast)
		}
		for _, pat := range patterns {
			opts := ScaleOptions{
				Nodes:   n,
				Pattern: pat,
				Storm:   pat == PatternAllToAll && n >= stormAt,
			}
			opts.Shards = 0
			serial, err := RunScale(opts)
			if err != nil {
				return nil, fmt.Errorf("scale %d/%s serial: %w", n, pat, err)
			}
			opts.Shards = shards
			sharded, err := RunScale(opts)
			if err != nil {
				return nil, fmt.Errorf("scale %d/%s shards=%d: %w", n, pat, shards, err)
			}
			// Each run must deliver every accepted send (exactly-once over
			// the drain window); schedule identity between shard counts is
			// asserted trace-level in the gm suite, not here — the legacy
			// baseline tie-breaks same-instant events differently.
			for _, r := range []ScaleResult{serial, sharded} {
				if r.Delivered != r.Sent {
					return nil, fmt.Errorf("scale %d/%s shards=%d: delivered %d of %d accepted sends",
						n, pat, r.Shards, r.Delivered, r.Sent)
				}
			}
			pts = append(pts, ScalePoint{Serial: serial, Sharded: sharded})
		}
	}
	return pts, nil
}

// RenderScale formats a sweep in the usual experiment-table shape.
func RenderScale(pts []ScalePoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Large-cluster scaling: serial engine vs sharded conservative-time engine\n")
	fmt.Fprintf(&b, "%6s  %-8s  %-5s  %12s  %10s  %12s  %12s  %8s\n",
		"nodes", "pattern", "storm", "events", "delivered", "serial ms", "sharded ms", "speedup")
	for _, p := range pts {
		fmt.Fprintf(&b, "%6d  %-8s  %-5v  %12d  %10d  %12.1f  %12.1f  %7.2fx\n",
			p.Serial.Nodes, p.Serial.Pattern, p.Serial.Storm,
			p.Serial.Events, p.Serial.Delivered,
			float64(p.Serial.WallNs)/1e6, float64(p.Sharded.WallNs)/1e6, p.Speedup())
	}
	return b.String()
}
