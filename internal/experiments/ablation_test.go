package experiments

import (
	"strings"
	"testing"
)

func TestAblationDelayedACK(t *testing.T) {
	res, err := AblationDelayedACK(4096, 40)
	if err != nil {
		t.Fatal(err)
	}
	// The delayed commit point must cost something in token turnaround
	// (the ACK waits for the receive-side DMA)...
	if res.TurnaroundDelayedUs <= res.TurnaroundImmediateUs {
		t.Errorf("turnaround delayed %.2f <= immediate %.2f",
			res.TurnaroundDelayedUs, res.TurnaroundImmediateUs)
	}
	// ...but be invisible in bandwidth (within 3%), the paper's argument.
	if res.BandwidthDelayed < res.BandwidthImmediate*0.97 {
		t.Errorf("bandwidth delayed %.1f vs immediate %.1f: delay visible in throughput",
			res.BandwidthDelayed, res.BandwidthImmediate)
	}
	if !strings.Contains(res.Render(), "delayed ACK") {
		t.Error("render broken")
	}
}

func TestAblationSeqStreams(t *testing.T) {
	res, err := AblationSeqStreams()
	if err != nil {
		t.Fatal(err)
	}
	// The rejected per-connection design pays synchronization on every
	// send.
	extra := res.PerConnectionSendUs - res.PerPortSendUs
	if extra < 0.3 || extra > 0.45 {
		t.Errorf("sync overhead = %.2f us, want ~0.35", extra)
	}
	if res.PerConnLatencyUs <= res.PerPortLatencyUs {
		t.Error("sync overhead invisible in latency")
	}
	if !strings.Contains(res.Render(), "per-port streams") {
		t.Error("render broken")
	}
}

func TestAblationShadowCopy(t *testing.T) {
	res, err := AblationShadowCopy()
	if err != nil {
		t.Fatal(err)
	}
	dSend := res.WithCopySendUs - res.WithoutCopySendUs
	dRecv := res.WithCopyRecvUs - res.WithoutCopyRecvUs
	if dSend < 0.2 || dSend > 0.3 {
		t.Errorf("send-side copy cost = %.2f us, want ~0.25", dSend)
	}
	if dRecv < 0.35 || dRecv > 0.45 {
		t.Errorf("recv-side copy cost = %.2f us, want ~0.4", dRecv)
	}
	if res.WithCopyLatUs <= res.WithoutCopyLatUs {
		t.Error("copy cost invisible in latency")
	}
	if !strings.Contains(res.Render(), "shadow-token") {
		t.Error("render broken")
	}
}

func TestAblationWatchdog(t *testing.T) {
	points, err := AblationWatchdog([]int{400, 1000, 4000})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	// 400 µs is below the L_timer period: spurious expiries (caught by the
	// magic-word check, but they happen).
	if points[0].FalseAlarms == 0 {
		t.Error("sub-period watchdog produced no false alarms")
	}
	// The paper's choice (1000 µs) is quiet.
	if points[1].FalseAlarms != 0 {
		t.Errorf("1000us watchdog false alarms = %d", points[1].FalseAlarms)
	}
	// Detection latency grows with the interval.
	if points[2].DetectionUs <= points[1].DetectionUs {
		t.Errorf("detection not growing: %v", points)
	}
	if points[1].DetectionUs > 1100 {
		t.Errorf("1000us watchdog detection = %.0f us", points[1].DetectionUs)
	}
	if !strings.Contains(RenderWatchdog(points), "IT1") {
		t.Error("render broken")
	}
}
