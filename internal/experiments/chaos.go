package experiments

import (
	"fmt"

	"repro/gm"
	"repro/internal/chaos"
	"repro/internal/trace"
)

// ChaosComparison runs the same seed-split chaos campaign — compound hangs
// (including hang-during-recovery and simultaneous dual hangs), flapping
// and degraded cables, dead crossbar ports, and failing MCP reloads —
// against stock GM (with the §3 naive-restart watchdog) and against FTGM.
// The stream auditor's exactly-once in-order verdict is the headline: FTGM
// must come back clean, and the identical fault plan must visibly break
// the baseline.
func ChaosComparison(seed uint64, cfg chaos.CampaignConfig) ([]chaos.CampaignResult, error) {
	results := make([]chaos.CampaignResult, 0, 2)
	for _, mode := range []gm.Mode{gm.ModeGM, gm.ModeFTGM} {
		cfg := cfg
		cfg.Mode = mode
		res, err := chaos.Run(seed, cfg)
		if err != nil {
			return nil, err
		}
		results = append(results, res)
	}
	return results, nil
}

// RenderChaos prints the campaign comparison.
func RenderChaos(results []chaos.CampaignResult) string {
	t := trace.Table{
		Title: "Chaos campaign: compound faults with end-to-end delivery audit",
		Headers: []string{"Scheme", "trials", "clean", "sent", "delivered",
			"dups", "ooo", "lost", "corrupt", "verdict"},
	}
	for _, r := range results {
		verdict := "BROKEN"
		if r.AllExactlyOnce {
			verdict = "exactly-once in-order"
		}
		t.AddRow(r.Mode,
			fmt.Sprintf("%d", len(r.Trials)),
			fmt.Sprintf("%d", r.CleanTrials),
			fmt.Sprintf("%d", r.Total.Sent),
			fmt.Sprintf("%d", r.Total.Delivered),
			fmt.Sprintf("%d", r.Total.Duplicates),
			fmt.Sprintf("%d", r.Total.OutOfOrder),
			fmt.Sprintf("%d", r.Total.Lost),
			fmt.Sprintf("%d", r.Total.Corrupt),
			verdict)
	}
	out := t.Render()
	for _, r := range results {
		var rec struct {
			recov, restarts, retries, fails, naive uint64
		}
		for _, tr := range r.Trials {
			rec.recov += tr.Recoveries
			rec.restarts += tr.RecoveryRestarts
			rec.retries += tr.ReloadRetries
			rec.fails += tr.RecoveryFailures
			rec.naive += tr.NaiveRestarts
		}
		out += fmt.Sprintf("\n%-5s recoveries=%d recovery-restarts=%d reload-retries=%d terminal-failures=%d naive-restarts=%d",
			r.Mode, rec.recov, rec.restarts, rec.retries, rec.fails, rec.naive)
	}
	return out
}
