package experiments

import (
	"fmt"

	"repro/gm"
	"repro/internal/chaos"
	"repro/internal/trace"
)

// NetFaultResult is one scheme's showing under the network-fault campaign.
type NetFaultResult struct {
	// Label names the scheme: GM, FTGM, or FTGM+netwatch.
	Label    string
	Campaign chaos.CampaignResult
	// Counters sums the trials' network-fault activity.
	Counters NetFaultCounters
}

// NetFaultCounters aggregates detection and watchdog activity over a
// campaign.
type NetFaultCounters struct {
	Suspicions    uint64 // MCP path-health reports raised to hosts
	Incidents     uint64 // watchdog debounce windows opened
	Remaps        uint64 // successful automatic remaps
	RemapFailures uint64
	Probes        uint64 // readmission probes while peers were expelled
	Unreachable   uint64 // peers expelled as unreachable
	Readmissions  uint64
	FailedSends   uint64 // sends terminally failed against expelled peers
}

// DeliveryRate is the fraction of accepted sends that arrived (duplicates
// not counted): the headline number a dead trunk drags down when nothing
// reroutes around it.
func (r NetFaultResult) DeliveryRate() float64 {
	if r.Campaign.Total.Sent == 0 {
		return 0
	}
	return float64(r.Campaign.Total.Unique) / float64(r.Campaign.Total.Sent)
}

// NetworkFaultComparison runs the identical network-fault injection plan —
// permanently dead inter-switch trunks and a full node partition on the
// redundant dual-switch fabric — against stock GM, plain FTGM, and FTGM
// with the network watchdog. The first two have no failover story: streams
// riding the dead trunk stall (FTGM retransmits into the void; GM just
// loses them) until the settle budget expires. The watchdog remaps onto
// the surviving trunk and keeps delivery exactly-once.
func NetworkFaultComparison(seed uint64, cfg chaos.CampaignConfig) ([]NetFaultResult, error) {
	cfg.Trial.DualSwitch = true
	if len(cfg.Trial.Kinds) == 0 {
		cfg.Trial.Kinds = chaos.NetFaultKinds()
	}
	schemes := []struct {
		label string
		mode  gm.Mode
		watch bool
	}{
		{"GM", gm.ModeGM, false},
		{"FTGM", gm.ModeFTGM, false},
		{"FTGM+netwatch", gm.ModeFTGM, true},
	}
	results := make([]NetFaultResult, 0, len(schemes))
	for _, s := range schemes {
		cfg := cfg
		cfg.Mode = s.mode
		cfg.Trial.NetWatch = s.watch
		res, err := chaos.Run(seed, cfg)
		if err != nil {
			return nil, err
		}
		nf := NetFaultResult{Label: s.label, Campaign: res}
		for _, tr := range res.Trials {
			nf.Counters.Suspicions += tr.NetFaultSuspicions
			nf.Counters.Incidents += tr.NetIncidents
			nf.Counters.Remaps += tr.NetRemaps
			nf.Counters.RemapFailures += tr.NetRemapFailures
			nf.Counters.Probes += tr.NetProbes
			nf.Counters.Unreachable += tr.NetUnreachable
			nf.Counters.Readmissions += tr.NetReadmissions
			nf.Counters.FailedSends += tr.UnreachableFails
		}
		results = append(results, nf)
	}
	return results, nil
}

// RenderNetFault prints the comparison.
func RenderNetFault(results []NetFaultResult) string {
	t := trace.Table{
		Title: "Network faults: dead trunks and partitions on a dual-switch fabric",
		Headers: []string{"Scheme", "trials", "sent", "delivered", "rate",
			"lost", "failed", "remaps", "expelled", "verdict"},
	}
	for _, r := range results {
		verdict := "STALLED"
		if r.Campaign.AllExactlyOnce {
			verdict = "exactly-once in-order"
		}
		t.AddRow(r.Label,
			fmt.Sprintf("%d", len(r.Campaign.Trials)),
			fmt.Sprintf("%d", r.Campaign.Total.Sent),
			fmt.Sprintf("%d", r.Campaign.Total.Unique),
			fmt.Sprintf("%.1f%%", 100*r.DeliveryRate()),
			fmt.Sprintf("%d", r.Campaign.Total.Lost),
			fmt.Sprintf("%d", r.Campaign.Total.Failed),
			fmt.Sprintf("%d", r.Counters.Remaps),
			fmt.Sprintf("%d", r.Counters.Unreachable),
			verdict)
	}
	out := t.Render()
	for _, r := range results {
		c := r.Counters
		out += fmt.Sprintf("\n%-13s suspicions=%d incidents=%d remaps=%d remap-failures=%d probes=%d expelled=%d readmitted=%d failed-sends=%d",
			r.Label, c.Suspicions, c.Incidents, c.Remaps, c.RemapFailures,
			c.Probes, c.Unreachable, c.Readmissions, c.FailedSends)
	}
	return out
}
