package experiments

import (
	"fmt"

	"repro/gm"
	"repro/internal/trace"
)

// RecoveryVsPortsPoint is one sample of the port-count scaling experiment.
type RecoveryVsPortsPoint struct {
	Ports        int
	FTDUs        float64
	PerProcessUs float64
	TotalUs      float64
}

// RecoveryVsPorts measures how the recovery time scales with the number of
// open ports. "The rest of the recovery time depends on the number of open
// ports at the time of failure" (§5.2): the FTD posts one FAULT_DETECTED
// event per port, and every port's process runs its own handler.
func RecoveryVsPorts(portCounts []int) ([]RecoveryVsPortsPoint, error) {
	var out []RecoveryVsPortsPoint
	for _, nports := range portCounts {
		if nports < 1 || nports > gm.MaxPorts {
			return nil, fmt.Errorf("experiments: port count %d out of range", nports)
		}
		p, err := NewPair(PairOptions{Mode: gm.ModeFTGM})
		if err != nil {
			return nil, err
		}
		// PA/PB already occupy port 2; open the remaining ones.
		opened := 1
		for id := gm.PortID(0); int(id) < gm.MaxPorts && opened < nports; id++ {
			if id == 2 {
				continue
			}
			if _, err := p.A.OpenPort(id); err != nil {
				return nil, err
			}
			opened++
		}
		p.Cluster.Run(10 * gm.Millisecond)
		recovered := false
		p.A.Recovered = func() { recovered = true }
		p.A.InjectHang()
		limit := p.Cluster.Now() + 30*gm.Second
		for !recovered && p.Cluster.Now() < limit {
			p.Cluster.Run(100 * gm.Millisecond)
		}
		if !recovered {
			return nil, fmt.Errorf("experiments: recovery with %d ports did not finish", nports)
		}
		tl := p.A.FTD().Timeline()
		out = append(out, RecoveryVsPortsPoint{
			Ports:        nports,
			FTDUs:        tl.FTDTime().Micros(),
			PerProcessUs: tl.PerProcessTime().Micros(),
			TotalUs:      tl.TotalTime().Micros(),
		})
	}
	return out, nil
}

// RenderRecoveryVsPorts prints the scaling table.
func RenderRecoveryVsPorts(points []RecoveryVsPortsPoint) string {
	t := trace.Table{
		Title:   "Recovery time vs open ports (§5.2: per-port FAULT_DETECTED + handler)",
		Headers: []string{"open ports", "FTD (us)", "per-process (us)", "total (us)"},
	}
	for _, p := range points {
		t.AddRow(
			fmt.Sprintf("%d", p.Ports),
			fmt.Sprintf("%.0f", p.FTDUs),
			fmt.Sprintf("%.0f", p.PerProcessUs),
			fmt.Sprintf("%.0f", p.TotalUs))
	}
	return t.Render()
}
