// Package experiments reproduces every table and figure of the paper's
// evaluation on top of the simulated Myrinet/GM stack:
//
//	Table 1  — fault-injection outcome distribution (ISA-level campaign)
//	Figure 7 — bidirectional bandwidth vs message length, GM vs FTGM
//	Figure 8 — half-round-trip latency vs message length, GM vs FTGM
//	Table 2  — bandwidth / latency / host util / LANai util summary
//	Table 3  — recovery time components
//	Figure 9 — recovery timeline
//	§5.2     — detection and recovery effectiveness under the campaign
//	Figures 4 and 5 — the motivating failure scenarios of stock GM
//
// plus the ablations called out in DESIGN.md. Each experiment returns
// structured results and can render itself in the textual shape the paper
// reports; cmd/ tools and the benchmark suite are thin wrappers.
package experiments

import (
	"fmt"

	"repro/gm"
	"repro/internal/trace"
)

// Pair is a two-node experiment cluster: the paper's testbed shape (two
// Pentium III hosts, LANai9 PCI64B cards, one M3M-SW8 switch).
type Pair struct {
	Cluster *gm.Cluster
	A, B    *gm.Node
	PA, PB  *gm.Port
}

// PairOptions tweak the standard testbed.
type PairOptions struct {
	Mode       gm.Mode
	Seed       uint64
	SendTokens int
	RecvSlots  int
	Configure  func(*gm.Config)
}

// NewPair builds and boots the standard two-node testbed with one open
// port (port 2) on each side.
func NewPair(opts PairOptions) (*Pair, error) {
	cfg := gm.DefaultConfig(opts.Mode)
	if opts.Seed != 0 {
		cfg.Seed = opts.Seed
	}
	if opts.SendTokens > 0 {
		cfg.Host.SendTokens = opts.SendTokens
	}
	if opts.Configure != nil {
		opts.Configure(&cfg)
	}
	cl := gm.NewCluster(cfg)
	a := cl.AddNode("hostA")
	b := cl.AddNode("hostB")
	sw := cl.AddSwitch("m3m-sw8")
	if err := cl.Connect(a, sw, 0); err != nil {
		return nil, err
	}
	if err := cl.Connect(b, sw, 1); err != nil {
		return nil, err
	}
	if _, err := cl.Boot(); err != nil {
		return nil, fmt.Errorf("experiments: boot: %w", err)
	}
	pa, err := a.OpenPort(2)
	if err != nil {
		return nil, err
	}
	pb, err := b.OpenPort(2)
	if err != nil {
		return nil, err
	}
	return &Pair{Cluster: cl, A: a, B: b, PA: pa, PB: pb}, nil
}

// streamStats reports a one-direction streaming run.
type streamStats struct {
	delivered  int
	firstAt    gm.Time
	lastAt     gm.Time
	bytesTotal uint64
}

// rate reports the steady-state data rate: bytes after the first delivery
// divided by the first-to-last delivery span.
func (s *streamStats) rate() float64 {
	if s.delivered < 2 {
		return 0
	}
	perMsg := s.bytesTotal / uint64(s.delivered)
	return trace.Bandwidth(s.bytesTotal-perMsg, s.lastAt-s.firstAt)
}

// stream drives `count` messages of `size` bytes from one port to another
// at the maximum rate the token flow control allows (the gm_allsize
// workload of §5.1), re-providing receive buffers as they drain.
func stream(cl *gm.Cluster, from *gm.Port, to *gm.Port, dest gm.NodeID, size, count, recvSlots int) *streamStats {
	st := &streamStats{}
	to.SetReceiveHandler(func(ev gm.RecvEvent) {
		if st.delivered == 0 {
			st.firstAt = cl.Now()
		}
		st.delivered++
		st.bytesTotal += uint64(len(ev.Data))
		st.lastAt = cl.Now()
		// The message was counted, not read: hand its buffer straight back
		// (steady state then allocates nothing per message).
		_ = to.RecycleReceiveBuffer(ev.Data, gm.PriorityLow)
	})
	for i := 0; i < recvSlots; i++ {
		if err := to.ProvideReceiveBuffer(uint32(size), gm.PriorityLow); err != nil {
			panic(err)
		}
	}
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = byte(i)
	}
	posted := 0
	var post func()
	post = func() {
		for posted < count {
			err := from.Send(dest, to.ID(), gm.PriorityLow, payload, func(gm.SendStatus) { post() })
			if err == gm.ErrNoSendTokens {
				return // callbacks will resume posting
			}
			if err != nil {
				panic(err)
			}
			posted++
		}
	}
	cl.After(0, post)
	return st
}

// BidirectionalRate measures the sustained per-direction data rate with
// both hosts sending and receiving at the maximum rate possible (Figure 7's
// workload). It returns the mean of the two directions in MB/s.
func BidirectionalRate(p *Pair, size, count int) float64 {
	ab := stream(p.Cluster, p.PA, p.PB, p.B.ID(), size, count, 32)
	ba := stream(p.Cluster, p.PB, p.PA, p.A.ID(), size, count, 32)
	// Run until both directions drain (bounded for safety).
	limit := p.Cluster.Now() + 120*gm.Second
	for (ab.delivered < count || ba.delivered < count) && p.Cluster.Now() < limit {
		p.Cluster.Run(10 * gm.Millisecond)
	}
	if ab.delivered < count || ba.delivered < count {
		panic(fmt.Sprintf("experiments: streaming stalled: %d/%d and %d/%d",
			ab.delivered, count, ba.delivered, count))
	}
	return (ab.rate() + ba.rate()) / 2
}

// HalfRoundTrip measures the mean half round-trip latency of `rounds`
// ping-pong exchanges of `size`-byte messages (Figure 8's workload).
func HalfRoundTrip(p *Pair, size, rounds int) gm.Duration {
	payload := make([]byte, size)
	var lat trace.LatencySeries
	lat.Reserve(rounds)
	var start gm.Time
	done := 0
	p.PB.SetReceiveHandler(func(ev gm.RecvEvent) {
		_ = p.PB.RecycleReceiveBuffer(ev.Data, gm.PriorityLow)
		if err := p.PB.Send(p.A.ID(), 2, gm.PriorityLow, payload, nil); err != nil {
			panic(err)
		}
	})
	p.PA.SetReceiveHandler(func(ev gm.RecvEvent) {
		lat.Add(p.Cluster.Now() - start)
		done++
		if done < rounds {
			start = p.Cluster.Now()
			_ = p.PA.RecycleReceiveBuffer(ev.Data, gm.PriorityLow)
			if err := p.PA.Send(p.B.ID(), 2, gm.PriorityLow, payload, nil); err != nil {
				panic(err)
			}
		}
	})
	if err := p.PA.ProvideReceiveBuffer(uint32(size)+16, gm.PriorityLow); err != nil {
		panic(err)
	}
	if err := p.PB.ProvideReceiveBuffer(uint32(size)+16, gm.PriorityLow); err != nil {
		panic(err)
	}
	start = p.Cluster.Now()
	if err := p.PA.Send(p.B.ID(), 2, gm.PriorityLow, payload, nil); err != nil {
		panic(err)
	}
	limit := p.Cluster.Now() + 60*gm.Second
	for done < rounds && p.Cluster.Now() < limit {
		p.Cluster.Run(10 * gm.Millisecond)
	}
	if done < rounds {
		panic(fmt.Sprintf("experiments: ping-pong stalled at %d/%d", done, rounds))
	}
	return lat.Mean() / 2
}
