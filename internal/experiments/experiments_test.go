package experiments

import (
	"strings"
	"testing"

	"repro/gm"
)

func TestTable1Experiment(t *testing.T) {
	res, err := Table1(500, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Campaign.Runs != 500 {
		t.Errorf("runs = %d", res.Campaign.Runs)
	}
	out := res.Render()
	for _, want := range []string{"Table 1", "Local Interface Hung", "No Impact", "28.6%", "Iyer"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTable1ParallelDeterminism(t *testing.T) {
	// Table 1's campaign fans out across GOMAXPROCS workers internally; two
	// runs from the same seed must produce identical trial lists — same
	// order, same bits, same outcomes — regardless of scheduling.
	a, err := Table1(1000, 2003)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Table1(1000, 2003)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Campaign.Trials) != 1000 || len(b.Campaign.Trials) != 1000 {
		t.Fatalf("trials = %d / %d", len(a.Campaign.Trials), len(b.Campaign.Trials))
	}
	for i := range a.Campaign.Trials {
		if a.Campaign.Trials[i] != b.Campaign.Trials[i] {
			t.Fatalf("trial %d: %+v != %+v", i, a.Campaign.Trials[i], b.Campaign.Trials[i])
		}
	}
}

func TestBandwidthShape(t *testing.T) {
	// Figure 7's shape in miniature: FTGM tracks GM closely, the curve
	// grows with message size, and large messages approach the ~92 MB/s
	// asymptote.
	sizes := []int{64, 4096, 65536, 262144}
	res, err := Figure7(sizes, 40)
	if err != nil {
		t.Fatal(err)
	}
	last := len(sizes) - 1
	gmAsym := res.GM.Points[last].Y
	ftAsym := res.FTGM.Points[last].Y
	if gmAsym < 80 || gmAsym > 105 {
		t.Errorf("GM asymptote = %.1f MB/s, want ~92", gmAsym)
	}
	if ftAsym < gmAsym*0.97 {
		t.Errorf("FTGM asymptote = %.1f MB/s, want within 3%% of GM %.1f", ftAsym, gmAsym)
	}
	for i := 1; i <= last; i++ {
		if res.GM.Points[i].Y <= res.GM.Points[i-1].Y {
			t.Errorf("GM bandwidth not increasing at %v", res.GM.Points[i].X)
		}
	}
	if !strings.Contains(res.Render(), "Figure 7") {
		t.Error("render broken")
	}
}

func TestBandwidthJaggedAtFragmentBoundary(t *testing.T) {
	// A message one byte past 4 KB needs a second fragment: its rate dips
	// below the 4 KB point (the jagged mid-curve of Figure 7).
	p1, err := NewPair(PairOptions{Mode: gm.ModeGM})
	if err != nil {
		t.Fatal(err)
	}
	at4k := BidirectionalRate(p1, 4096, 60)
	p2, err := NewPair(PairOptions{Mode: gm.ModeGM})
	if err != nil {
		t.Fatal(err)
	}
	past4k := BidirectionalRate(p2, 4097, 60)
	if past4k >= at4k {
		t.Errorf("rate(4097B)=%.1f >= rate(4096B)=%.1f; fragmentation dip missing", past4k, at4k)
	}
}

func TestLatencyShape(t *testing.T) {
	sizes := []int{16, 1024, 16384}
	res, err := Figure8(sizes, 20)
	if err != nil {
		t.Fatal(err)
	}
	// Small-message latencies in the paper's bands; FTGM ~1.5 µs above GM.
	if res.GM.Points[0].Y < 10 || res.GM.Points[0].Y > 13 {
		t.Errorf("GM 16B latency = %.1f us", res.GM.Points[0].Y)
	}
	d := res.FTGM.Points[0].Y - res.GM.Points[0].Y
	if d < 1.0 || d > 2.0 {
		t.Errorf("FTGM-GM delta = %.2f us, want ~1.5", d)
	}
	// Latency grows with size.
	for i := 1; i < len(sizes); i++ {
		if res.GM.Points[i].Y <= res.GM.Points[i-1].Y {
			t.Error("latency not increasing with size")
		}
	}
	if !strings.Contains(res.Render(), "Figure 8") {
		t.Error("render broken")
	}
}

func TestTable2Experiment(t *testing.T) {
	res, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	r := res.GM
	f := res.FTGM
	if r.LatencyUs < 10 || r.LatencyUs > 13 {
		t.Errorf("GM latency = %.1f", r.LatencyUs)
	}
	if f.LatencyUs-r.LatencyUs < 1.0 || f.LatencyUs-r.LatencyUs > 2.0 {
		t.Errorf("latency delta = %.2f", f.LatencyUs-r.LatencyUs)
	}
	if r.HostSendUs < 0.25 || r.HostSendUs > 0.35 || f.HostSendUs < 0.5 || f.HostSendUs > 0.6 {
		t.Errorf("host send = %.2f / %.2f", r.HostSendUs, f.HostSendUs)
	}
	if r.LanaiPerMsgUs < 5 || r.LanaiPerMsgUs > 7.5 {
		t.Errorf("GM LANai util = %.1f", r.LanaiPerMsgUs)
	}
	if f.BandwidthMBs < r.BandwidthMBs*0.95 {
		t.Errorf("FTGM bandwidth %.1f much below GM %.1f", f.BandwidthMBs, r.BandwidthMBs)
	}
	out := res.Render()
	for _, want := range []string{"Table 2", "Bandwidth", "LANai util.", "92.4MB/s"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestTable3Experiment(t *testing.T) {
	res, err := Table3(3)
	if err != nil {
		t.Fatal(err)
	}
	det := res.Detection.Mean().Micros()
	if det < 100 || det > 1200 {
		t.Errorf("detection = %.0f us, want sub-ms", det)
	}
	ftd := res.FTD.Mean().Micros()
	if ftd < 600000 || ftd > 900000 {
		t.Errorf("FTD = %.0f us, want ~765000", ftd)
	}
	pp := res.PerProcess.Mean().Micros()
	if pp < 700000 || pp > 1100000 {
		t.Errorf("per-process = %.0f us, want ~900000", pp)
	}
	if res.Total.Mean() > 2*gm.Second {
		t.Errorf("total recovery = %v, want < 2 s (the paper's headline)", res.Total.Mean())
	}
	out := res.Render()
	if !strings.Contains(out, "Table 3") || !strings.Contains(out, "765000") {
		t.Error("render broken")
	}
	tl := res.RenderTimeline()
	for _, want := range []string{"Figure 9", "fault-injected", "ftd-woken", "processes-recovered"} {
		if !strings.Contains(tl, want) {
			t.Errorf("timeline missing %q:\n%s", want, tl)
		}
	}
}

func TestEffectivenessExperiment(t *testing.T) {
	res, err := Effectiveness(200, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hangs == 0 {
		t.Fatal("campaign produced no hangs")
	}
	if res.Detected != 3 {
		t.Errorf("detected %d/3 replayed hangs", res.Detected)
	}
	if res.Recovered != 3 {
		t.Errorf("recovered %d/3", res.Recovered)
	}
	if res.AuditFailed != 0 {
		t.Errorf("audit violations: %d", res.AuditFailed)
	}
	if !strings.Contains(res.Render(), "281/286") {
		t.Error("render missing paper reference")
	}
}

func TestFigure4Scenarios(t *testing.T) {
	broken, err := Figure4Scenario(gm.ModeGM)
	if err != nil {
		t.Fatal(err)
	}
	if broken.Deliveries != 2 {
		t.Errorf("stock GM delivered %d times, want 2 (duplicate)", broken.Deliveries)
	}
	if !broken.Broken() {
		t.Error("Broken() = false for the duplicate")
	}
	fixed, err := Figure4Scenario(gm.ModeFTGM)
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Deliveries != 1 {
		t.Errorf("FTGM delivered %d times, want 1", fixed.Deliveries)
	}
	if !strings.Contains(broken.Render(), "DUPLICATED") {
		t.Error("render broken")
	}
}

func TestFigure5Scenarios(t *testing.T) {
	broken, err := Figure5Scenario(gm.ModeGM)
	if err != nil {
		t.Fatal(err)
	}
	if broken.Deliveries != 0 {
		t.Errorf("stock GM delivered %d times, want 0 (lost)", broken.Deliveries)
	}
	fixed, err := Figure5Scenario(gm.ModeFTGM)
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Deliveries != 1 {
		t.Errorf("FTGM delivered %d times, want 1", fixed.Deliveries)
	}
	if !strings.Contains(broken.Render(), "LOST") {
		t.Error("render broken")
	}
}

func TestFigure6Scenario(t *testing.T) {
	res, err := Figure6Scenario()
	if err != nil {
		t.Fatal(err)
	}
	if !res.GMBlocked {
		t.Error("stock GM did not head-of-line block across ports")
	}
	if res.FTGMBlocked {
		t.Error("FTGM streams head-of-line blocked")
	}
	if !strings.Contains(res.Render(), "Figure 6") {
		t.Error("render broken")
	}
}

func TestLatencyAnatomy(t *testing.T) {
	res, err := LatencyAnatomy(16)
	if err != nil {
		t.Fatal(err)
	}
	// The analytic budget must match the simulator within dispatch noise.
	if d := res.MeasuredGM - res.SumGMUs; d < -0.6 || d > 0.6 {
		t.Errorf("GM budget %.2f vs measured %.2f", res.SumGMUs, res.MeasuredGM)
	}
	if d := res.MeasuredFTGM - res.SumFTGMUs; d < -0.6 || d > 0.6 {
		t.Errorf("FTGM budget %.2f vs measured %.2f", res.SumFTGMUs, res.MeasuredFTGM)
	}
	// The delta decomposes into exactly the paper's four contributions.
	delta := res.SumFTGMUs - res.SumGMUs
	if delta < 1.2 || delta > 1.6 {
		t.Errorf("budget delta = %.2f, want ~1.45", delta)
	}
	if !strings.Contains(res.Render(), "Latency anatomy") {
		t.Error("render broken")
	}
}

func TestMemoryFootprintExperiment(t *testing.T) {
	res, err := MemoryFootprint(96)
	if err != nil {
		t.Fatal(err)
	}
	if res.ExtraLanai < 60<<10 || res.ExtraLanai > 140<<10 {
		t.Errorf("extra LANai = %dKB, want ~100KB (paper §5)", res.ExtraLanai>>10)
	}
	if res.ProcessBytes < 12<<10 || res.ProcessBytes > 32<<10 {
		t.Errorf("process = %dKB, want ~20KB (paper §5)", res.ProcessBytes>>10)
	}
	if res.FTGMLanaiBytes <= res.GMLanaiBytes {
		t.Error("FTGM tables not larger than GM's")
	}
	if !strings.Contains(res.Render(), "~100KB") {
		t.Error("render broken")
	}
}
