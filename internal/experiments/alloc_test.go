//go:build !race

// Full-stack steady-state allocation regression bound. The per-fragment
// primitives are pinned at zero allocations by guards in internal/fabric and
// internal/mcp; what remains per message at full stack is simulation idiom
// (event closures on the engine heap), which this test bounds so the
// zero-copy data path cannot silently regrow per-message garbage.

package experiments

import (
	"runtime"
	"testing"

	"repro/gm"
)

// measureAllocsPerMsg streams `count` messages of `size` bytes one way on a
// fresh pair and returns heap allocations per delivered message.
func measureAllocsPerMsg(t *testing.T, mode gm.Mode, size, count int) float64 {
	t.Helper()
	p, err := NewPair(PairOptions{Mode: mode, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	// Warm-up stream so pools, rings, and maps reach steady state.
	st := stream(p.Cluster, p.PA, p.PB, p.B.ID(), size, count, 32)
	limit := p.Cluster.Now() + 60*gm.Second
	for st.delivered < count && p.Cluster.Now() < limit {
		p.Cluster.Run(10 * gm.Millisecond)
	}
	if st.delivered < count {
		t.Fatalf("warm-up stalled at %d/%d", st.delivered, count)
	}

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	st2 := stream(p.Cluster, p.PA, p.PB, p.B.ID(), size, count, 32)
	limit = p.Cluster.Now() + 60*gm.Second
	for st2.delivered < count && p.Cluster.Now() < limit {
		p.Cluster.Run(10 * gm.Millisecond)
	}
	runtime.ReadMemStats(&after)
	if st2.delivered < count {
		t.Fatalf("measured stream stalled at %d/%d", st2.delivered, count)
	}
	return float64(after.Mallocs-before.Mallocs) / float64(count)
}

// measureAllocsPerRound runs warmed-up ping-pong rounds and returns heap
// allocations per round (two messages).
func measureAllocsPerRound(t *testing.T, mode gm.Mode, size, rounds int) float64 {
	t.Helper()
	p, err := NewPair(PairOptions{Mode: mode, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	HalfRoundTrip(p, size, rounds) // warm-up: pools and rings reach steady state
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	HalfRoundTrip(p, size, rounds)
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(rounds)
}

// TestLatencyAllocBound bounds allocations per ping-pong round in the
// Figure 8 latency harness. The send-window, reassembly and delivery
// records are pooled and the host post path uses a deferred dispatcher, so
// a warmed-up round leaves only harness bookkeeping (latency samples,
// occasional slice growth) — low single digits per round, bounded loosely.
func TestLatencyAllocBound(t *testing.T) {
	const bound = 8.0
	for _, mode := range []gm.Mode{gm.ModeGM, gm.ModeFTGM} {
		got := measureAllocsPerRound(t, mode, 64, 200)
		t.Logf("mode=%v allocs/round=%.2f", mode, got)
		if got > bound {
			t.Errorf("mode=%v: %.2f allocs/round exceeds bound %.0f", mode, got, bound)
		}
	}
}

// TestLatencyAllocsPerRunGuard pins the warmed-up Figure 8 harness with the
// runtime's own AllocsPerRun accounting, much tighter than the MemStats
// bound above. A warmed pair's ping-pong call costs a fixed handful of
// per-call setup allocations (payload buffer, the two handler closures, the
// receive-buffer provides, the pre-reserved latency series) and ~0 per
// round. That attributes BENCH_*.json's fig8_lat allocs_per_op (~70): it is
// sweep-point amortized cluster construction — sweepPoints boots a fresh
// Pair per (mode, size) point — not the data path. This guard keeps the data
// path pinned: half an allocation per round only trips if per-round garbage
// creeps back in.
func TestLatencyAllocsPerRunGuard(t *testing.T) {
	const rounds = 50
	for _, mode := range []gm.Mode{gm.ModeGM, gm.ModeFTGM} {
		p, err := NewPair(PairOptions{Mode: mode, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		HalfRoundTrip(p, 100, rounds) // warm-up: pools and rings reach steady state
		HalfRoundTrip(p, 100, rounds)
		per := testing.AllocsPerRun(3, func() { HalfRoundTrip(p, 100, rounds) })
		perRound := per / rounds
		t.Logf("mode=%v allocs/call=%.1f allocs/round=%.3f", mode, per, perRound)
		if perRound > 0.5 {
			t.Errorf("mode=%v: %.3f allocs/round exceeds the 0.5 pin", mode, perRound)
		}
	}
}

// TestSteadyStateAllocBound bounds allocations per message on the
// steady-state streaming workload for both protocol modes.
func TestSteadyStateAllocBound(t *testing.T) {
	// Budget: with the send-window, reassembly and delivery records pooled
	// and every per-message pipeline stage on a cached callback, a
	// steady-state message costs ~2 allocations (residual slice growth and
	// map churn). A breach here means per-message garbage crept back in.
	const bound = 12.0
	for _, mode := range []gm.Mode{gm.ModeGM, gm.ModeFTGM} {
		got := measureAllocsPerMsg(t, mode, 4096, 300)
		t.Logf("mode=%v allocs/msg=%.1f", mode, got)
		if got > bound {
			t.Errorf("mode=%v: %.1f allocs/msg exceeds bound %.0f", mode, got, bound)
		}
	}
}
