package experiments

import (
	"fmt"

	"repro/gm"
	"repro/internal/fabric"
	"repro/internal/trace"
)

// LatencyStage is one component of the one-way small-message latency.
type LatencyStage struct {
	Name   string
	GMUs   float64
	FTGMUs float64
}

// AnatomyResult decomposes the short-message latency into its stages — the
// paper's discussion of "the sum of a host component and a network
// interface component" (§5.1) made explicit — and validates the sum against
// the simulator's measured one-way latency.
type AnatomyResult struct {
	MsgBytes     int
	Stages       []LatencyStage
	SumGMUs      float64
	SumFTGMUs    float64
	MeasuredGM   float64
	MeasuredFTGM float64
}

// LatencyAnatomy builds the stage budget for a message of the given size
// from the calibrated configuration, then measures the same one-way latency
// in the simulator. The two must agree; the table shows where every
// microsecond goes and which stages FTGM lengthens.
func LatencyAnatomy(msgBytes int) (AnatomyResult, error) {
	res := AnatomyResult{MsgBytes: msgBytes}
	cfg := gm.DefaultConfig(gm.ModeGM)
	us := func(d gm.Duration) float64 { return d.Micros() }
	pci := func(n int) float64 {
		return us(cfg.PCI.TxnOverhead) + float64(n)/cfg.PCI.BytesPerSec*1e6
	}
	wireBytes := 22 + msgBytes + fabric.HeaderBytes + 1 // header + payload + route
	wire := float64(wireBytes)/cfg.Link.BytesPerSec*1e6 +
		2*us(cfg.Link.PropDelay) + us(cfg.Switch.CutThrough)

	add := func(name string, gmUs, ftgmUs float64) {
		res.Stages = append(res.Stages, LatencyStage{Name: name, GMUs: gmUs, FTGMUs: ftgmUs})
		res.SumGMUs += gmUs
		res.SumFTGMUs += ftgmUs
	}
	add("host: post send (PIO descriptor)",
		us(cfg.Host.SendOverhead), us(cfg.Host.SendOverhead+cfg.Host.FTGMSendExtra))
	add("LANai: token decode + DMA setup",
		us(cfg.MCP.SendProcA), us(cfg.MCP.SendProcA+cfg.MCP.FTGMSendExtra))
	add("PCI: payload DMA host->SRAM", pci(msgBytes), pci(msgBytes))
	add("LANai: send_chunk (header+inject)", us(cfg.MCP.SendProcB), us(cfg.MCP.SendProcB))
	add("wire: serialize + switch + propagate", wire, wire)
	add("LANai: recv check + buffer match", us(cfg.MCP.RecvProcA), us(cfg.MCP.RecvProcA))
	add("PCI: payload DMA SRAM->user buffer", pci(msgBytes), pci(msgBytes))
	add("LANai: event build",
		us(cfg.MCP.RecvProcB), us(cfg.MCP.RecvProcB+cfg.MCP.FTGMRecvExtra))
	add("PCI: event record DMA", pci(cfg.MCP.EventBytes), pci(cfg.MCP.EventBytes))
	add("host: receive + dispatch",
		us(cfg.Host.RecvOverhead), us(cfg.Host.RecvOverhead+cfg.Host.FTGMRecvExtra))

	// Measure the same one-way path in the simulator. The budget describes
	// the *uncontended* path; individual probes can collide with an
	// L_timer execution (up to +2 µs), so probe at several phases and take
	// the minimum — the standard way to expose a pipeline's anatomy.
	for _, mode := range []gm.Mode{gm.ModeGM, gm.ModeFTGM} {
		p, err := NewPair(PairOptions{Mode: mode})
		if err != nil {
			return res, err
		}
		cl := p.Cluster
		var deliveredAt gm.Time
		p.PB.SetReceiveHandler(func(ev gm.RecvEvent) { deliveredAt = cl.Now() })
		best := 0.0
		for probe := 0; probe < 10; probe++ {
			if err := p.PB.ProvideReceiveBuffer(uint32(msgBytes)+16, gm.PriorityLow); err != nil {
				return res, err
			}
			deliveredAt = 0
			start := cl.Now()
			if err := p.PA.Send(p.B.ID(), 2, gm.PriorityLow, make([]byte, msgBytes), nil); err != nil {
				return res, err
			}
			cl.Run(1 * gm.Millisecond)
			if deliveredAt == 0 {
				return res, fmt.Errorf("experiments: anatomy probe %d not delivered", probe)
			}
			oneWay := (deliveredAt - start).Micros()
			if best == 0 || oneWay < best {
				best = oneWay
			}
			cl.Run(137 * gm.Microsecond) // vary the L_timer phase
		}
		if mode == gm.ModeGM {
			res.MeasuredGM = best
		} else {
			res.MeasuredFTGM = best
		}
	}
	return res, nil
}

// Render prints the stage budget next to the measured totals.
func (r AnatomyResult) Render() string {
	t := trace.Table{
		Title: fmt.Sprintf("Latency anatomy: one-way delivery of a %d-byte message (us)",
			r.MsgBytes),
		Headers: []string{"Stage", "GM", "FTGM", "delta"},
	}
	for _, s := range r.Stages {
		t.AddRow(s.Name,
			fmt.Sprintf("%.2f", s.GMUs),
			fmt.Sprintf("%.2f", s.FTGMUs),
			fmt.Sprintf("%+.2f", s.FTGMUs-s.GMUs))
	}
	t.AddRow("budget total",
		fmt.Sprintf("%.2f", r.SumGMUs),
		fmt.Sprintf("%.2f", r.SumFTGMUs),
		fmt.Sprintf("%+.2f", r.SumFTGMUs-r.SumGMUs))
	t.AddRow("simulator measured",
		fmt.Sprintf("%.2f", r.MeasuredGM),
		fmt.Sprintf("%.2f", r.MeasuredFTGM),
		fmt.Sprintf("%+.2f", r.MeasuredFTGM-r.MeasuredGM))
	return t.Render()
}
