package experiments

import (
	"fmt"

	"repro/gm"
	"repro/internal/trace"
)

// AblationDelayedACK measures what FTGM's delayed commit point costs: the
// send-token turnaround time (send to callback — when the process gets its
// token back) and the sustained bandwidth, with the ACK sent at the commit
// point (FTGM) versus at message arrival (the stock GM point, which
// re-opens the Figure 5 window). The paper argues the delay is invisible in
// bandwidth because packets of a message stay pipelined (§5.1).
type AblationDelayedACKResult struct {
	TurnaroundDelayedUs   float64
	TurnaroundImmediateUs float64
	BandwidthDelayed      float64
	BandwidthImmediate    float64
}

// AblationDelayedACK runs the comparison with msgs messages of size bytes.
func AblationDelayedACK(size, msgs int) (AblationDelayedACKResult, error) {
	var res AblationDelayedACKResult
	measure := func(immediate bool) (turnUs, bw float64, err error) {
		p, err := NewPair(PairOptions{
			Mode: gm.ModeFTGM,
			Configure: func(cfg *gm.Config) {
				cfg.MCP.ImmediateAck = immediate
			},
		})
		if err != nil {
			return 0, 0, err
		}
		// Token turnaround on an idle network.
		var turn trace.LatencySeries
		for i := 0; i < 20; i++ {
			if err := p.PB.ProvideReceiveBuffer(uint32(size)+16, gm.PriorityLow); err != nil {
				return 0, 0, err
			}
			start := p.Cluster.Now()
			done := false
			if err := p.PA.Send(p.B.ID(), 2, gm.PriorityLow, make([]byte, size), func(gm.SendStatus) {
				turn.Add(p.Cluster.Now() - start)
				done = true
			}); err != nil {
				return 0, 0, err
			}
			limit := p.Cluster.Now() + gm.Second
			for !done && p.Cluster.Now() < limit {
				p.Cluster.Run(100 * gm.Microsecond)
			}
			if !done {
				return 0, 0, fmt.Errorf("experiments: turnaround send stalled")
			}
		}
		// Bandwidth under the bidirectional streaming workload.
		bw = BidirectionalRate(p, size, msgs)
		return turn.Mean().Micros(), bw, nil
	}
	var err error
	if res.TurnaroundDelayedUs, res.BandwidthDelayed, err = measure(false); err != nil {
		return res, err
	}
	if res.TurnaroundImmediateUs, res.BandwidthImmediate, err = measure(true); err != nil {
		return res, err
	}
	return res, nil
}

// Render prints the comparison.
func (r AblationDelayedACKResult) Render() string {
	t := trace.Table{
		Title:   "Ablation: delayed (FTGM) vs immediate (GM-style) ACK commit point",
		Headers: []string{"Metric", "delayed ACK", "immediate ACK"},
	}
	t.AddRow("Send-token turnaround",
		fmt.Sprintf("%.2fus", r.TurnaroundDelayedUs),
		fmt.Sprintf("%.2fus", r.TurnaroundImmediateUs))
	t.AddRow("Bidirectional bandwidth",
		fmt.Sprintf("%.1fMB/s", r.BandwidthDelayed),
		fmt.Sprintf("%.1fMB/s", r.BandwidthImmediate))
	return t.Render()
}

// AblationSeqStreamsResult compares FTGM's per-(port,dest) host sequence
// streams against the rejected per-connection design that needs process
// synchronization (§4.1).
type AblationSeqStreamsResult struct {
	PerPortSendUs       float64
	PerConnectionSendUs float64
	PerPortLatencyUs    float64
	PerConnLatencyUs    float64
}

// AblationSeqStreams measures both designs.
func AblationSeqStreams() (AblationSeqStreamsResult, error) {
	var res AblationSeqStreamsResult
	measure := func(perConn bool) (sendUs, latUs float64, err error) {
		p, err := NewPair(PairOptions{
			Mode: gm.ModeFTGM,
			Configure: func(cfg *gm.Config) {
				cfg.Host.PerConnectionSeqSync = perConn
			},
		})
		if err != nil {
			return 0, 0, err
		}
		lat := HalfRoundTrip(p, 16, 40)
		return p.A.CPU().PerSend().Micros(), lat.Micros(), nil
	}
	var err error
	if res.PerPortSendUs, res.PerPortLatencyUs, err = measure(false); err != nil {
		return res, err
	}
	if res.PerConnectionSendUs, res.PerConnLatencyUs, err = measure(true); err != nil {
		return res, err
	}
	return res, nil
}

// Render prints the comparison.
func (r AblationSeqStreamsResult) Render() string {
	t := trace.Table{
		Title:   "Ablation: per-(port,dest) sequence streams vs per-connection + synchronization",
		Headers: []string{"Metric", "per-port streams (FTGM)", "per-connection + sync"},
	}
	t.AddRow("Host util. (send)",
		fmt.Sprintf("%.2fus", r.PerPortSendUs),
		fmt.Sprintf("%.2fus", r.PerConnectionSendUs))
	t.AddRow("Half round trip",
		fmt.Sprintf("%.2fus", r.PerPortLatencyUs),
		fmt.Sprintf("%.2fus", r.PerConnLatencyUs))
	return t.Render()
}

// AblationShadowCopyResult isolates the cost of the §4.1 host-side backup
// itself: FTGM with the token-housekeeping charges zeroed (everything else
// identical) against full FTGM.
type AblationShadowCopyResult struct {
	WithCopySendUs    float64
	WithCopyRecvUs    float64
	WithoutCopySendUs float64
	WithoutCopyRecvUs float64
	WithCopyLatUs     float64
	WithoutCopyLatUs  float64
}

// AblationShadowCopy measures both configurations.
func AblationShadowCopy() (AblationShadowCopyResult, error) {
	var res AblationShadowCopyResult
	measure := func(free bool) (sendUs, recvUs, latUs float64, err error) {
		p, err := NewPair(PairOptions{
			Mode: gm.ModeFTGM,
			Configure: func(cfg *gm.Config) {
				if free {
					cfg.Host.FTGMSendExtra = 0
					cfg.Host.FTGMRecvExtra = 0
				}
			},
		})
		if err != nil {
			return 0, 0, 0, err
		}
		lat := HalfRoundTrip(p, 16, 40)
		return p.A.CPU().PerSend().Micros(), p.A.CPU().PerRecv().Micros(), lat.Micros(), nil
	}
	var err error
	if res.WithCopySendUs, res.WithCopyRecvUs, res.WithCopyLatUs, err = measure(false); err != nil {
		return res, err
	}
	if res.WithoutCopySendUs, res.WithoutCopyRecvUs, res.WithoutCopyLatUs, err = measure(true); err != nil {
		return res, err
	}
	return res, nil
}

// Render prints the comparison.
func (r AblationShadowCopyResult) Render() string {
	t := trace.Table{
		Title:   "Ablation: shadow-token housekeeping cost (the 0.25/0.4 us of §5.1)",
		Headers: []string{"Metric", "with backup", "backup free (hypothetical)"},
	}
	t.AddRow("Host util. (send)",
		fmt.Sprintf("%.2fus", r.WithCopySendUs), fmt.Sprintf("%.2fus", r.WithoutCopySendUs))
	t.AddRow("Host util. (recv)",
		fmt.Sprintf("%.2fus", r.WithCopyRecvUs), fmt.Sprintf("%.2fus", r.WithoutCopyRecvUs))
	t.AddRow("Half round trip",
		fmt.Sprintf("%.2fus", r.WithCopyLatUs), fmt.Sprintf("%.2fus", r.WithoutCopyLatUs))
	return t.Render()
}

// AblationWatchdogPoint is one watchdog-interval sample.
type AblationWatchdogPoint struct {
	IntervalUs  float64
	DetectionUs float64
	FalseAlarms uint64
}

// AblationWatchdog sweeps the IT1 interval: below the worst-case L_timer
// gap the watchdog fires spuriously (caught by the FTD's magic-word check,
// but each false alarm costs a verification round trip); above it,
// detection latency grows linearly. The paper chose "slightly greater than
// 800 µs" (§4.2).
func AblationWatchdog(intervalsUs []int) ([]AblationWatchdogPoint, error) {
	var out []AblationWatchdogPoint
	for _, us := range intervalsUs {
		p, err := NewPair(PairOptions{
			Mode: gm.ModeFTGM,
			Configure: func(cfg *gm.Config) {
				cfg.MCP.WatchdogTicks = uint32(us * 2) // 0.5 µs ticks
			},
		})
		if err != nil {
			return nil, err
		}
		// Light traffic while watching for false alarms.
		p.PB.SetReceiveHandler(func(ev gm.RecvEvent) {
			_ = p.PB.ProvideReceiveBuffer(64, gm.PriorityLow)
		})
		for i := 0; i < 16; i++ {
			if err := p.PB.ProvideReceiveBuffer(64, gm.PriorityLow); err != nil {
				return nil, err
			}
		}
		stop := false
		var pump func()
		pump = func() {
			if stop {
				return
			}
			_ = p.PA.Send(p.B.ID(), 2, gm.PriorityLow, []byte("w"), nil)
			p.Cluster.After(300*gm.Microsecond, pump)
		}
		pump()
		p.Cluster.Run(200 * gm.Millisecond)
		falseAlarms := p.A.FTD().Stats().FalseAlarms
		stop = true

		// Now a real hang: measure detection.
		recovered := false
		p.A.Recovered = func() { recovered = true }
		p.A.InjectHang()
		limit := p.Cluster.Now() + 20*gm.Second
		for !recovered && p.Cluster.Now() < limit {
			p.Cluster.Run(100 * gm.Millisecond)
		}
		det := 0.0
		if recovered {
			det = p.A.FTD().Timeline().DetectionTime().Micros()
		}
		out = append(out, AblationWatchdogPoint{
			IntervalUs:  float64(us),
			DetectionUs: det,
			FalseAlarms: falseAlarms,
		})
	}
	return out, nil
}

// RenderWatchdog prints the sweep.
func RenderWatchdog(points []AblationWatchdogPoint) string {
	t := trace.Table{
		Title:   "Ablation: watchdog (IT1) interval vs detection latency and false alarms",
		Headers: []string{"IT1 interval (us)", "detection (us)", "false alarms / 200ms"},
	}
	for _, p := range points {
		t.AddRow(
			fmt.Sprintf("%.0f", p.IntervalUs),
			fmt.Sprintf("%.0f", p.DetectionUs),
			fmt.Sprintf("%d", p.FalseAlarms))
	}
	return t.Render()
}
