package experiments

import (
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/sim"
)

// The control-plane comparison's headline: when the boot-time mapper dies
// for good, only the gossip plane genuinely recovers. Plain FTGM stalls,
// and the centralized watchdog — headquartered on the corpse — expels the
// live survivors one grace period later.
func TestControlPlaneComparison(t *testing.T) {
	cfg := chaos.CampaignConfig{
		Trials: 1,
		Trial: chaos.TrialConfig{
			Nodes:     4,
			Traffic:   sim.Second,
			SendEvery: 4 * sim.Millisecond,
			Events:    1,
			MaxSettle: 15 * sim.Second,
		},
	}
	results, err := ControlPlaneComparison(20030623, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	byLabel := map[string]ControlPlaneResult{}
	for _, r := range results {
		byLabel[r.Label] = r
	}
	g := byLabel["FTGM+gossip"]
	if v := g.Verdict(); v != "exactly-once in-order" {
		t.Errorf("gossip verdict = %q: %v (dirty=%v)", v, g.Campaign.Total, g.Campaign.Total.Dirty)
	}
	if g.Counters.DeadDeclared == 0 {
		t.Error("gossip never declared the dead mapper dead")
	}
	if g.Counters.LiveExpelled != 0 || g.Counters.RouteGaps != 0 {
		t.Errorf("gossip convergence defects: %+v", g.Counters)
	}
	c := byLabel["FTGM+central"]
	if v := c.Verdict(); v != "SELF-DESTRUCTED" {
		t.Errorf("central verdict = %q (want SELF-DESTRUCTED): %+v", v, c.Counters)
	}
	if c.Counters.Unreachable == 0 {
		t.Error("central watchdog expelled no one despite a dead mapper")
	}
	p := byLabel["FTGM"]
	if v := p.Verdict(); v != "STALLED" {
		t.Errorf("plain FTGM verdict = %q (want STALLED): %v", v, p.Campaign.Total)
	}
	if p.Campaign.Total.Lost == 0 {
		t.Errorf("no losses recorded on a stalled cluster: %v", p.Campaign.Total)
	}
	for _, r := range []ControlPlaneResult{p, c} {
		if r.Counters.Probes != 0 {
			t.Errorf("%s ran gossip agents in a central-plane trial: %+v", r.Label, r.Counters)
		}
		if r.DeliveryRate() > g.DeliveryRate() {
			t.Errorf("%s delivery rate %.3f above gossip's %.3f",
				r.Label, r.DeliveryRate(), g.DeliveryRate())
		}
	}
	out := RenderControlPlane(results)
	for _, want := range []string{"FTGM+gossip", "FTGM+central", "STALLED", "SELF-DESTRUCTED", "exactly-once in-order", "dead="} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}
