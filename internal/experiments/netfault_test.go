package experiments

import (
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/sim"
)

// The network-fault comparison's headline: on a dual-switch fabric with a
// trunk killed, only the watchdog-equipped scheme reroutes and stays
// exactly-once; the others stall and lose the stranded streams.
func TestNetworkFaultComparison(t *testing.T) {
	cfg := chaos.CampaignConfig{
		Trials: 1,
		Trial: chaos.TrialConfig{
			Nodes:     4,
			Traffic:   sim.Second,
			SendEvery: 4 * sim.Millisecond,
			Events:    2,
			MaxSettle: 15 * sim.Second,
		},
	}
	results, err := NetworkFaultComparison(20030623, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results", len(results))
	}
	byLabel := map[string]NetFaultResult{}
	for _, r := range results {
		byLabel[r.Label] = r
	}
	watch := byLabel["FTGM+netwatch"]
	if !watch.Campaign.AllExactlyOnce {
		t.Errorf("watchdog audit dirty: %v (dirty=%v)",
			watch.Campaign.Total, watch.Campaign.Total.Dirty)
	}
	if watch.Counters.Remaps == 0 {
		t.Error("the watchdog never remapped")
	}
	for _, label := range []string{"GM", "FTGM"} {
		r := byLabel[label]
		if r.Campaign.AllExactlyOnce {
			t.Errorf("%s survived a dead trunk it cannot route around: %v", label, r.Campaign.Total)
		}
		if r.DeliveryRate() >= watch.DeliveryRate() {
			t.Errorf("%s delivery rate %.3f not below watchdog's %.3f",
				label, r.DeliveryRate(), watch.DeliveryRate())
		}
		if r.Counters.Remaps != 0 {
			t.Errorf("%s remapped without a watchdog: %+v", label, r.Counters)
		}
	}
	out := RenderNetFault(results)
	for _, want := range []string{"GM", "FTGM+netwatch", "STALLED", "exactly-once in-order", "suspicions="} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}
