// Package trace provides the measurement helpers the experiment harness
// uses to reproduce the paper's tables and figures: latency sample series,
// bandwidth accounting, and plain-text table/series rendering in the shape
// the paper reports (µs latencies, MB/s bandwidths).
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/sim"
)

// LatencySeries accumulates latency samples.
type LatencySeries struct {
	samples []sim.Duration
	sorted  bool
}

// Add appends a sample.
func (s *LatencySeries) Add(d sim.Duration) {
	s.samples = append(s.samples, d)
	s.sorted = false
}

// Reserve pre-sizes the series for n further samples, so a measurement loop
// of known length never reallocates mid-run.
func (s *LatencySeries) Reserve(n int) {
	if free := cap(s.samples) - len(s.samples); free < n {
		grown := make([]sim.Duration, len(s.samples), len(s.samples)+n)
		copy(grown, s.samples)
		s.samples = grown
	}
}

// N reports the sample count.
func (s *LatencySeries) N() int { return len(s.samples) }

// Mean returns the average sample.
func (s *LatencySeries) Mean() sim.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	var sum sim.Duration
	for _, v := range s.samples {
		sum += v
	}
	return sum / sim.Duration(len(s.samples))
}

// Min returns the smallest sample.
func (s *LatencySeries) Min() sim.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	m := s.samples[0]
	for _, v := range s.samples {
		if v < m {
			m = v
		}
	}
	return m
}

// Max returns the largest sample.
func (s *LatencySeries) Max() sim.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	m := s.samples[0]
	for _, v := range s.samples {
		if v > m {
			m = v
		}
	}
	return m
}

func (s *LatencySeries) sort() {
	if !s.sorted {
		sort.Slice(s.samples, func(i, j int) bool { return s.samples[i] < s.samples[j] })
		s.sorted = true
	}
}

// Percentile returns the p-th percentile sample (0 < p <= 100).
func (s *LatencySeries) Percentile(p float64) sim.Duration {
	if len(s.samples) == 0 {
		return 0
	}
	s.sort()
	idx := int(math.Ceil(p/100*float64(len(s.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s.samples) {
		idx = len(s.samples) - 1
	}
	return s.samples[idx]
}

// Stddev returns the sample standard deviation.
func (s *LatencySeries) Stddev() float64 {
	n := len(s.samples)
	if n < 2 {
		return 0
	}
	mean := float64(s.Mean())
	var acc float64
	for _, v := range s.samples {
		d := float64(v) - mean
		acc += d * d
	}
	return math.Sqrt(acc / float64(n-1))
}

// Bandwidth converts bytes moved over a span into MB/s (decimal MB, as the
// paper reports).
func Bandwidth(bytes uint64, span sim.Duration) float64 {
	if span <= 0 {
		return 0
	}
	return float64(bytes) / span.Seconds() / 1e6
}

// Point is one (x, y) sample of a figure's series.
type Point struct {
	X float64
	Y float64
}

// Series is a named curve of a figure (e.g. "GM" and "FTGM" in Figures 7
// and 8).
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// Table renders rows of labeled values as fixed-width text, in the style
// the paper's tables use.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render returns the table as text.
func (t *Table) Render() string {
	var b strings.Builder
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total-2))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// RenderSeries renders figure curves as aligned columns: x then one y
// column per series (the textual equivalent of the paper's plots).
func RenderSeries(title, xLabel string, series ...Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-12s", xLabel)
	for _, s := range series {
		fmt.Fprintf(&b, "  %12s", s.Name)
	}
	b.WriteByte('\n')
	b.WriteString(strings.Repeat("-", 12+14*len(series)))
	b.WriteByte('\n')
	if len(series) == 0 {
		return b.String()
	}
	for i := range series[0].Points {
		fmt.Fprintf(&b, "%-12.0f", series[0].Points[i].X)
		for _, s := range series {
			if i < len(s.Points) {
				fmt.Fprintf(&b, "  %12.2f", s.Points[i].Y)
			} else {
				fmt.Fprintf(&b, "  %12s", "-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
