package trace

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestLatencySeriesBasics(t *testing.T) {
	var s LatencySeries
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Percentile(50) != 0 {
		t.Error("empty series not zero")
	}
	for _, v := range []sim.Duration{30, 10, 20} {
		s.Add(v)
	}
	if s.N() != 3 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 20 || s.Min() != 10 || s.Max() != 30 {
		t.Errorf("mean/min/max = %v/%v/%v", s.Mean(), s.Min(), s.Max())
	}
	if s.Percentile(50) != 20 {
		t.Errorf("p50 = %v", s.Percentile(50))
	}
	if s.Percentile(100) != 30 {
		t.Errorf("p100 = %v", s.Percentile(100))
	}
}

func TestLatencyStddev(t *testing.T) {
	var s LatencySeries
	s.Add(10)
	if s.Stddev() != 0 {
		t.Error("stddev of one sample not zero")
	}
	s.Add(10)
	if s.Stddev() != 0 {
		t.Error("stddev of equal samples not zero")
	}
	s.Add(16)
	if d := s.Stddev(); d < 3.4 || d > 3.5 {
		t.Errorf("stddev = %v, want ~3.46", d)
	}
}

func TestBandwidth(t *testing.T) {
	// 92 MB over one second = 92 MB/s.
	if got := Bandwidth(92_000_000, sim.Second); got != 92.0 {
		t.Errorf("Bandwidth = %v", got)
	}
	if Bandwidth(100, 0) != 0 {
		t.Error("zero-span bandwidth not zero")
	}
}

func TestTableRender(t *testing.T) {
	tb := Table{
		Title:   "Table 2. Comparison",
		Headers: []string{"Metric", "GM", "FTGM"},
	}
	tb.AddRow("Bandwidth", "92.4MB/s", "92.0MB/s")
	tb.AddRow("Latency", "11.5us", "13.0us")
	out := tb.Render()
	for _, want := range []string{"Table 2", "Metric", "92.4MB/s", "13.0us", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestRenderSeries(t *testing.T) {
	gm := Series{Name: "GM"}
	ft := Series{Name: "FTGM"}
	gm.Add(1, 0.5)
	gm.Add(4096, 80.2)
	ft.Add(1, 0.45)
	out := RenderSeries("Figure 7", "bytes", gm, ft)
	for _, want := range []string{"Figure 7", "GM", "FTGM", "4096", "80.20", "-"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if out := RenderSeries("empty", "x"); !strings.Contains(out, "empty") {
		t.Error("empty render broken")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPropertyPercentileMonotone(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var s LatencySeries
		for _, v := range raw {
			s.Add(sim.Duration(v))
		}
		last := sim.Duration(-1)
		for _, p := range []float64{1, 25, 50, 75, 99, 100} {
			v := s.Percentile(p)
			if v < last || v < s.Min() || v > s.Max() {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
