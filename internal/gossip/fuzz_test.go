package gossip

import (
	"bytes"
	"testing"

	"repro/internal/gmproto"
)

// seedMessages is the fuzz corpus: one of each datagram type, empty and
// full dissemination payloads, boundary counts.
func seedMessages() []*Message {
	return []*Message{
		{Type: MsgPing, From: 1, FromInc: 0, Seq: 1},
		{Type: MsgAck, From: 2, FromInc: 7, Target: 2, Seq: 1,
			Deltas: []Delta{{Node: 3, From: 1, Inc: 4, State: StateSuspect}}},
		{Type: MsgPingReq, From: 1, Target: 3, Seq: 9,
			Paths: []PathSuspicion{{From: 1, About: 3}}},
		{Type: MsgIndirectAck, From: 4, FromInc: 1, Target: 3, Seq: 9,
			Deltas: []Delta{
				{Node: 1, From: 1, Inc: 2, State: StateAlive},
				{Node: 2, From: 4, Inc: 0, State: StateDead},
			},
			Paths: []PathSuspicion{{From: 4, About: 2}, {From: 2, About: 1}}},
	}
}

func TestWireRoundTrip(t *testing.T) {
	for _, m := range seedMessages() {
		enc := m.Encode()
		got, err := Decode(enc)
		if err != nil {
			t.Fatalf("decode %v: %v", m.Type, err)
		}
		if !bytes.Equal(got.Encode(), enc) {
			t.Fatalf("round trip changed bytes for %v", m.Type)
		}
		if got.Type != m.Type || got.From != m.From || got.FromInc != m.FromInc ||
			got.Target != m.Target || got.Seq != m.Seq ||
			len(got.Deltas) != len(m.Deltas) || len(got.Paths) != len(m.Paths) {
			t.Fatalf("round trip lost fields: %+v vs %+v", got, m)
		}
	}
}

func TestWireRejects(t *testing.T) {
	cases := map[string][]byte{
		"empty":     {},
		"short":     {byte(gmproto.PTGossip), byte(MsgPing)},
		"wrong tag": append([]byte{byte(gmproto.PTData)}, seedMessages()[0].Encode()[1:]...),
		"bad type":  {byte(gmproto.PTGossip), 0xEE, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0},
		"truncated body": func() []byte {
			b := seedMessages()[1].Encode()
			return b[:len(b)-1]
		}(),
		"bad state": func() []byte {
			b := seedMessages()[1].Encode()
			b[len(b)-1] = 0x7F // the delta's state byte
			return b
		}(),
	}
	for name, b := range cases {
		if _, err := Decode(b); err == nil {
			t.Errorf("%s: decode accepted garbage", name)
		}
	}
}

// TestWireDecodeCopies verifies the decoder detaches from the input buffer:
// MCP packets are pooled, so a Message must survive its source being
// recycled.
func TestWireDecodeCopies(t *testing.T) {
	src := seedMessages()[3]
	buf := src.Encode()
	m, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		buf[i] = 0xAA
	}
	if m.Deltas[0].Node != 1 || m.Deltas[1].State != StateDead || m.Paths[1].About != 1 {
		t.Fatal("decoded message aliased the (now clobbered) input buffer")
	}
}

// FuzzDecodeGossip: arbitrary bytes must either fail to decode or survive
// a decode -> encode -> decode cycle unchanged; never panic. This is the
// `make gossip` campaign target; tier1 runs the corpus as a plain test.
func FuzzDecodeGossip(f *testing.F) {
	for _, m := range seedMessages() {
		f.Add(m.Encode())
	}
	f.Add([]byte{})
	f.Add([]byte{byte(gmproto.PTGossip)})
	f.Add(bytes.Repeat([]byte{0xFF}, 64))
	f.Add(append(seedMessages()[3].Encode(), 0, 1, 2, 3))
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return
		}
		re := m.Encode()
		m2, err := Decode(re)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		// Encode normalizes trailing garbage away; the canonical form must
		// be a fixed point.
		if !bytes.Equal(m2.Encode(), re) {
			t.Fatalf("canonical form not a fixed point:\n in  %x\n out %x", re, m2.Encode())
		}
	})
}
