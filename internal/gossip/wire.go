// Package gossip is the distributed membership and link-state control
// plane: a SWIM-style failure detector (ping / ping-req probe rounds with
// suspicion timeouts and incarnation-numbered refutation) running on every
// node, with membership deltas and path-health suspicions piggybacked on
// the probe traffic. Each member holds a replica of the boot map's
// anchor-relative route database and computes its own route table locally
// through internal/routing — so detection, agreement and remap all happen
// with no coordinator round-trip, unlike the central mapper plane, whose
// repair path dies with the mapping node (the DIR Net model: distributed
// detection/isolation/recovery with no single health-state anchor).
//
// Gossip datagrams ride the fabric as raw source-routed packets (PTGossip),
// exactly like the mapper's scouts: the membership plane must keep probing
// peers the reliable stream layer already refuses to talk to, and an
// unreliable datagram transport is what SWIM's detector is designed for.
// Every timer is an ordinary sim event on the node's own domain and every
// random draw comes from a per-agent seed-derived generator, so a gossip
// cluster is bit-for-bit deterministic at any shard count.
package gossip

import (
	"encoding/binary"
	"fmt"

	"repro/internal/gmproto"
)

// MsgType tags a gossip datagram.
type MsgType uint8

// Datagram types.
const (
	// MsgPing probes a peer directly.
	MsgPing MsgType = iota + 1
	// MsgAck answers a ping.
	MsgAck
	// MsgPingReq asks a relay to probe Target on the sender's behalf
	// (SWIM's indirect probe: one bad path must not condemn a live peer).
	MsgPingReq
	// MsgIndirectAck relays a target's ack back to the ping-req origin.
	MsgIndirectAck
)

// String names the type.
func (t MsgType) String() string {
	switch t {
	case MsgPing:
		return "ping"
	case MsgAck:
		return "ack"
	case MsgPingReq:
		return "ping-req"
	case MsgIndirectAck:
		return "indirect-ack"
	default:
		return fmt.Sprintf("msg?%d", uint8(t))
	}
}

// State is a member's health in the replicated membership view.
type State uint8

// Membership states, in override order: a dead verdict outranks suspicion,
// which outranks aliveness, at equal incarnation.
const (
	StateAlive State = iota
	StateSuspect
	StateDead
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateAlive:
		return "alive"
	case StateSuspect:
		return "suspect"
	case StateDead:
		return "dead"
	default:
		return fmt.Sprintf("state?%d", uint8(s))
	}
}

// Delta is one piggybacked membership update: node is in state at
// incarnation inc. For suspect deltas, From is the original suspector —
// relays preserve it, so receivers count distinct endorsers toward the
// expulsion quorum instead of trusting one accuser heard many times.
type Delta struct {
	Node  gmproto.NodeID
	From  gmproto.NodeID
	Inc   uint32
	State State
}

// PathSuspicion is a piggybacked path-health report: From's reliable
// streams toward About stalled (the MCP's NET_FAULT_SUSPECTED signal).
// Receivers react by probing About out of round, which turns one node's
// path evidence into cluster-wide confirmation or refutation.
type PathSuspicion struct {
	From  gmproto.NodeID
	About gmproto.NodeID
}

// Message is one gossip datagram.
type Message struct {
	Type MsgType
	// From is the sender; FromInc its current incarnation (implicit
	// aliveness: hearing a dead-marked member announce a newer incarnation
	// is what readmits it).
	From    gmproto.NodeID
	FromInc uint32
	// Target is the probe subject of a ping-req / indirect-ack.
	Target gmproto.NodeID
	// Seq pairs acks with the probes they answer.
	Seq uint32
	// Deltas and Paths are the piggybacked dissemination payload.
	Deltas []Delta
	Paths  []PathSuspicion
}

// Wire layout after the PTGossip tag byte:
//
//	type(1) from(2) fromInc(4) target(2) seq(4) nDeltas(1) nPaths(1)
//	then nDeltas * [node(2) from(2) inc(4) state(1)]
//	then nPaths  * [from(2) about(2)]
const msgFixed = 1 + 1 + 2 + 4 + 2 + 4 + 1 + 1

// Encode renders the datagram, PTGossip-tagged for the fabric demux.
func (m *Message) Encode() []byte {
	buf := make([]byte, 0, msgFixed+9*len(m.Deltas)+4*len(m.Paths))
	buf = append(buf, byte(gmproto.PTGossip), byte(m.Type))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(m.From))
	buf = binary.LittleEndian.AppendUint32(buf, m.FromInc)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(m.Target))
	buf = binary.LittleEndian.AppendUint32(buf, m.Seq)
	buf = append(buf, byte(len(m.Deltas)), byte(len(m.Paths)))
	for _, d := range m.Deltas {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(d.Node))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(d.From))
		buf = binary.LittleEndian.AppendUint32(buf, d.Inc)
		buf = append(buf, byte(d.State))
	}
	for _, p := range m.Paths {
		buf = binary.LittleEndian.AppendUint16(buf, uint16(p.From))
		buf = binary.LittleEndian.AppendUint16(buf, uint16(p.About))
	}
	return buf
}

// Decode parses a datagram. It copies everything it keeps, so the caller's
// buffer (a pooled wire packet) can be recycled on return.
func Decode(b []byte) (Message, error) {
	if len(b) < msgFixed || gmproto.PacketType(b[0]) != gmproto.PTGossip {
		return Message{}, fmt.Errorf("%w: gossip", gmproto.ErrShortHeader)
	}
	m := Message{
		Type:    MsgType(b[1]),
		From:    gmproto.NodeID(binary.LittleEndian.Uint16(b[2:])),
		FromInc: binary.LittleEndian.Uint32(b[4:]),
		Target:  gmproto.NodeID(binary.LittleEndian.Uint16(b[8:])),
		Seq:     binary.LittleEndian.Uint32(b[10:]),
	}
	if m.Type < MsgPing || m.Type > MsgIndirectAck {
		return Message{}, fmt.Errorf("gossip: bad message type %d", b[1])
	}
	nd, np := int(b[14]), int(b[15])
	off := msgFixed
	if len(b) < off+9*nd+4*np {
		return Message{}, fmt.Errorf("%w: gossip body", gmproto.ErrShortHeader)
	}
	if nd > 0 {
		m.Deltas = make([]Delta, nd)
		for i := range m.Deltas {
			d := &m.Deltas[i]
			d.Node = gmproto.NodeID(binary.LittleEndian.Uint16(b[off:]))
			d.From = gmproto.NodeID(binary.LittleEndian.Uint16(b[off+2:]))
			d.Inc = binary.LittleEndian.Uint32(b[off+4:])
			if b[off+8] > byte(StateDead) {
				return Message{}, fmt.Errorf("gossip: bad member state %d", b[off+8])
			}
			d.State = State(b[off+8])
			off += 9
		}
	}
	if np > 0 {
		m.Paths = make([]PathSuspicion, np)
		for i := range m.Paths {
			p := &m.Paths[i]
			p.From = gmproto.NodeID(binary.LittleEndian.Uint16(b[off:]))
			p.About = gmproto.NodeID(binary.LittleEndian.Uint16(b[off+2:]))
			off += 4
		}
	}
	return m, nil
}
