package gossip

import (
	"fmt"
	"sort"

	"repro/internal/gmproto"
	"repro/internal/routing"
	"repro/internal/sim"
)

// Config tunes one membership agent. The defaults assume the simulated
// Myrinet's microsecond RTTs and the FTD's ~1.7 s (virtual) recovery: a
// recovering node is invisible to probes the whole time, so the suspicion
// timeout must comfortably outlast a recovery or the plane would expel
// nodes the FTD was about to bring back.
type Config struct {
	// ProbeInterval is the period of the probe round (one direct ping per
	// round, round-robin over the membership ring).
	ProbeInterval sim.Duration
	// ProbeTimeout is how long a ping may go unanswered before the probe
	// escalates to indirect ping-reqs, and the ping-reqs again before the
	// probe fails into suspicion.
	ProbeTimeout sim.Duration
	// IndirectProbes is how many relays a failed direct probe enlists.
	IndirectProbes int
	// SuspicionTimeout is how long a member stays suspect before the agent
	// moves to declare it dead. The suspect can refute at any point by
	// being heard (directly or through gossip) at a >= incarnation.
	SuspicionTimeout sim.Duration
	// ConfirmQuorum is how many distinct suspectors (the local agent plus
	// gossip-carried endorsements) a dead verdict needs. The requirement is
	// clamped to the members that could possibly endorse, so a two-node
	// cluster can still expel its only peer — and an isolated node, whose
	// suspicions nobody endorses, can never expel anyone.
	ConfirmQuorum int
	// DeadProbeInterval paces readmission probes of dead-marked members
	// (the gossip plane's analogue of the central watchdog's remap probes).
	// 0 disables them.
	DeadProbeInterval sim.Duration
	// MaxDeltas bounds the membership deltas piggybacked per datagram.
	MaxDeltas int
	// RetransmitMult scales each delta's dissemination budget
	// (RetransmitMult * ceil(log2(cluster size)) piggybacks per update).
	RetransmitMult int
}

// DefaultConfig returns the calibrated agent policy.
func DefaultConfig() Config {
	return Config{
		ProbeInterval:     50 * sim.Millisecond,
		ProbeTimeout:      500 * sim.Microsecond,
		IndirectProbes:    2,
		SuspicionTimeout:  3 * sim.Second,
		ConfirmQuorum:     2,
		DeadProbeInterval: 2 * sim.Second,
		MaxDeltas:         8,
		RetransmitMult:    3,
	}
}

func (c Config) withDefaults() Config {
	def := DefaultConfig()
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = def.ProbeInterval
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = def.ProbeTimeout
	}
	if c.IndirectProbes < 0 {
		c.IndirectProbes = 0
	} else if c.IndirectProbes == 0 {
		c.IndirectProbes = def.IndirectProbes
	}
	if c.SuspicionTimeout <= 0 {
		c.SuspicionTimeout = def.SuspicionTimeout
	}
	if c.ConfirmQuorum <= 0 {
		c.ConfirmQuorum = def.ConfirmQuorum
	}
	if c.DeadProbeInterval < 0 {
		c.DeadProbeInterval = 0
	} else if c.DeadProbeInterval == 0 {
		c.DeadProbeInterval = def.DeadProbeInterval
	}
	if c.MaxDeltas <= 0 {
		c.MaxDeltas = def.MaxDeltas
	}
	if c.RetransmitMult <= 0 {
		c.RetransmitMult = def.RetransmitMult
	}
	return c
}

// Stats counts one agent's activity.
type Stats struct {
	ProbesSent       uint64 // direct pings launched
	AcksSent         uint64 // pings answered
	PingReqsSent     uint64 // indirect probes enlisted
	IndirectAcksSent uint64 // relayed acks forwarded
	Suspicions       uint64 // members this agent locally suspected
	PathSuspicions   uint64 // NET_FAULT_SUSPECTED reports fed in
	Refutations      uint64 // own-incarnation bumps against false suspicion
	DeadDeclared     uint64 // members marked dead (local verdicts + adopted)
	Readmissions     uint64 // dead members welcomed back
	DeltasCarried    uint64 // membership deltas piggybacked outbound
}

// String renders the counters compactly; shard-invariance fingerprints
// concatenate it per node.
func (s Stats) String() string {
	return fmt.Sprintf("probes=%d acks=%d pingreqs=%d iacks=%d susp=%d path=%d refute=%d dead=%d readmit=%d deltas=%d",
		s.ProbesSent, s.AcksSent, s.PingReqsSent, s.IndirectAcksSent,
		s.Suspicions, s.PathSuspicions, s.Refutations,
		s.DeadDeclared, s.Readmissions, s.DeltasCarried)
}

// Hooks are the agent's callbacks into the node it runs on. Both fire
// inside the node's own event domain and receive the agent's freshly
// recomputed local route table (live members only) — the cluster installs
// it into the driver/MCP and flips the peer's reachability, all node-local,
// which is what keeps the gossip plane bit-for-bit shard-invariant.
type Hooks struct {
	// Dead fires when a member is marked dead (local quorum verdict or an
	// adopted gossip verdict).
	Dead func(peer gmproto.NodeID, routes map[gmproto.NodeID][]byte)
	// Alive fires when a dead member is readmitted (heard again at a newer
	// incarnation).
	Alive func(peer gmproto.NodeID, routes map[gmproto.NodeID][]byte)
}

// member is one row of the replicated membership view.
type member struct {
	state       State
	inc         uint32
	suspectedAt sim.Time
	// endorsers are the distinct suspectors heard for the current
	// suspicion (this agent included when it suspects locally).
	endorsers map[gmproto.NodeID]bool
}

// update is one dissemination-queue entry: a delta with its remaining
// piggyback budget.
type update struct {
	d    Delta
	left int
}

// pathUpdate is a queued path-health suspicion with budget.
type pathUpdate struct {
	p    PathSuspicion
	left int
}

// pendingProbe is one in-flight probe awaiting its ack.
type pendingProbe struct {
	target   gmproto.NodeID
	indirect bool // already escalated to ping-reqs
	dead     bool // readmission probe of a dead member: no suspicion on failure
}

// relayEntry tracks a ping sent on a ping-req origin's behalf.
type relayEntry struct {
	origin  gmproto.NodeID
	origSeq uint32
	target  gmproto.NodeID
}

// Agent is one node's membership daemon. All methods run inside the node's
// event domain (simulation callbacks); the cluster feeds it received
// PTGossip payloads and NET_FAULT_SUSPECTED reports, and it speaks through
// the transport the cluster installs (raw source-routed datagrams).
type Agent struct {
	eng *sim.Engine
	cfg Config
	rng *sim.RNG

	self    gmproto.NodeID
	inc     uint32
	members map[gmproto.NodeID]*member
	ring    []gmproto.NodeID // sorted probe order, self excluded
	ringIdx int

	// anchor is the replicated link-state database: the boot map's
	// anchor-relative route to every member (nil for the anchor itself).
	// routeTo caches the spliced self-relative routes the agent sends on.
	anchor  map[gmproto.NodeID][]byte
	routeTo map[gmproto.NodeID][]byte

	send  func(route, payload []byte)
	hooks Hooks

	seq       uint32
	pending   map[uint32]*pendingProbe
	busy      map[gmproto.NodeID]bool // one in-flight probe per target
	relays    map[uint32]relayEntry
	updates   map[gmproto.NodeID]*update
	paths     map[gmproto.NodeID]*pathUpdate
	deadProbe bool // a readmission-probe sweep is scheduled

	started bool
	stopped bool
	stats   Stats

	// Speculation journaling (gossip spec.go).
	specMark uint64
	shadow   agentShadow
}

// New builds an agent on the node's event domain. The seed must be a pure
// function of (cluster seed, node index) so a gossip cluster stays
// deterministic at every shard count; the agent forks nothing from the
// domain's own generator.
func New(eng *sim.Engine, cfg Config, seed uint64) *Agent {
	return &Agent{
		eng:     eng,
		cfg:     cfg.withDefaults(),
		rng:     sim.NewRNG(seed),
		members: make(map[gmproto.NodeID]*member),
		anchor:  make(map[gmproto.NodeID][]byte),
		routeTo: make(map[gmproto.NodeID][]byte),
		pending: make(map[uint32]*pendingProbe),
		busy:    make(map[gmproto.NodeID]bool),
		relays:  make(map[uint32]relayEntry),
		updates: make(map[gmproto.NodeID]*update),
		paths:   make(map[gmproto.NodeID]*pathUpdate),
	}
}

// SetTransport installs the datagram sender (the cluster wires it to the
// MCP's RawTransmit).
func (a *Agent) SetTransport(send func(route, payload []byte)) { a.send = send }

// SetHooks installs the membership-change callbacks.
func (a *Agent) SetHooks(h Hooks) { a.hooks = h }

// SeedView replicates the boot map into the agent: its own identity, the
// full member list, and the anchor-relative route database every member
// computes its local tables from. Call before Start.
func (a *Agent) SeedView(self gmproto.NodeID, members []gmproto.NodeID, anchor map[gmproto.NodeID][]byte) {
	a.self = self
	for _, id := range members {
		a.members[id] = &member{state: StateAlive}
		if id != self {
			a.ring = append(a.ring, id)
		}
	}
	sort.Slice(a.ring, func(i, j int) bool { return a.ring[i] < a.ring[j] })
	for id, r := range anchor {
		a.anchor[id] = append([]byte(nil), r...)
	}
	for _, id := range a.ring {
		if r, err := routing.SpliceRoute(a.anchor[self], a.anchor[id]); err == nil {
			a.routeTo[id] = r
		}
	}
}

// Start arms the probe loop, staggered by a seed-derived jitter so the
// cluster's agents don't tick in lockstep.
func (a *Agent) Start() {
	if a.started || len(a.ring) == 0 {
		return
	}
	a.specTouch()
	a.started = true
	a.eng.AfterLabel(a.rng.Duration(a.cfg.ProbeInterval), "gossip-round", a.tick)
}

// Stop quiesces the agent: timers still fire but do nothing.
func (a *Agent) Stop() {
	a.specTouch()
	a.stopped = true
}

// Stats returns a snapshot of the agent's counters.
func (a *Agent) Stats() Stats { return a.stats }

// Incarnation returns the agent's own incarnation number.
func (a *Agent) Incarnation() uint32 { return a.inc }

// Members snapshots the agent's membership view (self excluded).
func (a *Agent) Members() map[gmproto.NodeID]State {
	out := make(map[gmproto.NodeID]State, len(a.members))
	for id, m := range a.members {
		if id != a.self {
			out[id] = m.state
		}
	}
	return out
}

// RouteTable computes the node's current local route table: a spliced
// route to every non-dead member. Suspicion is not expulsion — a suspect
// keeps its route until the quorum verdict lands.
func (a *Agent) RouteTable() map[gmproto.NodeID][]byte {
	live := make([]gmproto.NodeID, 0, len(a.members))
	for id, m := range a.members {
		if m.state != StateDead {
			live = append(live, id)
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i] < live[j] })
	return routing.TableFor(a.self, live, a.anchor)
}

// SuspectPath feeds one NET_FAULT_SUSPECTED report (the node's reliable
// streams toward about are stalling) into the plane: the agent probes the
// peer out of round immediately and gossips the path suspicion so other
// members verify too — the central plane's debounced remap becomes a
// cluster-wide burst of targeted probes.
func (a *Agent) SuspectPath(about gmproto.NodeID) {
	if a.stopped || about == a.self {
		return
	}
	m := a.members[about]
	if m == nil || m.state == StateDead {
		return
	}
	a.specTouch()
	a.stats.PathSuspicions++
	a.paths[about] = &pathUpdate{p: PathSuspicion{From: a.self, About: about}, left: a.cfg.RetransmitMult}
	a.probe(about, false)
}

// --- probe loop ---

func (a *Agent) tick() {
	if a.stopped {
		return
	}
	a.specTouch()
	// Round-robin over the ring, skipping dead members and targets with a
	// probe already in flight.
	for i := 0; i < len(a.ring); i++ {
		id := a.ring[a.ringIdx%len(a.ring)]
		a.ringIdx++
		m := a.members[id]
		if m.state == StateDead || a.busy[id] {
			continue
		}
		a.probe(id, false)
		break
	}
	a.eng.AfterLabel(a.cfg.ProbeInterval+a.rng.Duration(a.cfg.ProbeInterval/4), "gossip-round", a.tick)
}

// probe launches one direct ping (dead=true for readmission probes, which
// do not raise suspicion when they fail).
func (a *Agent) probe(target gmproto.NodeID, dead bool) {
	if a.busy[target] {
		return
	}
	a.seq++
	s := a.seq
	a.pending[s] = &pendingProbe{target: target, dead: dead}
	a.busy[target] = true
	a.stats.ProbesSent++
	a.sendTo(target, &Message{Type: MsgPing, Seq: s})
	a.eng.AfterLabel(a.cfg.ProbeTimeout, "gossip-probe-timeout", func() { a.probeTimeout(s) })
}

func (a *Agent) probeTimeout(s uint32) {
	p := a.pending[s]
	if p == nil || a.stopped {
		return
	}
	a.specTouch()
	if !p.indirect && !p.dead && a.cfg.IndirectProbes > 0 {
		// Escalate: ask the next live ring members to probe on our behalf
		// (one bad path must not condemn a live peer).
		relays := a.pickRelays(p.target)
		if len(relays) > 0 {
			p.indirect = true
			for _, r := range relays {
				a.stats.PingReqsSent++
				a.sendTo(r, &Message{Type: MsgPingReq, Target: p.target, Seq: s})
			}
			a.eng.AfterLabel(2*a.cfg.ProbeTimeout, "gossip-probe-timeout", func() { a.probeTimeout(s) })
			return
		}
	}
	delete(a.pending, s)
	delete(a.busy, p.target)
	if !p.dead {
		a.suspectLocal(p.target)
	}
}

// pickRelays returns up to IndirectProbes live members other than target.
func (a *Agent) pickRelays(target gmproto.NodeID) []gmproto.NodeID {
	var out []gmproto.NodeID
	for _, id := range a.ring {
		if id == target || a.members[id].state == StateDead {
			continue
		}
		out = append(out, id)
		if len(out) >= a.cfg.IndirectProbes {
			break
		}
	}
	return out
}

// --- suspicion / agreement / verdicts ---

// suspectLocal records a failed probe: alive -> suspect with this agent as
// the first endorser, and the suspicion gossiped with its origin attached.
func (a *Agent) suspectLocal(target gmproto.NodeID) {
	m := a.members[target]
	if m == nil || m.state == StateDead {
		return
	}
	if m.state == StateAlive {
		m.state = StateSuspect
		m.suspectedAt = a.eng.Now()
		m.endorsers = map[gmproto.NodeID]bool{a.self: true}
		a.stats.Suspicions++
		a.enqueue(Delta{Node: target, From: a.self, Inc: m.inc, State: StateSuspect})
		a.armSuspicionCheck(target)
		return
	}
	m.endorsers[a.self] = true
}

func (a *Agent) armSuspicionCheck(target gmproto.NodeID) {
	a.eng.AfterLabel(a.cfg.SuspicionTimeout, "gossip-suspicion", func() { a.checkSuspicion(target) })
}

// checkSuspicion decides a suspect's fate at timeout: enough distinct
// endorsers and it is declared dead; otherwise the agent keeps campaigning
// (re-gossips the suspicion) and re-arms. An isolated agent — nobody
// endorses its suspicions — can never expel a peer this way.
func (a *Agent) checkSuspicion(target gmproto.NodeID) {
	if a.stopped {
		return
	}
	a.specTouch()
	m := a.members[target]
	if m == nil || m.state != StateSuspect {
		return
	}
	if a.eng.Now()-m.suspectedAt < a.cfg.SuspicionTimeout {
		// Refuted and re-suspected since; the newer check is armed.
		return
	}
	// Quorum: distinct suspectors, clamped to those who could endorse
	// (this agent plus every non-dead member that is not the accused).
	possible := 1
	for id, mm := range a.members {
		if id != a.self && id != target && mm.state != StateDead {
			possible++
		}
	}
	needed := a.cfg.ConfirmQuorum
	if needed > possible {
		needed = possible
	}
	if len(m.endorsers) >= needed {
		a.markDead(target, m.inc)
		return
	}
	a.enqueue(Delta{Node: target, From: a.self, Inc: m.inc, State: StateSuspect})
	a.armSuspicionCheck(target)
}

func (a *Agent) markDead(x gmproto.NodeID, inc uint32) {
	m := a.members[x]
	if m == nil || m.state == StateDead {
		return
	}
	m.state = StateDead
	m.inc = inc
	m.endorsers = nil
	a.stats.DeadDeclared++
	a.eng.Tracef("gossip", "node %d: member %d declared dead (inc %d)", a.self, x, inc)
	a.enqueue(Delta{Node: x, From: a.self, Inc: inc, State: StateDead})
	if a.hooks.Dead != nil {
		a.hooks.Dead(x, a.RouteTable())
	}
	a.scheduleDeadProbe()
}

func (a *Agent) readmit(x gmproto.NodeID, inc uint32) {
	m := a.members[x]
	if m == nil || m.state != StateDead {
		return
	}
	m.state = StateAlive
	m.inc = inc
	a.stats.Readmissions++
	a.eng.Tracef("gossip", "node %d: member %d readmitted (inc %d)", a.self, x, inc)
	a.enqueue(Delta{Node: x, From: a.self, Inc: inc, State: StateAlive})
	if a.hooks.Alive != nil {
		a.hooks.Alive(x, a.RouteTable())
	}
}

// clearSuspicion returns a suspect to alive at incarnation inc.
func (a *Agent) clearSuspicion(x gmproto.NodeID, inc uint32) {
	m := a.members[x]
	if m == nil || m.state != StateSuspect {
		return
	}
	m.state = StateAlive
	m.inc = inc
	m.endorsers = nil
}

// scheduleDeadProbe arms the readmission sweep while any member is dead.
func (a *Agent) scheduleDeadProbe() {
	if a.cfg.DeadProbeInterval <= 0 || a.deadProbe {
		return
	}
	a.deadProbe = true
	a.eng.AfterLabel(a.cfg.DeadProbeInterval, "gossip-dead-probe", func() {
		a.specTouch()
		a.deadProbe = false
		if a.stopped {
			return
		}
		anyDead := false
		for _, id := range a.ring {
			if a.members[id].state != StateDead {
				continue
			}
			anyDead = true
			a.probe(id, true)
		}
		if anyDead {
			a.scheduleDeadProbe()
		}
	})
}

// --- wire in/out ---

// HandlePacket ingests one received PTGossip payload (the MCP's gossip
// sink). Everything kept is copied out before return.
func (a *Agent) HandlePacket(payload []byte) {
	if a.stopped {
		return
	}
	msg, err := Decode(payload)
	if err != nil {
		return
	}
	a.specTouch()
	a.heardFrom(msg.From, msg.FromInc)
	for _, d := range msg.Deltas {
		a.applyDelta(d)
	}
	for _, p := range msg.Paths {
		a.applyPath(p)
	}
	switch msg.Type {
	case MsgPing:
		a.stats.AcksSent++
		a.sendTo(msg.From, &Message{Type: MsgAck, Target: a.self, Seq: msg.Seq})
	case MsgAck:
		if r, ok := a.relays[msg.Seq]; ok && r.target == msg.From {
			// A relayed ping came back: forward the ack to the origin.
			delete(a.relays, msg.Seq)
			a.stats.IndirectAcksSent++
			a.sendTo(r.origin, &Message{Type: MsgIndirectAck, Target: msg.From, Seq: r.origSeq})
			return
		}
		if p, ok := a.pending[msg.Seq]; ok && p.target == msg.From {
			delete(a.pending, msg.Seq)
			delete(a.busy, p.target)
		}
	case MsgIndirectAck:
		if p, ok := a.pending[msg.Seq]; ok && p.target == msg.Target {
			delete(a.pending, msg.Seq)
			delete(a.busy, p.target)
		}
	case MsgPingReq:
		if msg.Target == a.self || a.members[msg.Target] == nil {
			return
		}
		a.seq++
		rseq := a.seq
		a.relays[rseq] = relayEntry{origin: msg.From, origSeq: msg.Seq, target: msg.Target}
		a.sendTo(msg.Target, &Message{Type: MsgPing, Seq: rseq})
		a.eng.AfterLabel(2*a.cfg.ProbeTimeout, "gossip-relay-gc", func() {
			a.specTouch()
			delete(a.relays, rseq)
		})
	}
}

// heardFrom processes the implicit aliveness of a datagram's sender.
func (a *Agent) heardFrom(f gmproto.NodeID, inc uint32) {
	if f == a.self {
		return
	}
	m := a.members[f]
	if m == nil {
		return // not a member of this cluster's boot map
	}
	switch m.state {
	case StateDead:
		if inc > m.inc {
			a.readmit(f, inc)
		} else {
			// A zombie: keep the verdict flowing back so it learns it was
			// declared dead and refutes with a fresh incarnation.
			a.enqueue(Delta{Node: f, From: a.self, Inc: m.inc, State: StateDead})
		}
	case StateSuspect:
		if inc >= m.inc {
			// Direct contact refutes: gossip the rescue at its incarnation.
			a.clearSuspicion(f, inc)
			a.enqueue(Delta{Node: f, From: a.self, Inc: inc, State: StateAlive})
		}
	default:
		if inc > m.inc {
			m.inc = inc
		}
	}
}

// applyDelta merges one piggybacked membership update into the view, with
// SWIM's override order: alive(i) beats suspect/dead(j) iff i > j;
// suspect(i) beats alive(j) iff i >= j; dead(i) beats anything iff i >= j.
func (a *Agent) applyDelta(d Delta) {
	if d.Node == a.self {
		// Somebody thinks we are suspect or dead: refute by outbidding the
		// accusation's incarnation.
		if d.State != StateAlive && d.Inc >= a.inc {
			a.inc = d.Inc + 1
			a.stats.Refutations++
			a.enqueue(Delta{Node: a.self, From: a.self, Inc: a.inc, State: StateAlive})
		}
		return
	}
	m := a.members[d.Node]
	if m == nil {
		return
	}
	switch d.State {
	case StateAlive:
		if d.Inc <= m.inc {
			return
		}
		switch m.state {
		case StateDead:
			a.readmit(d.Node, d.Inc)
		case StateSuspect:
			a.clearSuspicion(d.Node, d.Inc)
			a.enqueue(d)
		default:
			m.inc = d.Inc
		}
	case StateSuspect:
		if m.state == StateDead || d.Inc < m.inc {
			return
		}
		if m.state == StateAlive {
			m.state = StateSuspect
			m.inc = d.Inc
			m.suspectedAt = a.eng.Now()
			m.endorsers = map[gmproto.NodeID]bool{d.From: true}
			a.enqueue(d)
			a.armSuspicionCheck(d.Node)
			// Verify for ourselves: our own failed probe adds this agent to
			// the endorser set, a successful one refutes cluster-wide.
			a.probe(d.Node, false)
			return
		}
		if !m.endorsers[d.From] {
			m.endorsers[d.From] = true
			a.enqueue(d)
		}
		if d.Inc > m.inc {
			m.inc = d.Inc
		}
	case StateDead:
		if m.state == StateDead || d.Inc < m.inc {
			return
		}
		// A peer's quorum already confirmed this death; adopt it.
		a.enqueue(d)
		a.markDead(d.Node, d.Inc)
	}
}

// applyPath reacts to a gossiped path suspicion: verify the accused peer
// with an out-of-round probe. Path reports are evidence about the fabric,
// not votes about the member, so they are not re-relayed here — the origin
// keeps gossiping its own report while the fault persists.
func (a *Agent) applyPath(p PathSuspicion) {
	if p.About == a.self || p.From == a.self {
		return
	}
	m := a.members[p.About]
	if m == nil || m.state == StateDead {
		return
	}
	a.probe(p.About, false)
}

// sendTo routes and transmits one datagram, attaching the dissemination
// payload.
func (a *Agent) sendTo(to gmproto.NodeID, msg *Message) {
	if a.send == nil {
		return
	}
	route, ok := a.routeTo[to]
	if !ok {
		return
	}
	msg.From = a.self
	msg.FromInc = a.inc
	msg.Deltas = a.takeDeltas()
	msg.Paths = a.takePaths()
	a.stats.DeltasCarried += uint64(len(msg.Deltas))
	a.send(route, msg.Encode())
}

// enqueue (re)queues a delta for dissemination with a fresh budget of
// RetransmitMult * ceil(log2(n)) piggybacks.
func (a *Agent) enqueue(d Delta) {
	budget := a.cfg.RetransmitMult * log2ceil(len(a.members))
	if budget < 1 {
		budget = 1
	}
	a.updates[d.Node] = &update{d: d, left: budget}
}

// takeDeltas drains up to MaxDeltas queued updates in node order.
func (a *Agent) takeDeltas() []Delta {
	if len(a.updates) == 0 {
		return nil
	}
	keys := make([]gmproto.NodeID, 0, len(a.updates))
	for id := range a.updates {
		keys = append(keys, id)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var out []Delta
	for _, id := range keys {
		if len(out) >= a.cfg.MaxDeltas {
			break
		}
		u := a.updates[id]
		out = append(out, u.d)
		u.left--
		if u.left <= 0 {
			delete(a.updates, id)
		}
	}
	return out
}

// takePaths drains queued path suspicions (same budgeting as deltas).
func (a *Agent) takePaths() []PathSuspicion {
	if len(a.paths) == 0 {
		return nil
	}
	keys := make([]gmproto.NodeID, 0, len(a.paths))
	for id := range a.paths {
		keys = append(keys, id)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	var out []PathSuspicion
	for _, id := range keys {
		u := a.paths[id]
		out = append(out, u.p)
		u.left--
		if u.left <= 0 {
			delete(a.paths, id)
		}
	}
	return out
}

func log2ceil(n int) int {
	k, v := 0, 1
	for v < n {
		v *= 2
		k++
	}
	return k
}
