package gossip

import (
	"repro/internal/gmproto"
	"repro/internal/sim"
)

// Speculation journaling (sim spec.go). The agent is node-engine event code
// — probe rounds, timeouts and packet handling all run as simulation
// callbacks on the node's own domain — so once the node domain speculates it
// can execute inside an open span and must be restorable.
//
// Relative to spans the agent is cold: it acts every ProbeInterval
// (milliseconds) while spans are microseconds wide, so most spans never
// touch it and a whole-view first-touch shadow costs nothing on the common
// path. The member rows are restored IN PLACE (the members map gains and
// loses no rows after SeedView, and row pointers are cached nowhere), while
// the small bookkeeping maps (pending, busy, relays, updates, paths) are
// rebuilt from value copies — no event code holds their row pointers across
// callbacks. The endorser sets are compared only by membership and length,
// never iterated, so rebuilding them fresh cannot perturb replay.
//
// The agent's private RNG is part of the image: a rolled-back span re-draws
// the same jitter on replay, which is what keeps a speculating gossip
// cluster bit-for-bit identical to the conservative run.

// memberShadow is the restore image of one membership row.
type memberShadow struct {
	state       State
	inc         uint32
	suspectedAt sim.Time
	endorsers   map[gmproto.NodeID]bool
}

// agentShadow is the restore image for Agent.SpecSave/SpecRestore.
type agentShadow struct {
	inc       uint32
	ringIdx   int
	seq       uint32
	deadProbe bool
	started   bool
	stopped   bool
	stats     Stats
	rng       sim.RNG

	members map[gmproto.NodeID]memberShadow
	pending map[uint32]pendingProbe
	busy    map[gmproto.NodeID]bool
	relays  map[uint32]relayEntry
	updates map[gmproto.NodeID]update
	paths   map[gmproto.NodeID]pathUpdate
}

func (a *Agent) specTouch() { a.eng.SpecTouch(&a.specMark, a) }

// SpecSave / SpecRestore implement sim.SpecSaver.
func (a *Agent) SpecSave() {
	sh := &a.shadow
	sh.inc = a.inc
	sh.ringIdx = a.ringIdx
	sh.seq = a.seq
	sh.deadProbe = a.deadProbe
	sh.started = a.started
	sh.stopped = a.stopped
	sh.stats = a.stats
	sh.rng = *a.rng

	if sh.members == nil {
		sh.members = make(map[gmproto.NodeID]memberShadow, len(a.members))
	} else {
		clear(sh.members)
	}
	for id, m := range a.members {
		ms := memberShadow{state: m.state, inc: m.inc, suspectedAt: m.suspectedAt}
		if m.endorsers != nil {
			ms.endorsers = make(map[gmproto.NodeID]bool, len(m.endorsers))
			for k, v := range m.endorsers {
				ms.endorsers[k] = v
			}
		}
		sh.members[id] = ms
	}

	if sh.pending == nil {
		sh.pending = make(map[uint32]pendingProbe, len(a.pending))
	} else {
		clear(sh.pending)
	}
	for s, p := range a.pending {
		sh.pending[s] = *p
	}
	if sh.busy == nil {
		sh.busy = make(map[gmproto.NodeID]bool, len(a.busy))
	} else {
		clear(sh.busy)
	}
	for id, v := range a.busy {
		sh.busy[id] = v
	}
	if sh.relays == nil {
		sh.relays = make(map[uint32]relayEntry, len(a.relays))
	} else {
		clear(sh.relays)
	}
	for s, r := range a.relays {
		sh.relays[s] = r
	}
	if sh.updates == nil {
		sh.updates = make(map[gmproto.NodeID]update, len(a.updates))
	} else {
		clear(sh.updates)
	}
	for id, u := range a.updates {
		sh.updates[id] = *u
	}
	if sh.paths == nil {
		sh.paths = make(map[gmproto.NodeID]pathUpdate, len(a.paths))
	} else {
		clear(sh.paths)
	}
	for id, u := range a.paths {
		sh.paths[id] = *u
	}
}

func (a *Agent) SpecRestore() {
	sh := &a.shadow
	a.inc = sh.inc
	a.ringIdx = sh.ringIdx
	a.seq = sh.seq
	a.deadProbe = sh.deadProbe
	a.started = sh.started
	a.stopped = sh.stopped
	a.stats = sh.stats
	*a.rng = sh.rng

	for id, ms := range sh.members {
		m := a.members[id]
		m.state = ms.state
		m.inc = ms.inc
		m.suspectedAt = ms.suspectedAt
		if ms.endorsers == nil {
			m.endorsers = nil
		} else {
			m.endorsers = make(map[gmproto.NodeID]bool, len(ms.endorsers))
			for k, v := range ms.endorsers {
				m.endorsers[k] = v
			}
		}
	}

	clear(a.pending)
	for s, p := range sh.pending {
		pp := p
		a.pending[s] = &pp
	}
	clear(a.busy)
	for id, v := range sh.busy {
		a.busy[id] = v
	}
	clear(a.relays)
	for s, r := range sh.relays {
		a.relays[s] = r
	}
	clear(a.updates)
	for id, u := range sh.updates {
		uu := u
		a.updates[id] = &uu
	}
	clear(a.paths)
	for id, u := range sh.paths {
		uu := u
		a.paths[id] = &uu
	}
}
